// Stepping-policy benchmarks: the three bucket disciplines (Δ-, Radius-
// and ρ-stepping) head to head on the two graph families where their
// trade-offs diverge — the paper's scale-13 R-MAT (low diameter, heavy
// skew: Δ's home turf) and a long-diameter road-like grid (hundreds of
// phases under any fixed Δ: where per-vertex radii pay off). A fourth
// sub-benchmark per graph runs the configuration TunePolicy picks, so
// BENCH_stepping.json records both every policy's raw numbers and the
// tuner's selection next to them. make bench-stepping-json archives the
// results; see EXPERIMENTS.md "Stepping policies".
package parsssp_test

import (
	"fmt"
	"sync"
	"testing"

	"parsssp/internal/expt"
	"parsssp/internal/gen"
	"parsssp/internal/graph"
	"parsssp/internal/sssp"
)

// roadGraph is the long-diameter family: a 512×512 grid with weights
// 1..16, ~1000 hops corner to corner — the antithesis of R-MAT's
// ~10-hop diameter and the shape where bucket count dominates Δ's cost.
func roadGraph(b *testing.B) *graph.Graph {
	return cachedGraph(b, "road-grid", func() (*graph.Graph, error) {
		return gen.Grid(512, 512, 1, 16, 0xC0FFEE)
	})
}

// steppingLineup pits each policy at its engine default parameter; Δ
// additionally gets the paper's tuned Δ=25. Non-Δ policies run without
// the Δ-only heuristics (prune/IOS are bucket-settle machinery), so the
// Δ rows use the same plain configuration for a like-for-like frontier.
var steppingLineup = []struct {
	name string
	opts sssp.Options
}{
	{"delta25", sssp.DelOptions(25)},
	{"radius32", sssp.RadiusSteppingOptions(0)},
	{"rho4096", sssp.RhoSteppingOptions(0)},
}

var (
	tunedMu    sync.Mutex
	tunedCache = map[string]sssp.PolicyCandidate{}
)

// tunedCandidate memoizes one TunePolicy sweep per graph family — the
// sweep runs full trial queries per candidate and must not repeat for
// every b.N recalibration.
func tunedCandidate(b *testing.B, key string, g *graph.Graph) sssp.PolicyCandidate {
	b.Helper()
	tunedMu.Lock()
	defer tunedMu.Unlock()
	if c, ok := tunedCache[key]; ok {
		return c
	}
	roots, err := sssp.PickRoots(g, 2, 0xC0FFEE)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sssp.TunePolicy(g, benchRanks, roots, sssp.Options{Threads: 2}, nil)
	if err != nil {
		b.Fatal(err)
	}
	tunedCache[key] = res.Best
	return res.Best
}

// BenchmarkSteppingPolicies is the cross-policy comparison matrix. The
// "tuned" rows report which policy TunePolicy selected for the family as
// picked-<policy> metrics (1 for the winner, 0 otherwise), so the JSON
// archive shows the selection alongside the measured win.
func BenchmarkSteppingPolicies(b *testing.B) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"RMAT1", rmatGraph(b, expt.RMAT1, benchScale)},
		{"Road", roadGraph(b)},
	}
	for _, fam := range families {
		for _, entry := range steppingLineup {
			b.Run(fam.name+"/"+entry.name, func(b *testing.B) {
				benchRun(b, fam.g, entry.opts)
			})
		}
		b.Run(fam.name+"/tuned", func(b *testing.B) {
			best := tunedCandidate(b, fam.name, fam.g)
			benchRun(b, fam.g, best.Apply(sssp.Options{}))
			for _, pol := range []sssp.SteppingPolicy{
				sssp.PolicyDelta, sssp.PolicyRadius, sssp.PolicyRho,
			} {
				v := 0.0
				if pol == best.Policy {
					v = 1.0
				}
				b.ReportMetric(v, fmt.Sprintf("picked-%s", pol))
			}
		})
	}
}
