// Package parsssp is a Go reproduction of "Scalable Single Source
// Shortest Path Algorithms for Massively Parallel Systems"
// (Chakaravarthy, Checconi, Petrini, Sabharwal — IPDPS 2014).
//
// It provides distributed-memory SSSP over a simulated message-passing
// machine: P logical ranks partition the vertices and relax edges in
// bulk-synchronous supersteps. The algorithm is Δ-stepping augmented with
// the paper's three optimization classes:
//
//   - Pruning: short/long edge classification, the inner-outer-short
//     (IOS) refinement, and a direction-optimized long-edge phase that
//     chooses per bucket between push and pull relaxation using a cost
//     heuristic.
//   - Hybridization: once a fraction τ of the vertices is settled, the
//     remaining buckets are merged and finished with Bellman-Ford rounds.
//   - Load balancing: heavy vertices' edge lists are chunked across a
//     rank's worker threads, and extremely heavy vertices can be split
//     into proxies spread over ranks (partition.SplitHeavyVertices).
//
// # Quick start
//
//	g, _ := parsssp.GenerateRMAT1(16, 42) // scale-16 Graph500 BFS-spec graph
//	res, _ := parsssp.Run(g, 8, 0, parsssp.OptOptions(25))
//	fmt.Println("reached", res.Stats.Reached, "GTEPS", res.Stats.GTEPS(g.NumEdges()))
//
// The named presets mirror the paper's algorithm lineup: DelOptions
// (baseline Δ-stepping with edge classification), PruneOptions (+pruning
// and IOS), OptOptions (+hybridization), LBOptOptions (+thread-level load
// balancing), plus DijkstraOptions (Δ=1) and BellmanFordOptions (Δ=∞).
//
// Multi-process runs over TCP use sssp.RunRank with a
// tcptransport.Transport; see cmd/ssspd and examples/distributed.
package parsssp

import (
	"parsssp/internal/analytics"
	"parsssp/internal/gen"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
	"parsssp/internal/rmat"
	"parsssp/internal/sssp"
	"parsssp/internal/validate"
)

// Core graph types, re-exported from the internal representation.
type (
	// Graph is a weighted undirected graph in CSR form; see FromEdges and
	// the generators below.
	Graph = graph.Graph
	// Edge is one undirected weighted edge.
	Edge = graph.Edge
	// Vertex is a dense vertex identifier.
	Vertex = graph.Vertex
	// Weight is a non-negative edge weight.
	Weight = graph.Weight
	// Dist is a shortest-path distance; Inf marks unreachable vertices.
	Dist = graph.Dist
)

// Inf is the distance reported for unreachable vertices.
const Inf = graph.Inf

// Algorithm configuration and results.
type (
	// Options configures a run; use a preset and tweak fields.
	Options = sssp.Options
	// Result is a completed run: distances plus statistics.
	Result = sssp.Result
	// Stats aggregates a run's counters.
	Stats = sssp.Stats
	// RelaxCounts breaks down the relaxation counters.
	RelaxCounts = sssp.RelaxCounts
	// BucketStats is the per-epoch census.
	BucketStats = sssp.BucketStats
	// Mode is a long-edge mechanism (push or pull).
	Mode = sssp.Mode
	// ExecMode selects bulk-synchronous or asynchronous execution.
	ExecMode = sssp.ExecMode
	// SteppingPolicy selects the engine's priority/bucket discipline:
	// Δ-stepping (the default), Radius Stepping or ρ-stepping.
	SteppingPolicy = sssp.SteppingPolicy
	// SeqResult is the output of the sequential reference algorithms.
	SeqResult = sssp.SeqResult
)

// Stepping policies. All three produce identical distances and (on
// positive-weight graphs) identical canonical parent trees; they differ
// in how many rounds and relaxations they spend getting there. See
// DESIGN.md "Stepping policies".
const (
	PolicyDelta  = sssp.PolicyDelta
	PolicyRadius = sssp.PolicyRadius
	PolicyRho    = sssp.PolicyRho
)

// ParseSteppingPolicy parses "delta", "radius" or "rho" (as accepted by
// `ssspd -policy`).
var ParseSteppingPolicy = sssp.ParseSteppingPolicy

// Long-edge phase mechanisms.
const (
	ModePush = sssp.ModePush
	ModePull = sssp.ModePull
)

// Execution modes: collectively scheduled per-bucket phases (the
// deterministic default) or barrier-free relaxation with distributed
// termination detection. Both produce byte-identical distances and
// parent trees; see DESIGN.md "Asynchronous execution & termination
// detection".
const (
	ExecBSP   = sssp.ExecBSP
	ExecAsync = sssp.ExecAsync
)

// ParseExecMode parses "bsp" or "async" (as accepted by
// `ssspd -exec-mode`).
var ParseExecMode = sssp.ParseExecMode

// Algorithm presets from the paper, plus the non-Δ stepping policies.
var (
	DelOptions            = sssp.DelOptions
	PruneOptions          = sssp.PruneOptions
	OptOptions            = sssp.OptOptions
	LBOptOptions          = sssp.LBOptOptions
	DijkstraOptions       = sssp.DijkstraOptions
	BellmanFordOptions    = sssp.BellmanFordOptions
	RadiusSteppingOptions = sssp.RadiusSteppingOptions
	RhoSteppingOptions    = sssp.RhoSteppingOptions
)

// FromEdges builds a graph with n vertices from an undirected edge list,
// dropping self-loops and collapsing parallel edges to their minimum
// weight.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	return graph.FromEdges(n, edges, graph.BuildOptions{})
}

// GenerateRMAT1 generates a Graph500 BFS-spec R-MAT graph (the paper's
// RMAT-1 family: A=0.57, B=C=0.19) with 2^scale vertices, edge factor 16
// and weights uniform in [0, 255].
func GenerateRMAT1(scale int, seed uint64) (*Graph, error) {
	return rmat.Generate(rmat.Family1(scale, seed))
}

// GenerateRMAT2 generates a proposed Graph500 SSSP-spec R-MAT graph (the
// paper's RMAT-2 family: A=0.50, B=C=0.10).
func GenerateRMAT2(scale int, seed uint64) (*Graph, error) {
	return rmat.Generate(rmat.Family2(scale, seed))
}

// GenerateGrid generates a rows×cols grid "road network" with weights
// uniform in [minW, maxW].
func GenerateGrid(rows, cols int, minW, maxW Weight, seed uint64) (*Graph, error) {
	return gen.Grid(rows, cols, minW, maxW, seed)
}

// Run executes a distributed SSSP query from src on an in-process
// machine with numRanks ranks (block vertex distribution).
func Run(g *Graph, numRanks int, src Vertex, opts Options) (*Result, error) {
	return sssp.Run(g, numRanks, src, opts)
}

// RunSplit executes a distributed query with the paper's full two-tier
// load balancing: vertices with degree above splitThreshold are split
// into proxies spread across ranks (cyclic distribution), then the query
// runs with opts. Distances are returned for the original vertex set.
func RunSplit(g *Graph, numRanks int, src Vertex, opts Options, splitThreshold int) (*Result, error) {
	sr, err := partition.SplitHeavyVertices(g, partition.SplitOptions{
		DegreeThreshold: splitThreshold,
		MaxProxies:      numRanks,
	})
	if err != nil {
		return nil, err
	}
	pd, err := partition.New(partition.Cyclic, sr.Graph.NumVertices(), numRanks)
	if err != nil {
		return nil, err
	}
	res, err := sssp.RunDistributed(sr.Graph, pd, src, opts)
	if err != nil {
		return nil, err
	}
	res.Dist = sr.RestrictDistances(res.Dist)
	return res, nil
}

// Dijkstra runs the sequential reference algorithm (binary-heap
// Dijkstra), returning exact distances and work counters.
func Dijkstra(g *Graph, src Vertex) (*SeqResult, error) {
	return sssp.Dijkstra(g, src)
}

// BellmanFord runs the sequential Bellman-Ford reference.
func BellmanFord(g *Graph, src Vertex) (*SeqResult, error) {
	return sssp.BellmanFord(g, src)
}

// SeqDeltaStepping runs the sequential Δ-stepping reference.
func SeqDeltaStepping(g *Graph, src Vertex, delta Weight) (*SeqResult, error) {
	return sssp.SeqDeltaStepping(g, src, delta)
}

// SeqRadiusStepping runs the sequential Radius Stepping reference with
// radius parameter k (0 = the engine default).
func SeqRadiusStepping(g *Graph, src Vertex, k int) (*SeqResult, error) {
	return sssp.SeqRadiusStepping(g, src, k)
}

// SeqRhoStepping runs the sequential ρ-stepping reference with batch
// size rho (0 = the engine default).
func SeqRhoStepping(g *Graph, src Vertex, rho int) (*SeqResult, error) {
	return sssp.SeqRhoStepping(g, src, rho)
}

// NoParent marks vertices without a shortest-path-tree predecessor in
// Result.Parent.
const NoParent = sssp.NoParent

// BatchResult is a Graph500-style multi-root measurement; see RunBatch.
type BatchResult = sssp.BatchResult

// PickRoots selects n deterministic non-isolated source vertices, as the
// Graph500 harness does.
func PickRoots(g *Graph, n int, seed uint64) ([]Vertex, error) {
	return sssp.PickRoots(g, n, seed)
}

// RunBatch executes one query per root on a shared in-process machine
// and reports the Graph500 aggregate: harmonic mean TEPS across roots.
func RunBatch(g *Graph, numRanks int, roots []Vertex, opts Options) (*BatchResult, error) {
	return sssp.RunBatch(g, numRanks, roots, opts)
}

// ValidateDistances checks distances against the sequential Dijkstra
// reference, returning a descriptive error on mismatch.
func ValidateDistances(g *Graph, src Vertex, dist []Dist) error {
	return validate.Distances(g, src, dist)
}

// ValidateTree checks an SSSP result's distances and parent pointers the
// way the Graph500 SSSP benchmark does — structurally, without re-running
// a reference solver. See validate.CheckTree.
func ValidateTree(g *Graph, src Vertex, dist []Dist, parent []Vertex) error {
	return validate.CheckTree(g, src, dist, parent)
}

// PathTo reconstructs the shortest path from the source to v from a
// run's parent pointers (source-first order; nil when unreachable).
func PathTo(parent []Vertex, v Vertex) ([]Vertex, error) {
	return sssp.PathTo(parent, v)
}

// PathLength sums the weights along a path, verifying every hop is a
// real edge; for a correct run it equals the distance of the endpoint.
func PathLength(g *Graph, path []Vertex) (Dist, error) {
	return sssp.PathLength(g, path)
}

// TuneResult reports a Δ auto-tuning sweep; see TuneDelta.
type TuneResult = sssp.TuneResult

// TuneDelta times trial queries over a Δ candidate grid (nil = the
// paper's tested range) and returns the fastest setting.
func TuneDelta(g *Graph, numRanks int, roots []Vertex, opts Options, candidates []Weight) (*TuneResult, error) {
	return sssp.TuneDelta(g, numRanks, roots, opts, candidates)
}

// Cross-policy auto-tuning; see TunePolicy.
type (
	// PolicyCandidate is one policy+parameter configuration to trial.
	PolicyCandidate = sssp.PolicyCandidate
	// PolicyTrial is one measured candidate.
	PolicyTrial = sssp.PolicyTrial
	// PolicyTuneResult reports a cross-policy sweep.
	PolicyTuneResult = sssp.PolicyTuneResult
)

// TunePolicy times trial queries over policy+parameter candidates (nil =
// ShortlistPolicyCandidates) and returns the fastest configuration.
func TunePolicy(g *Graph, numRanks int, roots []Vertex, opts Options, candidates []PolicyCandidate) (*PolicyTuneResult, error) {
	return sssp.TunePolicy(g, numRanks, roots, opts, candidates)
}

// ShortlistPolicyCandidates derives a candidate grid from the graph's
// weight distribution (Δ at the weight CDF's quartiles, fixed grids for
// the other policies).
func ShortlistPolicyCandidates(g *Graph) []PolicyCandidate {
	return sssp.ShortlistPolicyCandidates(g)
}

// Network-analysis measures built on SSSP (the paper's §I motivation).

// Closeness returns the closeness centrality of src (Wasserman–Faust
// normalized); one SSSP query.
func Closeness(g *Graph, numRanks int, src Vertex, opts Options) (float64, error) {
	return analytics.Closeness(g, numRanks, src, opts)
}

// Eccentricity returns the greatest finite distance from src and the
// vertex attaining it; one SSSP query.
func Eccentricity(g *Graph, numRanks int, src Vertex, opts Options) (Dist, Vertex, error) {
	return analytics.Eccentricity(g, numRanks, src, opts)
}

// DiameterBounds brackets a component's weighted diameter; see Diameter.
type DiameterBounds = analytics.DiameterBounds

// Diameter estimates the component diameter of src with up to maxSweeps
// SSSP queries (multi-sweep lower/upper bounding).
func Diameter(g *Graph, numRanks int, src Vertex, opts Options, maxSweeps int) (*DiameterBounds, error) {
	return analytics.Diameter(g, numRanks, src, opts, maxSweeps)
}

// RankedVertex pairs a vertex with its centrality score.
type RankedVertex = analytics.RankedVertex

// TopKCloseness ranks candidate vertices by closeness centrality (one
// SSSP query per candidate).
func TopKCloseness(g *Graph, numRanks int, candidates []Vertex, k int, opts Options) ([]RankedVertex, error) {
	return analytics.TopKCloseness(g, numRanks, candidates, k, opts)
}

// Machine is a reusable in-process SSSP machine (state allocated once,
// queries served repeatedly, one at a time); see NewMachine.
type Machine = sssp.Machine

// NewMachine builds a machine bound to one graph and option set. Query
// it repeatedly without re-allocating transports or engine state.
func NewMachine(g *Graph, numRanks int, opts Options) (*Machine, error) {
	return sssp.NewMachine(g, numRanks, opts)
}

// Dynamic updates: a loaded graph advances through versions one edge
// batch at a time (copy-on-write), and finished distance/parent trees
// are repaired incrementally instead of recomputed. See
// Machine.ApplyUpdates and QueryPool.ApplyUpdates.
type (
	// EdgeUpdate is one edge mutation of an update batch.
	EdgeUpdate = sssp.EdgeUpdate
	// UpdateBatch is an ordered list of edge mutations applied
	// atomically: one batch, one new graph version.
	UpdateBatch = sssp.UpdateBatch
	// UpdateOp says what an EdgeUpdate does (OpInsert or OpDelete).
	UpdateOp = sssp.UpdateOp
	// RepairStats summarizes one incremental tree repair.
	RepairStats = sssp.RepairStats
)

// Edge-update operations.
const (
	OpDelete = sssp.OpDelete
	OpInsert = sssp.OpInsert
)

// QueryPool answers concurrent SSSP queries over one loaded graph: the
// immutable graph plane is built once and shared by N pooled query
// slots, so concurrent callers block for a free slot instead of
// rebuilding per-graph state per stream. The graph is versioned:
// ApplyUpdates advances it without stopping the pool, and slots migrate
// lazily — repairing their cached trees incrementally where possible.
// See NewQueryPool.
type QueryPool = sssp.QueryPool

// NewQueryPool builds an in-process pool with numRanks ranks and slots
// concurrent query slots over one graph. Query blocks until a slot is
// free; queries on distinct slots run fully concurrently and return
// exactly what sequential Machine queries from the same sources return.
func NewQueryPool(g *Graph, numRanks, slots int, opts Options) (*QueryPool, error) {
	return sssp.NewQueryPool(g, numRanks, slots, opts)
}

// RunMultiSource computes every vertex's distance to the nearest of
// several sources (virtual super-source construction); parents trace
// back to the chosen source.
func RunMultiSource(g *Graph, numRanks int, sources []Vertex, opts Options) (*Result, error) {
	return sssp.RunMultiSource(g, numRanks, sources, opts)
}
