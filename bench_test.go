// Benchmarks, one per table/figure of the paper's evaluation (§IV).
// Each benchmark runs the workload its figure measures and reports the
// figure's metrics via b.ReportMetric (GTEPS, relaxations, phases,
// buckets) in addition to ns/op. The full sweep-and-print harness is
// cmd/bench; these benches regenerate individual data points under
// `go test -bench`.
package parsssp_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"parsssp"
	"parsssp/internal/bfs"
	"parsssp/internal/comm"
	"parsssp/internal/comm/memtransport"
	"parsssp/internal/expt"
	"parsssp/internal/gen"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
	"parsssp/internal/rmat"
	"parsssp/internal/sssp"
	"parsssp/internal/validate"
)

// benchScale keeps individual benchmark iterations fast while exercising
// real R-MAT skew; cmd/bench runs the full weak-scaling sweeps.
const benchScale = 13

// benchRanks is the in-process machine size for benches.
const benchRanks = 4

var (
	graphCacheMu sync.Mutex
	graphCache   = map[string]*graph.Graph{}
)

// cachedGraph memoizes graph construction across benchmarks.
func cachedGraph(b *testing.B, key string, build func() (*graph.Graph, error)) *graph.Graph {
	b.Helper()
	graphCacheMu.Lock()
	defer graphCacheMu.Unlock()
	if g, ok := graphCache[key]; ok {
		return g
	}
	g, err := build()
	if err != nil {
		b.Fatal(err)
	}
	graphCache[key] = g
	return g
}

func rmatGraph(b *testing.B, family expt.Family, scale int) *graph.Graph {
	key := fmt.Sprintf("rmat%d-%d", family, scale)
	return cachedGraph(b, key, func() (*graph.Graph, error) {
		return rmat.Generate(family.Params(scale, 0xC0FFEE))
	})
}

// benchRoot returns a deterministic non-isolated source vertex (vertex
// ids are scrambled by the generator, so low ids are often isolated).
func benchRoot(g *graph.Graph) graph.Vertex {
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(graph.Vertex(v)) > 16 {
			return graph.Vertex(v)
		}
	}
	return 0
}

// benchRun executes one query per iteration and reports the figure
// metrics.
func benchRun(b *testing.B, g *graph.Graph, opts sssp.Options) {
	b.Helper()
	opts.Threads = 2
	root := benchRoot(g)
	var last *sssp.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sssp.Run(g, benchRanks, root, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if last != nil {
		b.ReportMetric(last.Stats.GTEPS(g.NumEdges()), "GTEPS")
		b.ReportMetric(float64(last.Stats.Relax.Total()), "relaxations")
		b.ReportMetric(float64(last.Stats.Phases), "phases")
		b.ReportMetric(float64(last.Stats.Epochs), "buckets")
	}
}

// --- Figure 1 (headline table) ---------------------------------------------

func BenchmarkTable1_RMAT1_LBOpt25(b *testing.B) {
	benchRun(b, rmatGraph(b, expt.RMAT1, benchScale), sssp.LBOptOptions(25))
}

func BenchmarkTable1_RMAT2_LBOpt40(b *testing.B) {
	benchRun(b, rmatGraph(b, expt.RMAT2, benchScale), sssp.LBOptOptions(40))
}

// --- Figure 3 (phases / relaxations per algorithm) --------------------------

func BenchmarkFig3_BellmanFord(b *testing.B) {
	benchRun(b, rmatGraph(b, expt.RMAT1, benchScale), sssp.BellmanFordOptions())
}

func BenchmarkFig3_Dijkstra(b *testing.B) {
	benchRun(b, rmatGraph(b, expt.RMAT1, benchScale), sssp.DijkstraOptions())
}

func BenchmarkFig3_Del25(b *testing.B) {
	benchRun(b, rmatGraph(b, expt.RMAT1, benchScale), sssp.DelOptions(25))
}

func BenchmarkFig3_Hybrid25(b *testing.B) {
	opts := sssp.DelOptions(25)
	opts.Hybrid = true
	benchRun(b, rmatGraph(b, expt.RMAT1, benchScale), opts)
}

func BenchmarkFig3_Prune25(b *testing.B) {
	benchRun(b, rmatGraph(b, expt.RMAT1, benchScale), sssp.PruneOptions(25))
}

// --- Figure 4 (long-phase dominance under Del-25) ----------------------------

func BenchmarkFig4_Del25PhaseCensus(b *testing.B) {
	g := rmatGraph(b, expt.RMAT1, benchScale)
	var short, long int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sssp.Run(g, benchRanks, benchRoot(g), sssp.DelOptions(25))
		if err != nil {
			b.Fatal(err)
		}
		short, long = 0, 0
		for _, bk := range res.Stats.Buckets {
			short += bk.ShortRelax
			long += bk.LongRelax
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(short), "short-relax")
	b.ReportMetric(float64(long), "long-relax")
}

// --- Figures 5/6 (push vs pull illustration) ---------------------------------

func BenchmarkFig6_CliquePull(b *testing.B) {
	g := cachedGraph(b, "clique", func() (*graph.Graph, error) {
		return gen.CliqueChain(64, 256, 10, 10, 10)
	})
	benchRun(b, g, sssp.PruneOptions(5))
}

// --- Figure 7 (per-bucket census) --------------------------------------------

func BenchmarkFig7_Census(b *testing.B) {
	opts := sssp.PruneOptions(25)
	opts.Census = true
	benchRun(b, rmatGraph(b, expt.RMAT1, benchScale), opts)
}

// --- Figure 8 (degree skew by family) ----------------------------------------

func BenchmarkFig8_MaxDegree(b *testing.B) {
	var max1, max2 int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g1, err := rmat.Generate(rmat.Family1(benchScale, uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		g2, err := rmat.Generate(rmat.Family2(benchScale, uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		max1, max2 = g1.MaxDegree(), g2.MaxDegree()
	}
	b.StopTimer()
	b.ReportMetric(float64(max1), "maxdeg-rmat1")
	b.ReportMetric(float64(max2), "maxdeg-rmat2")
}

// --- Figure 9 (Δ sweep of Δ-stepping) -----------------------------------------

func BenchmarkFig9_DeltaSweep(b *testing.B) {
	g := rmatGraph(b, expt.RMAT1, benchScale)
	for _, delta := range []graph.Weight{1, 10, 25, 50, 100} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			benchRun(b, g, sssp.DelOptions(delta))
		})
	}
	b.Run("delta=inf", func(b *testing.B) {
		benchRun(b, g, sssp.BellmanFordOptions())
	})
}

// --- Figure 10 (RMAT-1 analysis) -----------------------------------------------

func BenchmarkFig10_RMAT1(b *testing.B) {
	g := rmatGraph(b, expt.RMAT1, benchScale)
	lineup := []struct {
		name string
		opts sssp.Options
	}{
		{"Del25", sssp.DelOptions(25)},
		{"Prune25", sssp.PruneOptions(25)},
		{"Opt25", sssp.OptOptions(25)},
		{"Opt10", sssp.OptOptions(10)},
		{"Opt40", sssp.OptOptions(40)},
		{"LBOpt10", sssp.LBOptOptions(10)},
		{"LBOpt25", sssp.LBOptOptions(25)},
		{"LBOpt40", sssp.LBOptOptions(40)},
	}
	for _, entry := range lineup {
		b.Run(entry.name, func(b *testing.B) { benchRun(b, g, entry.opts) })
	}
}

// --- Figure 11 (RMAT-2 analysis) -------------------------------------------------

func BenchmarkFig11_RMAT2(b *testing.B) {
	g := rmatGraph(b, expt.RMAT2, benchScale)
	lineup := []struct {
		name string
		opts sssp.Options
	}{
		{"Del25", sssp.DelOptions(25)},
		{"Prune25", sssp.PruneOptions(25)},
		{"Opt25", sssp.OptOptions(25)},
		{"Opt10", sssp.OptOptions(10)},
		{"Opt40", sssp.OptOptions(40)},
	}
	for _, entry := range lineup {
		b.Run(entry.name, func(b *testing.B) { benchRun(b, g, entry.opts) })
	}
}

// --- Figure 12 (final algorithms, including vertex splitting) ---------------------

func BenchmarkFig12_RMAT1_TwoTierLB(b *testing.B) {
	g := rmatGraph(b, expt.RMAT1, benchScale)
	opts := sssp.LBOptOptions(25)
	opts.Threads = 2
	var last *sssp.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := partition.SplitHeavyVertices(g, partition.SplitOptions{
			DegreeThreshold: 256, MaxProxies: benchRanks,
		})
		if err != nil {
			b.Fatal(err)
		}
		pd := partition.MustNew(partition.Cyclic, sr.Graph.NumVertices(), benchRanks)
		res, err := sssp.RunDistributed(sr.Graph, pd, benchRoot(g), opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if last != nil {
		b.ReportMetric(last.Stats.GTEPS(g.NumEdges()), "GTEPS")
	}
}

func BenchmarkFig12_RMAT2_Opt40(b *testing.B) {
	benchRun(b, rmatGraph(b, expt.RMAT2, benchScale), sssp.OptOptions(40))
}

// --- §IV.G (push/pull decision heuristic validation) -------------------------------

func BenchmarkPushPull_Exhaustive(b *testing.B) {
	g := rmatGraph(b, expt.RMAT1, 10)
	opts := sssp.OptOptions(25)
	var optimal bool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := validate.ExhaustivePushPull(g, 2, benchRoot(g), opts, 12)
		if err != nil {
			b.Fatal(err)
		}
		optimal = rep.HeuristicIsOptimal
	}
	b.StopTimer()
	if optimal {
		b.ReportMetric(1, "heuristic-optimal")
	} else {
		b.ReportMetric(0, "heuristic-optimal")
	}
}

// --- §IV.H (real-world graphs) -------------------------------------------------------

func BenchmarkRealWorld(b *testing.B) {
	specs := []struct {
		name string
		p    gen.SocialParams
	}{
		{"Friendster", gen.SocialParams{N: 20000, AvgDegree: 29, Skew: 0.57, Seed: 1, NumHubSeed: 1000}},
		{"Orkut", gen.SocialParams{N: 10000, AvgDegree: 39, Skew: 0.55, Seed: 2, NumHubSeed: 600}},
		{"LiveJournal", gen.SocialParams{N: 16000, AvgDegree: 14, Skew: 0.55, Seed: 3, NumHubSeed: 500}},
	}
	for _, spec := range specs {
		g := cachedGraph(b, "social-"+spec.name, func() (*graph.Graph, error) {
			return gen.Social(spec.p)
		})
		b.Run(spec.name+"/Del40", func(b *testing.B) { benchRun(b, g, sssp.DelOptions(40)) })
		b.Run(spec.name+"/Opt40", func(b *testing.B) { benchRun(b, g, sssp.LBOptOptions(40)) })
	}
}

// --- public API sanity ---------------------------------------------------------------

func BenchmarkQuickstartAPI(b *testing.B) {
	g := cachedGraph(b, "api", func() (*graph.Graph, error) {
		return parsssp.GenerateRMAT1(12, 42)
	})
	opts := parsssp.OptOptions(25)
	b.ResetTimer()
	root := benchRoot(g)
	for i := 0; i < b.N; i++ {
		if _, err := parsssp.Run(g, benchRanks, root, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md design choices) -------------------------------------------

func BenchmarkAblation_IOS(b *testing.B) {
	g := rmatGraph(b, expt.RMAT1, benchScale)
	with := sssp.PruneOptions(25)
	without := sssp.PruneOptions(25)
	without.IOS = false
	b.Run("with-ios", func(b *testing.B) { benchRun(b, g, with) })
	b.Run("without-ios", func(b *testing.B) { benchRun(b, g, without) })
}

func BenchmarkAblation_Estimator(b *testing.B) {
	g := rmatGraph(b, expt.RMAT1, benchScale)
	for _, est := range []sssp.PullEstimator{
		sssp.EstimatorExact, sssp.EstimatorExpectation, sssp.EstimatorHistogram,
	} {
		opts := sssp.OptOptions(25)
		opts.Estimator = est
		b.Run(est.String(), func(b *testing.B) { benchRun(b, g, opts) })
	}
}

func BenchmarkAblation_Tau(b *testing.B) {
	g := rmatGraph(b, expt.RMAT1, benchScale)
	for _, tau := range []float64{0.2, 0.4, 0.8} {
		opts := sssp.OptOptions(25)
		opts.Tau = tau
		b.Run(fmt.Sprintf("tau=%.1f", tau), func(b *testing.B) { benchRun(b, g, opts) })
	}
}

func BenchmarkAblation_HeavyThreshold(b *testing.B) {
	g := rmatGraph(b, expt.RMAT1, benchScale)
	for _, pi := range []int{16, 64, 256} {
		opts := sssp.LBOptOptions(25)
		opts.HeavyThreshold = pi
		b.Run(fmt.Sprintf("pi=%d", pi), func(b *testing.B) { benchRun(b, g, opts) })
	}
}

// --- Substrate microbenchmarks --------------------------------------------------------

func BenchmarkRMATGeneration(b *testing.B) {
	p := rmat.Family1(benchScale, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rmat.Edges(p); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(p.NumEdges() * 12)
}

func BenchmarkCSRConstruction(b *testing.B) {
	p := rmat.Family1(benchScale, 1)
	edges, err := rmat.Edges(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.FromEdges(p.NumVertices(), edges, graph.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialDijkstra(b *testing.B) {
	g := rmatGraph(b, expt.RMAT1, benchScale)
	root := benchRoot(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sssp.Dijkstra(g, root); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVertexSplitting(b *testing.B) {
	g := rmatGraph(b, expt.RMAT1, benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.SplitHeavyVertices(g, partition.SplitOptions{
			DegreeThreshold: 128, MaxProxies: 8,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 1 discussion (BFS vs SSSP on the same machine) ----------------------------

func BenchmarkBFSCompare(b *testing.B) {
	g := rmatGraph(b, expt.RMAT1, benchScale)
	root := benchRoot(g)
	b.Run("BFS", func(b *testing.B) {
		var last *bfs.Result
		for i := 0; i < b.N; i++ {
			res, err := bfs.Run(g, benchRanks, root, bfs.Options{})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		if last != nil {
			b.ReportMetric(float64(last.EdgesInspected), "edges-inspected")
			b.ReportMetric(float64(last.Levels), "levels")
		}
	})
	b.Run("SSSP", func(b *testing.B) { benchRun(b, g, sssp.LBOptOptions(25)) })
}

func BenchmarkAblation_ParallelApply(b *testing.B) {
	g := rmatGraph(b, expt.RMAT1, benchScale)
	serial := sssp.LBOptOptions(25)
	par := serial
	par.ParallelApply = true
	b.Run("serial", func(b *testing.B) { benchRun(b, g, serial) })
	b.Run("parallel", func(b *testing.B) { benchRun(b, g, par) })
}

// --- Communication layer (wire format + buffer pooling) --------------------

// benchCommWire measures the steady-state cost of repeated queries on a
// warm Machine: the phase loop and the exchange path run entirely out of
// pooled buffers, so allocs/op is the pooling regression metric and the
// wire-byte metrics quantify the codec. make bench-json exports these as
// BENCH_comm.json.
func benchCommWire(b *testing.B, wf sssp.WireFormat) {
	g := rmatGraph(b, expt.RMAT1, benchScale)
	opts := sssp.OptOptions(25)
	opts.Threads = 2
	opts.WireFormat = wf
	m, err := sssp.NewMachine(g, benchRanks, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	root := benchRoot(g)
	// One warm-up query grows every pool to its steady-state size.
	if _, err := m.Query(root); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last *sssp.Result
	for i := 0; i < b.N; i++ {
		res, err := m.Query(root)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if last != nil {
		tr := last.Stats.Traffic
		b.ReportMetric(last.Stats.GTEPS(g.NumEdges()), "GTEPS")
		b.ReportMetric(float64(tr.BytesSent), "wire-bytes")
		if tr.RecordsSent > 0 {
			b.ReportMetric(float64(tr.BytesSent)/float64(tr.RecordsSent), "bytes/record")
		}
		if total := last.Stats.Relax.Total(); total > 0 {
			b.ReportMetric(float64(tr.BytesSent)/float64(total), "bytes/relax")
		}
	}
}

func BenchmarkCommWireV1(b *testing.B) { benchCommWire(b, sssp.WireV1) }

func BenchmarkCommWireV2(b *testing.B) { benchCommWire(b, sssp.WireV2) }

// --- Query serving (concurrent pools) --------------------------------------

// BenchmarkServeThroughput measures sustained query throughput of a warm
// QueryPool at serving concurrency 1, 2 and 4 — the pool analogue of the
// paper's per-query GTEPS numbers. The pool is warmed (one query per
// slot) before the timer starts, so the measurement excludes plane
// construction and slot allocation, exactly as a long-lived server
// amortizes them. The headline metric is queries/sec; speedup over the
// concurrency=1 line is the benefit of slot parallelism on this host
// (bounded by free cores — on a single-core runner the lines coincide).
// --- Dynamic updates (incremental repair vs rebuild) ------------------------

// updateBatchPair builds a forward batch (dels deletions of existing
// edges plus ins insertions of fresh edges) and its exact inverse.
// Alternating the two lets a benchmark update the same graph through
// b.N iterations in steady state: every delete always hits a live edge,
// and the graph only ever occupies two states.
func updateBatchPair(rng *rand.Rand, g *graph.Graph, dels, ins int) (fwd, rev sssp.UpdateBatch) {
	edges := g.Edges()
	picked := make(map[int]bool, dels)
	for len(picked) < dels {
		i := rng.Intn(len(edges))
		if picked[i] {
			continue
		}
		picked[i] = true
		e := edges[i]
		fwd = append(fwd, sssp.EdgeUpdate{Op: sssp.OpDelete, U: e.U, V: e.V})
		rev = append(rev, sssp.EdgeUpdate{Op: sssp.OpInsert, U: e.U, V: e.V, W: e.W})
	}
	n := g.NumVertices()
	for added := 0; added < ins; {
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex(rng.Intn(n))
		if u == v {
			continue
		}
		// Only brand-new edges keep the pair invertible (inserting over
		// an existing edge min-merges; deleting removes both).
		if _, ok := g.EdgeWeight(u, v); ok {
			continue
		}
		fwd = append(fwd, sssp.EdgeUpdate{Op: sssp.OpInsert, U: u, V: v, W: graph.Weight(1 + rng.Intn(255))})
		rev = append(rev, sssp.EdgeUpdate{Op: sssp.OpDelete, U: u, V: v})
		added++
	}
	return fwd, rev
}

// BenchmarkIncrementalRepair measures the serving cost of one edge-update
// batch two ways on the scale-13 / 4-rank machine: "repair" applies the
// batch and incrementally repairs the standing tree in place
// (Machine.ApplyUpdates — the affected-subgraph path of dynamic.go),
// "rebuild" applies the batch and recomputes the tree from scratch (a
// one-slot pool's migrate path). Both sides pay the same copy-on-write
// plane rebuild; the difference is the incremental repair against the
// full run. make bench-dynamic-json archives the numbers as
// BENCH_dynamic.json; see EXPERIMENTS.md "Dynamic updates".
func BenchmarkIncrementalRepair(b *testing.B) {
	g := rmatGraph(b, expt.RMAT1, benchScale)
	opts := sssp.OptOptions(25)
	opts.Threads = 2
	roots, err := sssp.PickRoots(g, 2, 0xC0FFEE)
	if err != nil {
		b.Fatal(err)
	}
	// Several independent pairs per batch size, cycled fwd,rev,fwd,rev…
	// so the measurement averages over batch placements: one batch that
	// happens to delete a tree edge near the root orphans (and repairs) a
	// large subtree, most batches touch almost nothing.
	const numPairs = 8
	pick := func(pairs [][2]sssp.UpdateBatch, i int) sssp.UpdateBatch {
		return pairs[(i/2)%len(pairs)][i%2]
	}
	for _, size := range []int{4, 32, 256} {
		pairs := make([][2]sssp.UpdateBatch, numPairs)
		for k := range pairs {
			rng := rand.New(rand.NewSource(int64(0xD15C0<<8 | size<<4 | k)))
			pairs[k][0], pairs[k][1] = updateBatchPair(rng, g, size/2, size-size/2)
		}
		b.Run(fmt.Sprintf("repair/batch=%d", size), func(b *testing.B) {
			m, err := sssp.NewMachine(g, benchRanks, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			if _, err := m.Query(roots[0]); err != nil {
				b.Fatal(err)
			}
			var invalidated int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, rs, err := m.ApplyUpdates(pick(pairs, i))
				if err != nil {
					b.Fatal(err)
				}
				if res == nil || rs == nil {
					b.Fatal("no repair ran")
				}
				invalidated += rs.Invalidated
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/sec")
			b.ReportMetric(float64(invalidated)/float64(b.N), "invalidated/op")
		})
		b.Run(fmt.Sprintf("rebuild/batch=%d", size), func(b *testing.B) {
			pool, err := sssp.NewQueryPool(g, benchRanks, 1, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Close()
			// Warm the slot on the root the first iteration will NOT ask
			// for: alternating two roots keeps the slot's standing tree
			// from ever matching the requested source, so every iteration
			// pays apply + plane migration + a full from-scratch run.
			if _, err := pool.Query(roots[1]); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pool.ApplyUpdates(pick(pairs, i)); err != nil {
					b.Fatal(err)
				}
				if _, err := pool.Query(roots[i%2]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/sec")
		})
	}
}

// --- Asynchronous execution (barrier-free relaxation vs BSP) ----------------

// benchExecMode measures repeated queries on a warm Machine whose
// transports are wrapped in comm.Latent, so every collective charges the
// emulated network latency and every async batch becomes visible to its
// receiver one delay after it is sent. This is where the asynchronous
// mode earns its keep: BSP pays the latency once per phase (hundreds of
// phases per query), async pays it only on termination probes and on the
// critical path of the relax wavefront. make bench-async-json archives
// the numbers as BENCH_async.json; see EXPERIMENTS.md "Asynchronous
// execution".
func benchExecMode(b *testing.B, mode sssp.ExecMode, delay time.Duration) {
	g := rmatGraph(b, expt.RMAT1, benchScale)
	opts := sssp.OptOptions(25)
	opts.Threads = 2
	opts.ExecMode = mode
	group, err := memtransport.New(benchRanks)
	if err != nil {
		b.Fatal(err)
	}
	transports := group.Endpoints()
	for i := range transports {
		transports[i] = comm.NewLatent(transports[i], delay)
	}
	pd := partition.MustNew(partition.Block, g.NumVertices(), benchRanks)
	m, err := sssp.NewMachineWithTransports(g, pd, opts, transports)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	root := benchRoot(g)
	if _, err := m.Query(root); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last *sssp.Result
	for i := 0; i < b.N; i++ {
		res, err := m.Query(root)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if last != nil {
		b.ReportMetric(last.Stats.GTEPS(g.NumEdges()), "GTEPS")
		b.ReportMetric(float64(last.Stats.Relax.Total()), "relaxations")
		if mode == sssp.ExecAsync {
			b.ReportMetric(float64(last.Stats.AsyncRounds), "async-rounds")
			b.ReportMetric(float64(last.Stats.AsyncProbes), "probes")
		} else {
			b.ReportMetric(float64(last.Stats.Phases), "phases")
		}
	}
}

// BenchmarkAsyncVsBSP is the headline comparison: both execution modes
// on the same 4-rank machine, without latency (BSP's home turf — phases
// are nearly free in-process) and with the paper-realistic 100µs one-way
// latency where barrier-free execution pulls ahead.
func BenchmarkAsyncVsBSP(b *testing.B) {
	for _, lat := range []time.Duration{0, 100 * time.Microsecond} {
		for _, mode := range []sssp.ExecMode{sssp.ExecBSP, sssp.ExecAsync} {
			b.Run(fmt.Sprintf("latency=%v/%v", lat, mode), func(b *testing.B) {
				benchExecMode(b, mode, lat)
			})
		}
	}
}

func BenchmarkServeThroughput(b *testing.B) {
	g := rmatGraph(b, expt.RMAT1, benchScale)
	roots, err := sssp.PickRoots(g, 16, 0xC0FFEE)
	if err != nil {
		b.Fatal(err)
	}
	opts := sssp.LBOptOptions(25)
	opts.Threads = 2
	for _, conc := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("concurrency=%d", conc), func(b *testing.B) {
			pool, err := sssp.NewQueryPool(g, benchRanks, conc, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Close()
			// Warm every slot: first queries page in slot buffers and
			// start worker pools.
			var wg sync.WaitGroup
			warmErrs := make([]error, conc)
			for s := 0; s < conc; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					_, warmErrs[s] = pool.Query(roots[s%len(roots)])
				}(s)
			}
			wg.Wait()
			for _, err := range warmErrs {
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			queries := make(chan graph.Vertex)
			benchErrs := make([]error, conc)
			for w := 0; w < conc; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for src := range queries {
						if _, err := pool.Query(src); err != nil {
							benchErrs[w] = err
							return
						}
					}
				}(w)
			}
			for i := 0; i < b.N; i++ {
				queries <- roots[i%len(roots)]
			}
			close(queries)
			wg.Wait()
			b.StopTimer()
			for _, err := range benchErrs {
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}
