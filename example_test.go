package parsssp_test

import (
	"fmt"

	"parsssp"
)

// Example demonstrates the minimal end-to-end flow: build a graph, run
// the optimized algorithm, read a distance.
func Example() {
	g, err := parsssp.FromEdges(4, []parsssp.Edge{
		{U: 0, V: 1, W: 7},
		{U: 1, V: 2, W: 2},
		{U: 0, V: 2, W: 14},
		{U: 2, V: 3, W: 3},
	})
	if err != nil {
		panic(err)
	}
	res, err := parsssp.Run(g, 2, 0, parsssp.OptOptions(5))
	if err != nil {
		panic(err)
	}
	fmt.Println("dist to 3:", res.Dist[3])
	// Output: dist to 3: 12
}

// ExamplePathTo reconstructs the actual shortest path from the parent
// pointers of a completed run.
func ExamplePathTo() {
	g, _ := parsssp.FromEdges(4, []parsssp.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}, {U: 0, V: 3, W: 10},
	})
	res, _ := parsssp.Run(g, 1, 0, parsssp.DelOptions(2))
	path, _ := parsssp.PathTo(res.Parent, 3)
	fmt.Println(path)
	// Output: [0 1 2 3]
}

// ExampleValidateTree shows the Graph500-style structural check on a
// run's output.
func ExampleValidateTree() {
	g, _ := parsssp.FromEdges(3, []parsssp.Edge{{U: 0, V: 1, W: 4}, {U: 1, V: 2, W: 5}})
	res, _ := parsssp.Run(g, 2, 0, parsssp.OptOptions(3))
	if err := parsssp.ValidateTree(g, 0, res.Dist, res.Parent); err != nil {
		fmt.Println("invalid:", err)
		return
	}
	fmt.Println("tree valid")
	// Output: tree valid
}

// ExampleRunBatch measures several queries Graph500-style and reports
// the harmonic-mean rate.
func ExampleRunBatch() {
	g, _ := parsssp.GenerateRMAT1(10, 42)
	roots, _ := parsssp.PickRoots(g, 4, 7)
	batch, _ := parsssp.RunBatch(g, 2, roots, parsssp.OptOptions(25))
	fmt.Println("queries:", len(batch.PerRoot), "rate positive:", batch.HarmonicMeanTEPS > 0)
	// Output: queries: 4 rate positive: true
}

// ExampleDiameter brackets a component's weighted diameter with a few
// SSSP sweeps.
func ExampleDiameter() {
	g, _ := parsssp.FromEdges(5, []parsssp.Edge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 2}, {U: 3, V: 4, W: 2},
	})
	b, _ := parsssp.Diameter(g, 1, 2, parsssp.OptOptions(3), 4)
	fmt.Printf("diameter in [%d, %d]\n", b.Lower, b.Upper)
	// Output: diameter in [8, 8]
}

// ExampleTuneDelta picks the fastest Δ for a workload automatically.
func ExampleTuneDelta() {
	g, _ := parsssp.GenerateRMAT1(10, 1)
	roots, _ := parsssp.PickRoots(g, 1, 2)
	res, _ := parsssp.TuneDelta(g, 2, roots, parsssp.OptOptions(25), []parsssp.Weight{10, 40})
	fmt.Println("trials:", len(res.Trials), "best in set:", res.Best == 10 || res.Best == 40)
	// Output: trials: 2 best in set: true
}
