// Command rmatgen generates an R-MAT graph per the Graph500
// specifications and writes it as a binary edge list for later runs.
//
// Usage:
//
//	rmatgen -family 1 -scale 20 -seed 42 -o graph.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"parsssp/internal/graph"
	"parsssp/internal/rmat"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rmatgen: ")
	var (
		family     = flag.Int("family", 1, "R-MAT family (1 = Graph500 BFS spec, 2 = SSSP spec)")
		scale      = flag.Int("scale", 16, "log2 of the vertex count")
		edgeFactor = flag.Int("edgefactor", 16, "undirected edges per vertex")
		seed       = flag.Uint64("seed", 42, "random seed")
		maxWeight  = flag.Uint("maxweight", 255, "inclusive maximum edge weight")
		out        = flag.String("o", "graph.bin", "output file (.gr writes DIMACS, else binary)")
	)
	flag.Parse()

	p := rmat.Family1(*scale, *seed)
	if *family == 2 {
		p = rmat.Family2(*scale, *seed)
	}
	p.EdgeFactor = *edgeFactor
	p.MaxWeight = uint32(*maxWeight)

	edges, err := rmat.Edges(p)
	if err != nil {
		log.Fatal(err)
	}
	save := graph.SaveEdgeListFile
	if strings.HasSuffix(*out, ".gr") {
		save = graph.SaveDIMACSFile
	}
	if err := save(*out, p.NumVertices(), edges); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: RMAT-%d scale %d, %d vertices, %d edges\n",
		*out, *family, *scale, p.NumVertices(), len(edges))
}
