// Command bench regenerates the paper's tables and figures (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// outcomes).
//
// Usage:
//
//	bench -experiment fig10 -scale 13 -ranks 1,2,4,8 -threads 2 -roots 4
//	bench -experiment all
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"parsssp/internal/expt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	var (
		experiment = flag.String("experiment", "all",
			"experiment name ("+strings.Join(expt.Names(), "|")+") or 'all'")
		scale   = flag.Int("scale", 13, "log2 vertices per rank (weak scaling)")
		ranks   = flag.String("ranks", "1,2,4,8", "comma-separated rank counts")
		threads = flag.Int("threads", 2, "worker threads per rank")
		roots   = flag.Int("roots", 4, "random roots per data point")
		seed    = flag.Uint64("seed", 0xC0FFEE, "random seed")
		latency = flag.Duration("latency", 0,
			"synthetic per-collective network latency (e.g. 100us) emulating a real interconnect")
		jsonOut = flag.String("json", "", "also write structured results to this JSON file")
	)
	flag.Parse()

	cfg := expt.DefaultConfig()
	cfg.ScalePerRank = *scale
	cfg.Threads = *threads
	cfg.Roots = *roots
	cfg.Seed = *seed
	cfg.CollectiveLatency = *latency
	cfg.Ranks = cfg.Ranks[:0]
	for _, part := range strings.Split(*ranks, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || r < 1 {
			log.Fatalf("bad rank count %q", part)
		}
		cfg.Ranks = append(cfg.Ranks, r)
	}

	var results map[string]interface{}
	if *experiment == "all" {
		all, err := expt.RunAll(cfg)
		if err != nil {
			log.Fatal(err)
		}
		results = all
	} else {
		runner, ok := expt.Registry[*experiment]
		if !ok {
			log.Fatalf("unknown experiment %q; available: %s, all",
				*experiment, strings.Join(expt.Names(), ", "))
		}
		fmt.Printf("###### experiment %s ######\n", *experiment)
		res, err := runner(cfg)
		if err != nil {
			log.Fatal(err)
		}
		results = map[string]interface{}{*experiment: res}
	}
	if *jsonOut != "" {
		if err := expt.ExportJSON(*jsonOut, cfg, results); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}
