package main

// Machine-readable output: a plain JSON findings array for scripting,
// and SARIF 2.1.0 for code-scanning UIs (the CI job uploads the SARIF
// report as an artifact). Both use module-root-relative forward-slash
// paths so reports are stable across checkouts.

import (
	"encoding/json"
	"io"
	"os"

	"parsssp/internal/lint"
)

// jsonFinding is the -json wire shape of one finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, findings []lint.Finding, rel func(string) string) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     rel(f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Minimal SARIF 2.1.0 document structure: one run, one driver, one rule
// per analyzer, one result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func writeSARIF(path string, findings []lint.Finding, rel func(string) string) error {
	rules := make([]sarifRule, 0, len(lint.Analyzers()))
	for _, a := range lint.Analyzers() {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: rel(f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	doc := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "parssspvet", Rules: rules}},
			Results: results,
		}},
	}
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
