// Command parssspvet runs parsssp's domain-specific static analyzers
// over the module and exits non-zero on findings. It enforces the
// invariants the paper's algorithms rely on but the compiler cannot
// check: a wall-clock- and global-randomness-free deterministic core,
// consistent sync/atomic use on shared relaxation state, transport
// errors that always propagate, the Add-before-go / defer-Done
// WaitGroup discipline, plane purity under concurrent queries, SPMD
// collective ordering, pooled-buffer lifetimes, and wire-data taint.
//
// Usage:
//
//	parssspvet [flags] [pattern ...]
//
// Patterns are resolved relative to the module root and default to
// "./...". Exit status: 0 clean (or fully baselined), 1 findings (or
// findings beyond the baseline, or stale suppressions under
// -audit-allows), 2 usage or load failure.
//
// Findings can be suppressed with a justified directive:
//
//	//parssspvet:allow <analyzer> -- <reason>
//
// or tolerated en masse through a committed baseline file (-baseline),
// which acts as a one-way ratchet: findings not covered by the baseline
// fail the run, and baseline entries no longer matched are reported as
// stale so the file can only shrink. -update-baseline rewrites the file
// to exactly cover the current findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"parsssp/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list           = flag.Bool("list", false, "list the analyzers and exit")
		jsonOut        = flag.Bool("json", false, "emit findings as JSON on stdout")
		sarifPath      = flag.String("sarif", "", "write a SARIF 2.1.0 report to `file` (\"-\" for stdout)")
		baselinePath   = flag.String("baseline", "", "tolerate findings recorded in the baseline `file`; new findings still fail")
		updateBaseline = flag.Bool("update-baseline", false, "rewrite -baseline to exactly cover the current findings and exit 0")
		auditAllows    = flag.Bool("audit-allows", false, "fail on //parssspvet:allow directives that suppress nothing")
		debug          = flag.Bool("debug", false, "print per-analyzer timing to stderr")
		serial         = flag.Bool("serial", false, "analyze packages serially instead of in parallel")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: parssspvet [flags] [pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *updateBaseline && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "parssspvet: -update-baseline requires -baseline")
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := lint.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "parssspvet:", err)
		return 2
	}
	pkgs, err := mod.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parssspvet:", err)
		return 2
	}
	// Surface type-checking problems: analysis on broken type information
	// would silently miss violations, so a non-compiling tree is a hard
	// failure just like in go vet.
	typeErrs := 0
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			fmt.Fprintln(os.Stderr, "parssspvet: type error:", e)
			typeErrs++
		}
	}
	if typeErrs > 0 {
		return 2
	}

	res := lint.Run(pkgs, lint.Analyzers(), lint.RunOptions{Serial: *serial})

	if *debug {
		names := make([]string, 0, len(res.Timing))
		for name := range res.Timing {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool { return res.Timing[names[i]] > res.Timing[names[j]] })
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "parssspvet: timing %-16s %v\n", name, res.Timing[name])
		}
	}

	rel := func(filename string) string {
		if r, err := filepath.Rel(mod.Root, filename); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return filepath.ToSlash(filename)
	}

	if *updateBaseline {
		entries := lint.BaselineFromFindings(res.Findings, rel)
		if err := lint.SaveBaseline(*baselinePath, entries); err != nil {
			fmt.Fprintln(os.Stderr, "parssspvet:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "parssspvet: wrote %s with %d entry group(s) covering %d finding(s)\n",
			*baselinePath, len(entries), len(res.Findings))
		return 0
	}

	// The findings that gate the exit status: with a baseline, only the
	// fresh ones beyond it.
	gating := res.Findings
	var stale []lint.BaselineEntry
	if *baselinePath != "" {
		entries, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "parssspvet:", err)
			return 2
		}
		gating, stale = lint.ApplyBaseline(entries, res.Findings, rel)
	}

	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, gating, rel); err != nil {
			fmt.Fprintln(os.Stderr, "parssspvet:", err)
			return 2
		}
	}

	status := 0
	if *jsonOut {
		if err := writeJSON(os.Stdout, gating, rel); err != nil {
			fmt.Fprintln(os.Stderr, "parssspvet:", err)
			return 2
		}
	} else {
		for _, f := range gating {
			fmt.Println(relativize(f, mod.Root))
		}
	}
	if len(gating) > 0 {
		kind := "finding(s)"
		if *baselinePath != "" {
			kind = "finding(s) beyond the baseline"
		}
		fmt.Fprintf(os.Stderr, "parssspvet: %d %s in %d package(s)\n", len(gating), kind, len(pkgs))
		status = 1
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr,
			"parssspvet: stale baseline entry %s %s %q: now %d finding(s); ratchet the count down\n",
			e.Analyzer, e.File, e.Message, e.Count)
	}
	if len(stale) > 0 && status == 0 {
		// Stale entries alone do not fail the gate — they are the ratchet's
		// reminder — unless the operator asked for a strict audit.
		if *auditAllows {
			status = 1
		}
	}
	if *auditAllows {
		for _, u := range res.UnusedAllows {
			fmt.Fprintf(os.Stderr,
				"parssspvet: stale suppression %s:%d:%d: //parssspvet:allow %s no longer suppresses anything; delete it\n",
				rel(u.Pos.Filename), u.Pos.Line, u.Pos.Column, u.Analyzer)
		}
		if len(res.UnusedAllows) > 0 {
			status = 1
		}
	}
	return status
}

// relativize shortens a finding's absolute file name to be module-root
// relative for readable output.
func relativize(f lint.Finding, root string) string {
	s := f.String()
	if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		s = fmt.Sprintf("%s:%d:%d: %s: %s", rel, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	return s
}
