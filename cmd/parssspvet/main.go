// Command parssspvet runs parsssp's domain-specific static analyzers
// over the module and exits non-zero on findings. It enforces the
// invariants the paper's algorithms rely on but the compiler cannot
// check: a wall-clock- and global-randomness-free deterministic core,
// consistent sync/atomic use on shared relaxation state, transport
// errors that always propagate, and the Add-before-go / defer-Done
// WaitGroup discipline.
//
// Usage:
//
//	parssspvet [-list] [pattern ...]
//
// Patterns are resolved relative to the module root and default to
// "./...". Exit status: 0 clean, 1 findings, 2 usage or load failure.
// Findings can be suppressed with a justified directive:
//
//	//parssspvet:allow <analyzer> -- <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"parsssp/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: parssspvet [-list] [pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := lint.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "parssspvet:", err)
		os.Exit(2)
	}
	pkgs, err := mod.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parssspvet:", err)
		os.Exit(2)
	}
	// Surface type-checking problems: analysis on broken type information
	// would silently miss violations, so a non-compiling tree is a hard
	// failure just like in go vet.
	typeErrs := 0
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			fmt.Fprintln(os.Stderr, "parssspvet: type error:", e)
			typeErrs++
		}
	}
	if typeErrs > 0 {
		os.Exit(2)
	}

	findings := lint.RunAnalyzers(pkgs, lint.Analyzers())
	for _, f := range findings {
		fmt.Println(relativize(f, mod.Root))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "parssspvet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

// relativize shortens a finding's absolute file name to be module-root
// relative for readable output.
func relativize(f lint.Finding, root string) string {
	s := f.String()
	if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		s = fmt.Sprintf("%s:%d:%d: %s: %s", rel, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	return s
}
