// Command sssp runs a single-source shortest path query on a generated or
// saved graph and prints performance statistics.
//
// Usage:
//
//	sssp [flags]
//
// Examples:
//
//	sssp -family 1 -scale 16 -ranks 8 -algo opt -delta 25
//	sssp -input graph.bin -algo del -delta 40 -root 7
//	sssp -family 2 -scale 14 -algo opt -verify
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"parsssp/internal/graph"
	"parsssp/internal/partition"
	"parsssp/internal/rmat"
	"parsssp/internal/sssp"
	"parsssp/internal/validate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sssp: ")
	var (
		family   = flag.Int("family", 1, "R-MAT family (1 = Graph500 BFS spec, 2 = SSSP spec)")
		scale    = flag.Int("scale", 14, "log2 of the vertex count for generated graphs")
		seed     = flag.Uint64("seed", 42, "random seed for graph generation")
		input    = flag.String("input", "", "binary edge-list file (overrides generation)")
		ranks    = flag.Int("ranks", 4, "number of logical ranks")
		threads  = flag.Int("threads", 2, "worker threads per rank")
		algo     = flag.String("algo", "opt", "algorithm: plain|del|prune|opt|lbopt|dijkstra|bellmanford")
		delta    = flag.Uint("delta", 25, "bucket width Δ (0 = auto-tune over the paper's candidate grid)")
		root     = flag.Int("root", 0, "source vertex (-1 = first non-isolated)")
		split    = flag.Int("split", 0, "vertex-splitting degree threshold (0 = off, -1 = auto)")
		cyclic   = flag.Bool("cyclic", false, "use cyclic instead of block vertex distribution")
		verify   = flag.Bool("verify", false, "check distances against sequential Dijkstra")
		tree     = flag.Bool("tree", false, "validate the SSSP tree structurally (Graph500-style)")
		trace    = flag.Bool("trace", false, "print a per-epoch execution trace")
		timeline = flag.Bool("timeline", false, "print the per-phase execution timeline")
		batch    = flag.Int("batch", 0, "run N random roots and report harmonic mean TEPS (Graph500 style)")
	)
	flag.Parse()

	g, err := loadGraph(*input, *family, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, max degree %d\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	deltaW := graph.Weight(*delta)
	if *delta == 0 {
		deltaW = autoTuneDelta(g, *ranks, *seed, *algo, *threads)
	}
	opts, err := algoOptions(*algo, deltaW)
	if err != nil {
		log.Fatal(err)
	}
	opts.Threads = *threads
	if *trace {
		opts.Trace = os.Stderr
	}
	if *timeline {
		opts.RecordPhases = true
	}

	if *batch > 0 {
		runBatchMode(g, *ranks, *batch, *seed, opts)
		return
	}

	src := graph.Vertex(*root)
	if *root < 0 {
		for v := 0; v < g.NumVertices(); v++ {
			if g.Degree(graph.Vertex(v)) > 0 {
				src = graph.Vertex(v)
				break
			}
		}
	}

	res, err := runQuery(g, *ranks, src, opts, *split, *cyclic)
	if err != nil {
		log.Fatal(err)
	}
	printStats(g, res)
	if *timeline {
		if err := sssp.FormatTimeline(os.Stdout, res.Stats.PhaseLog); err != nil {
			log.Fatal(err)
		}
	}

	if *verify {
		if err := validate.Distances(g, src, res.Dist); err != nil {
			log.Fatal(err)
		}
		fmt.Println("verify: distances match sequential Dijkstra")
	}
	if *tree {
		if *split != 0 {
			log.Fatal("-tree is incompatible with -split (proxies change the tree)")
		}
		if err := validate.CheckTree(g, src, res.Dist, res.Parent); err != nil {
			log.Fatal(err)
		}
		fmt.Println("tree: SSSP tree is structurally valid")
	}
}

// autoTuneDelta sweeps the paper's Δ candidates with quick trial
// queries and returns the fastest.
func autoTuneDelta(g *graph.Graph, ranks int, seed uint64, algo string, threads int) graph.Weight {
	opts, err := algoOptions(algo, 25)
	if err != nil {
		log.Fatal(err)
	}
	opts.Threads = threads
	roots, err := sssp.PickRoots(g, 2, seed^0x7A7A)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sssp.TuneDelta(g, ranks, roots, opts, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auto-tune: Δ=%d fastest (trials: %v)\n", res.Best, res.Trials)
	return res.Best
}

// runBatchMode runs the Graph500-style multi-root measurement.
func runBatchMode(g *graph.Graph, ranks, keys int, seed uint64, opts sssp.Options) {
	roots, err := sssp.PickRoots(g, keys, seed^0x5353)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sssp.RunBatch(g, ranks, roots, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch: %d search keys on %d ranks\n", keys, ranks)
	fmt.Printf("harmonic mean TEPS: %.4g (%.4f GTEPS)\n",
		res.HarmonicMeanTEPS, res.HarmonicMeanTEPS/1e9)
	fmt.Printf("mean time: %.2f ms  mean relaxations: %.0f\n",
		res.MeanTimeSeconds*1e3, res.MeanRelaxations)
}

func loadGraph(input string, family, scale int, seed uint64) (*graph.Graph, error) {
	if input != "" {
		return graph.LoadGraphFile(input) // .gr = DIMACS, else binary
	}
	p := rmat.Family1(scale, seed)
	if family == 2 {
		p = rmat.Family2(scale, seed)
	}
	return rmat.Generate(p)
}

func algoOptions(name string, delta graph.Weight) (sssp.Options, error) {
	switch name {
	case "plain":
		return sssp.Options{Delta: delta}, nil
	case "del":
		return sssp.DelOptions(delta), nil
	case "prune":
		return sssp.PruneOptions(delta), nil
	case "opt":
		return sssp.OptOptions(delta), nil
	case "lbopt":
		return sssp.LBOptOptions(delta), nil
	case "dijkstra":
		return sssp.DijkstraOptions(), nil
	case "bellmanford":
		return sssp.BellmanFordOptions(), nil
	default:
		return sssp.Options{}, fmt.Errorf("unknown algorithm %q", name)
	}
}

func runQuery(g *graph.Graph, ranks int, src graph.Vertex, opts sssp.Options,
	split int, cyclic bool) (*sssp.Result, error) {
	kind := partition.Block
	if cyclic || split != 0 {
		kind = partition.Cyclic
	}
	work := g
	var sr *partition.SplitResult
	if split != 0 {
		opt := partition.SplitOptions{DegreeThreshold: split, MaxProxies: ranks}
		if split < 0 {
			opt = partition.AutoSplitOptions(g, ranks)
			fmt.Printf("split: auto threshold %d\n", opt.DegreeThreshold)
		}
		var err error
		sr, err = partition.SplitHeavyVertices(g, opt)
		if err != nil {
			return nil, err
		}
		work = sr.Graph
		if sr.NumSplit > 0 {
			fmt.Printf("split: %d heavy vertices into %d proxies\n",
				sr.NumSplit, work.NumVertices()-g.NumVertices())
		}
	}
	pd, err := partition.New(kind, work.NumVertices(), ranks)
	if err != nil {
		return nil, err
	}
	res, err := sssp.RunDistributed(work, pd, src, opts)
	if err != nil {
		return nil, err
	}
	if sr != nil {
		res.Dist = sr.RestrictDistances(res.Dist)
	}
	return res, nil
}

func printStats(g *graph.Graph, res *sssp.Result) {
	s := &res.Stats
	fmt.Printf("time: %v  (bucket overhead %v, relax+comm %v)\n", s.Total, s.BktTime, s.OtherTime)
	fmt.Printf("GTEPS: %.4f\n", s.GTEPS(g.NumEdges()))
	fmt.Printf("reached: %d / %d vertices\n", s.Reached, g.NumVertices())
	fmt.Printf("epochs: %d  phases: %d  hybrid-switched: %v (BF rounds %d)\n",
		s.Epochs, s.Phases, s.HybridSwitched, s.BFPhases)
	r := s.Relax
	fmt.Printf("relaxations: total %d  short %d  outer-short %d  long-push %d  requests %d  responses %d  bellman-ford %d\n",
		r.Total(), r.ShortPush, r.OuterShortPush, r.LongPush, r.PullRequests, r.PullResponses, r.BellmanFord)
	fmt.Printf("decisions: %v\n", s.Decisions)
	fmt.Printf("traffic: %d exchanges, %d messages, %.2f MB sent\n",
		s.Traffic.ExchangeCalls, s.Traffic.MessagesSent, float64(s.Traffic.BytesSent)/1e6)
	if len(os.Args) > 0 && s.Total > 0 {
		fmt.Printf("relax rate: %.2f M/s\n", float64(r.Total())/s.Total.Seconds()/1e6)
	}
}
