package main

import (
	"strings"
	"sync"
	"testing"

	"parsssp/internal/graph"
	"parsssp/internal/sssp"
)

func TestParseUpdate(t *testing.T) {
	const n = 100
	good := []struct {
		line string
		want sssp.EdgeUpdate
	}{
		{"add 3 5 7", sssp.EdgeUpdate{Op: sssp.OpInsert, U: 3, V: 5, W: 7}},
		{"ADD 0 99 255", sssp.EdgeUpdate{Op: sssp.OpInsert, U: 0, V: 99, W: 255}},
		{"del 3 5", sssp.EdgeUpdate{Op: sssp.OpDelete, U: 3, V: 5}},
	}
	for _, tc := range good {
		b, err := parseUpdate(strings.Fields(tc.line), n)
		if err != nil {
			t.Errorf("parseUpdate(%q): %v", tc.line, err)
			continue
		}
		if len(b) != 1 || b[0] != tc.want {
			t.Errorf("parseUpdate(%q) = %+v, want %+v", tc.line, b, tc.want)
		}
	}
	bad := []string{
		"",                   // missing op
		"frob 1 2",           // unknown op
		"add 1 2",            // insert without weight
		"add 1 2 3 4",        // too many fields
		"del 1",              // delete missing endpoint
		"del 1 2 3",          // delete with weight
		"add x 2 3",          // non-numeric
		"add 1 2 -3",         // negative weight
		"add 7 7 1",          // self-loop
		"del 1 100",          // out of range
		"add 1 4294967296 1", // overflows Vertex
	}
	for _, line := range bad {
		if _, err := parseUpdate(strings.Fields(line), n); err == nil {
			t.Errorf("parseUpdate(%q) accepted bad input", line)
		}
	}
}

func TestAdmissionShedsWhenFull(t *testing.T) {
	adm := &admission{
		lines:   make(chan serveCmd, 1),
		policy:  "radius(32)",
		version: func() uint64 { return 3 },
	}
	var replies []string
	reply := func(s string) { replies = append(replies, s) }
	adm.admit(serveCmd{src: 1, reply: reply})
	adm.admit(serveCmd{src: 2, reply: reply}) // queue full: shed
	if len(replies) != 1 || !strings.Contains(replies[0], "busy") {
		t.Fatalf("expected one busy reply, got %q", replies)
	}
	if got := adm.shed.Load(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	line := adm.statsLine()
	for _, want := range []string{"version=3", "policy=radius(32)", "queued=1", "shed=1"} {
		if !strings.Contains(line, want) {
			t.Errorf("stats line %q missing %q", line, want)
		}
	}
	// Draining the queue frees capacity again.
	<-adm.lines
	adm.admit(serveCmd{src: 3, reply: reply})
	if len(replies) != 1 {
		t.Fatalf("admission after drain was shed: %q", replies)
	}
}

func TestDispatchCoalescesUpdates(t *testing.T) {
	// Three updates and a query are queued before the (single) slot
	// worker picks anything up: the updates must merge into one batch and
	// one version, every merged line must get the shared version reply,
	// and the query must still run after the apply.
	lines := make(chan serveCmd, 8)
	reqs := make(chan serveReq, 8)
	upd := []chan updateCmd{make(chan updateCmd)}
	done := []chan struct{}{make(chan struct{})}
	allDead := make(chan struct{})

	var mu sync.Mutex
	var updReplies []string
	updReply := func(s string) { mu.Lock(); updReplies = append(updReplies, s); mu.Unlock() }
	mkUpd := func(u, v int) serveCmd {
		return serveCmd{update: true, reply: updReply,
			batch: sssp.UpdateBatch{{Op: sssp.OpInsert, U: graph.Vertex(u), V: graph.Vertex(v), W: 1}}}
	}
	lines <- mkUpd(1, 2)
	lines <- mkUpd(3, 4)
	lines <- mkUpd(5, 6)
	lines <- serveCmd{src: 7, reply: func(string) {}}
	close(lines)

	go dispatch(lines, reqs, upd, done, allDead)

	uc := <-upd[0]
	if uc.target != 1 {
		t.Errorf("coalesced update targets version %d, want 1", uc.target)
	}
	batch, err := sssp.DecodeUpdateBatch(uc.enc, 100)
	if err != nil {
		t.Fatalf("decode merged batch: %v", err)
	}
	if len(batch) != 3 {
		t.Errorf("merged batch has %d ops, want 3", len(batch))
	}
	uc.ack <- nil

	req, ok := <-reqs
	if !ok || req.src != 7 {
		t.Fatalf("query after coalesced update: ok=%v src=%d", ok, req.src)
	}
	if _, ok := <-reqs; ok {
		t.Fatal("unexpected extra request")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(updReplies) != 3 {
		t.Fatalf("got %d update replies, want 3: %q", len(updReplies), updReplies)
	}
	for _, r := range updReplies {
		if !strings.Contains(r, "version=1") || !strings.Contains(r, "merged=3") || !strings.Contains(r, "ops=3") {
			t.Errorf("merged reply %q lacks shared version/merge count", r)
		}
	}
}
