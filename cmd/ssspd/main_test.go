package main

import (
	"strings"
	"testing"

	"parsssp/internal/sssp"
)

func TestParseUpdate(t *testing.T) {
	const n = 100
	good := []struct {
		line string
		want sssp.EdgeUpdate
	}{
		{"add 3 5 7", sssp.EdgeUpdate{Op: sssp.OpInsert, U: 3, V: 5, W: 7}},
		{"ADD 0 99 255", sssp.EdgeUpdate{Op: sssp.OpInsert, U: 0, V: 99, W: 255}},
		{"del 3 5", sssp.EdgeUpdate{Op: sssp.OpDelete, U: 3, V: 5}},
	}
	for _, tc := range good {
		b, err := parseUpdate(strings.Fields(tc.line), n)
		if err != nil {
			t.Errorf("parseUpdate(%q): %v", tc.line, err)
			continue
		}
		if len(b) != 1 || b[0] != tc.want {
			t.Errorf("parseUpdate(%q) = %+v, want %+v", tc.line, b, tc.want)
		}
	}
	bad := []string{
		"",                   // missing op
		"frob 1 2",           // unknown op
		"add 1 2",            // insert without weight
		"add 1 2 3 4",        // too many fields
		"del 1",              // delete missing endpoint
		"del 1 2 3",          // delete with weight
		"add x 2 3",          // non-numeric
		"add 1 2 -3",         // negative weight
		"add 7 7 1",          // self-loop
		"del 1 100",          // out of range
		"add 1 4294967296 1", // overflows Vertex
	}
	for _, line := range bad {
		if _, err := parseUpdate(strings.Fields(line), n); err == nil {
			t.Errorf("parseUpdate(%q) accepted bad input", line)
		}
	}
}

func TestAdmissionShedsWhenFull(t *testing.T) {
	adm := &admission{
		lines:   make(chan serveCmd, 1),
		version: func() uint64 { return 3 },
	}
	var replies []string
	reply := func(s string) { replies = append(replies, s) }
	adm.admit(serveCmd{src: 1, reply: reply})
	adm.admit(serveCmd{src: 2, reply: reply}) // queue full: shed
	if len(replies) != 1 || !strings.Contains(replies[0], "busy") {
		t.Fatalf("expected one busy reply, got %q", replies)
	}
	if got := adm.shed.Load(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	line := adm.statsLine()
	for _, want := range []string{"version=3", "queued=1", "shed=1"} {
		if !strings.Contains(line, want) {
			t.Errorf("stats line %q missing %q", line, want)
		}
	}
	// Draining the queue frees capacity again.
	<-adm.lines
	adm.admit(serveCmd{src: 3, reply: reply})
	if len(replies) != 1 {
		t.Fatalf("admission after drain was shed: %q", replies)
	}
}
