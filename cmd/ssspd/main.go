// Command ssspd is the multi-process distributed SSSP runner: each OS
// process is one rank of a TCP message-passing machine (the repo's MPI
// substitute). All ranks must be started with identical flags except
// -rank.
//
// Usage (two ranks on one host):
//
//	ssspd -rank 0 -addrs 127.0.0.1:9410,127.0.0.1:9411 -scale 12 &
//	ssspd -rank 1 -addrs 127.0.0.1:9410,127.0.0.1:9411 -scale 12
//
// Rank 0 gathers all distances at the end, prints the machine-wide
// statistics, and (with -verify) checks against sequential Dijkstra.
//
// With -serve the machine becomes a long-lived concurrent query server
// instead of a one-shot runner: the socket mesh carries -slots logical
// channels, each backing one pooled query slot on every rank
// (sssp.RankServer over tcptransport channels). Rank 0 accepts requests
// — one per line — on stdin and, with -serve-listen, on TCP
// connections:
//
//	17              query from source 17
//	U add 3 5 7     insert edge (3,5) with weight 7 (one new graph version)
//	U del 3 5       delete edge (3,5)
//	stats           report version, queue depth, shed count
//
// Each answer line reports the reached count, an FNV-1a checksum of the
// distance array, and the query time. Up to -slots queries are in
// flight at once; updates are serialized — applied to every slot, with
// finished trees repaired incrementally, before any later line runs. At
// most -queue requests wait for admission; excess lines get an
// immediate busy reply instead of backpressure. A failed query poisons
// only its slot, and the server keeps answering on the others.
package main

import (
	"bufio"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parsssp/internal/comm"
	"parsssp/internal/comm/tcptransport"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
	"parsssp/internal/rmat"
	"parsssp/internal/sssp"
	"parsssp/internal/validate"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run holds the whole daemon body so that the transport's deferred Close
// always executes. The previous shape — log.Fatal at each failure site in
// main — skipped the deferred Close on error, leaving peers to discover
// the death only through their own I/O timeouts; returning the error
// tears the mesh down first, which peers see immediately as closed
// connections.
func run() (err error) {
	var (
		rank        = flag.Int("rank", 0, "this process's rank")
		addrs       = flag.String("addrs", "127.0.0.1:9410,127.0.0.1:9411", "comma-separated host:port per rank")
		family      = flag.Int("family", 1, "R-MAT family (1 or 2)")
		scale       = flag.Int("scale", 12, "log2 vertex count")
		seed        = flag.Uint64("seed", 42, "graph seed (must match across ranks)")
		threads     = flag.Int("threads", 2, "worker threads per rank")
		policy      = flag.String("policy", "delta", "stepping policy: delta, radius or rho (must match across ranks)")
		delta       = flag.Uint("delta", 25, "bucket width Δ (policy delta)")
		radiusK     = flag.Int("radius-k", 0, "radius parameter k (policy radius; 0 = default)")
		rho         = flag.Int("rho", 0, "batch size ρ (policy rho; 0 = default)")
		root        = flag.Int("root", 0, "source vertex")
		verify      = flag.Bool("verify", false, "rank 0 checks distances against Dijkstra")
		dialTimeout = flag.Duration("dial-timeout", 10*time.Second,
			"bound on connection establishment to each peer (dial, accept, handshake)")
		collTimeout = flag.Duration("collective-timeout", 30*time.Second,
			"per-collective bound on peer I/O; a peer silent past this fails the run (0 disables)")
		execMode = flag.String("exec-mode", "bsp", "execution mode: bsp (lockstep phases) or async (barrier-free relaxation)")
		serve    = flag.Bool("serve", false, "serve concurrent queries instead of running one (-root is ignored)")
		slots    = flag.Int("slots", 4, "concurrent query slots in -serve mode")
		queueCap = flag.Int("queue", 64,
			"admission-queue bound in -serve mode; requests beyond it get an immediate busy reply")
		serveListen = flag.String("serve-listen", "",
			"rank 0 also accepts requests on this TCP address in -serve mode (one per line)")
		queryDeadline = flag.Duration("query-deadline", 0,
			"per-query bound in -serve mode: a query running past this poisons its slot only (0 disables)")
	)
	flag.Parse()
	log.SetPrefix(fmt.Sprintf("ssspd[%d]: ", *rank))

	addrList := strings.Split(*addrs, ",")
	for i := range addrList {
		addrList[i] = strings.TrimSpace(addrList[i])
	}

	// Every rank generates the same graph deterministically; in a real
	// deployment each rank would generate or load only its partition, but
	// the CSR is shared-read here for simplicity.
	p := rmat.Family1(*scale, *seed)
	if *family == 2 {
		p = rmat.Family2(*scale, *seed)
	}
	g, err := rmat.Generate(p)
	if err != nil {
		return err
	}

	meshTimeout := *collTimeout
	if *serve {
		// A serving machine is idle between queries, and idleness is
		// indistinguishable from a stalled peer at the transport level: the
		// non-zero ranks wait in a source broadcast until rank 0 has a
		// query to hand out. A collective timeout would shoot down the
		// whole mesh after -collective-timeout of quiet, so serve mode runs
		// without one; stall detection is -query-deadline, which is scoped
		// to one query on one slot channel and poisons only that slot.
		meshTimeout = 0
	}
	t, err := tcptransport.New(tcptransport.Config{
		Addrs:             addrList,
		Rank:              *rank,
		DialTimeout:       *dialTimeout,
		CollectiveTimeout: meshTimeout,
	})
	if err != nil {
		return err
	}
	defer func() {
		err = errors.Join(err, t.Close())
	}()

	pd, err := partition.New(partition.Block, g.NumVertices(), len(addrList))
	if err != nil {
		return err
	}
	// The policy (like every flag but -rank) must be identical across
	// ranks: it shapes the collective schedule. The non-Δ presets carry
	// none of the Δ-only heuristics (Options.Validate rejects those).
	pol, err := sssp.ParseSteppingPolicy(*policy)
	if err != nil {
		return err
	}
	var opts sssp.Options
	switch pol {
	case sssp.PolicyRadius:
		opts = sssp.RadiusSteppingOptions(*radiusK)
	case sssp.PolicyRho:
		opts = sssp.RhoSteppingOptions(*rho)
	default:
		opts = sssp.OptOptions(graph.Weight(*delta))
	}
	opts.Threads = *threads
	opts.ExecMode, err = sssp.ParseExecMode(*execMode)
	if err != nil {
		return err
	}

	if *serve {
		return runServe(t, g, pd, opts, *slots, *queueCap, *serveListen, *queryDeadline)
	}

	rr, err := sssp.RunRank(g, pd, graph.Vertex(*root), opts, t, 0)
	if err != nil {
		return err
	}
	log.Printf("done: %v, %d local relaxations",
		rr.Stats.Total, rr.Stats.Relax.Total())

	dist, err := gatherDistances(t, pd, rr)
	if err != nil {
		return err
	}
	if t.Rank() == 0 {
		var reached int64
		for _, d := range dist {
			if d < graph.Inf {
				reached++
			}
		}
		fmt.Printf("machine: %d ranks, graph %d vertices / %d edges\n",
			t.Size(), g.NumVertices(), g.NumEdges())
		fmt.Printf("time %v, GTEPS %.4f, reached %d\n",
			rr.Stats.Total, rr.Stats.GTEPS(g.NumEdges()), reached)
		if *verify {
			if err := validate.Distances(g, graph.Vertex(*root), dist); err != nil {
				return err
			}
			fmt.Println("verify: distances match sequential Dijkstra")
		}
	}
	return nil
}

// serveReq is one admitted query: a source vertex and where its answer
// line goes.
type serveReq struct {
	src   graph.Vertex
	reply func(string)
}

// serveCmd is one parsed input line bound for the dispatcher: a query
// source or an update batch.
type serveCmd struct {
	update bool
	batch  sssp.UpdateBatch
	src    graph.Vertex
	reply  func(string)
}

// updateCmd is one update broadcast to a slot worker: the version it
// produces, the wire-encoded batch rank 0 ships to its peers, and the
// ack the dispatcher waits on before touching the next slot or line.
type updateCmd struct {
	target uint64
	enc    []byte
	ack    chan error
}

// admission is rank 0's bounded intake: lines wait in the buffered
// channel for the dispatcher; when it is full the request is shed with
// an immediate busy reply instead of blocking the reader.
type admission struct {
	lines   chan serveCmd
	shed    atomic.Int64
	g       *graph.Graph
	policy  string
	version func() uint64
}

// admit queues one command, shedding it with a busy reply when the
// queue is full.
func (a *admission) admit(cmd serveCmd) {
	select {
	case a.lines <- cmd:
	default:
		a.shed.Add(1)
		cmd.reply("busy: admission queue full")
	}
}

// statsLine reports the serving state: the current graph version, the
// active stepping policy with its resolved parameter (e.g. delta(25),
// radius(32)), and the admission queue's depth and shed count.
func (a *admission) statsLine() string {
	return fmt.Sprintf("stats version=%d policy=%s queued=%d shed=%d",
		a.version(), a.policy, len(a.lines), a.shed.Load())
}

// printer serializes answer lines from concurrent slot workers.
type printer struct {
	mu sync.Mutex
	w  io.Writer
}

func (p *printer) println(line string) {
	p.mu.Lock()
	fmt.Fprintln(p.w, line)
	p.mu.Unlock()
}

// runServe is the -serve mode body, executed by every rank. The mesh is
// split into `slots` logical channels; each backs one sssp.RankServer
// slot on every rank, so up to `slots` queries run concurrently with
// per-slot failure isolation. Rank 0 is the front end: it admits
// requests from stdin (and -serve-listen connections) through a bounded
// queue, dispatches queries to whichever slot frees up first and
// updates to every slot in turn, and writes the answer lines; the other
// ranks' workers are driven entirely by the per-slot broadcasts.
//
// Per-slot protocol, in lockstep on every rank: (1) a [code, arg]
// Allreduce(Max) where rank 0 contributes the operation and everyone
// else zeros — code 0 is shutdown, code 1 a query (arg = source), code
// 2 an update (arg = target graph version); (2) the operation's body —
// for a query, the run and the distance gather to rank 0; for an
// update, an Exchange broadcasting rank 0's wire-encoded batch, then
// sssp.RankServer.ApplyUpdates (graph rebuilt once per process,
// finished trees repaired incrementally). An error ends that slot's
// workers everywhere (the abort poisons the slot's channel on every
// rank) and is reported to the caller whose request failed; the
// remaining slots keep serving. Shutdown is stdin EOF: each worker the
// dispatcher releases broadcasts the sentinel, and the process exits
// when every slot's worker has.
func runServe(t *tcptransport.Transport, g *graph.Graph, pd partition.Dist,
	opts sssp.Options, slots, queueCap int, listenAddr string, queryDeadline time.Duration) error {
	if slots < 1 {
		return fmt.Errorf("ssspd: -slots must be >= 1, got %d", slots)
	}
	if queueCap < 1 {
		return fmt.Errorf("ssspd: -queue must be >= 1, got %d", queueCap)
	}
	chans := make([]comm.Transport, slots)
	for s := 0; s < slots; s++ {
		ch, err := t.Channel(uint32(s + 1)) // channel 0 stays the root transport's
		if err != nil {
			return err
		}
		chans[s] = ch
	}
	server, err := sssp.NewRankServer(g, pd, opts, chans)
	if err != nil {
		return err
	}
	defer func() {
		server.Close()
	}()
	rank0 := t.Rank() == 0

	out := &printer{w: os.Stdout}
	var reqs chan serveReq
	var updChs []chan updateCmd
	done := make([]chan struct{}, slots) // done[s] closes when slot s's worker returns
	for s := range done {
		done[s] = make(chan struct{})
	}
	allDead := make(chan struct{})

	if rank0 {
		reqs = make(chan serveReq)
		updChs = make([]chan updateCmd, slots)
		for s := range updChs {
			updChs[s] = make(chan updateCmd)
		}
		adm := &admission{
			lines:   make(chan serveCmd, queueCap),
			g:       g,
			policy:  opts.PolicyString(),
			version: server.Version,
		}
		var intake sync.WaitGroup
		intake.Add(1)
		go func() {
			defer intake.Done()
			admitRequests(os.Stdin, adm, out.println)
		}()
		if listenAddr != "" {
			ln, lerr := net.Listen("tcp", listenAddr)
			if lerr != nil {
				return lerr
			}
			log.Printf("serving on %s", ln.Addr())
			// The listener intake never finishes on its own; with
			// -serve-listen the server runs until the process is killed.
			intake.Add(1)
			go func() {
				defer intake.Done()
				for {
					conn, aerr := ln.Accept()
					if aerr != nil {
						return
					}
					go func(conn net.Conn) {
						defer conn.Close()
						connOut := &printer{w: conn}
						admitRequests(conn, adm, connOut.println)
					}(conn)
				}
			}()
		}
		go func() {
			intake.Wait()
			close(adm.lines)
		}()
		go dispatch(adm.lines, reqs, updChs, done, allDead)
	}

	workerErrs := make([]error, slots)
	var wg sync.WaitGroup
	var live atomic.Int64
	live.Store(int64(slots))
	for s := 0; s < slots; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var upd chan updateCmd
			if rank0 {
				upd = updChs[s]
			}
			workerErrs[s] = slotWorker(s, chans[s], server, g, pd, rank0, reqs, upd, out, queryDeadline)
			close(done[s])
			if live.Add(-1) == 0 {
				close(allDead)
			}
		}(s)
	}
	wg.Wait()
	if rank0 {
		// Every slot is gone (all failed, or shutdown won the race);
		// queries the dispatcher still forwards get an immediate refusal
		// through allDead, and the dispatcher drains until the intakes
		// close the queue.
		for req := range reqs {
			req.reply(fmt.Sprintf("error src=%d: no live query slots", req.src))
		}
	}
	return errors.Join(workerErrs...)
}

// dispatch serializes rank 0's admitted lines. Queries are handed to
// whichever slot's worker frees up first; an update is applied — and
// acknowledged — on every live slot before any later line is forwarded,
// so every subsequent query runs on the updated graph.
//
// Consecutive queued update lines are coalesced into one batch and one
// graph version before applying: each U line still costs a broadcast and
// an incremental repair on every slot, so a burst of updates admitted
// while an earlier one was being applied would otherwise pay that
// per-slot cost once per line. Coalescing stops at the first queued
// query, which keeps the serialized semantics exact — a query admitted
// between two updates still runs on a graph with only the earlier one
// applied. Every merged line is answered with the shared version it
// landed in. Closing reqs at the end releases the idle workers into
// their shutdown broadcast.
func dispatch(lines <-chan serveCmd, reqs chan<- serveReq,
	upd []chan updateCmd, done []chan struct{}, allDead <-chan struct{}) {
	version := uint64(0)
	forward := func(cmd serveCmd) {
		select {
		case reqs <- serveReq{src: cmd.src, reply: cmd.reply}:
		case <-allDead:
			cmd.reply(fmt.Sprintf("error src=%d: no live query slots", cmd.src))
		}
	}
	for cmd := range lines {
		if !cmd.update {
			forward(cmd)
			continue
		}
		batch := cmd.batch
		replies := []func(string){cmd.reply}
		var next *serveCmd
	coalesce:
		for {
			select {
			case nxt, ok := <-lines:
				if !ok {
					break coalesce
				}
				if !nxt.update {
					next = &nxt
					break coalesce
				}
				batch = append(append(sssp.UpdateBatch(nil), batch...), nxt.batch...)
				replies = append(replies, nxt.reply)
			default:
				break coalesce
			}
		}
		version++
		uc := updateCmd{
			target: version,
			enc:    sssp.EncodeUpdateBatch(batch),
			ack:    make(chan error, 1),
		}
		applied := 0
		var failures []string
		for s := range upd {
			select {
			case upd[s] <- uc:
			case <-done[s]:
				continue
			}
			if err := <-uc.ack; err != nil {
				failures = append(failures, fmt.Sprintf("slot %d: %v", s, err))
			} else {
				applied++
			}
		}
		var line string
		switch {
		case len(failures) > 0:
			line = fmt.Sprintf("error update version=%d: %s", version, strings.Join(failures, "; "))
		case applied == 0:
			line = fmt.Sprintf("error update version=%d: no live query slots", version)
		default:
			line = fmt.Sprintf("updated version=%d ops=%d slots=%d merged=%d",
				version, len(batch), applied, len(replies))
		}
		for _, reply := range replies {
			reply(line)
		}
		if next != nil {
			forward(*next)
		}
	}
	close(reqs)
}

// admitRequests parses request lines off r, answering malformed lines
// and stats requests directly and queueing the rest through the bounded
// admission queue (see serveCmd for the grammar).
func admitRequests(r io.Reader, adm *admission, reply func(string)) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "stats") {
			reply(adm.statsLine())
			continue
		}
		fields := strings.Fields(line)
		if strings.EqualFold(fields[0], "U") {
			batch, err := parseUpdate(fields[1:], adm.g.NumVertices())
			if err != nil {
				reply(fmt.Sprintf("error: bad update %q: %v", line, err))
				continue
			}
			adm.admit(serveCmd{update: true, batch: batch, reply: reply})
			continue
		}
		src, err := strconv.ParseUint(line, 10, 32)
		if err != nil || int(src) >= adm.g.NumVertices() {
			reply(fmt.Sprintf("error: bad source %q", line))
			continue
		}
		adm.admit(serveCmd{src: graph.Vertex(src), reply: reply})
	}
}

// parseUpdate parses the fields after the leading "U" of an update
// line: "add u v w" inserts edge (u,v) with weight w, "del u v"
// deletes edge (u,v). The batch is validated against the vertex count
// before it is admitted, so a bad update is refused at the front door.
func parseUpdate(fields []string, n int) (sssp.UpdateBatch, error) {
	uintField := func(s string) (uint64, error) {
		v, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("bad number %q", s)
		}
		return v, nil
	}
	if len(fields) == 0 {
		return nil, errors.New("missing op (add or del)")
	}
	var rec sssp.EdgeUpdate
	var nargs int
	switch {
	case strings.EqualFold(fields[0], "add"):
		rec.Op, nargs = sssp.OpInsert, 3
	case strings.EqualFold(fields[0], "del"):
		rec.Op, nargs = sssp.OpDelete, 2
	default:
		return nil, fmt.Errorf("unknown op %q (want add or del)", fields[0])
	}
	if len(fields)-1 != nargs {
		return nil, fmt.Errorf("%s takes %d arguments, got %d", strings.ToLower(fields[0]), nargs, len(fields)-1)
	}
	u, err := uintField(fields[1])
	if err != nil {
		return nil, err
	}
	v, err := uintField(fields[2])
	if err != nil {
		return nil, err
	}
	rec.U, rec.V = graph.Vertex(u), graph.Vertex(v)
	if rec.Op == sssp.OpInsert {
		w, err := uintField(fields[3])
		if err != nil {
			return nil, err
		}
		rec.W = graph.Weight(w)
	}
	batch := sssp.UpdateBatch{rec}
	if err := batch.Validate(n); err != nil {
		return nil, err
	}
	return batch, nil
}

// Slot-protocol operation codes; see runServe.
const (
	opShutdown = 0
	opQuery    = 1
	opUpdate   = 2
)

// slotWorker drives one slot's lockstep loop; see runServe for the
// protocol. Returns nil on clean shutdown and the slot-killing error
// otherwise (on the rank whose caller was answered in-band — rank 0 —
// the worker returns nil).
func slotWorker(s int, ch comm.Transport, server *sssp.RankServer, g *graph.Graph,
	pd partition.Dist, rank0 bool, reqs <-chan serveReq, updIn <-chan updateCmd, out *printer,
	queryDeadline time.Duration) error {
	for {
		contrib := [2]int64{opShutdown, 0}
		var req serveReq
		var upd updateCmd
		var admitted, isUpdate bool
		if rank0 {
			select {
			case upd, isUpdate = <-updIn:
				contrib = [2]int64{opUpdate, int64(upd.target)}
			case req, admitted = <-reqs:
				if admitted {
					contrib = [2]int64{opQuery, int64(req.src)}
				}
			}
		}
		vals, err := ch.AllreduceInt64(contrib[:], comm.Max)
		if err != nil {
			switch {
			case isUpdate:
				upd.ack <- err
				return nil
			case admitted:
				req.reply(fmt.Sprintf("error src=%d: %v", req.src, err))
				return nil
			default:
				return fmt.Errorf("slot %d: request broadcast: %w", s, err)
			}
		}

		switch vals[0] {
		case opShutdown:
			return nil

		case opQuery:
			src := graph.Vertex(vals[1])
			// Arm the per-query deadline: every rank bounds its own
			// participation in this one query on this one channel, so an
			// expiry poisons exactly this slot (the abort rides the slot's
			// channel) while the other slots keep serving. The timer is
			// disarmed the moment this rank's part of the answer is done —
			// the mesh-wide CollectiveTimeout stays off in serve mode (see
			// run), so idle waiting never trips anything.
			var deadline *time.Timer
			if queryDeadline > 0 {
				deadline = time.AfterFunc(queryDeadline, func() {
					comm.Abort(ch, fmt.Errorf("slot %d: query src=%d exceeded deadline %v", s, src, queryDeadline))
				})
			}
			rr, err := server.Query(s, src)
			if err == nil {
				var dist []graph.Dist
				dist, err = gatherDistances(ch, pd, rr)
				if err == nil && rank0 {
					var reached int64
					h := fnv.New64a()
					var buf [8]byte
					for _, d := range dist {
						if d < graph.Inf {
							reached++
						}
						binary.LittleEndian.PutUint64(buf[:], uint64(d))
						h.Write(buf[:])
					}
					req.reply(fmt.Sprintf("answer src=%d reached=%d checksum=%016x time=%v",
						src, reached, h.Sum64(), rr.Stats.Total))
				}
			}
			if deadline != nil {
				deadline.Stop()
			}
			if err != nil {
				if admitted {
					req.reply(fmt.Sprintf("error src=%d: %v", src, err))
					return nil
				}
				return fmt.Errorf("slot %d: query src=%d: %w", s, src, err)
			}

		case opUpdate:
			target := uint64(vals[1])
			err := applyUpdate(s, ch, server, g, target, upd.enc, rank0)
			if isUpdate { // rank 0: ack the dispatcher either way
				upd.ack <- err
				if err != nil {
					return nil
				}
			} else if err != nil {
				return fmt.Errorf("slot %d: update to version %d: %w", s, target, err)
			}

		default:
			err := fmt.Errorf("slot %d: protocol code %d", s, vals[0])
			comm.Abort(ch, err)
			return err
		}
	}
}

// applyUpdate runs the update body of the slot protocol: rank 0
// broadcasts the wire-encoded batch over the slot's channel, every rank
// decodes it (a damaged batch fails whole, applying nothing) and moves
// its slot to the target version, repairing its finished tree
// incrementally. Any failure aborts the slot's channel so no peer hangs
// in the collective.
func applyUpdate(s int, ch comm.Transport, server *sssp.RankServer,
	g *graph.Graph, target uint64, enc []byte, rank0 bool) error {
	bufs := make([][]byte, ch.Size())
	if rank0 {
		for d := range bufs {
			bufs[d] = enc
		}
	}
	in, err := ch.Exchange(bufs)
	if err != nil {
		return err
	}
	batch, err := sssp.DecodeUpdateBatch(in[0], g.NumVertices())
	if err != nil {
		err = fmt.Errorf("update batch from rank 0: %w", err)
		comm.Abort(ch, err)
		return err
	}
	if _, err := server.ApplyUpdates(s, target, batch); err != nil {
		// ApplyUpdates aborts on repair failures; abort again for the
		// pre-collective refusals (version skew) so peers never hang.
		comm.Abort(ch, err)
		return err
	}
	return nil
}

// gatherDistances sends every rank's local distances to rank 0, which
// assembles the global array (other ranks return nil).
func gatherDistances(t comm.Transport, pd partition.Dist, rr *sssp.RankResult) ([]graph.Dist, error) {
	payload := make([]byte, 8*len(rr.LocalDist))
	for i, d := range rr.LocalDist {
		binary.LittleEndian.PutUint64(payload[8*i:], uint64(d))
	}
	out := make([][]byte, t.Size())
	out[0] = payload
	in, err := t.Exchange(out)
	if err != nil {
		return nil, err
	}
	if t.Rank() != 0 {
		return nil, nil
	}
	dist := make([]graph.Dist, pd.NumVertices())
	for r, buf := range in {
		n := pd.Count(r)
		if len(buf) != 8*n {
			return nil, fmt.Errorf("gather: rank %d sent %d bytes, want %d", r, len(buf), 8*n)
		}
		for li := 0; li < n; li++ {
			dist[pd.Global(r, li)] = graph.Dist(binary.LittleEndian.Uint64(buf[8*li:]))
		}
	}
	return dist, nil
}
