// Command ssspd is the multi-process distributed SSSP runner: each OS
// process is one rank of a TCP message-passing machine (the repo's MPI
// substitute). All ranks must be started with identical flags except
// -rank.
//
// Usage (two ranks on one host):
//
//	ssspd -rank 0 -addrs 127.0.0.1:9410,127.0.0.1:9411 -scale 12 &
//	ssspd -rank 1 -addrs 127.0.0.1:9410,127.0.0.1:9411 -scale 12
//
// Rank 0 gathers all distances at the end, prints the machine-wide
// statistics, and (with -verify) checks against sequential Dijkstra.
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"parsssp/internal/comm"
	"parsssp/internal/comm/tcptransport"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
	"parsssp/internal/rmat"
	"parsssp/internal/sssp"
	"parsssp/internal/validate"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run holds the whole daemon body so that the transport's deferred Close
// always executes. The previous shape — log.Fatal at each failure site in
// main — skipped the deferred Close on error, leaving peers to discover
// the death only through their own I/O timeouts; returning the error
// tears the mesh down first, which peers see immediately as closed
// connections.
func run() (err error) {
	var (
		rank        = flag.Int("rank", 0, "this process's rank")
		addrs       = flag.String("addrs", "127.0.0.1:9410,127.0.0.1:9411", "comma-separated host:port per rank")
		family      = flag.Int("family", 1, "R-MAT family (1 or 2)")
		scale       = flag.Int("scale", 12, "log2 vertex count")
		seed        = flag.Uint64("seed", 42, "graph seed (must match across ranks)")
		threads     = flag.Int("threads", 2, "worker threads per rank")
		delta       = flag.Uint("delta", 25, "bucket width Δ")
		root        = flag.Int("root", 0, "source vertex")
		verify      = flag.Bool("verify", false, "rank 0 checks distances against Dijkstra")
		dialTimeout = flag.Duration("dial-timeout", 10*time.Second,
			"bound on connection establishment to each peer (dial, accept, handshake)")
		collTimeout = flag.Duration("collective-timeout", 30*time.Second,
			"per-collective bound on peer I/O; a peer silent past this fails the run (0 disables)")
	)
	flag.Parse()
	log.SetPrefix(fmt.Sprintf("ssspd[%d]: ", *rank))

	addrList := strings.Split(*addrs, ",")
	for i := range addrList {
		addrList[i] = strings.TrimSpace(addrList[i])
	}

	// Every rank generates the same graph deterministically; in a real
	// deployment each rank would generate or load only its partition, but
	// the CSR is shared-read here for simplicity.
	p := rmat.Family1(*scale, *seed)
	if *family == 2 {
		p = rmat.Family2(*scale, *seed)
	}
	g, err := rmat.Generate(p)
	if err != nil {
		return err
	}

	t, err := tcptransport.New(tcptransport.Config{
		Addrs:             addrList,
		Rank:              *rank,
		DialTimeout:       *dialTimeout,
		CollectiveTimeout: *collTimeout,
	})
	if err != nil {
		return err
	}
	defer func() {
		err = errors.Join(err, t.Close())
	}()

	pd, err := partition.New(partition.Block, g.NumVertices(), len(addrList))
	if err != nil {
		return err
	}
	opts := sssp.OptOptions(graph.Weight(*delta))
	opts.Threads = *threads

	rr, err := sssp.RunRank(g, pd, graph.Vertex(*root), opts, t, 0)
	if err != nil {
		return err
	}
	log.Printf("done: %v, %d local relaxations",
		rr.Stats.Total, rr.Stats.Relax.Total())

	dist, err := gatherDistances(t, pd, rr)
	if err != nil {
		return err
	}
	if t.Rank() == 0 {
		var reached int64
		for _, d := range dist {
			if d < graph.Inf {
				reached++
			}
		}
		fmt.Printf("machine: %d ranks, graph %d vertices / %d edges\n",
			t.Size(), g.NumVertices(), g.NumEdges())
		fmt.Printf("time %v, GTEPS %.4f, reached %d\n",
			rr.Stats.Total, rr.Stats.GTEPS(g.NumEdges()), reached)
		if *verify {
			if err := validate.Distances(g, graph.Vertex(*root), dist); err != nil {
				return err
			}
			fmt.Println("verify: distances match sequential Dijkstra")
		}
	}
	return nil
}

// gatherDistances sends every rank's local distances to rank 0, which
// assembles the global array (other ranks return nil).
func gatherDistances(t comm.Transport, pd partition.Dist, rr *sssp.RankResult) ([]graph.Dist, error) {
	payload := make([]byte, 8*len(rr.LocalDist))
	for i, d := range rr.LocalDist {
		binary.LittleEndian.PutUint64(payload[8*i:], uint64(d))
	}
	out := make([][]byte, t.Size())
	out[0] = payload
	in, err := t.Exchange(out)
	if err != nil {
		return nil, err
	}
	if t.Rank() != 0 {
		return nil, nil
	}
	dist := make([]graph.Dist, pd.NumVertices())
	for r, buf := range in {
		n := pd.Count(r)
		if len(buf) != 8*n {
			return nil, fmt.Errorf("gather: rank %d sent %d bytes, want %d", r, len(buf), 8*n)
		}
		for li := 0; li < n; li++ {
			dist[pd.Global(r, li)] = graph.Dist(binary.LittleEndian.Uint64(buf[8*li:]))
		}
	}
	return dist, nil
}
