// Command ssspd is the multi-process distributed SSSP runner: each OS
// process is one rank of a TCP message-passing machine (the repo's MPI
// substitute). All ranks must be started with identical flags except
// -rank.
//
// Usage (two ranks on one host):
//
//	ssspd -rank 0 -addrs 127.0.0.1:9410,127.0.0.1:9411 -scale 12 &
//	ssspd -rank 1 -addrs 127.0.0.1:9410,127.0.0.1:9411 -scale 12
//
// Rank 0 gathers all distances at the end, prints the machine-wide
// statistics, and (with -verify) checks against sequential Dijkstra.
//
// With -serve the machine becomes a long-lived concurrent query server
// instead of a one-shot runner: the socket mesh carries -slots logical
// channels, each backing one pooled query slot on every rank
// (sssp.RankServer over tcptransport channels). Rank 0 accepts source
// vertices — one integer per line — on stdin and, with -serve-listen, on
// TCP connections; each answer line reports the reached count, an
// FNV-1a checksum of the distance array, and the query time. Up to
// -slots queries are in flight at once; a failed query poisons only its
// slot, and the server keeps answering on the others.
package main

import (
	"bufio"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"parsssp/internal/comm"
	"parsssp/internal/comm/tcptransport"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
	"parsssp/internal/rmat"
	"parsssp/internal/sssp"
	"parsssp/internal/validate"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run holds the whole daemon body so that the transport's deferred Close
// always executes. The previous shape — log.Fatal at each failure site in
// main — skipped the deferred Close on error, leaving peers to discover
// the death only through their own I/O timeouts; returning the error
// tears the mesh down first, which peers see immediately as closed
// connections.
func run() (err error) {
	var (
		rank        = flag.Int("rank", 0, "this process's rank")
		addrs       = flag.String("addrs", "127.0.0.1:9410,127.0.0.1:9411", "comma-separated host:port per rank")
		family      = flag.Int("family", 1, "R-MAT family (1 or 2)")
		scale       = flag.Int("scale", 12, "log2 vertex count")
		seed        = flag.Uint64("seed", 42, "graph seed (must match across ranks)")
		threads     = flag.Int("threads", 2, "worker threads per rank")
		delta       = flag.Uint("delta", 25, "bucket width Δ")
		root        = flag.Int("root", 0, "source vertex")
		verify      = flag.Bool("verify", false, "rank 0 checks distances against Dijkstra")
		dialTimeout = flag.Duration("dial-timeout", 10*time.Second,
			"bound on connection establishment to each peer (dial, accept, handshake)")
		collTimeout = flag.Duration("collective-timeout", 30*time.Second,
			"per-collective bound on peer I/O; a peer silent past this fails the run (0 disables)")
		serve       = flag.Bool("serve", false, "serve concurrent queries instead of running one (-root is ignored)")
		slots       = flag.Int("slots", 4, "concurrent query slots in -serve mode")
		serveListen = flag.String("serve-listen", "",
			"rank 0 also accepts query sources on this TCP address in -serve mode (one integer per line)")
	)
	flag.Parse()
	log.SetPrefix(fmt.Sprintf("ssspd[%d]: ", *rank))

	addrList := strings.Split(*addrs, ",")
	for i := range addrList {
		addrList[i] = strings.TrimSpace(addrList[i])
	}

	// Every rank generates the same graph deterministically; in a real
	// deployment each rank would generate or load only its partition, but
	// the CSR is shared-read here for simplicity.
	p := rmat.Family1(*scale, *seed)
	if *family == 2 {
		p = rmat.Family2(*scale, *seed)
	}
	g, err := rmat.Generate(p)
	if err != nil {
		return err
	}

	meshTimeout := *collTimeout
	if *serve {
		// A serving machine is idle between queries, and idleness is
		// indistinguishable from a stalled peer at the transport level: the
		// non-zero ranks wait in a source broadcast until rank 0 has a
		// query to hand out. A collective timeout would shoot down the
		// whole mesh after -collective-timeout of quiet, so serve mode runs
		// without one (per-query deadlines are the ROADMAP follow-up).
		meshTimeout = 0
	}
	t, err := tcptransport.New(tcptransport.Config{
		Addrs:             addrList,
		Rank:              *rank,
		DialTimeout:       *dialTimeout,
		CollectiveTimeout: meshTimeout,
	})
	if err != nil {
		return err
	}
	defer func() {
		err = errors.Join(err, t.Close())
	}()

	pd, err := partition.New(partition.Block, g.NumVertices(), len(addrList))
	if err != nil {
		return err
	}
	opts := sssp.OptOptions(graph.Weight(*delta))
	opts.Threads = *threads

	if *serve {
		return runServe(t, g, pd, opts, *slots, *serveListen)
	}

	rr, err := sssp.RunRank(g, pd, graph.Vertex(*root), opts, t, 0)
	if err != nil {
		return err
	}
	log.Printf("done: %v, %d local relaxations",
		rr.Stats.Total, rr.Stats.Relax.Total())

	dist, err := gatherDistances(t, pd, rr)
	if err != nil {
		return err
	}
	if t.Rank() == 0 {
		var reached int64
		for _, d := range dist {
			if d < graph.Inf {
				reached++
			}
		}
		fmt.Printf("machine: %d ranks, graph %d vertices / %d edges\n",
			t.Size(), g.NumVertices(), g.NumEdges())
		fmt.Printf("time %v, GTEPS %.4f, reached %d\n",
			rr.Stats.Total, rr.Stats.GTEPS(g.NumEdges()), reached)
		if *verify {
			if err := validate.Distances(g, graph.Vertex(*root), dist); err != nil {
				return err
			}
			fmt.Println("verify: distances match sequential Dijkstra")
		}
	}
	return nil
}

// serveReq is one admitted query: a source vertex and where its answer
// line goes.
type serveReq struct {
	src   graph.Vertex
	reply func(string)
}

// printer serializes answer lines from concurrent slot workers.
type printer struct {
	mu sync.Mutex
	w  io.Writer
}

func (p *printer) println(line string) {
	p.mu.Lock()
	fmt.Fprintln(p.w, line)
	p.mu.Unlock()
}

// runServe is the -serve mode body, executed by every rank. The mesh is
// split into `slots` logical channels; each backs one sssp.RankServer
// slot on every rank, so up to `slots` queries run concurrently with
// per-slot failure isolation. Rank 0 is the front end: it admits sources
// from stdin (and -serve-listen connections), hands each to a free
// slot's worker, and writes the answer lines; the other ranks' workers
// are driven entirely by the per-slot source broadcasts.
//
// Per-slot protocol, in lockstep on every rank: (1) source broadcast —
// an Allreduce(Max) where rank 0 contributes src+1 and everyone else 0,
// with 0 the shutdown sentinel; (2) the query; (3) the distance gather
// to rank 0. A query error ends that slot's workers everywhere (the
// abort poisons the slot's channel on every rank) and is reported to the
// caller whose query failed; the remaining slots keep serving. Shutdown
// is stdin EOF: each worker that drains the queue broadcasts the
// sentinel, and the process exits when every slot's worker has.
func runServe(t *tcptransport.Transport, g *graph.Graph, pd partition.Dist,
	opts sssp.Options, slots int, listenAddr string) error {
	if slots < 1 {
		return fmt.Errorf("ssspd: -slots must be >= 1, got %d", slots)
	}
	chans := make([]comm.Transport, slots)
	for s := 0; s < slots; s++ {
		ch, err := t.Channel(uint32(s + 1)) // channel 0 stays the root transport's
		if err != nil {
			return err
		}
		chans[s] = ch
	}
	server, err := sssp.NewRankServer(g, pd, opts, chans, 0)
	if err != nil {
		return err
	}
	defer func() {
		server.Close()
	}()
	rank0 := t.Rank() == 0

	var reqs chan serveReq
	out := &printer{w: os.Stdout}
	if rank0 {
		reqs = make(chan serveReq)
		var intake sync.WaitGroup
		intake.Add(1)
		go func() {
			defer intake.Done()
			admitSources(os.Stdin, g, reqs, out.println)
		}()
		if listenAddr != "" {
			ln, lerr := net.Listen("tcp", listenAddr)
			if lerr != nil {
				return lerr
			}
			log.Printf("serving on %s", ln.Addr())
			// The listener intake never finishes on its own; with
			// -serve-listen the server runs until the process is killed.
			intake.Add(1)
			go func() {
				defer intake.Done()
				for {
					conn, aerr := ln.Accept()
					if aerr != nil {
						return
					}
					go func(conn net.Conn) {
						defer conn.Close()
						connOut := &printer{w: conn}
						admitSources(conn, g, reqs, connOut.println)
					}(conn)
				}
			}()
		}
		go func() {
			intake.Wait()
			close(reqs)
		}()
	}

	workerErrs := make([]error, slots)
	var wg sync.WaitGroup
	for s := 0; s < slots; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			workerErrs[s] = slotWorker(s, chans[s], server, pd, rank0, reqs, out)
		}(s)
	}
	wg.Wait()
	if rank0 && reqs != nil {
		// Every slot is gone (all failed, or shutdown won the race);
		// requests still queued or arriving get an immediate refusal
		// until the intakes close the queue.
		for req := range reqs {
			req.reply(fmt.Sprintf("error src=%d: no live query slots", req.src))
		}
	}
	return errors.Join(workerErrs...)
}

// admitSources parses integer sources off r (one per line), answering
// malformed and out-of-range lines directly and queueing the rest.
func admitSources(r io.Reader, g *graph.Graph, reqs chan<- serveReq, reply func(string)) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		src, err := strconv.ParseUint(line, 10, 32)
		if err != nil || int(src) >= g.NumVertices() {
			reply(fmt.Sprintf("error: bad source %q", line))
			continue
		}
		reqs <- serveReq{src: graph.Vertex(src), reply: reply}
	}
}

// slotWorker drives one slot's lockstep query loop; see runServe for the
// protocol. Returns nil on clean shutdown and the slot-killing error
// otherwise (on the rank whose caller was answered, the error is
// reported in-band and the worker returns nil).
func slotWorker(s int, ch comm.Transport, server *sssp.RankServer,
	pd partition.Dist, rank0 bool, reqs <-chan serveReq, out *printer) error {
	for {
		var contrib int64
		var req serveReq
		var admitted bool
		if rank0 {
			req, admitted = <-reqs
			if admitted {
				contrib = int64(req.src) + 1
			}
		}
		vals, err := ch.AllreduceInt64([]int64{contrib}, comm.Max)
		if err != nil {
			if admitted {
				req.reply(fmt.Sprintf("error src=%d: %v", req.src, err))
				return nil
			}
			return fmt.Errorf("slot %d: source broadcast: %w", s, err)
		}
		if vals[0] == 0 {
			return nil // shutdown sentinel
		}
		src := graph.Vertex(vals[0] - 1)

		rr, err := server.Query(s, src)
		if err == nil {
			var dist []graph.Dist
			dist, err = gatherDistances(ch, pd, rr)
			if err == nil && rank0 {
				var reached int64
				h := fnv.New64a()
				var buf [8]byte
				for _, d := range dist {
					if d < graph.Inf {
						reached++
					}
					binary.LittleEndian.PutUint64(buf[:], uint64(d))
					h.Write(buf[:])
				}
				req.reply(fmt.Sprintf("answer src=%d reached=%d checksum=%016x time=%v",
					src, reached, h.Sum64(), rr.Stats.Total))
			}
		}
		if err != nil {
			if admitted {
				req.reply(fmt.Sprintf("error src=%d: %v", src, err))
				return nil
			}
			return fmt.Errorf("slot %d: query src=%d: %w", s, src, err)
		}
	}
}

// gatherDistances sends every rank's local distances to rank 0, which
// assembles the global array (other ranks return nil).
func gatherDistances(t comm.Transport, pd partition.Dist, rr *sssp.RankResult) ([]graph.Dist, error) {
	payload := make([]byte, 8*len(rr.LocalDist))
	for i, d := range rr.LocalDist {
		binary.LittleEndian.PutUint64(payload[8*i:], uint64(d))
	}
	out := make([][]byte, t.Size())
	out[0] = payload
	in, err := t.Exchange(out)
	if err != nil {
		return nil, err
	}
	if t.Rank() != 0 {
		return nil, nil
	}
	dist := make([]graph.Dist, pd.NumVertices())
	for r, buf := range in {
		n := pd.Count(r)
		if len(buf) != 8*n {
			return nil, fmt.Errorf("gather: rank %d sent %d bytes, want %d", r, len(buf), 8*n)
		}
		for li := 0; li < n; li++ {
			dist[pd.Global(r, li)] = graph.Dist(binary.LittleEndian.Uint64(buf[8*li:]))
		}
	}
	return dist, nil
}
