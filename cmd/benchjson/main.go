// Command benchjson converts `go test -bench -benchmem` output read from
// stdin into a machine-readable JSON file, so benchmark numbers (GTEPS,
// wire bytes, allocations) can be archived and diffed across commits.
// `make bench-json` pipes the communication-layer benchmarks through it
// to produce BENCH_comm.json.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkComm -benchmem . | benchjson -out BENCH_comm.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. Standard columns get named
// fields; custom b.ReportMetric units land in Metrics keyed by unit.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file layout of BENCH_comm.json.
type Report struct {
	Package    string      `json:"package,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d benchmarks to %s", len(rep.Benchmarks), *out)
}

// parse scans `go test -bench` output. Result lines look like
//
//	BenchmarkName-8   100   123456 ns/op   4.5 custom-unit   120 B/op   3 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parse(f *os.File) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if pkg, ok := strings.CutPrefix(line, "pkg: "); ok {
			rep.Package = strings.TrimSpace(pkg)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: trimProcs(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// trimProcs drops the -GOMAXPROCS suffix the bench runner appends to
// names, so the JSON is stable across machines.
func trimProcs(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
