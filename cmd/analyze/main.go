// Command analyze computes shortest-path-based network measures — the
// applications the paper's introduction motivates SSSP with — on a
// generated or saved graph: connectivity structure, degree skew,
// closeness centrality of sampled vertices, and weighted diameter
// bounds.
//
// Usage:
//
//	analyze -scale 16 -ranks 8
//	analyze -input graph.bin -candidates 16 -sweeps 6
package main

import (
	"flag"
	"fmt"
	"log"

	"parsssp/internal/analytics"
	"parsssp/internal/graph"
	"parsssp/internal/rmat"
	"parsssp/internal/sssp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")
	var (
		family     = flag.Int("family", 1, "R-MAT family (1 or 2)")
		scale      = flag.Int("scale", 14, "log2 vertex count for generated graphs")
		seed       = flag.Uint64("seed", 42, "random seed")
		input      = flag.String("input", "", "binary edge-list file (overrides generation)")
		ranks      = flag.Int("ranks", 4, "logical ranks")
		threads    = flag.Int("threads", 2, "worker threads per rank")
		delta      = flag.Uint("delta", 25, "bucket width Δ for the SSSP queries")
		candidates = flag.Int("candidates", 8, "vertices sampled for closeness ranking")
		sweeps     = flag.Int("sweeps", 4, "SSSP sweeps for the diameter bounds")
	)
	flag.Parse()

	g, err := loadGraph(*input, *family, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}

	// Structure.
	st := g.Stats()
	_, comps := g.Components()
	lc := g.LargestComponent()
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("degrees: min %d, mean %.1f, max %d (p99 %d)\n",
		st.Min, st.Mean, st.Max, g.DegreePercentile(0.99))
	fmt.Printf("connectivity: %d components; largest holds %d vertices (%.1f%%)\n",
		comps, len(lc), 100*float64(len(lc))/float64(g.NumVertices()))

	opts := sssp.LBOptOptions(graph.Weight(*delta))
	opts.Threads = *threads

	// Closeness ranking over sampled vertices of the largest component.
	sample, err := sssp.PickRoots(g, *candidates, *seed^0xA11A)
	if err != nil {
		log.Fatal(err)
	}
	ranked, err := analytics.TopKCloseness(g, *ranks, sample, *candidates, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("closeness centrality (sampled):")
	for i, r := range ranked {
		fmt.Printf("  %2d. vertex %8d  score %.6f  degree %d\n",
			i+1, r.V, r.Score, g.Degree(r.V))
	}

	// Diameter bounds of the largest component.
	if len(lc) > 1 {
		b, err := analytics.Diameter(g, *ranks, lc[0], opts, *sweeps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("weighted diameter of the largest component: in [%d, %d] after %d sweeps (peripheral vertex %d)\n",
			b.Lower, b.Upper, b.Sweeps, b.Peripheral)
	}

	// Hop diameter via BFS for contrast.
	if len(lc) > 0 {
		bfs := g.BFS(lc[0])
		fmt.Printf("hop eccentricity of vertex %d: %d levels\n", lc[0], bfs.Depth)
	}
}

func loadGraph(input string, family, scale int, seed uint64) (*graph.Graph, error) {
	if input != "" {
		return graph.LoadGraphFile(input) // .gr = DIMACS, else binary
	}
	p := rmat.Family1(scale, seed)
	if family == 2 {
		p = rmat.Family2(scale, seed)
	}
	return rmat.Generate(p)
}
