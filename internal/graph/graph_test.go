package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, n int, edges []Edge, opt BuildOptions) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges, opt)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := mustBuild(t, 0, nil, BuildOptions{})
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph has %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.MaxDegree() != 0 || g.MaxWeight() != 0 {
		t.Errorf("empty graph MaxDegree/MaxWeight nonzero")
	}
}

func TestEdgelessGraph(t *testing.T) {
	g := mustBuild(t, 5, nil, BuildOptions{})
	if g.NumVertices() != 5 || g.NumEdges() != 0 {
		t.Errorf("got %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	for v := Vertex(0); v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Errorf("degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestTriangle(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{0, 1, 5}, {1, 2, 3}, {2, 0, 7}}, BuildOptions{})
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	for v := Vertex(0); v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	nbr, ws := g.Neighbors(0)
	if len(nbr) != 2 || nbr[0] != 1 || ws[0] != 5 || nbr[1] != 2 || ws[1] != 7 {
		t.Errorf("neighbors(0) = %v %v, want weight-sorted [1:5 2:7]", nbr, ws)
	}
}

func TestSelfLoopPolicy(t *testing.T) {
	edges := []Edge{{0, 0, 9}, {0, 1, 2}}
	dropped := mustBuild(t, 2, edges, BuildOptions{})
	if dropped.NumEdges() != 1 || dropped.Degree(0) != 1 {
		t.Errorf("self-loop not dropped: m=%d deg0=%d", dropped.NumEdges(), dropped.Degree(0))
	}
	kept := mustBuild(t, 2, edges, BuildOptions{KeepSelfLoops: true})
	if kept.NumEdges() != 2 || kept.Degree(0) != 3 {
		t.Errorf("self-loop not kept: m=%d deg0=%d", kept.NumEdges(), kept.Degree(0))
	}
}

func TestParallelEdgePolicy(t *testing.T) {
	edges := []Edge{{0, 1, 9}, {1, 0, 2}, {0, 1, 5}}
	g := mustBuild(t, 2, edges, BuildOptions{})
	if g.NumEdges() != 1 {
		t.Fatalf("parallel edges not collapsed: m=%d", g.NumEdges())
	}
	_, ws := g.Neighbors(0)
	if len(ws) != 1 || ws[0] != 2 {
		t.Errorf("kept weight %v, want minimum 2", ws)
	}
	kept := mustBuild(t, 2, edges, BuildOptions{KeepParallelEdges: true})
	if kept.NumEdges() != 3 || kept.Degree(0) != 3 {
		t.Errorf("parallel edges not kept: m=%d deg=%d", kept.NumEdges(), kept.Degree(0))
	}
}

func TestOutOfRangeEdge(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 2, 1}}, BuildOptions{}); err == nil {
		t.Error("edge to vertex 2 in a 2-vertex graph did not error")
	}
	if _, err := FromEdges(-1, nil, BuildOptions{}); err == nil {
		t.Error("negative vertex count did not error")
	}
}

func TestShortEdgeEnd(t *testing.T) {
	g := mustBuild(t, 5, []Edge{
		{0, 1, 1}, {0, 2, 5}, {0, 3, 10}, {0, 4, 10},
	}, BuildOptions{})
	cases := []struct {
		delta Weight
		want  int
	}{
		{1, 0}, {2, 1}, {5, 1}, {6, 2}, {10, 2}, {11, 4}, {100, 4},
	}
	for _, c := range cases {
		if got := g.ShortEdgeEnd(0, c.delta); got != c.want {
			t.Errorf("ShortEdgeEnd(0, %d) = %d, want %d", c.delta, got, c.want)
		}
	}
}

func TestCountWeightRange(t *testing.T) {
	g := mustBuild(t, 6, []Edge{
		{0, 1, 2}, {0, 2, 4}, {0, 3, 4}, {0, 4, 9}, {0, 5, 20},
	}, BuildOptions{})
	cases := []struct {
		a, b Weight
		want int
	}{
		{0, 100, 5}, {2, 3, 1}, {4, 5, 2}, {4, 4, 0}, {5, 4, 0},
		{3, 10, 3}, {10, 20, 0}, {20, 21, 1}, {21, 100, 0},
	}
	for _, c := range cases {
		if got := g.CountWeightRange(0, c.a, c.b); got != c.want {
			t.Errorf("CountWeightRange(0, %d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestStats(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}}, BuildOptions{})
	st := g.Stats(1, 2)
	if st.Min != 1 || st.Max != 3 {
		t.Errorf("Min/Max = %d/%d, want 1/3", st.Min, st.Max)
	}
	if st.Mean != 1.5 {
		t.Errorf("Mean = %v, want 1.5", st.Mean)
	}
	if st.NumAbove[0] != 1 || st.NumAbove[1] != 1 {
		t.Errorf("NumAbove = %v, want [1 1]", st.NumAbove)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	orig := []Edge{{0, 1, 3}, {2, 1, 7}, {3, 4, 1}, {0, 4, 9}}
	g := mustBuild(t, 5, orig, BuildOptions{})
	back := g.Edges()
	if int64(len(back)) != g.NumEdges() {
		t.Fatalf("Edges returned %d, want %d", len(back), g.NumEdges())
	}
	norm := func(es []Edge) []Edge {
		out := make([]Edge, len(es))
		for i, e := range es {
			if e.U > e.V {
				e.U, e.V = e.V, e.U
			}
			out[i] = e
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].U != out[j].U {
				return out[i].U < out[j].U
			}
			if out[i].V != out[j].V {
				return out[i].V < out[j].V
			}
			return out[i].W < out[j].W
		})
		return out
	}
	if !reflect.DeepEqual(norm(orig), norm(back)) {
		t.Errorf("edge multiset changed: %v vs %v", norm(orig), norm(back))
	}
}

func TestFromCSR(t *testing.T) {
	// Path 0-1-2 with weights 4, 6.
	offsets := []int64{0, 1, 3, 4}
	adj := []Vertex{1, 0, 2, 1}
	weights := []Weight{4, 4, 6, 6}
	g, err := FromCSR(offsets, adj, weights, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.Degree(1) != 2 {
		t.Errorf("m=%d deg(1)=%d", g.NumEdges(), g.Degree(1))
	}
	// Asymmetric CSR must fail validation.
	bad := []Vertex{1, 0, 2, 0}
	if _, err := FromCSR([]int64{0, 1, 3, 4}, bad, []Weight{4, 4, 6, 6}, false); err == nil {
		t.Error("asymmetric CSR passed validation")
	}
	// Odd entry count must fail.
	if _, err := FromCSR([]int64{0, 1}, []Vertex{0}, []Weight{1}, false); err == nil {
		t.Error("odd CSR entry count passed")
	}
}

func TestAdjOffsetsConsistent(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 1, 2}, {0, 2, 3}, {1, 3, 4}}, BuildOptions{})
	for v := Vertex(0); v < 4; v++ {
		lo, hi := g.AdjOffsets(v)
		nbr, ws := g.Neighbors(v)
		if int(hi-lo) != len(nbr) {
			t.Fatalf("offsets span %d, neighbors %d", hi-lo, len(nbr))
		}
		for i := lo; i < hi; i++ {
			a, w := g.AdjAt(i)
			if a != nbr[i-lo] || w != ws[i-lo] {
				t.Fatalf("AdjAt(%d) = (%d,%d), want (%d,%d)", i, a, w, nbr[i-lo], ws[i-lo])
			}
		}
	}
}

// randomEdges draws a reproducible random edge list for property tests.
func randomEdges(r *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{
			U: Vertex(r.Intn(n)),
			V: Vertex(r.Intn(n)),
			W: Weight(r.Intn(256)),
		}
	}
	return edges
}

func TestQuickBuildInvariants(t *testing.T) {
	// Property: for any random edge list, the built graph passes
	// Validate, has weight-sorted rows, and degree sum = 2M.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		m := r.Intn(200)
		g, err := FromEdges(n, randomEdges(r, n, m), BuildOptions{})
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		var degSum int64
		for v := 0; v < n; v++ {
			degSum += int64(g.Degree(Vertex(v)))
		}
		return degSum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCountWeightRangeMatchesScan(t *testing.T) {
	// Property: the binary-search count equals a linear scan.
	f := func(seed int64, aRaw, bRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		g, err := FromEdges(n, randomEdges(r, n, 100), BuildOptions{})
		if err != nil {
			return false
		}
		a, b := Weight(aRaw), Weight(bRaw)
		for v := 0; v < n; v++ {
			_, ws := g.Neighbors(Vertex(v))
			scan := 0
			for _, w := range ws {
				if w >= a && w < b {
					scan++
				}
			}
			if g.CountWeightRange(Vertex(v), a, b) != scan {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickShortEdgeEndMatchesScan(t *testing.T) {
	f := func(seed int64, deltaRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		g, err := FromEdges(n, randomEdges(r, n, 80), BuildOptions{})
		if err != nil {
			return false
		}
		delta := Weight(deltaRaw)
		for v := 0; v < n; v++ {
			_, ws := g.Neighbors(Vertex(v))
			scan := 0
			for _, w := range ws {
				if w < delta {
					scan++
				}
			}
			if g.ShortEdgeEnd(Vertex(v), delta) != scan {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
