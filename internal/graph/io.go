package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary edge-list format (little-endian):
//
//	magic   [8]byte  "PARSSSP1"
//	n       uint64   number of vertices
//	m       uint64   number of undirected edges
//	edges   m × { u uint32, v uint32, w uint32 }
//
// The format is deliberately trivial: it round-trips the generator output
// so experiments can be re-run on identical inputs.

var magic = [8]byte{'P', 'A', 'R', 'S', 'S', 'S', 'P', '1'}

// WriteEdgeList writes n and the undirected edge list to w.
func WriteEdgeList(w io.Writer, n int, edges []Edge) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(n))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(edges)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [12]byte
	for _, e := range edges {
		binary.LittleEndian.PutUint32(rec[0:4], e.U)
		binary.LittleEndian.PutUint32(rec[4:8], e.V)
		binary.LittleEndian.PutUint32(rec[8:12], e.W)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList reads an edge list written by WriteEdgeList.
func ReadEdgeList(r io.Reader) (n int, edges []Edge, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var mg [8]byte
	if _, err := io.ReadFull(br, mg[:]); err != nil {
		return 0, nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if mg != magic {
		return 0, nil, fmt.Errorf("graph: bad magic %q", mg)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("graph: reading header: %w", err)
	}
	nRaw := binary.LittleEndian.Uint64(hdr[0:8])
	m := binary.LittleEndian.Uint64(hdr[8:16])
	// Vertex ids are uint32, so more than 2^32 vertices cannot be
	// addressed; edge counts beyond 2^34 are equally implausible.
	if nRaw > 1<<32 {
		return 0, nil, fmt.Errorf("graph: implausible vertex count %d", nRaw)
	}
	const maxEdges = 1 << 34
	if m > maxEdges {
		return 0, nil, fmt.Errorf("graph: implausible edge count %d", m)
	}
	n = int(nRaw)
	// Allocation grows with the data actually read, never trusting the
	// header alone: a malicious or truncated header cannot force a huge
	// up-front allocation.
	const chunk = 1 << 16
	initial := m
	if initial > chunk {
		initial = chunk
	}
	edges = make([]Edge, 0, initial)
	var rec [12]byte
	for i := uint64(0); i < m; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return 0, nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		edges = append(edges, Edge{
			U: binary.LittleEndian.Uint32(rec[0:4]),
			V: binary.LittleEndian.Uint32(rec[4:8]),
			W: binary.LittleEndian.Uint32(rec[8:12]),
		})
	}
	return n, edges, nil
}

// SaveEdgeListFile writes the edge list to path, creating or truncating it.
func SaveEdgeListFile(path string, n int, edges []Edge) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return WriteEdgeList(f, n, edges)
}

// LoadEdgeListFile reads an edge list file written by SaveEdgeListFile.
func LoadEdgeListFile(path string) (int, []Edge, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}
