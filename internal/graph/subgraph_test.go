package graph

import (
	"math/rand"
	"testing"
)

func TestInducedTriangleFromSquare(t *testing.T) {
	// Square 0-1-2-3-0 plus diagonal 0-2; induce {0,1,2}.
	g := mustBuild(t, 4, []Edge{
		{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 0, 4}, {0, 2, 5},
	}, BuildOptions{})
	sub, back, err := g.Induced([]Vertex{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced has %d vertices, %d edges; want 3, 3", sub.NumVertices(), sub.NumEdges())
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[0] != 0 || back[2] != 2 {
		t.Errorf("back map %v", back)
	}
}

func TestInducedRelabeling(t *testing.T) {
	g := mustBuild(t, 5, []Edge{{3, 4, 7}}, BuildOptions{})
	sub, back, err := g.Induced([]Vertex{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	// New ids follow the given order: 4→0, 3→1.
	if sub.NumEdges() != 1 {
		t.Fatalf("edges = %d", sub.NumEdges())
	}
	nbr, ws := sub.Neighbors(0)
	if len(nbr) != 1 || nbr[0] != 1 || ws[0] != 7 {
		t.Errorf("neighbors(0) = %v %v", nbr, ws)
	}
	if back[0] != 4 || back[1] != 3 {
		t.Errorf("back = %v", back)
	}
}

func TestInducedValidation(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{0, 1, 1}}, BuildOptions{})
	if _, _, err := g.Induced([]Vertex{0, 5}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if _, _, err := g.Induced([]Vertex{0, 0}); err == nil {
		t.Error("duplicate vertex accepted")
	}
}

func TestInducedLargestComponent(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	g, err := FromEdges(200, randomEdges(r, 200, 220), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lc := g.LargestComponent()
	sub, back, err := g.Induced(lc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// The induced largest component must be connected: BFS from 0
	// reaches everything.
	res := sub.BFS(0)
	if res.Reached != sub.NumVertices() {
		t.Errorf("induced component disconnected: reached %d of %d",
			res.Reached, sub.NumVertices())
	}
	// Degrees within the component are preserved when all neighbors are
	// inside it (true for whole components).
	for newV, origV := range back {
		if sub.Degree(Vertex(newV)) != g.Degree(origV) {
			t.Fatalf("degree changed for %d: %d vs %d",
				origV, sub.Degree(Vertex(newV)), g.Degree(origV))
		}
	}
}
