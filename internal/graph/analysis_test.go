package graph

import (
	"math/rand"
	"testing"
)

func TestBFSPath(t *testing.T) {
	// Path 0-1-2-3 regardless of weights.
	g := mustBuild(t, 4, []Edge{{0, 1, 9}, {1, 2, 1}, {2, 3, 200}}, BuildOptions{})
	res := g.BFS(0)
	want := []int32{0, 1, 2, 3}
	for v, h := range want {
		if res.Hops[v] != h {
			t.Errorf("hops[%d] = %d, want %d", v, res.Hops[v], h)
		}
	}
	if res.Depth != 3 || res.Reached != 4 {
		t.Errorf("Depth=%d Reached=%d", res.Depth, res.Reached)
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 1, 1}, {2, 3, 1}}, BuildOptions{})
	res := g.BFS(0)
	if res.Hops[2] != -1 || res.Hops[3] != -1 {
		t.Error("unreachable vertices have finite hops")
	}
	if res.Reached != 2 || res.Depth != 1 {
		t.Errorf("Reached=%d Depth=%d", res.Reached, res.Depth)
	}
}

func TestComponents(t *testing.T) {
	g := mustBuild(t, 7, []Edge{
		{0, 1, 1}, {1, 2, 1}, // component 0: {0,1,2}
		{3, 4, 1}, // component 1: {3,4}
		// 5, 6 isolated: components 2 and 3
	}, BuildOptions{})
	labels, count := g.Components()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("vertices 0,1,2 not in one component")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Error("vertices 3,4 mislabeled")
	}
	if labels[5] == labels[6] || labels[5] == labels[0] || labels[5] == labels[3] {
		t.Error("isolated vertices mislabeled")
	}
}

func TestLargestComponent(t *testing.T) {
	g := mustBuild(t, 6, []Edge{
		{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, // triangle
		{3, 4, 1},
	}, BuildOptions{})
	lc := g.LargestComponent()
	if len(lc) != 3 || lc[0] != 0 || lc[1] != 1 || lc[2] != 2 {
		t.Errorf("LargestComponent = %v", lc)
	}
	empty := mustBuild(t, 0, nil, BuildOptions{})
	if empty.LargestComponent() != nil {
		t.Error("empty graph has a component")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}}, BuildOptions{})
	bins := g.DegreeHistogram()
	// Degrees: 3, 1, 1, 1 → bins (1,3), (3,1).
	if len(bins) != 2 || bins[0] != (DegreeBin{1, 3}) || bins[1] != (DegreeBin{3, 1}) {
		t.Errorf("histogram = %v", bins)
	}
}

func TestDegreePercentile(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}}, BuildOptions{})
	if got := g.DegreePercentile(0.5); got != 1 {
		t.Errorf("p50 = %d, want 1", got)
	}
	if got := g.DegreePercentile(1.0); got != 3 {
		t.Errorf("p100 = %d, want 3", got)
	}
	empty := mustBuild(t, 0, nil, BuildOptions{})
	if empty.DegreePercentile(0.5) != 0 {
		t.Error("empty graph percentile nonzero")
	}
}

func TestBFSConsistentWithComponents(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g, err := FromEdges(80, randomEdges(r, 80, 120), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	labels, _ := g.Components()
	res := g.BFS(0)
	for v := 0; v < 80; v++ {
		sameComp := labels[v] == labels[0]
		reached := res.Hops[v] >= 0
		if sameComp != reached {
			t.Fatalf("vertex %d: component match %v but BFS reached %v", v, sameComp, reached)
		}
	}
}
