package graph

import (
	"bytes"
	"testing"
)

// Fuzz targets run their seed corpus under plain `go test` and can be
// explored further with `go test -fuzz`.

// FuzzReadEdgeList hardens the binary loader against malformed input: it
// must error or succeed, never panic, and successful reads must
// round-trip through the builder.
func FuzzReadEdgeList(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteEdgeList(&buf, 4, []Edge{{0, 1, 2}, {2, 3, 255}})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("PARSSSP1"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	corrupt := append([]byte(nil), buf.Bytes()...)
	corrupt[10] ^= 0x40 // inflate the vertex count
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		n, edges, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		if n < 0 {
			t.Fatalf("negative vertex count %d accepted", n)
		}
		if n > 1<<20 {
			return // legitimate but too large to build in a fuzz iteration
		}
		// A well-formed file may still reference out-of-range vertices;
		// the builder must reject those gracefully.
		g, err := FromEdges(n, edges, BuildOptions{})
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("loader produced invalid graph: %v", err)
		}
	})
}

// FuzzBuilderInvariants throws arbitrary edge soup at the builder.
func FuzzBuilderInvariants(f *testing.F) {
	f.Add(uint16(5), []byte{0, 1, 10, 1, 2, 20})
	f.Add(uint16(1), []byte{0, 0, 0})
	f.Add(uint16(0), []byte{})

	f.Fuzz(func(t *testing.T, nRaw uint16, raw []byte) {
		n := int(nRaw) % 300
		var edges []Edge
		for i := 0; i+2 < len(raw); i += 3 {
			if n == 0 {
				break
			}
			edges = append(edges, Edge{
				U: Vertex(int(raw[i]) % n),
				V: Vertex(int(raw[i+1]) % n),
				W: Weight(raw[i+2]),
			})
		}
		g, err := FromEdges(n, edges, BuildOptions{})
		if err != nil {
			t.Fatalf("in-range edges rejected: %v", err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("builder invariants broken: %v", err)
		}
		var degSum int64
		for v := 0; v < n; v++ {
			degSum += int64(g.Degree(Vertex(v)))
		}
		if degSum != 2*g.NumEdges() {
			t.Fatalf("degree sum %d != 2m %d", degSum, 2*g.NumEdges())
		}
	})
}
