// Package graph provides the weighted undirected graph representation used
// by all SSSP algorithms in parsssp.
//
// Graphs are stored in compressed sparse row (CSR) form: a single offsets
// array of length N+1 and parallel adjacency/weight arrays of length 2M
// (each undirected edge appears once per endpoint). Vertex identifiers are
// dense uint32 values in [0, N).
//
// The adjacency list of every vertex is sorted by edge weight. This makes
// short/long edge classification (the basis of the paper's pruning
// heuristics) a single binary search per (vertex, Δ) pair, and makes the
// exact pull-request count — the number of incident edges with weight in a
// range [a, b) — another binary search.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Vertex is a dense vertex identifier in [0, NumVertices).
type Vertex = uint32

// Weight is a non-negative edge weight. Inputs generated per the Graph500
// SSSP proposal use weights in [0, 255]; internal transformations (vertex
// splitting) may introduce zero-weight edges.
type Weight = uint32

// Dist is a tentative or final shortest-path distance.
type Dist = int64

// Inf is the distance of an unreached vertex. It is chosen so that
// Inf + maxWeight cannot overflow int64.
const Inf Dist = math.MaxInt64 / 4

// Edge is one undirected edge with its weight, used during construction
// and for edge-list interchange.
type Edge struct {
	U, V Vertex
	W    Weight
}

// Graph is an immutable weighted undirected graph in CSR form. Use a
// Builder or FromEdges to construct one; Patched derives a new graph
// from an existing one by a row-granularity copy-on-write overlay
// (patch.go) instead of a full rebuild.
type Graph struct {
	offsets []int64  // len N+1; base adjacency of v is [offsets[v], offsets[v+1])
	adj     []Vertex // base CSR entries (2M at construction)
	weights []Weight // parallel to adj; sorted ascending within each row
	numEdge int64    // M, number of undirected edges

	// patch, when non-nil, overlays rewritten rows on the base arrays:
	// a patched vertex's row lives in the overlay arena and its base
	// entries are dead. All row accessors dispatch through it.
	patch *rowPatch

	// maxW caches the maximum edge weight when maxWOK; constructors set
	// it so patched graphs (whose base weights include dead entries)
	// never scan raw arrays.
	maxW   Weight
	maxWOK bool
}

// NumVertices returns N, the number of vertices.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns M, the number of undirected edges. Each contributes two
// CSR entries.
func (g *Graph) NumEdges() int64 { return g.numEdge }

// Degree returns the number of CSR entries (incident edge endpoints) of v.
func (g *Graph) Degree(v Vertex) int {
	if g.patch != nil {
		if i, ok := g.patch.find(v); ok {
			return int(g.patch.starts[i+1] - g.patch.starts[i])
		}
	}
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the adjacency and weight slices of v, sorted by
// ascending weight. The slices alias the graph's internal storage and must
// not be modified. On a patched graph the row may come from the patch
// arena rather than the base arrays; callers cannot tell the difference.
func (g *Graph) Neighbors(v Vertex) ([]Vertex, []Weight) {
	if g.patch != nil {
		if i, ok := g.patch.find(v); ok {
			return g.patch.row(i)
		}
	}
	lo, hi := g.offsets[v], g.offsets[v+1]
	return g.adj[lo:hi], g.weights[lo:hi]
}

// AdjOffsets returns the CSR row bounds of v, for callers that index the
// shared arrays directly. Only meaningful on compact graphs (IsCompact):
// a patched vertex's row lives in the overlay arena, not at these
// offsets. Use Neighbors for representation-independent access.
func (g *Graph) AdjOffsets(v Vertex) (lo, hi int64) {
	return g.offsets[v], g.offsets[v+1]
}

// AdjAt returns the i-th CSR entry (global index into the shared
// arrays). Like AdjOffsets, only meaningful on compact graphs.
func (g *Graph) AdjAt(i int64) (Vertex, Weight) {
	return g.adj[i], g.weights[i]
}

// ShortEdgeEnd returns, for vertex v and bucket width delta, the index
// (relative to v's adjacency) of the first edge with weight >= delta.
// Edges before it are "short", edges from it on are "long" in the sense of
// Meyer and Sanders' edge classification.
func (g *Graph) ShortEdgeEnd(v Vertex, delta Weight) int {
	_, ws := g.Neighbors(v)
	return sort.Search(len(ws), func(i int) bool { return ws[i] >= delta })
}

// CountWeightRange returns the number of edges incident on v with weight
// in the half-open range [a, b). This is the exact pull-request count used
// by the push/pull decision heuristic.
func (g *Graph) CountWeightRange(v Vertex, a, b Weight) int {
	if b <= a {
		return 0
	}
	_, ws := g.Neighbors(v)
	lo := sort.Search(len(ws), func(i int) bool { return ws[i] >= a })
	hi := sort.Search(len(ws), func(i int) bool { return ws[i] >= b })
	return hi - lo
}

// MaxWeight returns the maximum edge weight in the graph, or 0 for an
// edgeless graph. Constructors cache it, so the call is O(1); the scan
// fallback only serves zero-value graphs no constructor produced.
func (g *Graph) MaxWeight() Weight {
	if g.maxWOK {
		return g.maxW
	}
	var mw Weight
	for _, w := range g.weights {
		if w > mw {
			mw = w
		}
	}
	return mw
}

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	maxd := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(Vertex(v)); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// DegreeStats summarizes the degree distribution of a graph.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// NumAbove[i] counts vertices with degree > thresholds[i] as passed
	// to Stats.
	NumAbove []int
}

// Stats computes degree statistics; thresholds selects the degree cut-offs
// for NumAbove (used to size heavy-vertex load-balancing decisions).
func (g *Graph) Stats(thresholds ...int) DegreeStats {
	n := g.NumVertices()
	st := DegreeStats{Min: math.MaxInt, NumAbove: make([]int, len(thresholds))}
	if n == 0 {
		st.Min = 0
		return st
	}
	var sum int64
	for v := 0; v < n; v++ {
		d := g.Degree(Vertex(v))
		sum += int64(d)
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		for i, t := range thresholds {
			if d > t {
				st.NumAbove[i]++
			}
		}
	}
	st.Mean = float64(sum) / float64(n)
	return st
}

// Validate checks structural invariants: monotone offsets, in-range
// adjacency targets, weight-sorted rows, symmetric edges (every CSR
// entry (u,v,w) has a matching (v,u,w)), a consistent patch overlay and
// a truthful max-weight cache. It is O(M log M) and intended for tests
// and tools, not hot paths.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.offsets) == 0 {
		return errors.New("graph: missing offsets")
	}
	if g.offsets[0] != 0 {
		return errors.New("graph: offsets[0] != 0")
	}
	for v := 0; v < n; v++ {
		if g.offsets[v+1] < g.offsets[v] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
	}
	if g.offsets[n] != int64(len(g.adj)) || len(g.adj) != len(g.weights) {
		return errors.New("graph: offsets/adjacency length mismatch")
	}
	if err := g.validatePatch(); err != nil {
		return err
	}
	var entries int64
	for v := 0; v < n; v++ {
		entries += int64(g.Degree(Vertex(v)))
	}
	if entries != 2*g.numEdge {
		return fmt.Errorf("graph: numEdge %d inconsistent with %d CSR entries",
			g.numEdge, entries)
	}
	type half struct {
		u, v Vertex
		w    Weight
	}
	halves := make([]half, 0, entries)
	var maxSeen Weight
	for v := 0; v < n; v++ {
		nbr, ws := g.Neighbors(Vertex(v))
		for i, u := range nbr {
			if int(u) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if i > 0 && ws[i] < ws[i-1] {
				return fmt.Errorf("graph: adjacency of vertex %d not weight-sorted", v)
			}
			if ws[i] > maxSeen {
				maxSeen = ws[i]
			}
			halves = append(halves, half{Vertex(v), u, ws[i]})
		}
	}
	if g.maxWOK && g.maxW != maxSeen {
		return fmt.Errorf("graph: cached max weight %d, rows say %d", g.maxW, maxSeen)
	}
	key := func(h half) uint64 {
		return uint64(h.u)<<32 | uint64(h.v)
	}
	sort.Slice(halves, func(i, j int) bool {
		if key(halves[i]) != key(halves[j]) {
			return key(halves[i]) < key(halves[j])
		}
		return halves[i].w < halves[j].w
	})
	// For symmetry, the sorted multiset of (u,v,w) must equal the sorted
	// multiset of (v,u,w).
	mirror := make([]half, len(halves))
	for i, h := range halves {
		mirror[i] = half{h.v, h.u, h.w}
	}
	sort.Slice(mirror, func(i, j int) bool {
		if key(mirror[i]) != key(mirror[j]) {
			return key(mirror[i]) < key(mirror[j])
		}
		return mirror[i].w < mirror[j].w
	})
	for i := range halves {
		if halves[i] != mirror[i] {
			return fmt.Errorf("graph: asymmetric edge near (%d,%d,w=%d)",
				halves[i].u, halves[i].v, halves[i].w)
		}
	}
	return nil
}

// Edges returns all undirected edges with U <= V, in deterministic order.
// Self-loops appear once; each undirected edge appears once.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.numEdge)
	for v := 0; v < g.NumVertices(); v++ {
		nbr, ws := g.Neighbors(Vertex(v))
		for i, u := range nbr {
			if Vertex(v) <= u {
				out = append(out, Edge{Vertex(v), u, ws[i]})
			}
		}
	}
	return out
}
