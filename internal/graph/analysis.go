package graph

import "sort"

// This file provides structural analysis utilities used by the
// experiment harness and the load-balancing heuristics: unweighted BFS
// (hop distances bound the Bellman-Ford phase count), connected
// components (root selection and reachability reporting), and degree
// tail summaries (vertex-splitting threshold selection).

// BFSResult holds hop distances from a source.
type BFSResult struct {
	// Hops[v] is the minimum edge count from the source to v, or -1 if
	// unreachable.
	Hops []int32
	// Depth is the maximum finite hop count — the depth of the BFS tree.
	// The Bellman-Ford phase count is bounded by Depth+1.
	Depth int32
	// Reached is the number of vertices with finite hop count.
	Reached int
}

// BFS computes unweighted hop distances from src.
func (g *Graph) BFS(src Vertex) *BFSResult {
	n := g.NumVertices()
	res := &BFSResult{Hops: make([]int32, n)}
	for i := range res.Hops {
		res.Hops[i] = -1
	}
	res.Hops[src] = 0
	res.Reached = 1
	frontier := []Vertex{src}
	for depth := int32(1); len(frontier) > 0; depth++ {
		var next []Vertex
		for _, u := range frontier {
			nbr, _ := g.Neighbors(u)
			for _, v := range nbr {
				if res.Hops[v] < 0 {
					res.Hops[v] = depth
					res.Depth = depth
					res.Reached++
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return res
}

// Components labels connected components. The returned slice maps each
// vertex to a component id in [0, count); ids are assigned in order of
// the smallest vertex in each component.
func (g *Graph) Components() (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []Vertex
	for v := 0; v < n; v++ {
		if labels[v] >= 0 {
			continue
		}
		id := int32(count)
		count++
		labels[v] = id
		stack = append(stack[:0], Vertex(v))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nbr, _ := g.Neighbors(u)
			for _, w := range nbr {
				if labels[w] < 0 {
					labels[w] = id
					stack = append(stack, w)
				}
			}
		}
	}
	return labels, count
}

// LargestComponent returns the vertices of the largest connected
// component, in increasing id order.
func (g *Graph) LargestComponent() []Vertex {
	labels, count := g.Components()
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for id, sz := range sizes {
		if sz > sizes[best] {
			best = id
		}
	}
	out := make([]Vertex, 0, sizes[best])
	for v, l := range labels {
		if int(l) == best {
			out = append(out, Vertex(v))
		}
	}
	return out
}

// DegreeHistogram returns the degree distribution as (degree, count)
// pairs sorted by increasing degree.
type DegreeBin struct {
	Degree int
	Count  int
}

// DegreeHistogram computes the exact degree histogram.
func (g *Graph) DegreeHistogram() []DegreeBin {
	counts := map[int]int{}
	for v := 0; v < g.NumVertices(); v++ {
		counts[g.Degree(Vertex(v))]++
	}
	bins := make([]DegreeBin, 0, len(counts))
	for d, c := range counts {
		bins = append(bins, DegreeBin{d, c})
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i].Degree < bins[j].Degree })
	return bins
}

// DegreePercentile returns the smallest degree d such that at least
// fraction p of the vertices have degree <= d. p must be in (0, 1].
func (g *Graph) DegreePercentile(p float64) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	target := int(p * float64(n))
	if target < 1 {
		target = 1
	}
	cum := 0
	for _, bin := range g.DegreeHistogram() {
		cum += bin.Count
		if cum >= target {
			return bin.Degree
		}
	}
	return g.MaxDegree()
}
