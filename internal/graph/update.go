package graph

// Copy-on-write graph updates, the full-rebuild flavor. A Graph is
// immutable; WithUpdates applies a batch of edge deletions and
// insertions by building a fresh Graph from the filtered edge list —
// O(N+M) per batch, but trivially correct for any input (it renormalizes
// self-loops and parallel edges through FromEdges). It serves as the
// semantic oracle for Patched (patch.go), the row-granularity
// copy-on-write path whose cost tracks batch size and which the
// versioned-plane layer (internal/sssp PlaneSet) uses on its apply path.
// Readers of the old version are unaffected either way.

// pairKey canonicalizes an unordered endpoint pair to a map key.
func pairKey(u, v Vertex) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// WithUpdates returns a new graph with the given edges removed and then
// added. Semantics, chosen for streaming-update batches:
//
//   - Deletions remove the edge between the named endpoints whatever its
//     weight (after min-weight dedup a pair hosts at most one edge, so
//     the pair identifies it). Deleting an absent edge is a no-op, so a
//     stream replaying against a graph that already saw part of it stays
//     applicable.
//   - Insertions are then added under the builder's default rules:
//     self-loops are dropped, and a parallel insert collapses with any
//     surviving edge to the minimum weight. A weight change is therefore
//     expressed as delete + insert of the same pair in one batch.
//   - The vertex set is fixed; inserting an edge with an endpoint >= n
//     is an error (and fails the whole batch — the result graph is only
//     returned when every update applied).
//
// The receiver is not modified.
func (g *Graph) WithUpdates(deletes, inserts []Edge) (*Graph, error) {
	del := make(map[uint64]struct{}, len(deletes))
	for _, e := range deletes {
		del[pairKey(e.U, e.V)] = struct{}{}
	}
	kept := make([]Edge, 0, int(g.numEdge)+len(inserts))
	for v := 0; v < g.NumVertices(); v++ {
		nbr, ws := g.Neighbors(Vertex(v))
		for i, u := range nbr {
			if Vertex(v) > u {
				continue // the U <= V half carries the edge
			}
			if _, dead := del[pairKey(Vertex(v), u)]; dead {
				continue
			}
			kept = append(kept, Edge{Vertex(v), u, ws[i]})
		}
	}
	kept = append(kept, inserts...)
	return FromEdges(g.NumVertices(), kept, BuildOptions{})
}

// EdgeWeight returns the weight of the edge between u and v and whether
// it exists. With min-weight dedup the pair has at most one edge. Cost is
// linear in the smaller of the two degrees.
func (g *Graph) EdgeWeight(u, v Vertex) (Weight, bool) {
	if int(u) >= g.NumVertices() || int(v) >= g.NumVertices() {
		return 0, false
	}
	if g.Degree(v) < g.Degree(u) {
		u, v = v, u
	}
	nbr, ws := g.Neighbors(u)
	for i, x := range nbr {
		if x == v {
			return ws[i], true
		}
	}
	return 0, false
}
