package graph

import "fmt"

// Induced extracts the subgraph induced by the given vertex set: the
// returned graph has len(vertices) vertices, relabeled densely in the
// order given, and exactly the edges of g with both endpoints in the
// set. The second return value maps new ids back to original ids.
//
// Typical use is restricting experiments to the largest connected
// component: Induced(g.LargestComponent()).
func (g *Graph) Induced(vertices []Vertex) (*Graph, []Vertex, error) {
	n := g.NumVertices()
	newID := make(map[Vertex]Vertex, len(vertices))
	for i, v := range vertices {
		if int(v) >= n {
			return nil, nil, fmt.Errorf("graph: induced vertex %d out of range", v)
		}
		if _, dup := newID[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in induced set", v)
		}
		newID[v] = Vertex(i)
	}
	var edges []Edge
	for _, v := range vertices {
		nbr, ws := g.Neighbors(v)
		for i, u := range nbr {
			nu, ok := newID[u]
			if !ok || v >= u {
				continue // keep each undirected edge once; self-loops are
				// irrelevant for shortest paths and dropped
			}
			edges = append(edges, Edge{U: newID[v], V: nu, W: ws[i]})
		}
	}
	sub, err := FromEdges(len(vertices), edges, BuildOptions{KeepParallelEdges: true})
	if err != nil {
		return nil, nil, err
	}
	back := append([]Vertex(nil), vertices...)
	return sub, back, nil
}
