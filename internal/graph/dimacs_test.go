package graph

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	edges := []Edge{{0, 1, 7}, {1, 2, 0}, {2, 0, 255}}
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, 3, edges); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "p sp 3 3") {
		t.Errorf("missing problem line:\n%s", out)
	}
	if !strings.Contains(out, "a 1 2 7") {
		t.Errorf("missing 1-based arc:\n%s", out)
	}
	n, back, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(back) != 3 {
		t.Fatalf("n=%d m=%d", n, len(back))
	}
	for i := range edges {
		if back[i] != edges[i] {
			t.Errorf("edge %d = %+v, want %+v", i, back[i], edges[i])
		}
	}
}

func TestDIMACSParsesRealisticFile(t *testing.T) {
	input := `c 9th DIMACS style file
c with comments and blank lines

p sp 4 3
a 1 2 10
a 2 3 20
a 4 1 30
`
	n, edges, err := ReadDIMACS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || len(edges) != 3 {
		t.Fatalf("n=%d m=%d", n, len(edges))
	}
	if edges[2] != (Edge{U: 3, V: 0, W: 30}) {
		t.Errorf("edge 2 = %+v", edges[2])
	}
}

func TestDIMACSRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no problem line": "a 1 2 3\n",
		"bad problem":     "p xx 3 3\n",
		"bad arity":       "p sp 3 3\na 1 2\n",
		"non-numeric":     "p sp 3 3\na 1 2 x\n",
		"out of range":    "p sp 3 3\na 1 9 5\n",
		"unknown record":  "p sp 3 3\nz nope\n",
		"negative weight": "p sp 3 3\na 1 2 -4\n",
	}
	for name, input := range cases {
		if _, _, err := ReadDIMACS(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDIMACSSymmetricArcsCollapse(t *testing.T) {
	// Both directions of one road: a single undirected edge must remain.
	input := "p sp 2 2\na 1 2 9\na 2 1 9\n"
	n, edges, err := ReadDIMACS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromEdges(n, edges, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("m = %d, want 1 after collapsing symmetric arcs", g.NumEdges())
	}
}

func TestDIMACSFileAndAutoDetect(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	edges := randomEdges(r, 50, 200)
	dir := t.TempDir()
	grPath := filepath.Join(dir, "g.gr")
	if err := SaveDIMACSFile(grPath, 50, edges); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "g.bin")
	if err := SaveEdgeListFile(binPath, 50, edges); err != nil {
		t.Fatal(err)
	}
	gGr, err := LoadGraphFile(grPath)
	if err != nil {
		t.Fatal(err)
	}
	gBin, err := LoadGraphFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if gGr.NumEdges() != gBin.NumEdges() || gGr.NumVertices() != gBin.NumVertices() {
		t.Errorf("formats disagree: gr %d/%d vs bin %d/%d",
			gGr.NumVertices(), gGr.NumEdges(), gBin.NumVertices(), gBin.NumEdges())
	}
	for v := 0; v < 50; v++ {
		if gGr.Degree(Vertex(v)) != gBin.Degree(Vertex(v)) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
	if _, err := LoadGraphFile(filepath.Join(dir, "missing.gr")); err == nil {
		t.Error("missing file accepted")
	}
}
