package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// lowerCompaction tightens the compaction policy for the duration of a
// test and restores it afterwards. Not safe under t.Parallel.
func lowerCompaction(t *testing.T, den, slack int64) {
	t.Helper()
	oldDen, oldSlack := patchCompactDen, patchCompactSlack
	patchCompactDen, patchCompactSlack = den, slack
	t.Cleanup(func() { patchCompactDen, patchCompactSlack = oldDen, oldSlack })
}

// checkEquiv asserts got (patched) is semantically identical to want
// (rebuilt): same edge list, edge count, max weight, degrees, and a
// clean Validate on both representations.
func checkEquiv(t *testing.T, got, want *Graph) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatalf("patched Validate: %v", err)
	}
	if err := want.Validate(); err != nil {
		t.Fatalf("rebuilt Validate: %v", err)
	}
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("NumVertices: patched %d, rebuilt %d", got.NumVertices(), want.NumVertices())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("NumEdges: patched %d, rebuilt %d", got.NumEdges(), want.NumEdges())
	}
	if got.MaxWeight() != want.MaxWeight() {
		t.Fatalf("MaxWeight: patched %d, rebuilt %d", got.MaxWeight(), want.MaxWeight())
	}
	if !reflect.DeepEqual(got.Edges(), want.Edges()) {
		t.Fatal("edge lists diverge")
	}
	for v := 0; v < want.NumVertices(); v++ {
		if got.Degree(Vertex(v)) != want.Degree(Vertex(v)) {
			t.Fatalf("Degree(%d): patched %d, rebuilt %d", v, got.Degree(Vertex(v)), want.Degree(Vertex(v)))
		}
	}
}

func TestPatchedBasics(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{0, 1, 5}, {1, 2, 3}})
	g2, err := g.Patched(nil, []Edge{{2, 3, 7}})
	if err != nil {
		t.Fatalf("Patched: %v", err)
	}
	if g2.IsCompact() {
		t.Error("patched graph reports compact")
	}
	if w, ok := g2.EdgeWeight(2, 3); !ok || w != 7 {
		t.Errorf("EdgeWeight(2,3) = %d,%v", w, ok)
	}
	if _, ok := g.EdgeWeight(2, 3); ok {
		t.Error("Patched mutated the receiver")
	}
	want, err := g.WithUpdates(nil, []Edge{{2, 3, 7}})
	if err != nil {
		t.Fatalf("WithUpdates: %v", err)
	}
	checkEquiv(t, g2, want)

	// Delete matches the pair whatever the named weight, either order;
	// absent delete is a no-op; min-merge keeps the lighter weight.
	g3, err := g2.Patched([]Edge{{2, 1, 99}, {0, 3, 0}}, []Edge{{0, 1, 9}})
	if err != nil {
		t.Fatalf("Patched: %v", err)
	}
	want3, err := want.WithUpdates([]Edge{{2, 1, 99}, {0, 3, 0}}, []Edge{{0, 1, 9}})
	if err != nil {
		t.Fatalf("WithUpdates: %v", err)
	}
	checkEquiv(t, g3, want3)
	if _, ok := g3.EdgeWeight(1, 2); ok {
		t.Error("edge (1,2) survived deletion")
	}
	if w, _ := g3.EdgeWeight(0, 1); w != 5 {
		t.Errorf("parallel insert kept weight %d, want min 5", w)
	}

	// Out-of-range insert fails the whole batch; self-loop inserts drop.
	if _, err := g.Patched(nil, []Edge{{0, 9, 1}}); err == nil {
		t.Error("out-of-range insert did not fail")
	}
	g4, err := g.Patched(nil, []Edge{{1, 1, 2}})
	if err != nil {
		t.Fatalf("Patched(self-loop): %v", err)
	}
	if g4.NumEdges() != g.NumEdges() {
		t.Error("self-loop insert changed the edge count")
	}
}

func TestPatchedNoopSharesOverlay(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{0, 1, 5}, {1, 2, 3}})
	g2, err := g.Patched(nil, nil)
	if err != nil {
		t.Fatalf("Patched: %v", err)
	}
	if g2 == g {
		t.Error("no-op batch returned the receiver itself")
	}
	checkEquiv(t, g2, g)
}

func TestPatchedCompaction(t *testing.T) {
	lowerCompaction(t, 4, 4)
	g := mustFromEdges(t, 16, []Edge{{0, 1, 5}, {1, 2, 3}, {2, 3, 7}, {3, 4, 2}})
	cur := g
	compacted := false
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 40; step++ {
		u := Vertex(rng.Intn(16))
		v := Vertex(rng.Intn(16))
		if u == v {
			continue
		}
		ng, err := cur.Patched(nil, []Edge{{u, v, Weight(1 + rng.Intn(9))}})
		if err != nil {
			t.Fatalf("step %d: Patched: %v", step, err)
		}
		if ng.IsCompact() {
			compacted = true
		}
		cur = ng
	}
	if !compacted {
		t.Error("overlay never crossed the (lowered) compaction threshold")
	}
	if err := cur.Validate(); err != nil {
		t.Fatalf("final Validate: %v", err)
	}
}

func TestGrownSuperSource(t *testing.T) {
	g := mustFromEdges(t, 5, []Edge{{0, 1, 5}, {1, 2, 3}, {3, 4, 1}})
	n := g.NumVertices()
	ag := g.Grown(1)
	if ag.NumVertices() != n+1 {
		t.Fatalf("Grown: %d vertices, want %d", ag.NumVertices(), n+1)
	}
	if ag.Degree(Vertex(n)) != 0 {
		t.Fatalf("new vertex has degree %d", ag.Degree(Vertex(n)))
	}
	super := []Edge{{Vertex(n), 0, 0}, {Vertex(n), 3, 0}}
	ag, err := ag.Patched(nil, super)
	if err != nil {
		t.Fatalf("Patched(super): %v", err)
	}
	edges := append(g.Edges(), super...)
	want := mustFromEdges(t, n+1, edges)
	checkEquiv(t, ag, want)
	// The base graph is untouched.
	if g.NumVertices() != n || g.NumEdges() != 3 {
		t.Error("Grown/Patched mutated the receiver")
	}
}

// applyOracle tracks the live edge set the way WithUpdates defines it,
// so streams can be checked against a from-scratch FromEdges build.
type applyOracle struct {
	n     int
	pairs map[uint64]Edge
}

func newApplyOracle(g *Graph) *applyOracle {
	o := &applyOracle{n: g.NumVertices(), pairs: make(map[uint64]Edge)}
	for _, e := range g.Edges() {
		o.pairs[pairKey(e.U, e.V)] = e
	}
	return o
}

func (o *applyOracle) apply(deletes, inserts []Edge) {
	for _, e := range deletes {
		delete(o.pairs, pairKey(e.U, e.V))
	}
	for _, e := range inserts {
		if e.U == e.V {
			continue
		}
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		k := pairKey(u, v)
		if prev, ok := o.pairs[k]; !ok || e.W < prev.W {
			o.pairs[k] = Edge{u, v, e.W}
		}
	}
}

func (o *applyOracle) graph(t testing.TB) *Graph {
	t.Helper()
	edges := make([]Edge, 0, len(o.pairs))
	for _, e := range o.pairs {
		edges = append(edges, e)
	}
	g, err := FromEdges(o.n, edges, BuildOptions{})
	if err != nil {
		t.Fatalf("oracle FromEdges: %v", err)
	}
	return g
}

// TestPatchedMatchesRebuildStream is the long-stream property test: a
// randomized update stream chained through Patched must stay
// semantically identical to a from-scratch rebuild at every step,
// across compaction crossings.
func TestPatchedMatchesRebuildStream(t *testing.T) {
	for _, tight := range []bool{false, true} {
		name := "default-threshold"
		if tight {
			name = "tight-threshold"
		}
		t.Run(name, func(t *testing.T) {
			if tight {
				lowerCompaction(t, 2, 8)
			}
			rng := rand.New(rand.NewSource(42))
			const n = 48
			var edges []Edge
			for i := 0; i < 150; i++ {
				u, v := Vertex(rng.Intn(n)), Vertex(rng.Intn(n))
				if u == v {
					continue
				}
				edges = append(edges, Edge{u, v, Weight(rng.Intn(256))})
			}
			cur := mustFromEdges(t, n, edges)
			oracle := newApplyOracle(cur)
			sawOverlay, sawCompact := false, false
			for step := 0; step < 120; step++ {
				live := cur.Edges()
				var dels, ins []Edge
				for _, e := range live {
					if rng.Intn(10) == 0 {
						dels = append(dels, e)
					}
				}
				for i := rng.Intn(4); i > 0; i-- {
					u, v := Vertex(rng.Intn(n)), Vertex(rng.Intn(n))
					ins = append(ins, Edge{u, v, Weight(rng.Intn(256))})
				}
				got, err := cur.Patched(dels, ins)
				if err != nil {
					t.Fatalf("step %d: Patched: %v", step, err)
				}
				oracle.apply(dels, ins)
				checkEquiv(t, got, oracle.graph(t))
				if got.IsCompact() {
					sawCompact = true
				} else {
					sawOverlay = true
				}
				cur = got
			}
			if !sawOverlay {
				t.Error("stream never ran on an overlay")
			}
			if tight && !sawCompact {
				t.Error("tight threshold never compacted")
			}
		})
	}
}

// FuzzPatchedMatchesRebuild feeds arbitrary byte streams as update ops
// and cross-checks Patched against the rebuild oracle after every
// batch. Each op quintuple is (kind, u, v, w, batchBreak).
func FuzzPatchedMatchesRebuild(f *testing.F) {
	f.Add([]byte{0, 1, 2, 9, 0, 1, 1, 2, 0, 1})
	f.Add([]byte{1, 3, 3, 0, 0, 0, 250, 1, 200, 1, 1, 250, 1, 7, 0})
	f.Add([]byte{0, 0, 1, 255, 1, 1, 0, 1, 255, 0, 0, 2, 3, 4, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 12
		cur, err := FromEdges(n, []Edge{{0, 1, 4}, {1, 2, 9}, {2, 3, 1}, {0, 3, 200}}, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		oracle := newApplyOracle(cur)
		var dels, ins []Edge
		flush := func() {
			got, err := cur.Patched(dels, ins)
			if err != nil {
				t.Fatalf("Patched: %v", err)
			}
			oracle.apply(dels, ins)
			checkEquiv(t, got, oracle.graph(t))
			cur = got
			dels, ins = nil, nil
		}
		for len(data) >= 5 {
			kind, u, v, w, brk := data[0], data[1]%n, data[2]%n, data[3], data[4]
			data = data[5:]
			e := Edge{Vertex(u), Vertex(v), Weight(w)}
			if kind%2 == 0 {
				dels = append(dels, e)
			} else if u != v {
				ins = append(ins, e)
			}
			if brk%3 == 0 {
				flush()
			}
		}
		flush()
	})
}

func TestPatchedChainFromPatchedParent(t *testing.T) {
	// Patch-of-patch with overlapping touched sets: the superseding row
	// must come from the child's edits over the parent's overlay row.
	g := mustFromEdges(t, 6, []Edge{{0, 1, 5}, {1, 2, 3}, {2, 3, 7}})
	p1, err := g.Patched([]Edge{{1, 2, 0}}, []Edge{{1, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p1.Patched([]Edge{{1, 4, 0}}, []Edge{{1, 2, 6}, {4, 5, 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := mustFromEdges(t, 6, []Edge{{0, 1, 5}, {2, 3, 7}, {1, 2, 6}, {4, 5, 2}})
	checkEquiv(t, p2, want)
	// Both ancestors still read correctly.
	if w, _ := p1.EdgeWeight(1, 4); w != 8 {
		t.Errorf("parent patch row changed: EdgeWeight(1,4) = %d", w)
	}
	if w, _ := g.EdgeWeight(1, 2); w != 3 {
		t.Errorf("base row changed: EdgeWeight(1,2) = %d", w)
	}
}

func TestPatchedMaxWeightRescan(t *testing.T) {
	// Deleting the unique maximum edge must lower MaxWeight exactly.
	g := mustFromEdges(t, 4, []Edge{{0, 1, 250}, {1, 2, 9}, {2, 3, 7}})
	p, err := g.Patched([]Edge{{0, 1, 0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxWeight() != 9 {
		t.Errorf("MaxWeight = %d, want 9", p.MaxWeight())
	}
	// Min-merging the max edge down also triggers the rescan path.
	p2, err := g.Patched(nil, []Edge{{0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if p2.MaxWeight() != 9 {
		t.Errorf("MaxWeight after min-merge = %d, want 9", p2.MaxWeight())
	}
}
