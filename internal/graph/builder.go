package graph

import (
	"fmt"
	"sort"
)

// BuildOptions controls edge-list to CSR conversion.
type BuildOptions struct {
	// KeepSelfLoops retains self-loop edges. Self-loops never affect
	// shortest distances, so the default is to drop them (as Graph500
	// implementations do).
	KeepSelfLoops bool
	// KeepParallelEdges retains parallel (duplicate endpoint) edges. When
	// false (the default), only the minimum-weight edge between each vertex
	// pair is kept; the others can never be on a shortest path.
	KeepParallelEdges bool
}

// FromEdges builds a CSR graph with n vertices from an undirected edge
// list. Each input edge is inserted in both directions. Endpoints must be
// < n.
func FromEdges(n int, edges []Edge, opt BuildOptions) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", e.U, e.V, n)
		}
	}
	work := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V && !opt.KeepSelfLoops {
			continue
		}
		work = append(work, e)
	}
	if !opt.KeepParallelEdges {
		work = dedupMinWeight(work)
	}

	// Counting sort into CSR: each undirected edge contributes an entry at
	// both endpoints (a self-loop contributes two entries at its vertex).
	offsets := make([]int64, n+1)
	for _, e := range work {
		offsets[e.U+1]++
		offsets[e.V+1]++
	}
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	total := offsets[n]
	adj := make([]Vertex, total)
	weights := make([]Weight, total)
	cursor := make([]int64, n)
	for _, e := range work {
		i := offsets[e.U] + cursor[e.U]
		adj[i], weights[i] = e.V, e.W
		cursor[e.U]++
		j := offsets[e.V] + cursor[e.V]
		adj[j], weights[j] = e.U, e.W
		cursor[e.V]++
	}
	g := &Graph{offsets: offsets, adj: adj, weights: weights, numEdge: int64(len(work))}
	g.sortRows()
	g.cacheMaxWeight()
	return g, nil
}

// cacheMaxWeight records the maximum edge weight so MaxWeight is O(1)
// and patch derivation can track it incrementally.
func (g *Graph) cacheMaxWeight() {
	var mw Weight
	for _, w := range g.weights {
		if w > mw {
			mw = w
		}
	}
	g.maxW, g.maxWOK = mw, true
}

// dedupMinWeight collapses parallel edges, keeping the minimum weight per
// unordered endpoint pair. Order of the result is deterministic.
func dedupMinWeight(edges []Edge) []Edge {
	norm := make([]Edge, len(edges))
	for i, e := range edges {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		norm[i] = e
	}
	sort.Slice(norm, func(i, j int) bool {
		a, b := norm[i], norm[j]
		if a.U != b.U {
			return a.U < b.U
		}
		if a.V != b.V {
			return a.V < b.V
		}
		return a.W < b.W
	})
	out := norm[:0]
	for i, e := range norm {
		if i > 0 && e.U == out[len(out)-1].U && e.V == out[len(out)-1].V {
			continue // duplicate with weight >= kept minimum
		}
		out = append(out, e)
	}
	return out
}

// sortRows sorts each vertex's adjacency by ascending weight, breaking
// ties by neighbor id so the representation is canonical.
func (g *Graph) sortRows() {
	for v := 0; v < g.NumVertices(); v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		row := rowSorter{adj: g.adj[lo:hi], w: g.weights[lo:hi]}
		sort.Sort(row)
	}
}

type rowSorter struct {
	adj []Vertex
	w   []Weight
}

func (r rowSorter) Len() int { return len(r.adj) }
func (r rowSorter) Less(i, j int) bool {
	if r.w[i] != r.w[j] {
		return r.w[i] < r.w[j]
	}
	return r.adj[i] < r.adj[j]
}
func (r rowSorter) Swap(i, j int) {
	r.adj[i], r.adj[j] = r.adj[j], r.adj[i]
	r.w[i], r.w[j] = r.w[j], r.w[i]
}

// FromCSR constructs a Graph directly from raw CSR arrays. The arrays are
// taken over by the graph (not copied). Rows are re-sorted by weight and
// the structure is validated unless skipValidate is set; numEdge must be
// half the number of CSR entries.
func FromCSR(offsets []int64, adj []Vertex, weights []Weight, skipValidate bool) (*Graph, error) {
	if len(offsets) == 0 || len(adj) != len(weights) {
		return nil, fmt.Errorf("graph: malformed CSR arrays")
	}
	if len(adj)%2 != 0 {
		return nil, fmt.Errorf("graph: odd CSR entry count %d cannot be symmetric", len(adj))
	}
	g := &Graph{offsets: offsets, adj: adj, weights: weights, numEdge: int64(len(adj) / 2)}
	g.sortRows()
	g.cacheMaxWeight()
	if !skipValidate {
		if err := g.Validate(); err != nil {
			return nil, err
		}
	}
	return g, nil
}
