package graph

// Incremental CSR patching. WithUpdates (update.go) rebuilds the whole
// CSR from a filtered edge list — O(N+M) per batch however small the
// batch. Patched below applies the same delete/insert semantics as a
// row-granularity copy-on-write overlay instead: only touched vertices'
// adjacency rows are rewritten (into a small patch arena), untouched
// rows keep aliasing the parent snapshot's arrays, and the result is
// still an immutable plain *Graph — every consumer reads rows through
// Neighbors/Degree, which dispatch into the overlay, so engine planes,
// validators and generators are none the wiser.
//
// Overlay growth is bounded by amortized compaction: once the arena
// plus the base entries it shadows exceed a fraction of the base CSR,
// Patched returns a fully compacted graph (contiguous arrays, nil
// overlay). Compaction is a straight O(N+M) row copy — the rows are
// already canonically sorted — so its cost amortizes over the batches
// that accumulated the deltas, and the overlay lookup cost (a bitmap
// probe, plus a binary search only for rows actually patched) never
// drifts far from the compact graph's.
//
// Precondition: the receiver must follow the default builder rules —
// no self-loops, at most one edge per vertex pair (min-weight dedup).
// That is what FromEdges produces with default BuildOptions and what
// the delete-by-pair semantics already assume; a graph built with
// KeepSelfLoops/KeepParallelEdges must go through WithUpdates, which
// renormalizes everything.

import (
	"fmt"
	"sort"
)

// rowPatch is the copy-on-write overlay of a patched Graph: the rows
// that differ from the base arrays, in one shared arena. A rowPatch is
// immutable once its Graph is returned; parents and children may alias
// one (Grown) or share the base arrays around different overlays
// (Patched).
type rowPatch struct {
	verts   []Vertex // patched vertices, sorted ascending, no duplicates
	starts  []int64  // len(verts)+1; row i occupies arena [starts[i], starts[i+1])
	adj     []Vertex // arena, rows canonically sorted like the base CSR
	weights []Weight
	bits    []uint64 // bit v set iff v's row is patched; len (n+63)/64
	shadow  int64    // base CSR entries shadowed (dead) under patched rows
}

// find returns the overlay row index of v. The bitmap rejects the
// common untouched-vertex case in O(1); only patched rows pay the
// binary search.
func (p *rowPatch) find(v Vertex) (int, bool) {
	w := int(v >> 6)
	if w >= len(p.bits) || p.bits[w]&(1<<(v&63)) == 0 {
		return 0, false
	}
	lo, hi := 0, len(p.verts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.verts[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, true
}

// row returns the arena row at overlay index i.
func (p *rowPatch) row(i int) ([]Vertex, []Weight) {
	lo, hi := p.starts[i], p.starts[i+1]
	return p.adj[lo:hi], p.weights[lo:hi]
}

// entries returns the number of CSR entries resident in the arena.
func (p *rowPatch) entries() int64 { return int64(len(p.adj)) }

// patchCompact* set the amortized compaction policy: a patch chain
// compacts once arena entries plus shadowed base entries exceed
// base/patchCompactDen + patchCompactSlack. Package variables so tests
// can force threshold crossings on small graphs.
var (
	patchCompactDen   = int64(4)
	patchCompactSlack = int64(64)
)

// patchThreshold returns the overlay size beyond which Patched compacts.
func patchThreshold(baseEntries int) int64 {
	return int64(baseEntries)/patchCompactDen + patchCompactSlack
}

// IsCompact reports whether the graph has no pending patch overlay.
// AdjOffsets/AdjAt are only meaningful on compact graphs.
func (g *Graph) IsCompact() bool { return g.patch == nil }

// PatchStats returns the overlay shape — patched row count, arena
// entries, and shadowed base entries — all zero for a compact graph.
// Tests use it to drive the compaction policy.
func (g *Graph) PatchStats() (rows int, entries, shadow int64) {
	if g.patch == nil {
		return 0, 0, 0
	}
	return len(g.patch.verts), g.patch.entries(), g.patch.shadow
}

// pairChange is the effective outcome of one batch on one vertex pair
// whose row content actually changes (no-ops are filtered out).
type pairChange struct {
	u, v           Vertex // u < v
	hasOld, hasNew bool
	oldW, newW     Weight
}

// other returns the endpoint of c that is not x.
func (c pairChange) other(x Vertex) Vertex {
	if c.u == x {
		return c.v
	}
	return c.u
}

// Patched returns a new graph with the given edges removed and then
// added — WithUpdates semantics exactly (delete by pair whatever the
// weight, absent delete is a no-op, inserts min-merge with survivors,
// self-loop inserts dropped, out-of-range insert fails the whole
// batch) — but built as a row-granularity copy-on-write patch: cost is
// O(batch + overlay) rather than O(N+M), untouched rows share storage
// with the receiver, and an amortized compaction keeps the overlay a
// bounded fraction of the base CSR. The receiver is not modified and
// stays fully readable.
func (g *Graph) Patched(deletes, inserts []Edge) (*Graph, error) {
	n := g.NumVertices()
	for _, e := range inserts {
		if int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", e.U, e.V, n)
		}
	}
	del := make(map[uint64]struct{}, len(deletes))
	for _, e := range deletes {
		del[pairKey(e.U, e.V)] = struct{}{}
	}
	// Min-weight dedup of the inserts themselves, self-loops dropped —
	// the builder's rules, applied up front so each pair resolves once.
	ins := make(map[uint64]Weight, len(inserts))
	for _, e := range inserts {
		if e.U == e.V {
			continue
		}
		k := pairKey(e.U, e.V)
		if w, ok := ins[k]; !ok || e.W < w {
			ins[k] = e.W
		}
	}

	// Resolve every named pair to its effective change, dropping no-ops
	// (absent deletes, inserts that min-merge to the existing weight).
	seen := make(map[uint64]struct{}, len(del)+len(ins))
	var changes []pairChange
	consider := func(u, v Vertex) {
		if u == v || int(u) >= n || int(v) >= n {
			return // self pair or out-of-range delete: can match nothing
		}
		if u > v {
			u, v = v, u
		}
		k := pairKey(u, v)
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		oldW, hasOld := g.EdgeWeight(u, v)
		_, deleted := del[k]
		insW, hasIns := ins[k]
		hasNew, newW := false, Weight(0)
		switch {
		case hasIns && (deleted || !hasOld):
			hasNew, newW = true, insW
		case hasIns: // min-merge with the surviving edge
			hasNew, newW = true, oldW
			if insW < newW {
				newW = insW
			}
		case deleted:
			// pair ends absent
		}
		if hasOld == hasNew && (!hasOld || oldW == newW) {
			return
		}
		changes = append(changes, pairChange{u, v, hasOld, hasNew, oldW, newW})
	}
	for _, e := range deletes {
		consider(e.U, e.V)
	}
	for _, e := range inserts {
		consider(e.U, e.V)
	}
	if len(changes) == 0 {
		ng := *g // content-identical snapshot; the overlay is immutable and shared
		return &ng, nil
	}

	// Per-endpoint edit lists and the sorted touched-vertex set.
	edits := make(map[Vertex][]pairChange, 2*len(changes))
	for _, c := range changes {
		edits[c.u] = append(edits[c.u], c)
		edits[c.v] = append(edits[c.v], c)
	}
	touched := make([]Vertex, 0, len(edits))
	for v := range edits {
		touched = append(touched, v)
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })

	// Edge-count delta and incremental max-weight tracking. Losing a
	// max-weight edge without a replacement at or above it forces a
	// rescan — O(N) only, because rows are weight-sorted.
	var dM int64
	oldMax := g.MaxWeight()
	newMax, maxLost := oldMax, false
	for _, c := range changes {
		if c.hasOld && !c.hasNew {
			dM--
		}
		if !c.hasOld && c.hasNew {
			dM++
		}
		if c.hasOld && c.oldW == oldMax && (!c.hasNew || c.newW < c.oldW) {
			maxLost = true
		}
		if c.hasNew && c.newW > newMax {
			newMax = c.newW
		}
	}

	np := g.mergedOverlay(touched, edits)
	ng := &Graph{
		offsets: g.offsets,
		adj:     g.adj,
		weights: g.weights,
		numEdge: g.numEdge + dM,
		patch:   np,
		maxWOK:  true,
		maxW:    newMax,
	}
	if maxLost && newMax == oldMax {
		ng.maxW = ng.scanMaxWeight()
	}
	if np.entries()+np.shadow > patchThreshold(len(g.adj)) {
		return ng.compacted(), nil
	}
	return ng, nil
}

// mergedOverlay builds the child overlay: the receiver's patched rows
// that stay untouched are copied into the new arena verbatim, touched
// rows are rebuilt from their current content plus their edits.
func (g *Graph) mergedOverlay(touched []Vertex, edits map[Vertex][]pairChange) *rowPatch {
	old := g.patch
	var oldVerts []Vertex
	if old != nil {
		oldVerts = old.verts
	}
	n := g.NumVertices()
	np := &rowPatch{
		verts:  make([]Vertex, 0, len(oldVerts)+len(touched)),
		starts: make([]int64, 1, len(oldVerts)+len(touched)+1),
		bits:   make([]uint64, (n+63)/64),
	}
	if old != nil {
		copy(np.bits, old.bits)
	}
	appendRow := func(v Vertex, radj []Vertex, rws []Weight) {
		np.verts = append(np.verts, v)
		np.adj = append(np.adj, radj...)
		np.weights = append(np.weights, rws...)
		np.starts = append(np.starts, int64(len(np.adj)))
		np.bits[v>>6] |= 1 << (v & 63)
		np.shadow += g.offsets[v+1] - g.offsets[v]
	}
	i, j := 0, 0
	for i < len(oldVerts) || j < len(touched) {
		switch {
		case j >= len(touched) || (i < len(oldVerts) && oldVerts[i] < touched[j]):
			radj, rws := old.row(i)
			appendRow(oldVerts[i], radj, rws)
			i++
		case i >= len(oldVerts) || touched[j] < oldVerts[i]:
			radj, rws := g.editedRow(touched[j], edits[touched[j]])
			appendRow(touched[j], radj, rws)
			j++
		default: // same vertex: the edited row supersedes the old patch row
			radj, rws := g.editedRow(touched[j], edits[touched[j]])
			appendRow(touched[j], radj, rws)
			i++
			j++
		}
	}
	return np
}

// editedRow materializes the post-batch adjacency row of v: current
// entries minus every edited pair's old entry, plus the surviving new
// entries, re-sorted canonically (weight, then neighbor id).
func (g *Graph) editedRow(v Vertex, ed []pairChange) ([]Vertex, []Weight) {
	nbr, ws := g.Neighbors(v)
	drop := make(map[Vertex]bool, len(ed))
	adds := 0
	for _, c := range ed {
		drop[c.other(v)] = true
		if c.hasNew {
			adds++
		}
	}
	radj := make([]Vertex, 0, len(nbr)+adds)
	rws := make([]Weight, 0, len(nbr)+adds)
	for i, u := range nbr {
		if drop[u] {
			continue
		}
		radj = append(radj, u)
		rws = append(rws, ws[i])
	}
	for _, c := range ed {
		if !c.hasNew {
			continue
		}
		radj = append(radj, c.other(v))
		rws = append(rws, c.newW)
	}
	sort.Sort(rowSorter{adj: radj, w: rws})
	return radj, rws
}

// scanMaxWeight recomputes the maximum edge weight from row content.
// Rows are weight-sorted, so only each row's last entry matters: O(N).
func (g *Graph) scanMaxWeight() Weight {
	var mw Weight
	for v := 0; v < g.NumVertices(); v++ {
		_, ws := g.Neighbors(Vertex(v))
		if len(ws) > 0 && ws[len(ws)-1] > mw {
			mw = ws[len(ws)-1]
		}
	}
	return mw
}

// compacted materializes every row into fresh contiguous CSR arrays —
// the canonical representation FromEdges would build, reached by a
// straight row copy (no sorting: rows are already canonical).
func (g *Graph) compacted() *Graph {
	n := g.NumVertices()
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + int64(g.Degree(Vertex(v)))
	}
	adj := make([]Vertex, offsets[n])
	weights := make([]Weight, offsets[n])
	for v := 0; v < n; v++ {
		nbr, ws := g.Neighbors(Vertex(v))
		copy(adj[offsets[v]:offsets[v+1]], nbr)
		copy(weights[offsets[v]:offsets[v+1]], ws)
	}
	return &Graph{
		offsets: offsets,
		adj:     adj,
		weights: weights,
		numEdge: g.numEdge,
		maxW:    g.maxW,
		maxWOK:  g.maxWOK,
	}
}

// validatePatch checks the overlay's structural invariants: sorted
// unique in-range patched vertices, a monotone arena index covering the
// arena exactly, a bitmap that agrees with the vertex list, and a
// shadow count matching the base rows it hides. Called from Validate.
func (g *Graph) validatePatch() error {
	p := g.patch
	if p == nil {
		return nil
	}
	n := g.NumVertices()
	if len(p.starts) != len(p.verts)+1 || p.starts[0] != 0 ||
		p.starts[len(p.verts)] != int64(len(p.adj)) || len(p.adj) != len(p.weights) {
		return fmt.Errorf("graph: patch index/arena length mismatch")
	}
	if len(p.bits) != (n+63)/64 {
		return fmt.Errorf("graph: patch bitmap covers %d words, want %d", len(p.bits), (n+63)/64)
	}
	var shadow int64
	for i, v := range p.verts {
		if int(v) >= n {
			return fmt.Errorf("graph: patched vertex %d out of range", v)
		}
		if i > 0 && p.verts[i-1] >= v {
			return fmt.Errorf("graph: patched vertices not sorted at %d", v)
		}
		if p.starts[i+1] < p.starts[i] {
			return fmt.Errorf("graph: patch index not monotone at vertex %d", v)
		}
		if p.bits[v>>6]&(1<<(v&63)) == 0 {
			return fmt.Errorf("graph: patched vertex %d missing from bitmap", v)
		}
		shadow += g.offsets[v+1] - g.offsets[v]
	}
	if shadow != p.shadow {
		return fmt.Errorf("graph: patch shadow %d, base rows say %d", p.shadow, shadow)
	}
	var popcnt int
	for _, w := range p.bits {
		for ; w != 0; w &= w - 1 {
			popcnt++
		}
	}
	if popcnt != len(p.verts) {
		return fmt.Errorf("graph: patch bitmap marks %d vertices, overlay has %d", popcnt, len(p.verts))
	}
	return nil
}

// Grown returns a graph with extra additional (edgeless) vertices
// appended after the receiver's, sharing all row storage with it. The
// offsets table is the only copy — O(N) — and new rows are empty until
// a Patched call inserts edges to them. RunMultiSource uses it to graft
// a virtual super-source onto a graph without rebuilding the CSR.
func (g *Graph) Grown(extra int) *Graph {
	ng := *g
	if extra <= 0 {
		return &ng
	}
	n := g.NumVertices()
	offsets := make([]int64, n+1+extra)
	copy(offsets, g.offsets)
	total := g.offsets[n]
	for i := n + 1; i < len(offsets); i++ {
		offsets[i] = total
	}
	ng.offsets = offsets
	if g.patch != nil {
		np := *g.patch // shares verts/starts/arena; only the bitmap resizes
		np.bits = make([]uint64, (n+extra+63)/64)
		copy(np.bits, g.patch.bits)
		ng.patch = &np
	}
	return &ng
}
