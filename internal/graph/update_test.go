package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func mustFromEdges(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges, BuildOptions{})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestWithUpdatesInsert(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{0, 1, 5}, {1, 2, 3}})
	g2, err := g.WithUpdates(nil, []Edge{{2, 3, 7}})
	if err != nil {
		t.Fatalf("WithUpdates: %v", err)
	}
	if err := g2.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if w, ok := g2.EdgeWeight(2, 3); !ok || w != 7 {
		t.Errorf("EdgeWeight(2,3) = %d,%v", w, ok)
	}
	// The original is untouched.
	if _, ok := g.EdgeWeight(2, 3); ok {
		t.Error("insert mutated the receiver")
	}
	if g2.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g2.NumEdges())
	}
}

func TestWithUpdatesDelete(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{0, 1, 5}, {1, 2, 3}, {2, 3, 7}})
	// Deletion matches the pair whatever weight the request names, and in
	// either endpoint order.
	g2, err := g.WithUpdates([]Edge{{2, 1, 99}}, nil)
	if err != nil {
		t.Fatalf("WithUpdates: %v", err)
	}
	if _, ok := g2.EdgeWeight(1, 2); ok {
		t.Error("edge (1,2) survived deletion")
	}
	if g2.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g2.NumEdges())
	}
	// Deleting an absent edge is a no-op.
	g3, err := g.WithUpdates([]Edge{{0, 3, 0}}, nil)
	if err != nil {
		t.Fatalf("WithUpdates(absent delete): %v", err)
	}
	if g3.NumEdges() != g.NumEdges() {
		t.Errorf("absent delete changed edge count: %d", g3.NumEdges())
	}
}

func TestWithUpdatesWeightChange(t *testing.T) {
	g := mustFromEdges(t, 3, []Edge{{0, 1, 5}})
	g2, err := g.WithUpdates([]Edge{{0, 1, 0}}, []Edge{{0, 1, 9}})
	if err != nil {
		t.Fatalf("WithUpdates: %v", err)
	}
	if w, ok := g2.EdgeWeight(0, 1); !ok || w != 9 {
		t.Errorf("EdgeWeight(0,1) = %d,%v, want 9", w, ok)
	}
	// Without the delete, the insert collapses to the minimum weight.
	g3, err := g.WithUpdates(nil, []Edge{{0, 1, 9}})
	if err != nil {
		t.Fatalf("WithUpdates: %v", err)
	}
	if w, _ := g3.EdgeWeight(0, 1); w != 5 {
		t.Errorf("parallel insert kept weight %d, want min 5", w)
	}
	g4, err := g.WithUpdates(nil, []Edge{{0, 1, 2}})
	if err != nil {
		t.Fatalf("WithUpdates: %v", err)
	}
	if w, _ := g4.EdgeWeight(0, 1); w != 2 {
		t.Errorf("lighter parallel insert kept weight %d, want 2", w)
	}
}

func TestWithUpdatesRejectsOutOfRange(t *testing.T) {
	g := mustFromEdges(t, 3, []Edge{{0, 1, 5}})
	if _, err := g.WithUpdates(nil, []Edge{{0, 3, 1}}); err == nil {
		t.Error("out-of-range insert did not fail")
	}
}

func TestWithUpdatesEmptyBatchIsIdentity(t *testing.T) {
	g := mustFromEdges(t, 5, []Edge{{0, 1, 5}, {1, 2, 3}, {3, 4, 1}, {0, 4, 2}})
	g2, err := g.WithUpdates(nil, nil)
	if err != nil {
		t.Fatalf("WithUpdates: %v", err)
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Error("empty batch changed the edge list")
	}
}

// TestWithUpdatesMatchesRebuild drives random batches against random
// graphs and checks the incremental result equals a from-scratch
// FromEdges of the expected edge multiset.
func TestWithUpdatesMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 40
	for trial := 0; trial < 50; trial++ {
		var edges []Edge
		for i := 0; i < 120; i++ {
			u, v := Vertex(rng.Intn(n)), Vertex(rng.Intn(n))
			edges = append(edges, Edge{u, v, Weight(rng.Intn(256))})
		}
		g := mustFromEdges(t, n, edges)
		cur := g.Edges()

		var dels, ins []Edge
		for _, e := range cur {
			if rng.Intn(4) == 0 {
				dels = append(dels, e)
			}
		}
		for i := 0; i < 10; i++ {
			u, v := Vertex(rng.Intn(n)), Vertex(rng.Intn(n))
			ins = append(ins, Edge{u, v, Weight(rng.Intn(256))})
		}

		got, err := g.WithUpdates(dels, ins)
		if err != nil {
			t.Fatalf("trial %d: WithUpdates: %v", trial, err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: Validate: %v", trial, err)
		}

		dead := make(map[uint64]bool)
		for _, e := range dels {
			dead[pairKey(e.U, e.V)] = true
		}
		var want []Edge
		for _, e := range cur {
			if !dead[pairKey(e.U, e.V)] {
				want = append(want, e)
			}
		}
		want = append(want, ins...)
		exp := mustFromEdges(t, n, want)
		if !reflect.DeepEqual(exp.Edges(), got.Edges()) {
			t.Fatalf("trial %d: edge lists diverge", trial)
		}
	}
}

func TestEdgeWeight(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{0, 1, 5}, {1, 2, 3}})
	if w, ok := g.EdgeWeight(1, 0); !ok || w != 5 {
		t.Errorf("EdgeWeight(1,0) = %d,%v", w, ok)
	}
	if _, ok := g.EdgeWeight(0, 2); ok {
		t.Error("EdgeWeight reported an absent edge")
	}
	if _, ok := g.EdgeWeight(0, 9); ok {
		t.Error("EdgeWeight reported an out-of-range vertex")
	}
}
