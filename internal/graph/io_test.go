package graph

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	edges := []Edge{{0, 1, 255}, {2, 3, 0}, {1, 1, 17}}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, 4, edges); err != nil {
		t.Fatal(err)
	}
	n, back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("n = %d, want 4", n)
	}
	if len(back) != len(edges) {
		t.Fatalf("read %d edges, want %d", len(back), len(edges))
	}
	for i := range edges {
		if back[i] != edges[i] {
			t.Errorf("edge %d = %+v, want %+v", i, back[i], edges[i])
		}
	}
}

func TestEdgeListEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, 0, nil); err != nil {
		t.Fatal(err)
	}
	n, edges, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || len(edges) != 0 {
		t.Errorf("got n=%d, %d edges", n, len(edges))
	}
}

func TestEdgeListBadMagic(t *testing.T) {
	buf := bytes.NewBufferString("NOTMAGIC................")
	if _, _, err := ReadEdgeList(buf); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestEdgeListTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, 3, []Edge{{0, 1, 2}, {1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 20, len(full) - 3} {
		if _, _, err := ReadEdgeList(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestEdgeListImplausibleCount(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	// n = 1, m = 2^40 (implausible).
	hdr := make([]byte, 16)
	hdr[0] = 1
	hdr[13] = 1 // little-endian 2^40
	buf.Write(hdr)
	if _, _, err := ReadEdgeList(&buf); err == nil {
		t.Error("implausible edge count accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	edges := randomEdges(r, 100, 500)
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := SaveEdgeListFile(path, 100, edges); err != nil {
		t.Fatal(err)
	}
	n, back, err := LoadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 || len(back) != len(edges) {
		t.Fatalf("n=%d m=%d, want 100/%d", n, len(back), len(edges))
	}
	for i := range edges {
		if back[i] != edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, _, err := LoadEdgeListFile(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
		t.Error("missing file did not error")
	}
}
