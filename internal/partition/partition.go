// Package partition implements vertex-to-rank distribution and the
// inter-node load-balancing transformation (vertex splitting) of the
// paper.
//
// Two distributions are provided. Block distribution assigns contiguous
// vertex ranges to ranks, as in the paper's base implementation. Cyclic
// distribution assigns vertex v to rank v mod P; it is the natural
// companion of vertex splitting, because the proxies a split creates get
// consecutive identifiers and therefore land on consecutive distinct ranks
// — the paper's "distribute their incident edges among other processing
// nodes" — without any explicit placement machinery.
package partition

import (
	"fmt"

	"parsssp/internal/graph"
)

// Kind selects a distribution strategy.
type Kind int

const (
	// Block assigns contiguous ranges of ⌈n/p⌉ vertices per rank.
	Block Kind = iota
	// Cyclic assigns vertex v to rank v mod p.
	Cyclic
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Dist maps vertices to owning ranks and local indices, in O(1) both
// ways. The zero value is not valid; use New.
type Dist struct {
	kind Kind
	n    int // number of vertices
	p    int // number of ranks
	per  int // block size (Block kind)
}

// New creates a distribution of n vertices over p ranks.
func New(kind Kind, n, p int) (Dist, error) {
	if n < 0 || p < 1 {
		return Dist{}, fmt.Errorf("partition: invalid n=%d p=%d", n, p)
	}
	per := 0
	if kind == Block {
		per = (n + p - 1) / p
		if per == 0 {
			per = 1
		}
	}
	return Dist{kind: kind, n: n, p: p, per: per}, nil
}

// MustNew is New that panics on error, for static configurations.
func MustNew(kind Kind, n, p int) Dist {
	d, err := New(kind, n, p)
	if err != nil {
		panic(err)
	}
	return d
}

// Kind returns the distribution strategy.
func (d Dist) Kind() Kind { return d.kind }

// NumVertices returns n.
func (d Dist) NumVertices() int { return d.n }

// NumRanks returns p.
func (d Dist) NumRanks() int { return d.p }

// Owner returns the rank owning v.
func (d Dist) Owner(v graph.Vertex) int {
	if d.kind == Cyclic {
		return int(v) % d.p
	}
	r := int(v) / d.per
	if r >= d.p {
		r = d.p - 1
	}
	return r
}

// LocalIndex returns v's index within its owner's local arrays.
func (d Dist) LocalIndex(v graph.Vertex) int {
	if d.kind == Cyclic {
		return int(v) / d.p
	}
	return int(v) - d.Owner(v)*d.per
}

// Global returns the vertex with local index li on the given rank.
func (d Dist) Global(rank, li int) graph.Vertex {
	if d.kind == Cyclic {
		return graph.Vertex(li*d.p + rank)
	}
	return graph.Vertex(rank*d.per + li)
}

// Count returns the number of vertices owned by rank.
func (d Dist) Count(rank int) int {
	if d.kind == Cyclic {
		// Vertices v < n with v ≡ rank (mod p).
		if rank >= d.n {
			return 0
		}
		return (d.n-rank-1)/d.p + 1
	}
	lo := rank * d.per
	if lo >= d.n {
		return 0
	}
	hi := lo + d.per
	if hi > d.n {
		hi = d.n
	}
	return hi - lo
}
