package partition

import (
	"testing"
	"testing/quick"

	"parsssp/internal/graph"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Block, -1, 2); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := New(Block, 5, 0); err == nil {
		t.Error("zero ranks accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on bad input")
		}
	}()
	MustNew(Cyclic, 1, 0)
}

func TestKindString(t *testing.T) {
	if Block.String() != "block" || Cyclic.String() != "cyclic" {
		t.Error("kind names wrong")
	}
	if Kind(7).String() == "" {
		t.Error("unknown kind stringer empty")
	}
}

// checkRoundTrip verifies the Owner/LocalIndex/Global/Count consistency
// invariants for a distribution.
func checkRoundTrip(t *testing.T, d Dist) {
	t.Helper()
	n, p := d.NumVertices(), d.NumRanks()
	totals := make([]int, p)
	for v := 0; v < n; v++ {
		owner := d.Owner(graph.Vertex(v))
		if owner < 0 || owner >= p {
			t.Fatalf("owner(%d) = %d out of range", v, owner)
		}
		li := d.LocalIndex(graph.Vertex(v))
		if li < 0 || li >= d.Count(owner) {
			t.Fatalf("local(%d) = %d outside count %d", v, li, d.Count(owner))
		}
		if back := d.Global(owner, li); back != graph.Vertex(v) {
			t.Fatalf("Global(%d, %d) = %d, want %d", owner, li, back, v)
		}
		totals[owner]++
	}
	sum := 0
	for r := 0; r < p; r++ {
		if totals[r] != d.Count(r) {
			t.Fatalf("rank %d: Count=%d, actual=%d", r, d.Count(r), totals[r])
		}
		sum += d.Count(r)
	}
	if sum != n {
		t.Fatalf("counts sum to %d, want %d", sum, n)
	}
}

func TestBlockRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, p int }{
		{0, 1}, {1, 1}, {10, 1}, {10, 3}, {10, 10}, {10, 16}, {1000, 7},
	} {
		checkRoundTrip(t, MustNew(Block, tc.n, tc.p))
	}
}

func TestCyclicRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, p int }{
		{0, 1}, {1, 1}, {10, 1}, {10, 3}, {10, 10}, {10, 16}, {1000, 7},
	} {
		checkRoundTrip(t, MustNew(Cyclic, tc.n, tc.p))
	}
}

func TestBlockContiguity(t *testing.T) {
	d := MustNew(Block, 100, 4)
	prev := 0
	for v := 1; v < 100; v++ {
		o := d.Owner(graph.Vertex(v))
		if o < prev {
			t.Fatalf("block owners not monotone at %d", v)
		}
		prev = o
	}
}

func TestCyclicSpread(t *testing.T) {
	d := MustNew(Cyclic, 100, 4)
	for v := 0; v < 100; v++ {
		if d.Owner(graph.Vertex(v)) != v%4 {
			t.Fatalf("cyclic owner(%d) = %d", v, d.Owner(graph.Vertex(v)))
		}
	}
}

func TestQuickDistributionInvariants(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8, kindRaw bool) bool {
		n := int(nRaw) % 2000
		p := 1 + int(pRaw)%32
		kind := Block
		if kindRaw {
			kind = Cyclic
		}
		d, err := New(kind, n, p)
		if err != nil {
			return false
		}
		sum := 0
		for r := 0; r < p; r++ {
			c := d.Count(r)
			if c < 0 {
				return false
			}
			sum += c
		}
		if sum != n {
			return false
		}
		for v := 0; v < n; v += 1 + n/64 {
			o := d.Owner(graph.Vertex(v))
			if d.Global(o, d.LocalIndex(graph.Vertex(v))) != graph.Vertex(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
