package partition

import (
	"testing"

	"parsssp/internal/gen"
)

func TestAutoSplitOptionsStar(t *testing.T) {
	// A star: the hub holds every edge, so splitting must trigger and
	// the threshold must sit below the hub degree.
	g, err := gen.Star(1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	const ranks = 8
	if !NeedsSplitting(g, ranks) {
		t.Fatal("star hub not flagged for splitting")
	}
	opt := AutoSplitOptions(g, ranks)
	if opt.DegreeThreshold < 1 || opt.DegreeThreshold >= g.MaxDegree() {
		t.Errorf("threshold %d outside (0, maxdeg %d)", opt.DegreeThreshold, g.MaxDegree())
	}
	if opt.MaxProxies != ranks {
		t.Errorf("MaxProxies = %d, want %d", opt.MaxProxies, ranks)
	}
	sr, err := SplitHeavyVertices(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sr.NumSplit == 0 {
		t.Error("auto options split nothing on a star")
	}
	splitPreservesDistances(t, g, opt, 0)
}

func TestAutoSplitOptionsUniform(t *testing.T) {
	// A grid has no skew: nothing should be flagged.
	g, err := gen.Grid(40, 40, 1, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if NeedsSplitting(g, 8) {
		t.Error("uniform grid flagged for splitting")
	}
	opt := AutoSplitOptions(g, 8)
	sr, err := SplitHeavyVertices(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sr.NumSplit != 0 {
		t.Errorf("auto options split %d vertices of a uniform grid", sr.NumSplit)
	}
}

func TestAutoSplitDegenerate(t *testing.T) {
	empty, err := gen.Path(nil)
	if err != nil {
		t.Fatal(err)
	}
	if NeedsSplitting(empty, 4) {
		t.Error("single-vertex graph flagged")
	}
	opt := AutoSplitOptions(empty, 4)
	if opt.DegreeThreshold < 1 {
		t.Error("degenerate options invalid")
	}
	if NeedsSplitting(empty, 1) {
		t.Error("single rank flagged")
	}
}
