package partition

import "parsssp/internal/graph"

// AutoSplitOptions implements the paper's (unpublished) "robust
// heuristics to determine the thresholds π and π′": it derives a
// vertex-splitting configuration from the graph's degree distribution
// and the machine size.
//
// The rationale mirrors §III-E: splitting pays off only for vertices
// whose neighborhood alone dominates a rank's fair share of edges. The
// threshold is therefore a multiple of the per-rank average load,
// clamped from below by the 99.9th degree percentile so that at most a
// tail sliver of vertices is ever split, and proxies are capped at the
// rank count (one proxy per rank saturates the available parallelism).
func AutoSplitOptions(g *graph.Graph, numRanks int) SplitOptions {
	n := g.NumVertices()
	if n == 0 || numRanks < 1 {
		return SplitOptions{DegreeThreshold: 1, MaxProxies: 1}
	}
	avgLoad := float64(2*g.NumEdges()) / float64(numRanks)
	threshold := int(avgLoad / 4)
	if p := g.DegreePercentile(0.999); p > threshold {
		threshold = p
	}
	if threshold < 1 {
		threshold = 1
	}
	return SplitOptions{
		DegreeThreshold: threshold,
		TargetDegree:    threshold,
		MaxProxies:      numRanks,
	}
}

// NeedsSplitting reports whether the graph's degree skew warrants
// inter-node vertex splitting on a machine of numRanks ranks: the paper
// found intra-node balancing sufficient until single vertices exceed a
// rank's fair share of edges.
func NeedsSplitting(g *graph.Graph, numRanks int) bool {
	if g.NumVertices() == 0 || numRanks < 2 {
		return false
	}
	fairShare := float64(2*g.NumEdges()) / float64(numRanks)
	return float64(g.MaxDegree()) > fairShare/2
}
