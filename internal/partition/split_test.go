package partition

import (
	"testing"

	"parsssp/internal/gen"
	"parsssp/internal/graph"
)

func TestSplitValidation(t *testing.T) {
	g, err := gen.Star(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SplitHeavyVertices(g, SplitOptions{DegreeThreshold: 0}); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := SplitHeavyVertices(g, SplitOptions{DegreeThreshold: 2, TargetDegree: -1}); err == nil {
		t.Error("negative target accepted")
	}
}

func TestSplitNoHeavyVertices(t *testing.T) {
	g, err := gen.Path([]graph.Weight{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := SplitHeavyVertices(g, SplitOptions{DegreeThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Graph != g || sr.NumSplit != 0 {
		t.Error("no-op split did not return the original graph")
	}
}

func TestSplitStar(t *testing.T) {
	// A star's center (degree 9) split with threshold 3 and target 3
	// should get 3 proxies of ~3 leaves each.
	g, err := gen.Star(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := SplitHeavyVertices(g, SplitOptions{DegreeThreshold: 3, TargetDegree: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sr.NumSplit != 1 {
		t.Fatalf("NumSplit = %d, want 1", sr.NumSplit)
	}
	if sr.Graph.NumVertices() != 13 {
		t.Fatalf("split graph has %d vertices, want 13", sr.Graph.NumVertices())
	}
	if err := sr.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// Proxies own all original edges; the center keeps only zero-weight
	// proxy links.
	_, ws := sr.Graph.Neighbors(0)
	for _, w := range ws {
		if w != 0 {
			t.Errorf("center kept a non-proxy edge of weight %d", w)
		}
	}
	for i, owner := range sr.ProxyOwner {
		if owner != 0 {
			t.Errorf("proxy %d owner = %d, want 0", i, owner)
		}
	}
	// Max proxy degree should be balanced: 3 original edges + 1 link.
	for p := 10; p < 13; p++ {
		d := sr.Graph.Degree(graph.Vertex(p))
		if d < 3 || d > 4 {
			t.Errorf("proxy %d degree %d outside [3,4]", p, d)
		}
	}
}

// splitPreservesDistances checks the core invariant with a brute-force
// Dijkstra on both graphs.
func splitPreservesDistances(t *testing.T, g *graph.Graph, opt SplitOptions, src graph.Vertex) {
	t.Helper()
	sr, err := SplitHeavyVertices(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	want := dijkstraRef(g, src)
	got := dijkstraRef(sr.Graph, src)
	got = sr.RestrictDistances(got)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d after split, want %d", v, got[v], want[v])
		}
	}
}

func TestSplitPreservesDistancesRandom(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g, err := gen.Random(200, 2000, 255, seed)
		if err != nil {
			t.Fatal(err)
		}
		splitPreservesDistances(t, g, SplitOptions{DegreeThreshold: 8, MaxProxies: 4}, 0)
		splitPreservesDistances(t, g, SplitOptions{DegreeThreshold: 20}, 1)
	}
}

func TestSplitSourceIsSplit(t *testing.T) {
	// Distances must survive even when the source itself is split.
	g, err := gen.Star(20, 7)
	if err != nil {
		t.Fatal(err)
	}
	splitPreservesDistances(t, g, SplitOptions{DegreeThreshold: 4}, 0)
}

func TestSplitMaxProxies(t *testing.T) {
	g, err := gen.Star(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := SplitHeavyVertices(g, SplitOptions{DegreeThreshold: 4, TargetDegree: 4, MaxProxies: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := sr.Graph.NumVertices() - g.NumVertices(); got != 3 {
		t.Errorf("proxies = %d, want cap 3", got)
	}
}

// dijkstraRef is a minimal Dijkstra used to avoid importing the sssp
// package (which imports partition) in these tests.
func dijkstraRef(g *graph.Graph, src graph.Vertex) []graph.Dist {
	n := g.NumVertices()
	dist := make([]graph.Dist, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	dist[src] = 0
	done := make([]bool, n)
	for {
		u, best := -1, graph.Inf
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			return dist
		}
		done[u] = true
		nbr, ws := g.Neighbors(graph.Vertex(u))
		for i, v := range nbr {
			if nd := best + graph.Dist(ws[i]); nd < dist[v] {
				dist[v] = nd
			}
		}
	}
}
