package partition

import (
	"fmt"

	"parsssp/internal/graph"
)

// SplitOptions configures inter-node vertex splitting (paper §III-E).
type SplitOptions struct {
	// DegreeThreshold is the paper's π′: vertices with degree above it are
	// split.
	DegreeThreshold int
	// TargetDegree is the approximate degree of each proxy; the number of
	// proxies for a split vertex u is ⌈deg(u)/TargetDegree⌉, capped at
	// MaxProxies. Zero means DegreeThreshold.
	TargetDegree int
	// MaxProxies caps the number of proxies per vertex; zero means no cap.
	MaxProxies int
}

// SplitResult is the outcome of SplitHeavyVertices.
type SplitResult struct {
	// Graph is the transformed graph: original vertices keep their ids;
	// proxies occupy ids [OriginalN, Graph.NumVertices()).
	Graph *graph.Graph
	// OriginalN is the vertex count before splitting.
	OriginalN int
	// ProxyOwner[i] is the original vertex that proxy OriginalN+i belongs
	// to.
	ProxyOwner []graph.Vertex
	// NumSplit is the number of vertices that were split.
	NumSplit int
}

// SplitHeavyVertices implements the paper's inter-node load-balancing
// transformation: every vertex u with degree above π′ is given ℓ proxies
// u₁..uℓ connected to u by zero-weight edges, and u's original edges are
// partitioned round-robin among the proxies. Shortest distances in the
// transformed graph equal those of the original for all original vertices
// (the zero-weight edges make each proxy's distance equal to u's).
//
// Proxies receive consecutive identifiers starting at the original vertex
// count, so under a Cyclic distribution they land on consecutive distinct
// ranks — spreading the heavy vertex's edges over the machine.
//
// An edge between two split vertices is re-homed on a proxy at both
// endpoints, with independent round-robin counters.
func SplitHeavyVertices(g *graph.Graph, opt SplitOptions) (*SplitResult, error) {
	if opt.DegreeThreshold < 1 {
		return nil, fmt.Errorf("partition: split threshold must be >= 1, got %d", opt.DegreeThreshold)
	}
	target := opt.TargetDegree
	if target == 0 {
		target = opt.DegreeThreshold
	}
	if target < 1 {
		return nil, fmt.Errorf("partition: split target degree must be >= 1, got %d", opt.TargetDegree)
	}
	n := g.NumVertices()

	// Pass 1: decide the proxy layout.
	numProxies := make([]int, n)
	totalProxies := 0
	numSplit := 0
	for v := 0; v < n; v++ {
		d := g.Degree(graph.Vertex(v))
		if d <= opt.DegreeThreshold {
			continue
		}
		l := (d + target - 1) / target
		if opt.MaxProxies > 0 && l > opt.MaxProxies {
			l = opt.MaxProxies
		}
		if l < 2 {
			l = 2
		}
		numProxies[v] = l
		totalProxies += l
		numSplit++
	}
	if numSplit == 0 {
		return &SplitResult{Graph: g, OriginalN: n}, nil
	}

	proxyBase := make([]int, n) // first proxy id of v (valid when numProxies[v] > 0)
	proxyOwner := make([]graph.Vertex, totalProxies)
	next := n
	for v := 0; v < n; v++ {
		if numProxies[v] == 0 {
			continue
		}
		proxyBase[v] = next
		for i := 0; i < numProxies[v]; i++ {
			proxyOwner[next-n+i] = graph.Vertex(v)
		}
		next += numProxies[v]
	}

	// Pass 2: rewrite the edge list. Round-robin counters advance per
	// re-homed endpoint so each proxy receives ~deg/ℓ edges.
	rr := make([]int, n)
	home := func(v graph.Vertex) graph.Vertex {
		l := numProxies[v]
		if l == 0 {
			return v
		}
		p := graph.Vertex(proxyBase[v] + rr[v]%l)
		rr[v]++
		return p
	}
	orig := g.Edges()
	edges := make([]graph.Edge, 0, len(orig)+totalProxies)
	for _, e := range orig {
		edges = append(edges, graph.Edge{U: home(e.U), V: home(e.V), W: e.W})
	}
	for v := 0; v < n; v++ {
		for i := 0; i < numProxies[v]; i++ {
			edges = append(edges, graph.Edge{
				U: graph.Vertex(v), V: graph.Vertex(proxyBase[v] + i), W: 0,
			})
		}
	}
	// Parallel edges must be preserved here: two original edges (u,x,w1),
	// (u,x,w2) may land on different proxies, and collapsing (proxy,x)
	// pairs is harmless but collapsing is keyed on endpoints anyway; keep
	// whatever the builder's dedup does — it only ever removes
	// non-shortest parallel edges, which cannot change distances.
	ng, err := graph.FromEdges(n+totalProxies, edges, graph.BuildOptions{})
	if err != nil {
		return nil, err
	}
	return &SplitResult{
		Graph:      ng,
		OriginalN:  n,
		ProxyOwner: proxyOwner,
		NumSplit:   numSplit,
	}, nil
}

// RestrictDistances maps distances computed on the split graph back to the
// original vertex set (it simply truncates the proxy tail).
func (r *SplitResult) RestrictDistances(dist []graph.Dist) []graph.Dist {
	if len(dist) < r.OriginalN {
		return dist
	}
	return dist[:r.OriginalN]
}
