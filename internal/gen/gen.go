// Package gen provides auxiliary graph constructions used by examples,
// tests and the real-world-graph stand-ins of the experimental harness.
//
// Unlike package rmat, which reproduces the paper's benchmark inputs,
// these generators build structured graphs (grids, paths, cliques) with
// known shortest-path answers, random graphs for property testing, and
// heavy-tailed social-network stand-ins for the paper's §IV.H table.
package gen

import (
	"fmt"

	"parsssp/internal/graph"
	"parsssp/internal/rng"
)

// Path returns a path graph v0 - v1 - ... - v_{n-1} with the given edge
// weights (len(weights) must be n-1). Shortest distances from v0 are the
// prefix sums, which tests rely on.
func Path(weights []graph.Weight) (*graph.Graph, error) {
	n := len(weights) + 1
	edges := make([]graph.Edge, len(weights))
	for i, w := range weights {
		edges[i] = graph.Edge{U: graph.Vertex(i), V: graph.Vertex(i + 1), W: w}
	}
	return graph.FromEdges(n, edges, graph.BuildOptions{})
}

// Star returns a star with center 0 and n-1 leaves, each edge of weight w.
func Star(n int, w graph.Weight) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: star needs n >= 1, got %d", n)
	}
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.Vertex(i), W: w})
	}
	return graph.FromEdges(n, edges, graph.BuildOptions{})
}

// Grid returns a rows×cols grid graph with weights drawn uniformly from
// [minW, maxW]. Vertex (r, c) has id r*cols+c. Grid graphs have large
// diameter and uniform degree — the opposite regime from R-MAT — and are
// used by the road-network example.
func Grid(rows, cols int, minW, maxW graph.Weight, seed uint64) (*graph.Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("gen: grid needs positive dims, got %d×%d", rows, cols)
	}
	if maxW < minW {
		return nil, fmt.Errorf("gen: grid weight range [%d,%d] inverted", minW, maxW)
	}
	gen := rng.NewXoshiro256(seed)
	span := int(maxW-minW) + 1
	var edges []graph.Edge
	id := func(r, c int) graph.Vertex { return graph.Vertex(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1),
					W: minW + graph.Weight(gen.IntN(span))})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c),
					W: minW + graph.Weight(gen.IntN(span))})
			}
		}
	}
	return graph.FromEdges(rows*cols, edges, graph.BuildOptions{})
}

// Random returns an Erdős–Rényi-style multigraph sample: m undirected
// edges with independently uniform endpoints and weights in [0, maxW].
// Self-loops and parallel edges are collapsed by the builder. Used heavily
// in randomized correctness tests.
func Random(n int, m int, maxW graph.Weight, seed uint64) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: random graph needs n >= 1, got %d", n)
	}
	gen := rng.NewXoshiro256(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			U: graph.Vertex(gen.IntN(n)),
			V: graph.Vertex(gen.IntN(n)),
			W: graph.Weight(gen.IntN(int(maxW) + 1)),
		}
	}
	return graph.FromEdges(n, edges, graph.BuildOptions{})
}

// CliqueChain builds the paper's Figure 6 illustration graph: a root
// connected to every vertex of a k-clique by weight-rootW edges, and p
// pendant ("isolated" in the paper's wording) vertices each connected to
// every clique vertex by weight-pendantW edges. Clique-internal edges have
// weight cliqueW.
//
// Layout: vertex 0 is the root, vertices 1..k are the clique, vertices
// k+1..k+p are the pendants.
func CliqueChain(k, p int, rootW, cliqueW, pendantW graph.Weight) (*graph.Graph, error) {
	if k < 1 || p < 0 {
		return nil, fmt.Errorf("gen: clique chain needs k>=1, p>=0; got k=%d p=%d", k, p)
	}
	n := 1 + k + p
	var edges []graph.Edge
	for i := 1; i <= k; i++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.Vertex(i), W: rootW})
		for j := i + 1; j <= k; j++ {
			edges = append(edges, graph.Edge{U: graph.Vertex(i), V: graph.Vertex(j), W: cliqueW})
		}
		for q := 0; q < p; q++ {
			edges = append(edges, graph.Edge{U: graph.Vertex(i), V: graph.Vertex(k + 1 + q), W: pendantW})
		}
	}
	return graph.FromEdges(n, edges, graph.BuildOptions{})
}

// SocialParams configures a heavy-tailed social-graph stand-in; see
// Social.
type SocialParams struct {
	N          int     // number of vertices
	AvgDegree  int     // average number of undirected edges per vertex
	Skew       float64 // R-MAT 'A' parameter driving the degree tail (0.45–0.65)
	MaxWeight  graph.Weight
	Seed       uint64
	NumHubSeed int // extra edges attached to the hubbiest vertices
}

// Social builds a scrambled R-MAT-like graph with the requested size and
// average degree, used as the stand-in for Friendster/Orkut/LiveJournal
// (the SNAP downloads are unavailable offline; see DESIGN.md). The Skew
// parameter controls how heavy the degree tail is.
func Social(p SocialParams) (*graph.Graph, error) {
	if p.N < 2 {
		return nil, fmt.Errorf("gen: social graph needs N >= 2, got %d", p.N)
	}
	if p.AvgDegree < 1 {
		return nil, fmt.Errorf("gen: social graph needs AvgDegree >= 1, got %d", p.AvgDegree)
	}
	if p.MaxWeight == 0 {
		p.MaxWeight = 255
	}
	skew := p.Skew
	if skew == 0 {
		skew = 0.57
	}
	// Round N up to a power of two for the recursive bisection, then fold
	// overflowing ids back into range with a mix (keeps the tail shape).
	scale := 1
	for 1<<scale < p.N {
		scale++
	}
	gen := rng.NewXoshiro256(p.Seed)
	b := (1 - skew) / 3 // distribute the remainder over B, C, D equally
	m := p.N * p.AvgDegree
	edges := make([]graph.Edge, 0, m+p.NumHubSeed)
	for i := 0; i < m; i++ {
		var u, v uint32
		for level := 0; level < scale; level++ {
			r := gen.Float64()
			var bu, bv uint32
			switch {
			case r < skew:
			case r < skew+b:
				bv = 1
			case r < skew+2*b:
				bu = 1
			default:
				bu, bv = 1, 1
			}
			u = u<<1 | bu
			v = v<<1 | bv
		}
		uu := int(u) % p.N
		vv := int(v) % p.N
		edges = append(edges, graph.Edge{
			U: graph.Vertex(uu), V: graph.Vertex(vv),
			W: graph.Weight(gen.IntN(int(p.MaxWeight) + 1)),
		})
	}
	// Hub seeding: attach extra random edges to vertex 0's neighborhood to
	// guarantee a Friendster-like super-hub even at small N.
	for i := 0; i < p.NumHubSeed; i++ {
		edges = append(edges, graph.Edge{
			U: 0, V: graph.Vertex(gen.IntN(p.N)),
			W: graph.Weight(gen.IntN(int(p.MaxWeight) + 1)),
		})
	}
	return graph.FromEdges(p.N, edges, graph.BuildOptions{})
}
