package gen

import (
	"testing"

	"parsssp/internal/graph"
)

func TestPathDistances(t *testing.T) {
	g, err := Path([]graph.Weight{3, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("path has %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 || g.Degree(3) != 1 {
		t.Errorf("unexpected degrees %d %d %d", g.Degree(0), g.Degree(1), g.Degree(3))
	}
}

func TestStarShape(t *testing.T) {
	g, err := Star(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 5 {
		t.Errorf("center degree %d, want 5", g.Degree(0))
	}
	for v := graph.Vertex(1); v < 6; v++ {
		if g.Degree(v) != 1 {
			t.Errorf("leaf %d degree %d", v, g.Degree(v))
		}
	}
	if _, err := Star(0, 1); err == nil {
		t.Error("Star(0) accepted")
	}
}

func TestGridShape(t *testing.T) {
	g, err := Grid(3, 4, 1, 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 12 {
		t.Fatalf("vertices = %d, want 12", g.NumVertices())
	}
	// 3 rows × 3 horizontal + 2 vertical × 4 cols = 9 + 8 = 17 edges.
	if g.NumEdges() != 17 {
		t.Errorf("edges = %d, want 17", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corner degrees 2, edge degrees 3, interior 4.
	if g.Degree(0) != 2 {
		t.Errorf("corner degree %d, want 2", g.Degree(0))
	}
	if g.Degree(5) != 4 {
		t.Errorf("interior degree %d, want 4", g.Degree(5))
	}
	if _, err := Grid(0, 3, 1, 2, 0); err == nil {
		t.Error("Grid(0,3) accepted")
	}
	if _, err := Grid(3, 3, 5, 2, 0); err == nil {
		t.Error("inverted weight range accepted")
	}
}

func TestGridWeightRange(t *testing.T) {
	g, err := Grid(10, 10, 5, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if e.W < 5 || e.W > 8 {
			t.Fatalf("weight %d outside [5,8]", e.W)
		}
	}
}

func TestRandomGraph(t *testing.T) {
	g, err := Random(50, 300, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 || g.NumEdges() > 300 {
		t.Errorf("edge count %d outside (0, 300]", g.NumEdges())
	}
	if _, err := Random(0, 5, 1, 0); err == nil {
		t.Error("Random(0 vertices) accepted")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, _ := Random(30, 100, 255, 42)
	b, _ := Random(30, 100, 255, 42)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("edge counts differ")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestCliqueChainStructure(t *testing.T) {
	k, p := 4, 3
	g, err := CliqueChain(k, p, 10, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1+k+p {
		t.Fatalf("vertices = %d, want %d", g.NumVertices(), 1+k+p)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != k {
		t.Errorf("root degree %d, want %d", g.Degree(0), k)
	}
	// Clique member: root + (k-1) clique peers + p pendants.
	if g.Degree(1) != 1+(k-1)+p {
		t.Errorf("clique degree %d, want %d", g.Degree(1), 1+(k-1)+p)
	}
	for q := 0; q < p; q++ {
		if g.Degree(graph.Vertex(1+k+q)) != k {
			t.Errorf("pendant %d degree %d, want %d", q, g.Degree(graph.Vertex(1+k+q)), k)
		}
	}
	if _, err := CliqueChain(0, 1, 1, 1, 1); err == nil {
		t.Error("CliqueChain(k=0) accepted")
	}
}

func TestSocialShape(t *testing.T) {
	g, err := Social(SocialParams{N: 2000, AvgDegree: 8, Skew: 0.57, Seed: 3, NumHubSeed: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Max < 4*int(st.Mean) {
		t.Errorf("social graph lacks skew: max %d, mean %.1f", st.Max, st.Mean)
	}
	if _, err := Social(SocialParams{N: 1, AvgDegree: 2}); err == nil {
		t.Error("Social(N=1) accepted")
	}
	if _, err := Social(SocialParams{N: 10, AvgDegree: 0}); err == nil {
		t.Error("Social(AvgDegree=0) accepted")
	}
}
