// Package validate provides correctness and heuristic-quality checks for
// the distributed SSSP engine: verification of computed distances against
// the sequential Dijkstra reference, and the paper's §IV.G exhaustive
// evaluation of the push/pull decision heuristic (comparing the
// heuristic's decision sequence against the best of all 2^k sequences).
package validate

import (
	"fmt"

	"parsssp/internal/graph"
	"parsssp/internal/sssp"
)

// Distances compares got against the Dijkstra reference for (g, src) and
// returns a descriptive error on the first few mismatches.
func Distances(g *graph.Graph, src graph.Vertex, got []graph.Dist) error {
	want, err := sssp.Dijkstra(g, src)
	if err != nil {
		return err
	}
	if len(got) != len(want.Dist) {
		return fmt.Errorf("validate: %d distances for %d vertices", len(got), len(want.Dist))
	}
	var mismatches int
	var first string
	for v := range want.Dist {
		if got[v] != want.Dist[v] {
			if mismatches == 0 {
				first = fmt.Sprintf("dist[%d] = %d, want %d", v, got[v], want.Dist[v])
			}
			mismatches++
		}
	}
	if mismatches > 0 {
		return fmt.Errorf("validate: %d mismatches; first: %s", mismatches, first)
	}
	return nil
}

// SequenceOutcome records one decision sequence's evaluation.
type SequenceOutcome struct {
	// Sequence is the push/pull decision for each epoch (padded with the
	// heuristic's choices if the run took fewer epochs than planned).
	Sequence []sssp.Mode
	// Relaxations is the total relaxation count under this sequence — the
	// machine-independent cost the evaluation ranks sequences by.
	Relaxations int64
	// MaxRankRelax is the worst per-rank relaxation load.
	MaxRankRelax int64
}

// cost is the objective the exhaustive search minimizes: total work with
// the worst rank weighted in, mirroring the runtime decision heuristic's
// cost model.
func (s SequenceOutcome) cost(numRanks int) float64 {
	const lambda = 0.25
	return (1-lambda)*float64(s.Relaxations) + lambda*float64(numRanks)*float64(s.MaxRankRelax)
}

// PushPullReport is the outcome of ExhaustivePushPull.
type PushPullReport struct {
	// Epochs is the number of bucket epochs (k in the paper's 2^k).
	Epochs int
	// Heuristic is the run with the heuristic making every decision.
	Heuristic SequenceOutcome
	// Best is the lowest-cost exhaustive sequence.
	Best SequenceOutcome
	// HeuristicIsOptimal reports whether the heuristic's cost matches the
	// best sequence's cost.
	HeuristicIsOptimal bool
	// Evaluated is the number of sequences tried (2^Epochs).
	Evaluated int
}

// ExhaustivePushPull implements the paper's §IV.G validation routine: it
// first runs the pruning algorithm with the decision heuristic enabled,
// then re-runs it under every possible push/pull decision sequence and
// compares the heuristic's cost against the best sequence's.
//
// opts must have Prune enabled. The epoch count is taken from the
// heuristic run; maxEpochs caps the exhaustive blow-up (runs with more
// epochs are rejected, since 2^k re-executions would be intractable).
func ExhaustivePushPull(g *graph.Graph, numRanks int, src graph.Vertex,
	opts sssp.Options, maxEpochs int) (*PushPullReport, error) {
	if !opts.Prune {
		return nil, fmt.Errorf("validate: exhaustive push/pull needs Prune enabled")
	}
	opts.ForceMode = nil
	opts.DecisionSequence = nil
	base, err := sssp.Run(g, numRanks, src, opts)
	if err != nil {
		return nil, err
	}
	if err := Distances(g, src, base.Dist); err != nil {
		return nil, err
	}
	k := len(base.Stats.Decisions)
	if k > maxEpochs {
		return nil, fmt.Errorf("validate: run took %d epochs; exhaustive cap is %d", k, maxEpochs)
	}
	report := &PushPullReport{
		Epochs: k,
		Heuristic: SequenceOutcome{
			Sequence:     append([]sssp.Mode(nil), base.Stats.Decisions...),
			Relaxations:  base.Stats.Relax.Total(),
			MaxRankRelax: base.Stats.MaxRankRelax,
		},
	}
	best := report.Heuristic
	report.Evaluated = 1 << k
	for mask := 0; mask < 1<<k; mask++ {
		seq := make([]sssp.Mode, k)
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				seq[i] = sssp.ModePull
			}
		}
		o := opts
		o.DecisionSequence = seq
		res, err := sssp.Run(g, numRanks, src, o)
		if err != nil {
			return nil, err
		}
		if err := Distances(g, src, res.Dist); err != nil {
			return nil, fmt.Errorf("validate: sequence %v broke correctness: %w", seq, err)
		}
		out := SequenceOutcome{
			Sequence:     seq,
			Relaxations:  res.Stats.Relax.Total(),
			MaxRankRelax: res.Stats.MaxRankRelax,
		}
		if out.cost(numRanks) < best.cost(numRanks) {
			best = out
		}
	}
	report.Best = best
	report.HeuristicIsOptimal = report.Heuristic.cost(numRanks) <= best.cost(numRanks)*1.0001
	return report, nil
}
