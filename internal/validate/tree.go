package validate

import (
	"fmt"
	"sort"

	"parsssp/internal/graph"
	"parsssp/internal/sssp"
)

// CheckTree validates an SSSP result (distances plus parent pointers)
// the way the Graph500 SSSP benchmark validates submissions — without
// re-running a reference solver. The checks are:
//
//  1. dist[src] == 0 and parent[src] == src.
//  2. A vertex is reached iff it has a parent; unreachable vertices have
//     dist == Inf and parent == NoParent.
//  3. Tree edges are real: for every reached v ≠ src, the graph contains
//     an edge (parent[v], v) with weight exactly
//     dist[v] − dist[parent[v]].
//  4. The parent pointers form a tree rooted at src (no cycles).
//  5. Every edge is fully relaxed: |dist[u] − dist[v]| ≤ w(u,v) for every
//     edge with both endpoints reached, and no edge connects a reached
//     vertex to an unreached one.
//
// Together these prove the distances are exactly the shortest distances:
// 3+4 give attainable upper bounds, 5 gives the lower bound.
func CheckTree(g *graph.Graph, src graph.Vertex, dist []graph.Dist, parent []graph.Vertex) error {
	n := g.NumVertices()
	if len(dist) != n || len(parent) != n {
		return fmt.Errorf("validate: got %d distances / %d parents for %d vertices",
			len(dist), len(parent), n)
	}
	if int(src) >= n {
		return fmt.Errorf("validate: source %d out of range", src)
	}
	// Check 1.
	if dist[src] != 0 {
		return fmt.Errorf("validate: dist[src] = %d, want 0", dist[src])
	}
	if parent[src] != src {
		return fmt.Errorf("validate: parent[src] = %d, want %d", parent[src], src)
	}
	// Check 2.
	for v := 0; v < n; v++ {
		reached := dist[v] < graph.Inf
		hasParent := parent[v] != sssp.NoParent
		if reached != hasParent {
			return fmt.Errorf("validate: vertex %d reached=%v but parent=%d", v, reached, parent[v])
		}
		if !reached && dist[v] != graph.Inf {
			return fmt.Errorf("validate: unreachable vertex %d has dist %d", v, dist[v])
		}
	}
	// Check 3: tree edges exist with the exact weight.
	for v := 0; v < n; v++ {
		if graph.Vertex(v) == src || dist[v] >= graph.Inf {
			continue
		}
		p := parent[v]
		if int(p) >= n {
			return fmt.Errorf("validate: parent[%d] = %d out of range", v, p)
		}
		if dist[p] >= graph.Inf {
			return fmt.Errorf("validate: parent %d of %d is unreachable", p, v)
		}
		want := dist[v] - dist[p]
		if want < 0 {
			return fmt.Errorf("validate: dist[%d]=%d below its parent %d's %d", v, dist[v], p, dist[p])
		}
		if !hasEdgeWeight(g, p, graph.Vertex(v), graph.Weight(want)) {
			return fmt.Errorf("validate: no edge (%d,%d) of weight %d for tree edge of %d",
				p, v, want, v)
		}
	}
	// Check 4: acyclic parent structure. Distances strictly decrease
	// along parent chains except across zero-weight edges, so walk with a
	// step cap.
	for v := 0; v < n; v++ {
		if dist[v] >= graph.Inf {
			continue
		}
		cur := graph.Vertex(v)
		for steps := 0; cur != src; steps++ {
			if steps > n {
				return fmt.Errorf("validate: parent chain of %d does not reach the source", v)
			}
			cur = parent[cur]
		}
	}
	// Check 5: every edge is relaxed.
	for v := 0; v < n; v++ {
		nbr, ws := g.Neighbors(graph.Vertex(v))
		for i, u := range nbr {
			ru, rv := dist[u] < graph.Inf, dist[v] < graph.Inf
			if ru != rv {
				return fmt.Errorf("validate: edge (%d,%d) connects reached and unreached", v, u)
			}
			if !ru {
				continue
			}
			d := dist[v] - dist[u]
			if d < 0 {
				d = -d
			}
			if d > graph.Dist(ws[i]) {
				return fmt.Errorf("validate: edge (%d,%d,w=%d) not relaxed: |%d-%d| > w",
					v, u, ws[i], dist[v], dist[u])
			}
		}
	}
	return nil
}

// hasEdgeWeight reports whether g contains an edge (u,v) with weight w.
// The adjacency is weight-sorted, so the candidates with weight w form a
// contiguous run.
func hasEdgeWeight(g *graph.Graph, u, v graph.Vertex, w graph.Weight) bool {
	nbr, ws := g.Neighbors(u)
	i := sort.Search(len(ws), func(i int) bool { return ws[i] >= w })
	for ; i < len(ws) && ws[i] == w; i++ {
		if nbr[i] == v {
			return true
		}
	}
	return false
}
