package validate

import (
	"testing"

	"parsssp/internal/gen"
	"parsssp/internal/graph"
	"parsssp/internal/rmat"
	"parsssp/internal/sssp"
)

func TestDistancesAcceptsCorrect(t *testing.T) {
	g, err := gen.Random(100, 500, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sssp.Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Distances(g, 0, ref.Dist); err != nil {
		t.Errorf("correct distances rejected: %v", err)
	}
}

func TestDistancesRejectsWrong(t *testing.T) {
	g, err := gen.Path([]graph.Weight{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	wrong := []graph.Dist{0, 2, 4} // true distances are 0, 2, 5
	if err := Distances(g, 0, wrong); err == nil {
		t.Error("wrong distances accepted")
	}
	short := []graph.Dist{0}
	if err := Distances(g, 0, short); err == nil {
		t.Error("truncated distances accepted")
	}
}

func TestExhaustiveRequiresPrune(t *testing.T) {
	g, err := gen.Random(50, 200, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExhaustivePushPull(g, 2, 0, sssp.DelOptions(25), 8); err == nil {
		t.Error("exhaustive accepted non-prune options")
	}
}

func TestExhaustiveSmallGraph(t *testing.T) {
	g, err := rmat.Generate(rmat.Family1(9, 5))
	if err != nil {
		t.Fatal(err)
	}
	var root graph.Vertex
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(graph.Vertex(v)) > 8 {
			root = graph.Vertex(v)
			break
		}
	}
	rep, err := ExhaustivePushPull(g, 2, root, sssp.OptOptions(25), 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluated != 1<<rep.Epochs {
		t.Errorf("evaluated %d sequences for %d epochs", rep.Evaluated, rep.Epochs)
	}
	if len(rep.Heuristic.Sequence) != rep.Epochs {
		t.Errorf("heuristic sequence length %d, epochs %d",
			len(rep.Heuristic.Sequence), rep.Epochs)
	}
	if rep.Best.Relaxations > rep.Heuristic.Relaxations {
		t.Errorf("best sequence (%d relax) worse than heuristic (%d)",
			rep.Best.Relaxations, rep.Heuristic.Relaxations)
	}
}

func TestExhaustiveEpochCap(t *testing.T) {
	g, err := gen.Grid(12, 12, 10, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A grid with Δ=10 takes many buckets; a tiny cap must reject it
	// rather than explode into 2^k runs.
	opts := sssp.PruneOptions(10)
	if _, err := ExhaustivePushPull(g, 2, 0, opts, 3); err == nil {
		t.Error("epoch cap not enforced")
	}
}
