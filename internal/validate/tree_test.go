package validate

import (
	"testing"

	"parsssp/internal/gen"
	"parsssp/internal/graph"
	"parsssp/internal/rmat"
	"parsssp/internal/sssp"
)

func runAndCheckTree(t *testing.T, g *graph.Graph, src graph.Vertex, opts sssp.Options, ranks int) {
	t.Helper()
	res, err := sssp.Run(g, ranks, src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTree(g, src, res.Dist, res.Parent); err != nil {
		t.Fatal(err)
	}
}

func TestCheckTreeAcceptsEngineOutput(t *testing.T) {
	g, err := rmat.Generate(rmat.Family1(10, 21))
	if err != nil {
		t.Fatal(err)
	}
	var src graph.Vertex
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(graph.Vertex(v)) > 4 {
			src = graph.Vertex(v)
			break
		}
	}
	for _, opts := range []sssp.Options{
		sssp.DelOptions(25), sssp.PruneOptions(25),
		sssp.OptOptions(25), sssp.LBOptOptions(10),
		sssp.DijkstraOptions(), sssp.BellmanFordOptions(),
	} {
		opts.Threads = 2
		runAndCheckTree(t, g, src, opts, 3)
	}
}

func TestCheckTreeAcceptsSequential(t *testing.T) {
	g, err := gen.Random(200, 1200, 200, 33)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []func() (*sssp.SeqResult, error){
		func() (*sssp.SeqResult, error) { return sssp.Dijkstra(g, 0) },
		func() (*sssp.SeqResult, error) { return sssp.BellmanFord(g, 0) },
		func() (*sssp.SeqResult, error) { return sssp.SeqDeltaStepping(g, 0, 25) },
	} {
		res, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckTree(g, 0, res.Dist, res.Parent); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckTreeRejectsCorruption(t *testing.T) {
	g, err := gen.Random(100, 600, 100, 44)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sssp.Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func(d []graph.Dist, p []graph.Vertex)) {
		d := append([]graph.Dist(nil), ref.Dist...)
		p := append([]graph.Vertex(nil), ref.Parent...)
		mutate(d, p)
		if err := CheckTree(g, 0, d, p); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}

	corrupt("nonzero source dist", func(d []graph.Dist, p []graph.Vertex) { d[0] = 1 })
	corrupt("source parent", func(d []graph.Dist, p []graph.Vertex) { p[0] = 1 })
	corrupt("inflated distance", func(d []graph.Dist, p []graph.Vertex) {
		for v := 1; v < len(d); v++ {
			if d[v] < graph.Inf && d[v] > 0 {
				d[v]++
				return
			}
		}
	})
	corrupt("deflated distance", func(d []graph.Dist, p []graph.Vertex) {
		for v := 1; v < len(d); v++ {
			if d[v] < graph.Inf && d[v] > 1 {
				d[v]--
				return
			}
		}
	})
	corrupt("fake reachable", func(d []graph.Dist, p []graph.Vertex) {
		d = append(d[:0], d...)
		for v := range d {
			if d[v] == graph.Inf {
				d[v] = 5
				p[v] = 0
				return
			}
		}
		// Fully connected sample: corrupt a parent instead.
		p[1] = sssp.NoParent
	})
	corrupt("parent cycle", func(d []graph.Dist, p []graph.Vertex) {
		// Find two reached non-source vertices and point them at each
		// other (weights won't match either, but the cycle check matters
		// for zero-weight scenarios).
		var reached []graph.Vertex
		for v := 1; v < len(d); v++ {
			if d[v] < graph.Inf {
				reached = append(reached, graph.Vertex(v))
			}
		}
		if len(reached) >= 2 {
			p[reached[0]] = reached[1]
			p[reached[1]] = reached[0]
		}
	})
	corrupt("orphan parent", func(d []graph.Dist, p []graph.Vertex) {
		for v := 1; v < len(p); v++ {
			if d[v] < graph.Inf {
				p[v] = sssp.NoParent
				return
			}
		}
	})
}

func TestCheckTreeTruncatedInput(t *testing.T) {
	g, err := gen.Path([]graph.Weight{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTree(g, 0, []graph.Dist{0}, []graph.Vertex{0}); err == nil {
		t.Error("truncated arrays accepted")
	}
}

func TestCheckTreeZeroWeightEdges(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: 0}, {U: 1, V: 2, W: 0}, {U: 2, V: 3, W: 5},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runAndCheckTree(t, g, 0, sssp.OptOptions(3), 2)
}
