// Package analytics builds the complex-network measures the paper cites
// as SSSP's motivating applications (§I: centrality analysis [1], [2])
// on top of the distributed engine. Every measure here reduces to one or
// more SSSP queries, so the paper's performance work translates directly
// into analysis throughput.
//
// Measures that issue independent queries (TopKCloseness) run them
// concurrently over a sssp.QueryPool: the graph plane is built once and
// the candidate queries overlap. Inherently sequential sweeps (Diameter,
// whose next source depends on the previous answer) use a single-slot
// pool, which is exactly the old Machine shape.
package analytics

import (
	"fmt"
	"math"
	"sync"

	"parsssp/internal/graph"
	"parsssp/internal/sssp"
)

// querier answers SSSP queries; both sssp.Machine and sssp.QueryPool
// satisfy it.
type querier interface {
	Query(src graph.Vertex) (*sssp.Result, error)
}

// concurrentSlots bounds the slot count of the pools behind multi-query
// measures: enough to overlap queries, not enough to oversubscribe a
// rank's worker threads badly.
const concurrentSlots = 4

// Closeness returns the closeness centrality of src: (r−1) / Σ d(src,v)
// over the r reached vertices, normalized by the reached fraction as in
// Wasserman–Faust so that values are comparable across disconnected
// graphs. Returns 0 for isolated sources.
func Closeness(g *graph.Graph, numRanks int, src graph.Vertex, opts sssp.Options) (float64, error) {
	p, err := sssp.NewQueryPool(g, numRanks, 1, opts)
	if err != nil {
		return 0, err
	}
	defer p.Close()
	return closenessOn(p, g, src)
}

// closenessOn computes closeness with an existing machine or pool.
func closenessOn(q querier, g *graph.Graph, src graph.Vertex) (float64, error) {
	res, err := q.Query(src)
	if err != nil {
		return 0, err
	}
	var sum float64
	var reached float64
	for _, d := range res.Dist {
		if d < graph.Inf && d > 0 {
			sum += float64(d)
			reached++
		}
	}
	if sum == 0 {
		return 0, nil
	}
	n := float64(g.NumVertices())
	return (reached / sum) * (reached / (n - 1)), nil
}

// Eccentricity returns the greatest finite distance from src, along with
// the vertex attaining it.
func Eccentricity(g *graph.Graph, numRanks int, src graph.Vertex, opts sssp.Options) (graph.Dist, graph.Vertex, error) {
	p, err := sssp.NewQueryPool(g, numRanks, 1, opts)
	if err != nil {
		return 0, 0, err
	}
	defer p.Close()
	return eccentricityOn(p, src)
}

// eccentricityOn computes eccentricity with an existing machine or pool.
func eccentricityOn(q querier, src graph.Vertex) (graph.Dist, graph.Vertex, error) {
	res, err := q.Query(src)
	if err != nil {
		return 0, 0, err
	}
	var ecc graph.Dist
	far := src
	for v, d := range res.Dist {
		if d < graph.Inf && d > ecc {
			ecc = d
			far = graph.Vertex(v)
		}
	}
	return ecc, far, nil
}

// DiameterBounds estimates the weighted diameter of src's component with
// a two-sweep style procedure generalized over several rounds: each
// round runs SSSP from the currently farthest vertex. The diameter lies
// in [Lower, Upper] where Lower is the largest eccentricity observed and
// Upper is twice the smallest (triangle inequality).
type DiameterBounds struct {
	Lower, Upper graph.Dist
	// Sweeps is the number of SSSP queries performed.
	Sweeps int
	// Peripheral is the most distant vertex found.
	Peripheral graph.Vertex
}

// Diameter estimates the component diameter with up to maxSweeps SSSP
// queries, stopping early when the bounds meet. The sweeps are
// inherently sequential (each starts from the previous sweep's farthest
// vertex), so a single slot suffices; the plane is still built only
// once.
func Diameter(g *graph.Graph, numRanks int, src graph.Vertex,
	opts sssp.Options, maxSweeps int) (*DiameterBounds, error) {
	if maxSweeps < 1 {
		return nil, fmt.Errorf("analytics: maxSweeps must be >= 1")
	}
	p, err := sssp.NewQueryPool(g, numRanks, 1, opts)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	bounds := &DiameterBounds{Upper: graph.Dist(math.MaxInt64 / 4), Peripheral: src}
	cur := src
	minEcc := graph.Dist(math.MaxInt64 / 4)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		ecc, far, err := eccentricityOn(p, cur)
		if err != nil {
			return nil, err
		}
		bounds.Sweeps++
		if ecc > bounds.Lower {
			bounds.Lower = ecc
			bounds.Peripheral = far
		}
		if ecc < minEcc {
			minEcc = ecc
		}
		if 2*minEcc < bounds.Upper {
			bounds.Upper = 2 * minEcc
		}
		if bounds.Upper <= bounds.Lower {
			bounds.Upper = bounds.Lower // bounds met: exact
			break
		}
		if far == cur {
			break // isolated or fully settled
		}
		cur = far
	}
	if bounds.Upper < bounds.Lower {
		bounds.Upper = bounds.Lower
	}
	return bounds, nil
}

// TopKCloseness ranks the given candidate vertices by closeness
// centrality, descending, returning at most k entries.
type RankedVertex struct {
	V     graph.Vertex
	Score float64
}

// TopKCloseness computes closeness for each candidate (one SSSP query
// per candidate) and returns the k highest. The candidate queries are
// independent, so they run concurrently over a query pool; results are
// deterministic regardless of completion order (scores are keyed by
// candidate index, and ties rank by candidate position as before).
func TopKCloseness(g *graph.Graph, numRanks int, candidates []graph.Vertex,
	k int, opts sssp.Options) ([]RankedVertex, error) {
	if k < 1 {
		return nil, fmt.Errorf("analytics: k must be >= 1")
	}
	slots := concurrentSlots
	if len(candidates) < slots {
		slots = len(candidates)
	}
	if slots < 1 {
		slots = 1
	}
	p, err := sssp.NewQueryPool(g, numRanks, slots, opts)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	ranked := make([]RankedVertex, len(candidates))
	errs := make([]error, len(candidates))
	var wg sync.WaitGroup
	for i, v := range candidates {
		wg.Add(1)
		go func(i int, v graph.Vertex) {
			defer wg.Done()
			score, err := closenessOn(p, g, v)
			ranked[i] = RankedVertex{v, score}
			errs[i] = err
		}(i, v)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Insertion sort by descending score (candidate lists are small).
	for i := 1; i < len(ranked); i++ {
		for j := i; j > 0 && ranked[j].Score > ranked[j-1].Score; j-- {
			ranked[j], ranked[j-1] = ranked[j-1], ranked[j]
		}
	}
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked, nil
}
