package analytics

import (
	"testing"

	"parsssp/internal/gen"
	"parsssp/internal/graph"
	"parsssp/internal/rmat"
	"parsssp/internal/sssp"
)

func opts() sssp.Options { return sssp.OptOptions(25) }

func TestClosenessStar(t *testing.T) {
	// Star center: distance w to each of n-1 leaves.
	g, err := gen.Star(11, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Closeness(g, 2, 0, opts())
	if err != nil {
		t.Fatal(err)
	}
	// Center: reached=10, sum=40, n-1=10 → (10/40)*(10/10) = 0.25.
	if got != 0.25 {
		t.Errorf("center closeness = %v, want 0.25", got)
	}
	// Leaf: reached=10, sum = 4 + 9*8 = 76 → (10/76)*(10/10).
	leaf, err := Closeness(g, 2, 1, opts())
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 / 76.0
	if diff := leaf - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("leaf closeness = %v, want %v", leaf, want)
	}
	if leaf >= got {
		t.Error("leaf more central than the hub")
	}
}

func TestClosenessIsolated(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{U: 1, V: 2, W: 1}}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Closeness(g, 1, 0, opts())
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("isolated closeness = %v", c)
	}
}

func TestEccentricityPath(t *testing.T) {
	g, err := gen.Path([]graph.Weight{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	ecc, far, err := Eccentricity(g, 2, 0, opts())
	if err != nil {
		t.Fatal(err)
	}
	if ecc != 9 || far != 3 {
		t.Errorf("ecc = %d via %d, want 9 via 3", ecc, far)
	}
	// Middle vertex has smaller eccentricity.
	mid, _, err := Eccentricity(g, 2, 1, opts())
	if err != nil {
		t.Fatal(err)
	}
	if mid != 7 {
		t.Errorf("middle eccentricity = %d, want 7", mid)
	}
}

func TestDiameterPathExact(t *testing.T) {
	g, err := gen.Path([]graph.Weight{2, 3, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Starting from the middle, sweeps must find the true diameter 10.
	b, err := Diameter(g, 2, 2, opts(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lower != 10 {
		t.Errorf("diameter lower bound %d, want 10", b.Lower)
	}
	if b.Upper < b.Lower {
		t.Errorf("bounds inverted: [%d, %d]", b.Lower, b.Upper)
	}
}

func TestDiameterBoundsContainTruth(t *testing.T) {
	g, err := rmat.Generate(rmat.Family2(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	var src graph.Vertex
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(graph.Vertex(v)) > 4 {
			src = graph.Vertex(v)
			break
		}
	}
	b, err := Diameter(g, 3, src, opts(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force the component diameter.
	base, err := sssp.Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	var truth graph.Dist
	for v, d := range base.Dist {
		if d >= graph.Inf {
			continue
		}
		res, err := sssp.Dijkstra(g, graph.Vertex(v))
		if err != nil {
			t.Fatal(err)
		}
		for _, dd := range res.Dist {
			if dd < graph.Inf && dd > truth {
				truth = dd
			}
		}
	}
	if truth < b.Lower || truth > b.Upper {
		t.Errorf("true diameter %d outside bounds [%d, %d]", truth, b.Lower, b.Upper)
	}
}

func TestDiameterValidation(t *testing.T) {
	g, _ := gen.Path([]graph.Weight{1})
	if _, err := Diameter(g, 1, 0, opts(), 0); err == nil {
		t.Error("maxSweeps=0 accepted")
	}
}

func TestTopKCloseness(t *testing.T) {
	g, err := gen.Star(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := TopKCloseness(g, 2, []graph.Vertex{5, 0, 7}, 2, opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("got %d results", len(ranked))
	}
	if ranked[0].V != 0 {
		t.Errorf("hub not ranked first: %+v", ranked)
	}
	if ranked[0].Score < ranked[1].Score {
		t.Error("ranking not descending")
	}
	if _, err := TopKCloseness(g, 2, nil, 0, opts()); err == nil {
		t.Error("k=0 accepted")
	}
}
