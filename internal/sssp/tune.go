package sssp

import (
	"fmt"
	"sync"
	"time"

	"parsssp/internal/graph"
	"parsssp/internal/partition"
)

// The paper selects Δ by offline sweeps (§IV.C: "we tested various
// values of Δ ... Δ values between 10 and 50 offer the best
// performance"). TunePolicy automates that sweep and widens it across
// the stepping-policy axis: it shortlists policy+parameter candidates
// from the request-estimator weight histograms, times trial queries for
// each over a QueryPool's slots, and returns the fastest configuration.
// This is the "future work" knob the paper leaves manual — no single Δ
// (or single policy; see PAPERS.md on ρ-stepping) wins across graph
// families.

// DefaultDeltaCandidates is the paper's tested range.
var DefaultDeltaCandidates = []graph.Weight{5, 10, 25, 40, 50, 100}

// PolicyCandidate is one policy+parameter configuration in a TunePolicy
// sweep. Only the parameter of the named policy is read: Delta for
// PolicyDelta, RadiusK for PolicyRadius, Rho for PolicyRho (zero meaning
// the engine default, as in Options).
type PolicyCandidate struct {
	Policy  SteppingPolicy
	Delta   graph.Weight
	RadiusK int
	Rho     int
}

// String renders the candidate as "delta(25)", "radius(32)", "rho(4096)".
func (c PolicyCandidate) String() string {
	o := Options{Policy: c.Policy, Delta: c.Delta, RadiusK: c.RadiusK, Rho: c.Rho}
	return o.PolicyString()
}

// Apply reconfigures opts for this candidate, preserving every
// policy-agnostic field. Switching to a non-Δ policy strips the paper's
// Δ-only heuristics (Options.Validate rejects them otherwise) — the
// tuner compares each policy in its valid configuration, not Δ's. This
// is also how a caller deploys the tuner's winner: TunePolicy's Best
// applied to the production options.
func (c PolicyCandidate) Apply(opts Options) Options {
	t := opts
	t.Policy = c.Policy
	switch c.Policy {
	case PolicyRadius, PolicyRho:
		t.RadiusK = c.RadiusK
		t.Rho = c.Rho
		t.Prune = false
		t.IOS = false
		t.Hybrid = false
		t.Census = false
		t.ForceMode = nil
		t.DecisionSequence = nil
		if t.Delta < 1 {
			t.Delta = 1
		}
	default:
		t.Delta = c.Delta
	}
	return t
}

// validate rejects out-of-range candidate parameters.
func (c PolicyCandidate) validate() error {
	switch c.Policy {
	case PolicyDelta:
		if c.Delta < 1 {
			return fmt.Errorf("sssp: candidate Δ %d invalid", c.Delta)
		}
	case PolicyRadius:
		if c.RadiusK < 0 {
			return fmt.Errorf("sssp: candidate radius k %d invalid", c.RadiusK)
		}
	case PolicyRho:
		if c.Rho < 0 {
			return fmt.Errorf("sssp: candidate ρ %d invalid", c.Rho)
		}
	default:
		return fmt.Errorf("sssp: unknown SteppingPolicy %d", int(c.Policy))
	}
	return nil
}

// PolicyTrial is one measured candidate of a TunePolicy sweep.
type PolicyTrial struct {
	Candidate PolicyCandidate
	// Mean is the batch wall-clock divided by the root count.
	Mean time.Duration
}

// PolicyTuneResult reports a cross-policy sweep.
type PolicyTuneResult struct {
	// Best is the fastest candidate.
	Best PolicyCandidate
	// Trials lists every candidate's measurement in sweep order.
	Trials []PolicyTrial
}

// TuneResult reports a Δ-only sweep (TuneDelta).
type TuneResult struct {
	// Best is the fastest candidate.
	Best graph.Weight
	// Trials maps each candidate to its mean query time.
	Trials map[graph.Weight]time.Duration
}

// tuneSlots bounds the per-candidate pool size: enough concurrency to
// overlap root queries, not enough to drown the measurement in scheduler
// noise.
const tuneSlots = 4

// TunePolicy measures opts under each candidate configuration over the
// given roots and returns the fastest. A nil candidates slice sweeps
// ShortlistPolicyCandidates(g).
//
// Candidates are measured one after another — the graph plane (edge
// classification, radii, quantums, histograms) depends on the policy and
// its parameter, so each candidate builds its own QueryPool — but within
// a candidate the root queries are independent and run concurrently over
// the pool's slots. Each trial's mean is the batch wall-clock divided by
// the root count: the throughput a pool deployment of that configuration
// would see, which is the quantity a serving configuration wants tuned
// (per-query latencies under concurrency include scheduler interleaving
// and would double-count busy cores).
func TunePolicy(g *graph.Graph, numRanks int, roots []graph.Vertex,
	opts Options, candidates []PolicyCandidate) (*PolicyTuneResult, error) {
	if candidates == nil {
		candidates = ShortlistPolicyCandidates(g)
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("sssp: TunePolicy needs at least one candidate")
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("sssp: TunePolicy needs at least one root")
	}
	slots := tuneSlots
	if len(roots) < slots {
		slots = len(roots)
	}
	res := &PolicyTuneResult{Trials: make([]PolicyTrial, 0, len(candidates))}
	bestTime := time.Duration(1<<63 - 1)
	for _, c := range candidates {
		if err := c.validate(); err != nil {
			return nil, err
		}
		trial := c.Apply(opts)
		pool, err := NewQueryPool(g, numRanks, slots, trial)
		if err != nil {
			return nil, fmt.Errorf("sssp: tuning %s: %w", c, err)
		}
		errs := make([]error, len(roots))
		start := now()
		var wg sync.WaitGroup
		for i, root := range roots {
			wg.Add(1)
			go func(i int, root graph.Vertex) {
				defer wg.Done()
				_, errs[i] = pool.Query(root)
			}(i, root)
		}
		wg.Wait()
		batch := since(start)
		cerr := pool.Close()
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("sssp: tuning %s: %w", c, err)
			}
		}
		if cerr != nil {
			return nil, fmt.Errorf("sssp: tuning %s: %w", c, cerr)
		}
		mean := batch / time.Duration(len(roots))
		res.Trials = append(res.Trials, PolicyTrial{Candidate: c, Mean: mean})
		if mean < bestTime {
			bestTime = mean
			res.Best = c
		}
	}
	return res, nil
}

// ShortlistPolicyCandidates derives a candidate grid from the graph's
// weight distribution, read off the request-estimator histograms: it
// builds the one-rank Δ=1 histogram plane (bins then span the full
// weight range [1, maxW+1)), aggregates the per-vertex cumulative rows
// into a global weight CDF, and places Δ candidates at the CDF's
// quartile boundaries — a bucket width at the q-quantile weight makes
// roughly a q-fraction of edges short. The non-Δ policies contribute
// fixed parameter grids (their quantums already adapt to the graph
// through the plane's weight statistics).
//
// Degenerate weight ranges (maxW ≤ 1, or an empty graph) fall back to
// DefaultDeltaCandidates for the Δ entries.
func ShortlistPolicyCandidates(g *graph.Graph) []PolicyCandidate {
	var out []PolicyCandidate
	for _, d := range shortlistDeltas(g) {
		out = append(out, PolicyCandidate{Policy: PolicyDelta, Delta: d})
	}
	for _, k := range []int{8, 32} {
		out = append(out, PolicyCandidate{Policy: PolicyRadius, RadiusK: k})
	}
	for _, rho := range []int{1024, 4096} {
		out = append(out, PolicyCandidate{Policy: PolicyRho, Rho: rho})
	}
	return out
}

// shortlistDeltas reads Δ candidates off the global weight CDF.
func shortlistDeltas(g *graph.Graph) []graph.Weight {
	maxW := g.MaxWeight()
	if g.NumVertices() == 0 || maxW <= 1 {
		return DefaultDeltaCandidates
	}
	pd, err := partition.New(partition.Block, g.NumVertices(), 1)
	if err != nil {
		return DefaultDeltaCandidates
	}
	histOpts := Options{Delta: 1, Prune: true, Estimator: EstimatorHistogram}
	plane, err := newRankGraph(g, pd, 0, &histOpts, maxW)
	if err != nil {
		return DefaultDeltaCandidates
	}
	// Aggregate the per-vertex cumulative rows: cum[j] is the number of
	// edges with weight in [1, boundary_j), boundary_j = 1 + maxW·j/bins.
	var cum [histBins + 1]int64
	for li := 0; li < plane.nLocal; li++ {
		base := li * (histBins + 1)
		for j := 1; j <= histBins; j++ {
			cum[j] += int64(plane.hist[base+j])
		}
	}
	total := cum[histBins]
	if total == 0 {
		return DefaultDeltaCandidates
	}
	// The lowest quantile is deliberately sub-quartile: the paper's sweep
	// found Δ in [10, 50] best on its skewed families, and one bin width
	// (the smallest boundary the histogram resolves) lands in that range
	// for byte-valued weights.
	span := graph.Dist(maxW)
	var out []graph.Weight
	for _, q := range []float64{0.125, 0.25, 0.5, 1.0} {
		target := int64(float64(total) * q)
		j := 1
		for j < histBins && cum[j] < target {
			j++
		}
		d := graph.Weight(1 + span*graph.Dist(j)/histBins)
		if d < 1 {
			d = 1
		}
		if len(out) == 0 || out[len(out)-1] != d {
			out = append(out, d)
		}
	}
	return out
}

// TuneDelta measures opts with each candidate Δ over the given roots and
// returns the candidate with the lowest total time; the Δ-only
// compatibility form of TunePolicy. The opts' other fields (heuristics,
// threads) are preserved.
func TuneDelta(g *graph.Graph, numRanks int, roots []graph.Vertex,
	opts Options, candidates []graph.Weight) (*TuneResult, error) {
	if len(candidates) == 0 {
		candidates = DefaultDeltaCandidates
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("sssp: TuneDelta needs at least one root")
	}
	pcs := make([]PolicyCandidate, len(candidates))
	for i, d := range candidates {
		pcs[i] = PolicyCandidate{Policy: PolicyDelta, Delta: d}
	}
	pres, err := TunePolicy(g, numRanks, roots, opts, pcs)
	if err != nil {
		return nil, err
	}
	res := &TuneResult{Best: pres.Best.Delta,
		Trials: make(map[graph.Weight]time.Duration, len(pres.Trials))}
	for _, tr := range pres.Trials {
		res.Trials[tr.Candidate.Delta] = tr.Mean
	}
	return res, nil
}
