package sssp

import (
	"fmt"
	"time"

	"parsssp/internal/graph"
)

// The paper selects Δ by offline sweeps (§IV.C: "we tested various
// values of Δ ... Δ values between 10 and 50 offer the best
// performance"). TuneDelta automates that sweep: it times trial queries
// over a candidate grid and returns the fastest setting. This is the
// "future work" knob the paper leaves manual.

// DefaultDeltaCandidates is the paper's tested range.
var DefaultDeltaCandidates = []graph.Weight{5, 10, 25, 40, 50, 100}

// TuneResult reports a Δ sweep.
type TuneResult struct {
	// Best is the fastest candidate.
	Best graph.Weight
	// Trials maps each candidate to its mean query time.
	Trials map[graph.Weight]time.Duration
}

// TuneDelta measures opts with each candidate Δ over the given roots and
// returns the candidate with the lowest total time. The opts' other
// fields (heuristics, threads) are preserved.
func TuneDelta(g *graph.Graph, numRanks int, roots []graph.Vertex,
	opts Options, candidates []graph.Weight) (*TuneResult, error) {
	if len(candidates) == 0 {
		candidates = DefaultDeltaCandidates
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("sssp: TuneDelta needs at least one root")
	}
	res := &TuneResult{Trials: make(map[graph.Weight]time.Duration, len(candidates))}
	bestTime := time.Duration(1<<63 - 1)
	for _, delta := range candidates {
		if delta < 1 {
			return nil, fmt.Errorf("sssp: candidate Δ %d invalid", delta)
		}
		trial := opts
		trial.Delta = delta
		var total time.Duration
		for _, root := range roots {
			run, err := Run(g, numRanks, root, trial)
			if err != nil {
				return nil, fmt.Errorf("sssp: tuning Δ=%d: %w", delta, err)
			}
			total += run.Stats.Total
		}
		mean := total / time.Duration(len(roots))
		res.Trials[delta] = mean
		if mean < bestTime {
			bestTime = mean
			res.Best = delta
		}
	}
	return res, nil
}
