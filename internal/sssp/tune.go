package sssp

import (
	"fmt"
	"sync"
	"time"

	"parsssp/internal/graph"
)

// The paper selects Δ by offline sweeps (§IV.C: "we tested various
// values of Δ ... Δ values between 10 and 50 offer the best
// performance"). TuneDelta automates that sweep: it times trial queries
// over a candidate grid and returns the fastest setting. This is the
// "future work" knob the paper leaves manual.

// DefaultDeltaCandidates is the paper's tested range.
var DefaultDeltaCandidates = []graph.Weight{5, 10, 25, 40, 50, 100}

// TuneResult reports a Δ sweep.
type TuneResult struct {
	// Best is the fastest candidate.
	Best graph.Weight
	// Trials maps each candidate to its mean query time.
	Trials map[graph.Weight]time.Duration
}

// tuneSlots bounds the per-candidate pool size: enough concurrency to
// overlap root queries, not enough to drown the measurement in scheduler
// noise.
const tuneSlots = 4

// TuneDelta measures opts with each candidate Δ over the given roots and
// returns the candidate with the lowest total time. The opts' other
// fields (heuristics, threads) are preserved.
//
// Candidates are measured one after another — the graph plane (edge
// classification, histograms) depends on Δ, so each candidate builds its
// own QueryPool — but within a candidate the root queries are
// independent and run concurrently over the pool's slots. Each trial's
// mean is the batch wall-clock divided by the root count: the throughput
// a pool deployment of that Δ would see, which is the quantity a serving
// configuration wants tuned (per-query latencies under concurrency
// include scheduler interleaving and would double-count busy cores).
func TuneDelta(g *graph.Graph, numRanks int, roots []graph.Vertex,
	opts Options, candidates []graph.Weight) (*TuneResult, error) {
	if len(candidates) == 0 {
		candidates = DefaultDeltaCandidates
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("sssp: TuneDelta needs at least one root")
	}
	slots := tuneSlots
	if len(roots) < slots {
		slots = len(roots)
	}
	res := &TuneResult{Trials: make(map[graph.Weight]time.Duration, len(candidates))}
	bestTime := time.Duration(1<<63 - 1)
	for _, delta := range candidates {
		if delta < 1 {
			return nil, fmt.Errorf("sssp: candidate Δ %d invalid", delta)
		}
		trial := opts
		trial.Delta = delta
		pool, err := NewQueryPool(g, numRanks, slots, trial)
		if err != nil {
			return nil, fmt.Errorf("sssp: tuning Δ=%d: %w", delta, err)
		}
		errs := make([]error, len(roots))
		start := now()
		var wg sync.WaitGroup
		for i, root := range roots {
			wg.Add(1)
			go func(i int, root graph.Vertex) {
				defer wg.Done()
				_, errs[i] = pool.Query(root)
			}(i, root)
		}
		wg.Wait()
		batch := since(start)
		cerr := pool.Close()
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("sssp: tuning Δ=%d: %w", delta, err)
			}
		}
		if cerr != nil {
			return nil, fmt.Errorf("sssp: tuning Δ=%d: %w", delta, cerr)
		}
		mean := batch / time.Duration(len(roots))
		res.Trials[delta] = mean
		if mean < bestTime {
			bestTime = mean
			res.Best = delta
		}
	}
	return res, nil
}
