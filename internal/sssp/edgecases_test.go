package sssp

import (
	"fmt"
	"testing"

	"parsssp/internal/gen"
	"parsssp/internal/graph"
)

// Edge-case graphs that stress specific engine paths: degenerate sizes,
// extreme weight regimes, and pathological degree distributions.

func TestSingleVertexGraph(t *testing.T) {
	g, err := graph.FromEdges(1, nil, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, g, 1, 0, OptOptions(5))
	if res.Dist[0] != 0 || res.Stats.Reached != 1 {
		t.Errorf("single vertex: dist %d reached %d", res.Dist[0], res.Stats.Reached)
	}
	if res.Parent[0] != 0 {
		t.Errorf("source parent %d, want self", res.Parent[0])
	}
}

func TestMoreRanksThanVertices(t *testing.T) {
	g, err := gen.Path([]graph.Weight{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, g, 8, 0, OptOptions(5)) // 3 vertices, 8 ranks
	want := []graph.Dist{0, 2, 5}
	for v, d := range want {
		if res.Dist[v] != d {
			t.Errorf("dist[%d] = %d, want %d", v, res.Dist[v], d)
		}
	}
}

func TestAllZeroWeights(t *testing.T) {
	// Zero-weight chains must settle within bucket 0's short phases.
	edges := make([]graph.Edge, 0, 49)
	for i := 0; i < 49; i++ {
		edges = append(edges, graph.Edge{U: graph.Vertex(i), V: graph.Vertex(i + 1), W: 0})
	}
	g, err := graph.FromEdges(50, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := checkAgainstDijkstra(t, g, 0, 3, OptOptions(10))
	if res.Stats.Epochs != 1 {
		t.Errorf("zero-weight graph used %d epochs, want 1", res.Stats.Epochs)
	}
	for v := range res.Dist {
		if res.Dist[v] != 0 {
			t.Errorf("dist[%d] = %d, want 0", v, res.Dist[v])
		}
	}
}

func TestAllWeightsEqualDelta(t *testing.T) {
	// Every weight equal to Δ: all edges are long, short phases are
	// no-ops, everything flows through the long-edge machinery.
	g, err := gen.Grid(12, 12, 5, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := checkAgainstDijkstra(t, g, 0, 3, PruneOptions(5))
	if res.Stats.Relax.ShortPush != 0 {
		t.Errorf("short relaxations %d on an all-long graph", res.Stats.Relax.ShortPush)
	}
}

func TestAllWeightsBelowDelta(t *testing.T) {
	// Δ above every weight: all edges short, one epoch, no long phases.
	g, err := gen.Grid(12, 12, 1, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := checkAgainstDijkstra(t, g, 0, 3, PruneOptions(10000))
	if res.Stats.Epochs != 1 {
		t.Errorf("epochs = %d, want 1 with Δ above all weights", res.Stats.Epochs)
	}
	if res.Stats.Relax.LongPush != 0 || res.Stats.Relax.PullRequests != 0 {
		t.Errorf("long-edge work on an all-short graph: %+v", res.Stats.Relax)
	}
}

func TestHeavyHubWithLoadBalancing(t *testing.T) {
	// A star inside a ring: one vertex of extreme degree exercises the
	// edge-chunking path with a tiny chunk size.
	n := 400
	edges := make([]graph.Edge, 0, 2*n)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.Vertex(i), W: graph.Weight(10 + i%50)})
	}
	for i := 1; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: graph.Vertex(i), V: graph.Vertex(i + 1), W: 3})
	}
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts := LBOptOptions(25)
	opts.Threads = 4
	opts.HeavyThreshold = 8
	checkAgainstDijkstra(t, g, 0, 3, opts)
}

func TestParallelAndSelfLoopInput(t *testing.T) {
	// The default builder collapses these; distances must match Dijkstra
	// on the cleaned graph.
	edges := []graph.Edge{
		{U: 0, V: 1, W: 9}, {U: 0, V: 1, W: 4}, {U: 1, V: 0, W: 7},
		{U: 1, V: 1, W: 1}, {U: 1, V: 2, W: 2},
	}
	g, err := graph.FromEdges(3, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := checkAgainstDijkstra(t, g, 0, 2, OptOptions(3))
	if res.Dist[1] != 4 || res.Dist[2] != 6 {
		t.Errorf("dist = %v, want [0 4 6]", res.Dist)
	}
}

func TestLargeWeightsSmallDelta(t *testing.T) {
	// Maximum weights with Δ=1: extreme bucket indices.
	g, err := gen.Path([]graph.Weight{255, 255, 255})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstDijkstra(t, g, 0, 2, DelOptions(1))
}

func TestManySmallComponents(t *testing.T) {
	// 20 disjoint triangles; only the source's is reached.
	var edges []graph.Edge
	for c := 0; c < 20; c++ {
		base := graph.Vertex(3 * c)
		edges = append(edges,
			graph.Edge{U: base, V: base + 1, W: 1},
			graph.Edge{U: base + 1, V: base + 2, W: 2},
			graph.Edge{U: base + 2, V: base, W: 3},
		)
	}
	g, err := graph.FromEdges(60, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := checkAgainstDijkstra(t, g, 0, 4, OptOptions(2))
	if res.Stats.Reached != 3 {
		t.Errorf("reached %d vertices, want 3", res.Stats.Reached)
	}
}

func TestIsolatedSource(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{U: 1, V: 2, W: 5}}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, g, 2, 0, OptOptions(5))
	if res.Stats.Reached != 1 || res.Dist[0] != 0 {
		t.Errorf("isolated source: reached %d, dist0 %d", res.Stats.Reached, res.Dist[0])
	}
}

func TestWideDeltaSweepOnGrid(t *testing.T) {
	g, err := gen.Grid(15, 15, 1, 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []graph.Weight{1, 2, 7, 31, 59, 60, 61, 500} {
		t.Run(fmt.Sprintf("delta=%d", delta), func(t *testing.T) {
			checkAgainstDijkstra(t, g, 0, 3, OptOptions(delta))
		})
	}
}
