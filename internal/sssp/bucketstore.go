package sssp

// bucketStore holds each rank's bucket lists (local vertex indices keyed
// by bucket index) with lazy deletion: when a vertex's tentative distance
// improves it is appended to its new bucket's list, and the entry in the
// old list goes stale. Stale entries are filtered against bucketOf when a
// list is read. Under bulk-synchronous execution, tentative distances
// only decrease and a bucket is processed exactly once, so a vertex is
// appended to any given bucket at most once and lists never contain
// duplicates of valid entries.
//
// The asynchronous mode (async.go) breaks that at-most-once property: a
// vertex collected from bucket k can be re-improved within k and
// re-appended to the same list. Async reads therefore filter on a
// per-vertex pending flag as well (nextPending, collectAsyncMembers),
// which the collection pass clears first-occurrence-wins, making later
// duplicates of the same vertex stale by construction.
//
// Retired list storage (dropped buckets, fully-stale lists, reset) is
// kept on a free list and handed back out by add, so a long-lived
// Machine stops allocating bucket lists after the first few queries.
type bucketStore struct {
	lists map[int64][]uint32
	free  [][]uint32
}

func newBucketStore() bucketStore {
	return bucketStore{lists: make(map[int64][]uint32)}
}

// add records that local vertex li now belongs to bucket k.
func (s *bucketStore) add(k int64, li uint32) {
	l, ok := s.lists[k]
	if !ok && len(s.free) > 0 {
		l = s.free[len(s.free)-1][:0]
		s.free = s.free[:len(s.free)-1]
	}
	s.lists[k] = append(l, li)
}

// list returns bucket k's list without removing it; entries may be stale.
func (s *bucketStore) list(k int64) []uint32 { return s.lists[k] }

// take removes and returns bucket k's list, unfiltered. The storage is
// surrendered to the caller (not recycled).
func (s *bucketStore) take(k int64) []uint32 {
	l := s.lists[k]
	delete(s.lists, k)
	return l
}

// nextNonEmpty returns the smallest bucket index > k that contains at
// least one valid entry according to bucketOf, or infBucket if none.
// Visited lists are compacted in place (stale entries dropped) and fully
// stale lists are recycled, so the amortized cost over a run is linear in
// the number of insertions.
func (s *bucketStore) nextNonEmpty(k int64, bucketOf []int64) int64 {
	for {
		best := int64(infBucket)
		//parssspvet:allow nodeterminism -- pure min reduction over the keys; result is order-insensitive
		for idx := range s.lists {
			if idx > k && idx < best {
				best = idx
			}
		}
		if best == int64(infBucket) {
			return best
		}
		l := s.lists[best]
		valid := l[:0]
		for _, li := range l {
			if bucketOf[li] == best {
				valid = append(valid, li)
			}
		}
		if len(valid) > 0 {
			s.lists[best] = valid
			return best
		}
		s.drop(best)
	}
}

// nextPending returns the smallest bucket index holding at least one
// entry that is both valid (bucketOf matches) and pending, or infBucket
// if none. Unlike nextNonEmpty it scans every bucket, not only those
// above a floor: asynchronous arrival can re-populate a bucket below the
// one processed last. Visited fully-useless lists are recycled; partially
// useless ones are compacted.
func (s *bucketStore) nextPending(bucketOf []int64, pending []bool) int64 {
	for {
		best := int64(infBucket)
		//parssspvet:allow nodeterminism -- pure min reduction over the keys; result is order-insensitive
		for idx := range s.lists {
			if idx < best {
				best = idx
			}
		}
		if best == int64(infBucket) {
			return best
		}
		l := s.lists[best]
		valid := l[:0]
		for _, li := range l {
			if bucketOf[li] == best && pending[li] {
				valid = append(valid, li)
			}
		}
		if len(valid) > 0 {
			s.lists[best] = valid
			return best
		}
		s.drop(best)
	}
}

// countValid returns the number of valid entries in bucket k.
func (s *bucketStore) countValid(k int64, bucketOf []int64) int64 {
	var c int64
	for _, li := range s.lists[k] {
		if bucketOf[li] == k {
			c++
		}
	}
	return c
}

// setList replaces bucket k's list with l, which must alias k's own
// storage after an in-place compaction (the ρ driver's capped extraction
// keeps leftover members this way). An empty l drops the bucket,
// recycling the storage.
func (s *bucketStore) setList(k int64, l []uint32) {
	if len(l) == 0 {
		s.drop(k)
		return
	}
	s.lists[k] = l
}

// drop discards bucket k, recycling its storage.
func (s *bucketStore) drop(k int64) {
	if l, ok := s.lists[k]; ok {
		if cap(l) > 0 {
			s.free = append(s.free, l)
		}
		delete(s.lists, k)
	}
}

// reset clears the store for a new query, recycling all list storage.
// Only the capacities of the recycled slices depend on the (map-ordered)
// recycling order, never any computed result.
func (s *bucketStore) reset() {
	//parssspvet:allow nodeterminism -- storage recycling; order affects only slice capacities
	for k, l := range s.lists {
		if cap(l) > 0 {
			s.free = append(s.free, l)
		}
		delete(s.lists, k)
	}
}
