package sssp

import (
	"errors"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"parsssp/internal/comm"
	"parsssp/internal/comm/memtransport"
	"parsssp/internal/comm/tcptransport"
	"parsssp/internal/partition"
)

// These chaos tests prove the fail-fast contract end to end: whatever a
// transport does mid-query — a rank erroring, dying, stalling, or
// damaging frames — every rank surfaces an error; nothing hangs, nothing
// panics, and a Machine stays Closeable. Run under -race (the CI chaos
// job does) to also prove the abort paths are data-race free.

const chaosRanks = 3

// recordingTransport observes the collective sequence of one rank: the
// kind of each collective and, for exchanges, the bytes sent to other
// ranks. Chaos tests use it to aim payload faults at a collective that
// actually carries records.
type recordingTransport struct {
	t      comm.Transport
	kinds  []byte // 'X' exchange, 'A' allreduce, 'B' barrier
	xBytes []int
}

func (r *recordingTransport) Rank() int { return r.t.Rank() }
func (r *recordingTransport) Size() int { return r.t.Size() }
func (r *recordingTransport) Exchange(out [][]byte) ([][]byte, error) {
	n := 0
	for i, b := range out {
		if i != r.t.Rank() {
			n += len(b)
		}
	}
	r.kinds = append(r.kinds, 'X')
	r.xBytes = append(r.xBytes, n)
	return r.t.Exchange(out)
}
func (r *recordingTransport) ExchangeV(out [][][]byte) ([][]byte, error) {
	n := 0
	for i, segs := range out {
		if i == r.t.Rank() {
			continue
		}
		for _, s := range segs {
			n += len(s)
		}
	}
	r.kinds = append(r.kinds, 'X')
	r.xBytes = append(r.xBytes, n)
	return r.t.(comm.GatherExchanger).ExchangeV(out)
}
func (r *recordingTransport) AllreduceInt64(vals []int64, op comm.ReduceOp) ([]int64, error) {
	r.kinds = append(r.kinds, 'A')
	r.xBytes = append(r.xBytes, 0)
	return r.t.AllreduceInt64(vals, op)
}
func (r *recordingTransport) Barrier() error {
	r.kinds = append(r.kinds, 'B')
	r.xBytes = append(r.xBytes, 0)
	return r.t.Barrier()
}
func (r *recordingTransport) Close() error { return r.t.Close() }

// chaosOpts returns the option set all chaos tests share.
func chaosOpts() Options {
	opts := OptOptions(25)
	opts.Threads = 2
	return opts
}

// recordCollectives runs one clean query and returns the observed
// collective schedule of faultRank. The engine is deterministic, so a
// faulted re-run follows the identical schedule up to the fault.
func recordCollectives(t *testing.T, faultRank int) *recordingTransport {
	t.Helper()
	g := rmatTestGraph
	group, err := memtransport.New(chaosRanks)
	if err != nil {
		t.Fatal(err)
	}
	transports := group.Endpoints()
	rec := &recordingTransport{t: transports[faultRank]}
	transports[faultRank] = rec
	if _, err := RunWithTransports(g, blockDist(g.NumVertices(), chaosRanks), testRoot(g), chaosOpts(), transports); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	return rec
}

func blockDist(n, ranks int) partition.Dist {
	return partition.MustNew(partition.Block, n, ranks)
}

// firstLoadedExchange returns the index of the first exchange collective
// carrying at least minBytes to other ranks.
func firstLoadedExchange(t *testing.T, rec *recordingTransport, minBytes int) int {
	t.Helper()
	for i, k := range rec.kinds {
		if k == 'X' && rec.xBytes[i] >= minBytes {
			return i
		}
	}
	t.Fatal("no exchange with payload found in the clean run")
	return -1
}

// runFaulted executes RunWithTransports with the given faults injected
// on faultRank's transport over a fresh memtransport group.
func runFaulted(t *testing.T, faultRank int, faults ...comm.Fault) (*Result, error) {
	t.Helper()
	g := rmatTestGraph
	group, err := memtransport.New(chaosRanks)
	if err != nil {
		t.Fatal(err)
	}
	transports := group.Endpoints()
	f, err := comm.NewFaulty(transports[faultRank], faults...)
	if err != nil {
		t.Fatal(err)
	}
	transports[faultRank] = f
	return RunWithTransports(g, blockDist(g.NumVertices(), chaosRanks), testRoot(g), chaosOpts(), transports)
}

func TestChaosEngineErrorFailsQuery(t *testing.T) {
	// A rank-local failure between collectives (FaultError) must fail the
	// whole query — peers waiting at the next collective are unblocked by
	// the failing rank's abort, not left deadlocked.
	for _, idx := range []int{0, 1, 5} {
		_, err := runFaulted(t, 1, comm.Fault{Collective: idx, Kind: comm.FaultError})
		if err == nil {
			t.Fatalf("fault at collective %d: query succeeded", idx)
		}
		if !errors.Is(err, comm.ErrInjected) {
			t.Errorf("fault at collective %d: reported error %v is not the root cause", idx, err)
		}
		if errors.Is(err, comm.ErrAborted) {
			t.Errorf("fault at collective %d: a peer's secondary abort error was reported over the cause", idx)
		}
	}
}

func TestChaosRankCrashFailsQuery(t *testing.T) {
	_, err := runFaulted(t, 2, comm.Fault{Collective: 3, Kind: comm.FaultCrash})
	if err == nil {
		t.Fatal("query survived a rank crash")
	}
	if !errors.Is(err, comm.ErrInjected) {
		t.Errorf("reported error %v is not the injected crash", err)
	}
}

func TestChaosTruncatedFrameFailsQuery(t *testing.T) {
	rec := recordCollectives(t, 1)
	idx := firstLoadedExchange(t, rec, 16)
	_, err := runFaulted(t, 1, comm.Fault{Collective: idx, Kind: comm.FaultTruncate})
	if err == nil {
		t.Fatalf("truncated frame at collective %d went undetected", idx)
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("error does not identify payload damage: %v", err)
	}
}

func TestChaosCorruptFrameFailsQuery(t *testing.T) {
	rec := recordCollectives(t, 1)
	idx := firstLoadedExchange(t, rec, 16)
	for _, wf := range []WireFormat{WireV1, WireV2} {
		g := rmatTestGraph
		group, err := memtransport.New(chaosRanks)
		if err != nil {
			t.Fatal(err)
		}
		transports := group.Endpoints()
		f, err := comm.NewFaulty(transports[1], comm.Fault{Collective: idx, Kind: comm.FaultCorrupt})
		if err != nil {
			t.Fatal(err)
		}
		transports[1] = f
		opts := chaosOpts()
		opts.WireFormat = wf
		_, err = RunWithTransports(g, blockDist(g.NumVertices(), chaosRanks), testRoot(g), opts, transports)
		if err == nil {
			t.Fatalf("%v: corrupt frame at collective %d went undetected", wf, idx)
		}
	}
}

func TestChaosFaultPlanSweep(t *testing.T) {
	// Seeded fault plans across all mem-injectable kinds: every run must
	// terminate (the test -timeout is the hang detector) with either a
	// clean error or a correct result — never a panic, hang, or silent
	// wrong answer.
	g := rmatTestGraph
	src := testRoot(g)
	want, err := Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	rec := recordCollectives(t, 0)
	span := len(rec.kinds)
	kinds := []comm.FaultKind{comm.FaultError, comm.FaultCrash, comm.FaultTruncate, comm.FaultCorrupt}
	for seed := uint64(1); seed <= 8; seed++ {
		plan := comm.FaultPlan(seed, 2, span, 0, kinds...)
		res, err := runFaulted(t, int(seed)%chaosRanks, plan...)
		if err != nil {
			continue // clean failure is one of the two allowed outcomes
		}
		if !reflect.DeepEqual(res.Dist, want.Dist) {
			t.Errorf("seed %d: faulted run returned wrong distances without an error", seed)
		}
	}
}

func TestMachineSurvivesFailedQuery(t *testing.T) {
	// A failed query must poison the machine cleanly: the error is the
	// injected root cause, later queries fail fast instead of hanging,
	// and Close still works.
	g := rmatTestGraph
	group, err := memtransport.New(chaosRanks)
	if err != nil {
		t.Fatal(err)
	}
	transports := group.Endpoints()
	f, err := comm.NewFaulty(transports[1], comm.Fault{Collective: 4, Kind: comm.FaultError})
	if err != nil {
		t.Fatal(err)
	}
	transports[1] = f
	m, err := NewMachineWithTransports(g, blockDist(g.NumVertices(), chaosRanks), chaosOpts(), transports)
	if err != nil {
		t.Fatal(err)
	}
	src := testRoot(g)
	if _, err := m.Query(src); !errors.Is(err, comm.ErrInjected) {
		t.Fatalf("first query error = %v, want the injected fault", err)
	}
	if _, err := m.Query(src); err == nil {
		t.Error("query on a poisoned machine succeeded")
	}
	if err := m.Close(); err != nil {
		t.Errorf("Close after failed query: %v", err)
	}
}

func TestMachineWithTransportsCleanQueries(t *testing.T) {
	// The transport-injection constructor must behave exactly like
	// NewMachine when handed plain memtransport endpoints.
	g := rmatTestGraph
	group, err := memtransport.New(chaosRanks)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachineWithTransports(g, blockDist(g.NumVertices(), chaosRanks), chaosOpts(), group.Endpoints())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	src := testRoot(g)
	res, err := m.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Dist, want.Dist) {
		t.Error("distances mismatch Dijkstra")
	}
	if _, err := NewMachineWithTransports(g, blockDist(g.NumVertices(), 2), chaosOpts(), group.Endpoints()); err == nil {
		t.Error("transport count mismatch accepted")
	}
}

// TestChaosUpdateRepairFaults extends the fail-fast contract to the
// incremental-repair collectives: a rank erroring, dying, or damaging
// frames mid-ApplyUpdates must fail the update on every rank (or, for
// payload damage the hardened readers happened not to flag, leave a tree
// identical to the recompute) — never hang, never panic, and the Machine
// stays poisoned-but-Closeable exactly like a failed query.
func TestChaosUpdateRepairFaults(t *testing.T) {
	g := positivize(t, rmatTestGraph)
	src := testRoot(g)
	opts := chaosOpts()
	rng := rand.New(rand.NewSource(91))
	batch := randomBatch(rng, g, 4, 4)

	// Clean recording run: where in rank 1's collective schedule the
	// repair begins, and which repair exchanges carry payload.
	group, err := memtransport.New(chaosRanks)
	if err != nil {
		t.Fatal(err)
	}
	transports := group.Endpoints()
	rec := &recordingTransport{t: transports[1]}
	transports[1] = rec
	m, err := NewMachineWithTransports(g, blockDist(g.NumVertices(), chaosRanks), opts, transports)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(src); err != nil {
		t.Fatalf("clean query: %v", err)
	}
	queryEnd := len(rec.kinds)
	if res, rs, err := m.ApplyUpdates(batch); err != nil || res == nil || rs == nil {
		t.Fatalf("clean ApplyUpdates: res=%v rs=%v err=%v", res, rs, err)
	}
	repairSpan := len(rec.kinds) - queryEnd
	m.Close()
	if repairSpan < 2 {
		t.Fatalf("repair used only %d collectives; cannot aim faults", repairSpan)
	}

	// newFaulted rebuilds the identical machine with one fault injected
	// on rank 1 and runs the pre-fault query; the engine's determinism
	// makes the faulted run follow the recorded schedule.
	newFaulted := func(fault comm.Fault) *Machine {
		t.Helper()
		group, err := memtransport.New(chaosRanks)
		if err != nil {
			t.Fatal(err)
		}
		transports := group.Endpoints()
		f, err := comm.NewFaulty(transports[1], fault)
		if err != nil {
			t.Fatal(err)
		}
		transports[1] = f
		m, err := NewMachineWithTransports(g, blockDist(g.NumVertices(), chaosRanks), opts, transports)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Query(src); err != nil {
			t.Fatalf("pre-fault query: %v", err)
		}
		return m
	}

	for _, kind := range []comm.FaultKind{comm.FaultError, comm.FaultCrash} {
		for _, off := range []int{0, repairSpan / 2, repairSpan - 1} {
			m := newFaulted(comm.Fault{Collective: queryEnd + off, Kind: kind})
			if _, _, err := m.ApplyUpdates(batch); err == nil {
				t.Errorf("kind %v offset %d: faulted repair succeeded", kind, off)
			} else if !errors.Is(err, comm.ErrInjected) {
				t.Errorf("kind %v offset %d: error %v is not the injected root cause", kind, off, err)
			}
			if _, err := m.Query(src); err == nil {
				t.Errorf("kind %v offset %d: query on a poisoned machine succeeded", kind, off)
			}
			if err := m.Close(); err != nil {
				t.Errorf("kind %v offset %d: Close after failed update: %v", kind, off, err)
			}
		}
	}

	// Payload damage, aimed at the first repair exchange that actually
	// carries bytes from the faulted rank.
	idx := -1
	for i := queryEnd; i < len(rec.kinds); i++ {
		if rec.kinds[i] == 'X' && rec.xBytes[i] >= 4 {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no loaded exchange inside the repair")
	}
	for _, kind := range []comm.FaultKind{comm.FaultTruncate, comm.FaultCorrupt} {
		m := newFaulted(comm.Fault{Collective: idx, Kind: kind})
		res, _, err := m.ApplyUpdates(batch)
		if err == nil {
			// Damage the readers happened not to flag must have been
			// harmless: the repaired tree still matches the recompute.
			pv := m.set.Acquire()
			requireTreesEqual(t, pv.Graph(), src, res, opts, chaosRanks, "damaged repair")
			m.set.Release(pv)
		}
		if err := m.Close(); err != nil {
			t.Errorf("kind %v: Close after damaged update: %v", kind, err)
		}
	}
}

// runOverTCPFaulted runs a query over real TCP sockets with faults
// injected on one rank and returns the per-rank errors.
func runOverTCPFaulted(t *testing.T, timeout time.Duration, faultRank int, faults ...comm.Fault) []error {
	t.Helper()
	g := rmatTestGraph
	src := testRoot(g)
	opts := chaosOpts()

	addrs := make([]string, chaosRanks)
	listeners := make([]net.Listener, chaosRanks)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}

	pd := blockDist(g.NumVertices(), chaosRanks)
	errs := make([]error, chaosRanks)
	var wg sync.WaitGroup
	for r := 0; r < chaosRanks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := tcptransport.New(tcptransport.Config{
				Addrs: addrs, Rank: r,
				DialTimeout:       10 * time.Second,
				CollectiveTimeout: timeout,
			})
			if err != nil {
				errs[r] = err
				return
			}
			defer tr.Close()
			var rt comm.Transport = tr
			if r == faultRank {
				f, err := comm.NewFaulty(tr, faults...)
				if err != nil {
					errs[r] = err
					return
				}
				rt = f
			}
			_, errs[r] = RunRank(g, pd, src, opts, rt, 0)
		}(r)
	}
	wg.Wait()
	return errs
}

func TestChaosTCPPeerDeath(t *testing.T) {
	// A rank dying mid-query over TCP (its transport closes) must fail
	// every surviving rank promptly through connection death — no
	// collective timeout is configured here, so the closed sockets are
	// the only failure signal.
	errs := runOverTCPFaulted(t, 0, 1, comm.Fault{Collective: 5, Kind: comm.FaultCrash})
	for r, err := range errs {
		if err == nil {
			t.Errorf("rank %d returned no error after a peer died", r)
		}
	}
	if !errors.Is(errs[1], comm.ErrInjected) {
		t.Errorf("crashed rank's error = %v, want the injected fault", errs[1])
	}
}

func TestChaosTCPStallTimesOut(t *testing.T) {
	// A rank stalling past the collective timeout must fail its peers via
	// the deadline, and then fail itself when it resumes onto dead
	// connections.
	errs := runOverTCPFaulted(t, 400*time.Millisecond, 2,
		comm.Fault{Collective: 4, Kind: comm.FaultStall, Stall: 2 * time.Second})
	for r, err := range errs {
		if err == nil {
			t.Errorf("rank %d returned no error after a peer stalled past the timeout", r)
		}
	}
}
