package sssp

import (
	"fmt"
	"time"

	"parsssp/internal/comm"
	"parsssp/internal/graph"
)

// This file implements the asynchronous execution mode (Options.ExecMode
// = ExecAsync): barrier-free label-correcting relaxation with distributed
// termination detection.
//
// Execution model. Each rank repeatedly (1) drains every relax batch its
// peers have pushed to it (comm.BatchSender point-to-point frames — no
// collective, no barrier), (2) runs one relax round over the lowest
// bucket holding pending work, applying self-owned results inline and
// staging remote ones per destination, and (3) forwards a destination's
// staged records as soon as a size watermark (Options.AsyncFlushBytes)
// fills or the oldest staged record exceeds the time watermark
// (Options.AsyncFlushInterval). The buckets survive as a priority
// heuristic only — nothing settles a bucket, vertices re-enter lower (or
// the same) buckets as better distances arrive, and the re-entry
// discipline is the pending flag documented in bucketstore.go.
//
// Short/long deferral. Relaxing a vertex's whole adjacency on every
// improvement is correct but wasteful: a long edge (w ≥ Δ) relaxed from
// a still-tentative distance launches a cascade into higher buckets that
// a single later improvement of the source invalidates wholesale, and
// measurement shows that unthrottled speculation costs ~7× BSP's total
// relaxations. The remedy is the asynchronous analogue of the paper's
// IOS observation (long edges want settled sources): short edges (w < Δ)
// relax eagerly — they carry the intra-bucket wavefront and must be
// fast — while each improvement's long-edge work is parked in a second
// bucket-keyed queue (longStore) and released only when no pending
// short-edge work remains at or below its bucket. By then the source has
// usually reached its final distance, so the downstream buckets hear a
// distance that will stick. A vertex improved again after its long
// release simply re-queues both halves; correctness never depends on the
// deferral heuristic, only the work bound does.
//
// Termination detection. A counting scheme settled over the existing
// collective Allreduce (the "token" of a credit-recovery/Safra detector
// degenerates to two machine-wide sums because the collective gives a
// consistent cut for free): a rank enters a probe only when locally idle
// — no pending short or long work, every staged batch flushed, receive
// queue drained. The probe sums the per-rank RecordsSent and
// RecordsReceived counters (comm.TrafficStats, maintained by this engine
// at flush and apply time). Equal sums terminate. Soundness: a rank
// inside the collective cannot send or apply anything, so the summed
// counters describe a consistent cut; any in-flight record is counted by
// its sender and not yet by its receiver, making the sums unequal, so
// premature termination is impossible. Liveness: a failed probe releases
// every rank to drain and work again, and once all work is done and
// delivered the next probe's sums are equal. An idle rank blocked in a
// probe is safe — busy peers keep working and join the probe when they
// go idle.
//
// Equivalence with BSP. Distances: label correcting converges to the
// unique shortest distances whatever the arrival order. Parents: every
// strict improvement of a vertex (re-)queues both its short and its long
// relax, so every reached vertex offers every edge at its final distance
// at least once before the machine can go globally idle; the canonical
// election of applyRelaxIn (strict improvement takes the sender,
// positive-weight equal-distance offers take the min-id sender) then
// makes the final parent of v the id-minimum u with d(u)+w(u,v) = d(v) —
// a pure function of the final distances, identical to BSP's. (An
// equal-distance offer from a non-final sender cannot exist: d(u)_now +
// w = d(v)_final with d(u)_now non-final would put d(u)_final + w below
// v's final distance.) Zero-weight ties remain schedule-dependent in
// both modes, exactly as for the incremental repair; see applyRelaxIn
// and DESIGN.md "Asynchronous execution & termination detection".

// runAsync executes the full query on this rank in asynchronous mode.
func (r *queryState) runAsync() error {
	if !comm.SupportsBatch(r.t) {
		return fmt.Errorf("sssp: rank %d: ExecMode async needs a transport with point-to-point batches (comm.BatchSender)", r.rank)
	}
	totalStart := now()
	if r.pending == nil {
		r.pending = make([]bool, r.nLocal)
	}
	if r.longPending == nil {
		r.longPending = make([]bool, r.nLocal)
		r.longStore = newBucketStore()
	}
	if r.asyncStage == nil {
		r.asyncStage = make([][]byte, r.size)
		r.asyncStageAt = make([]time.Time, r.size)
	}
	if r.pd.Owner(r.src) == r.rank {
		li := uint32(r.local(r.src))
		r.dist[li] = 0
		r.parent[li] = r.src
		r.bucketOf[li] = 0
		r.pending[li] = true
		r.store.add(0, li)
		r.longPending[li] = true
		r.longStore.add(0, li)
	}
	r.tracef("sssp: async start source=%d ranks=%d policy=%s", r.src, r.size, r.opts.PolicyString())

	idleWait := r.opts.asyncFlushInterval()
	for {
		if _, err := r.drainAsync(0); err != nil {
			return err
		}
		bktStart := now()
		ks := r.store.nextPending(r.bucketOf, r.pending)
		kl := r.longStore.nextPending(r.bucketOf, r.longPending)
		r.charge(bktStart, true)
		if ks < infBucket || kl < infBucket {
			if r.opts.MaxEpochs > 0 && int(r.stats.AsyncRounds) >= r.opts.MaxEpochs {
				return fmt.Errorf("sssp: exceeded MaxEpochs=%d async rounds at buckets %d/%d", r.opts.MaxEpochs, ks, kl)
			}
			// Shorts first at ties: bucket k's long edges are released only
			// once no short-edge work remains at or below k (see file
			// comment).
			k, long := ks, false
			if kl < ks {
				k, long = kl, true
			}
			if err := r.asyncRound(k, long); err != nil {
				return err
			}
			if err := r.flushDueAsync(); err != nil {
				return err
			}
			continue
		}
		// Locally idle: everything staged goes out, then give arrivals one
		// bounded wait before paying for a probe collective.
		if err := r.flushAllAsync(); err != nil {
			return err
		}
		got, err := r.drainAsync(idleWait)
		if err != nil {
			return err
		}
		if got {
			continue
		}
		done, err := r.terminationProbe()
		if err != nil {
			return err
		}
		if done {
			break
		}
	}

	r.finishStats(totalStart)
	r.tracef("async done rounds=%d probes=%d reached=%d relax=%d",
		r.stats.AsyncRounds, r.stats.AsyncProbes, r.stats.Reached,
		r.stats.Relax.Total())
	return nil
}

// asyncRound relaxes one edge class (short when long is false, deferred
// long otherwise) of bucket k's pending members, applies the self-owned
// results inline and stages the rest.
func (r *queryState) asyncRound(k int64, long bool) error {
	start := now()
	before := r.relaxTotals()
	var members []uint32
	var fn func(tid int, it workItem)
	if long {
		members = r.collectAsyncMembers(k, &r.longStore, r.longPending)
		fn = r.asyncLongRelaxFn()
	} else {
		members = r.collectAsyncMembers(k, &r.store, r.pending)
		fn = r.asyncShortRelaxFn()
	}
	items := r.buildItems(members)
	r.runWorkers(items, fn)
	for tid := range r.tbufs {
		for dest := 0; dest < r.size; dest++ {
			buf := r.tbufs[tid][dest]
			if len(buf) == 0 {
				continue
			}
			if dest == r.rank {
				if err := r.applyAsyncRelax(r.rank, buf, WireV1); err != nil {
					return err
				}
				continue
			}
			if err := r.stageAsync(dest, buf); err != nil {
				return err
			}
		}
	}
	r.stats.AsyncRounds++
	r.logPhase(k, PhaseAsync, len(members), before, start)
	return nil
}

// collectAsyncMembers returns bucket k's valid pending members from the
// given queue, clearing their pending flags (first occurrence wins,
// which is what makes duplicate list entries harmless — see
// bucketstore.go) and dropping the bucket's list; re-improved vertices
// re-add themselves.
func (r *queryState) collectAsyncMembers(k int64, store *bucketStore, pending []bool) []uint32 {
	start := now()
	defer r.charge(start, true)
	members := r.members[:0]
	for _, li := range store.list(k) {
		if r.bucketOf[li] == k && pending[li] {
			pending[li] = false
			members = append(members, li)
		}
	}
	r.members = members
	store.drop(k)
	return members
}

// asyncShortRelaxFn lazily builds the eager half of the async scan:
// short edges only (w below the policy's deferral threshold — Δ for
// Δ-stepping, the respective quantum for ρ/radius), the intra-bucket
// wavefront.
func (r *queryState) asyncShortRelaxFn() func(tid int, it workItem) {
	if r.asyncShortFn == nil {
		r.asyncShortFn = func(tid int, it workItem) {
			v := r.global(it.li)
			du := r.dist[it.li]
			dd := r.step.deferWeight()
			nbr, ws := r.g.Neighbors(v)
			cnt := &r.tcnt[tid]
			for i := it.lo; i < it.hi; i++ {
				if ws[i] >= dd {
					continue
				}
				cnt.AsyncPush++
				nd := du + graph.Dist(ws[i])
				dst := r.pd.Owner(nbr[i])
				r.tbufs[tid][dst] = appendRelax(r.tbufs[tid][dst], nbr[i], tagParent(v, ws[i]), nd)
			}
		}
	}
	return r.asyncShortFn
}

// asyncLongRelaxFn lazily builds the deferred half of the async scan:
// long edges only (w at or above the policy's deferral threshold),
// released once the source's bucket has no pending short work below it.
func (r *queryState) asyncLongRelaxFn() func(tid int, it workItem) {
	if r.asyncLongFn == nil {
		r.asyncLongFn = func(tid int, it workItem) {
			v := r.global(it.li)
			du := r.dist[it.li]
			dd := r.step.deferWeight()
			nbr, ws := r.g.Neighbors(v)
			cnt := &r.tcnt[tid]
			for i := it.lo; i < it.hi; i++ {
				if ws[i] < dd {
					continue
				}
				cnt.AsyncPush++
				nd := du + graph.Dist(ws[i])
				dst := r.pd.Owner(nbr[i])
				r.tbufs[tid][dst] = appendRelax(r.tbufs[tid][dst], nbr[i], tagParent(v, ws[i]), nd)
			}
		}
	}
	return r.asyncLongFn
}

// applyAsyncRelax applies one batch of relax records (wire format wf;
// self-applied staging is WireV1, received batches are the configured
// format). The distance/parent rule is applyRelaxIn's canonical one; the
// bucket bookkeeping differs: membership is re-entrant, guarded by the
// pending flags instead of the settle-once invariant, and every strict
// improvement queues both the eager short and the deferred long relax.
func (r *queryState) applyAsyncRelax(src int, buf []byte, wf WireFormat) error {
	start := now()
	defer r.charge(start, false)
	rd := newRelaxReader(buf, wf)
	for {
		v, tpar, nd, ok := rd.next()
		if !ok {
			break
		}
		par, zw := untagParent(tpar)
		li := r.local(v)
		if uint(li) >= uint(r.nLocal) {
			return r.corruptErr(src, "relax", fmt.Errorf("vertex %d is not owned by this rank", v))
		}
		if nd >= r.dist[li] {
			if nd == r.dist[li] && nd < graph.Inf && !zw && par < r.parent[li] && v != r.src {
				r.parent[li] = par
			}
			continue
		}
		r.dist[li] = nd
		r.parent[li] = par
		nb := r.step.key(nd)
		moved := nb != r.bucketOf[li]
		r.bucketOf[li] = nb
		if !r.pending[li] {
			r.pending[li] = true
			r.store.add(nb, uint32(li))
		} else if moved {
			// Already queued, but in a now-stale list: the entry there fails
			// the bucketOf filter, so re-add under the new bucket.
			r.store.add(nb, uint32(li))
		}
		if !r.longPending[li] {
			r.longPending[li] = true
			r.longStore.add(nb, uint32(li))
		} else if moved {
			r.longStore.add(nb, uint32(li))
		}
	}
	if err := rd.err(); err != nil {
		return r.corruptErr(src, "relax", err)
	}
	return nil
}

// drainAsync applies every batch already queued for this rank. A nonzero
// wait bounds a blocking receive for the first batch; the rest are
// polled. Returns whether anything was applied.
func (r *queryState) drainAsync(wait time.Duration) (bool, error) {
	got := false
	wf := r.opts.WireFormat
	for {
		start := now()
		src, payload, ok, err := r.t.RecvBatch(wait)
		r.charge(start, false)
		if err != nil {
			return got, err
		}
		if !ok {
			return got, nil
		}
		got = true
		wait = 0
		r.t.Stats.RecordsReceived += int64(wireRecordCount(payload, relaxKind, wf))
		if err := r.applyAsyncRelax(src, payload, wf); err != nil {
			return got, err
		}
	}
}

// stageAsync appends staged v1 records for dest, flushing at the size
// watermark.
func (r *queryState) stageAsync(dest int, recs []byte) error {
	if len(r.asyncStage[dest]) == 0 {
		r.asyncStageAt[dest] = now()
	}
	r.asyncStage[dest] = append(r.asyncStage[dest], recs...)
	if len(r.asyncStage[dest]) >= r.opts.asyncFlushBytes() {
		return r.flushAsync(dest)
	}
	return nil
}

// flushDueAsync flushes every destination whose oldest staged record has
// exceeded the time watermark, bounding how long a small tail of records
// can linger unsent while this rank stays busy.
func (r *queryState) flushDueAsync() error {
	iv := r.opts.asyncFlushInterval()
	for dest := 0; dest < r.size; dest++ {
		if len(r.asyncStage[dest]) > 0 && since(r.asyncStageAt[dest]) >= iv {
			if err := r.flushAsync(dest); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushAllAsync flushes every destination with staged records; a rank
// must not enter a termination probe holding staged records (they are
// not yet counted as sent, and nothing else would deliver them).
func (r *queryState) flushAllAsync() error {
	for dest := 0; dest < r.size; dest++ {
		if err := r.flushAsync(dest); err != nil {
			return err
		}
	}
	return nil
}

// flushAsync encodes and sends dest's staged records as one
// point-to-point batch, counting them sent. The transport copies the
// payload, so the staging (and encode scratch) is reusable immediately.
func (r *queryState) flushAsync(dest int) error {
	stage := r.asyncStage[dest]
	if len(stage) == 0 {
		return nil
	}
	n := numRelaxRecords(stage)
	payload := stage
	if r.opts.WireFormat == WireV2 {
		recs := r.relaxRecs[:0]
		for i := 0; i < n; i++ {
			v, par, d := decodeRelax(stage, i)
			recs = append(recs, relaxRec{v, par, d})
		}
		r.relaxRecs = recs
		sortRelaxBatch(&r.sorter, recs)
		r.asyncFlushBuf = encodeRelaxBatch(r.asyncFlushBuf[:0], recs)
		payload = r.asyncFlushBuf
	}
	start := now()
	err := r.t.SendBatch(dest, payload)
	r.charge(start, false)
	if err != nil {
		return err
	}
	r.t.Stats.RecordsSent += int64(n)
	r.asyncStage[dest] = stage[:0]
	r.asyncStageAt[dest] = time.Time{}
	return nil
}

// terminationProbe runs one counting probe over the collective: the
// machine terminates when the global record sends and receives balance.
// Only locally idle ranks call this; a busy peer simply joins the
// collective later, which is safe (see the file comment).
func (r *queryState) terminationProbe() (bool, error) {
	r.reduceVal[0] = r.t.Stats.RecordsSent
	r.reduceVal[1] = r.t.Stats.RecordsReceived
	sums, err := r.allreduce(r.reduceVal[:2], comm.Sum, true)
	if err != nil {
		return false, err
	}
	r.stats.AsyncProbes++
	return sums[0] == sums[1], nil
}
