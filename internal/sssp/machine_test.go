package sssp

import (
	"reflect"
	"testing"

	"parsssp/internal/graph"
)

func TestMachineRepeatedQueries(t *testing.T) {
	g := rmatTestGraph
	m, err := NewMachine(g, 3, OptOptions(25))
	if err != nil {
		t.Fatal(err)
	}
	roots, err := PickRoots(g, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range roots {
		got, err := m.Query(root)
		if err != nil {
			t.Fatal(err)
		}
		fresh := mustRun(t, g, 3, root, OptOptions(25))
		if !reflect.DeepEqual(got.Dist, fresh.Dist) {
			t.Fatalf("machine query from %d differs from fresh run", root)
		}
		if got.Stats.Relax != fresh.Stats.Relax {
			t.Fatalf("machine stats differ from fresh run: %+v vs %+v",
				got.Stats.Relax, fresh.Stats.Relax)
		}
	}
}

func TestMachineResultsSurviveReset(t *testing.T) {
	g := rmatTestGraph
	m, err := NewMachine(g, 2, OptOptions(25))
	if err != nil {
		t.Fatal(err)
	}
	roots, err := PickRoots(g, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	first, err := m.Query(roots[0])
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]graph.Dist(nil), first.Dist...)
	if _, err := m.Query(roots[1]); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Dist, snapshot) {
		t.Error("first query's result mutated by the second query")
	}
}

func TestMachineSameRootIdempotent(t *testing.T) {
	g := rmatTestGraph
	m, err := NewMachine(g, 2, LBOptOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	src := testRoot(g)
	a, err := m.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Dist, b.Dist) || a.Stats.Relax != b.Stats.Relax {
		t.Error("repeated identical queries diverge")
	}
}

func TestMachineValidation(t *testing.T) {
	g := rmatTestGraph
	if _, err := NewMachine(g, 2, Options{}); err == nil {
		t.Error("invalid options accepted")
	}
	m, err := NewMachine(g, 2, OptOptions(25))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(graph.Vertex(g.NumVertices())); err == nil {
		t.Error("out-of-range source accepted")
	}
	if m.NumRanks() != 2 {
		t.Errorf("NumRanks = %d", m.NumRanks())
	}
}
