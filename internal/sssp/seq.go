package sssp

import (
	"container/heap"
	"fmt"

	"parsssp/internal/graph"
)

// This file implements the sequential reference algorithms of the paper's
// Section II: Dijkstra's algorithm (binary heap), the Bellman-Ford
// algorithm, and sequential Δ-stepping. They serve three purposes: ground
// truth for correctness tests of the distributed engine, the Δ=1 / Δ=∞
// endpoints of the paper's algorithm spectrum, and single-threaded
// baselines for the benchmark harness.

// SeqResult carries a sequential run's output and basic work counters.
type SeqResult struct {
	// Dist[v] is the shortest distance from the source, or graph.Inf for
	// unreachable vertices.
	Dist []graph.Dist
	// Parent[v] is v's predecessor in the shortest-path tree; the source
	// is its own parent and unreachable vertices have NoParent.
	Parent []graph.Vertex
	// Relaxations is the number of Relax operations performed.
	Relaxations int64
	// Phases is the number of iterations (Bellman-Ford rounds, or
	// Δ-stepping phases summed over buckets; heap pops for Dijkstra).
	Phases int64
	// Buckets is the number of epochs (Δ-stepping only).
	Buckets int64
	// Reached is the number of vertices with finite distance.
	Reached int64
}

func (r *SeqResult) countReached() {
	for _, d := range r.Dist {
		if d < graph.Inf {
			r.Reached++
		}
	}
}

type heapItem struct {
	v graph.Vertex
	d graph.Dist
}

type distHeap []heapItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest paths with a binary heap in
// O((n+m) log n).
func Dijkstra(g *graph.Graph, src graph.Vertex) (*SeqResult, error) {
	n := g.NumVertices()
	if int(src) >= n {
		return nil, fmt.Errorf("sssp: source %d out of range for n=%d", src, n)
	}
	res := &SeqResult{Dist: newDistArray(n), Parent: newParentArray(n)}
	res.Dist[src] = 0
	res.Parent[src] = src
	h := &distHeap{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(heapItem)
		if it.d > res.Dist[it.v] {
			continue // stale entry
		}
		res.Phases++
		nbr, ws := g.Neighbors(it.v)
		for i, u := range nbr {
			res.Relaxations++
			nd := it.d + graph.Dist(ws[i])
			if nd < res.Dist[u] {
				res.Dist[u] = nd
				res.Parent[u] = it.v
				heap.Push(h, heapItem{u, nd})
			}
		}
	}
	res.countReached()
	return res, nil
}

// BellmanFord computes single-source shortest paths with synchronous
// Bellman-Ford rounds: in each round every vertex whose distance changed
// in the previous round relaxes all its incident edges.
func BellmanFord(g *graph.Graph, src graph.Vertex) (*SeqResult, error) {
	n := g.NumVertices()
	if int(src) >= n {
		return nil, fmt.Errorf("sssp: source %d out of range for n=%d", src, n)
	}
	res := &SeqResult{Dist: newDistArray(n), Parent: newParentArray(n)}
	res.Dist[src] = 0
	res.Parent[src] = src
	active := []graph.Vertex{src}
	changed := make([]bool, n)
	for len(active) > 0 {
		res.Phases++
		var next []graph.Vertex
		for _, u := range active {
			du := res.Dist[u]
			nbr, ws := g.Neighbors(u)
			for i, v := range nbr {
				res.Relaxations++
				nd := du + graph.Dist(ws[i])
				if nd < res.Dist[v] {
					res.Dist[v] = nd
					res.Parent[v] = u
					if !changed[v] {
						changed[v] = true
						next = append(next, v)
					}
				}
			}
		}
		for _, v := range next {
			changed[v] = false
		}
		active = next
	}
	res.Buckets = 1
	res.countReached()
	return res, nil
}

// SeqDeltaStepping is the sequential Δ-stepping algorithm of Figure 2 in
// the paper, with Meyer-Sanders short/long edge classification. It is the
// reference model for the distributed engine: for any graph, source and Δ
// the distributed engine must produce identical distances.
func SeqDeltaStepping(g *graph.Graph, src graph.Vertex, delta graph.Weight) (*SeqResult, error) {
	n := g.NumVertices()
	if int(src) >= n {
		return nil, fmt.Errorf("sssp: source %d out of range for n=%d", src, n)
	}
	if delta < 1 {
		return nil, fmt.Errorf("sssp: delta must be >= 1, got %d", delta)
	}
	res := &SeqResult{Dist: newDistArray(n), Parent: newParentArray(n)}
	res.Dist[src] = 0
	res.Parent[src] = src
	dd := graph.Dist(delta)

	bucketOf := func(v graph.Vertex) int64 {
		if res.Dist[v] >= graph.Inf {
			return int64(infBucket)
		}
		return int64(res.Dist[v] / dd)
	}
	// Lazy bucket lists: stale entries are skipped by re-checking
	// bucketOf at scan time.
	buckets := map[int64][]graph.Vertex{0: {src}}
	relax := func(u, v graph.Vertex, nd graph.Dist) {
		if nd >= res.Dist[v] {
			return
		}
		oldB := bucketOf(v)
		res.Dist[v] = nd
		res.Parent[v] = u
		newB := nd / dd
		if newB != oldB {
			buckets[newB] = append(buckets[newB], v)
		}
	}

	k := int64(0)
	for {
		// Short-edge phases: settle bucket k.
		for {
			members := buckets[k]
			var act []graph.Vertex
			for _, v := range members {
				if bucketOf(v) == k {
					act = append(act, v)
				}
			}
			if len(act) == 0 {
				break
			}
			res.Phases++
			// Snapshot distances so a phase relaxes from the values at
			// phase start; in-phase improvements take effect next phase,
			// matching the bulk-synchronous distributed execution.
			type upd struct {
				u, v graph.Vertex
				nd   graph.Dist
			}
			var updates []upd
			for _, u := range act {
				du := res.Dist[u]
				nbr, ws := g.Neighbors(u)
				end := g.ShortEdgeEnd(u, delta)
				for i := 0; i < end; i++ {
					res.Relaxations++
					updates = append(updates, upd{u, nbr[i], du + graph.Dist(ws[i])})
				}
			}
			pre := make(map[graph.Vertex]graph.Dist)
			for _, u := range updates {
				if _, ok := pre[u.v]; !ok {
					pre[u.v] = res.Dist[u.v]
				}
			}
			for _, u := range updates {
				relax(u.u, u.v, u.nd)
			}
			// Next-phase actives are bucket-k vertices whose distance
			// decreased; stale bucket entries handle membership, but the
			// "changed" requirement needs explicit tracking.
			// Walk updates (deterministic order) rather than ranging over
			// the pre map: next's order decides the relaxation order of the
			// following phase, and with it which parent wins equal-distance
			// ties — map order here made the tree vary run to run.
			var next []graph.Vertex
			for _, u := range updates {
				before, ok := pre[u.v]
				if !ok {
					continue
				}
				delete(pre, u.v)
				if res.Dist[u.v] < before && res.Dist[u.v]/dd == k {
					next = append(next, u.v)
				}
			}
			buckets[k] = next
		}
		// Long-edge phase: relax long edges of all settled bucket-k
		// vertices once.
		var settledK []graph.Vertex
		for v := 0; v < n; v++ {
			if res.Dist[v] < graph.Inf && res.Dist[v]/dd == k {
				settledK = append(settledK, graph.Vertex(v))
			}
		}
		if len(settledK) > 0 {
			res.Phases++
			res.Buckets++
		}
		for _, u := range settledK {
			du := res.Dist[u]
			nbr, ws := g.Neighbors(u)
			start := g.ShortEdgeEnd(u, delta)
			for i := start; i < len(nbr); i++ {
				res.Relaxations++
				relax(u, nbr[i], du+graph.Dist(ws[i]))
			}
		}
		// Advance to the next non-empty bucket.
		nextK := int64(infBucket)
		for v := 0; v < n; v++ {
			b := bucketOf(graph.Vertex(v))
			if b > k && b < nextK {
				nextK = b
			}
		}
		if nextK == int64(infBucket) {
			break
		}
		k = nextK
	}
	res.countReached()
	return res, nil
}

// newDistArray allocates a distance array initialized to Inf.
func newDistArray(n int) []graph.Dist {
	d := make([]graph.Dist, n)
	for i := range d {
		d[i] = graph.Inf
	}
	return d
}

// NoParent marks vertices with no shortest-path-tree predecessor
// (unreachable vertices).
const NoParent = ^graph.Vertex(0)

// newParentArray allocates a parent array initialized to NoParent.
func newParentArray(n int) []graph.Vertex {
	p := make([]graph.Vertex, n)
	for i := range p {
		p[i] = NoParent
	}
	return p
}
