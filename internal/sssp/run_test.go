package sssp

import (
	"fmt"
	"testing"

	"parsssp/internal/gen"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
	"parsssp/internal/rmat"
)

// checkAgainstDijkstra runs the distributed engine with opts and compares
// every distance with the sequential Dijkstra reference.
func checkAgainstDijkstra(t *testing.T, g *graph.Graph, src graph.Vertex,
	numRanks int, opts Options) *Result {
	t.Helper()
	want, err := Dijkstra(g, src)
	if err != nil {
		t.Fatalf("Dijkstra: %v", err)
	}
	got, err := Run(g, numRanks, src, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mismatch := 0
	for v := range want.Dist {
		if got.Dist[v] != want.Dist[v] {
			if mismatch < 5 {
				t.Errorf("dist[%d] = %d, want %d", v, got.Dist[v], want.Dist[v])
			}
			mismatch++
		}
	}
	if mismatch > 0 {
		t.Fatalf("%d distance mismatches (ranks=%d opts=%+v)", mismatch, numRanks, opts)
	}
	return got
}

// allConfigs enumerates the algorithm presets under test.
func allConfigs(delta graph.Weight) map[string]Options {
	return map[string]Options{
		"plain":    {Delta: delta},
		"del":      DelOptions(delta),
		"prune":    PruneOptions(delta),
		"opt":      OptOptions(delta),
		"lbopt":    LBOptOptions(delta),
		"dijkstra": DijkstraOptions(),
		"bf":       BellmanFordOptions(),
	}
}

func TestDistributedMatchesDijkstraPath(t *testing.T) {
	g, err := gen.Path([]graph.Weight{3, 1, 4, 1, 5, 9, 2, 6})
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range allConfigs(4) {
		for _, ranks := range []int{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/ranks=%d", name, ranks), func(t *testing.T) {
				checkAgainstDijkstra(t, g, 0, ranks, opts)
			})
		}
	}
}

func TestDistributedMatchesDijkstraRandom(t *testing.T) {
	for _, tc := range []struct {
		n, m  int
		maxW  graph.Weight
		seed  uint64
		delta graph.Weight
	}{
		{50, 200, 20, 1, 5},
		{200, 1000, 255, 2, 25},
		{500, 4000, 255, 3, 40},
		{300, 600, 7, 4, 3}, // sparse, small weights
	} {
		g, err := gen.Random(tc.n, tc.m, tc.maxW, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		for name, opts := range allConfigs(tc.delta) {
			for _, ranks := range []int{1, 4} {
				t.Run(fmt.Sprintf("n%d/%s/ranks=%d", tc.n, name, ranks), func(t *testing.T) {
					checkAgainstDijkstra(t, g, 0, ranks, opts)
				})
			}
		}
	}
}

func TestDistributedMatchesDijkstraRMAT(t *testing.T) {
	g, err := rmat.Generate(rmat.Family1(10, 42))
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range allConfigs(25) {
		opts.Threads = 4
		t.Run(name, func(t *testing.T) {
			checkAgainstDijkstra(t, g, 1, 4, opts)
		})
	}
}

func TestSeqDeltaSteppingMatchesDijkstra(t *testing.T) {
	g, err := gen.Random(300, 1500, 255, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []graph.Weight{1, 5, 25, 100, 1 << 20} {
		got, err := SeqDeltaStepping(g, 0, delta)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want.Dist {
			if got.Dist[v] != want.Dist[v] {
				t.Fatalf("delta=%d: dist[%d] = %d, want %d", delta, v, got.Dist[v], want.Dist[v])
			}
		}
	}
}

func TestBellmanFordMatchesDijkstra(t *testing.T) {
	g, err := gen.Random(300, 1500, 255, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BellmanFord(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Dist {
		if got.Dist[v] != want.Dist[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got.Dist[v], want.Dist[v])
		}
	}
}

func TestDisconnectedGraph(t *testing.T) {
	// Two components: 0-1-2 and 3-4; source in the first.
	g, err := graph.FromEdges(5, []graph.Edge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}, {U: 3, V: 4, W: 1},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := checkAgainstDijkstra(t, g, 0, 2, OptOptions(5))
	if res.Dist[3] != graph.Inf || res.Dist[4] != graph.Inf {
		t.Errorf("unreachable vertices got finite distances: %v", res.Dist)
	}
	if res.Stats.Reached != 3 {
		t.Errorf("Reached = %d, want 3", res.Stats.Reached)
	}
}

func TestZeroWeightEdges(t *testing.T) {
	// Chains of zero-weight edges must settle within one bucket.
	g, err := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1, W: 0}, {U: 1, V: 2, W: 0}, {U: 2, V: 3, W: 0},
		{U: 3, V: 4, W: 7}, {U: 4, V: 5, W: 0},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range allConfigs(5) {
		t.Run(name, func(t *testing.T) {
			checkAgainstDijkstra(t, g, 0, 2, opts)
		})
	}
}

func TestForcedPushAndPull(t *testing.T) {
	g, err := gen.Random(400, 3000, 255, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModePush, ModePull} {
		opts := PruneOptions(25)
		opts.ForceMode = &mode
		t.Run(mode.String(), func(t *testing.T) {
			checkAgainstDijkstra(t, g, 0, 3, opts)
		})
	}
}

func TestCyclicDistribution(t *testing.T) {
	g, err := gen.Random(400, 3000, 255, 12)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	pd := partition.MustNew(partition.Cyclic, g.NumVertices(), 4)
	got, err := RunDistributed(g, pd, 0, OptOptions(25))
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Dist {
		if got.Dist[v] != want.Dist[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got.Dist[v], want.Dist[v])
		}
	}
}

func TestSourceVariants(t *testing.T) {
	g, err := gen.Random(200, 900, 100, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []graph.Vertex{0, 1, 99, 199} {
		t.Run(fmt.Sprintf("src=%d", src), func(t *testing.T) {
			checkAgainstDijkstra(t, g, src, 3, OptOptions(10))
		})
	}
}
