package sssp

import (
	"testing"
	"testing/quick"

	"parsssp/internal/graph"
)

// Tests for the unexported building blocks: the bucket store and the wire
// record codecs.

func TestBucketStoreBasics(t *testing.T) {
	s := newBucketStore()
	bucketOf := []int64{0, 0, 3, infBucket}
	s.add(0, 0)
	s.add(0, 1)
	s.add(3, 2)
	if got := s.countValid(0, bucketOf); got != 2 {
		t.Errorf("countValid(0) = %d, want 2", got)
	}
	if got := s.nextNonEmpty(0, bucketOf); got != 3 {
		t.Errorf("nextNonEmpty(0) = %d, want 3", got)
	}
	if got := s.nextNonEmpty(3, bucketOf); got != int64(infBucket) {
		t.Errorf("nextNonEmpty(3) = %d, want infBucket", got)
	}
}

func TestBucketStoreStaleEntries(t *testing.T) {
	s := newBucketStore()
	bucketOf := []int64{1, 5}
	// Vertex 0 was inserted into bucket 5, then moved down to bucket 1:
	// the bucket-5 entry is stale.
	s.add(5, 0)
	s.add(1, 0)
	s.add(5, 1)
	if got := s.countValid(5, bucketOf); got != 1 {
		t.Errorf("countValid(5) = %d, want 1 (stale entry filtered)", got)
	}
	if got := s.nextNonEmpty(0, bucketOf); got != 1 {
		t.Errorf("nextNonEmpty(0) = %d, want 1", got)
	}
	// After bucket 1 empties, only the valid bucket-5 entry remains.
	s.drop(1)
	if got := s.nextNonEmpty(1, bucketOf); got != 5 {
		t.Errorf("nextNonEmpty(1) = %d, want 5", got)
	}
	l := s.list(5)
	valid := 0
	for _, li := range l {
		if bucketOf[li] == 5 {
			valid++
		}
	}
	if valid != 1 {
		t.Errorf("bucket 5 kept %d valid entries, want 1", valid)
	}
}

func TestBucketStoreFullyStaleBucketSkipped(t *testing.T) {
	s := newBucketStore()
	bucketOf := []int64{2, 9}
	s.add(4, 0) // stale: vertex 0 is in bucket 2 now
	s.add(9, 1)
	if got := s.nextNonEmpty(2, bucketOf); got != 9 {
		t.Errorf("nextNonEmpty skipped to %d, want 9", got)
	}
	if _, exists := s.lists[4]; exists {
		t.Error("fully stale bucket 4 not deleted")
	}
}

func TestBucketStoreTake(t *testing.T) {
	s := newBucketStore()
	s.add(7, 3)
	l := s.take(7)
	if len(l) != 1 || l[0] != 3 {
		t.Errorf("take(7) = %v", l)
	}
	if s.list(7) != nil {
		t.Error("take did not remove the list")
	}
}

func TestRelaxRecordRoundTrip(t *testing.T) {
	var buf []byte
	buf = appendRelax(buf, 42, 7, 1234567890123)
	buf = appendRelax(buf, 0, 0, 0)
	buf = appendRelax(buf, ^graph.Vertex(0), NoParent, graph.Inf)
	if numRelaxRecords(buf) != 3 {
		t.Fatalf("numRelaxRecords = %d", numRelaxRecords(buf))
	}
	v, par, d := decodeRelax(buf, 0)
	if v != 42 || par != 7 || d != 1234567890123 {
		t.Errorf("record 0 = (%d, %d, %d)", v, par, d)
	}
	v, par, d = decodeRelax(buf, 2)
	if v != ^graph.Vertex(0) || par != NoParent || d != graph.Inf {
		t.Errorf("record 2 = (%d, %d, %d)", v, par, d)
	}
}

func TestRequestRecordRoundTrip(t *testing.T) {
	var buf []byte
	buf = appendRequest(buf, 7, 9, 255)
	u, v, w := decodeRequest(buf, 0)
	if u != 7 || v != 9 || w != 255 {
		t.Errorf("request = (%d, %d, %d)", u, v, w)
	}
}

func TestQuickRecordCodec(t *testing.T) {
	fRelax := func(v, par uint32, d int64) bool {
		buf := appendRelax(nil, v, par, d)
		gv, gp, gd := decodeRelax(buf, 0)
		return gv == v && gp == par && gd == d && len(buf) == relaxRecordSize
	}
	if err := quick.Check(fRelax, nil); err != nil {
		t.Error(err)
	}
	fReq := func(u, v, w uint32) bool {
		buf := appendRequest(nil, u, v, w)
		gu, gv, gw := decodeRequest(buf, 0)
		return gu == u && gv == v && gw == w && len(buf) == requestRecordSize
	}
	if err := quick.Check(fReq, nil); err != nil {
		t.Error(err)
	}
}

func TestModeString(t *testing.T) {
	if ModePush.String() != "push" || ModePull.String() != "pull" {
		t.Error("mode names wrong")
	}
}

func TestPresetShapes(t *testing.T) {
	del := DelOptions(25)
	if !del.EdgeClassification || del.Prune || del.Hybrid || del.IOS {
		t.Errorf("DelOptions misconfigured: %+v", del)
	}
	prune := PruneOptions(25)
	if !prune.Prune || !prune.IOS || prune.Hybrid {
		t.Errorf("PruneOptions misconfigured: %+v", prune)
	}
	opt := OptOptions(25)
	if !opt.Prune || !opt.Hybrid || opt.LoadBalance {
		t.Errorf("OptOptions misconfigured: %+v", opt)
	}
	lb := LBOptOptions(25)
	if !lb.LoadBalance {
		t.Errorf("LBOptOptions misconfigured: %+v", lb)
	}
	if DijkstraOptions().Delta != 1 {
		t.Error("DijkstraOptions Delta != 1")
	}
	if BellmanFordOptions().Delta != BellmanFordDelta {
		t.Error("BellmanFordOptions Delta != BellmanFordDelta")
	}
}
