package sssp

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"parsssp/internal/comm"
	"parsssp/internal/comm/memtransport"
	"parsssp/internal/graph"
	"parsssp/internal/rmat"
)

// asyncOpts returns opts with the execution mode flipped to async.
func asyncOpts(opts Options) Options {
	opts.ExecMode = ExecAsync
	return opts
}

// TestAsyncMatchesBSPMemtransport is the equivalence oracle of the
// asynchronous mode: on strictly positive weights, async must reproduce
// the BSP reference byte for byte — identical distances AND identical
// canonical parent trees — whatever the message arrival order. See
// async.go for why the parents are schedule-independent.
func TestAsyncMatchesBSPMemtransport(t *testing.T) {
	for _, seed := range []uint64{123, 777} {
		g, err := rmat.Generate(rmat.Family1(11, seed))
		if err != nil {
			t.Fatal(err)
		}
		g = positivize(t, g)
		src := testRoot(g)
		for _, ranks := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("seed=%d/ranks=%d", seed, ranks), func(t *testing.T) {
				opts := OptOptions(25)
				opts.Threads = 2
				want := mustRun(t, g, ranks, src, opts)
				got := mustRun(t, g, ranks, src, asyncOpts(opts))
				if !reflect.DeepEqual(got.Dist, want.Dist) {
					t.Fatal("async distances differ from BSP")
				}
				if !reflect.DeepEqual(got.Parent, want.Parent) {
					t.Fatal("async parent tree differs from BSP")
				}
				if got.Stats.AsyncRounds == 0 || got.Stats.AsyncProbes == 0 {
					t.Errorf("async run reported no async work: rounds=%d probes=%d",
						got.Stats.AsyncRounds, got.Stats.AsyncProbes)
				}
				if want.Stats.AsyncRounds != 0 {
					t.Errorf("BSP run reported async rounds: %d", want.Stats.AsyncRounds)
				}
			})
		}
	}
}

// TestAsyncMatchesBSPOverTCP repeats the equivalence oracle over real
// TCP sockets, covering the ctrlAsync frame path end to end.
func TestAsyncMatchesBSPOverTCP(t *testing.T) {
	g := positivize(t, rmatTestGraph)
	src := testRoot(g)
	for _, ranks := range []int{2, 4} {
		for _, wf := range []WireFormat{WireV1, WireV2} {
			t.Run(fmt.Sprintf("ranks=%d/%v", ranks, wf), func(t *testing.T) {
				opts := OptOptions(25)
				opts.Threads = 2
				opts.WireFormat = wf
				want := runOverTCP(t, g, ranks, src, opts)
				got := runOverTCP(t, g, ranks, src, asyncOpts(opts))
				if !reflect.DeepEqual(got.Dist, want.Dist) {
					t.Fatal("async-over-TCP distances differ from BSP")
				}
				if !reflect.DeepEqual(got.Parent, want.Parent) {
					t.Fatal("async-over-TCP parent tree differs from BSP")
				}
			})
		}
	}
}

// TestAsyncMachineReuse proves the reset path: one Machine answering
// repeated async queries from different sources, each checked against
// Dijkstra, with traffic counters restarting from zero.
func TestAsyncMachineReuse(t *testing.T) {
	g := rmatTestGraph
	opts := asyncOpts(OptOptions(25))
	opts.Threads = 2
	m, err := NewMachine(g, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srcs := []graph.Vertex{testRoot(g), 0, 1}
	for _, s := range srcs {
		res, err := m.Query(s)
		if err != nil {
			t.Fatalf("query src=%d: %v", s, err)
		}
		want, err := Dijkstra(g, s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Dist, want.Dist) {
			t.Fatalf("src=%d: async machine query distances wrong", s)
		}
	}
}

// TestAsyncChaos drives the async mode's only collective — the
// termination probe — through every fault offset of its schedule: each
// faulted run must end in a clean error or a correct result, never a
// hang (the test -timeout is the detector) or a panic. Batches pass
// through Faulty untouched and unindexed, so the schedule recorded here
// counts probes only.
func TestAsyncChaos(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	want, err := Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	opts := asyncOpts(chaosOpts())

	// Clean run to learn the probe count (AsyncProbes is collective —
	// identical on every rank — and the engine's probe schedule from a
	// given start is reproducible enough to aim single faults at).
	clean, err := Run(g, chaosRanks, src, opts)
	if err != nil {
		t.Fatalf("clean async run: %v", err)
	}
	span := int(clean.Stats.AsyncProbes)
	if span == 0 {
		t.Fatal("clean async run settled without a probe")
	}

	for idx := 0; idx <= span; idx++ {
		for _, kind := range []comm.FaultKind{comm.FaultError, comm.FaultCrash} {
			group, err := memtransport.New(chaosRanks)
			if err != nil {
				t.Fatal(err)
			}
			transports := group.Endpoints()
			f, err := comm.NewFaulty(transports[1], comm.Fault{Collective: idx, Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			transports[1] = f
			res, err := RunWithTransports(g, blockDist(g.NumVertices(), chaosRanks), src, opts, transports)
			if err != nil {
				// Async probe counts are timing-dependent: a fault beyond
				// this run's schedule fires never, and the run succeeds.
				if !errors.Is(err, comm.ErrInjected) {
					t.Errorf("probe %d %v: error %v does not carry the injected cause", idx, kind, err)
				}
				continue
			}
			if !reflect.DeepEqual(res.Dist, want.Dist) {
				t.Errorf("probe %d %v: faulted run returned wrong distances without an error", idx, kind)
			}
		}
	}
}

// TestAsyncOptionsValidation covers the ExecMode surface of Validate and
// ParseExecMode.
func TestAsyncOptionsValidation(t *testing.T) {
	opts := asyncOpts(OptOptions(25))
	opts.Census = true
	if err := opts.Validate(); err == nil {
		t.Error("Census+Async validated")
	}
	bad := OptOptions(25)
	bad.ExecMode = ExecMode(99)
	if err := bad.Validate(); err == nil {
		t.Error("unknown ExecMode validated")
	}
	neg := asyncOpts(OptOptions(25))
	neg.AsyncFlushBytes = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative AsyncFlushBytes validated")
	}
	for _, tc := range []struct {
		in   string
		want ExecMode
		ok   bool
	}{
		{"bsp", ExecBSP, true},
		{"async", ExecAsync, true},
		{"turbo", 0, false},
	} {
		got, err := ParseExecMode(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("ParseExecMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if ExecBSP.String() != "bsp" || ExecAsync.String() != "async" {
		t.Error("ExecMode.String mismatch")
	}
}

// TestAsyncNeedsBatchTransport checks the graceful error when the
// transport cannot do point-to-point batches.
func TestAsyncNeedsBatchTransport(t *testing.T) {
	g := rmatTestGraph
	group, err := memtransport.New(2)
	if err != nil {
		t.Fatal(err)
	}
	transports := group.Endpoints()
	wrapped := make([]comm.Transport, len(transports))
	for i, tr := range transports {
		wrapped[i] = collectiveOnly{tr}
	}
	_, err = RunWithTransports(g, blockDist(g.NumVertices(), 2), testRoot(g), asyncOpts(OptOptions(25)), wrapped)
	if err == nil {
		t.Fatal("async ran over a transport with no batch support")
	}
}

// collectiveOnly hides any BatchSender the wrapped transport implements.
type collectiveOnly struct{ comm.Transport }
