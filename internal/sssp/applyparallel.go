package sssp

import (
	"fmt"
	"sync"

	"parsssp/internal/graph"
)

// This file implements the ownership-partitioned parallel apply path of
// applyRelaxIn; see the comment there for the model.

// parallelApplyThreshold is the record count below which the serial
// apply path beats spawning workers. A variable so tests can force the
// parallel path on small inputs.
var parallelApplyThreshold = 2048

// bucketAdd is a staged bucket-store insertion.
type bucketAdd struct {
	bucket int64
	li     uint32
}

// applyStaging is one thread's private output of a parallel apply pass.
type applyStaging struct {
	adds   []bucketAdd
	active []uint32
	err    error // damaged input seen by this thread
}

// applyRelaxParallel applies records on T threads: thread t processes
// exactly the records whose target satisfies li mod T == t, so dist,
// parent, bucketOf and mark writes are disjoint across threads. The
// shared structures (bucket store, nextActive) receive per-thread
// staging merged by a short serial pass. Damaged input (an unowned
// vertex, a malformed buffer) is recorded per thread and surfaced after
// the join; the ownership check doubles as the bounds check that keeps a
// corrupt vertex id from panicking the scan.
func (r *queryState) applyRelaxParallel(in [][]byte, activate bool, T int) error {
	if len(r.applyStage) < T {
		r.applyStage = make([]applyStaging, T)
	}
	stage := r.applyStage[:T]
	for t := range stage {
		stage[t].adds = stage[t].adds[:0]
		stage[t].active = stage[t].active[:0]
		stage[t].err = nil
	}
	var wg sync.WaitGroup
	for t := 0; t < T; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			st := &stage[t]
			k := r.curK
			wf := r.opts.WireFormat
			for src, buf := range in {
				rd := newRelaxReader(buf, wf)
				for {
					v, tpar, nd, ok := rd.next()
					if !ok {
						break
					}
					par, zw := untagParent(tpar)
					li := r.local(v)
					if uint(li) >= uint(r.nLocal) {
						st.err = r.corruptErr(src, "relax",
							fmt.Errorf("vertex %d is not owned by this rank", v))
						return
					}
					if li%T != t {
						continue
					}
					if nd >= r.dist[li] {
						// Canonical parent election on positive-weight ties,
						// as in the serial path; the write is still
						// thread-owned.
						if nd == r.dist[li] && nd < graph.Inf && !zw && par < r.parent[li] && v != r.src {
							r.parent[li] = par
						}
						continue
					}
					r.dist[li] = nd
					r.parent[li] = par
					if r.hybridMode {
						if r.mark[li] != r.stamp {
							r.mark[li] = r.stamp
							st.active = append(st.active, uint32(li))
						}
						continue
					}
					// Mirror of applyRelaxIn's policy bookkeeping; the
					// pending flags are thread-owned like dist/bucketOf, and
					// store insertions stage per thread.
					switch r.opts.Policy {
					case PolicyRadius:
						if activate && nd <= r.phBound && r.mark[li] != r.stamp {
							r.mark[li] = r.stamp
							st.active = append(st.active, uint32(li))
						}
					case PolicyRho:
						nb := r.step.key(nd)
						moved := nb != r.bucketOf[li]
						r.bucketOf[li] = nb
						if !r.pending[li] {
							r.pending[li] = true
							st.adds = append(st.adds, bucketAdd{nb, uint32(li)})
						} else if moved {
							st.adds = append(st.adds, bucketAdd{nb, uint32(li)})
						}
					default:
						nb := nd / r.dd
						if nb != r.bucketOf[li] {
							r.bucketOf[li] = nb
							st.adds = append(st.adds, bucketAdd{nb, uint32(li)})
						}
						if activate && nb == k && r.mark[li] != r.stamp {
							r.mark[li] = r.stamp
							st.active = append(st.active, uint32(li))
						}
					}
				}
				if err := rd.err(); err != nil {
					st.err = r.corruptErr(src, "relax", err)
					return
				}
			}
		}(t)
	}
	wg.Wait()
	for t := range stage {
		if stage[t].err != nil {
			// Every thread scans the same buffers, so each sees the same
			// damage; the first thread's report suffices.
			return stage[t].err
		}
	}
	for t := range stage {
		for _, a := range stage[t].adds {
			r.store.add(a.bucket, a.li)
		}
		r.nextActive = append(r.nextActive, stage[t].active...)
	}
	return nil
}
