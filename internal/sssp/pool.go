package sssp

import (
	"errors"
	"fmt"
	"sync"

	"parsssp/internal/comm"
	"parsssp/internal/comm/memtransport"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
)

// QueryPool answers concurrent SSSP queries over one loaded graph. The
// immutable graph plane (rankGraph: edge classification, histograms,
// partition tables) is built once per rank and shared read-only by N
// slots, each slot a full set of per-rank query planes (queryState) over
// its own independent communicator — a memtransport sub-group in
// process, a tcptransport channel set across processes (see RankServer).
// Query blocks until a slot frees up, so admission is a simple bounded
// queue: callers are admitted in approximately the order they arrived
// (the runtime wakes channel waiters FIFO), and at most N queries run at
// once.
//
// The graph is versioned (PlaneSet): ApplyUpdates advances it one edge
// batch at a time, copy-on-write, without stopping the pool. In-flight
// queries finish on the version they pinned at checkout; each slot
// catches up lazily the next time it is checked out — repairing its
// cached tree incrementally (dynamic.go) when the new query repeats the
// slot's last source, recomputing from scratch otherwise.
//
// This is the serving shape of the ROADMAP's north star: the per-graph
// work (the weights) is paid once, the per-query work (the activations)
// is pooled and reused, and concurrent streams no longer rebuild edge
// classification or message buffers per stream.
//
// Failure is slot-scoped. A query that fails poisons only its slot's
// communicator; other slots keep answering. The pool then revives the
// slot with a fresh communicator when it can (in-process pools always
// can), or retires it; when the last slot is gone every pending and
// future Query fails with the recorded cause.
//
// Options.Trace is the one option that does not compose with
// concurrency: it would interleave lines from all slots. Leave it nil on
// pools with more than one slot.
type QueryPool struct {
	g    *graph.Graph // version-0 graph (the vertex set never changes)
	pd   partition.Dist
	opts Options // owned copy; every plane's opts points here

	set *PlaneSet // versioned planes, shared by all slots

	slots   chan *poolSlot
	refresh func() ([]comm.Transport, error) // fresh slot communicator, nil if not revivable

	mu       sync.Mutex
	live     int
	lastErr  error         // cause recorded when a slot is retired
	dead     chan struct{} // closed when live reaches 0
	closedCh chan struct{} // closed by Close
	closed   bool
}

// poolSlot is one checkout unit: per-rank query planes over one
// independent communicator, pinned to the graph version its engines
// point at, plus the provenance of the tree sitting in the engines (so
// checkout can decide between serving it cached, repairing it, and
// recomputing).
type poolSlot struct {
	id      int
	engines []*queryState

	pv        *planeVersion // pinned version the engines point at
	treeSrc   graph.Vertex  // source of the engines' finished tree
	treeValid bool          // the engines hold a correct tree for treeSrc at pv
}

// NewQueryPool builds an in-process pool: numRanks ranks (block
// distribution), slots concurrent query slots, each slot on its own
// memtransport sub-group. Failed slots are revived automatically with a
// fresh sub-group.
func NewQueryPool(g *graph.Graph, numRanks, slots int, opts Options) (*QueryPool, error) {
	pd, err := partition.New(partition.Block, g.NumVertices(), numRanks)
	if err != nil {
		return nil, err
	}
	group, err := memtransport.New(numRanks)
	if err != nil {
		return nil, err
	}
	groups := make([][]comm.Transport, slots)
	for s := range groups {
		sub, err := group.SubGroup()
		if err != nil {
			return nil, err
		}
		groups[s] = sub.Endpoints()
	}
	p, err := NewQueryPoolWithGroups(g, pd, opts, groups)
	if err != nil {
		return nil, err
	}
	p.refresh = func() ([]comm.Transport, error) {
		sub, err := group.SubGroup()
		if err != nil {
			return nil, err
		}
		return sub.Endpoints(), nil
	}
	return p, nil
}

// NewQueryPoolWithGroups builds a pool over caller-provided slot
// communicators: groups[s][r] is the transport of rank r in slot s. All
// groups must span the same ranks as pd. It exists so tests can
// interpose wrappers (comm.Faulty on one slot, leaving the others
// clean) and so custom transports can back a pool. Slots whose queries
// fail are retired, not revived — the pool cannot mint transports it
// did not create.
func NewQueryPoolWithGroups(g *graph.Graph, pd partition.Dist, opts Options,
	groups [][]comm.Transport) (*QueryPool, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(groups) == 0 {
		return nil, errors.New("sssp: pool needs at least one slot")
	}
	p := &QueryPool{
		g:        g,
		pd:       pd,
		opts:     opts,
		slots:    make(chan *poolSlot, len(groups)),
		live:     len(groups),
		dead:     make(chan struct{}),
		closedCh: make(chan struct{}),
	}
	ranks := make([]int, pd.NumRanks())
	for r := range ranks {
		ranks[r] = r
	}
	set, err := NewPlaneSet(g, pd, &p.opts, ranks)
	if err != nil {
		return nil, err
	}
	p.set = set
	for s, ts := range groups {
		slot, err := p.newSlot(s, ts)
		if err != nil {
			return nil, err
		}
		p.slots <- slot
	}
	return p, nil
}

// newSlot builds one slot's per-rank query planes over the given
// transports (one per rank, in rank order), pinned to the current graph
// version.
func (p *QueryPool) newSlot(id int, ts []comm.Transport) (*poolSlot, error) {
	if len(ts) != p.pd.NumRanks() {
		return nil, fmt.Errorf("sssp: slot %d has %d transports for %d ranks", id, len(ts), p.pd.NumRanks())
	}
	slot := &poolSlot{id: id, pv: p.set.Acquire()}
	for r, t := range ts {
		if t.Rank() != r {
			p.set.Release(slot.pv)
			return nil, fmt.Errorf("sssp: slot %d transport %d reports rank %d", id, r, t.Rank())
		}
		eng, err := newQueryState(slot.pv.Plane(r), t)
		if err != nil {
			p.set.Release(slot.pv)
			return nil, err
		}
		slot.engines = append(slot.engines, eng)
	}
	return slot, nil
}

// Query runs one SSSP query from src, blocking until a slot is free.
// Queries on distinct slots run fully concurrently and return exactly
// what a sequential Machine.Query over the same graph and options
// returns — identical distances, parents and algorithm counters; the
// only shared state between slots is the read-only graph plane.
//
// A query runs on the graph version that is current at checkout. When
// the slot's cached tree answers it — same source, and either the same
// version or one reachable by incremental repair — the distances and
// parents are still exactly a fresh run's, but Stats describe the run
// (possibly on an earlier version) that built the tree, not a
// recompute.
//
// A failed query returns its root cause to this caller only. The slot is
// revived with a fresh communicator when the pool owns one (NewQueryPool
// pools), otherwise retired; when no slots remain, Query fails
// immediately with the cause that killed the last slot.
func (p *QueryPool) Query(src graph.Vertex) (*Result, error) {
	if int(src) >= p.g.NumVertices() {
		return nil, fmt.Errorf("sssp: source %d out of range", src)
	}
	var slot *poolSlot
	select {
	case slot = <-p.slots:
	case <-p.closedCh:
		return nil, errors.New("sssp: query pool is closed")
	case <-p.dead:
		return nil, fmt.Errorf("sssp: query pool has no live slots: %w", p.cause())
	}

	//parssspvet:allow poolsafety -- the pin is released on the same-version path below or transfers to slot.pv (repairSlot / the migrate branch); disposeSlot releases it
	pv := p.set.Acquire()
	if pv == slot.pv {
		p.set.Release(pv) // the slot holds its own pin on this version
		if slot.treeValid && slot.treeSrc == src {
			return p.finish(slot) // cached: the tree is already in the engines
		}
		return p.runSlot(slot, src)
	}
	// The graph moved under the slot. A valid tree for the requested
	// source catches up through the batch history — the batches applied
	// since the slot's version concatenate into one repair (dynamic.go
	// explains why that composes) — while anything else repoints at the
	// new plane and recomputes. ok=false means the bounded history no
	// longer reaches back to the slot's version.
	if slot.treeValid && slot.treeSrc == src {
		if batches, ok := p.set.Since(slot.pv.Version()); ok {
			var all UpdateBatch
			for _, b := range batches {
				all = append(all, b...)
			}
			if err := p.repairSlot(slot, pv, all); err != nil {
				return nil, err
			}
			return p.finish(slot)
		}
	}
	for _, eng := range slot.engines {
		eng.rankGraph = pv.Plane(eng.rank)
	}
	p.set.Release(slot.pv)
	slot.pv = pv
	slot.treeValid = false
	return p.runSlot(slot, src)
}

// runSlot runs a full query from src on a checked-out slot whose
// engines already point at slot.pv's planes.
func (p *QueryPool) runSlot(slot *poolSlot, src graph.Vertex) (*Result, error) {
	errs := make([]error, len(slot.engines))
	var wg sync.WaitGroup
	for i, eng := range slot.engines {
		wg.Add(1)
		go func(i int, eng *queryState) {
			defer wg.Done()
			eng.reset(src)
			if err := eng.run(); err != nil {
				comm.Abort(eng.t, err)
				errs[i] = err
			}
		}(i, eng)
	}
	wg.Wait()
	if err := firstCause(errs); err != nil {
		slot.treeValid = false
		p.retire(slot, err)
		return nil, err
	}
	slot.treeSrc, slot.treeValid = src, true
	return p.finish(slot)
}

// repairSlot moves a checked-out slot's finished tree to pv by one
// lockstep incremental repair over the concatenated batch. On success
// the slot's tree is valid for pv; on failure the slot is retired (the
// failing rank aborted the slot's communicator) and the error returned.
// Either way the slot's pin moves to pv.
func (p *QueryPool) repairSlot(slot *poolSlot, pv *planeVersion, batch UpdateBatch) error {
	p.set.Release(slot.pv)
	slot.pv = pv
	slot.treeValid = false
	errs := make([]error, len(slot.engines))
	var wg sync.WaitGroup
	for i, eng := range slot.engines {
		wg.Add(1)
		go func(i int, eng *queryState) {
			defer wg.Done()
			if _, err := eng.repair(pv.Plane(eng.rank), batch); err != nil {
				comm.Abort(eng.t, err)
				errs[i] = err
			}
		}(i, eng)
	}
	wg.Wait()
	if err := firstCause(errs); err != nil {
		p.retire(slot, err)
		return err
	}
	slot.treeValid = true
	return nil
}

// finish assembles the checked-out slot's engines into a Result and
// returns the slot to the free list. assemble copies the local arrays
// into fresh global slices, so the Result outlives the slot's next
// checkout.
func (p *QueryPool) finish(slot *poolSlot) (*Result, error) {
	ranks := make([]*RankResult, len(slot.engines))
	for i, eng := range slot.engines {
		ranks[i] = &RankResult{
			Rank:        eng.rank,
			LocalDist:   eng.dist,
			LocalParent: eng.parent,
			Stats:       eng.stats,
		}
	}
	res, aerr := assemble(p.g, p.pd, ranks)
	p.checkin(slot)
	return res, aerr
}

// ApplyUpdates advances the pool's graph one version by applying batch
// copy-on-write (see UpdateBatch). The pool keeps serving throughout:
// queries in flight finish on the version they pinned, and each slot
// migrates lazily at its next checkout. Returns the new version number.
// A failed apply (an invalid batch) changes nothing.
func (p *QueryPool) ApplyUpdates(batch UpdateBatch) (uint64, error) {
	pv, err := p.set.Apply(batch)
	if err != nil {
		return 0, err
	}
	v := pv.Version()
	p.set.Release(pv) // slots pin versions; the pool itself holds none
	return v, nil
}

// Version returns the current graph version (the number of update
// batches applied).
func (p *QueryPool) Version() uint64 { return p.set.Version() }

// checkin returns a healthy slot to the free list (or disposes of it if
// the pool closed while the query ran).
func (p *QueryPool) checkin(slot *poolSlot) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		p.disposeSlot(slot)
		return
	}
	p.slots <- slot
}

// retire handles a slot whose query failed: its communicator is
// poisoned, so the slot either gets a fresh one (revival) or leaves the
// pool for good. The last retirement marks the pool dead so blocked and
// future callers fail instead of waiting for a slot that cannot come.
func (p *QueryPool) retire(slot *poolSlot, cause error) {
	if p.refresh != nil {
		if ts, err := p.refresh(); err == nil {
			if fresh, err := p.rebind(slot, ts); err == nil {
				p.checkin(fresh)
				return
			}
		}
	}
	p.disposeSlot(slot)
	p.mu.Lock()
	if p.lastErr == nil {
		p.lastErr = cause
	}
	p.live--
	if p.live == 0 {
		close(p.dead)
	}
	p.mu.Unlock()
}

// rebind gives a slot's engines a fresh communicator, closing the
// poisoned one. The engines' arrays, buffers and worker pools are kept —
// revival costs one transport swap, not a rebuild.
func (p *QueryPool) rebind(slot *poolSlot, ts []comm.Transport) (*poolSlot, error) {
	if len(ts) != len(slot.engines) {
		return nil, fmt.Errorf("sssp: refresh returned %d transports for %d ranks", len(ts), len(slot.engines))
	}
	for r, eng := range slot.engines {
		if ts[r].Rank() != r {
			return nil, fmt.Errorf("sssp: refresh transport %d reports rank %d", r, ts[r].Rank())
		}
		//parssspvet:allow transporterr -- the old transport is poisoned; its close error carries no information
		eng.t.Close()
		eng.t = comm.NewCounting(ts[r])
	}
	return slot, nil
}

// cause returns the error that retired the pool's last slot.
func (p *QueryPool) cause() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastErr == nil {
		return errors.New("unknown cause")
	}
	return p.lastErr
}

// disposeSlot releases one slot's goroutines, transports and version
// pin.
func (p *QueryPool) disposeSlot(slot *poolSlot) {
	for _, eng := range slot.engines {
		eng.stopWorkers()
		//parssspvet:allow transporterr -- disposing a retired slot; the transport is already poisoned
		eng.t.Close()
	}
	p.set.Release(slot.pv)
}

// NumRanks returns the number of ranks of the pool's machine.
func (p *QueryPool) NumRanks() int { return p.pd.NumRanks() }

// Slots returns the number of slots the pool was built with (live or
// retired).
func (p *QueryPool) Slots() int { return cap(p.slots) }

// Close releases the pool: every idle slot's worker goroutines and
// transports are torn down now, checked-out slots as their queries
// finish. Blocked and future Query calls fail immediately. Close does
// not wait for in-flight queries.
func (p *QueryPool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.closedCh)
	p.mu.Unlock()
	for {
		select {
		case slot := <-p.slots:
			p.disposeSlot(slot)
		default:
			return nil
		}
	}
}

// RankServer is the one-rank building block of a multi-process query
// pool: the rank's versioned graph planes plus N query slots, each over
// a caller-provided transport of the same rank (in deployment, N
// channels of one tcptransport mesh — see cmd/ssspd -serve). Every rank
// of the machine runs one RankServer with the same graph, options and
// slot count; slot s's Query and ApplyUpdates must be driven in lockstep
// on every rank, while distinct slots are fully concurrent.
type RankServer struct {
	opts  Options // owned copy; the planes' opts point here
	rank  int
	set   *PlaneSet
	slots []*serverSlot
}

// serverSlot is one lockstep slot: its engine, the version the engine's
// plane is pinned at, and the provenance of the tree in the engine.
// Slots advance through versions independently — the driver applies
// each update batch to every slot (ApplyUpdates), and EnsureVersion
// makes the underlying graph rebuild happen once per process.
type serverSlot struct {
	eng       *queryState
	pv        *planeVersion
	treeSrc   graph.Vertex
	treeValid bool
}

// NewRankServer builds this rank's server. transports[s] is slot s's
// transport; all must report the same rank and size.
func NewRankServer(g *graph.Graph, pd partition.Dist, opts Options,
	transports []comm.Transport) (*RankServer, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(transports) == 0 {
		return nil, errors.New("sssp: rank server needs at least one slot")
	}
	s := &RankServer{opts: opts, rank: transports[0].Rank()}
	set, err := NewPlaneSet(g, pd, &s.opts, []int{s.rank})
	if err != nil {
		return nil, err
	}
	s.set = set
	for i, t := range transports {
		slot := &serverSlot{pv: set.Acquire()}
		eng, err := newQueryState(slot.pv.Plane(s.rank), t)
		if err != nil {
			set.Release(slot.pv)
			return nil, fmt.Errorf("sssp: slot %d: %w", i, err)
		}
		slot.eng = eng
		s.slots = append(s.slots, slot)
	}
	return s, nil
}

// Slots returns the number of query slots.
func (s *RankServer) Slots() int { return len(s.slots) }

// Version returns the current graph version of this process.
func (s *RankServer) Version() uint64 { return s.set.Version() }

// Query runs this rank's part of one query on the given slot. Every rank
// must call Query with the same slot and source (the lockstep collective
// discipline); concurrent calls must use distinct slots. When the slot's
// engine already holds the tree for src — the previous query on this
// slot asked the same source, or an ApplyUpdates repaired it — the
// result is served from it without a run, collective-free (valid
// because the tree's provenance is lockstep-identical on every rank).
// A failed query aborts the slot's transport — poisoning that slot on
// every rank, and nothing else — and leaves the slot unusable.
func (s *RankServer) Query(slot int, src graph.Vertex) (*RankResult, error) {
	if slot < 0 || slot >= len(s.slots) {
		return nil, fmt.Errorf("sssp: slot %d out of range [0,%d)", slot, len(s.slots))
	}
	sl := s.slots[slot]
	if int(src) >= sl.pv.Graph().NumVertices() {
		return nil, fmt.Errorf("sssp: source %d out of range", src)
	}
	eng := sl.eng
	if !sl.treeValid || sl.treeSrc != src {
		eng.reset(src)
		if err := eng.run(); err != nil {
			sl.treeValid = false
			comm.Abort(eng.t, err)
			return nil, err
		}
		sl.treeSrc, sl.treeValid = src, true
	}
	return &RankResult{
		Rank:        eng.rank,
		LocalDist:   eng.dist,
		LocalParent: eng.parent,
		Stats:       eng.stats,
	}, nil
}

// ApplyUpdates moves one slot to graph version target by applying batch
// — a collective: every rank must call it in lockstep with the same
// slot, target and batch, like a query. The process-wide graph rebuild
// happens exactly once (EnsureVersion); each slot then migrates its own
// engine — an incremental repair of its finished tree when it has one,
// a plane repoint otherwise. target must be the slot's current version
// plus one: the driver applies every batch to every slot, in order.
//
// Repair stats are returned when a repair ran (nil otherwise). A failed
// repair aborts the slot's transport like a failed query.
func (s *RankServer) ApplyUpdates(slot int, target uint64, batch UpdateBatch) (*RepairStats, error) {
	if slot < 0 || slot >= len(s.slots) {
		return nil, fmt.Errorf("sssp: slot %d out of range [0,%d)", slot, len(s.slots))
	}
	sl := s.slots[slot]
	if sl.pv.Version()+1 != target {
		return nil, fmt.Errorf("sssp: slot %d at version %d cannot apply batch for version %d",
			slot, sl.pv.Version(), target)
	}
	pv, err := s.set.EnsureVersion(target, batch)
	if err != nil {
		return nil, err
	}
	s.set.Release(sl.pv)
	sl.pv = pv
	if !sl.treeValid {
		sl.eng.rankGraph = pv.Plane(s.rank)
		return nil, nil
	}
	rs, err := sl.eng.repair(pv.Plane(s.rank), batch)
	if err != nil {
		sl.treeValid = false
		comm.Abort(sl.eng.t, err)
		return nil, err
	}
	return &rs, nil
}

// Close releases the server's worker goroutines and transports. Queries
// must not be in flight.
func (s *RankServer) Close() error {
	var err error
	for _, sl := range s.slots {
		sl.eng.stopWorkers()
		err = errors.Join(err, sl.eng.t.Close())
		s.set.Release(sl.pv)
	}
	return err
}
