package sssp

import (
	"errors"
	"fmt"
	"sync"

	"parsssp/internal/comm"
	"parsssp/internal/comm/memtransport"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
)

// QueryPool answers concurrent SSSP queries over one loaded graph. The
// immutable graph plane (rankGraph: edge classification, histograms,
// partition tables) is built once per rank and shared read-only by N
// slots, each slot a full set of per-rank query planes (queryState) over
// its own independent communicator — a memtransport sub-group in
// process, a tcptransport channel set across processes (see RankServer).
// Query blocks until a slot frees up, so admission is a simple bounded
// queue: callers are admitted in approximately the order they arrived
// (the runtime wakes channel waiters FIFO), and at most N queries run at
// once.
//
// This is the serving shape of the ROADMAP's north star: the per-graph
// work (the weights) is paid once, the per-query work (the activations)
// is pooled and reused, and concurrent streams no longer rebuild edge
// classification or message buffers per stream.
//
// Failure is slot-scoped. A query that fails poisons only its slot's
// communicator; other slots keep answering. The pool then revives the
// slot with a fresh communicator when it can (in-process pools always
// can), or retires it; when the last slot is gone every pending and
// future Query fails with the recorded cause.
//
// Options.Trace is the one option that does not compose with
// concurrency: it would interleave lines from all slots. Leave it nil on
// pools with more than one slot.
type QueryPool struct {
	g    *graph.Graph
	pd   partition.Dist
	opts Options // owned copy; every plane's opts points here

	planes []*rankGraph // one per rank, shared by all slots

	slots   chan *poolSlot
	refresh func() ([]comm.Transport, error) // fresh slot communicator, nil if not revivable

	mu       sync.Mutex
	live     int
	lastErr  error         // cause recorded when a slot is retired
	dead     chan struct{} // closed when live reaches 0
	closedCh chan struct{} // closed by Close
	closed   bool
}

// poolSlot is one checkout unit: per-rank query planes over one
// independent communicator.
type poolSlot struct {
	id      int
	engines []*queryState
}

// NewQueryPool builds an in-process pool: numRanks ranks (block
// distribution), slots concurrent query slots, each slot on its own
// memtransport sub-group. Failed slots are revived automatically with a
// fresh sub-group.
func NewQueryPool(g *graph.Graph, numRanks, slots int, opts Options) (*QueryPool, error) {
	pd, err := partition.New(partition.Block, g.NumVertices(), numRanks)
	if err != nil {
		return nil, err
	}
	group, err := memtransport.New(numRanks)
	if err != nil {
		return nil, err
	}
	groups := make([][]comm.Transport, slots)
	for s := range groups {
		sub, err := group.SubGroup()
		if err != nil {
			return nil, err
		}
		groups[s] = sub.Endpoints()
	}
	p, err := NewQueryPoolWithGroups(g, pd, opts, groups)
	if err != nil {
		return nil, err
	}
	p.refresh = func() ([]comm.Transport, error) {
		sub, err := group.SubGroup()
		if err != nil {
			return nil, err
		}
		return sub.Endpoints(), nil
	}
	return p, nil
}

// NewQueryPoolWithGroups builds a pool over caller-provided slot
// communicators: groups[s][r] is the transport of rank r in slot s. All
// groups must span the same ranks as pd. It exists so tests can
// interpose wrappers (comm.Faulty on one slot, leaving the others
// clean) and so custom transports can back a pool. Slots whose queries
// fail are retired, not revived — the pool cannot mint transports it
// did not create.
func NewQueryPoolWithGroups(g *graph.Graph, pd partition.Dist, opts Options,
	groups [][]comm.Transport) (*QueryPool, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(groups) == 0 {
		return nil, errors.New("sssp: pool needs at least one slot")
	}
	maxW := g.MaxWeight()
	p := &QueryPool{
		g:        g,
		pd:       pd,
		opts:     opts,
		slots:    make(chan *poolSlot, len(groups)),
		live:     len(groups),
		dead:     make(chan struct{}),
		closedCh: make(chan struct{}),
	}
	p.planes = make([]*rankGraph, pd.NumRanks())
	for r := range p.planes {
		plane, err := newRankGraph(g, pd, r, &p.opts, maxW)
		if err != nil {
			return nil, err
		}
		p.planes[r] = plane
	}
	for s, ts := range groups {
		slot, err := p.newSlot(s, ts)
		if err != nil {
			return nil, err
		}
		p.slots <- slot
	}
	return p, nil
}

// newSlot builds one slot's per-rank query planes over the given
// transports (one per rank, in rank order).
func (p *QueryPool) newSlot(id int, ts []comm.Transport) (*poolSlot, error) {
	if len(ts) != len(p.planes) {
		return nil, fmt.Errorf("sssp: slot %d has %d transports for %d ranks", id, len(ts), len(p.planes))
	}
	slot := &poolSlot{id: id}
	for r, t := range ts {
		if t.Rank() != r {
			return nil, fmt.Errorf("sssp: slot %d transport %d reports rank %d", id, r, t.Rank())
		}
		eng, err := newQueryState(p.planes[r], t)
		if err != nil {
			return nil, err
		}
		slot.engines = append(slot.engines, eng)
	}
	return slot, nil
}

// Query runs one SSSP query from src, blocking until a slot is free.
// Queries on distinct slots run fully concurrently and return exactly
// what a sequential Machine.Query over the same graph and options
// returns — identical distances, parents and algorithm counters; the
// only shared state between slots is the read-only graph plane.
//
// A failed query returns its root cause to this caller only. The slot is
// revived with a fresh communicator when the pool owns one (NewQueryPool
// pools), otherwise retired; when no slots remain, Query fails
// immediately with the cause that killed the last slot.
func (p *QueryPool) Query(src graph.Vertex) (*Result, error) {
	if int(src) >= p.g.NumVertices() {
		return nil, fmt.Errorf("sssp: source %d out of range", src)
	}
	var slot *poolSlot
	select {
	case slot = <-p.slots:
	case <-p.closedCh:
		return nil, errors.New("sssp: query pool is closed")
	case <-p.dead:
		return nil, fmt.Errorf("sssp: query pool has no live slots: %w", p.cause())
	}

	errs := make([]error, len(slot.engines))
	var wg sync.WaitGroup
	for i, eng := range slot.engines {
		wg.Add(1)
		go func(i int, eng *queryState) {
			defer wg.Done()
			eng.reset(src)
			if err := eng.run(); err != nil {
				comm.Abort(eng.t, err)
				errs[i] = err
			}
		}(i, eng)
	}
	wg.Wait()
	if err := firstCause(errs); err != nil {
		p.retire(slot, err)
		return nil, err
	}
	ranks := make([]*RankResult, len(slot.engines))
	for i, eng := range slot.engines {
		ranks[i] = &RankResult{
			Rank:        eng.rank,
			LocalDist:   eng.dist,
			LocalParent: eng.parent,
			Stats:       eng.stats,
		}
	}
	// assemble copies local arrays into fresh global slices, so the
	// Result outlives the slot's next checkout.
	res, aerr := assemble(p.g, p.pd, ranks)
	p.checkin(slot)
	return res, aerr
}

// checkin returns a healthy slot to the free list (or disposes of it if
// the pool closed while the query ran).
func (p *QueryPool) checkin(slot *poolSlot) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		disposeSlot(slot)
		return
	}
	p.slots <- slot
}

// retire handles a slot whose query failed: its communicator is
// poisoned, so the slot either gets a fresh one (revival) or leaves the
// pool for good. The last retirement marks the pool dead so blocked and
// future callers fail instead of waiting for a slot that cannot come.
func (p *QueryPool) retire(slot *poolSlot, cause error) {
	if p.refresh != nil {
		if ts, err := p.refresh(); err == nil {
			if fresh, err := p.rebind(slot, ts); err == nil {
				p.checkin(fresh)
				return
			}
		}
	}
	disposeSlot(slot)
	p.mu.Lock()
	if p.lastErr == nil {
		p.lastErr = cause
	}
	p.live--
	if p.live == 0 {
		close(p.dead)
	}
	p.mu.Unlock()
}

// rebind gives a slot's engines a fresh communicator, closing the
// poisoned one. The engines' arrays, buffers and worker pools are kept —
// revival costs one transport swap, not a rebuild.
func (p *QueryPool) rebind(slot *poolSlot, ts []comm.Transport) (*poolSlot, error) {
	if len(ts) != len(slot.engines) {
		return nil, fmt.Errorf("sssp: refresh returned %d transports for %d ranks", len(ts), len(slot.engines))
	}
	for r, eng := range slot.engines {
		if ts[r].Rank() != r {
			return nil, fmt.Errorf("sssp: refresh transport %d reports rank %d", r, ts[r].Rank())
		}
		//parssspvet:allow transporterr -- the old transport is poisoned; its close error carries no information
		eng.t.Close()
		eng.t = comm.NewCounting(ts[r])
	}
	return slot, nil
}

// cause returns the error that retired the pool's last slot.
func (p *QueryPool) cause() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastErr == nil {
		return errors.New("unknown cause")
	}
	return p.lastErr
}

// disposeSlot releases one slot's goroutines and transports.
func disposeSlot(slot *poolSlot) {
	for _, eng := range slot.engines {
		eng.stopWorkers()
		//parssspvet:allow transporterr -- disposing a retired slot; the transport is already poisoned
		eng.t.Close()
	}
}

// NumRanks returns the number of ranks of the pool's machine.
func (p *QueryPool) NumRanks() int { return len(p.planes) }

// Slots returns the number of slots the pool was built with (live or
// retired).
func (p *QueryPool) Slots() int { return cap(p.slots) }

// Close releases the pool: every idle slot's worker goroutines and
// transports are torn down now, checked-out slots as their queries
// finish. Blocked and future Query calls fail immediately. Close does
// not wait for in-flight queries.
func (p *QueryPool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.closedCh)
	p.mu.Unlock()
	for {
		select {
		case slot := <-p.slots:
			disposeSlot(slot)
		default:
			return nil
		}
	}
}

// RankServer is the one-rank building block of a multi-process query
// pool: the rank's shared graph plane plus N query slots, each over a
// caller-provided transport of the same rank (in deployment, N channels
// of one tcptransport mesh — see cmd/ssspd -serve). Every rank of the
// machine runs one RankServer with the same graph, options and slot
// count; slot s's Query must be driven in lockstep on every rank, while
// distinct slots are fully concurrent.
type RankServer struct {
	opts  Options // owned copy; the plane's opts points here
	plane *rankGraph
	slots []*queryState
}

// NewRankServer builds this rank's server. transports[s] is slot s's
// transport; all must report the same rank and size. maxWeight must be
// the graph's maximum edge weight, or 0 to compute it (all ranks must
// agree on it).
func NewRankServer(g *graph.Graph, pd partition.Dist, opts Options,
	transports []comm.Transport, maxWeight graph.Weight) (*RankServer, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(transports) == 0 {
		return nil, errors.New("sssp: rank server needs at least one slot")
	}
	if maxWeight == 0 {
		maxWeight = g.MaxWeight()
	}
	s := &RankServer{opts: opts}
	plane, err := newRankGraph(g, pd, transports[0].Rank(), &s.opts, maxWeight)
	if err != nil {
		return nil, err
	}
	s.plane = plane
	for i, t := range transports {
		eng, err := newQueryState(plane, t)
		if err != nil {
			return nil, fmt.Errorf("sssp: slot %d: %w", i, err)
		}
		s.slots = append(s.slots, eng)
	}
	return s, nil
}

// Slots returns the number of query slots.
func (s *RankServer) Slots() int { return len(s.slots) }

// Query runs this rank's part of one query on the given slot. Every rank
// must call Query with the same slot and source (the lockstep collective
// discipline); concurrent calls must use distinct slots. A failed query
// aborts the slot's transport — poisoning that slot on every rank, and
// nothing else — and leaves the slot unusable.
func (s *RankServer) Query(slot int, src graph.Vertex) (*RankResult, error) {
	if slot < 0 || slot >= len(s.slots) {
		return nil, fmt.Errorf("sssp: slot %d out of range [0,%d)", slot, len(s.slots))
	}
	if int(src) >= s.plane.g.NumVertices() {
		return nil, fmt.Errorf("sssp: source %d out of range", src)
	}
	eng := s.slots[slot]
	eng.reset(src)
	if err := eng.run(); err != nil {
		comm.Abort(eng.t, err)
		return nil, err
	}
	return &RankResult{
		Rank:        eng.rank,
		LocalDist:   eng.dist,
		LocalParent: eng.parent,
		Stats:       eng.stats,
	}, nil
}

// Close releases the server's worker goroutines and transports. Queries
// must not be in flight.
func (s *RankServer) Close() error {
	var err error
	for _, eng := range s.slots {
		eng.stopWorkers()
		err = errors.Join(err, eng.t.Close())
	}
	return err
}
