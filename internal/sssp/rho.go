package sssp

import (
	"fmt"

	"parsssp/internal/comm"
	"parsssp/internal/graph"
)

// This file is the BSP driver of the ρ-stepping policy (Dong et al.,
// arXiv 2105.06145): a lazy-batched priority queue over the existing
// lazy-deletion bucketStore. Vertices are filed under a quantized
// distance key (stepper.key — the quantum is a per-graph weight
// statistic resolved on the plane); each epoch agrees on the globally
// smallest pending key by Allreduce-Min, extracts up to ⌈ρ/P⌉ of that
// bucket's pending members per rank, relaxes their full adjacency in ONE
// phase (no inner fixpoint, no settling), and exchanges. The pending
// discipline is the asynchronous mode's re-entrant one: an improved
// vertex re-files and re-arms its pending flag, so unlike Δ-stepping a
// vertex can be extracted many times — the batch cap is what keeps each
// extraction close to the priority order, and the priority order is what
// keeps the number of re-extractions small. Termination is queue
// exhaustion: all ranks report no valid pending entry.
//
// Settle-condition soundness is trivial — nothing is ever settled before
// the queue drains, and a drained queue means no improvement is in
// flight anywhere (BSP exchanges are fully applied each epoch), i.e. the
// label-correcting fixpoint has been reached. Canonical parents follow
// as for the async mode: every strict improvement re-queues the vertex,
// so every reached vertex relaxes its full adjacency at its final
// distance at least once.

// runRho executes the full query on this rank under PolicyRho.
func (r *queryState) runRho() error {
	totalStart := now()
	if r.pending == nil {
		r.pending = make([]bool, r.nLocal)
	}
	if r.pd.Owner(r.src) == r.rank {
		li := uint32(r.local(r.src))
		r.dist[li] = 0
		r.parent[li] = r.src
		r.bucketOf[li] = 0
		r.pending[li] = true
		r.store.add(0, li)
	}
	r.tracef("sssp: start source=%d ranks=%d policy=%s", r.src, r.size, r.opts.PolicyString())

	for {
		bktStart := now()
		localK := r.store.nextPending(r.bucketOf, r.pending)
		r.charge(bktStart, true)
		r.reduceVal[0] = localK
		kv, err := r.allreduce(r.reduceVal[:1], comm.Min, true)
		if err != nil {
			return err
		}
		k := kv[0]
		if k == int64(infBucket) {
			break
		}
		if r.opts.MaxEpochs > 0 && int(r.stats.Epochs) >= r.opts.MaxEpochs {
			return fmt.Errorf("sssp: exceeded MaxEpochs=%d at rho key %d", r.opts.MaxEpochs, k)
		}
		r.curK = k
		if err := r.rhoEpoch(k); err != nil {
			return err
		}
		r.stats.Epochs++
		r.epochSeq++
	}

	r.finishStats(totalStart)
	r.tracef("done epochs=%d phases=%d reached=%d relax=%d",
		r.stats.Epochs, r.stats.Phases, r.stats.Reached,
		r.stats.Relax.Total())
	return nil
}

// rhoEpoch extracts one capped batch from key bucket k and runs its
// single relax-exchange-apply round. Ranks whose smallest pending key
// exceeds k contribute an empty batch and just participate in the
// exchange — the collective schedule is identical on every rank.
func (r *queryState) rhoEpoch(k int64) error {
	bs := BucketStats{Index: k, Mode: ModePush, ShortPhases: 1}
	before := r.relaxTotals()
	phaseStart := now()
	members := r.collectRhoBatch(k, r.step.batchCap())
	r.stats.Phases++
	items := r.buildItems(members)
	r.runWorkers(items, r.rhoRelaxFn())
	in, err := r.exchangeRecords(relaxKind)
	if err != nil {
		return err
	}
	if err := r.applyRelaxIn(in, false, nil); err != nil {
		return err
	}
	r.logPhase(k, PhaseRho, len(members), before, phaseStart)
	bs.ShortRelax = r.relaxTotals().Total() - before.Total()
	bs.Settled = r.settledTotal
	r.stats.Buckets = append(r.stats.Buckets, bs)
	r.tracef("epoch key=%d members=%d", k, len(members))
	return nil
}

// collectRhoBatch extracts up to cap (0 = all) valid pending members of
// key bucket k, clearing their pending flags; members beyond the cap
// keep their flags and their (compacted) list entries for the next
// epoch. Stale entries — moved to another key, or already extracted —
// are dropped during the compaction.
func (r *queryState) collectRhoBatch(k int64, cap int) []uint32 {
	start := now()
	defer r.charge(start, true)
	members := r.members[:0]
	l := r.store.list(k)
	keep := l[:0]
	for _, li := range l {
		if r.bucketOf[li] != k || !r.pending[li] {
			continue
		}
		if cap > 0 && len(members) >= cap {
			keep = append(keep, li)
			continue
		}
		r.pending[li] = false
		members = append(members, li)
	}
	r.store.setList(k, keep)
	r.members = members
	return members
}

// rhoRelaxFn lazily builds the ρ batch scan: the full adjacency of every
// extracted vertex.
func (r *queryState) rhoRelaxFn() func(tid int, it workItem) {
	if r.rhoFn == nil {
		r.rhoFn = func(tid int, it workItem) {
			v := r.global(it.li)
			du := r.dist[it.li]
			nbr, ws := r.g.Neighbors(v)
			cnt := &r.tcnt[tid]
			for i := it.lo; i < it.hi; i++ {
				cnt.RhoPush++
				nd := du + graph.Dist(ws[i])
				dst := r.pd.Owner(nbr[i])
				r.tbufs[tid][dst] = appendRelax(r.tbufs[tid][dst], nbr[i], tagParent(v, ws[i]), nd)
			}
		}
	}
	return r.rhoFn
}
