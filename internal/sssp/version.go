package sssp

import (
	"fmt"
	"sync"

	"parsssp/internal/graph"
	"parsssp/internal/partition"
)

// Plane versioning. A PlaneSet owns the succession of immutable graph
// snapshots a dynamic workload moves through: version 0 is the loaded
// graph, and every applied UpdateBatch produces version n+1 copy-on-write
// at row granularity (graph.Patched overlays only the touched vertices'
// CSR rows; newRankGraphPatched refreshes only those rows of each hosted
// rank's plane), so apply latency tracks batch size, not graph size.
// Queries pin the version they run on — Acquire/Release
// refcounts — so an update never mutates state under an in-flight query;
// a superseded version is retired (dropped for the collector) when its
// last pin drains. The set also keeps a bounded history of the applied
// batches, so a consumer holding a repaired tree a few versions behind
// can catch up incrementally (Since) instead of recomputing.
//
// A PlaneSet is per-process: an in-process pool hosts every rank's
// planes in one set, a tcptransport deployment hosts one rank per set.
// All processes must apply the same batches in the same order —
// EnsureVersion makes that idempotent per process, so each of N slot
// drivers can demand "be at version v for this batch" and exactly one
// application happens.

// planeVersion is one immutable snapshot: the graph at some version plus
// the per-rank planes built from it for the ranks this set hosts. All
// fields are written only by PlaneSet (the planepurity analyzer enforces
// it, like it does for rankGraph); everything else reads.
type planeVersion struct {
	version uint64
	g       *graph.Graph
	maxW    graph.Weight
	planes  map[int]*rankGraph // hosted rank -> plane

	refs int // pins; guarded by the owning set's mu
}

// Graph returns the snapshot's graph.
func (pv *planeVersion) Graph() *graph.Graph { return pv.g }

// Version returns the snapshot's version number.
func (pv *planeVersion) Version() uint64 { return pv.version }

// Plane returns the snapshot's plane for a hosted rank.
func (pv *planeVersion) Plane(rank int) *rankGraph { return pv.planes[rank] }

// PlaneSet is the versioned home of a graph's planes. Safe for
// concurrent use.
type PlaneSet struct {
	pd    partition.Dist
	opts  *Options
	ranks []int

	mu      sync.Mutex
	cur     *planeVersion
	retired map[uint64]*planeVersion // superseded but still pinned
	history []UpdateBatch            // history[i] produced version base+i+1; set-owned copies
	base    uint64                   // version the oldest kept batch applied to
	keep    int

	// rebuild forces the pre-patching apply path (full WithUpdates CSR
	// rebuild + newRankGraph per rank). Tests and benchmarks set it to
	// prove the patched path equivalent and to measure what it saves.
	rebuild bool
}

// versionHistoryDepth bounds how many applied batches a PlaneSet
// remembers for Since. A consumer further behind than this recomputes.
const versionHistoryDepth = 32

// NewPlaneSet builds version 0 of the hosted ranks' planes. opts must
// outlive the set and must not be mutated while it is in use (the same
// contract newRankGraph has); ranks lists the ranks this process hosts —
// every rank for an in-process pool, one for a distributed deployment.
func NewPlaneSet(g *graph.Graph, pd partition.Dist, opts *Options, ranks []int) (*PlaneSet, error) {
	s := &PlaneSet{
		pd:      pd,
		opts:    opts,
		ranks:   ranks,
		retired: make(map[uint64]*planeVersion),
		keep:    versionHistoryDepth,
	}
	//parssspvet:allow poolsafety -- build constructs version 0, it does not draw from a pool; the set owns it through s.cur
	pv, err := s.build(g, 0)
	if err != nil {
		return nil, err
	}
	s.cur = pv
	return s, nil
}

// build constructs one snapshot at the given version.
func (s *PlaneSet) build(g *graph.Graph, version uint64) (*planeVersion, error) {
	pv := &planeVersion{
		version: version,
		g:       g,
		maxW:    g.MaxWeight(),
		planes:  make(map[int]*rankGraph, len(s.ranks)),
	}
	for _, rank := range s.ranks {
		plane, err := newRankGraph(g, s.pd, rank, s.opts, pv.maxW)
		if err != nil {
			return nil, err
		}
		pv.planes[rank] = plane
	}
	return pv, nil
}

// Acquire pins and returns the current version. The caller must Release
// it when its query or repair finishes.
func (s *PlaneSet) Acquire() *planeVersion {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cur.refs++
	return s.cur
}

// Release unpins a version acquired with Acquire. A superseded version
// whose last pin drains retires for good. Releasing a version with no
// outstanding pins is a refcount bug in the caller — left unchecked it
// would let a later Acquire/Release pair strand a retired version in
// the set forever — so it panics rather than corrupting the count.
func (s *PlaneSet) Release(pv *planeVersion) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pv.refs <= 0 {
		panic(fmt.Sprintf("sssp: PlaneSet.Release of version %d with no outstanding pins (double release?)", pv.version))
	}
	pv.refs--
	if pv.refs == 0 && pv != s.cur {
		delete(s.retired, pv.version)
	}
}

// Version returns the current version number.
func (s *PlaneSet) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur.version
}

// LiveVersions returns how many snapshots are reachable: the current one
// plus superseded versions still pinned by in-flight queries. Tests use
// it to prove retirement-on-drain.
func (s *PlaneSet) LiveVersions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return 1 + len(s.retired)
}

// Apply advances the set one version by applying batch copy-on-write.
// The previous version stays live for its pinned queries and retires
// when they drain. Returns the new current version, pinned for the
// caller (Release it after any repair driven from it completes).
func (s *PlaneSet) Apply(batch UpdateBatch) (*planeVersion, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked(batch)
}

func (s *PlaneSet) applyLocked(batch UpdateBatch) (*planeVersion, error) {
	if err := batch.Validate(s.cur.g.NumVertices()); err != nil {
		return nil, err
	}
	deletes, inserts := batch.split()
	var (
		pv  *planeVersion
		err error
	)
	if s.rebuild {
		// Legacy full-rebuild path: O(N+M) CSR re-sort plus an
		// every-row plane reclassification per hosted rank.
		var ng *graph.Graph
		ng, err = s.cur.g.WithUpdates(deletes, inserts)
		if err == nil {
			//parssspvet:allow poolsafety -- build constructs a fresh snapshot, not a pool slot; ownership transfers to s.cur and the pinned return
			pv, err = s.build(ng, s.cur.version+1)
		}
	} else {
		// Patched path: the CSR advances by a row-granularity
		// copy-on-write overlay, and each hosted plane refreshes only
		// the touched vertices' classification and histogram rows.
		var ng *graph.Graph
		ng, err = s.cur.g.Patched(deletes, inserts)
		if err == nil {
			pv, err = s.patchBuild(ng, batch.touched(), s.cur.version+1)
		}
	}
	if err != nil {
		return nil, err
	}
	old := s.cur
	if old.refs > 0 {
		s.retired[old.version] = old
	}
	s.cur = pv
	if len(s.history) == 0 {
		s.base = old.version
	}
	// The set owns its history: copy the batch so a caller reusing or
	// mutating its slice cannot corrupt later Since catch-ups.
	s.history = append(s.history, append(UpdateBatch(nil), batch...))
	if len(s.history) > s.keep {
		drop := len(s.history) - s.keep
		s.history = append(s.history[:0], s.history[drop:]...)
		s.base += uint64(drop)
	}
	s.cur.refs++
	return s.cur, nil
}

// patchBuild constructs the next snapshot from the current one: each
// hosted rank's plane refreshes only the touched vertices' rows
// (newRankGraphPatched), sharing everything else with s.cur's planes. g
// must be s.cur.g advanced by the batch that touched those vertices.
func (s *PlaneSet) patchBuild(g *graph.Graph, touched []graph.Vertex, version uint64) (*planeVersion, error) {
	pv := &planeVersion{
		version: version,
		g:       g,
		maxW:    g.MaxWeight(),
		planes:  make(map[int]*rankGraph, len(s.ranks)),
	}
	for _, rank := range s.ranks {
		plane, err := newRankGraphPatched(s.cur.planes[rank], g, touched, pv.maxW)
		if err != nil {
			return nil, err
		}
		pv.planes[rank] = plane
	}
	return pv, nil
}

// EnsureVersion makes the set current at target, applying batch if and
// only if the set is one version behind it. It is how N lockstep slot
// drivers apply one broadcast batch exactly once per process: every
// driver calls EnsureVersion(target, batch); the first one applies, the
// rest see the work done. The returned version (== target) is pinned for
// the caller. A gap — the set more than one version behind — is an
// error: a batch was lost, and incremental state cannot be trusted.
func (s *PlaneSet) EnsureVersion(target uint64, batch UpdateBatch) (*planeVersion, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch cur := s.cur.version; {
	case cur == target:
		s.cur.refs++
		return s.cur, nil
	case cur+1 == target:
		return s.applyLocked(batch)
	case cur > target:
		return nil, fmt.Errorf("sssp: plane set at version %d, past target %d", cur, target)
	default:
		return nil, fmt.Errorf("sssp: plane set at version %d cannot reach target %d (missed batches)", cur, target)
	}
}

// Since returns the batches that advance version v to the current
// version, oldest first, with ok=true (an empty list when v is already
// current). ok=false means the bounded history no longer reaches back to
// v — the caller's incremental state is too stale and it must recompute
// from scratch. The returned batches are deep copies: they share no
// storage with the set's history, so a consumer may mutate or retain
// them without corrupting later catch-ups.
func (s *PlaneSet) Since(v uint64) (batches []UpdateBatch, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.cur.version
	if v == cur {
		return nil, true
	}
	if v > cur || v < s.base || len(s.history) == 0 {
		return nil, false
	}
	idx := v - s.base
	if idx > uint64(len(s.history)) {
		return nil, false
	}
	out := make([]UpdateBatch, cur-v)
	for i, b := range s.history[idx:] {
		out[i] = append(UpdateBatch(nil), b...)
	}
	return out, true
}
