package sssp

import "time"

// This package is part of the deterministic core: its output — distances,
// parents, and the paper-metric counters (relaxations, messages, volume)
// — must be a pure function of graph, source and options, which is what
// makes memtransport runs reproducible. Wall-clock readings feed only the
// observability surface (Stats timings, phase logs) and never influence
// an algorithmic decision, so they are funneled through the two helpers
// below: the single sanctioned wall-clock entry point, with parssspvet's
// nodeterminism analyzer forbidding any other time.Now/Since use in the
// package. Keeping the funnel narrow is what keeps the invariant
// auditable — a reviewer only has to check that no caller lets a
// time.Time or time.Duration flow back into control flow.

//parssspvet:allow nodeterminism -- sole wall-clock entry point; readings feed Stats only, never algorithm decisions
var now = time.Now

// since returns the wall time elapsed since start, read through the
// package clock.
func since(start time.Time) time.Duration { return now().Sub(start) }
