package sssp

import (
	"time"

	"parsssp/internal/comm"
)

// RelaxCounts breaks the paper's "work done" metric — the number of relax
// operations — down by mechanism. Following the paper's accounting, an
// edge relaxed through the pull mechanism contributes its request and its
// response separately.
type RelaxCounts struct {
	// ShortPush counts short-edge relaxations performed in short phases.
	ShortPush int64
	// OuterShortPush counts outer-short relaxations (IOS) performed in
	// long-edge phases.
	OuterShortPush int64
	// LongPush counts long-edge relaxations performed in push-mode
	// long-edge phases.
	LongPush int64
	// PullRequests counts pull requests sent.
	PullRequests int64
	// PullResponses counts pull responses sent.
	PullResponses int64
	// BellmanFord counts relaxations performed after the hybrid switch.
	BellmanFord int64
	// AsyncPush counts full-adjacency relaxations performed by the
	// asynchronous execution mode (which has no short/long or push/pull
	// split; see async.go).
	AsyncPush int64
	// RadiusPush counts full-adjacency relaxations performed by the
	// Radius Stepping policy's threshold epochs (radius.go).
	RadiusPush int64
	// RhoPush counts full-adjacency relaxations performed by the
	// ρ-stepping policy's batched extractions (rho.go).
	RhoPush int64
	// Skipped counts IOS- or pull-condition-suppressed relaxations
	// (edges inspected but provably useless).
	Skipped int64
}

// Total returns the paper's total relaxation count: every push relaxation
// plus requests and responses (pull edges count twice, as in Figure 3b's
// fair comparison).
func (r RelaxCounts) Total() int64 {
	return r.ShortPush + r.OuterShortPush + r.LongPush +
		r.PullRequests + r.PullResponses + r.BellmanFord + r.AsyncPush +
		r.RadiusPush + r.RhoPush
}

// Add accumulates other into r.
func (r *RelaxCounts) Add(other RelaxCounts) {
	r.ShortPush += other.ShortPush
	r.OuterShortPush += other.OuterShortPush
	r.LongPush += other.LongPush
	r.PullRequests += other.PullRequests
	r.PullResponses += other.PullResponses
	r.BellmanFord += other.BellmanFord
	r.AsyncPush += other.AsyncPush
	r.RadiusPush += other.RadiusPush
	r.RhoPush += other.RhoPush
	r.Skipped += other.Skipped
}

// BucketStats records one epoch's census, as plotted in Figure 7 and used
// by the Figure 4 phase-wise analysis.
type BucketStats struct {
	// Index is the bucket index k of this epoch.
	Index int64
	// Mode is the long-edge mechanism chosen.
	Mode Mode
	// ShortPhases is the number of short-edge phases in this epoch.
	ShortPhases int
	// ShortRelax is the number of short-edge relaxations in this epoch.
	ShortRelax int64
	// LongRelax is the number of long-edge (or outer-short) relaxations
	// or responses in this epoch.
	LongRelax int64
	// Requests is the pull-request count for this epoch: actual requests
	// in pull mode, the heuristic's would-be count in push mode.
	Requests int64
	// SelfEdges, BackwardEdges, ForwardEdges categorize the long push
	// relaxations received by destination bucket (census mode only).
	SelfEdges, BackwardEdges, ForwardEdges int64
	// Settled is the number of vertices settled by the end of this epoch.
	Settled int64
	// PushCost and PullCost are the decision heuristic's cost estimates.
	PushCost, PullCost int64
}

// Stats is the aggregate outcome of a distributed run.
type Stats struct {
	// Relax are the relaxation counters summed over ranks.
	Relax RelaxCounts
	// Phases is the total number of bulk-synchronous phases (short
	// phases, long phases, Bellman-Ford rounds).
	Phases int64
	// Epochs is the number of bucket epochs processed before any hybrid
	// switch.
	Epochs int64
	// HybridSwitched reports whether the Bellman-Ford switch fired.
	HybridSwitched bool
	// BFPhases is the number of Bellman-Ford rounds after the switch.
	BFPhases int64
	// Reached is the number of vertices with finite distance.
	Reached int64
	// BktTime is the paper's bucket-processing overhead: identifying
	// bucket members/actives, computing the next bucket, termination
	// checks.
	BktTime time.Duration
	// OtherTime is relaxation processing and communication.
	OtherTime time.Duration
	// Total is the wall-clock of the whole query.
	Total time.Duration
	// MaxRankRelax is the largest per-rank total relaxation count — the
	// load-imbalance indicator.
	MaxRankRelax int64
	// RankRelax holds each rank's total relaxation count (index = rank).
	RankRelax []int64
	// Buckets holds the per-epoch census (always index and mode; full
	// categories in census mode).
	Buckets []BucketStats
	// Decisions is the push/pull decision made for each epoch.
	Decisions []Mode
	// PhaseLog is the per-phase execution timeline (only when
	// Options.RecordPhases is set).
	PhaseLog []PhaseRecord
	// AsyncRounds is the largest per-rank count of asynchronous
	// relax-drain rounds (async mode only). Rounds are rank-local — there
	// are no phase barriers to align them — so the merge takes the max.
	AsyncRounds int64
	// AsyncProbes is the number of termination-detection probe rounds the
	// async run settled over (async mode only; collective, so identical
	// on every rank).
	AsyncProbes int64
	// Traffic aggregates wire counters over all ranks.
	Traffic comm.TrafficStats
}

// TEPS returns the traversed-edges-per-second figure for a run over a
// graph with m undirected edges: m divided by the total wall-clock, as in
// Graph500.
func (s *Stats) TEPS(m int64) float64 {
	if s.Total <= 0 {
		return 0
	}
	return float64(m) / s.Total.Seconds()
}

// GTEPS is TEPS / 1e9.
func (s *Stats) GTEPS(m int64) float64 { return s.TEPS(m) / 1e9 }

// Imbalance returns the load-imbalance factor max/mean of the per-rank
// relaxation counts: 1.0 is perfect balance, P is the worst case (all
// work on one rank). Returns 1 for empty or single-rank runs.
func (s *Stats) Imbalance() float64 {
	if len(s.RankRelax) < 2 {
		return 1
	}
	var sum, max int64
	for _, r := range s.RankRelax {
		sum += r
		if r > max {
			max = r
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(s.RankRelax))
	return float64(max) / mean
}

// mergeTraffic accumulates wire counters from one rank.
func (s *Stats) mergeTraffic(t comm.TrafficStats) {
	s.Traffic.ExchangeCalls += t.ExchangeCalls
	s.Traffic.BytesSent += t.BytesSent
	s.Traffic.BytesReceived += t.BytesReceived
	s.Traffic.MessagesSent += t.MessagesSent
	s.Traffic.RecordsSent += t.RecordsSent
	s.Traffic.RecordsReceived += t.RecordsReceived
	s.Traffic.AllreduceCalls += t.AllreduceCalls
	s.Traffic.BarrierCalls += t.BarrierCalls
}
