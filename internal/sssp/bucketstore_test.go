package sssp

import (
	"math/rand"
	"testing"
)

// TestBucketStoreFreeListNoAliasing is a model-based property test of
// the store's storage recycling: a list surrendered by take must never
// alias storage the store later hands back out (via add's free-list
// reuse), and recycled storage (drop, reset, setList-to-empty) must
// never alias a list still live in the store. The stepping policies
// drive re-entry patterns bulk-synchronous Δ-stepping never produced —
// ρ's capped extraction compacts and re-files the same bucket many
// times — so the invariant gets a dedicated regression guard.
//
// The detection mechanism is scribbling: every slice take surrenders is
// overwritten to its full capacity with a sentinel after every
// subsequent operation. If recycling ever handed that storage back to
// the store while a model-tracked list lived in it, the sentinel would
// show up in (or clobber) store contents, and the per-iteration model
// comparison fails.
func TestBucketStoreFreeListNoAliasing(t *testing.T) {
	const (
		iters    = 20000
		keyRange = 8
		sentinel = 0xDEADBEEF
	)
	rng := rand.New(rand.NewSource(1))
	s := newBucketStore()
	model := map[int64][]uint32{}
	var surrendered [][]uint32 // storage we own after take; scribbled each round

	randKey := func() int64 { return int64(rng.Intn(keyRange)) }
	modelKey := func() (int64, bool) {
		for _, k := range rng.Perm(keyRange) {
			if len(model[int64(k)]) > 0 {
				return int64(k), true
			}
		}
		return 0, false
	}

	for iter := 0; iter < iters; iter++ {
		switch op := rng.Intn(10); {
		case op < 5: // add
			k, li := randKey(), uint32(rng.Intn(1<<20))
			s.add(k, li)
			model[k] = append(model[k], li)

		case op < 7: // take: storage transfers to the caller
			k, ok := modelKey()
			if !ok {
				continue
			}
			got := s.take(k)
			want := model[k]
			if len(got) != len(want) {
				t.Fatalf("iter %d: take(%d) returned %d entries, model has %d",
					iter, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("iter %d: take(%d)[%d] = %d, model %d",
						iter, k, i, got[i], want[i])
				}
			}
			delete(model, k)
			if cap(got) > 0 {
				surrendered = append(surrendered, got[:cap(got)])
			}

		case op < 8: // drop: storage recycled inside the store
			k := randKey()
			s.drop(k)
			delete(model, k)

		case op < 9: // setList compaction (the ρ extraction path)
			k, ok := modelKey()
			if !ok {
				continue
			}
			l := s.list(k)
			keep := l[:0]
			var kept []uint32
			for i, li := range l {
				if i%2 == 0 { // extract odd positions, keep even ones
					keep = append(keep, li)
					kept = append(kept, li)
				}
			}
			s.setList(k, keep)
			if len(kept) == 0 {
				delete(model, k)
			} else {
				model[k] = kept
			}

		default: // reset: everything recycled
			s.reset()
			model = map[int64][]uint32{}
		}

		// Scribble every surrendered slice to its full capacity: if the
		// store recycled any of this storage for a live list, the next
		// comparison catches it.
		for _, l := range surrendered {
			for i := range l {
				l[i] = sentinel
			}
		}
		for k, want := range model {
			got := s.list(k)
			if len(got) != len(want) {
				t.Fatalf("iter %d: bucket %d has %d entries, model %d",
					iter, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("iter %d: bucket %d[%d] = %d (model %d) — recycled storage aliases a live list",
						iter, k, i, got[i], want[i])
				}
			}
		}
		if len(surrendered) > 64 {
			surrendered = surrendered[:0] // bound the scribble cost
		}
	}
}
