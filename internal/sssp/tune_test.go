package sssp

import (
	"testing"

	"parsssp/internal/graph"
)

func TestTuneDelta(t *testing.T) {
	g := rmatTestGraph
	roots := []graph.Vertex{testRoot(g)}
	res, err := TuneDelta(g, 2, roots, OptOptions(25), []graph.Weight{5, 25, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 3 {
		t.Fatalf("trials = %v", res.Trials)
	}
	if _, ok := res.Trials[res.Best]; !ok {
		t.Errorf("best Δ %d not among trials", res.Best)
	}
	for delta, d := range res.Trials {
		if d <= 0 {
			t.Errorf("Δ=%d has non-positive time %v", delta, d)
		}
		if res.Trials[res.Best] > d {
			t.Errorf("best Δ %d slower than Δ %d", res.Best, delta)
		}
	}
}

func TestTuneDeltaDefaults(t *testing.T) {
	g := rmatTestGraph
	res, err := TuneDelta(g, 1, []graph.Vertex{testRoot(g)}, OptOptions(25), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != len(DefaultDeltaCandidates) {
		t.Errorf("default candidates not used: %v", res.Trials)
	}
}

func TestTuneDeltaValidation(t *testing.T) {
	g := rmatTestGraph
	if _, err := TuneDelta(g, 1, nil, OptOptions(25), nil); err == nil {
		t.Error("no roots accepted")
	}
	if _, err := TuneDelta(g, 1, []graph.Vertex{0}, OptOptions(25), []graph.Weight{0}); err == nil {
		t.Error("zero Δ candidate accepted")
	}
}
