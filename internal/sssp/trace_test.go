package sssp

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceOutput(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	var buf bytes.Buffer
	opts := OptOptions(25)
	opts.Trace = &buf
	if _, err := Run(g, 3, src, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sssp: start", "epoch bucket=0", "hybrid switch", "done epochs="} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q; got:\n%s", want, out)
		}
	}
	// Only rank 0 writes: line count must be epochs + 3 control lines.
	lines := strings.Count(out, "\n")
	res, err := Run(g, 3, src, OptOptions(25))
	if err != nil {
		t.Fatal(err)
	}
	wantLines := int(res.Stats.Epochs) + 3
	if lines != wantLines {
		t.Errorf("trace has %d lines, want %d (duplicate writers?)", lines, wantLines)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	opts := OptOptions(25)
	if opts.Trace != nil {
		t.Error("preset enables tracing")
	}
}
