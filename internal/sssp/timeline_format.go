package sssp

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// FormatTimeline renders a phase log as an ASCII table with proportional
// duration bars — a quick visual of where a query spends its time (the
// tooling companion of Figure 4).
func FormatTimeline(w io.Writer, log []PhaseRecord) error {
	if len(log) == 0 {
		_, err := fmt.Fprintln(w, "timeline: empty (enable Options.RecordPhases)")
		return err
	}
	var maxDur time.Duration
	var total time.Duration
	for _, p := range log {
		if p.Duration > maxDur {
			maxDur = p.Duration
		}
		total += p.Duration
	}
	const barWidth = 32
	if _, err := fmt.Fprintf(w, "%-4s %-7s %-12s %12s %12s %-*s %s\n",
		"#", "bucket", "kind", "active", "relax", barWidth, "time", "duration"); err != nil {
		return err
	}
	for i, p := range log {
		bucket := fmt.Sprint(p.Bucket)
		if p.Bucket < 0 {
			bucket = "-"
		}
		n := 0
		if maxDur > 0 {
			n = int(float64(barWidth) * float64(p.Duration) / float64(maxDur))
		}
		if n < 1 && p.Duration > 0 {
			n = 1
		}
		bar := strings.Repeat("#", n) + strings.Repeat(".", barWidth-n)
		if _, err := fmt.Fprintf(w, "%-4d %-7s %-12s %12d %12d %s %v\n",
			i, bucket, p.Kind, p.Active, p.Relax, bar, p.Duration.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "total phase time: %v over %d phases\n",
		total.Round(time.Microsecond), len(log))
	return err
}
