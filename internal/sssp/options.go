// Package sssp implements the paper's single-source shortest path
// algorithms: sequential references (Dijkstra, Bellman-Ford, Δ-stepping)
// and the distributed bulk-synchronous engine with the paper's three
// optimization classes — pruning (edge classification, IOS, push/pull
// direction optimization), hybridization (Δ-stepping → Bellman-Ford
// switch), and two-tier load balancing.
//
// The distributed engine runs P logical ranks over a comm.Transport; each
// rank owns a partition of the vertices and relaxes edges in
// bulk-synchronous supersteps, exactly mirroring the paper's distributed
// implementation (Section II) at the level of messages exchanged.
package sssp

import (
	"fmt"
	"io"
	"math"
	"time"

	"parsssp/internal/graph"
)

// infBucket is the bucket index of unreached vertices.
const infBucket = math.MaxInt32

// BellmanFordDelta is the Δ value representing Δ=∞: every finite distance
// falls in bucket 0, so Δ-stepping degenerates to Bellman-Ford.
const BellmanFordDelta graph.Weight = math.MaxUint32

// PullEstimator selects the request-count procedure used by the
// push/pull decision heuristic. The paper discusses all three: exact
// counting via binary search over weight-sorted adjacency, histograms,
// and (what their implementation used) the expectation under uniform
// weights.
type PullEstimator int

const (
	// EstimatorExact counts requests exactly with a binary search per
	// unsettled vertex.
	EstimatorExact PullEstimator = iota
	// EstimatorExpectation uses the paper's closed form
	// deg_long(v)·(d(v)−(k+1)Δ)/d(v), exact in expectation for uniform
	// weights.
	EstimatorExpectation
	// EstimatorHistogram interpolates a per-vertex cumulative weight
	// histogram built once at startup.
	EstimatorHistogram
)

// String returns the estimator name.
func (e PullEstimator) String() string {
	switch e {
	case EstimatorExact:
		return "exact"
	case EstimatorExpectation:
		return "expectation"
	case EstimatorHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("PullEstimator(%d)", int(e))
	}
}

// ExecMode selects the engine's execution discipline.
type ExecMode int

const (
	// ExecBSP is the bulk-synchronous reference: relaxations travel in
	// per-phase collective exchanges, progress is settled at phase
	// barriers. Deterministic, and the paper's execution model.
	ExecBSP ExecMode = iota
	// ExecAsync is the barrier-free mode: each rank drains incoming relax
	// batches as they arrive, applies them through the lazy-deletion
	// buckets, and forwards outgoing batches as soon as a size or time
	// watermark fills — with counting-based distributed termination
	// detection over the collective Allreduce replacing per-phase
	// barriers. Produces the same distance and parent trees as ExecBSP
	// (see DESIGN.md "Asynchronous execution & termination detection").
	ExecAsync
)

// String returns "bsp" or "async".
func (m ExecMode) String() string {
	if m == ExecAsync {
		return "async"
	}
	return "bsp"
}

// ParseExecMode parses the -exec-mode flag values "bsp" and "async".
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "bsp":
		return ExecBSP, nil
	case "async":
		return ExecAsync, nil
	}
	return ExecBSP, fmt.Errorf("sssp: unknown exec mode %q (want bsp or async)", s)
}

// Mode selects the relaxation mechanism of a long-edge phase.
type Mode int

const (
	// ModePush relaxes long edges from the current bucket outwards.
	ModePush Mode = iota
	// ModePull has later-bucket vertices request distances from the
	// current bucket.
	ModePull
)

// String returns "push" or "pull".
func (m Mode) String() string {
	if m == ModePull {
		return "pull"
	}
	return "push"
}

// Options configures a distributed SSSP run. The zero value is not
// runnable; start from a preset (Del, Prune, Opt, ...) or fill in at
// least Delta and Threads.
type Options struct {
	// Policy selects the stepping discipline: Δ-stepping (the zero value
	// and the paper's algorithm), Radius Stepping or ρ-stepping. All
	// policies produce identical distances and canonical parent trees;
	// the paper's Δ-specific heuristics (Prune, IOS, Hybrid, Census,
	// ForceMode, DecisionSequence) are only valid under PolicyDelta.
	Policy SteppingPolicy

	// Delta is the bucket width (Δ) of PolicyDelta. 1 yields Dial's
	// variant of Dijkstra's algorithm; BellmanFordDelta yields
	// Bellman-Ford. Other policies ignore it (but it must still
	// validate, so presets leave it at a sane value).
	Delta graph.Weight

	// RadiusK is Radius Stepping's k: the per-vertex radius r(v) is the
	// k-th smallest incident edge weight. Zero means 32.
	RadiusK int

	// Rho is ρ-stepping's global batch size: each epoch extracts up to
	// ⌈ρ/P⌉ frontier vertices per rank. Zero means 4096.
	Rho int

	// Threads is the number of worker goroutines per rank (the paper's 64
	// SMT threads per node). Zero means 1.
	Threads int

	// EdgeClassification enables Meyer-Sanders short/long classification:
	// short phases relax only short edges, long edges are relaxed once
	// per bucket. Disabling it makes every phase relax all edges of
	// active vertices (text-book Δ-stepping).
	EdgeClassification bool

	// IOS enables the paper's inner-outer-short heuristic: short phases
	// relax a short edge only if the proposed distance lands in the
	// current bucket; outer short edges are relaxed once in the
	// long-edge phase.
	IOS bool

	// Prune enables the push/pull direction-optimized long-edge phase
	// with the per-bucket decision heuristic.
	Prune bool

	// ForceMode overrides the push/pull decision for every bucket (used
	// by the exhaustive §IV.G evaluation); nil means use the heuristic.
	ForceMode *Mode

	// DecisionSequence, when non-nil, supplies the push/pull decision for
	// bucket epoch i in element i (later epochs fall back to the
	// heuristic). Used by the exhaustive decision-sequence evaluator.
	DecisionSequence []Mode

	// Estimator selects how the decision heuristic counts would-be pull
	// requests; see PullEstimator.
	Estimator PullEstimator

	// ImbalanceWeight λ blends total communication volume with the
	// worst-rank load (×P) in the push/pull cost model:
	// cost = (1-λ)·volume + λ·P·maxPerRank. Zero means volume only.
	ImbalanceWeight float64

	// Hybrid enables switching to Bellman-Ford once the settled fraction
	// exceeds Tau.
	Hybrid bool

	// Tau is the settled-fraction switch threshold; zero means 0.4 (the
	// paper's value).
	Tau float64

	// LoadBalance enables intra-rank heavy-vertex edge chunking across
	// threads (the paper's thread-level load balancing). Without it, each
	// active vertex is processed entirely by one thread.
	LoadBalance bool

	// HeavyThreshold is the paper's π: vertices with more incident edges
	// than this are chunked when LoadBalance is on. Zero means 64.
	HeavyThreshold int

	// Census enables the per-bucket edge-category census (self, backward,
	// forward long edges and pull-request counts) used by the Figure 7
	// experiment. It forces push mode so categories can be observed at
	// the destination.
	Census bool

	// MaxEpochs aborts runs that exceed this many epochs; zero means no
	// limit. A safety valve for misconfigured tests.
	MaxEpochs int

	// Trace, when non-nil, receives a line-oriented execution trace from
	// rank 0: epoch boundaries, phase activity, push/pull decisions and
	// the hybrid switch. For debugging and the cmd tools' -trace flag.
	Trace io.Writer

	// RecordPhases enables the per-phase execution timeline
	// (Stats.PhaseLog): one record per bulk-synchronous phase with its
	// kind, active count, relaxations and duration.
	RecordPhases bool

	// ParallelApply applies received relaxations on the rank's thread
	// pool with per-thread vertex ownership (the paper's intra-node
	// model), instead of the default serial pass. Census mode overrides
	// it (exact category counting is serial).
	ParallelApply bool

	// WireFormat selects the exchange record encoding: WireV2 (the
	// default, compact varint batches) or WireV1 (fixed-width records,
	// for byte counts proportional to record counts). Both produce
	// identical dist/parent results and identical record-level Stats;
	// only Traffic.BytesSent/BytesReceived differ. See msg.go.
	WireFormat WireFormat

	// ExecMode selects bulk-synchronous (the default) or asynchronous
	// barrier-free execution; see ExecMode. Async ignores the per-bucket
	// phase machinery (Prune, IOS, Hybrid, Census): without phase
	// boundaries there is no bucket-wide member set to decide push/pull
	// over, so every relaxation is a push — eager for short edges,
	// deferred per bucket for long ones (see async.go).
	ExecMode ExecMode

	// AsyncFlushBytes is the size watermark of the async mode's outgoing
	// staging: a destination's batch is sent as soon as it holds at least
	// this many staged bytes. Zero means 1 — forward every round's
	// records immediately, which measures fastest on latency-dominated
	// fabrics because improvements propagate at wire speed and peers
	// speculate less on stale distances. Raise it to amortize a
	// per-message cost when the fabric has one.
	AsyncFlushBytes int

	// AsyncFlushInterval is the time watermark: staged records older than
	// this are flushed even below the size watermark, bounding the
	// latency a small tail of records can linger unsent. Zero means 200µs.
	AsyncFlushInterval time.Duration
}

// Validate reports configuration errors.
func (o *Options) Validate() error {
	if o.Delta < 1 {
		return fmt.Errorf("sssp: Delta must be >= 1, got %d", o.Delta)
	}
	if o.Threads < 0 {
		return fmt.Errorf("sssp: negative Threads %d", o.Threads)
	}
	if o.Tau < 0 || o.Tau > 1 {
		return fmt.Errorf("sssp: Tau %v outside [0,1]", o.Tau)
	}
	if o.ImbalanceWeight < 0 || o.ImbalanceWeight > 1 {
		return fmt.Errorf("sssp: ImbalanceWeight %v outside [0,1]", o.ImbalanceWeight)
	}
	if o.IOS && !o.EdgeClassification {
		return fmt.Errorf("sssp: IOS requires EdgeClassification")
	}
	if o.Census && !o.Prune {
		return fmt.Errorf("sssp: Census requires Prune")
	}
	switch o.Policy {
	case PolicyDelta:
	case PolicyRadius, PolicyRho:
		// The paper's per-bucket heuristics assume Δ-stepping's
		// settle-one-bucket epochs; under the other policies they would
		// silently misfire, so they are rejected outright.
		switch {
		case o.Prune:
			return fmt.Errorf("sssp: Prune requires PolicyDelta, not %v", o.Policy)
		case o.IOS:
			return fmt.Errorf("sssp: IOS requires PolicyDelta, not %v", o.Policy)
		case o.Hybrid:
			return fmt.Errorf("sssp: Hybrid requires PolicyDelta, not %v", o.Policy)
		case o.Census:
			return fmt.Errorf("sssp: Census requires PolicyDelta, not %v", o.Policy)
		case o.ForceMode != nil || o.DecisionSequence != nil:
			return fmt.Errorf("sssp: push/pull overrides require PolicyDelta, not %v", o.Policy)
		}
		if o.RadiusK < 0 {
			return fmt.Errorf("sssp: negative RadiusK %d", o.RadiusK)
		}
		if o.Rho < 0 {
			return fmt.Errorf("sssp: negative Rho %d", o.Rho)
		}
	default:
		return fmt.Errorf("sssp: unknown SteppingPolicy %d", int(o.Policy))
	}
	if o.WireFormat != WireV1 && o.WireFormat != WireV2 {
		return fmt.Errorf("sssp: unknown WireFormat %d", int(o.WireFormat))
	}
	if o.ExecMode != ExecBSP && o.ExecMode != ExecAsync {
		return fmt.Errorf("sssp: unknown ExecMode %d", int(o.ExecMode))
	}
	if o.ExecMode == ExecAsync {
		if o.Census {
			return fmt.Errorf("sssp: Census requires bulk-synchronous per-bucket phases (ExecMode bsp)")
		}
		if o.AsyncFlushBytes < 0 {
			return fmt.Errorf("sssp: negative AsyncFlushBytes %d", o.AsyncFlushBytes)
		}
		if o.AsyncFlushInterval < 0 {
			return fmt.Errorf("sssp: negative AsyncFlushInterval %v", o.AsyncFlushInterval)
		}
	}
	return nil
}

func (o *Options) asyncFlushBytes() int {
	if o.AsyncFlushBytes == 0 {
		return 1
	}
	return o.AsyncFlushBytes
}

func (o *Options) asyncFlushInterval() time.Duration {
	if o.AsyncFlushInterval == 0 {
		return 200 * time.Microsecond
	}
	return o.AsyncFlushInterval
}

func (o *Options) threads() int {
	if o.Threads == 0 {
		return 1
	}
	return o.Threads
}

func (o *Options) tau() float64 {
	if o.Tau == 0 {
		return 0.4
	}
	return o.Tau
}

func (o *Options) heavyThreshold() int {
	if o.HeavyThreshold == 0 {
		return 64
	}
	return o.HeavyThreshold
}

func (o *Options) radiusK() int {
	if o.RadiusK == 0 {
		return 32
	}
	return o.RadiusK
}

func (o *Options) rho() int {
	if o.Rho == 0 {
		return 4096
	}
	return o.Rho
}

// PolicyString renders the active policy with its resolved parameter —
// "delta(25)", "radius(32)", "rho(4096)" — the form used by traces, the
// ssspd stats line and the tuner's trial table.
func (o *Options) PolicyString() string {
	switch o.Policy {
	case PolicyRadius:
		return fmt.Sprintf("radius(%d)", o.radiusK())
	case PolicyRho:
		return fmt.Sprintf("rho(%d)", o.rho())
	default:
		if o.Delta == BellmanFordDelta {
			return "delta(inf)"
		}
		return fmt.Sprintf("delta(%d)", o.Delta)
	}
}

// The presets below name the algorithm variants evaluated in the paper.

// DelOptions is the baseline Δ-stepping algorithm with short/long edge
// classification — the paper's Del-Δ.
func DelOptions(delta graph.Weight) Options {
	return Options{Delta: delta, EdgeClassification: true}
}

// PruneOptions is Del augmented with the pruning and IOS heuristics — the
// paper's Prune-Δ.
func PruneOptions(delta graph.Weight) Options {
	o := DelOptions(delta)
	o.IOS = true
	o.Prune = true
	o.ImbalanceWeight = 0.25
	return o
}

// OptOptions is Prune augmented with hybridization — the paper's OPT-Δ.
func OptOptions(delta graph.Weight) Options {
	o := PruneOptions(delta)
	o.Hybrid = true
	return o
}

// LBOptOptions is Opt with intra-rank thread-level load balancing — the
// paper's LB-Opt.
func LBOptOptions(delta graph.Weight) Options {
	o := OptOptions(delta)
	o.LoadBalance = true
	return o
}

// DijkstraOptions is Δ-stepping with Δ=1, Dial's variant of Dijkstra's
// algorithm (the paper analyses Dijkstra as this configuration).
func DijkstraOptions() Options { return DelOptions(1) }

// BellmanFordOptions is Δ-stepping with Δ=∞.
func BellmanFordOptions() Options {
	return Options{Delta: BellmanFordDelta, EdgeClassification: true}
}

// RadiusSteppingOptions is the Radius Stepping policy with radius
// parameter k (0 = default). Delta is set to a valid placeholder; the
// policy does not use it.
func RadiusSteppingOptions(k int) Options {
	return Options{Policy: PolicyRadius, RadiusK: k, Delta: 1}
}

// RhoSteppingOptions is the ρ-stepping policy with batch size rho
// (0 = default). Delta is set to a valid placeholder; the policy does
// not use it.
func RhoSteppingOptions(rho int) Options {
	return Options{Policy: PolicyRho, Rho: rho, Delta: 1}
}
