package sssp

import (
	"testing"

	"parsssp/internal/gen"
	"parsssp/internal/graph"
)

func TestRunMultiSourceMinOverSources(t *testing.T) {
	g := rmatTestGraph
	sources := []graph.Vertex{testRoot(g), testRoot(g) + 7}
	res, err := RunMultiSource(g, 3, sources, OptOptions(25))
	if err != nil {
		t.Fatal(err)
	}
	// Reference: elementwise min of the single-source answers.
	want := make([]graph.Dist, g.NumVertices())
	for i := range want {
		want[i] = graph.Inf
	}
	for _, s := range sources {
		ref, err := Dijkstra(g, s)
		if err != nil {
			t.Fatal(err)
		}
		for v, d := range ref.Dist {
			if d < want[v] {
				want[v] = d
			}
		}
	}
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], want[v])
		}
	}
	for _, s := range sources {
		if res.Dist[s] != 0 || res.Parent[s] != s {
			t.Errorf("source %d: dist %d parent %d", s, res.Dist[s], res.Parent[s])
		}
	}
	if len(res.Dist) != g.NumVertices() {
		t.Errorf("virtual vertex leaked: %d distances", len(res.Dist))
	}
}

func TestRunMultiSourceSingle(t *testing.T) {
	g, err := gen.Path([]graph.Weight{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMultiSource(g, 2, []graph.Vertex{0}, OptOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[2] != 7 {
		t.Errorf("dist[2] = %d, want 7", res.Dist[2])
	}
}

func TestRunMultiSourcePathTracing(t *testing.T) {
	g, err := gen.Grid(10, 10, 1, 9, 6)
	if err != nil {
		t.Fatal(err)
	}
	sources := []graph.Vertex{0, 99}
	res, err := RunMultiSource(g, 2, sources, OptOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	// Every vertex's path must terminate at one of the sources with the
	// right length.
	for v := 0; v < g.NumVertices(); v += 7 {
		path, err := PathTo(res.Parent, graph.Vertex(v))
		if err != nil {
			t.Fatalf("PathTo(%d): %v", v, err)
		}
		if len(path) == 0 {
			t.Fatalf("vertex %d unreachable in a connected grid", v)
		}
		if path[0] != 0 && path[0] != 99 {
			t.Fatalf("path of %d starts at %d, not a source", v, path[0])
		}
		length, err := PathLength(g, path)
		if err != nil {
			t.Fatal(err)
		}
		if length != res.Dist[v] {
			t.Fatalf("vertex %d: path %d != dist %d", v, length, res.Dist[v])
		}
	}
}

func TestRunMultiSourceValidation(t *testing.T) {
	g, _ := gen.Path([]graph.Weight{1})
	if _, err := RunMultiSource(g, 1, nil, OptOptions(5)); err == nil {
		t.Error("empty sources accepted")
	}
	if _, err := RunMultiSource(g, 1, []graph.Vertex{0, 0}, OptOptions(5)); err == nil {
		t.Error("duplicate sources accepted")
	}
	if _, err := RunMultiSource(g, 1, []graph.Vertex{9}, OptOptions(5)); err == nil {
		t.Error("out-of-range source accepted")
	}
}
