package sssp

import (
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"parsssp/internal/comm"
	"parsssp/internal/comm/tcptransport"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
	"parsssp/internal/rmat"
)

// runOverTCP executes a distributed run over real TCP sockets on
// localhost (one goroutine per rank standing in for one process per
// rank) and assembles the global result.
func runOverTCP(t *testing.T, g *graph.Graph, ranks int, src graph.Vertex, opts Options) *Result {
	t.Helper()
	addrs := make([]string, ranks)
	listeners := make([]net.Listener, ranks)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}

	pd := partition.MustNew(partition.Block, g.NumVertices(), ranks)
	results := make([]*RankResult, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := tcptransport.New(tcptransport.Config{
				Addrs: addrs, Rank: r, DialTimeout: 10 * time.Second,
			})
			if err != nil {
				errs[r] = err
				return
			}
			defer tr.Close()
			results[r], errs[r] = RunRank(g, pd, src, opts, tr, 0)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	// Control-flow statistics must agree across ranks (lockstep).
	for r := 1; r < ranks; r++ {
		if results[r].Stats.Phases != results[0].Stats.Phases ||
			results[r].Stats.Epochs != results[0].Stats.Epochs {
			t.Errorf("rank %d phases/epochs diverge from rank 0", r)
		}
	}
	res, err := assemble(g, pd, results)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEngineOverTCP runs the full distributed algorithm over TCP and
// checks the result against Dijkstra. This is the end-to-end test of the
// MPI-substitute stack.
func TestEngineOverTCP(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	opts := OptOptions(25)
	opts.Threads = 2
	res := runOverTCP(t, g, 3, src, opts)

	want, err := Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Dist, want.Dist) {
		t.Error("TCP-machine distances mismatch Dijkstra")
	}
}

// TestRepairOverTCPMatchesRecompute is the transport-equivalence oracle
// for the dynamic subsystem: one RankServer per rank over real TCP
// sockets, driven through interleaved queries and incremental repairs.
// Every repaired tree must equal a from-scratch memtransport run on the
// updated graph — the same byte-for-byte contract dynamic_test.go proves
// in process, now across the wire.
func TestRepairOverTCPMatchesRecompute(t *testing.T) {
	base, err := rmat.Generate(rmat.Family2(9, 42))
	if err != nil {
		t.Fatalf("rmat: %v", err)
	}
	g := positivize(t, base)
	src := testRoot(g)
	const ranks = 3
	opts := OptOptions(25)
	opts.Threads = 2

	addrs := make([]string, ranks)
	listeners := make([]net.Listener, ranks)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}

	// The mesh handshake needs all endpoints dialing at once.
	trs := make([]comm.Transport, ranks)
	terrs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], terrs[r] = tcptransport.New(tcptransport.Config{
				Addrs: addrs, Rank: r, DialTimeout: 10 * time.Second,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range terrs {
		if err != nil {
			t.Fatalf("rank %d transport: %v", r, err)
		}
	}

	pd := partition.MustNew(partition.Block, g.NumVertices(), ranks)
	servers := make([]*RankServer, ranks)
	for r := range servers {
		servers[r], err = NewRankServer(g, pd, opts, []comm.Transport{trs[r]})
		if err != nil {
			t.Fatalf("NewRankServer %d: %v", r, err)
		}
	}
	defer func() {
		for _, s := range servers {
			s.Close() // closes the slot transports too
		}
	}()

	lockstep := func(fn func(r int, s *RankServer) error) {
		t.Helper()
		errs := make([]error, ranks)
		var wg sync.WaitGroup
		for r, s := range servers {
			wg.Add(1)
			go func(r int, s *RankServer) {
				defer wg.Done()
				errs[r] = fn(r, s)
			}(r, s)
		}
		wg.Wait()
		if err := firstCause(errs); err != nil {
			t.Fatalf("lockstep: %v", err)
		}
	}
	gather := func(curr *graph.Graph) *Result {
		t.Helper()
		rrs := make([]*RankResult, ranks)
		lockstep(func(r int, s *RankServer) error {
			rr, err := s.Query(0, src)
			rrs[r] = rr
			return err
		})
		res, err := assemble(curr, pd, rrs)
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		return res
	}

	requireTreesEqual(t, g, src, gather(g), opts, ranks, "tcp initial")

	rng := rand.New(rand.NewSource(83))
	cur := g
	for step := 0; step < 3; step++ {
		batch := randomBatch(rng, cur, 4, 4)
		target := uint64(step + 1)
		stats := make([]*RepairStats, ranks)
		lockstep(func(r int, s *RankServer) error {
			rs, err := s.ApplyUpdates(0, target, batch)
			stats[r] = rs
			return err
		})
		for r, rs := range stats {
			if rs == nil {
				t.Fatalf("step %d: rank %d did not repair", step, r)
			}
		}
		pv := servers[0].set.Acquire()
		cur = pv.Graph()
		servers[0].set.Release(pv)
		requireTreesEqual(t, cur, src, gather(cur), opts, ranks, "tcp repair")
	}
}

// TestEngineTCPMatchesMemtransport checks that the transport is
// invisible to the algorithm: the same query produces byte-identical
// trees and identical record-level statistics over TCP sockets and over
// the in-process transport, under both wire formats.
func TestEngineTCPMatchesMemtransport(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	for _, wf := range []WireFormat{WireV1, WireV2} {
		opts := OptOptions(25)
		opts.Threads = 2
		opts.WireFormat = wf
		tcpRes := runOverTCP(t, g, 3, src, opts)
		memRes := mustRun(t, g, 3, src, opts)
		if !reflect.DeepEqual(tcpRes.Dist, memRes.Dist) {
			t.Errorf("%v: distances differ between TCP and memtransport", wf)
		}
		if !reflect.DeepEqual(tcpRes.Parent, memRes.Parent) {
			t.Errorf("%v: parents differ between TCP and memtransport", wf)
		}
		k1, k2 := runKey(tcpRes), runKey(memRes)
		if !reflect.DeepEqual(k1, k2) {
			t.Errorf("%v: record-level stats differ:\ntcp: %+v\nmem: %+v", wf, k1, k2)
		}
		if b1, b2 := tcpRes.Stats.Traffic.BytesSent, memRes.Stats.Traffic.BytesSent; b1 != b2 {
			t.Errorf("%v: BytesSent differ between transports: tcp %d, mem %d", wf, b1, b2)
		}
	}
}
