package sssp

import (
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"parsssp/internal/comm/tcptransport"
	"parsssp/internal/partition"
)

// TestEngineOverTCP runs the full distributed algorithm over real TCP
// sockets on localhost (one goroutine per rank standing in for one
// process per rank) and checks the result against Dijkstra. This is the
// end-to-end test of the MPI-substitute stack.
func TestEngineOverTCP(t *testing.T) {
	const ranks = 3
	g := rmatTestGraph
	src := testRoot(g)

	addrs := make([]string, ranks)
	listeners := make([]net.Listener, ranks)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}

	pd := partition.MustNew(partition.Block, g.NumVertices(), ranks)
	opts := OptOptions(25)
	opts.Threads = 2

	results := make([]*RankResult, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := tcptransport.New(tcptransport.Config{
				Addrs: addrs, Rank: r, DialTimeout: 10 * time.Second,
			})
			if err != nil {
				errs[r] = err
				return
			}
			defer tr.Close()
			results[r], errs[r] = RunRank(g, pd, src, opts, tr, 0)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}

	dist := make([]int64, g.NumVertices())
	for _, rr := range results {
		for li, d := range rr.LocalDist {
			dist[pd.Global(rr.Rank, li)] = d
		}
	}
	want, err := Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist, want.Dist) {
		t.Error("TCP-machine distances mismatch Dijkstra")
	}
	// Control-flow statistics must agree across ranks (lockstep).
	for r := 1; r < ranks; r++ {
		if results[r].Stats.Phases != results[0].Stats.Phases ||
			results[r].Stats.Epochs != results[0].Stats.Epochs {
			t.Errorf("rank %d phases/epochs diverge from rank 0", r)
		}
	}
}
