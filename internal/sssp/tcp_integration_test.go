package sssp

import (
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"parsssp/internal/comm/tcptransport"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
)

// runOverTCP executes a distributed run over real TCP sockets on
// localhost (one goroutine per rank standing in for one process per
// rank) and assembles the global result.
func runOverTCP(t *testing.T, g *graph.Graph, ranks int, src graph.Vertex, opts Options) *Result {
	t.Helper()
	addrs := make([]string, ranks)
	listeners := make([]net.Listener, ranks)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}

	pd := partition.MustNew(partition.Block, g.NumVertices(), ranks)
	results := make([]*RankResult, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := tcptransport.New(tcptransport.Config{
				Addrs: addrs, Rank: r, DialTimeout: 10 * time.Second,
			})
			if err != nil {
				errs[r] = err
				return
			}
			defer tr.Close()
			results[r], errs[r] = RunRank(g, pd, src, opts, tr, 0)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	// Control-flow statistics must agree across ranks (lockstep).
	for r := 1; r < ranks; r++ {
		if results[r].Stats.Phases != results[0].Stats.Phases ||
			results[r].Stats.Epochs != results[0].Stats.Epochs {
			t.Errorf("rank %d phases/epochs diverge from rank 0", r)
		}
	}
	res, err := assemble(g, pd, results)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEngineOverTCP runs the full distributed algorithm over TCP and
// checks the result against Dijkstra. This is the end-to-end test of the
// MPI-substitute stack.
func TestEngineOverTCP(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	opts := OptOptions(25)
	opts.Threads = 2
	res := runOverTCP(t, g, 3, src, opts)

	want, err := Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Dist, want.Dist) {
		t.Error("TCP-machine distances mismatch Dijkstra")
	}
}

// TestEngineTCPMatchesMemtransport checks that the transport is
// invisible to the algorithm: the same query produces byte-identical
// trees and identical record-level statistics over TCP sockets and over
// the in-process transport, under both wire formats.
func TestEngineTCPMatchesMemtransport(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	for _, wf := range []WireFormat{WireV1, WireV2} {
		opts := OptOptions(25)
		opts.Threads = 2
		opts.WireFormat = wf
		tcpRes := runOverTCP(t, g, 3, src, opts)
		memRes := mustRun(t, g, 3, src, opts)
		if !reflect.DeepEqual(tcpRes.Dist, memRes.Dist) {
			t.Errorf("%v: distances differ between TCP and memtransport", wf)
		}
		if !reflect.DeepEqual(tcpRes.Parent, memRes.Parent) {
			t.Errorf("%v: parents differ between TCP and memtransport", wf)
		}
		k1, k2 := runKey(tcpRes), runKey(memRes)
		if !reflect.DeepEqual(k1, k2) {
			t.Errorf("%v: record-level stats differ:\ntcp: %+v\nmem: %+v", wf, k1, k2)
		}
		if b1, b2 := tcpRes.Stats.Traffic.BytesSent, memRes.Stats.Traffic.BytesSent; b1 != b2 {
			t.Errorf("%v: BytesSent differ between transports: tcp %d, mem %d", wf, b1, b2)
		}
	}
}
