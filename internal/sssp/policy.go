package sssp

import (
	"fmt"
	"sort"

	"parsssp/internal/graph"
)

// This file defines the stepping-policy seam: the priority/bucket
// discipline of the engine, abstracted so Δ-stepping (the paper's
// algorithm), Radius Stepping (Blelloch et al., arXiv 1602.03881) and
// ρ-stepping (Dong et al., arXiv 2105.06145) share one engine. A policy
// answers four questions the engine would otherwise hard-code:
//
//   - Frontier selection: which vertices relax next, and how many. Δ- and
//     ρ-stepping file vertices under a monotone integer key (key) in the
//     lazy-deletion bucketStore; Radius Stepping scans against a distance
//     threshold instead.
//   - Bucket assignment: the key a relaxed vertex re-files under
//     (applyRelaxIn / applyRelaxParallel / applyAsyncRelax).
//   - Short/long edge split: where a vertex's weight-sorted adjacency
//     splits into eagerly- and lazily-relaxed halves (shortEdgeEnd feeds
//     the plane's shortEnd table; deferWeight feeds the async mode's
//     deferral threshold).
//   - Settle condition: the largest distance an epoch may finalize
//     (settleBound for key-filed policies; the Radius driver's threshold
//     M plays the role directly). See DESIGN.md "Stepping policies" for
//     the per-policy soundness arguments.
//
// The stepper lives on the rankGraph (built by the sanctioned plane
// constructors, immutable afterwards — planepurity enforces this), so
// concurrent queries over one plane share it read-only like every other
// precomputed table.

// SteppingPolicy selects the engine's priority/bucket discipline.
type SteppingPolicy int

const (
	// PolicyDelta is the paper's Δ-stepping: buckets of width Δ, settled
	// one at a time with short-edge fixpoints and a long-edge phase. The
	// zero value, and the only policy supporting the paper's pruning,
	// IOS, push/pull and hybridization heuristics.
	PolicyDelta SteppingPolicy = iota
	// PolicyRadius is Radius Stepping: each epoch settles every vertex
	// within a globally-agreed distance threshold M = min over unsettled
	// v of d(v)+r(v), where the per-vertex radius r(v) is precomputed on
	// the plane. Fewer, fatter epochs than Δ-stepping on long-diameter
	// graphs.
	PolicyRadius
	// PolicyRho is ρ-stepping: a lazy-batched priority queue. Each epoch
	// relaxes the full adjacency of up to ⌈ρ/P⌉ vertices per rank from
	// the lowest-keyed bucket; nothing settles until the queue drains.
	PolicyRho
)

// String returns the flag spelling of the policy.
func (p SteppingPolicy) String() string {
	switch p {
	case PolicyDelta:
		return "delta"
	case PolicyRadius:
		return "radius"
	case PolicyRho:
		return "rho"
	default:
		return fmt.Sprintf("SteppingPolicy(%d)", int(p))
	}
}

// ParseSteppingPolicy parses the -policy flag values "delta", "radius"
// and "rho".
func ParseSteppingPolicy(s string) (SteppingPolicy, error) {
	switch s {
	case "delta":
		return PolicyDelta, nil
	case "radius":
		return PolicyRadius, nil
	case "rho":
		return PolicyRho, nil
	}
	return PolicyDelta, fmt.Errorf("sssp: unknown stepping policy %q (want delta, radius or rho)", s)
}

// stepper is a stepping policy bound to one plane: the pure per-plane
// parameters (Δ, the ρ quantum, the radius quantum) resolved against the
// graph, shared read-only by every query. Distance-dependent state stays
// in queryState; the Radius policy's r(v) table is the rankGraph.radius
// column.
type stepper interface {
	// policy identifies the discipline (the apply paths switch on it).
	policy() SteppingPolicy
	// unbounded reports the single-bucket degeneracy (Δ=∞ today): every
	// finite distance files under key 0, there is no long-edge phase, and
	// the engine may run its Bellman-Ford fast path. Replaces the old
	// engine-wide comparisons against the BellmanFordDelta sentinel,
	// which ρ/radius configurations must never trip.
	unbounded() bool
	// key files a finite tentative distance under a bucket key. Monotone
	// non-decreasing in the distance; used by the store-based BSP paths
	// and by the async mode's priority buckets.
	key(d graph.Dist) int64
	// settleBound is the largest distance filed under key k — what the
	// key-filed disciplines may finalize once bucket k reaches fixpoint.
	settleBound(k int64) graph.Dist
	// shortEdgeEnd is the short/long split point of v's weight-sorted
	// adjacency (the plane's shortEnd table). Policies without a
	// short/long phase split return the full degree.
	shortEdgeEnd(g *graph.Graph, v graph.Vertex) int
	// deferWeight is the async mode's long-edge deferral threshold:
	// edges of at least this weight are parked until no lighter pending
	// work remains (see async.go). Policy-supplied because "long" is
	// relative to how far one epoch advances — Δ for Δ-stepping, the
	// respective quantum for ρ and radius.
	deferWeight() graph.Weight
	// batchCap bounds how many vertices one epoch may take from the
	// frontier on this rank; zero means unlimited. Only ρ-stepping caps.
	batchCap() int
}

// ---- Δ-stepping ------------------------------------------------------------

type deltaStepper struct {
	delta graph.Weight
	dd    graph.Dist
}

func (s *deltaStepper) policy() SteppingPolicy        { return PolicyDelta }
func (s *deltaStepper) unbounded() bool               { return s.delta == BellmanFordDelta }
func (s *deltaStepper) key(d graph.Dist) int64        { return int64(d / s.dd) }
func (s *deltaStepper) settleBound(k int64) graph.Dist { return (k+1)*s.dd - 1 }
func (s *deltaStepper) deferWeight() graph.Weight     { return s.delta }
func (s *deltaStepper) batchCap() int                 { return 0 }

func (s *deltaStepper) shortEdgeEnd(g *graph.Graph, v graph.Vertex) int {
	return g.ShortEdgeEnd(v, s.delta)
}

// ---- Radius Stepping -------------------------------------------------------

// radiusStepper carries the scalar parameters of the Radius policy; the
// per-vertex radius table is rankGraph.radius. The quantum q (the median
// radius) keys the async mode's priority buckets and deferral — the BSP
// driver never files by key, it scans against its threshold M.
type radiusStepper struct {
	k int        // r(v) = k-th smallest incident edge weight
	q graph.Dist // median radius; async bucket quantum and deferral unit
}

func (s *radiusStepper) policy() SteppingPolicy        { return PolicyRadius }
func (s *radiusStepper) unbounded() bool               { return false }
func (s *radiusStepper) key(d graph.Dist) int64        { return int64(d / s.q) }
func (s *radiusStepper) settleBound(k int64) graph.Dist { return (k+1)*s.q - 1 }
func (s *radiusStepper) batchCap() int                 { return 0 }

func (s *radiusStepper) deferWeight() graph.Weight {
	if s.q > graph.Dist(BellmanFordDelta) {
		return BellmanFordDelta
	}
	return graph.Weight(s.q)
}

// Radius Stepping has no short/long phase split: every epoch relaxes the
// full adjacency of its sub-threshold frontier.
func (s *radiusStepper) shortEdgeEnd(g *graph.Graph, v graph.Vertex) int {
	return g.Degree(v)
}

// ---- ρ-stepping ------------------------------------------------------------

// rhoStepper carries the ρ policy's plane parameters: the key quantum q
// (distances are batched q apart — the "lazy" in lazy batching; derived
// from the graph's median incident weight) and the per-rank batch cap
// ⌈ρ/P⌉.
type rhoStepper struct {
	q   graph.Dist
	cap int
}

func (s *rhoStepper) policy() SteppingPolicy        { return PolicyRho }
func (s *rhoStepper) unbounded() bool               { return false }
func (s *rhoStepper) key(d graph.Dist) int64        { return int64(d / s.q) }
func (s *rhoStepper) settleBound(k int64) graph.Dist { return (k+1)*s.q - 1 }
func (s *rhoStepper) batchCap() int                 { return s.cap }

func (s *rhoStepper) deferWeight() graph.Weight {
	if s.q > graph.Dist(BellmanFordDelta) {
		return BellmanFordDelta
	}
	return graph.Weight(s.q)
}

// ρ-stepping relaxes full adjacencies; no short/long split.
func (s *rhoStepper) shortEdgeEnd(g *graph.Graph, v graph.Vertex) int {
	return g.Degree(v)
}

// ---- shared precompute helpers --------------------------------------------

// vertexRadius returns the Radius policy's r(v): the k-th smallest
// incident edge weight (adjacency is weight-sorted, so that is a direct
// index), clamped to the degree, and at least 1 so thresholds strictly
// advance even through zero-weight edges. This one-hop approximation of
// Blelloch et al.'s k-nearest-ball radius keeps the precompute O(1) per
// vertex; any positive radius is sound (see DESIGN.md), only round
// counts vary with the approximation quality.
func vertexRadius(g *graph.Graph, v graph.Vertex, k int) graph.Dist {
	deg := g.Degree(v)
	if deg == 0 {
		return 1
	}
	i := k
	if i > deg {
		i = deg
	}
	_, ws := g.Neighbors(v)
	r := graph.Dist(ws[i-1])
	if r < 1 {
		r = 1
	}
	return r
}

// statSampleCap bounds the deterministic vertex samples behind the
// policy quantums: large enough for a stable median, small enough that a
// patched-plane rebuild pays O(1) for it.
const statSampleCap = 2048

// sampleMedian collects stat(v) over an evenly-strided deterministic
// vertex sample and returns the sample median, at least 1. Every rank
// computes the identical value (full graph, fixed stride) — a policy
// parameter that differed across ranks would diverge the collective
// schedule.
func sampleMedian(g *graph.Graph, stat func(v graph.Vertex) graph.Dist) graph.Dist {
	n := g.NumVertices()
	if n == 0 {
		return 1
	}
	stride := (n + statSampleCap - 1) / statSampleCap
	if stride < 1 {
		stride = 1
	}
	sample := make([]graph.Dist, 0, statSampleCap)
	for v := 0; v < n; v += stride {
		sample = append(sample, stat(graph.Vertex(v)))
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	m := sample[len(sample)/2]
	if m < 1 {
		m = 1
	}
	return m
}

// radiusQuantum is the Radius policy's async bucket quantum: the median
// r(v) over a deterministic sample.
func radiusQuantum(g *graph.Graph, k int) graph.Dist {
	return sampleMedian(g, func(v graph.Vertex) graph.Dist {
		return vertexRadius(g, v, k)
	})
}

// rhoQuantum is the ρ policy's key quantum: the median of the sampled
// vertices' median incident edge weight — the scale at which batching
// nearby distances together stops changing the relaxation order much.
func rhoQuantum(g *graph.Graph) graph.Dist {
	return sampleMedian(g, func(v graph.Vertex) graph.Dist {
		deg := g.Degree(v)
		if deg == 0 {
			return 1
		}
		_, ws := g.Neighbors(v)
		return graph.Dist(ws[deg/2])
	})
}
