package sssp

import (
	"encoding/binary"

	"parsssp/internal/graph"
)

// Wire records. Record kind is implied by the superstep (relax supersteps
// carry only relax records, request supersteps only requests).
//
//	relax:   v uint32, parent uint32, dist int64 — "set d(v) =
//	         min(d(v), dist), recording parent as the tree predecessor
//	         if the relaxation wins"
//	request: u uint32, v uint32, w uint32 — "if u is in the current
//	         bucket, send relax(v, d(u)+w, parent=u) to v's owner"
//
// Parents make the result a full Graph500-style SSSP tree at the cost of
// 4 bytes per relaxation message.
const (
	relaxRecordSize   = 16
	requestRecordSize = 12
)

// appendRelax appends a relax record to buf.
func appendRelax(buf []byte, v, parent graph.Vertex, d graph.Dist) []byte {
	var rec [relaxRecordSize]byte
	binary.LittleEndian.PutUint32(rec[0:4], v)
	binary.LittleEndian.PutUint32(rec[4:8], parent)
	binary.LittleEndian.PutUint64(rec[8:16], uint64(d))
	return append(buf, rec[:]...)
}

// decodeRelax reads the i-th relax record of buf.
func decodeRelax(buf []byte, i int) (v, parent graph.Vertex, d graph.Dist) {
	off := i * relaxRecordSize
	v = binary.LittleEndian.Uint32(buf[off : off+4])
	parent = binary.LittleEndian.Uint32(buf[off+4 : off+8])
	d = graph.Dist(binary.LittleEndian.Uint64(buf[off+8 : off+16]))
	return v, parent, d
}

// numRelaxRecords returns the relax record count of a buffer.
func numRelaxRecords(buf []byte) int { return len(buf) / relaxRecordSize }

// appendRequest appends a pull-request record to buf.
func appendRequest(buf []byte, u, v graph.Vertex, w graph.Weight) []byte {
	var rec [requestRecordSize]byte
	binary.LittleEndian.PutUint32(rec[0:4], u)
	binary.LittleEndian.PutUint32(rec[4:8], v)
	binary.LittleEndian.PutUint32(rec[8:12], w)
	return append(buf, rec[:]...)
}

// decodeRequest reads the i-th request record of buf.
func decodeRequest(buf []byte, i int) (u, v graph.Vertex, w graph.Weight) {
	off := i * requestRecordSize
	u = binary.LittleEndian.Uint32(buf[off : off+4])
	v = binary.LittleEndian.Uint32(buf[off+4 : off+8])
	w = binary.LittleEndian.Uint32(buf[off+8 : off+12])
	return u, v, w
}

// numRequestRecords returns the request record count of a buffer.
func numRequestRecords(buf []byte) int { return len(buf) / requestRecordSize }
