package sssp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"parsssp/internal/graph"
)

// Wire records. Record kind is implied by the superstep (relax supersteps
// carry only relax records, request supersteps only requests).
//
//	relax:   v, parent, dist — "set d(v) = min(d(v), dist), recording
//	         parent as the tree predecessor if the relaxation wins"
//	request: u, v, w — "if u is in the current bucket, send
//	         relax(v, d(u)+w, parent=u) to v's owner"
//
// Parents make the result a full Graph500-style SSSP tree at the cost of
// one parent id per relaxation message.
//
// Two encodings exist, selected by Options.WireFormat:
//
//   - v1 is fixed-width (16-byte relax, 12-byte request records) in
//     emission order. It is the historical format; paper-metric runs that
//     want byte counts proportional to record counts use it.
//   - v2 is a batch codec: a uvarint record count, then varint-packed
//     records. Relax batches are stably sorted by destination vertex so
//     ids delta-encode (usually 1–2 bytes); parent and dist are plain
//     uvarints. Request batches stay in emission order (sorting them
//     would permute the pull responses derived from them) with u, v, w
//     as plain uvarints. A typical relax record shrinks from 16 to ~5–7
//     bytes. Decoding is sequential via relaxReader / requestReader.
//
// Both decode through the same readers, so the apply paths are
// format-oblivious. See DESIGN.md "Wire format v2" for the layouts and
// the argument that sorting relax batches cannot change results.

// WireFormat selects the exchange record encoding.
type WireFormat int

const (
	// WireV2 is the compact batch codec (sorted, delta+varint). The
	// default.
	WireV2 WireFormat = iota
	// WireV1 is the fixed-width record format: 16 bytes per relax
	// record, 12 per request, in emission order.
	WireV1
)

// String returns the format name.
func (wf WireFormat) String() string {
	switch wf {
	case WireV2:
		return "v2"
	case WireV1:
		return "v1"
	default:
		return fmt.Sprintf("WireFormat(%d)", int(wf))
	}
}

// recKind tells the codec which record schema a superstep carries.
type recKind int

const (
	relaxKind recKind = iota
	requestKind
)

const (
	relaxRecordSize   = 16
	requestRecordSize = 12
)

// ---- v1 fixed-width records ------------------------------------------------

// appendRelax appends a v1 relax record to buf. v1 doubles as the
// in-memory staging format of the per-thread emission buffers, whatever
// format goes on the wire.
func appendRelax(buf []byte, v, parent graph.Vertex, d graph.Dist) []byte {
	var rec [relaxRecordSize]byte
	binary.LittleEndian.PutUint32(rec[0:4], v)
	binary.LittleEndian.PutUint32(rec[4:8], parent)
	binary.LittleEndian.PutUint64(rec[8:16], uint64(d))
	return append(buf, rec[:]...)
}

// decodeRelax reads the i-th v1 relax record of buf.
func decodeRelax(buf []byte, i int) (v, parent graph.Vertex, d graph.Dist) {
	off := i * relaxRecordSize
	v = binary.LittleEndian.Uint32(buf[off : off+4])
	parent = binary.LittleEndian.Uint32(buf[off+4 : off+8])
	d = graph.Dist(binary.LittleEndian.Uint64(buf[off+8 : off+16]))
	return v, parent, d
}

// numRelaxRecords returns the v1 relax record count of a buffer.
func numRelaxRecords(buf []byte) int { return len(buf) / relaxRecordSize }

// ---- parent-field tagging ---------------------------------------------------

// The parent field of a relax record carries, besides the tree
// predecessor's id, one flag in its lowest bit: whether the offering
// edge has zero weight. Parent election needs the distinction (see
// applyRelaxIn): offers over zero-weight edges must not compete in the
// canonical equal-distance election, because inside a cluster of
// equal-distance vertices joined by zero-weight edges a pointwise min-id
// election can pick parents that form a cycle. Both wire formats carry
// the field opaquely, so only the emit and apply sites know about the
// tag. Shifting the id left one bit caps vertex ids at 2^31-1, far above
// what the int-indexed CSR can host anyway.

// tagParent packs a parent id and the zero-weight flag of the offering
// edge into a relax record's parent field.
func tagParent(parent graph.Vertex, w graph.Weight) graph.Vertex {
	t := parent << 1
	if w == 0 {
		t |= 1
	}
	return t
}

// untagParent splits a relax record's parent field back into the
// predecessor id and the zero-weight flag.
func untagParent(t graph.Vertex) (parent graph.Vertex, zeroW bool) {
	return t >> 1, t&1 == 1
}

// appendRequest appends a v1 pull-request record to buf.
func appendRequest(buf []byte, u, v graph.Vertex, w graph.Weight) []byte {
	var rec [requestRecordSize]byte
	binary.LittleEndian.PutUint32(rec[0:4], u)
	binary.LittleEndian.PutUint32(rec[4:8], v)
	binary.LittleEndian.PutUint32(rec[8:12], w)
	return append(buf, rec[:]...)
}

// decodeRequest reads the i-th v1 request record of buf.
func decodeRequest(buf []byte, i int) (u, v graph.Vertex, w graph.Weight) {
	off := i * requestRecordSize
	u = binary.LittleEndian.Uint32(buf[off : off+4])
	v = binary.LittleEndian.Uint32(buf[off+4 : off+8])
	w = binary.LittleEndian.Uint32(buf[off+8 : off+12])
	return u, v, w
}

// numRequestRecords returns the v1 request record count of a buffer.
func numRequestRecords(buf []byte) int { return len(buf) / requestRecordSize }

// ---- v2 batch codec --------------------------------------------------------

// relaxRec is a decoded relax record, the unit the v2 encoder sorts.
type relaxRec struct {
	v      graph.Vertex
	parent graph.Vertex
	dist   graph.Dist
}

// relaxSorter holds the pooled scratch buffer of the stable radix sort
// used on relax batches. Embedded by value in the engine so repeated
// sorts reuse the same storage.
type relaxSorter struct{ aux []relaxRec }

// encodeRelaxBatch appends the v2 encoding of recs to buf. recs must be
// sorted by v ascending (the delta encoding requires it); use
// sortRelaxBatch to get there without changing per-vertex record order.
func encodeRelaxBatch(buf []byte, recs []relaxRec) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	prev := graph.Vertex(0)
	for _, rec := range recs {
		buf = binary.AppendUvarint(buf, uint64(rec.v-prev))
		prev = rec.v
		buf = binary.AppendUvarint(buf, uint64(rec.parent))
		buf = binary.AppendUvarint(buf, uint64(rec.dist))
	}
	return buf
}

// sortRelaxBatch stably sorts recs by destination vertex: insertion sort
// for small batches, an LSD radix sort on the vertex id (pooled scratch,
// trivial byte passes skipped) for the rest. Both are stable, which the
// determinism argument needs — equal-vertex records must keep their
// emission order so v1 and v2 elect the same first-wins parent.
// sort.Stable's in-place merging dominated CPU profiles of the encode
// path about 4x, hence the hand-rolled sort.
func sortRelaxBatch(s *relaxSorter, recs []relaxRec) {
	n := len(recs)
	if n < 64 {
		for i := 1; i < n; i++ {
			rec := recs[i]
			j := i - 1
			for j >= 0 && recs[j].v > rec.v {
				recs[j+1] = recs[j]
				j--
			}
			recs[j+1] = rec
		}
		return
	}
	var hist [4][256]int
	for i := range recs {
		v := recs[i].v
		hist[0][v&0xFF]++
		hist[1][(v>>8)&0xFF]++
		hist[2][(v>>16)&0xFF]++
		hist[3][(v>>24)&0xFF]++
	}
	if cap(s.aux) < n {
		s.aux = make([]relaxRec, n)
	}
	from, to := recs, s.aux[:n]
	for pass := 0; pass < 4; pass++ {
		shift := uint(8 * pass)
		h := &hist[pass]
		if h[(from[0].v>>shift)&0xFF] == n {
			continue // every key shares this byte; nothing to reorder
		}
		off := 0
		for b := 0; b < 256; b++ {
			c := h[b]
			h[b] = off
			off += c
		}
		for i := range from {
			b := (from[i].v >> shift) & 0xFF
			to[h[b]] = from[i]
			h[b]++
		}
		from, to = to, from
	}
	if &from[0] != &recs[0] {
		copy(recs, from)
	}
}

// encodeRequestBatch appends the v2 encoding of a request batch staged in
// v1 layout. Requests are NOT sorted: the responder walks them in order,
// and permuting requests would permute the emitted responses.
func encodeRequestBatch(buf []byte, v1buf []byte) []byte {
	n := numRequestRecords(v1buf)
	buf = binary.AppendUvarint(buf, uint64(n))
	for i := 0; i < n; i++ {
		u, v, w := decodeRequest(v1buf, i)
		buf = binary.AppendUvarint(buf, uint64(u))
		buf = binary.AppendUvarint(buf, uint64(v))
		buf = binary.AppendUvarint(buf, uint64(w))
	}
	return buf
}

// wireRecordCount returns the record count of an encoded buffer without
// decoding the records: the length quotient for v1, the header for v2.
// Malformed v2 headers count as zero, matching the readers.
func wireRecordCount(buf []byte, kind recKind, wf WireFormat) int {
	if wf == WireV1 {
		if kind == relaxKind {
			return numRelaxRecords(buf)
		}
		return numRequestRecords(buf)
	}
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return 0
	}
	return int(n)
}

// totalWireRecords sums wireRecordCount over received buffers.
func totalWireRecords(in [][]byte, kind recKind, wf WireFormat) int {
	total := 0
	for _, buf := range in {
		total += wireRecordCount(buf, kind, wf)
	}
	return total
}

// ---- format-oblivious readers ---------------------------------------------

// readUvarint decodes the uvarint at buf[off:], returning the value and
// the offset past it. A zero next offset means malformed input
// (truncated buffer or overlong varint); the readers stop there. The
// one- and two-byte cases are inlined — delta-encoded vertex ids are
// almost always a single byte, and the generic binary.Uvarint loop
// dominated decode profiles.
func readUvarint(buf []byte, off int) (uint64, int) {
	if off+1 < len(buf) {
		b0 := buf[off]
		if b0 < 0x80 {
			return uint64(b0), off + 1
		}
		if b1 := buf[off+1]; b1 < 0x80 {
			return uint64(b0&0x7F) | uint64(b1)<<7, off + 2
		}
	} else if off < len(buf) && buf[off] < 0x80 {
		return uint64(buf[off]), off + 1
	}
	v, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return 0, 0
	}
	return v, off + n
}

// errMalformedPayload is what the readers report for buffers our
// encoders cannot have produced: a truncated or trailing-junk frame, a
// dishonest record count, an overlong varint. The engine turns it into a
// query failure — a damaged frame must surface as an error, never as
// silently fewer (or garbage) relaxations.
var errMalformedPayload = errors.New("malformed wire records")

// relaxReader iterates the relax records of one encoded buffer in either
// format. On a malformed buffer (truncated or overlong varints — possible
// only with corrupted input, never from our encoders) it stops early
// rather than panicking and records the damage; callers check err()
// after draining the reader.
type relaxReader struct {
	buf  []byte
	off  int // byte offset (v2) or record index (v1)
	n    int // records remaining
	prev graph.Vertex
	v1   bool
	bad  bool // malformed input seen
}

// newRelaxReader positions a reader at the first record of buf.
func newRelaxReader(buf []byte, wf WireFormat) relaxReader {
	if wf == WireV1 {
		// v1 buffers are whole 16-byte records; a remainder means the
		// frame was cut short.
		return relaxReader{buf: buf, n: numRelaxRecords(buf), v1: true,
			bad: len(buf)%relaxRecordSize != 0}
	}
	if len(buf) == 0 {
		return relaxReader{} // nothing from this rank: the common, honest case
	}
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > uint64(len(buf)-sz) {
		// A valid record needs >= 1 byte per field, so a count beyond the
		// remaining bytes cannot be honest.
		return relaxReader{bad: true}
	}
	if n == 0 && sz != len(buf) {
		return relaxReader{bad: true} // junk after an empty batch
	}
	return relaxReader{buf: buf, off: sz, n: int(n)}
}

// err reports whether the reader met input our encoders cannot produce.
// Meaningful once next has returned ok=false.
func (rd *relaxReader) err() error {
	if rd.bad {
		return errMalformedPayload
	}
	return nil
}

// next returns the next record, or ok=false when exhausted.
func (rd *relaxReader) next() (v, parent graph.Vertex, d graph.Dist, ok bool) {
	if rd.n <= 0 {
		return 0, 0, 0, false
	}
	rd.n--
	if rd.v1 {
		v, parent, d = decodeRelax(rd.buf, rd.off)
		rd.off++
		return v, parent, d, true
	}
	dv, o1 := readUvarint(rd.buf, rd.off)
	if o1 == 0 {
		rd.n, rd.bad = 0, true
		return 0, 0, 0, false
	}
	p, o2 := readUvarint(rd.buf, o1)
	if o2 == 0 {
		rd.n, rd.bad = 0, true
		return 0, 0, 0, false
	}
	du, o3 := readUvarint(rd.buf, o2)
	if o3 == 0 {
		rd.n, rd.bad = 0, true
		return 0, 0, 0, false
	}
	rd.off = o3
	if rd.n == 0 && rd.off != len(rd.buf) {
		rd.bad = true // trailing junk after the counted records
	}
	rd.prev += graph.Vertex(dv)
	return rd.prev, graph.Vertex(p), graph.Dist(du), true
}

// requestReader iterates the request records of one encoded buffer in
// either format, with the same malformed-input tolerance (and err
// reporting) as relaxReader.
type requestReader struct {
	buf []byte
	off int
	n   int
	v1  bool
	bad bool
}

// newRequestReader positions a reader at the first record of buf.
func newRequestReader(buf []byte, wf WireFormat) requestReader {
	if wf == WireV1 {
		return requestReader{buf: buf, n: numRequestRecords(buf), v1: true,
			bad: len(buf)%requestRecordSize != 0}
	}
	if len(buf) == 0 {
		return requestReader{}
	}
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > uint64(len(buf)-sz) {
		return requestReader{bad: true}
	}
	if n == 0 && sz != len(buf) {
		return requestReader{bad: true}
	}
	return requestReader{buf: buf, off: sz, n: int(n)}
}

// err reports whether the reader met input our encoders cannot produce.
// Meaningful once next has returned ok=false.
func (rd *requestReader) err() error {
	if rd.bad {
		return errMalformedPayload
	}
	return nil
}

// next returns the next record, or ok=false when exhausted.
func (rd *requestReader) next() (u, v graph.Vertex, w graph.Weight, ok bool) {
	if rd.n <= 0 {
		return 0, 0, 0, false
	}
	rd.n--
	if rd.v1 {
		u, v, w = decodeRequest(rd.buf, rd.off)
		rd.off++
		return u, v, w, true
	}
	uu, o1 := readUvarint(rd.buf, rd.off)
	if o1 == 0 {
		rd.n, rd.bad = 0, true
		return 0, 0, 0, false
	}
	vv, o2 := readUvarint(rd.buf, o1)
	if o2 == 0 {
		rd.n, rd.bad = 0, true
		return 0, 0, 0, false
	}
	ww, o3 := readUvarint(rd.buf, o2)
	if o3 == 0 {
		rd.n, rd.bad = 0, true
		return 0, 0, 0, false
	}
	rd.off = o3
	if rd.n == 0 && rd.off != len(rd.buf) {
		rd.bad = true
	}
	return graph.Vertex(uu), graph.Vertex(vv), graph.Weight(ww), true
}
