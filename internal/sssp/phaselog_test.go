package sssp

import (
	"bytes"
	"strings"
	"testing"
)

func TestPhaseLogDisabledByDefault(t *testing.T) {
	g := rmatTestGraph
	res := mustRun(t, g, 2, testRoot(g), OptOptions(25))
	if len(res.Stats.PhaseLog) != 0 {
		t.Errorf("phase log recorded without RecordPhases: %d entries", len(res.Stats.PhaseLog))
	}
}

func TestPhaseLogTimeline(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	opts := OptOptions(25)
	opts.RecordPhases = true
	opts.Threads = 2
	res := mustRun(t, g, 3, src, opts)
	log := res.Stats.PhaseLog
	// Relaxations across the timeline must account for the totals.
	var relax int64
	kinds := map[PhaseKind]int{}
	for _, p := range log {
		relax += p.Relax
		kinds[p.Kind]++
		if p.Active < 0 || p.Relax < 0 || p.Duration < 0 {
			t.Fatalf("degenerate record %+v", p)
		}
		if p.Kind == PhaseBellmanFord && p.Bucket != -1 {
			t.Fatalf("Bellman-Ford record carries bucket %d", p.Bucket)
		}
	}
	if relax != res.Stats.Relax.Total() {
		t.Errorf("timeline relax sum %d != total %d", relax, res.Stats.Relax.Total())
	}
	if kinds[PhaseShort] == 0 || kinds[PhaseOuterShort] == 0 {
		t.Errorf("timeline missing phase kinds: %v", kinds)
	}
	// The timeline is finer-grained than Stats.Phases: the IOS outer-short
	// pass of each epoch gets its own record while Phases counts the whole
	// long-edge phase once.
	if got, want := int64(len(log)), res.Stats.Phases+int64(kinds[PhaseOuterShort]); got != want {
		t.Errorf("timeline has %d entries, want %d (phases %d + outer-short %d)",
			got, want, res.Stats.Phases, kinds[PhaseOuterShort])
	}
	if res.Stats.HybridSwitched && kinds[PhaseBellmanFord] == 0 {
		t.Errorf("hybrid run recorded no Bellman-Ford phases: %v", kinds)
	}
	// Buckets must be non-decreasing until the Bellman-Ford tail.
	prev := int64(-1)
	for _, p := range log {
		if p.Kind == PhaseBellmanFord {
			break
		}
		if p.Bucket < prev {
			t.Fatalf("bucket order violated: %d after %d", p.Bucket, prev)
		}
		prev = p.Bucket
	}
}

func TestPhaseKindString(t *testing.T) {
	want := map[PhaseKind]string{
		PhaseShort:       "short",
		PhaseOuterShort:  "outer-short",
		PhaseLongPush:    "long-push",
		PhaseLongPull:    "long-pull",
		PhaseBellmanFord: "bellman-ford",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if PhaseKind(99).String() == "" {
		t.Error("unknown kind stringer empty")
	}
}

func TestPhaseLogPullRecorded(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	mode := ModePull
	opts := PruneOptions(25)
	opts.ForceMode = &mode
	opts.RecordPhases = true
	res := mustRun(t, g, 2, src, opts)
	found := false
	for _, p := range res.Stats.PhaseLog {
		if p.Kind == PhaseLongPull && p.Relax > 0 {
			found = true
		}
	}
	if !found {
		t.Error("forced-pull run recorded no pull phases with work")
	}
}

func TestFormatTimeline(t *testing.T) {
	g := rmatTestGraph
	opts := OptOptions(25)
	opts.RecordPhases = true
	res := mustRun(t, g, 2, testRoot(g), opts)
	var buf bytes.Buffer
	if err := FormatTimeline(&buf, res.Stats.PhaseLog); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"bucket", "short", "total phase time"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != len(res.Stats.PhaseLog)+2 {
		t.Errorf("timeline has %d lines for %d phases", lines, len(res.Stats.PhaseLog))
	}
}

func TestFormatTimelineEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := FormatTimeline(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Errorf("empty timeline message missing: %q", buf.String())
	}
}
