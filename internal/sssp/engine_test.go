package sssp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"parsssp/internal/comm"
	"parsssp/internal/gen"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
	"parsssp/internal/rmat"
)

// rmatTestGraph caches a small skewed graph shared by heuristic tests.
var rmatTestGraph = func() *graph.Graph {
	g, err := rmat.Generate(rmat.Family1(11, 123))
	if err != nil {
		panic(err)
	}
	return g
}()

func testRoot(g *graph.Graph) graph.Vertex {
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(graph.Vertex(v)) > 8 {
			return graph.Vertex(v)
		}
	}
	return 0
}

func mustRun(t *testing.T, g *graph.Graph, ranks int, src graph.Vertex, opts Options) *Result {
	t.Helper()
	res, err := Run(g, ranks, src, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestDijkstraRelaxesEveryEdgeTwice(t *testing.T) {
	g, err := gen.Grid(20, 20, 1, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relaxations != 2*g.NumEdges() {
		t.Errorf("Dijkstra relaxations = %d, want %d", res.Relaxations, 2*g.NumEdges())
	}
	if res.Reached != int64(g.NumVertices()) {
		t.Errorf("Reached = %d, want all %d", res.Reached, g.NumVertices())
	}
}

func TestWorkPhaseTradeoffSequential(t *testing.T) {
	// Paper §II-B: work(Dijkstra) ≤ work(Δ) ≤ work(BF) and
	// phases(BF) ≤ phases(Δ) ≤ phases(Dijkstra), loosely verified.
	g := rmatTestGraph
	src := testRoot(g)
	dij, err := Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := BellmanFord(g, src)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := SeqDeltaStepping(g, src, 25)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Relaxations < dij.Relaxations {
		t.Errorf("BF relaxations %d < Dijkstra %d", bf.Relaxations, dij.Relaxations)
	}
	if mid.Phases > 4*bf.Phases && mid.Phases > dij.Phases {
		t.Errorf("Δ-stepping phases %d exceed both endpoints (BF %d)", mid.Phases, bf.Phases)
	}
}

func TestPruneReducesRelaxations(t *testing.T) {
	// The pruning heuristic must cut relaxations substantially on a
	// skewed graph (paper: ~5x on RMAT-1).
	g := rmatTestGraph
	src := testRoot(g)
	del := mustRun(t, g, 4, src, DelOptions(25))
	prune := mustRun(t, g, 4, src, PruneOptions(25))
	if prune.Stats.Relax.Total() >= del.Stats.Relax.Total() {
		t.Errorf("Prune relaxations %d not below Del %d",
			prune.Stats.Relax.Total(), del.Stats.Relax.Total())
	}
}

func TestHybridReducesEpochs(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	prune := mustRun(t, g, 4, src, PruneOptions(25))
	opt := mustRun(t, g, 4, src, OptOptions(25))
	if !opt.Stats.HybridSwitched {
		t.Fatalf("hybrid never switched (settled fraction too low?)")
	}
	if opt.Stats.Epochs >= prune.Stats.Epochs {
		t.Errorf("Opt epochs %d not below Prune %d", opt.Stats.Epochs, prune.Stats.Epochs)
	}
	if opt.Stats.BFPhases == 0 {
		t.Error("hybrid switch recorded no Bellman-Ford rounds")
	}
}

func TestIOSReducesShortRelaxations(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	with := PruneOptions(25)
	without := PruneOptions(25)
	without.IOS = false
	a := mustRun(t, g, 4, src, with)
	b := mustRun(t, g, 4, src, without)
	// IOS moves outer-short relaxations out of the iterative phases; the
	// combined short-edge work must not grow, and some edges must have
	// been suppressed.
	iosShort := a.Stats.Relax.ShortPush + a.Stats.Relax.OuterShortPush
	if iosShort > b.Stats.Relax.ShortPush {
		t.Errorf("IOS short work %d exceeds non-IOS %d", iosShort, b.Stats.Relax.ShortPush)
	}
	if a.Stats.Relax.Skipped == 0 {
		t.Error("IOS suppressed no relaxations")
	}
}

func TestCensusAccounting(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	opts := PruneOptions(25)
	opts.Census = true
	res := mustRun(t, g, 4, src, opts)
	var categorized int64
	for _, b := range res.Stats.Buckets {
		categorized += b.SelfEdges + b.BackwardEdges + b.ForwardEdges
	}
	if categorized != res.Stats.Relax.LongPush {
		t.Errorf("census categorized %d records, long pushes %d",
			categorized, res.Stats.Relax.LongPush)
	}
	for _, mode := range res.Stats.Decisions {
		if mode != ModePush {
			t.Error("census mode made a pull decision")
		}
	}
}

func TestDecisionSequenceHonored(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	base := mustRun(t, g, 2, src, PruneOptions(25))
	if len(base.Stats.Decisions) < 2 {
		t.Skip("graph settles in fewer than 2 epochs")
	}
	seq := make([]Mode, len(base.Stats.Decisions))
	for i := range seq {
		seq[i] = ModePull
	}
	opts := PruneOptions(25)
	opts.DecisionSequence = seq
	res := mustRun(t, g, 2, src, opts)
	for i, m := range res.Stats.Decisions {
		if i < len(seq) && m != ModePull {
			t.Errorf("epoch %d decision = %v, want forced pull", i, m)
		}
	}
}

func TestForceModeHonored(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	for _, want := range []Mode{ModePush, ModePull} {
		mode := want
		opts := PruneOptions(25)
		opts.ForceMode = &mode
		res := mustRun(t, g, 2, src, opts)
		for i, m := range res.Stats.Decisions {
			if m != want {
				t.Errorf("epoch %d decision = %v, want %v", i, m, want)
			}
		}
	}
}

func TestMaxEpochsAborts(t *testing.T) {
	g, err := gen.Path([]graph.Weight{100, 100, 100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	opts := DelOptions(1) // one bucket per distance: many epochs
	opts.MaxEpochs = 2
	if _, err := Run(g, 2, 0, opts); err == nil {
		t.Error("MaxEpochs violation not reported")
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{Delta: 0},
		{Delta: 5, Threads: -1},
		{Delta: 5, Tau: 1.5},
		{Delta: 5, ImbalanceWeight: -0.1},
		{Delta: 5, IOS: true}, // IOS without classification
		{Delta: 5, Census: true, EdgeClassification: true},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: invalid options %+v accepted", i, o)
		}
	}
	good := OptOptions(25)
	if err := good.Validate(); err != nil {
		t.Errorf("preset rejected: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	g, err := gen.Path([]graph.Weight{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, 1, 5, DelOptions(5)); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := Run(g, 1, 0, Options{}); err == nil {
		t.Error("zero options accepted")
	}
}

func TestDeterministicStats(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	opts := OptOptions(25)
	opts.Threads = 4
	a := mustRun(t, g, 4, src, opts)
	b := mustRun(t, g, 4, src, opts)
	if !reflect.DeepEqual(a.Dist, b.Dist) {
		t.Error("distances differ across identical runs")
	}
	if a.Stats.Relax != b.Stats.Relax {
		t.Errorf("relax counters differ: %+v vs %+v", a.Stats.Relax, b.Stats.Relax)
	}
	if a.Stats.Phases != b.Stats.Phases || a.Stats.Epochs != b.Stats.Epochs {
		t.Error("phase/epoch counts differ across identical runs")
	}
	if !reflect.DeepEqual(a.Stats.Decisions, b.Stats.Decisions) {
		t.Error("decisions differ across identical runs")
	}
}

func TestThreadCountInvariance(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	for _, preset := range []Options{DelOptions(25), PruneOptions(25), LBOptOptions(25)} {
		one := preset
		one.Threads = 1
		many := preset
		many.Threads = 8
		a := mustRun(t, g, 3, src, one)
		b := mustRun(t, g, 3, src, many)
		if !reflect.DeepEqual(a.Dist, b.Dist) {
			t.Error("distances depend on thread count")
		}
		if a.Stats.Relax != b.Stats.Relax {
			t.Errorf("relax counters depend on thread count: %+v vs %+v",
				a.Stats.Relax, b.Stats.Relax)
		}
	}
}

func TestRankCountInvariance(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	ref := mustRun(t, g, 1, src, PruneOptions(25))
	for _, ranks := range []int{2, 5, 8} {
		res := mustRun(t, g, ranks, src, PruneOptions(25))
		if !reflect.DeepEqual(ref.Dist, res.Dist) {
			t.Errorf("distances differ between 1 and %d ranks", ranks)
		}
	}
}

func TestTrafficCounters(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	multi := mustRun(t, g, 4, src, OptOptions(25))
	if multi.Stats.Traffic.MessagesSent == 0 || multi.Stats.Traffic.BytesSent == 0 {
		t.Error("multi-rank run sent no traffic")
	}
	single := mustRun(t, g, 1, src, OptOptions(25))
	if single.Stats.Traffic.MessagesSent != 0 {
		t.Errorf("single-rank run counted %d remote messages",
			single.Stats.Traffic.MessagesSent)
	}
}

func TestPullEstimatorModes(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	want, err := Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, est := range []PullEstimator{EstimatorExact, EstimatorExpectation, EstimatorHistogram} {
		opts := PruneOptions(25)
		opts.Estimator = est
		res := mustRun(t, g, 4, src, opts)
		for v := range want.Dist {
			if res.Dist[v] != want.Dist[v] {
				t.Fatalf("estimator %v broke correctness at %d", est, v)
			}
		}
	}
}

func TestEstimatorString(t *testing.T) {
	if EstimatorExact.String() != "exact" ||
		EstimatorExpectation.String() != "expectation" ||
		EstimatorHistogram.String() != "histogram" {
		t.Error("estimator names wrong")
	}
}

func TestHistogramApproximatesExact(t *testing.T) {
	// The histogram count must be within one bin of the exact count for
	// every unsettled vertex and bound.
	g := rmatTestGraph
	opts := PruneOptions(25)
	opts.Estimator = EstimatorHistogram
	maxW := g.MaxWeight()
	eng, err := newRankEngine(g, onRankDist(g), 0, &opts, nullTransport{}, maxW)
	if err != nil {
		t.Fatal(err)
	}
	for li := uint32(0); li < uint32(eng.nLocal); li += 17 {
		v := eng.global(li)
		deg := int64(g.Degree(v))
		for _, bound := range []graph.Dist{0, 10, 26, 40, 100, 200, 255, 256, 1000} {
			got := eng.histCount(li, bound)
			hi := bound
			if hi > graph.Dist(maxW)+1 {
				hi = graph.Dist(maxW) + 1
			}
			var exact int64
			if hi > graph.Dist(opts.Delta) {
				exact = int64(g.CountWeightRange(v, opts.Delta, graph.Weight(hi)))
			}
			diff := got - exact
			if diff < 0 {
				diff = -diff
			}
			if diff > deg/int64(histBins)+2 {
				t.Fatalf("vertex %d bound %d: histogram %d vs exact %d (deg %d)",
					v, bound, got, exact, deg)
			}
		}
	}
}

func TestRelaxCountsTotalAndAdd(t *testing.T) {
	a := RelaxCounts{ShortPush: 1, OuterShortPush: 2, LongPush: 3,
		PullRequests: 4, PullResponses: 5, BellmanFord: 6, Skipped: 100}
	if a.Total() != 21 {
		t.Errorf("Total = %d, want 21 (Skipped excluded)", a.Total())
	}
	b := a
	b.Add(a)
	if b.Total() != 42 || b.Skipped != 200 {
		t.Errorf("Add result %+v", b)
	}
}

func TestStatsTEPS(t *testing.T) {
	s := Stats{}
	if s.TEPS(100) != 0 {
		t.Error("zero-duration TEPS not 0")
	}
	s.Total = 2e9 // 2 seconds
	if got := s.TEPS(1000); got != 500 {
		t.Errorf("TEPS = %v, want 500", got)
	}
	if got := s.GTEPS(2e9); got != 1 {
		t.Errorf("GTEPS = %v, want 1", got)
	}
}

func TestQuickOptMatchesDijkstra(t *testing.T) {
	// Property: on arbitrary random graphs, sources, deltas and rank
	// counts, the fully optimized algorithm matches Dijkstra.
	f := func(seed int64, deltaRaw, ranksRaw, srcRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(150)
		m := r.Intn(6 * n)
		g, err := gen.Random(n, m, 255, uint64(seed))
		if err != nil {
			return false
		}
		delta := graph.Weight(1 + int(deltaRaw)%128)
		ranks := 1 + int(ranksRaw)%6
		src := graph.Vertex(int(srcRaw) % n)
		res, err := Run(g, ranks, src, OptOptions(delta))
		if err != nil {
			return false
		}
		want, err := Dijkstra(g, src)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(res.Dist, want.Dist)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickLBOptMatchesDijkstra(t *testing.T) {
	f := func(seed int64, deltaRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(100)
		g, err := gen.Random(n, 5*n, 255, uint64(seed)+7)
		if err != nil {
			return false
		}
		delta := graph.Weight(1 + int(deltaRaw)%64)
		opts := LBOptOptions(delta)
		opts.Threads = 3
		opts.HeavyThreshold = 4 // force chunking
		res, err := Run(g, 3, 0, opts)
		if err != nil {
			return false
		}
		want, err := Dijkstra(g, 0)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(res.Dist, want.Dist)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBucketStatsRecorded(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	res := mustRun(t, g, 2, src, DelOptions(25))
	if len(res.Stats.Buckets) != int(res.Stats.Epochs) {
		t.Fatalf("%d bucket records for %d epochs", len(res.Stats.Buckets), res.Stats.Epochs)
	}
	var total int64
	prevIdx := int64(-1)
	for _, b := range res.Stats.Buckets {
		if b.Index <= prevIdx {
			t.Errorf("bucket indices not increasing: %d after %d", b.Index, prevIdx)
		}
		prevIdx = b.Index
		total += b.ShortRelax + b.LongRelax
	}
	if total != res.Stats.Relax.Total() {
		t.Errorf("per-bucket relax sum %d != total %d", total, res.Stats.Relax.Total())
	}
	last := res.Stats.Buckets[len(res.Stats.Buckets)-1]
	if last.Settled != res.Stats.Reached {
		t.Errorf("final settled %d != reached %d", last.Settled, res.Stats.Reached)
	}
}

// onRankDist returns a single-rank block distribution over g, for tests
// that construct a rankEngine directly.
func onRankDist(g *graph.Graph) partition.Dist {
	return partition.MustNew(partition.Block, g.NumVertices(), 1)
}

// nullTransport is a trivial single-rank transport for direct engine
// construction in tests.
type nullTransport struct{}

func (nullTransport) Rank() int                               { return 0 }
func (nullTransport) Size() int                               { return 1 }
func (nullTransport) Exchange(out [][]byte) ([][]byte, error) { return out, nil }
func (nullTransport) AllreduceInt64(v []int64, op comm.ReduceOp) ([]int64, error) {
	return v, nil
}
func (nullTransport) Barrier() error { return nil }
func (nullTransport) Close() error   { return nil }

func TestParallelApplyMatchesSerial(t *testing.T) {
	defer func(old int) { parallelApplyThreshold = old }(parallelApplyThreshold)
	parallelApplyThreshold = 1 // force the parallel path at test scale
	g := rmatTestGraph
	src := testRoot(g)
	for _, preset := range []Options{DelOptions(25), PruneOptions(25), LBOptOptions(25)} {
		serial := preset
		serial.Threads = 4
		par := serial
		par.ParallelApply = true
		a := mustRun(t, g, 3, src, serial)
		b := mustRun(t, g, 3, src, par)
		if !reflect.DeepEqual(a.Dist, b.Dist) {
			t.Error("parallel apply changed distances")
		}
		if a.Stats.Relax != b.Stats.Relax {
			t.Errorf("parallel apply changed relax counters: %+v vs %+v",
				a.Stats.Relax, b.Stats.Relax)
		}
		if a.Stats.Phases != b.Stats.Phases || a.Stats.Epochs != b.Stats.Epochs {
			t.Error("parallel apply changed control flow")
		}
	}
}

func TestParallelApplyAgainstDijkstra(t *testing.T) {
	defer func(old int) { parallelApplyThreshold = old }(parallelApplyThreshold)
	parallelApplyThreshold = 1
	for seed := uint64(0); seed < 3; seed++ {
		g, err := gen.Random(400, 4000, 255, seed+50)
		if err != nil {
			t.Fatal(err)
		}
		opts := LBOptOptions(25)
		opts.Threads = 4
		opts.ParallelApply = true
		checkAgainstDijkstra(t, g, 0, 3, opts)
	}
}

func TestParallelApplyTreeValid(t *testing.T) {
	defer func(old int) { parallelApplyThreshold = old }(parallelApplyThreshold)
	parallelApplyThreshold = 1
	g := rmatTestGraph
	src := testRoot(g)
	opts := OptOptions(25)
	opts.Threads = 4
	opts.ParallelApply = true
	res := mustRun(t, g, 4, src, opts)
	// The parent tree must still reconstruct consistent paths.
	for v := 0; v < g.NumVertices(); v += 53 {
		if res.Dist[v] >= graph.Inf {
			continue
		}
		path, err := PathTo(res.Parent, graph.Vertex(v))
		if err != nil {
			t.Fatalf("PathTo(%d): %v", v, err)
		}
		length, err := PathLength(g, path)
		if err != nil {
			t.Fatal(err)
		}
		if length != res.Dist[v] {
			t.Fatalf("vertex %d: path %d != dist %d", v, length, res.Dist[v])
		}
	}
}

func TestImbalanceReporting(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	res := mustRun(t, g, 4, src, OptOptions(25))
	if len(res.Stats.RankRelax) != 4 {
		t.Fatalf("RankRelax has %d entries for 4 ranks", len(res.Stats.RankRelax))
	}
	var sum int64
	for _, r := range res.Stats.RankRelax {
		sum += r
	}
	if sum != res.Stats.Relax.Total() {
		t.Errorf("per-rank relax sum %d != total %d", sum, res.Stats.Relax.Total())
	}
	imb := res.Stats.Imbalance()
	if imb < 1 || imb > 4 {
		t.Errorf("imbalance %v outside [1, ranks]", imb)
	}
}

func TestImbalanceDegenerate(t *testing.T) {
	var s Stats
	if s.Imbalance() != 1 {
		t.Error("empty stats imbalance != 1")
	}
	s.RankRelax = []int64{0, 0}
	if s.Imbalance() != 1 {
		t.Error("zero-work imbalance != 1")
	}
	s.RankRelax = []int64{100, 0}
	if s.Imbalance() != 2 {
		t.Errorf("all-on-one imbalance = %v, want 2", s.Imbalance())
	}
}
