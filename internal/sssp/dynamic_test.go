package sssp

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"parsssp/internal/comm/memtransport"
	"parsssp/internal/gen"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
	"parsssp/internal/rmat"
)

// positivize lifts zero weights to one, giving the strictly positive
// graphs the byte-for-byte parent oracle needs (see applyRelaxIn: ties
// across zero-weight edges elect schedule-dependent parents).
func positivize(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	edges := g.Edges()
	for i := range edges {
		if edges[i].W == 0 {
			edges[i].W = 1
		}
	}
	ng, err := graph.FromEdges(g.NumVertices(), edges, graph.BuildOptions{})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return ng
}

// dynHarness drives per-rank engines through queries and repairs in
// lockstep over a memtransport group, the way a pool slot does.
type dynHarness struct {
	pd      partition.Dist
	opts    Options
	set     *PlaneSet
	engines []*queryState
}

func newDynHarness(t *testing.T, g *graph.Graph, ranks int, opts Options) *dynHarness {
	t.Helper()
	pd, err := partition.New(partition.Block, g.NumVertices(), ranks)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	group, err := memtransport.New(ranks)
	if err != nil {
		t.Fatalf("memtransport: %v", err)
	}
	h := &dynHarness{pd: pd, opts: opts}
	hosted := make([]int, ranks)
	for r := range hosted {
		hosted[r] = r
	}
	h.set, err = NewPlaneSet(g, pd, &h.opts, hosted)
	if err != nil {
		t.Fatalf("NewPlaneSet: %v", err)
	}
	pv := h.set.Acquire()
	defer h.set.Release(pv)
	for r, tr := range group.Endpoints() {
		eng, err := newQueryState(pv.Plane(r), tr)
		if err != nil {
			t.Fatalf("newQueryState: %v", err)
		}
		h.engines = append(h.engines, eng)
	}
	return h
}

// lockstep runs fn on every rank concurrently and returns the root
// cause, if any rank failed.
func (h *dynHarness) lockstep(fn func(eng *queryState) error) error {
	errs := make([]error, len(h.engines))
	var wg sync.WaitGroup
	for i, eng := range h.engines {
		wg.Add(1)
		go func(i int, eng *queryState) {
			defer wg.Done()
			errs[i] = fn(eng)
		}(i, eng)
	}
	wg.Wait()
	return firstCause(errs)
}

func (h *dynHarness) query(t *testing.T, src graph.Vertex) {
	t.Helper()
	if err := h.lockstep(func(eng *queryState) error {
		eng.reset(src)
		return eng.run()
	}); err != nil {
		t.Fatalf("query: %v", err)
	}
}

// applyAndRepair advances the plane set one version and repairs every
// engine's tree against it, returning rank 0's repair stats.
func (h *dynHarness) applyAndRepair(t *testing.T, batch UpdateBatch) RepairStats {
	t.Helper()
	pv, err := h.set.Apply(batch)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	defer h.set.Release(pv)
	var rs0 RepairStats
	if err := h.lockstep(func(eng *queryState) error {
		rs, err := eng.repair(pv.Plane(eng.rank), batch)
		if eng.rank == 0 {
			rs0 = rs
		}
		return err
	}); err != nil {
		t.Fatalf("repair: %v", err)
	}
	return rs0
}

// check asserts the repaired trees equal a from-scratch run on the
// current graph, byte for byte.
func (h *dynHarness) check(t *testing.T, src graph.Vertex, label string) {
	t.Helper()
	g := h.set.Acquire()
	defer h.set.Release(g)
	exp, err := Run(g.Graph(), len(h.engines), src, h.opts)
	if err != nil {
		t.Fatalf("%s: recompute: %v", label, err)
	}
	ranks := make([]*RankResult, len(h.engines))
	for i, eng := range h.engines {
		ranks[i] = &RankResult{Rank: eng.rank, LocalDist: eng.dist, LocalParent: eng.parent, Stats: eng.stats}
	}
	got, err := assemble(g.Graph(), h.pd, ranks)
	if err != nil {
		t.Fatalf("%s: assemble: %v", label, err)
	}
	if !reflect.DeepEqual(got.Dist, exp.Dist) {
		for v := range got.Dist {
			if got.Dist[v] != exp.Dist[v] {
				t.Fatalf("%s: dist diverges at vertex %d: repaired %d, recomputed %d",
					label, v, got.Dist[v], exp.Dist[v])
			}
		}
	}
	if !reflect.DeepEqual(got.Parent, exp.Parent) {
		for v := range got.Parent {
			if got.Parent[v] != exp.Parent[v] {
				t.Fatalf("%s: parent diverges at vertex %d (dist %d): repaired %d, recomputed %d",
					label, v, got.Dist[v], got.Parent[v], exp.Parent[v])
			}
		}
	}
}

// randomBatch builds a seeded batch against the current graph: dels
// deletions of existing edges and ins insertions of fresh positive-weight
// edges.
func randomBatch(rng *rand.Rand, g *graph.Graph, dels, ins int) UpdateBatch {
	var b UpdateBatch
	edges := g.Edges()
	for i := 0; i < dels && len(edges) > 0; i++ {
		e := edges[rng.Intn(len(edges))]
		b = append(b, EdgeUpdate{Op: OpDelete, U: e.U, V: e.V})
	}
	n := g.NumVertices()
	for i := 0; i < ins; i++ {
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex(rng.Intn(n))
		if u == v {
			v = (v + 1) % graph.Vertex(n)
		}
		b = append(b, EdgeUpdate{Op: OpInsert, U: u, V: v, W: graph.Weight(1 + rng.Intn(255))})
	}
	return b
}

func TestRepairMatchesRecompute(t *testing.T) {
	base, err := rmat.Generate(rmat.Family2(9, 42))
	if err != nil {
		t.Fatalf("rmat: %v", err)
	}
	g := positivize(t, base)
	src := testRoot(g)

	cases := []struct {
		name      string
		dels, ins int
	}{
		{"insert-only", 0, 8},
		{"delete-only", 8, 0},
		{"mixed", 6, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newDynHarness(t, g, 3, OptOptions(25))
			h.query(t, src)
			rng := rand.New(rand.NewSource(int64(tc.dels)<<8 | int64(tc.ins)))
			for step := 0; step < 5; step++ {
				cur := h.set.Acquire()
				batch := randomBatch(rng, cur.Graph(), tc.dels, tc.ins)
				h.set.Release(cur)
				h.applyAndRepair(t, batch)
				h.check(t, src, tc.name)
			}
		})
	}
}

// TestRepairEmptyBatch proves a no-op batch repairs to the identical
// tree without touching anything.
func TestRepairEmptyBatch(t *testing.T) {
	g := positivize(t, rmatTestGraph)
	src := testRoot(g)
	h := newDynHarness(t, g, 3, OptOptions(25))
	h.query(t, src)
	rs := h.applyAndRepair(t, nil)
	if rs.Invalidated != 0 || rs.RelaxRounds != 0 {
		t.Errorf("empty batch did work: %+v", rs)
	}
	h.check(t, src, "empty")
}

// TestRepairDisconnects deletes every edge of the source's neighbors'
// subtrees aggressively and checks unreachable vertices match the
// recompute (Inf distance, NoParent).
func TestRepairDisconnects(t *testing.T) {
	g, err := gen.Grid(12, 12, 1, 9, 7)
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	src := graph.Vertex(0)
	h := newDynHarness(t, g, 3, OptOptions(25))
	h.query(t, src)
	// Cut the corner off: vertex 0's only edges are (0,1) and (0,12).
	h.applyAndRepair(t, UpdateBatch{
		{Op: OpDelete, U: 0, V: 1},
		{Op: OpDelete, U: 0, V: 12},
	})
	h.check(t, src, "disconnect")
}

// TestRepairZeroWeightDistances: with zero-weight edges in play the
// parent trees may legitimately diverge on ties, but distances must
// still be exact and the repaired tree must still be a valid shortest
// path tree.
func TestRepairZeroWeightDistances(t *testing.T) {
	g := rmatTestGraph // weights include 0
	src := testRoot(g)
	h := newDynHarness(t, g, 3, OptOptions(25))
	h.query(t, src)
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 4; step++ {
		cur := h.set.Acquire()
		batch := randomBatch(rng, cur.Graph(), 5, 5)
		h.set.Release(cur)
		h.applyAndRepair(t, batch)

		pv := h.set.Acquire()
		exp, err := Run(pv.Graph(), 3, src, h.opts)
		if err != nil {
			t.Fatalf("recompute: %v", err)
		}
		ranks := make([]*RankResult, len(h.engines))
		for i, eng := range h.engines {
			ranks[i] = &RankResult{Rank: eng.rank, LocalDist: eng.dist, LocalParent: eng.parent, Stats: eng.stats}
		}
		got, err := assemble(pv.Graph(), h.pd, ranks)
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		if !reflect.DeepEqual(got.Dist, exp.Dist) {
			t.Fatalf("step %d: distances diverge", step)
		}
		checkTreeValid(t, pv.Graph(), src, got.Dist, got.Parent)
		h.set.Release(pv)
	}
}

// TestPlaneSetRetirement proves copy-on-write version lifetimes: a
// pinned version survives an update and retires when released.
func TestPlaneSetRetirement(t *testing.T) {
	g := positivize(t, rmatTestGraph)
	pd, err := partition.New(partition.Block, g.NumVertices(), 2)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	opts := OptOptions(25)
	set, err := NewPlaneSet(g, pd, &opts, []int{0, 1})
	if err != nil {
		t.Fatalf("NewPlaneSet: %v", err)
	}
	pinned := set.Acquire()
	pv1, err := set.Apply(UpdateBatch{{Op: OpInsert, U: 1, V: 2, W: 3}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if pv1.Version() != 1 || set.Version() != 1 {
		t.Fatalf("version = %d/%d, want 1", pv1.Version(), set.Version())
	}
	if got := set.LiveVersions(); got != 2 {
		t.Fatalf("LiveVersions = %d, want 2 (v0 still pinned)", got)
	}
	if pinned.Graph() == pv1.Graph() {
		t.Fatal("update mutated the pinned snapshot")
	}
	set.Release(pinned)
	if got := set.LiveVersions(); got != 1 {
		t.Fatalf("LiveVersions = %d after release, want 1", got)
	}
	set.Release(pv1)
}

// TestPlaneSetEnsureVersion proves idempotent lockstep application: N
// drivers demanding the same target apply the batch exactly once.
func TestPlaneSetEnsureVersion(t *testing.T) {
	g := positivize(t, rmatTestGraph)
	pd, err := partition.New(partition.Block, g.NumVertices(), 2)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	opts := OptOptions(25)
	set, err := NewPlaneSet(g, pd, &opts, []int{0, 1})
	if err != nil {
		t.Fatalf("NewPlaneSet: %v", err)
	}
	batch := UpdateBatch{{Op: OpInsert, U: 1, V: 2, W: 3}}
	var wg sync.WaitGroup
	versions := make([]*planeVersion, 4)
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			versions[i], errs[i] = set.EnsureVersion(1, batch)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if errs[i] != nil {
			t.Fatalf("driver %d: %v", i, errs[i])
		}
		if versions[i] != versions[0] {
			t.Fatal("drivers got different snapshots")
		}
		set.Release(versions[i])
	}
	if set.Version() != 1 {
		t.Fatalf("Version = %d, want 1", set.Version())
	}
	// A gap is an error, not a silent jump.
	if _, err := set.EnsureVersion(5, batch); err == nil {
		t.Fatal("EnsureVersion accepted a version gap")
	}
	// Stale target too.
	if _, err := set.EnsureVersion(0, nil); err == nil {
		t.Fatal("EnsureVersion accepted a past target")
	}
}

// TestPlaneSetSince proves batch history catch-up and its bound.
func TestPlaneSetSince(t *testing.T) {
	g := positivize(t, rmatTestGraph)
	pd, err := partition.New(partition.Block, g.NumVertices(), 1)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	opts := OptOptions(25)
	set, err := NewPlaneSet(g, pd, &opts, []int{0})
	if err != nil {
		t.Fatalf("NewPlaneSet: %v", err)
	}
	var applied []UpdateBatch
	for i := 0; i < 5; i++ {
		b := UpdateBatch{{Op: OpInsert, U: graph.Vertex(i), V: graph.Vertex(i + 7), W: 5}}
		applied = append(applied, b)
		pv, err := set.Apply(b)
		if err != nil {
			t.Fatalf("Apply %d: %v", i, err)
		}
		set.Release(pv)
	}
	got, ok := set.Since(2)
	if !ok || len(got) != 3 {
		t.Fatalf("Since(2) = %d batches, ok=%v; want 3, true", len(got), ok)
	}
	if !reflect.DeepEqual(got, applied[2:]) {
		t.Fatal("Since(2) returned the wrong batches")
	}
	if got, ok := set.Since(5); !ok || len(got) != 0 {
		t.Fatalf("Since(current) = %d batches, ok=%v; want 0, true", len(got), ok)
	}
	if _, ok := set.Since(6); ok {
		t.Fatal("Since(future) reported ok")
	}
	set.mu.Lock()
	set.keep = 2
	set.mu.Unlock()
	pv, err := set.Apply(UpdateBatch{{Op: OpInsert, U: 20, V: 21, W: 1}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	set.Release(pv)
	if _, ok := set.Since(2); ok {
		t.Fatal("Since reached past the bounded history")
	}
	if _, ok := set.Since(4); !ok {
		t.Fatal("Since failed within the bounded history")
	}
}

// checkTreeValid asserts dist/parent form a consistent shortest-path
// tree over g: every reachable non-source vertex's parent edge exists,
// is tight (dist[v] = dist[p] + w), and following parents reaches the
// source without cycling.
func checkTreeValid(t *testing.T, g *graph.Graph, src graph.Vertex, dist []graph.Dist, parent []graph.Vertex) {
	t.Helper()
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		switch {
		case dist[v] >= graph.Inf:
			if parent[v] != NoParent {
				t.Fatalf("unreachable vertex %d has parent %d", v, parent[v])
			}
		case graph.Vertex(v) == src:
			if parent[v] != src {
				t.Fatalf("source parent = %d", parent[v])
			}
		default:
			p := parent[v]
			w, ok := g.EdgeWeight(p, graph.Vertex(v))
			if !ok {
				t.Fatalf("vertex %d: parent edge (%d,%d) does not exist", v, p, v)
			}
			if dist[v] != dist[p]+graph.Dist(w) {
				t.Fatalf("vertex %d: parent edge not tight: %d != %d + %d", v, dist[v], dist[p], w)
			}
		}
	}
	for v := 0; v < n; v++ {
		if dist[v] >= graph.Inf {
			continue
		}
		cur, steps := graph.Vertex(v), 0
		for cur != src {
			cur = parent[cur]
			if steps++; steps > n {
				t.Fatalf("parent cycle tracing vertex %d", v)
			}
		}
	}
}
