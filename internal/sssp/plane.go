package sssp

import (
	"fmt"

	"parsssp/internal/graph"
	"parsssp/internal/partition"
)

// rankGraph is the graph plane of one rank: everything about a
// (graph, distribution, options) triple that does not change from query
// to query — CSR views, the short/long edge classification (shortEnd),
// the IOS phase boundaries implied by Δ (dd), the heavy-vertex chunking
// thresholds (via opts), the partition/ownership tables (pd) and the
// per-vertex weight histograms of the request estimator. It is built
// once and then shared read-only by every query plane (queryState) over
// it — the weights/activations split of an inference stack, applied to
// graph queries.
//
// Immutability is the load-bearing property: concurrent queries on a
// pool read the same rankGraph from many goroutines with no
// synchronization. Nothing outside newRankGraph may write its fields;
// the planepurity analyzer (internal/lint) enforces this, including
// writes through the promoted fields of an embedding queryState.
type rankGraph struct {
	g    *graph.Graph
	pd   partition.Dist
	opts *Options
	rank int
	size int

	nLocal int
	dd     graph.Dist // bucket width Δ
	maxW   graph.Weight

	shortEnd []int32 // per local vertex: first long-edge index in its adjacency
	hist     []int32 // per-vertex cumulative weight histograms (EstimatorHistogram)

	step   stepper      // the stepping discipline over this plane; see policy.go
	radius []graph.Dist // per local vertex: Radius Stepping r(v) (PolicyRadius only)
}

// newRankGraph builds the immutable graph plane of one rank. opts must
// outlive the plane and must not be mutated while any query runs over
// it; maxW must be the graph's maximum edge weight.
func newRankGraph(g *graph.Graph, pd partition.Dist, rank int,
	opts *Options, maxW graph.Weight) (*rankGraph, error) {
	if pd.NumVertices() != g.NumVertices() {
		return nil, fmt.Errorf("sssp: distribution covers %d vertices, graph has %d",
			pd.NumVertices(), g.NumVertices())
	}
	if rank < 0 || rank >= pd.NumRanks() {
		return nil, fmt.Errorf("sssp: rank %d out of range [0,%d)", rank, pd.NumRanks())
	}
	p := &rankGraph{
		g:    g,
		pd:   pd,
		opts: opts,
		rank: rank,
		size: pd.NumRanks(),
		dd:   graph.Dist(opts.Delta),
		maxW: maxW,
	}
	p.nLocal = pd.Count(rank)
	p.buildStepper()
	p.shortEnd = make([]int32, p.nLocal)
	for li := 0; li < p.nLocal; li++ {
		v := pd.Global(rank, li)
		if opts.EdgeClassification {
			p.shortEnd[li] = int32(p.step.shortEdgeEnd(g, v))
		} else {
			p.shortEnd[li] = int32(g.Degree(v))
		}
	}
	p.buildRadii(nil, nil)
	if opts.Prune && opts.Estimator == EstimatorHistogram {
		p.buildHistograms()
	}
	return p, nil
}

// buildStepper resolves the plane's stepping policy against the graph:
// scalar parameters only (Δ, the ρ/radius quantums and the ρ batch cap);
// the Radius policy's per-vertex table is buildRadii's. Every parameter
// is a deterministic function of the full graph and the options, so all
// ranks resolve the identical stepper — a rank-varying policy parameter
// would diverge the collective schedule.
func (p *rankGraph) buildStepper() {
	switch p.opts.Policy {
	case PolicyRadius:
		k := p.opts.radiusK()
		p.step = &radiusStepper{k: k, q: radiusQuantum(p.g, k)}
	case PolicyRho:
		p.step = &rhoStepper{
			q:   rhoQuantum(p.g),
			cap: (p.opts.rho() + p.size - 1) / p.size,
		}
	default:
		p.step = &deltaStepper{delta: p.opts.Delta, dd: p.dd}
	}
}

// buildRadii fills the Radius policy's per-vertex r(v) table (a no-op
// under the other policies). With a previous plane's table and a touched
// local-index list, only the touched rows are recomputed — the
// patched-plane path; r(v) depends solely on v's own adjacency, so
// untouched rows carry over (or the whole table is aliased when this
// rank owns no touched vertex).
func (p *rankGraph) buildRadii(prev []graph.Dist, touchedLocal []int) {
	if p.opts.Policy != PolicyRadius {
		return
	}
	k := p.opts.radiusK()
	switch {
	case prev == nil:
		p.radius = make([]graph.Dist, p.nLocal)
		for li := 0; li < p.nLocal; li++ {
			p.radius[li] = vertexRadius(p.g, p.pd.Global(p.rank, li), k)
		}
	case len(touchedLocal) == 0:
		p.radius = prev
	default:
		p.radius = append([]graph.Dist(nil), prev...)
		for _, li := range touchedLocal {
			p.radius[li] = vertexRadius(p.g, p.pd.Global(p.rank, li), k)
		}
	}
}

// newRankGraphPatched derives the plane for graph g from prev, the same
// rank's plane one version earlier, refreshing only the touched
// vertices' rows: shortEnd classification entries and histogram rows of
// untouched vertices depend solely on their (unchanged) adjacency, so
// they are copied — or, when this rank owns no touched vertex, aliased
// outright (planes are immutable after construction, so sharing is
// safe). The one global input is maxW: a changed maximum edge weight
// moves every histogram bin boundary, so that (rare) case rebuilds the
// histograms in full. g must differ from prev.g only at the touched
// vertices' rows; maxW must be g's maximum edge weight. Cost is
// O(touched + nLocal copy) per rank instead of newRankGraph's
// O(nLocal · log deg) row reclassification.
//
// Like newRankGraph, this is a sanctioned rankGraph constructor: the
// planepurity analyzer allows its field writes and forbids everyone
// else's.
func newRankGraphPatched(prev *rankGraph, g *graph.Graph, touched []graph.Vertex,
	maxW graph.Weight) (*rankGraph, error) {
	if prev.pd.NumVertices() != g.NumVertices() {
		return nil, fmt.Errorf("sssp: distribution covers %d vertices, patched graph has %d",
			prev.pd.NumVertices(), g.NumVertices())
	}
	p := &rankGraph{
		g:      g,
		pd:     prev.pd,
		opts:   prev.opts,
		rank:   prev.rank,
		size:   prev.size,
		nLocal: prev.nLocal,
		dd:     prev.dd,
		maxW:   maxW,
	}
	// The stepper's scalar parameters (quantums, batch cap) are sampled
	// from the full graph, so a patch can move them; resampling is O(1)
	// in the graph size. The Radius table refreshes touched rows only.
	p.buildStepper()
	var local []int // local indices of touched vertices this rank owns
	for _, v := range touched {
		if prev.pd.Owner(v) == prev.rank {
			local = append(local, prev.pd.LocalIndex(v))
		}
	}
	p.buildRadii(prev.radius, local)
	if len(local) == 0 {
		p.shortEnd = prev.shortEnd
	} else {
		p.shortEnd = append([]int32(nil), prev.shortEnd...)
		for _, li := range local {
			v := prev.pd.Global(p.rank, li)
			if p.opts.EdgeClassification {
				p.shortEnd[li] = int32(p.step.shortEdgeEnd(g, v))
			} else {
				p.shortEnd[li] = int32(g.Degree(v))
			}
		}
	}
	switch {
	case prev.hist == nil:
		// estimator off: nothing to carry
	case maxW != prev.maxW:
		p.buildHistograms()
	case len(local) == 0:
		p.hist = prev.hist
	default:
		p.hist = append([]int32(nil), prev.hist...)
		for _, li := range local {
			p.histRow(li)
		}
	}
	return p, nil
}

// local returns the local index of global vertex v, which must be owned
// by this rank.
func (p *rankGraph) local(v graph.Vertex) int { return p.pd.LocalIndex(v) }

// global returns the global id of local index li.
func (p *rankGraph) global(li uint32) graph.Vertex {
	return p.pd.Global(p.rank, int(li))
}

// bucketEnd returns the largest distance the policy files under key k.
func (p *rankGraph) bucketEnd(k int64) graph.Dist { return p.step.settleBound(k) }
