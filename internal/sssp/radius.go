package sssp

import (
	"fmt"

	"parsssp/internal/comm"
	"parsssp/internal/graph"
)

// This file is the BSP driver of the Radius Stepping policy (Blelloch et
// al., arXiv 1602.03881). Each epoch agrees on a distance threshold
//
//	M = min over unsettled reached v of d(v) + r(v)
//
// by Allreduce-Min, relaxes the full adjacency of every unsettled vertex
// with d(v) ≤ M to a fixpoint (Allreduce-Sum active counts, exactly the
// short-phase discipline of the Δ engine), and then settles everything
// at or below M.
//
// Soundness of the settle condition: any vertex with final distance ≤ M
// lies on a shortest path whose prefix distances are all ≤ M
// (non-negative weights make prefixes non-decreasing), so the fixpoint
// over the sub-threshold frontier drives every such vertex to its final
// distance before the settle scan — for ANY threshold sequence. The
// radii only pick thresholds large enough to amortize the collectives:
// by construction at least one unsettled vertex v has its whole one-hop
// ball r(v) under M, so epochs settle neighborhoods, not single
// vertices. Termination: r(v) ≥ 1 and every unsettled vertex has
// d(v) > M after the settle scan, so M strictly increases.
//
// Canonical parents match the other policies: every vertex relaxes its
// full adjacency at its final distance in its settling epoch (a late
// improvement re-activates it), so the min-id equal-distance election of
// applyRelaxIn sees every final-distance offer. No store, no bucketOf —
// frontier selection is a threshold scan against the settled flags.

// runRadius executes the full query on this rank under PolicyRadius.
func (r *queryState) runRadius() error {
	totalStart := now()
	if r.settled == nil {
		r.settled = make([]bool, r.nLocal)
	}
	if r.pd.Owner(r.src) == r.rank {
		li := uint32(r.local(r.src))
		r.dist[li] = 0
		r.parent[li] = r.src
	}
	r.tracef("sssp: start source=%d ranks=%d policy=%s", r.src, r.size, r.opts.PolicyString())

	for {
		// Next threshold: the global minimum of d(v)+r(v) over unsettled
		// reached vertices. Inf on every rank means nothing is pending.
		bktStart := now()
		localM := int64(graph.Inf)
		for li := 0; li < r.nLocal; li++ {
			if !r.settled[li] && r.dist[li] < graph.Inf {
				if m := int64(r.dist[li] + r.radius[li]); m < localM {
					localM = m
				}
			}
		}
		r.charge(bktStart, true)
		r.reduceVal[0] = localM
		mv, err := r.allreduce(r.reduceVal[:1], comm.Min, true)
		if err != nil {
			return err
		}
		M := graph.Dist(mv[0])
		if M >= graph.Inf {
			break
		}
		if r.opts.MaxEpochs > 0 && int(r.stats.Epochs) >= r.opts.MaxEpochs {
			return fmt.Errorf("sssp: exceeded MaxEpochs=%d at radius threshold %d", r.opts.MaxEpochs, M)
		}
		if err := r.radiusEpoch(M); err != nil {
			return err
		}
		r.stats.Epochs++
		r.epochSeq++
	}

	r.finishStats(totalStart)
	r.tracef("done epochs=%d phases=%d reached=%d relax=%d",
		r.stats.Epochs, r.stats.Phases, r.stats.Reached,
		r.stats.Relax.Total())
	return nil
}

// radiusEpoch drives one threshold M: fixpoint relaxation of the
// sub-threshold frontier, then the settle scan.
func (r *queryState) radiusEpoch(M graph.Dist) error {
	r.phBound = M
	r.curK = int64(M)
	bs := BucketStats{Index: int64(M), Mode: ModePush}

	bktStart := now()
	act := r.active[:0]
	for li := 0; li < r.nLocal; li++ {
		if !r.settled[li] && r.dist[li] <= M {
			act = append(act, uint32(li))
		}
	}
	r.active = act
	r.charge(bktStart, true)

	before := r.relaxTotals()
	for {
		r.reduceVal[0] = int64(len(r.active))
		av, err := r.allreduce(r.reduceVal[:1], comm.Sum, true)
		if err != nil {
			return err
		}
		if av[0] == 0 {
			break
		}
		r.stats.Phases++
		bs.ShortPhases++
		phaseStart := now()
		beforePhase := r.relaxTotals()
		nActive := len(r.active)
		items := r.buildItems(r.active)
		r.runWorkers(items, r.radiusRelaxFn())
		in, err := r.exchangeRecords(relaxKind)
		if err != nil {
			return err
		}
		if err := r.applyRelaxIn(in, true, nil); err != nil {
			return err
		}
		r.logPhase(int64(M), PhaseRadius, nActive, beforePhase, phaseStart)
		r.active, r.nextActive = r.nextActive, r.active[:0]
	}
	bs.ShortRelax = r.relaxTotals().Total() - before.Total()

	// Settle scan: everything at or below the threshold is final.
	bktStart = now()
	var settledLocal int64
	for li := 0; li < r.nLocal; li++ {
		if !r.settled[li] && r.dist[li] <= M {
			r.settled[li] = true
			settledLocal++
		}
	}
	r.charge(bktStart, true)
	r.reduceVal[0] = settledLocal
	sv, err := r.allreduce(r.reduceVal[:1], comm.Sum, true)
	if err != nil {
		return err
	}
	r.settledTotal += sv[0]
	bs.Settled = r.settledTotal
	r.stats.Buckets = append(r.stats.Buckets, bs)
	r.tracef("epoch threshold=%d phases=%d settled=%d", M, bs.ShortPhases, r.settledTotal)
	return nil
}

// radiusRelaxFn lazily builds the Radius frontier scan: the full
// adjacency of every active vertex, no short/long split.
func (r *queryState) radiusRelaxFn() func(tid int, it workItem) {
	if r.radiusFn == nil {
		r.radiusFn = func(tid int, it workItem) {
			v := r.global(it.li)
			du := r.dist[it.li]
			nbr, ws := r.g.Neighbors(v)
			cnt := &r.tcnt[tid]
			for i := it.lo; i < it.hi; i++ {
				cnt.RadiusPush++
				nd := du + graph.Dist(ws[i])
				dst := r.pd.Owner(nbr[i])
				r.tbufs[tid][dst] = appendRelax(r.tbufs[tid][dst], nbr[i], tagParent(v, ws[i]), nd)
			}
		}
	}
	return r.radiusFn
}
