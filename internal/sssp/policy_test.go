package sssp

import (
	"reflect"
	"testing"

	"parsssp/internal/gen"
	"parsssp/internal/graph"
	"parsssp/internal/rmat"
)

func TestParseSteppingPolicy(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want SteppingPolicy
	}{
		{"delta", PolicyDelta},
		{"radius", PolicyRadius},
		{"rho", PolicyRho},
	} {
		got, err := ParseSteppingPolicy(tc.s)
		if err != nil || got != tc.want {
			t.Errorf("ParseSteppingPolicy(%q) = %v, %v; want %v", tc.s, got, err, tc.want)
		}
		if got.String() != tc.s {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.s)
		}
	}
	if _, err := ParseSteppingPolicy("dial"); err == nil {
		t.Error("ParseSteppingPolicy accepted unknown policy")
	}
}

func TestPolicyOptionValidation(t *testing.T) {
	push := ModePush
	bad := []Options{
		func() Options { o := RadiusSteppingOptions(0); o.Prune = true; return o }(),
		func() Options { o := RadiusSteppingOptions(0); o.EdgeClassification = true; o.IOS = true; return o }(),
		func() Options { o := RhoSteppingOptions(0); o.Hybrid = true; return o }(),
		func() Options { o := RhoSteppingOptions(0); o.Prune = true; o.Census = true; return o }(),
		func() Options { o := RadiusSteppingOptions(0); o.ForceMode = &push; return o }(),
		func() Options { o := RhoSteppingOptions(0); o.DecisionSequence = []Mode{push}; return o }(),
		{Policy: PolicyRadius, Delta: 1, RadiusK: -1},
		{Policy: PolicyRho, Delta: 1, Rho: -1},
		{Policy: SteppingPolicy(42), Delta: 1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate accepted invalid options", i, o)
		}
	}
	good := []Options{
		RadiusSteppingOptions(0), RadiusSteppingOptions(8),
		RhoSteppingOptions(0), RhoSteppingOptions(512),
		func() Options { o := RhoSteppingOptions(0); o.ExecMode = ExecAsync; return o }(),
	}
	for i, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("case %d: Validate rejected valid options: %v", i, err)
		}
	}
}

// policyTestGraphs returns the equivalence-matrix graph families: skewed
// R-MAT (zero weights included) and a long-diameter grid, two seeds each.
func policyTestGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	out := make(map[string]*graph.Graph)
	for _, seed := range []uint64{123, 777} {
		g, err := rmat.Generate(rmat.Family1(10, seed))
		if err != nil {
			t.Fatal(err)
		}
		out["rmat/"+string(rune('0'+seed%10))] = g
		gr, err := gen.Grid(24, 24, 1, 16, seed)
		if err != nil {
			t.Fatal(err)
		}
		out["grid/"+string(rune('0'+seed%10))] = gr
	}
	return out
}

// TestSeqPolicyOraclesMatchDijkstra proves the sequential Radius/ρ
// references compute exact distances, including through zero-weight
// edges (the R-MAT weights include zeros).
func TestSeqPolicyOraclesMatchDijkstra(t *testing.T) {
	for name, g := range policyTestGraphs(t) {
		src := testRoot(g)
		want, err := Dijkstra(g, src)
		if err != nil {
			t.Fatal(err)
		}
		rad, err := SeqRadiusStepping(g, src, 0)
		if err != nil {
			t.Fatalf("%s: SeqRadiusStepping: %v", name, err)
		}
		if !reflect.DeepEqual(rad.Dist, want.Dist) {
			t.Errorf("%s: SeqRadiusStepping distances differ from Dijkstra", name)
		}
		if rad.Reached != want.Reached {
			t.Errorf("%s: radius reached %d, Dijkstra %d", name, rad.Reached, want.Reached)
		}
		for _, rho := range []int{1, 64, 0} {
			rr, err := SeqRhoStepping(g, src, rho)
			if err != nil {
				t.Fatalf("%s: SeqRhoStepping(%d): %v", name, rho, err)
			}
			if !reflect.DeepEqual(rr.Dist, want.Dist) {
				t.Errorf("%s: SeqRhoStepping(%d) distances differ from Dijkstra", name, rho)
			}
		}
		// Radius parameter variants stay exact too.
		for _, k := range []int{1, 8} {
			rk, err := SeqRadiusStepping(g, src, k)
			if err != nil {
				t.Fatalf("%s: SeqRadiusStepping(k=%d): %v", name, k, err)
			}
			if !reflect.DeepEqual(rk.Dist, want.Dist) {
				t.Errorf("%s: SeqRadiusStepping(k=%d) distances differ", name, k)
			}
		}
	}
}

// TestSteppingPolicyEquivalence is the cross-policy equivalence matrix:
// for every graph family × seed × rank count, the distributed Radius and
// ρ engines must reproduce their sequential oracles' distances exactly,
// and on strictly-positive weights their canonical parent trees
// byte-for-byte; all policies (including Δ=25) agree on distances.
func TestSteppingPolicyEquivalence(t *testing.T) {
	for name, g0 := range policyTestGraphs(t) {
		g := positivize(t, g0)
		src := testRoot(g)
		delta, err := SeqDeltaStepping(g, src, 25)
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[SteppingPolicy]*SeqResult{}
		if oracle[PolicyRadius], err = SeqRadiusStepping(g, src, 0); err != nil {
			t.Fatal(err)
		}
		if oracle[PolicyRho], err = SeqRhoStepping(g, src, 0); err != nil {
			t.Fatal(err)
		}
		for pol, o := range oracle {
			if !reflect.DeepEqual(o.Dist, delta.Dist) {
				t.Errorf("%s: %v oracle distances differ from Δ-stepping's", name, pol)
			}
		}
		// Canonical parents: on positive weights every policy elects
		// min{u : d(u)+w(u,v) = d(v)}, so the two oracles agree exactly
		// (SeqDeltaStepping predates the election and is distance-only).
		if !reflect.DeepEqual(oracle[PolicyRadius].Parent, oracle[PolicyRho].Parent) {
			t.Errorf("%s: radius and rho oracle parents disagree", name)
		}
		for _, ranks := range []int{1, 2, 4, 8} {
			// The distributed Δ engine elects canonically too: its parents
			// must match the non-Δ oracles', proving all three policies
			// land on one tree.
			dopts := DelOptions(25)
			dopts.Threads = 2
			dres := mustRun(t, g, ranks, src, dopts)
			if !reflect.DeepEqual(dres.Dist, delta.Dist) {
				t.Errorf("%s: delta ranks=%d distances differ from oracle", name, ranks)
			}
			if !reflect.DeepEqual(dres.Parent, oracle[PolicyRadius].Parent) {
				t.Errorf("%s: delta ranks=%d parents differ from canonical tree", name, ranks)
			}
			for pol, o := range oracle {
				var opts Options
				if pol == PolicyRadius {
					opts = RadiusSteppingOptions(0)
				} else {
					opts = RhoSteppingOptions(0)
				}
				opts.Threads = 2
				res := mustRun(t, g, ranks, src, opts)
				if !reflect.DeepEqual(res.Dist, o.Dist) {
					t.Errorf("%s: %v ranks=%d distances differ from oracle", name, pol, ranks)
				}
				if !reflect.DeepEqual(res.Parent, o.Parent) {
					t.Errorf("%s: %v ranks=%d parents differ from oracle", name, pol, ranks)
				}
			}
		}
	}
}

// TestSteppingPolicyZeroWeightDistances drops the positivization: with
// zero-weight edges in play, parents are schedule-dependent but the
// distances must still be exact under every policy and rank count.
func TestSteppingPolicyZeroWeightDistances(t *testing.T) {
	g := rmatTestGraph // scale-11, weights include zeros
	src := testRoot(g)
	want, err := Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 4} {
		for _, opts := range []Options{RadiusSteppingOptions(0), RhoSteppingOptions(0)} {
			opts.Threads = 2
			res := mustRun(t, g, ranks, src, opts)
			if !reflect.DeepEqual(res.Dist, want.Dist) {
				t.Errorf("%v ranks=%d: distances differ from Dijkstra on zero-weight graph",
					opts.Policy, ranks)
			}
		}
	}
}

// TestSteppingPolicyOverTCP runs the non-Δ policies over real TCP
// sockets with both wire formats: transport and encoding must not
// perturb the byte-identical trees.
func TestSteppingPolicyOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP matrix in -short mode")
	}
	g0, err := rmat.Generate(rmat.Family1(10, 123))
	if err != nil {
		t.Fatal(err)
	}
	g := positivize(t, g0)
	src := testRoot(g)
	oracle := map[SteppingPolicy]*SeqResult{}
	if oracle[PolicyRadius], err = SeqRadiusStepping(g, src, 0); err != nil {
		t.Fatal(err)
	}
	if oracle[PolicyRho], err = SeqRhoStepping(g, src, 0); err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{2, 4} {
		for _, wire := range []WireFormat{WireV1, WireV2} {
			for pol, o := range oracle {
				var opts Options
				if pol == PolicyRadius {
					opts = RadiusSteppingOptions(0)
				} else {
					opts = RhoSteppingOptions(0)
				}
				opts.Threads = 2
				opts.WireFormat = wire
				res := runOverTCP(t, g, ranks, src, opts)
				if !reflect.DeepEqual(res.Dist, o.Dist) {
					t.Errorf("%v ranks=%d wire=%v: TCP distances differ", pol, ranks, wire)
				}
				if !reflect.DeepEqual(res.Parent, o.Parent) {
					t.Errorf("%v ranks=%d wire=%v: TCP parents differ", pol, ranks, wire)
				}
			}
		}
	}
}

// TestSteppingPolicyAsync crosses the non-Δ policies with the
// asynchronous execution mode: the async driver files buckets through
// the policy's key quantum and defers through its deferWeight, and must
// still converge to the oracle trees.
func TestSteppingPolicyAsync(t *testing.T) {
	g0, err := rmat.Generate(rmat.Family1(10, 777))
	if err != nil {
		t.Fatal(err)
	}
	g := positivize(t, g0)
	src := testRoot(g)
	for _, mk := range []func() Options{
		func() Options { return RadiusSteppingOptions(0) },
		func() Options { return RhoSteppingOptions(0) },
	} {
		opts := mk()
		want, err := Dijkstra(g, src)
		if err != nil {
			t.Fatal(err)
		}
		opts.ExecMode = ExecAsync
		opts.Threads = 2
		for _, ranks := range []int{1, 4} {
			res := mustRun(t, g, ranks, src, opts)
			if !reflect.DeepEqual(res.Dist, want.Dist) {
				t.Errorf("async %v ranks=%d: distances differ from Dijkstra", opts.Policy, ranks)
			}
		}
	}
}

// TestPolicyMachineReuse issues two queries from different sources on
// one Machine per policy: the reset path must clear the policies'
// per-query state (settled flags, pending flags, store) so the second
// answer is as exact as the first — and a Δ Machine re-used after a
// radius/rho Machine's allocation pattern stays untouched.
func TestPolicyMachineReuse(t *testing.T) {
	g0, err := rmat.Generate(rmat.Family1(10, 123))
	if err != nil {
		t.Fatal(err)
	}
	g := positivize(t, g0)
	srcA := testRoot(g)
	srcB := graph.Vertex(1)
	for _, opts := range []Options{RadiusSteppingOptions(0), RhoSteppingOptions(0)} {
		opts.Threads = 2
		m, err := NewMachine(g, 4, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range []graph.Vertex{srcA, srcB, srcA} {
			want, err := Dijkstra(g, src)
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Query(src)
			if err != nil {
				t.Fatalf("%v: Query(%d): %v", opts.Policy, src, err)
			}
			if !reflect.DeepEqual(res.Dist, want.Dist) {
				t.Errorf("%v: reused machine wrong distances from %d", opts.Policy, src)
			}
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTunePolicySmoke sweeps a small candidate set and checks the result
// shape; the winner must be one of the candidates and every trial
// measured.
func TestTunePolicySmoke(t *testing.T) {
	g, err := rmat.Generate(rmat.Family1(9, 42))
	if err != nil {
		t.Fatal(err)
	}
	roots, err := PickRoots(g, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	cands := []PolicyCandidate{
		{Policy: PolicyDelta, Delta: 25},
		{Policy: PolicyRadius, RadiusK: 8},
		{Policy: PolicyRho, Rho: 512},
	}
	res, err := TunePolicy(g, 2, roots, OptOptions(25), cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != len(cands) {
		t.Fatalf("got %d trials, want %d", len(res.Trials), len(cands))
	}
	found := false
	for _, tr := range res.Trials {
		if tr.Mean <= 0 {
			t.Errorf("trial %v has non-positive mean %v", tr.Candidate, tr.Mean)
		}
		if tr.Candidate == res.Best {
			found = true
		}
	}
	if !found {
		t.Errorf("best %v not among trials", res.Best)
	}
}

// TestShortlistPolicyCandidates checks the histogram-driven shortlist
// covers all three policies with in-range parameters.
func TestShortlistPolicyCandidates(t *testing.T) {
	g, err := rmat.Generate(rmat.Family1(10, 42))
	if err != nil {
		t.Fatal(err)
	}
	cands := ShortlistPolicyCandidates(g)
	seen := map[SteppingPolicy]int{}
	for _, c := range cands {
		seen[c.Policy]++
		if err := c.validate(); err != nil {
			t.Errorf("shortlisted invalid candidate %v: %v", c, err)
		}
		if c.Policy == PolicyDelta && (c.Delta < 1 || c.Delta > g.MaxWeight()+1) {
			t.Errorf("Δ candidate %d outside weight range", c.Delta)
		}
	}
	for _, pol := range []SteppingPolicy{PolicyDelta, PolicyRadius, PolicyRho} {
		if seen[pol] == 0 {
			t.Errorf("shortlist has no %v candidate", pol)
		}
	}
}

// TestPolicyString covers the resolved-parameter rendering used by
// traces, the ssspd stats line and the tuner.
func TestPolicyString(t *testing.T) {
	cases := []struct {
		o    Options
		want string
	}{
		{DelOptions(25), "delta(25)"},
		{BellmanFordOptions(), "delta(inf)"},
		{RadiusSteppingOptions(0), "radius(32)"},
		{RadiusSteppingOptions(8), "radius(8)"},
		{RhoSteppingOptions(0), "rho(4096)"},
		{RhoSteppingOptions(512), "rho(512)"},
	}
	for _, tc := range cases {
		if got := tc.o.PolicyString(); got != tc.want {
			t.Errorf("PolicyString() = %q, want %q", got, tc.want)
		}
	}
}
