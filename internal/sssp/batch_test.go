package sssp

import (
	"testing"

	"parsssp/internal/gen"
	"parsssp/internal/graph"
)

func TestPickRoots(t *testing.T) {
	g, err := gen.Star(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	roots, err := PickRoots(g, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 8 {
		t.Fatalf("got %d roots", len(roots))
	}
	for _, r := range roots {
		if g.Degree(r) == 0 {
			t.Errorf("root %d is isolated", r)
		}
	}
	// Deterministic.
	again, err := PickRoots(g, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range roots {
		if roots[i] != again[i] {
			t.Error("PickRoots not deterministic")
		}
	}
}

func TestPickRootsEdgeless(t *testing.T) {
	g, err := graph.FromEdges(5, nil, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PickRoots(g, 1, 0); err == nil {
		t.Error("edgeless graph produced roots")
	}
	empty, err := graph.FromEdges(0, nil, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PickRoots(empty, 1, 0); err == nil {
		t.Error("empty graph produced roots")
	}
}

func TestRunBatch(t *testing.T) {
	g := rmatTestGraph
	roots, err := PickRoots(g, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBatch(g, 3, roots, OptOptions(25))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRoot) != 4 {
		t.Fatalf("got %d per-root stats", len(res.PerRoot))
	}
	if res.HarmonicMeanTEPS <= 0 {
		t.Errorf("harmonic mean TEPS %v", res.HarmonicMeanTEPS)
	}
	// The harmonic mean is at most the max and at least the min rate.
	min, max := res.PerRoot[0].TEPS(res.Edges), res.PerRoot[0].TEPS(res.Edges)
	for _, s := range res.PerRoot {
		teps := s.TEPS(res.Edges)
		if teps < min {
			min = teps
		}
		if teps > max {
			max = teps
		}
	}
	if res.HarmonicMeanTEPS < min*0.999 || res.HarmonicMeanTEPS > max*1.001 {
		t.Errorf("harmonic mean %v outside [%v, %v]", res.HarmonicMeanTEPS, min, max)
	}
	if res.MeanRelaxations <= 0 || res.MeanTimeSeconds <= 0 {
		t.Errorf("degenerate means: %+v", res)
	}
}

func TestRunBatchNoRoots(t *testing.T) {
	if _, err := RunBatch(rmatTestGraph, 2, nil, OptOptions(25)); err == nil {
		t.Error("empty root list accepted")
	}
}
