package sssp

import (
	"fmt"

	"parsssp/internal/graph"
)

// This file implements the sequential reference models of the non-Δ
// stepping policies: Radius Stepping (arXiv 1602.03881) and ρ-stepping
// (arXiv 2105.06145). Like SeqDeltaStepping for the Δ engine, they are
// the ground truth the distributed drivers (radius.go, rho.go) are
// tested against: identical distances always, and identical canonical
// parent trees on strictly-positive-weight graphs.
//
// Parent election mirrors applyRelaxIn exactly: a strict improvement
// takes the relaxing vertex as parent; a positive-weight offer matching
// the current distance takes the relaxing vertex if its id is smaller
// than the incumbent's. Both the sequential and distributed executions
// relax every reached vertex's full adjacency at its final distance at
// least once, so on positive-weight graphs the final parent of v is
// min{u : d(u)+w(u,v) = d(v)} regardless of schedule.

// seqRelax applies one relaxation with the engine's canonical parent
// election and returns whether the distance strictly improved.
func seqRelax(res *SeqResult, src, u, v graph.Vertex, w graph.Weight, nd graph.Dist) bool {
	if nd < res.Dist[v] {
		res.Dist[v] = nd
		res.Parent[v] = u
		return true
	}
	if nd == res.Dist[v] && nd < graph.Inf && w > 0 && u < res.Parent[v] && v != src {
		res.Parent[v] = u
	}
	return false
}

// SeqRadiusStepping is the sequential Radius Stepping reference: each
// epoch picks the threshold M = min over unsettled reached v of
// d(v)+r(v), relaxes the full adjacency of the sub-threshold frontier to
// a fixpoint, and settles everything at or below M. k selects the radius
// r(v) (the k-th smallest incident weight; 0 = the engine default).
func SeqRadiusStepping(g *graph.Graph, src graph.Vertex, k int) (*SeqResult, error) {
	n := g.NumVertices()
	if int(src) >= n {
		return nil, fmt.Errorf("sssp: source %d out of range for n=%d", src, n)
	}
	if k == 0 {
		k = (&Options{}).radiusK()
	}
	if k < 0 {
		return nil, fmt.Errorf("sssp: negative RadiusK %d", k)
	}
	res := &SeqResult{Dist: newDistArray(n), Parent: newParentArray(n)}
	res.Dist[src] = 0
	res.Parent[src] = src
	radius := make([]graph.Dist, n)
	for v := 0; v < n; v++ {
		radius[v] = vertexRadius(g, graph.Vertex(v), k)
	}
	settled := make([]bool, n)
	inNext := make([]bool, n)

	for {
		M := graph.Inf
		for v := 0; v < n; v++ {
			if !settled[v] && res.Dist[v] < graph.Inf {
				if m := res.Dist[v] + radius[v]; m < M {
					M = m
				}
			}
		}
		if M >= graph.Inf {
			break
		}
		res.Buckets++

		var active []graph.Vertex
		for v := 0; v < n; v++ {
			if !settled[v] && res.Dist[v] <= M {
				active = append(active, graph.Vertex(v))
			}
		}
		for len(active) > 0 {
			res.Phases++
			var next []graph.Vertex
			for _, u := range active {
				du := res.Dist[u]
				nbr, ws := g.Neighbors(u)
				for i, v := range nbr {
					res.Relaxations++
					nd := du + graph.Dist(ws[i])
					if seqRelax(res, src, u, v, ws[i], nd) &&
						nd <= M && !inNext[v] {
						inNext[v] = true
						next = append(next, v)
					}
				}
			}
			for _, v := range next {
				inNext[v] = false
			}
			active = next
		}

		for v := 0; v < n; v++ {
			if !settled[v] && res.Dist[v] <= M {
				settled[v] = true
			}
		}
	}
	res.countReached()
	return res, nil
}

// SeqRhoStepping is the sequential ρ-stepping reference: a lazy-batched
// priority queue over quantized distance keys. Each epoch extracts up to
// rho pending vertices from the lowest-keyed bucket, relaxes their full
// adjacency, and re-files improved vertices; nothing settles until the
// queue drains. rho is the batch size (0 = the engine default).
func SeqRhoStepping(g *graph.Graph, src graph.Vertex, rho int) (*SeqResult, error) {
	n := g.NumVertices()
	if int(src) >= n {
		return nil, fmt.Errorf("sssp: source %d out of range for n=%d", src, n)
	}
	if rho == 0 {
		rho = (&Options{}).rho()
	}
	if rho < 0 {
		return nil, fmt.Errorf("sssp: negative Rho %d", rho)
	}
	res := &SeqResult{Dist: newDistArray(n), Parent: newParentArray(n)}
	res.Dist[src] = 0
	res.Parent[src] = src
	q := rhoQuantum(g)
	key := func(d graph.Dist) int64 { return int64(d / q) }

	buckets := map[int64][]graph.Vertex{0: {src}}
	bucketOf := make([]int64, n)
	pending := make([]bool, n)
	for v := range bucketOf {
		bucketOf[v] = infBucket
	}
	bucketOf[src] = 0
	pending[src] = true

	for {
		// Smallest key holding a valid pending entry; compaction mirrors
		// bucketStore.nextPending.
		k := int64(infBucket)
		//parssspvet:allow nodeterminism -- pure min reduction plus stale-bucket pruning; both order-insensitive
		for idx := range buckets {
			if idx >= k {
				continue
			}
			valid := false
			for _, v := range buckets[idx] {
				if bucketOf[v] == idx && pending[v] {
					valid = true
					break
				}
			}
			if valid {
				k = idx
			} else {
				delete(buckets, idx)
			}
		}
		if k == int64(infBucket) {
			break
		}
		res.Buckets++
		res.Phases++

		l := buckets[k]
		keep := l[:0]
		var batch []graph.Vertex
		for _, v := range l {
			if bucketOf[v] != k || !pending[v] {
				continue
			}
			if len(batch) >= rho {
				keep = append(keep, v)
				continue
			}
			pending[v] = false
			batch = append(batch, v)
		}
		if len(keep) == 0 {
			delete(buckets, k)
		} else {
			buckets[k] = keep
		}

		for _, u := range batch {
			du := res.Dist[u]
			nbr, ws := g.Neighbors(u)
			for i, v := range nbr {
				res.Relaxations++
				nd := du + graph.Dist(ws[i])
				if seqRelax(res, src, u, v, ws[i], nd) {
					nb := key(nd)
					moved := nb != bucketOf[v]
					bucketOf[v] = nb
					if !pending[v] {
						pending[v] = true
						buckets[nb] = append(buckets[nb], v)
					} else if moved {
						buckets[nb] = append(buckets[nb], v)
					}
				}
			}
		}
	}
	res.countReached()
	return res, nil
}
