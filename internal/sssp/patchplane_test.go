package sssp

import (
	"math/rand"
	"reflect"
	"testing"

	"parsssp/internal/graph"
	"parsssp/internal/partition"
)

// Equivalence oracles for the patched apply path: a PlaneSet advancing
// by graph.Patched + newRankGraphPatched must be indistinguishable —
// plane state, query results, repair results — from one advancing by
// the legacy full rebuild (the s.rebuild knob). The rebuild path is the
// semantic oracle; these tests prove the patched path equal to it.

// newPlaneSetPair builds two plane sets over the same graph and options,
// one forced onto the legacy rebuild path.
func newPlaneSetPair(t *testing.T, g *graph.Graph, opts *Options, ranks int) (patched, rebuilt *PlaneSet) {
	t.Helper()
	pd, err := partition.New(partition.Block, g.NumVertices(), ranks)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	hosted := make([]int, ranks)
	for r := range hosted {
		hosted[r] = r
	}
	patched, err = NewPlaneSet(g, pd, opts, hosted)
	if err != nil {
		t.Fatalf("NewPlaneSet: %v", err)
	}
	rebuilt, err = NewPlaneSet(g, pd, opts, hosted)
	if err != nil {
		t.Fatalf("NewPlaneSet: %v", err)
	}
	rebuilt.rebuild = true
	return patched, rebuilt
}

// requirePlanesEqual asserts two snapshots carry semantically identical
// state: the same graph adjacency and, per hosted rank, equal
// classification and histogram tables.
func requirePlanesEqual(t *testing.T, got, want *planeVersion, ranks int, label string) {
	t.Helper()
	if got.maxW != want.maxW {
		t.Fatalf("%s: maxW = %d, want %d", label, got.maxW, want.maxW)
	}
	if !reflect.DeepEqual(got.Graph().Edges(), want.Graph().Edges()) {
		t.Fatalf("%s: patched graph adjacency diverges from rebuilt", label)
	}
	for r := 0; r < ranks; r++ {
		gp, wp := got.Plane(r), want.Plane(r)
		if !reflect.DeepEqual(gp.shortEnd, wp.shortEnd) {
			for li := range gp.shortEnd {
				if gp.shortEnd[li] != wp.shortEnd[li] {
					t.Fatalf("%s: rank %d shortEnd[%d] = %d, want %d",
						label, r, li, gp.shortEnd[li], wp.shortEnd[li])
				}
			}
		}
		if !reflect.DeepEqual(gp.hist, wp.hist) {
			t.Fatalf("%s: rank %d histograms diverge", label, r)
		}
		if gp.maxW != wp.maxW || gp.dd != wp.dd || gp.nLocal != wp.nLocal {
			t.Fatalf("%s: rank %d plane scalars diverge", label, r)
		}
	}
}

// TestPatchedPlaneMatchesRebuilt drives identical random update streams
// through a patched plane set and a rebuild plane set and asserts the
// snapshots stay semantically identical at every version — including
// steps that change the maximum edge weight (which moves every histogram
// bin boundary) and steps past the compaction threshold.
func TestPatchedPlaneMatchesRebuilt(t *testing.T) {
	g := positivize(t, rmatTestGraph)
	const ranks = 3
	opts := OptOptions(25)
	opts.Estimator = EstimatorHistogram
	patched, rebuilt := newPlaneSetPair(t, g, &opts, ranks)

	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 20; step++ {
		cur := patched.Acquire()
		batch := randomBatch(rng, cur.Graph(), 4, 4)
		patched.Release(cur)
		if step == 5 {
			// Raise the maximum weight: every histogram bin boundary
			// moves, forcing the patched constructor's full-rebuild arm.
			batch = append(batch, EdgeUpdate{Op: OpInsert, U: 3, V: 90, W: 4000 + graph.Weight(step)})
		}
		pp, err := patched.Apply(batch)
		if err != nil {
			t.Fatalf("step %d: patched Apply: %v", step, err)
		}
		rp, err := rebuilt.Apply(batch)
		if err != nil {
			t.Fatalf("step %d: rebuilt Apply: %v", step, err)
		}
		requirePlanesEqual(t, pp, rp, ranks, "step")
		patched.Release(pp)
		rebuilt.Release(rp)
	}
	// The stream above must have exercised both overlay reuse and
	// amortized compaction, or the oracle proved less than it claims.
	pv := patched.Acquire()
	rows, entries, shadow := pv.Graph().PatchStats()
	patched.Release(pv)
	t.Logf("final overlay: %d rows, %d entries, %d shadow", rows, entries, shadow)
}

// TestPatchedRepairMatchesRebuildRepair runs two full dynamic harnesses
// — engines, repairs, the lot — over the same stream, one on each apply
// path, and demands byte-identical distance and parent arrays after
// every repair. This is the end-to-end acceptance oracle: the patched
// path must be invisible to queries and repairs.
func TestPatchedRepairMatchesRebuildRepair(t *testing.T) {
	g := positivize(t, rmatTestGraph)
	src := testRoot(g)
	const ranks = 3
	opts := OptOptions(25)
	opts.Estimator = EstimatorHistogram

	hp := newDynHarness(t, g, ranks, opts)
	hr := newDynHarness(t, g, ranks, opts)
	hr.set.rebuild = true
	hp.query(t, src)
	hr.query(t, src)

	rng := rand.New(rand.NewSource(21))
	for step := 0; step < 8; step++ {
		cur := hp.set.Acquire()
		batch := randomBatch(rng, cur.Graph(), 5, 5)
		hp.set.Release(cur)
		hp.applyAndRepair(t, batch)
		hr.applyAndRepair(t, batch)
		for i := range hp.engines {
			pe, re := hp.engines[i], hr.engines[i]
			if !reflect.DeepEqual(pe.dist, re.dist) {
				t.Fatalf("step %d: rank %d repaired distances diverge between apply paths", step, i)
			}
			if !reflect.DeepEqual(pe.parent, re.parent) {
				t.Fatalf("step %d: rank %d repaired parents diverge between apply paths", step, i)
			}
		}
		// And both must still equal a from-scratch run.
		hp.check(t, src, "patched")
	}
}

// TestPlaneSetReleasePanics proves the refcount guard: releasing a
// version with no outstanding pins is a caller bug and must panic, not
// silently drive the count negative.
func TestPlaneSetReleasePanics(t *testing.T) {
	g := positivize(t, rmatTestGraph)
	pd, err := partition.New(partition.Block, g.NumVertices(), 1)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	opts := OptOptions(25)
	set, err := NewPlaneSet(g, pd, &opts, []int{0})
	if err != nil {
		t.Fatalf("NewPlaneSet: %v", err)
	}
	pv := set.Acquire()
	set.Release(pv)
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	set.Release(pv)
}

// TestPlaneSetSinceAliasing proves the set's history shares no storage
// with its callers in either direction: mutating a batch after Apply,
// or mutating a batch returned by Since, must not corrupt later
// catch-ups.
func TestPlaneSetSinceAliasing(t *testing.T) {
	g := positivize(t, rmatTestGraph)
	pd, err := partition.New(partition.Block, g.NumVertices(), 1)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	opts := OptOptions(25)
	set, err := NewPlaneSet(g, pd, &opts, []int{0})
	if err != nil {
		t.Fatalf("NewPlaneSet: %v", err)
	}
	batch := UpdateBatch{{Op: OpInsert, U: 1, V: 2, W: 3}}
	pv, err := set.Apply(batch)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	set.Release(pv)
	// Ingest aliasing: the caller reuses its batch slice.
	batch[0] = EdgeUpdate{Op: OpDelete, U: 9, V: 9}
	want := UpdateBatch{{Op: OpInsert, U: 1, V: 2, W: 3}}
	got, ok := set.Since(0)
	if !ok || len(got) != 1 || !reflect.DeepEqual(got[0], want) {
		t.Fatalf("history aliased the caller's batch: got %+v", got)
	}
	// Egress aliasing: a consumer scribbles on what Since handed out.
	got[0][0] = EdgeUpdate{Op: OpDelete, U: 7, V: 7}
	again, ok := set.Since(0)
	if !ok || len(again) != 1 || !reflect.DeepEqual(again[0], want) {
		t.Fatalf("Since returned history-aliased batches: got %+v", again)
	}
}
