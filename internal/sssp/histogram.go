package sssp

import "parsssp/internal/graph"

// Per-vertex cumulative weight histograms: the paper's suggested
// alternative to exact binary-search request counting for the push/pull
// decision heuristic. Each local vertex stores cumulative long-edge
// counts at histBins+1 evenly spaced weight boundaries over
// [Δ, maxW+1]; a request-count query interpolates linearly between
// boundaries in O(1), trading accuracy for speed and memory locality.

// histBins is the number of histogram intervals per vertex.
const histBins = 8

// buildHistograms precomputes the cumulative histogram table. Called at
// engine construction when Options.Estimator == EstimatorHistogram, and
// by the patched-plane constructor when a changed maximum weight moves
// every bin boundary.
func (p *rankGraph) buildHistograms() {
	p.hist = make([]int32, p.nLocal*(histBins+1))
	for li := 0; li < p.nLocal; li++ {
		p.histRow(li)
	}
}

// histRow recomputes the cumulative histogram row of local vertex li
// from its current adjacency. The patched-plane constructor calls it
// for touched vertices only.
func (p *rankGraph) histRow(li int) {
	span := graph.Dist(p.maxW) + 1 - graph.Dist(p.opts.Delta)
	if span < 1 {
		span = 1
	}
	v := p.pd.Global(p.rank, li)
	base := li * (histBins + 1)
	for j := 1; j <= histBins; j++ {
		b := graph.Dist(p.opts.Delta) + span*graph.Dist(j)/histBins
		p.hist[base+j] = int32(p.g.CountWeightRange(v, p.opts.Delta, graph.Weight(b)))
	}
}

// histCount approximates the number of edges of local vertex li with
// weight in [Δ, bound) by linear interpolation of the cumulative
// histogram.
func (p *rankGraph) histCount(li uint32, bound graph.Dist) int64 {
	delta := graph.Dist(p.opts.Delta)
	if bound <= delta {
		return 0
	}
	span := graph.Dist(p.maxW) + 1 - delta
	if span < 1 {
		span = 1
	}
	base := int(li) * (histBins + 1)
	if bound >= delta+span {
		return int64(p.hist[base+histBins])
	}
	// Fractional bin position of bound in [0, histBins).
	offset := bound - delta
	j := int(offset * histBins / span)
	if j >= histBins {
		j = histBins - 1
	}
	lo := graph.Dist(p.hist[base+j])
	hi := graph.Dist(p.hist[base+j+1])
	binLo := delta + span*graph.Dist(j)/histBins
	binHi := delta + span*graph.Dist(j+1)/histBins
	if binHi <= binLo {
		return int64(lo)
	}
	frac := float64(bound-binLo) / float64(binHi-binLo)
	return int64(lo) + int64(float64(hi-lo)*frac)
}
