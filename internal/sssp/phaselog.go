package sssp

import (
	"fmt"
	"time"
)

// PhaseKind labels one bulk-synchronous phase in the execution timeline.
type PhaseKind int

const (
	// PhaseShort is a short-edge relaxation phase.
	PhaseShort PhaseKind = iota
	// PhaseOuterShort is the IOS outer-short push at the start of a
	// long-edge phase.
	PhaseOuterShort
	// PhaseLongPush is a push-mode long-edge phase.
	PhaseLongPush
	// PhaseLongPull is a pull-mode long-edge phase (requests+responses).
	PhaseLongPull
	// PhaseBellmanFord is a post-hybrid-switch relaxation round.
	PhaseBellmanFord
	// PhaseAsync is one rank-local relax-drain round of the asynchronous
	// execution mode. Unlike the other kinds it is not a collective: each
	// rank's rounds run unaligned with its peers', so a merged timeline
	// concatenates rather than zips them (see mergePhaseLogs).
	PhaseAsync
	// PhaseRadius is one fixpoint round of a Radius Stepping threshold
	// epoch (the Bucket field holds the threshold M, not a bucket index).
	PhaseRadius
	// PhaseRho is one batched extraction round of the ρ-stepping policy.
	PhaseRho
)

// String returns the phase kind name.
func (k PhaseKind) String() string {
	switch k {
	case PhaseShort:
		return "short"
	case PhaseOuterShort:
		return "outer-short"
	case PhaseLongPush:
		return "long-push"
	case PhaseLongPull:
		return "long-pull"
	case PhaseBellmanFord:
		return "bellman-ford"
	case PhaseAsync:
		return "async-round"
	case PhaseRadius:
		return "radius"
	case PhaseRho:
		return "rho"
	default:
		return fmt.Sprintf("PhaseKind(%d)", int(k))
	}
}

// PhaseRecord is one timeline entry. In a merged Stats, Active and Relax
// are summed over ranks (globals) and Duration is the per-rank maximum.
type PhaseRecord struct {
	// Bucket is the epoch's bucket index, or -1 for Bellman-Ford rounds.
	Bucket int64
	// Kind is the phase type.
	Kind PhaseKind
	// Active is the number of vertices scanned in this phase.
	Active int64
	// Relax is the number of relax operations (incl. requests/responses)
	// the phase performed.
	Relax int64
	// Duration is the wall-clock of the phase.
	Duration time.Duration
}

// logPhase appends a timeline record when Options.RecordPhases is set.
func (r *queryState) logPhase(bucket int64, kind PhaseKind, active int,
	before RelaxCounts, start time.Time) {
	if !r.opts.RecordPhases {
		return
	}
	after := r.relaxTotals()
	r.stats.PhaseLog = append(r.stats.PhaseLog, PhaseRecord{
		Bucket:   bucket,
		Kind:     kind,
		Active:   int64(active),
		Relax:    after.Total() - before.Total(),
		Duration: since(start),
	})
}

// mergePhaseLogs combines per-rank timelines. BSP timelines align
// exactly (phases are lockstep collectives) and are zipped: Active and
// Relax summed, Duration maxed. Async timelines are rank-local and do
// not align, so rank 0's log is kept as the representative timeline —
// zipping unrelated rounds would produce nonsense.
func mergePhaseLogs(out *Stats, ranks []*RankResult) {
	if len(ranks) == 0 || len(ranks[0].Stats.PhaseLog) == 0 {
		return
	}
	out.PhaseLog = make([]PhaseRecord, len(ranks[0].Stats.PhaseLog))
	copy(out.PhaseLog, ranks[0].Stats.PhaseLog)
	if len(out.PhaseLog) > 0 && out.PhaseLog[0].Kind == PhaseAsync {
		return
	}
	for _, rr := range ranks[1:] {
		log := rr.Stats.PhaseLog
		for i := range out.PhaseLog {
			if i >= len(log) {
				break
			}
			out.PhaseLog[i].Active += log[i].Active
			out.PhaseLog[i].Relax += log[i].Relax
			if log[i].Duration > out.PhaseLog[i].Duration {
				out.PhaseLog[i].Duration = log[i].Duration
			}
		}
	}
}
