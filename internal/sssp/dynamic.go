package sssp

import (
	"encoding/binary"
	"fmt"
	"sort"

	"parsssp/internal/comm"
	"parsssp/internal/graph"
)

// Dynamic updates: edge-update batches and the incremental tree repair
// that follows one, in the affected-subgraph style of Khanda et al.
// (TPDS 2022) mapped onto this engine's distributed relax/exchange
// machinery. A batch deletes and inserts edges; version.go turns it into
// a fresh immutable graph plane; repair() below fixes a finished query's
// distance/parent tree in place against the new plane instead of
// recomputing it from scratch:
//
//  1. Invalidate. Deleted tree edges orphan their child's subtree. Each
//     rank seeds the locally-orphaned children, then the affected front
//     floods down the parent tree: every round broadcasts the newly
//     invalidated vertex ids (all ranks may own children of any vertex),
//     and an Allreduce of the per-round count detects quiescence.
//     Invalidated vertices reset to +inf / NoParent. Distances of
//     untouched vertices survive as exact upper bounds: their parent
//     chain contains no deleted edge, so their old tree path still
//     exists in the new graph.
//  2. Seed. Invalidated vertices request offers over their full new
//     adjacency (the pull-request record, minus the bucket filter);
//     owners of finite endpoints respond with relaxations. Inserted
//     edges additionally offer both directions between finite endpoints
//     (at the weight the new graph actually kept, which min-weight dedup
//     may have collapsed).
//  3. Re-relax. Plain Bellman-Ford rounds (the hybrid-switch apply path:
//     no buckets, mark/stamp active-set dedup) push improvements until a
//     global Allreduce sees no activity. Only the affected region ever
//     activates.
//  4. Re-elect. Parents are canonical — min-id over the final equal-cost
//     candidates (see applyRelaxIn) — but a vertex whose distance moved
//     has only heard from candidates that also moved. One final
//     request/respond round over the full adjacency of every touched
//     vertex delivers the quiet candidates' offers; at Bellman-Ford
//     convergence d(v) <= d(u)+w on every edge, so these offers tie at
//     best and the round cannot start new relaxation (the loop still
//     re-checks, defensively).
//
// The result must be byte-identical to a from-scratch run on the
// post-update graph — dynamic_test.go enforces it against seeded random
// update streams — with the one caveat rank.go documents: ties across
// zero-weight edges elect schedule-dependent parents, so exact
// parent-tree equality is guaranteed for strictly positive weights
// (distances are always exact).

// UpdateOp says what an EdgeUpdate does.
type UpdateOp uint8

const (
	// OpDelete removes the edge between U and V, whatever its weight.
	// Deleting an absent edge is a no-op.
	OpDelete UpdateOp = 0
	// OpInsert adds an edge U-V with weight W. Inserting over an
	// existing edge keeps the minimum of the two weights (the builder's
	// parallel-edge rule); a weight change is delete + insert in one
	// batch.
	OpInsert UpdateOp = 1
)

// EdgeUpdate is one edge mutation.
type EdgeUpdate struct {
	Op   UpdateOp
	U, V graph.Vertex
	W    graph.Weight
}

// UpdateBatch is an ordered list of edge mutations applied atomically:
// one batch, one new graph version.
type UpdateBatch []EdgeUpdate

// Validate checks a batch against a vertex count: known ops, in-range
// endpoints, no self-loops (the builder would silently drop them, which
// an update stream almost certainly did not mean).
func (b UpdateBatch) Validate(n int) error {
	for i, u := range b {
		if u.Op != OpDelete && u.Op != OpInsert {
			return fmt.Errorf("sssp: update %d: unknown op %d", i, u.Op)
		}
		if int(u.U) >= n || int(u.V) >= n {
			return fmt.Errorf("sssp: update %d: edge (%d,%d) out of range for n=%d", i, u.U, u.V, n)
		}
		if u.U == u.V {
			return fmt.Errorf("sssp: update %d: self-loop on vertex %d", i, u.U)
		}
	}
	return nil
}

// touched returns the sorted, deduplicated endpoints the batch names —
// the only vertices whose adjacency rows (and therefore plane
// classification and histogram rows) can change when it applies. The
// versioned-plane layer threads it into the patched plane constructor.
func (b UpdateBatch) touched() []graph.Vertex {
	out := make([]graph.Vertex, 0, 2*len(b))
	for _, u := range b {
		out = append(out, u.U, u.V)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	uniq := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			uniq = append(uniq, v)
		}
	}
	return uniq
}

// split partitions a batch into the delete and insert edge lists
// graph.WithUpdates and graph.Patched consume.
func (b UpdateBatch) split() (deletes, inserts []graph.Edge) {
	for _, u := range b {
		e := graph.Edge{U: u.U, V: u.V, W: u.W}
		if u.Op == OpDelete {
			deletes = append(deletes, e)
		} else {
			inserts = append(inserts, e)
		}
	}
	return deletes, inserts
}

// ---- update-batch wire record ----------------------------------------------
//
// Layout: uvarint record count, then per record an op byte, u and v as
// uvarints, and — for inserts only — w as a uvarint. The decoder treats
// anything the encoder cannot have produced (truncated varint, dishonest
// count, trailing junk, unknown op, out-of-range or self-loop endpoints)
// as errMalformedPayload: a damaged batch fails whole, it never applies
// a prefix and never panics.

// appendUpdateBatch appends the wire encoding of b to buf.
func appendUpdateBatch(buf []byte, b UpdateBatch) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	for _, u := range b {
		buf = append(buf, byte(u.Op))
		buf = binary.AppendUvarint(buf, uint64(u.U))
		buf = binary.AppendUvarint(buf, uint64(u.V))
		if u.Op == OpInsert {
			buf = binary.AppendUvarint(buf, uint64(u.W))
		}
	}
	return buf
}

// decodeUpdateBatch decodes a batch against a graph of n vertices.
func decodeUpdateBatch(buf []byte, n int) (UpdateBatch, error) {
	cnt, off := readUvarint(buf, 0)
	if off == 0 {
		return nil, fmt.Errorf("%w: update batch header", errMalformedPayload)
	}
	// A delete record needs >= 3 bytes (op, u, v), so a count beyond a
	// third of the remaining bytes cannot be honest.
	if cnt > uint64(len(buf)-off)/3 {
		return nil, fmt.Errorf("%w: update count %d exceeds payload", errMalformedPayload, cnt)
	}
	b := make(UpdateBatch, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		if off >= len(buf) {
			return nil, fmt.Errorf("%w: truncated update record", errMalformedPayload)
		}
		op := UpdateOp(buf[off])
		off++
		u64, o := readUvarint(buf, off)
		if o == 0 {
			return nil, fmt.Errorf("%w: truncated update record", errMalformedPayload)
		}
		v64, o2 := readUvarint(buf, o)
		if o2 == 0 {
			return nil, fmt.Errorf("%w: truncated update record", errMalformedPayload)
		}
		off = o2
		rec := EdgeUpdate{Op: op, U: graph.Vertex(u64), V: graph.Vertex(v64)}
		if u64 > uint64(^graph.Vertex(0)) || v64 > uint64(^graph.Vertex(0)) {
			return nil, fmt.Errorf("%w: update endpoint overflows", errMalformedPayload)
		}
		if op == OpInsert {
			w64, o3 := readUvarint(buf, off)
			if o3 == 0 {
				return nil, fmt.Errorf("%w: truncated update record", errMalformedPayload)
			}
			if w64 > uint64(^graph.Weight(0)) {
				return nil, fmt.Errorf("%w: update weight overflows", errMalformedPayload)
			}
			rec.W = graph.Weight(w64)
			off = o3
		}
		b = append(b, rec)
	}
	if off != len(buf) {
		return nil, fmt.Errorf("%w: trailing junk after update batch", errMalformedPayload)
	}
	if err := b.Validate(n); err != nil {
		return nil, fmt.Errorf("%w: %v", errMalformedPayload, err)
	}
	return b, nil
}

// EncodeUpdateBatch returns the wire encoding of b: the update-batch
// record cmd/ssspd broadcasts to its peer ranks.
func EncodeUpdateBatch(b UpdateBatch) []byte { return appendUpdateBatch(nil, b) }

// DecodeUpdateBatch decodes a wire-encoded update batch against a graph
// of n vertices. A damaged batch — truncated, dishonest count, trailing
// junk, unknown op, out-of-range or self-loop endpoints — fails whole;
// nothing is ever applied from it.
func DecodeUpdateBatch(buf []byte, n int) (UpdateBatch, error) { return decodeUpdateBatch(buf, n) }

// ---- invalidation-flood id record ------------------------------------------
//
// One flood round broadcasts the round's newly-invalidated vertex ids:
// a uvarint count, then the ids sorted ascending, delta-encoded as
// uvarints. Hardened like every other record: a reader flags input the
// encoder cannot produce and the repair fails the batch.

// encodeIDBatch appends the encoding of ids (must be sorted ascending)
// to buf.
func encodeIDBatch(buf []byte, ids []graph.Vertex) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	prev := graph.Vertex(0)
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id-prev))
		prev = id
	}
	return buf
}

// idReader iterates an encoded id batch.
type idReader struct {
	buf  []byte
	off  int
	n    int
	prev graph.Vertex
	bad  bool
}

// newIDReader positions a reader at the first id of buf.
func newIDReader(buf []byte) idReader {
	if len(buf) == 0 {
		return idReader{}
	}
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > uint64(len(buf)-sz) {
		return idReader{bad: true}
	}
	if n == 0 && sz != len(buf) {
		return idReader{bad: true}
	}
	return idReader{buf: buf, off: sz, n: int(n)}
}

// err reports whether the reader met input our encoder cannot produce.
// Meaningful once next has returned ok=false.
func (rd *idReader) err() error {
	if rd.bad {
		return errMalformedPayload
	}
	return nil
}

// next returns the next id, or ok=false when exhausted.
func (rd *idReader) next() (graph.Vertex, bool) {
	if rd.n <= 0 {
		return 0, false
	}
	rd.n--
	dv, o := readUvarint(rd.buf, rd.off)
	if o == 0 {
		rd.n, rd.bad = 0, true
		return 0, false
	}
	rd.off = o
	if rd.n == 0 && rd.off != len(rd.buf) {
		rd.bad = true
	}
	rd.prev += graph.Vertex(dv)
	return rd.prev, true
}

// ---- incremental repair ----------------------------------------------------

// RepairStats summarizes one incremental repair.
type RepairStats struct {
	// Invalidated counts vertices reset to +inf machine-wide.
	Invalidated int64
	// FloodRounds is the number of invalidation broadcast rounds.
	FloodRounds int64
	// RelaxRounds is the number of Bellman-Ford push rounds.
	RelaxRounds int64
	// CanonRounds is the number of parent re-election rounds (1 unless
	// the defensive re-check ever fires).
	CanonRounds int64
}

// repair fixes this rank's finished distance/parent tree in place after
// the graph advanced to newPlane by applying batch. Every rank of the
// slot must call repair in lockstep with the same batch and plane
// version (the collective discipline of a query). The engine's tree must
// be valid for the pre-update plane; on success it is exactly what
// reset+run on the new plane would produce. On error the tree is
// unusable and the engine needs a full recompute (and its transport is
// typically poisoned, like a failed query).
//
// The batch must already be validated against the graph; callers get
// that for free when the batch arrived on the wire (decodeUpdateBatch)
// or through PlaneSet.Apply.
func (r *queryState) repair(newPlane *rankGraph, batch UpdateBatch) (RepairStats, error) {
	var rs RepairStats
	if newPlane.rank != r.rank || newPlane.size != r.size || newPlane.nLocal != r.nLocal {
		return rs, fmt.Errorf("sssp: repair plane shape mismatch (rank %d/%d, %d local vertices)",
			newPlane.rank, newPlane.size, newPlane.nLocal)
	}
	// Repoint the engine at the new plane. Every relax closure reads the
	// graph through the receiver, so adjacency, edge classification and
	// histograms switch atomically with this assignment; the per-vertex
	// arrays keep their meaning because the vertex set and partition are
	// fixed across versions.
	r.rankGraph = newPlane

	// Phase 1: invalidate. Seed with the local children orphaned by
	// deleted tree edges, then flood down the parent subtrees.
	children := make(map[graph.Vertex][]uint32)
	for li := 0; li < r.nLocal; li++ {
		p := r.parent[li]
		if p == NoParent || r.global(uint32(li)) == r.src {
			continue
		}
		children[p] = append(children[p], uint32(li))
	}
	touched := make([]bool, r.nLocal)
	var invalidated, newly []uint32 // accumulated / this round's local indices
	invalidate := func(li uint32) {
		if r.dist[li] >= graph.Inf || r.global(li) == r.src {
			return
		}
		r.dist[li] = graph.Inf
		r.parent[li] = NoParent
		r.bucketOf[li] = infBucket
		touched[li] = true
		newly = append(newly, li)
	}
	orphan := func(p, c graph.Vertex) {
		if r.pd.Owner(c) != r.rank {
			return
		}
		li := uint32(r.local(c))
		if r.parent[li] == p {
			invalidate(li)
		}
	}
	for _, u := range batch {
		if u.Op == OpDelete {
			orphan(u.U, u.V)
			orphan(u.V, u.U)
		}
	}
	var ids []graph.Vertex
	floodOut := make([][]byte, r.size)
	nVerts := graph.Vertex(r.pd.NumVertices())
	for {
		r.reduceVal[0] = int64(len(newly))
		av, err := r.allreduce(r.reduceVal[:1], comm.Sum, false)
		if err != nil {
			return rs, err
		}
		if av[0] == 0 {
			break
		}
		rs.Invalidated += av[0]
		rs.FloodRounds++
		ids = ids[:0]
		for _, li := range newly {
			ids = append(ids, r.global(li))
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		invalidated = append(invalidated, newly...)
		newly = newly[len(newly):]
		// Children of a vertex can live on any rank: broadcast the round's
		// ids to everyone (the same encoded buffer serves every
		// destination — the transports only read it).
		enc := encodeIDBatch(nil, ids)
		for d := range floodOut {
			floodOut[d] = enc
		}
		in, err := r.t.Exchange(floodOut)
		if err != nil {
			return rs, err
		}
		for src, buf := range in {
			rd := newIDReader(buf)
			for {
				id, ok := rd.next()
				if !ok {
					break
				}
				if id >= nVerts {
					return rs, r.corruptErr(src, "invalidation",
						fmt.Errorf("id %d is not a vertex", id))
				}
				for _, cli := range children[id] {
					invalidate(cli)
				}
			}
			if err := rd.err(); err != nil {
				return rs, r.corruptErr(src, "invalidation", err)
			}
		}
	}

	// Phase 2: seed. Invalidated vertices request offers over their full
	// new adjacency; inserted edges offer both ways between finite
	// endpoints. Records stage through thread 0's buffers, so clear all
	// of them first (runWorkers, which normally does, is not involved).
	r.hybridMode = true
	r.active = r.active[:0]
	r.nextActive = r.nextActive[:0]
	clearStaging := func() {
		for tid := range r.tbufs {
			for dest := range r.tbufs[tid] {
				r.tbufs[tid][dest] = r.tbufs[tid][dest][:0]
			}
		}
	}
	clearStaging()
	for _, li := range invalidated {
		v := r.global(li)
		nbr, ws := r.g.Neighbors(v)
		for i, u := range nbr {
			dst := r.pd.Owner(u)
			r.tbufs[0][dst] = appendRequest(r.tbufs[0][dst], u, v, ws[i])
		}
	}
	reqIn, err := r.exchangeRecords(requestKind)
	if err != nil {
		return rs, err
	}
	if err := r.respondRepairRequests(reqIn); err != nil {
		return rs, err
	}
	for _, u := range batch {
		if u.Op != OpInsert {
			continue
		}
		r.offerInsert(u.U, u.V)
		r.offerInsert(u.V, u.U)
	}
	in, err := r.exchangeRecords(relaxKind)
	if err != nil {
		return rs, err
	}
	if err := r.applyRelaxIn(in, false, nil); err != nil {
		return rs, err
	}
	r.active, r.nextActive = r.nextActive, r.active[:0]

	// Phases 3+4: Bellman-Ford rounds until global quiescence, then one
	// parent re-election round over everything that moved; repeat if the
	// election somehow found an improvement (it cannot — see the file
	// comment — but the loop re-checks rather than assumes).
	canonDone := false
	for {
		for _, li := range r.active {
			touched[li] = true
		}
		r.reduceVal[0] = int64(len(r.active))
		av, err := r.allreduce(r.reduceVal[:1], comm.Sum, false)
		if err != nil {
			return rs, err
		}
		if av[0] == 0 {
			if canonDone {
				break
			}
			rs.CanonRounds++
			if err := r.reelectParents(touched); err != nil {
				return rs, err
			}
			r.active, r.nextActive = r.nextActive, r.active[:0]
			canonDone = true
			continue
		}
		canonDone = false
		rs.RelaxRounds++
		items := r.buildItems(r.active)
		r.runWorkers(items, r.bellmanFordFn())
		in, err := r.exchangeRecords(relaxKind)
		if err != nil {
			return rs, err
		}
		if err := r.applyRelaxIn(in, false, nil); err != nil {
			return rs, err
		}
		r.active, r.nextActive = r.nextActive, r.active[:0]
	}
	return rs, nil
}

// respondRepairRequests answers repair-seed requests: for each (u, v, w)
// with u local and settled, offer relax(v, d(u)+w). The pull responder's
// pattern minus the bucket filter; the self-delivered buffer is copied
// out before the staging buffers it may alias are cleared.
func (r *queryState) respondRepairRequests(reqIn [][]byte) error {
	if self := reqIn[r.rank]; len(self) > 0 {
		r.scratch = append(r.scratch[:0], self...)
		reqIn[r.rank] = r.scratch
	}
	for tid := range r.tbufs {
		for dest := range r.tbufs[tid] {
			r.tbufs[tid][dest] = r.tbufs[tid][dest][:0]
		}
	}
	wf := r.opts.WireFormat
	nVerts := graph.Vertex(r.pd.NumVertices())
	for src, buf := range reqIn {
		rd := newRequestReader(buf, wf)
		for {
			u, v, w, ok := rd.next()
			if !ok {
				break
			}
			li := r.local(u)
			if uint(li) >= uint(r.nLocal) {
				return r.corruptErr(src, "request",
					fmt.Errorf("vertex %d is not owned by this rank", u))
			}
			if v >= nVerts {
				return r.corruptErr(src, "request",
					fmt.Errorf("requester %d is not a vertex", v))
			}
			if r.dist[li] >= graph.Inf {
				continue
			}
			nd := r.dist[li] + graph.Dist(w)
			dst := r.pd.Owner(v)
			r.tbufs[0][dst] = appendRelax(r.tbufs[0][dst], v, tagParent(u, w), nd)
		}
		if err := rd.err(); err != nil {
			return r.corruptErr(src, "request", err)
		}
	}
	return nil
}

// offerInsert stages the relaxation offer of inserted edge a-b from a's
// side, at the weight the new graph actually kept (min-weight dedup may
// have collapsed the insert with a surviving parallel edge, or the
// builder may have dropped it entirely).
func (r *queryState) offerInsert(a, b graph.Vertex) {
	if r.pd.Owner(a) != r.rank {
		return
	}
	li := r.local(a)
	if r.dist[li] >= graph.Inf {
		return // an invalidated endpoint already requested over this edge
	}
	w, ok := r.g.EdgeWeight(a, b)
	if !ok {
		return
	}
	nd := r.dist[li] + graph.Dist(w)
	dst := r.pd.Owner(b)
	r.tbufs[0][dst] = appendRelax(r.tbufs[0][dst], b, tagParent(a, w), nd)
}

// reelectParents runs the final canonical-election round: every touched
// local vertex requests offers over its full adjacency, and the
// responses re-run the equal-distance parent election in applyRelaxIn.
func (r *queryState) reelectParents(touched []bool) error {
	for tid := range r.tbufs {
		for dest := range r.tbufs[tid] {
			r.tbufs[tid][dest] = r.tbufs[tid][dest][:0]
		}
	}
	for li, t := range touched {
		if !t {
			continue
		}
		v := r.global(uint32(li))
		nbr, ws := r.g.Neighbors(v)
		for i, u := range nbr {
			dst := r.pd.Owner(u)
			r.tbufs[0][dst] = appendRequest(r.tbufs[0][dst], u, v, ws[i])
		}
	}
	reqIn, err := r.exchangeRecords(requestKind)
	if err != nil {
		return err
	}
	if err := r.respondRepairRequests(reqIn); err != nil {
		return err
	}
	in, err := r.exchangeRecords(relaxKind)
	if err != nil {
		return err
	}
	return r.applyRelaxIn(in, false, nil)
}
