package sssp

import (
	"fmt"

	"parsssp/internal/graph"
)

// RunMultiSource computes, for every vertex, the shortest distance to
// the *nearest* of several sources (and the tree toward it) — the
// multi-source generalization used by facility-location style analyses.
//
// It reduces to a single SSSP query via the same construction the paper
// uses for vertex splitting: a virtual super-source connected to every
// real source by a zero-weight edge. The virtual vertex is stripped from
// the returned result; parents of the sources point to themselves.
func RunMultiSource(g *graph.Graph, numRanks int, sources []graph.Vertex, opts Options) (*Result, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("sssp: RunMultiSource needs at least one source")
	}
	n := g.NumVertices()
	seen := make(map[graph.Vertex]bool, len(sources))
	for _, s := range sources {
		if int(s) >= n {
			return nil, fmt.Errorf("sssp: source %d out of range", s)
		}
		if seen[s] {
			return nil, fmt.Errorf("sssp: duplicate source %d", s)
		}
		seen[s] = true
	}
	if len(sources) == 1 {
		return Run(g, numRanks, sources[0], opts)
	}
	// Augment with the super-source as vertex n, grafted through the
	// insert patch path: the augmented graph shares every existing row
	// with g (only the K source rows and the new super-source row are
	// rewritten into the overlay), instead of materializing and
	// re-sorting the full edge list per query.
	super := make([]graph.Edge, len(sources))
	for i, s := range sources {
		super[i] = graph.Edge{U: graph.Vertex(n), V: s, W: 0}
	}
	ag, err := g.Grown(1).Patched(nil, super)
	if err != nil {
		return nil, err
	}
	res, err := Run(ag, numRanks, graph.Vertex(n), opts)
	if err != nil {
		return nil, err
	}
	// Strip the virtual vertex and repair the sources' parents (they
	// point at the super-source in the augmented tree). Copy into
	// exactly-n arrays so the result does not pin the augmented n+1
	// backing storage alive behind truncated reslices.
	res.Dist = append(make([]graph.Dist, 0, n), res.Dist[:n]...)
	res.Parent = append(make([]graph.Vertex, 0, n), res.Parent[:n]...)
	for _, s := range sources {
		res.Parent[s] = s
	}
	res.Stats.Reached-- // exclude the virtual vertex
	return res, nil
}
