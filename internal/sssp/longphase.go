package sssp

import (
	"fmt"
	"math"

	"parsssp/internal/comm"
	"parsssp/internal/graph"
)

// This file implements the long-edge phase of an epoch: the push model,
// the pull model (the paper's pruning heuristic), the per-bucket
// push/pull decision heuristic, and the post-switch Bellman-Ford rounds
// of the hybridization strategy.

// longPhase relaxes the long edges (and, under IOS, the outer short
// edges) of the settled bucket-k vertices.
//
// Stage order matters for the decision heuristic: the outer-short push
// runs first because it assigns finite tentative distances to many
// previously-unreached vertices, which shrinks their useful-request sets;
// counting pull requests before it would overestimate the pull cost by
// roughly 2× on benchmark graphs.
func (r *queryState) longPhase(k int64, bs *BucketStats) error {
	members := r.collectMembers(k)
	r.stats.Phases++

	// Outer short edges (IOS): always pushed, regardless of the long-edge
	// mechanism; see DESIGN.md ("Pull phase and outer-short edges").
	// Without IOS the short phases already relaxed every short edge, so
	// there is nothing outer to do.
	if r.opts.IOS {
		start := now()
		before := r.relaxTotals()
		if err := r.pushOuterShort(k, members); err != nil {
			return err
		}
		r.logPhase(k, PhaseOuterShort, len(members), before, start)
	}

	mode := ModePush
	if r.opts.Prune {
		m, err := r.decideMode(k, members, bs)
		if err != nil {
			return err
		}
		mode = m
	}
	bs.Mode = mode
	r.stats.Decisions = append(r.stats.Decisions, mode)

	start := now()
	before := r.relaxTotals()
	if mode == ModePush {
		if err := r.pushScanLong(k, members, bs); err != nil {
			return err
		}
		r.logPhase(k, PhaseLongPush, len(members), before, start)
		return nil
	}
	if err := r.pullScan(k); err != nil {
		return err
	}
	r.logPhase(k, PhaseLongPull, len(members), before, start)
	return nil
}

// pushOuterShort pushes the outer-short edges of the bucket members in
// one exchange.
func (r *queryState) pushOuterShort(k int64, members []uint32) error {
	r.phBEnd = r.bucketEnd(k)
	if r.outerFn == nil {
		r.outerFn = func(tid int, it workItem) {
			v := r.global(it.li)
			du := r.dist[it.li]
			nbr, ws := r.g.Neighbors(v)
			cnt := &r.tcnt[tid]
			end := it.hi
			if se := r.shortEnd[it.li]; end > se {
				end = se // long edges are handled by the long-edge mechanism
			}
			for i := it.lo; i < end; i++ {
				nd := du + graph.Dist(ws[i])
				if nd <= r.phBEnd {
					continue // inner short: already relaxed in short phases
				}
				cnt.OuterShortPush++
				dst := r.pd.Owner(nbr[i])
				r.tbufs[tid][dst] = appendRelax(r.tbufs[tid][dst], nbr[i], tagParent(v, ws[i]), nd)
			}
		}
	}
	items := r.buildItems(members)
	r.runWorkers(items, r.outerFn)
	in, err := r.exchangeRecords(relaxKind)
	if err != nil {
		return err
	}
	return r.applyRelaxIn(in, false, nil)
}

// pushScanLong pushes only the long edges, attributing the received
// records to the self/backward/forward census when enabled.
func (r *queryState) pushScanLong(k int64, members []uint32, bs *BucketStats) error {
	if r.longFn == nil {
		r.longFn = func(tid int, it workItem) {
			v := r.global(it.li)
			du := r.dist[it.li]
			nbr, ws := r.g.Neighbors(v)
			cnt := &r.tcnt[tid]
			se := r.shortEnd[it.li]
			lo := it.lo
			if lo < se {
				lo = se
			}
			for i := lo; i < it.hi; i++ {
				cnt.LongPush++
				nd := du + graph.Dist(ws[i])
				dst := r.pd.Owner(nbr[i])
				r.tbufs[tid][dst] = appendRelax(r.tbufs[tid][dst], nbr[i], tagParent(v, ws[i]), nd)
			}
		}
	}
	items := r.buildItems(members)
	r.runWorkers(items, r.longFn)
	in, err := r.exchangeRecords(relaxKind)
	if err != nil {
		return err
	}
	var census *BucketStats
	if r.opts.Census {
		census = bs
	}
	return r.applyRelaxIn(in, false, census)
}

// pullScan runs the pull model: every local vertex in a later bucket
// requests, over each long edge whose weight passes the usefulness test
// w <= d(v) − kΔ, the tentative distance of the far endpoint; owners of
// current-bucket vertices respond with relaxations. (Equality is useful
// only to parent election, see the loop body.)
func (r *queryState) pullScan(k int64) error {
	// Requesters are all local unsettled vertices. Collect them (this is
	// work the pull model pays for; charged to relaxation time). The
	// scratch is rank-owned and reused across pull epochs; buildItems
	// copies what it needs.
	start := now()
	requesters := r.requesters[:0]
	for li := 0; li < r.nLocal; li++ {
		if r.bucketOf[li] > k {
			requesters = append(requesters, uint32(li))
		}
	}
	r.requesters = requesters
	r.charge(start, false)

	r.phKBase = k * r.dd
	if r.pullFn == nil {
		r.pullFn = func(tid int, it workItem) {
			v := r.global(it.li)
			dv := r.dist[it.li]
			bound := dv - r.phKBase // request iff w <= bound
			nbr, ws := r.g.Neighbors(v)
			cnt := &r.tcnt[tid]
			se := r.shortEnd[it.li]
			lo := it.lo
			if lo < se {
				lo = se
			}
			for i := lo; i < it.hi; i++ {
				// A boundary-weight edge (w = d(v) − kΔ) cannot improve d(v),
				// but a bucket-k responder at exactly kΔ answers it with a
				// tie — and ties elect parents canonically, so the offer must
				// travel. Hence <=, not <.
				if graph.Dist(ws[i]) > bound {
					cnt.Skipped += int64(it.hi - i)
					break // weight-sorted: the rest fail the test too
				}
				cnt.PullRequests++
				dst := r.pd.Owner(nbr[i])
				r.tbufs[tid][dst] = appendRequest(r.tbufs[tid][dst], nbr[i], v, ws[i])
			}
		}
	}
	items := r.buildItems(requesters)
	r.runWorkers(items, r.pullFn)
	reqIn, err := r.exchangeRecords(requestKind)
	if err != nil {
		return err
	}

	// Respond: for each request (u, v, w) with u local and in the current
	// bucket, send relax(v, d(u)+w) to v's owner. Serial walk, emitting
	// through thread 0's buffers. The self-delivered buffer may alias the
	// very buffers responses are appended to (local delivery is
	// zero-copy), so it is copied to a scratch area first. All threads'
	// staging buffers are cleared — they still hold the request payloads,
	// and exchangeRecords gathers every thread's buffer.
	start = now()
	if self := reqIn[r.rank]; len(self) > 0 {
		r.scratch = append(r.scratch[:0], self...)
		reqIn[r.rank] = r.scratch
	}
	for tid := range r.tbufs {
		for dest := range r.tbufs[tid] {
			r.tbufs[tid][dest] = r.tbufs[tid][dest][:0]
		}
	}
	cnt := &r.tcnt[0]
	wf := r.opts.WireFormat
	nVerts := graph.Vertex(r.pd.NumVertices())
	for src, buf := range reqIn {
		rd := newRequestReader(buf, wf)
		for {
			u, v, w, ok := rd.next()
			if !ok {
				break
			}
			// Damaged requests fail the query like damaged relaxations do
			// (see applyRelaxIn): u must be locally owned, and v must be a
			// real vertex or Owner(v) below would fault.
			li := r.local(u)
			if uint(li) >= uint(r.nLocal) {
				r.charge(start, false)
				return r.corruptErr(src, "request",
					fmt.Errorf("vertex %d is not owned by this rank", u))
			}
			if v >= nVerts {
				r.charge(start, false)
				return r.corruptErr(src, "request",
					fmt.Errorf("requester %d is not a vertex", v))
			}
			if r.bucketOf[li] != k {
				continue
			}
			cnt.PullResponses++
			nd := r.dist[li] + graph.Dist(w)
			dst := r.pd.Owner(v)
			r.tbufs[0][dst] = appendRelax(r.tbufs[0][dst], v, tagParent(u, w), nd)
		}
		if err := rd.err(); err != nil {
			r.charge(start, false)
			return r.corruptErr(src, "request", err)
		}
	}
	r.charge(start, false)

	respIn, err := r.exchangeRecords(relaxKind)
	if err != nil {
		return err
	}
	return r.applyRelaxIn(respIn, false, nil)
}

// decideMode evaluates the push/pull decision heuristic for bucket k.
//
// Push cost is the number of long edges incident on the current bucket
// (each becomes one relaxation message). Pull cost is twice the request
// count (each useful request triggers at most one response; the paper
// uses the request count as the response upper bound). Following the
// paper's fine-tuned heuristic, each cost blends the machine-wide volume
// with the worst-rank load: cost = (1−λ)·volume + λ·P·maxPerRank.
func (r *queryState) decideMode(k int64, members []uint32, bs *BucketStats) (Mode, error) {
	start := now()
	var pushLocal int64
	for _, li := range members {
		deg := int64(r.g.Degree(r.global(li)))
		pushLocal += deg - int64(r.shortEnd[li])
	}
	var pullLocal int64
	kBase := k * r.dd
	for li := 0; li < r.nLocal; li++ {
		if r.bucketOf[li] <= k {
			continue
		}
		pullLocal += r.requestCount(uint32(li), kBase)
	}
	r.charge(start, false)

	r.reduceVal[0], r.reduceVal[1] = pushLocal, pullLocal
	sums, err := r.allreduce(r.reduceVal[:2], comm.Sum, false)
	if err != nil {
		return ModePush, err
	}
	maxes, err := r.allreduce(r.reduceVal[:2], comm.Max, false)
	if err != nil {
		return ModePush, err
	}
	lambda := r.opts.ImbalanceWeight
	p := float64(r.size)
	costPush := (1-lambda)*float64(sums[0]) + lambda*p*float64(maxes[0])
	// Responses are bounded by both the request count and the number of
	// long edges incident on the current bucket (only those can answer),
	// so min(requests, pushVolume) tightens the paper's requests-only
	// bound.
	responses := sums[1]
	if sums[0] < responses {
		responses = sums[0]
	}
	costPull := (1-lambda)*float64(sums[1]+responses) + lambda*p*2*float64(maxes[1])
	bs.PushCost = int64(costPush)
	bs.PullCost = int64(costPull)
	bs.Requests = sums[1]

	mode := ModePush
	if costPull < costPush {
		mode = ModePull
	}
	// Overrides, strongest first: census forces push (categories are
	// observed at the receiver of push records), then the §IV.G
	// evaluation hooks.
	switch {
	case r.opts.Census:
		mode = ModePush
	case r.opts.ForceMode != nil:
		mode = *r.opts.ForceMode
	case r.epochSeq < len(r.opts.DecisionSequence):
		mode = r.opts.DecisionSequence[r.epochSeq]
	}
	return mode, nil
}

// requestCount returns the number of pull requests vertex li would send
// for the bucket with base distance kBase: long edges with weight
// w < d(v) − kΔ. Exact by default (binary search over the weight-sorted
// adjacency); Options.Estimator selects the paper's expectation formula
// or the histogram approximation instead.
func (r *queryState) requestCount(li uint32, kBase graph.Dist) int64 {
	v := r.global(li)
	deg := int64(r.g.Degree(v))
	longDeg := deg - int64(r.shortEnd[li])
	if longDeg <= 0 {
		return 0
	}
	dv := r.dist[li]
	if dv >= graph.Inf {
		return longDeg
	}
	bound := dv - kBase
	switch r.opts.Estimator {
	case EstimatorExpectation:
		// deg_long(v) × (d(v) − (k+1)Δ) / d(v), clamped to [0, longDeg].
		num := float64(dv - (kBase + r.dd))
		if num <= 0 {
			return 0
		}
		est := float64(longDeg) * num / float64(dv)
		if est > float64(longDeg) {
			est = float64(longDeg)
		}
		return int64(est)
	case EstimatorHistogram:
		return r.histCount(li, bound)
	}
	if bound <= graph.Dist(r.opts.Delta) {
		return 0
	}
	hi := bound
	if hi > graph.Dist(r.maxW)+1 {
		hi = graph.Dist(r.maxW) + 1
	}
	if hi > math.MaxUint32 {
		hi = math.MaxUint32
	}
	return int64(r.g.CountWeightRange(v, r.opts.Delta, graph.Weight(hi)))
}

// bellmanFordFn lazily builds the full-adjacency relaxation scan shared
// by the post-switch Bellman-Ford stage and the incremental repair's
// re-relax rounds (dynamic.go).
func (r *queryState) bellmanFordFn() func(tid int, it workItem) {
	if r.bfFn == nil {
		r.bfFn = func(tid int, it workItem) {
			v := r.global(it.li)
			du := r.dist[it.li]
			nbr, ws := r.g.Neighbors(v)
			cnt := &r.tcnt[tid]
			for i := it.lo; i < it.hi; i++ {
				cnt.BellmanFord++
				nd := du + graph.Dist(ws[i])
				dst := r.pd.Owner(nbr[i])
				r.tbufs[tid][dst] = appendRelax(r.tbufs[tid][dst], nbr[i], tagParent(v, ws[i]), nd)
			}
		}
	}
	return r.bfFn
}

// runBellmanFord executes the post-switch Bellman-Ford stage: all
// remaining buckets are merged and processed with full-adjacency
// relaxation rounds until no distance changes anywhere.
func (r *queryState) runBellmanFord(k int64) error {
	r.hybridMode = true
	start := now()
	frontier := r.active[:0]
	for li := 0; li < r.nLocal; li++ {
		if r.bucketOf[li] > k && r.dist[li] < graph.Inf {
			frontier = append(frontier, uint32(li))
		}
	}
	r.active = frontier
	r.charge(start, true)

	for {
		r.reduceVal[0] = int64(len(r.active))
		av, err := r.allreduce(r.reduceVal[:1], comm.Sum, true)
		if err != nil {
			return err
		}
		if av[0] == 0 {
			return nil
		}
		r.stats.Phases++
		r.stats.BFPhases++
		bfStart := now()
		bfBefore := r.relaxTotals()
		nActive := len(r.active)
		items := r.buildItems(r.active)
		r.runWorkers(items, r.bellmanFordFn())
		in, err := r.exchangeRecords(relaxKind)
		if err != nil {
			return err
		}
		if err := r.applyRelaxIn(in, false, nil); err != nil {
			return err
		}
		r.logPhase(-1, PhaseBellmanFord, nActive, bfBefore, bfStart)
		r.active, r.nextActive = r.nextActive, r.active[:0]
	}
}
