package sssp

import (
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"

	"parsssp/internal/graph"
)

// randomUpdateBatch builds a valid batch against an n-vertex graph:
// random ops, in-range distinct endpoints, positive weights.
func randomUpdateBatch(rng *rand.Rand, n, recs int) UpdateBatch {
	b := make(UpdateBatch, 0, recs)
	for i := 0; i < recs; i++ {
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex(rng.Intn(n))
		if u == v {
			v = (v + 1) % graph.Vertex(n)
		}
		if rng.Intn(2) == 0 {
			b = append(b, EdgeUpdate{Op: OpDelete, U: u, V: v})
		} else {
			b = append(b, EdgeUpdate{Op: OpInsert, U: u, V: v, W: graph.Weight(1 + rng.Intn(1<<16))})
		}
	}
	return b
}

func TestUpdateBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 1 << 20
	for trial := 0; trial < 200; trial++ {
		b := randomUpdateBatch(rng, n, rng.Intn(64))
		buf := EncodeUpdateBatch(b)
		got, err := DecodeUpdateBatch(buf, n)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(b) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, b) {
			t.Fatalf("trial %d: round trip mismatch:\ngot  %+v\nwant %+v", trial, got, b)
		}
	}
}

// TestUpdateBatchDecodeRejectsDamage enumerates every way a batch can be
// damaged on the wire. Each one must fail whole — no prefix applied, no
// panic — because ssspd applies whatever this decoder returns.
func TestUpdateBatchDecodeRejectsDamage(t *testing.T) {
	const n = 100
	valid := EncodeUpdateBatch(UpdateBatch{
		{Op: OpDelete, U: 3, V: 5},
		{Op: OpInsert, U: 7, V: 9, W: 11},
	})
	if _, err := DecodeUpdateBatch(valid, n); err != nil {
		t.Fatalf("valid batch refused: %v", err)
	}

	overflowVertex := func() []byte {
		buf := binary.AppendUvarint(nil, 1)
		buf = append(buf, byte(OpDelete))
		buf = binary.AppendUvarint(buf, 1<<33) // u wider than Vertex
		return binary.AppendUvarint(buf, 2)
	}
	overflowWeight := func() []byte {
		buf := binary.AppendUvarint(nil, 1)
		buf = append(buf, byte(OpInsert))
		buf = binary.AppendUvarint(buf, 1)
		buf = binary.AppendUvarint(buf, 2)
		return binary.AppendUvarint(buf, 1<<40) // w wider than Weight
	}
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"count without records", []byte{0x01}},
		{"dishonest count", append(binary.AppendUvarint(nil, 10), byte(OpDelete), 1, 2)},
		{"unknown op", append(binary.AppendUvarint(nil, 1), 7, 1, 2)},
		{"out-of-range endpoint", EncodeUpdateBatch(UpdateBatch{{Op: OpInsert, U: 200, V: 1, W: 1}})},
		{"self-loop", EncodeUpdateBatch(UpdateBatch{{Op: OpDelete, U: 5, V: 5}})},
		{"trailing junk", append(append([]byte(nil), valid...), 0x00)},
		{"unterminated varint", []byte{0x01, byte(OpDelete), 0x80}},
		{"vertex overflow", overflowVertex()},
		{"weight overflow", overflowWeight()},
	}
	for _, tc := range cases {
		if b, err := DecodeUpdateBatch(tc.buf, n); err == nil {
			t.Errorf("%s: accepted as %+v", tc.name, b)
		}
	}

	// Every proper truncation of a valid encoding must fail too: the
	// count header makes any shortened batch dishonest.
	for k := 0; k < len(valid); k++ {
		if b, err := DecodeUpdateBatch(valid[:k], n); err == nil {
			t.Errorf("truncation to %d bytes accepted as %+v", k, b)
		}
	}
}

// FuzzDecodeUpdateBatch throws arbitrary bytes at the decoder: it must
// never panic, and anything it accepts must survive a re-encode round
// trip (accepted batches are real batches, not artifacts of damage).
func FuzzDecodeUpdateBatch(f *testing.F) {
	const n = 100
	rng := rand.New(rand.NewSource(13))
	f.Add([]byte(nil))
	f.Add(EncodeUpdateBatch(nil))
	f.Add(EncodeUpdateBatch(randomUpdateBatch(rng, n, 8)))
	f.Add([]byte{0x05, byte(OpInsert), 1, 2, 3})
	f.Add([]byte{0x01, byte(OpDelete), 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeUpdateBatch(data, n)
		if err != nil {
			return
		}
		if err := b.Validate(n); err != nil {
			t.Fatalf("decoder accepted an invalid batch: %v", err)
		}
		again, err := DecodeUpdateBatch(EncodeUpdateBatch(b), n)
		if err != nil {
			t.Fatalf("re-decode of accepted batch failed: %v", err)
		}
		if len(b) != 0 && !reflect.DeepEqual(again, b) {
			t.Fatalf("re-encode round trip mismatch:\ngot  %+v\nwant %+v", again, b)
		}
	})
}

func TestIDBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(200)
		ids := make([]graph.Vertex, n)
		v := graph.Vertex(0)
		for i := range ids {
			v += graph.Vertex(1 + rng.Intn(1<<16))
			ids[i] = v
		}
		buf := encodeIDBatch(nil, ids)
		rd := newIDReader(buf)
		for i := 0; i < n; i++ {
			id, ok := rd.next()
			if !ok {
				t.Fatalf("trial %d: exhausted at %d of %d (err %v)", trial, i, n, rd.err())
			}
			if id != ids[i] {
				t.Fatalf("trial %d: id %d = %d, want %d", trial, i, id, ids[i])
			}
		}
		if _, ok := rd.next(); ok {
			t.Fatalf("trial %d: extra ids", trial)
		}
		if err := rd.err(); err != nil {
			t.Fatalf("trial %d: clean batch flagged: %v", trial, err)
		}
	}
}

// TestIDReaderToleratesCorruption mirrors the wire-reader hardening test
// for the invalidation-flood record: random bytes and truncated valid
// batches terminate without panicking, and a reader that survived must
// have delivered exactly what the header promised.
func TestIDReaderToleratesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	drain := func(buf []byte) (int, error) {
		rd := newIDReader(buf)
		got := 0
		for {
			if _, ok := rd.next(); !ok {
				break
			}
			got++
		}
		return got, rd.err()
	}
	for trial := 0; trial < 500; trial++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		got, err := drain(buf)
		if err == nil && len(buf) > 0 {
			claimed, sz := binary.Uvarint(buf)
			if sz <= 0 || got != int(claimed) {
				t.Fatalf("trial %d: reader accepted %d ids against header %d", trial, got, claimed)
			}
		}
	}
	ids := make([]graph.Vertex, 50)
	v := graph.Vertex(0)
	for i := range ids {
		v += graph.Vertex(1 + rng.Intn(1<<20))
		ids[i] = v
	}
	valid := encodeIDBatch(nil, ids)
	// Any proper truncation leaves the count header dishonest (every id
	// costs at least one byte), so the reader must flag it.
	for k := 1; k < len(valid); k++ {
		if _, err := drain(valid[:k]); err == nil {
			t.Errorf("truncation to %d bytes went unflagged", k)
		}
	}
}
