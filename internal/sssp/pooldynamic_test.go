package sssp

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"parsssp/internal/comm"
	"parsssp/internal/comm/memtransport"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
)

// requireTreesEqual asserts a served result's distances and parents
// equal a from-scratch run on g.
func requireTreesEqual(t *testing.T, g *graph.Graph, src graph.Vertex, got *Result, opts Options, ranks int, label string) {
	t.Helper()
	exp, err := Run(g, ranks, src, opts)
	if err != nil {
		t.Fatalf("%s: recompute: %v", label, err)
	}
	if !reflect.DeepEqual(got.Dist, exp.Dist) {
		t.Fatalf("%s: distances diverge from recompute", label)
	}
	if !reflect.DeepEqual(got.Parent, exp.Parent) {
		t.Fatalf("%s: parents diverge from recompute", label)
	}
}

// TestMachineApplyUpdates drives a Machine through an update stream:
// each ApplyUpdates must return the repaired tree for the last source,
// identical to a from-scratch run on the updated graph.
func TestMachineApplyUpdates(t *testing.T) {
	g := positivize(t, rmatTestGraph)
	src := testRoot(g)
	const ranks = 3
	opts := OptOptions(25)
	m, err := NewMachine(g, ranks, opts)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	defer m.Close()

	// Before any query there is no tree: the update applies, no repair.
	if res, rs, err := m.ApplyUpdates(UpdateBatch{{Op: OpInsert, U: 1, V: 2, W: 3}}); err != nil {
		t.Fatalf("ApplyUpdates (no tree): %v", err)
	} else if res != nil || rs != nil {
		t.Fatal("ApplyUpdates repaired a tree that does not exist")
	}
	if m.Version() != 1 {
		t.Fatalf("Version = %d, want 1", m.Version())
	}

	if _, err := m.Query(src); err != nil {
		t.Fatalf("Query: %v", err)
	}
	rng := rand.New(rand.NewSource(17))
	cur := g
	for step := 0; step < 4; step++ {
		pv := m.set.Acquire()
		cur = pv.Graph()
		m.set.Release(pv)
		batch := randomBatch(rng, cur, 5, 5)
		res, rs, err := m.ApplyUpdates(batch)
		if err != nil {
			t.Fatalf("step %d: ApplyUpdates: %v", step, err)
		}
		if res == nil || rs == nil {
			t.Fatalf("step %d: no repaired result", step)
		}
		pv = m.set.Acquire()
		requireTreesEqual(t, pv.Graph(), src, res, opts, ranks, "repair")
		m.set.Release(pv)
	}

	// An invalid batch changes nothing.
	n := graph.Vertex(cur.NumVertices())
	if _, _, err := m.ApplyUpdates(UpdateBatch{{Op: OpInsert, U: n, V: 0, W: 1}}); err == nil {
		t.Fatal("ApplyUpdates accepted an out-of-range edge")
	}
	// A fresh query after updates runs on the current graph.
	other := graph.Vertex(1)
	res, err := m.Query(other)
	if err != nil {
		t.Fatalf("Query after updates: %v", err)
	}
	pv := m.set.Acquire()
	requireTreesEqual(t, pv.Graph(), other, res, opts, ranks, "post-update query")
	m.set.Release(pv)
}

// TestPoolUpdatesSingleSlot pins down the three checkout decisions of a
// one-slot pool: cached (same source, same version), incremental repair
// (same source, newer version), and recompute (new source).
func TestPoolUpdatesSingleSlot(t *testing.T) {
	g := positivize(t, rmatTestGraph)
	src := testRoot(g)
	const ranks = 3
	opts := OptOptions(25)
	p, err := NewQueryPool(g, ranks, 1, opts)
	if err != nil {
		t.Fatalf("NewQueryPool: %v", err)
	}
	defer p.Close()

	if _, err := p.Query(src); err != nil {
		t.Fatalf("Query: %v", err)
	}
	// Cached: same source, same version.
	res, err := p.Query(src)
	if err != nil {
		t.Fatalf("cached Query: %v", err)
	}
	requireTreesEqual(t, g, src, res, opts, ranks, "cached")

	rng := rand.New(rand.NewSource(23))
	cur := g
	for step := 0; step < 3; step++ {
		batch := randomBatch(rng, cur, 4, 4)
		v, err := p.ApplyUpdates(batch)
		if err != nil {
			t.Fatalf("step %d: ApplyUpdates: %v", step, err)
		}
		if want := uint64(step + 1); v != want {
			t.Fatalf("step %d: version = %d, want %d", step, v, want)
		}
		pv := p.set.Acquire()
		cur = pv.Graph()
		p.set.Release(pv)

		// Same source: the slot's tree repairs incrementally.
		res, err := p.Query(src)
		if err != nil {
			t.Fatalf("step %d: repair Query: %v", step, err)
		}
		requireTreesEqual(t, cur, src, res, opts, ranks, "repair")
	}

	// New source on the updated graph: full recompute on the new plane.
	other := graph.Vertex(2)
	res, err = p.Query(other)
	if err != nil {
		t.Fatalf("recompute Query: %v", err)
	}
	requireTreesEqual(t, cur, other, res, opts, ranks, "recompute")
}

// TestPoolRepairAcrossVersions lets a slot fall several versions behind
// and repairs it with the concatenated batch history in one catch-up.
func TestPoolRepairAcrossVersions(t *testing.T) {
	g := positivize(t, rmatTestGraph)
	src := testRoot(g)
	const ranks = 3
	opts := OptOptions(25)
	p, err := NewQueryPool(g, ranks, 1, opts)
	if err != nil {
		t.Fatalf("NewQueryPool: %v", err)
	}
	defer p.Close()
	if _, err := p.Query(src); err != nil {
		t.Fatalf("Query: %v", err)
	}
	rng := rand.New(rand.NewSource(31))
	cur := g
	for step := 0; step < 3; step++ {
		if _, err := p.ApplyUpdates(randomBatch(rng, cur, 4, 4)); err != nil {
			t.Fatalf("ApplyUpdates: %v", err)
		}
		pv := p.set.Acquire()
		cur = pv.Graph()
		p.set.Release(pv)
	}
	res, err := p.Query(src)
	if err != nil {
		t.Fatalf("catch-up Query: %v", err)
	}
	requireTreesEqual(t, cur, src, res, opts, ranks, "multi-version repair")
	if got := p.set.LiveVersions(); got != 1 {
		t.Fatalf("LiveVersions = %d after catch-up, want 1", got)
	}
}

// TestPoolRepairHistoryExhausted forces the slot further behind than
// the bounded batch history reaches; the pool must fall back to a full
// recompute and still answer correctly.
func TestPoolRepairHistoryExhausted(t *testing.T) {
	g := positivize(t, rmatTestGraph)
	src := testRoot(g)
	const ranks = 3
	opts := OptOptions(25)
	p, err := NewQueryPool(g, ranks, 1, opts)
	if err != nil {
		t.Fatalf("NewQueryPool: %v", err)
	}
	defer p.Close()
	p.set.mu.Lock()
	p.set.keep = 1
	p.set.mu.Unlock()
	if _, err := p.Query(src); err != nil {
		t.Fatalf("Query: %v", err)
	}
	rng := rand.New(rand.NewSource(43))
	cur := g
	for step := 0; step < 3; step++ {
		if _, err := p.ApplyUpdates(randomBatch(rng, cur, 3, 3)); err != nil {
			t.Fatalf("ApplyUpdates: %v", err)
		}
		pv := p.set.Acquire()
		cur = pv.Graph()
		p.set.Release(pv)
	}
	res, err := p.Query(src)
	if err != nil {
		t.Fatalf("Query past history: %v", err)
	}
	requireTreesEqual(t, cur, src, res, opts, ranks, "history-exhausted")
}

// TestPoolConcurrentQueriesAndUpdates races a stream of updates against
// concurrent queries on a multi-slot pool. Every query must succeed (on
// whichever version it pinned); afterwards, every slot has migrated and
// answers on the final graph.
func TestPoolConcurrentQueriesAndUpdates(t *testing.T) {
	g := positivize(t, rmatTestGraph)
	src := testRoot(g)
	const ranks, slots = 2, 3
	opts := OptOptions(25)
	opts.Threads = 1
	p, err := NewQueryPool(g, ranks, slots, opts)
	if err != nil {
		t.Fatalf("NewQueryPool: %v", err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	qerrs := make([]error, 4)
	for i := range qerrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				if _, err := p.Query(src + graph.Vertex(i)); err != nil {
					qerrs[i] = err
					return
				}
			}
		}(i)
	}
	rng := rand.New(rand.NewSource(57))
	for step := 0; step < 4; step++ {
		pv := p.set.Acquire()
		batch := randomBatch(rng, pv.Graph(), 3, 3)
		p.set.Release(pv)
		if _, err := p.ApplyUpdates(batch); err != nil {
			t.Fatalf("ApplyUpdates: %v", err)
		}
	}
	wg.Wait()
	for i, err := range qerrs {
		if err != nil {
			t.Fatalf("querier %d: %v", i, err)
		}
	}
	pv := p.set.Acquire()
	final := pv.Graph()
	p.set.Release(pv)
	for i := 0; i < slots+1; i++ {
		s := src + graph.Vertex(i)
		res, err := p.Query(s)
		if err != nil {
			t.Fatalf("final Query(%d): %v", s, err)
		}
		requireTreesEqual(t, final, s, res, opts, ranks, "final")
	}
	// All slots idle and migrated: only the current version is live.
	if got := p.set.LiveVersions(); got != 1 {
		t.Fatalf("LiveVersions = %d after drain, want 1", got)
	}
}

// TestRankServerApplyUpdates drives one RankServer per rank over a
// memtransport group — the multi-process serving shape in miniature —
// through interleaved queries and updates, checking the gathered trees
// against recomputes and the cached/repair fast paths against the
// lockstep provenance rules.
func TestRankServerApplyUpdates(t *testing.T) {
	g := positivize(t, rmatTestGraph)
	src := testRoot(g)
	const ranks = 3
	opts := OptOptions(25)
	pd, err := partition.New(partition.Block, g.NumVertices(), ranks)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	group, err := memtransport.New(ranks)
	if err != nil {
		t.Fatalf("memtransport: %v", err)
	}
	servers := make([]*RankServer, ranks)
	for r, tr := range group.Endpoints() {
		servers[r], err = NewRankServer(g, pd, opts, []comm.Transport{tr})
		if err != nil {
			t.Fatalf("NewRankServer: %v", err)
		}
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	lockstep := func(fn func(r int, s *RankServer) error) {
		t.Helper()
		errs := make([]error, ranks)
		var wg sync.WaitGroup
		for r, s := range servers {
			wg.Add(1)
			go func(r int, s *RankServer) {
				defer wg.Done()
				errs[r] = fn(r, s)
			}(r, s)
		}
		wg.Wait()
		if err := firstCause(errs); err != nil {
			t.Fatalf("lockstep: %v", err)
		}
	}
	gather := func(curr *graph.Graph) *Result {
		t.Helper()
		rrs := make([]*RankResult, ranks)
		lockstep(func(r int, s *RankServer) error {
			rr, err := s.Query(0, src)
			rrs[r] = rr
			return err
		})
		res, err := assemble(curr, pd, rrs)
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		return res
	}

	res := gather(g)
	requireTreesEqual(t, g, src, res, opts, ranks, "initial")

	rng := rand.New(rand.NewSource(71))
	cur := g
	for step := 0; step < 3; step++ {
		batch := randomBatch(rng, cur, 4, 4)
		target := uint64(step + 1)
		stats := make([]*RepairStats, ranks)
		lockstep(func(r int, s *RankServer) error {
			rs, err := s.ApplyUpdates(0, target, batch)
			stats[r] = rs
			return err
		})
		for r, rs := range stats {
			if rs == nil {
				t.Fatalf("step %d: rank %d did not repair", step, r)
			}
		}
		pv := servers[0].set.Acquire()
		cur = pv.Graph()
		servers[0].set.Release(pv)
		// The repaired tree serves the next same-source query cached.
		res := gather(cur)
		requireTreesEqual(t, cur, src, res, opts, ranks, "post-update")
		if v := servers[0].Version(); v != target {
			t.Fatalf("step %d: Version = %d, want %d", step, v, target)
		}
	}

	// A version gap is refused before any collective runs.
	if _, err := servers[0].ApplyUpdates(0, 9, nil); err == nil {
		t.Fatal("ApplyUpdates accepted a version gap")
	}
}
