package sssp

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"parsssp/internal/comm"
	"parsssp/internal/comm/memtransport"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
)

// Machine is a reusable in-process SSSP machine: the transports and all
// per-rank engine state (distance arrays, buckets, message buffers,
// histograms) are allocated once and reused across queries. This is the
// deployment pattern of a long-lived service answering repeated SSSP
// queries over one graph — the Graph500 benchmark loop, the analytics
// package's multi-query measures, and the Δ auto-tuner all fit it.
//
// A Machine is bound to one distribution and option set, and to the
// versioned succession of one graph: ApplyUpdates advances the graph a
// batch of edge mutations at a time, repairing the last query's tree
// incrementally instead of recomputing it. Query and ApplyUpdates are
// not safe for concurrent use (they share the engine state); issue them
// sequentially or build one Machine per concurrent stream.
type Machine struct {
	g       *graph.Graph // version-0 graph; the current one is pv.Graph()
	pd      partition.Dist
	opts    Options
	set     *PlaneSet
	pv      *planeVersion // pinned version the engines point at
	engines []*queryState

	treeSrc   graph.Vertex // source of the engines' finished tree
	treeValid bool         // the engines hold a correct tree for treeSrc at pv
}

// NewMachine builds a machine with numRanks in-process ranks (block
// distribution) ready to answer queries with the given options.
func NewMachine(g *graph.Graph, numRanks int, opts Options) (*Machine, error) {
	pd, err := partition.New(partition.Block, g.NumVertices(), numRanks)
	if err != nil {
		return nil, err
	}
	group, err := memtransport.New(numRanks)
	if err != nil {
		return nil, err
	}
	return NewMachineWithTransports(g, pd, opts, group.Endpoints())
}

// NewMachineWithTransports builds a machine over caller-provided
// transports (one per rank of pd, all part of the same machine). It
// exists so tests and instrumented deployments can interpose transport
// wrappers — comm.Latent, comm.Faulty — under a reusable machine.
func NewMachineWithTransports(g *graph.Graph, pd partition.Dist, opts Options,
	transports []comm.Transport) (*Machine, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(transports) != pd.NumRanks() {
		return nil, fmt.Errorf("sssp: %d transports for %d ranks", len(transports), pd.NumRanks())
	}
	m := &Machine{g: g, pd: pd, opts: opts}
	ranks := make([]int, pd.NumRanks())
	for r := range ranks {
		ranks[r] = r
	}
	set, err := NewPlaneSet(g, pd, &m.opts, ranks)
	if err != nil {
		return nil, err
	}
	m.set = set
	m.pv = set.Acquire()
	for r, t := range transports {
		if t.Rank() != r {
			return nil, fmt.Errorf("sssp: transport %d reports rank %d", r, t.Rank())
		}
		eng, err := newQueryState(m.pv.Plane(r), t)
		if err != nil {
			return nil, err
		}
		m.engines = append(m.engines, eng)
	}
	return m, nil
}

// Query runs one SSSP query from src, reusing all machine state.
//
// A rank that fails aborts the shared transport so its peers fail with it
// rather than hang at a collective (see DESIGN.md "Failure semantics");
// the reported error is the root cause, not the peers' secondary
// comm.ErrAborted failures. A failed query leaves the transports poisoned
// — subsequent Queries fail fast — but the Machine remains safe to Close.
func (m *Machine) Query(src graph.Vertex) (*Result, error) {
	if int(src) >= m.g.NumVertices() {
		return nil, fmt.Errorf("sssp: source %d out of range", src)
	}
	errs := make([]error, len(m.engines))
	var wg sync.WaitGroup
	for i, eng := range m.engines {
		wg.Add(1)
		go func(i int, eng *queryState) {
			defer wg.Done()
			eng.reset(src)
			if err := eng.run(); err != nil {
				comm.Abort(eng.t, err)
				errs[i] = err
			}
		}(i, eng)
	}
	wg.Wait()
	if err := firstCause(errs); err != nil {
		m.treeValid = false
		return nil, err
	}
	m.treeSrc, m.treeValid = src, true
	return m.assembleEngines()
}

// assembleEngines collects the engines' finished local trees into a
// Result. assemble copies the local arrays into fresh global slices, so
// the Result outlives the next reset or repair.
func (m *Machine) assembleEngines() (*Result, error) {
	ranks := make([]*RankResult, len(m.engines))
	for i, eng := range m.engines {
		ranks[i] = &RankResult{
			Rank:        eng.rank,
			LocalDist:   eng.dist,
			LocalParent: eng.parent,
			Stats:       eng.stats,
		}
	}
	return assemble(m.g, m.pd, ranks)
}

// ApplyUpdates advances the machine's graph one version by applying
// batch copy-on-write, then repairs the last successful query's
// distance/parent tree in place against the new graph (dynamic.go)
// instead of recomputing it. The returned Result is the updated tree
// for that query's source — distances and parents exactly as a fresh
// Query on the post-update graph would report them (its Stats are the
// original run's, not a recompute's). Before any successful query there
// is no tree to repair: the engines just repoint at the new plane and
// the Result is nil.
//
// A failed repair poisons the transports like a failed query and
// invalidates the tree; the Machine remains safe to Close. A failed
// Apply (an invalid batch) changes nothing.
func (m *Machine) ApplyUpdates(batch UpdateBatch) (*Result, *RepairStats, error) {
	//parssspvet:allow poolsafety -- the pin transfers to m.pv two lines down (after the old pin is released); Close releases it
	pv, err := m.set.Apply(batch)
	if err != nil {
		return nil, nil, err
	}
	m.set.Release(m.pv)
	m.pv = pv
	if !m.treeValid {
		for _, eng := range m.engines {
			eng.rankGraph = pv.Plane(eng.rank)
		}
		return nil, nil, nil
	}
	stats := make([]RepairStats, len(m.engines))
	errs := make([]error, len(m.engines))
	var wg sync.WaitGroup
	for i, eng := range m.engines {
		wg.Add(1)
		go func(i int, eng *queryState) {
			defer wg.Done()
			rs, err := eng.repair(pv.Plane(eng.rank), batch)
			if err != nil {
				comm.Abort(eng.t, err)
				errs[i] = err
			}
			stats[i] = rs
		}(i, eng)
	}
	wg.Wait()
	if err := firstCause(errs); err != nil {
		m.treeValid = false
		return nil, nil, err
	}
	res, err := m.assembleEngines()
	if err != nil {
		return nil, nil, err
	}
	// The collective round counters are identical on every rank;
	// Invalidated is already the machine-wide Allreduce total.
	return res, &stats[0], nil
}

// Version returns the number of update batches applied to the machine.
func (m *Machine) Version() uint64 { return m.set.Version() }

// NumRanks returns the machine size.
func (m *Machine) NumRanks() int { return len(m.engines) }

// Close releases the machine's pooled worker goroutines and transports.
// Queries must not be in flight or issued afterwards. Close exists for
// long-running processes that churn machines; dropping a Machine without
// closing it only leaks its parked worker goroutines until process exit.
// Every transport is closed even when some fail; all close errors are
// reported, joined.
func (m *Machine) Close() error {
	var err error
	for _, eng := range m.engines {
		eng.stopWorkers()
		err = errors.Join(err, eng.t.Close())
	}
	return err
}

// reset returns a rank engine to its initial state for a new query,
// preserving allocations (buffers, histograms, shortEnd, bucket-store
// map storage, and the Stats slices, whose contents were copied out by
// assemble).
func (r *queryState) reset(src graph.Vertex) {
	r.src = src
	for i := range r.dist {
		r.dist[i] = graph.Inf
		r.parent[i] = NoParent
		r.bucketOf[i] = infBucket
		r.mark[i] = -1
	}
	for i := range r.pending {
		r.pending[i] = false
	}
	for i := range r.settled {
		r.settled[i] = false
	}
	for i := range r.longPending {
		r.longPending[i] = false
	}
	for i := range r.asyncStage {
		r.asyncStage[i] = r.asyncStage[i][:0]
		r.asyncStageAt[i] = time.Time{}
	}
	r.store.reset()
	r.longStore.reset()
	r.curK = 0
	r.hybridMode = false
	r.active = r.active[:0]
	r.nextActive = r.nextActive[:0]
	r.stamp = 0
	r.settledTotal = 0
	r.epochSeq = 0
	r.stats = Stats{
		Buckets:   r.stats.Buckets[:0],
		Decisions: r.stats.Decisions[:0],
		PhaseLog:  r.stats.PhaseLog[:0],
	}
	r.bktTime = 0
	r.otherTime = 0
	for i := range r.tcnt {
		r.tcnt[i] = RelaxCounts{}
	}
	r.t.Stats = comm.TrafficStats{}
}
