package sssp

import (
	"errors"
	"fmt"
	"sync"

	"parsssp/internal/comm"
	"parsssp/internal/comm/memtransport"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
)

// Result is the outcome of a distributed run.
type Result struct {
	// Dist[v] is the shortest distance from the source to vertex v, or
	// graph.Inf if unreachable.
	Dist []graph.Dist
	// Parent[v] is v's predecessor in the shortest-path tree (the source
	// is its own parent; unreachable vertices have NoParent), forming a
	// Graph500-style SSSP tree.
	Parent []graph.Vertex
	// Stats aggregates the run's counters over all ranks.
	Stats Stats
}

// RankResult is the per-rank outcome of RunRank, used by multi-process
// deployments that assemble results themselves.
type RankResult struct {
	// Rank is the rank that produced this result.
	Rank int
	// LocalDist[li] is the distance of the vertex with local index li.
	LocalDist []graph.Dist
	// LocalParent[li] is the tree predecessor of the vertex with local
	// index li.
	LocalParent []graph.Vertex
	// Stats are this rank's counters.
	Stats Stats
}

// RunRank executes the distributed algorithm for one rank over the given
// transport. Every rank of the machine must call RunRank with the same
// graph, distribution, source and options. maxWeight must be the graph's
// maximum edge weight (callers that already know it avoid a scan by
// passing it; pass 0 to have it computed).
//
// A rank that fails mid-query aborts its transport (comm.Abort) before
// returning, so peers blocked in a collective this rank will never reach
// fail with an error wrapping comm.ErrAborted instead of waiting
// forever. See DESIGN.md "Failure semantics".
func RunRank(g *graph.Graph, pd partition.Dist, src graph.Vertex,
	opts Options, t comm.Transport, maxWeight graph.Weight) (*RankResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if maxWeight == 0 {
		maxWeight = g.MaxWeight()
	}
	eng, err := newRankEngine(g, pd, src, &opts, t, maxWeight)
	if err != nil {
		return nil, err
	}
	defer eng.stopWorkers()
	if err := eng.run(); err != nil {
		comm.Abort(eng.t, err)
		return nil, err
	}
	return &RankResult{
		Rank:        eng.rank,
		LocalDist:   eng.dist,
		LocalParent: eng.parent,
		Stats:       eng.stats,
	}, nil
}

// RunWithTransports executes a distributed run over caller-provided
// transports (one per rank, all part of the same machine) and assembles
// the global result. It is the building block for in-process machines;
// see Run for the common case.
func RunWithTransports(g *graph.Graph, pd partition.Dist, src graph.Vertex,
	opts Options, transports []comm.Transport) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(transports) != pd.NumRanks() {
		return nil, fmt.Errorf("sssp: %d transports for %d ranks", len(transports), pd.NumRanks())
	}
	maxW := g.MaxWeight()

	ranks := make([]*RankResult, len(transports))
	errs := make([]error, len(transports))
	var wg sync.WaitGroup
	for i, t := range transports {
		wg.Add(1)
		go func(i int, t comm.Transport) {
			defer wg.Done()
			ranks[i], errs[i] = RunRank(g, pd, src, opts, t, maxW)
		}(i, t)
	}
	wg.Wait()
	if err := firstCause(errs); err != nil {
		return nil, err
	}
	return assemble(g, pd, ranks)
}

// firstCause picks the error to report from a set of per-rank errors:
// the first root cause if there is one, else the first error. When one
// rank fails, its peers fail too — with errors wrapping comm.ErrAborted
// (the failing rank tore the transport down under them). Those are
// propagation, not cause; reporting one would bury the actual fault.
func firstCause(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, comm.ErrAborted) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// Run executes a distributed run on an in-process machine with the given
// number of ranks.
func Run(g *graph.Graph, numRanks int, src graph.Vertex, opts Options) (*Result, error) {
	return RunDistributed(g, partition.MustNew(partition.Block, g.NumVertices(), numRanks), src, opts)
}

// RunDistributed is Run with an explicit vertex distribution.
func RunDistributed(g *graph.Graph, pd partition.Dist, src graph.Vertex, opts Options) (*Result, error) {
	group, err := memtransport.New(pd.NumRanks())
	if err != nil {
		return nil, err
	}
	return RunWithTransports(g, pd, src, opts, group.Endpoints())
}

// assemble merges per-rank results into a global Result.
func assemble(g *graph.Graph, pd partition.Dist, ranks []*RankResult) (*Result, error) {
	res := &Result{
		Dist:   make([]graph.Dist, g.NumVertices()),
		Parent: make([]graph.Vertex, g.NumVertices()),
	}
	for _, rr := range ranks {
		for li, d := range rr.LocalDist {
			v := pd.Global(rr.Rank, li)
			res.Dist[v] = d
			res.Parent[v] = rr.LocalParent[li]
		}
	}
	res.Stats = mergeStats(ranks)
	mergePhaseLogs(&res.Stats, ranks)
	return res, nil
}

// mergeStats combines per-rank statistics: counters are summed,
// per-epoch censuses are summed elementwise, control-flow quantities
// (phases, epochs, decisions) are identical across ranks and taken from
// rank 0, and times take the per-rank maximum.
func mergeStats(ranks []*RankResult) Stats {
	var out Stats
	first := true
	for _, rr := range ranks {
		s := &rr.Stats
		if first {
			out.Phases = s.Phases
			out.Epochs = s.Epochs
			out.BFPhases = s.BFPhases
			out.HybridSwitched = s.HybridSwitched
			out.Decisions = append([]Mode(nil), s.Decisions...)
			out.Buckets = make([]BucketStats, len(s.Buckets))
			for i, b := range s.Buckets {
				out.Buckets[i] = BucketStats{
					Index:       b.Index,
					Mode:        b.Mode,
					ShortPhases: b.ShortPhases,
					Settled:     b.Settled,
					PushCost:    b.PushCost,
					PullCost:    b.PullCost,
				}
			}
			first = false
		}
		out.Relax.Add(s.Relax)
		out.Reached += s.Reached
		if s.BktTime > out.BktTime {
			out.BktTime = s.BktTime
		}
		if s.OtherTime > out.OtherTime {
			out.OtherTime = s.OtherTime
		}
		if s.Total > out.Total {
			out.Total = s.Total
		}
		if t := s.Relax.Total(); t > out.MaxRankRelax {
			out.MaxRankRelax = t
		}
		if s.AsyncRounds > out.AsyncRounds {
			out.AsyncRounds = s.AsyncRounds
		}
		if s.AsyncProbes > out.AsyncProbes {
			out.AsyncProbes = s.AsyncProbes
		}
		out.RankRelax = append(out.RankRelax, s.Relax.Total())
		for i, b := range s.Buckets {
			if i >= len(out.Buckets) {
				break
			}
			out.Buckets[i].ShortRelax += b.ShortRelax
			out.Buckets[i].LongRelax += b.LongRelax
			out.Buckets[i].Requests = b.Requests // allreduced: same everywhere
			out.Buckets[i].SelfEdges += b.SelfEdges
			out.Buckets[i].BackwardEdges += b.BackwardEdges
			out.Buckets[i].ForwardEdges += b.ForwardEdges
		}
		out.mergeTraffic(s.Traffic)
	}
	return out
}
