package sssp

import (
	"fmt"
	"math"

	"parsssp/internal/graph"
	"parsssp/internal/rng"
)

// This file implements Graph500-style batched measurement: the benchmark
// runs SSSP from many random search keys over one graph and reports the
// harmonic mean TEPS across them (the harmonic mean is the correct
// aggregate for rates over a fixed workload).

// BatchResult is the outcome of a multi-root measurement.
type BatchResult struct {
	// Roots are the source vertices, in run order.
	Roots []graph.Vertex
	// PerRoot holds each root's statistics.
	PerRoot []Stats
	// HarmonicMeanTEPS is the Graph500 aggregate rate.
	HarmonicMeanTEPS float64
	// MeanRelaxations is the arithmetic mean of the total relaxations.
	MeanRelaxations float64
	// MeanTimeSeconds is the arithmetic mean query wall-clock.
	MeanTimeSeconds float64
	// Edges is the m used in the TEPS computations.
	Edges int64
}

// PickRoots selects n deterministic non-isolated search keys, as the
// Graph500 harness does (keys must have at least one edge).
func PickRoots(g *graph.Graph, n int, seed uint64) ([]graph.Vertex, error) {
	nv := g.NumVertices()
	if nv == 0 {
		return nil, fmt.Errorf("sssp: cannot pick roots in an empty graph")
	}
	hasEdges := false
	for v := 0; v < nv; v++ {
		if g.Degree(graph.Vertex(v)) > 0 {
			hasEdges = true
			break
		}
	}
	if !hasEdges {
		return nil, fmt.Errorf("sssp: graph has no edges; no valid roots")
	}
	gen := rng.NewXoshiro256(seed)
	roots := make([]graph.Vertex, 0, n)
	for len(roots) < n {
		v := graph.Vertex(gen.IntN(nv))
		if g.Degree(v) > 0 {
			roots = append(roots, v)
		}
	}
	return roots, nil
}

// RunBatch executes one SSSP query per root on a shared in-process
// Machine and aggregates Graph500-style statistics. Transports and all
// engine state are reused across queries, as a real deployment would.
func RunBatch(g *graph.Graph, numRanks int, roots []graph.Vertex, opts Options) (*BatchResult, error) {
	if len(roots) == 0 {
		return nil, fmt.Errorf("sssp: RunBatch needs at least one root")
	}
	machine, err := NewMachine(g, numRanks, opts)
	if err != nil {
		return nil, err
	}
	defer machine.Close()

	res := &BatchResult{
		Roots: append([]graph.Vertex(nil), roots...),
		Edges: g.NumEdges(),
	}
	var invSum float64
	for _, root := range roots {
		run, err := machine.Query(root)
		if err != nil {
			return nil, fmt.Errorf("sssp: batch root %d: %w", root, err)
		}
		res.PerRoot = append(res.PerRoot, run.Stats)
		teps := run.Stats.TEPS(res.Edges)
		if teps <= 0 || math.IsInf(teps, 0) {
			return nil, fmt.Errorf("sssp: degenerate TEPS for root %d", root)
		}
		invSum += 1 / teps
		res.MeanRelaxations += float64(run.Stats.Relax.Total())
		res.MeanTimeSeconds += run.Stats.Total.Seconds()
	}
	n := float64(len(roots))
	res.HarmonicMeanTEPS = n / invSum
	res.MeanRelaxations /= n
	res.MeanTimeSeconds /= n
	return res, nil
}
