package sssp

import (
	"math/rand"
	"reflect"
	"testing"

	"parsssp/internal/graph"
	"parsssp/internal/rmat"
)

// randomRelaxBatch builds an unsorted batch whose destinations cluster
// (mostly tiny gaps with occasional large jumps), so the delta encoding
// sees both its best and worst cases.
func randomRelaxBatch(rng *rand.Rand, n int) []relaxRec {
	recs := make([]relaxRec, n)
	v := graph.Vertex(rng.Intn(100))
	for i := range recs {
		if rng.Intn(4) == 0 {
			v += graph.Vertex(rng.Intn(1 << 20))
		} else {
			v += graph.Vertex(rng.Intn(3))
		}
		recs[i] = relaxRec{
			v:      v,
			parent: graph.Vertex(rng.Uint32()),
			dist:   graph.Dist(rng.Int63n(int64(graph.Inf))),
		}
	}
	rng.Shuffle(n, func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	return recs
}

func TestRelaxBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sorter relaxSorter
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		recs := randomRelaxBatch(rng, n)
		sortRelaxBatch(&sorter, recs)
		for i := 1; i < n; i++ {
			if recs[i-1].v > recs[i].v {
				t.Fatalf("trial %d: batch not sorted at %d", trial, i)
			}
		}
		buf := encodeRelaxBatch(nil, recs)
		if got := wireRecordCount(buf, relaxKind, WireV2); got != n {
			t.Fatalf("trial %d: wireRecordCount = %d, want %d", trial, got, n)
		}
		rd := newRelaxReader(buf, WireV2)
		for i := 0; i < n; i++ {
			v, par, d, ok := rd.next()
			if !ok {
				t.Fatalf("trial %d: reader exhausted at record %d of %d", trial, i, n)
			}
			if v != recs[i].v || par != recs[i].parent || d != recs[i].dist {
				t.Fatalf("trial %d: record %d = (%d,%d,%d), want (%d,%d,%d)",
					trial, i, v, par, d, recs[i].v, recs[i].parent, recs[i].dist)
			}
		}
		if _, _, _, ok := rd.next(); ok {
			t.Fatalf("trial %d: reader returned more than %d records", trial, n)
		}
	}
}

func TestRequestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	type req struct {
		u, v graph.Vertex
		w    graph.Weight
	}
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(200)
		reqs := make([]req, n)
		var v1buf []byte
		for i := range reqs {
			reqs[i] = req{graph.Vertex(rng.Uint32()), graph.Vertex(rng.Uint32()), graph.Weight(rng.Uint32())}
			v1buf = appendRequest(v1buf, reqs[i].u, reqs[i].v, reqs[i].w)
		}
		v2buf := encodeRequestBatch(nil, v1buf)
		// Both formats must yield the same records in the same (emission)
		// order: the responder's output order depends on it.
		for _, tc := range []struct {
			wf  WireFormat
			buf []byte
		}{{WireV1, v1buf}, {WireV2, v2buf}} {
			if got := wireRecordCount(tc.buf, requestKind, tc.wf); got != n {
				t.Fatalf("trial %d %v: wireRecordCount = %d, want %d", trial, tc.wf, got, n)
			}
			rd := newRequestReader(tc.buf, tc.wf)
			for i := 0; i < n; i++ {
				u, v, w, ok := rd.next()
				if !ok {
					t.Fatalf("trial %d %v: exhausted at %d of %d", trial, tc.wf, i, n)
				}
				if u != reqs[i].u || v != reqs[i].v || w != reqs[i].w {
					t.Fatalf("trial %d %v: record %d mismatch", trial, tc.wf, i)
				}
			}
			if _, _, _, ok := rd.next(); ok {
				t.Fatalf("trial %d %v: extra records", trial, tc.wf)
			}
		}
	}
}

// TestWireReadersTolerateCorruption fuzzes the decode path: random bytes
// and truncated valid batches must terminate without panicking, never
// yielding more records than claimed. This is the property the engine
// relies on when it trusts wireRecordCount for sizing decisions.
func TestWireReadersTolerateCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	drain := func(buf []byte, wf WireFormat) {
		rd := newRelaxReader(buf, wf)
		for {
			if _, _, _, ok := rd.next(); !ok {
				break
			}
		}
		qd := newRequestReader(buf, wf)
		for {
			if _, _, _, ok := qd.next(); !ok {
				break
			}
		}
		_ = wireRecordCount(buf, relaxKind, wf)
		_ = wireRecordCount(buf, requestKind, wf)
	}
	for trial := 0; trial < 500; trial++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		drain(buf, WireV1)
		drain(buf, WireV2)
	}
	// Every truncation of a valid v2 batch must also decode cleanly.
	var sorter relaxSorter
	recs := randomRelaxBatch(rng, 50)
	sortRelaxBatch(&sorter, recs)
	valid := encodeRelaxBatch(nil, recs)
	for k := 0; k <= len(valid); k++ {
		drain(valid[:k], WireV2)
	}
}

// wireRunKey extracts the fields of a run that must be independent of
// the wire format (and of anything else nondeterministic like timings).
type wireRunKey struct {
	Relax           RelaxCounts
	Phases, Epochs  int64
	BFPhases        int64
	HybridSwitched  bool
	Reached         int64
	Decisions       []Mode
	Buckets         []BucketStats
	RecordsSent     int64
	RecordsReceived int64
	ExchangeCalls   int64
}

func runKey(r *Result) wireRunKey {
	return wireRunKey{
		Relax:           r.Stats.Relax,
		Phases:          r.Stats.Phases,
		Epochs:          r.Stats.Epochs,
		BFPhases:        r.Stats.BFPhases,
		HybridSwitched:  r.Stats.HybridSwitched,
		Reached:         r.Stats.Reached,
		Decisions:       r.Stats.Decisions,
		Buckets:         r.Stats.Buckets,
		RecordsSent:     r.Stats.Traffic.RecordsSent,
		RecordsReceived: r.Stats.Traffic.RecordsReceived,
		ExchangeCalls:   r.Stats.Traffic.ExchangeCalls,
	}
}

// TestWireFormatsEquivalent runs the same queries under v1 and v2 and
// demands identical results and identical record-level statistics: the
// codec may only change how records are spelled on the wire, never which
// records exist or what they do.
func TestWireFormatsEquivalent(t *testing.T) {
	g, err := rmat.Generate(rmat.Family1(10, 7))
	if err != nil {
		t.Fatal(err)
	}
	src := testRoot(g)
	cases := []struct {
		name string
		opts Options
	}{
		{"del", DelOptions(20)},
		{"opt", func() Options {
			o := OptOptions(25)
			o.Threads = 2
			return o
		}()},
		{"lbopt-parallel", func() Options {
			o := LBOptOptions(25)
			o.Threads = 3
			o.ParallelApply = true
			return o
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o1, o2 := tc.opts, tc.opts
			o1.WireFormat = WireV1
			o2.WireFormat = WireV2
			r1 := mustRun(t, g, 4, src, o1)
			r2 := mustRun(t, g, 4, src, o2)
			if !reflect.DeepEqual(r1.Dist, r2.Dist) {
				t.Error("distances differ between wire formats")
			}
			if !reflect.DeepEqual(r1.Parent, r2.Parent) {
				t.Error("parents differ between wire formats")
			}
			k1, k2 := runKey(r1), runKey(r2)
			if !reflect.DeepEqual(k1, k2) {
				t.Errorf("record-level stats differ:\nv1: %+v\nv2: %+v", k1, k2)
			}
			if k1.RecordsSent == 0 {
				t.Error("no records sent; equivalence test is vacuous")
			}
			if v1, v2 := r1.Stats.Traffic.BytesSent, r2.Stats.Traffic.BytesSent; v2 >= v1 {
				t.Errorf("v2 BytesSent %d not below v1 %d", v2, v1)
			}
		})
	}
}

// TestWireV2CutsBytesScale13 is the acceptance measurement from the
// issue: on a scale-13 RMAT-1 graph over 4 ranks, v2 must cut BytesSent
// by at least 40%% at identical RecordsSent.
func TestWireV2CutsBytesScale13(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-13 acceptance run skipped in -short mode")
	}
	g, err := rmat.Generate(rmat.Family1(13, 99))
	if err != nil {
		t.Fatal(err)
	}
	src := testRoot(g)
	o1 := OptOptions(25)
	o1.Threads = 2
	o2 := o1
	o1.WireFormat = WireV1
	o2.WireFormat = WireV2
	r1 := mustRun(t, g, 4, src, o1)
	r2 := mustRun(t, g, 4, src, o2)
	if r1.Stats.Traffic.RecordsSent != r2.Stats.Traffic.RecordsSent {
		t.Fatalf("RecordsSent differ: v1 %d, v2 %d",
			r1.Stats.Traffic.RecordsSent, r2.Stats.Traffic.RecordsSent)
	}
	b1, b2 := r1.Stats.Traffic.BytesSent, r2.Stats.Traffic.BytesSent
	if b1 == 0 {
		t.Fatal("v1 sent no bytes; acceptance test is vacuous")
	}
	cut := 1 - float64(b2)/float64(b1)
	t.Logf("scale-13: v1 %d bytes, v2 %d bytes, cut %.1f%% (%d records)",
		b1, b2, 100*cut, r1.Stats.Traffic.RecordsSent)
	if cut < 0.40 {
		t.Errorf("v2 cuts BytesSent by %.1f%%, want >= 40%%", 100*cut)
	}
}

// TestSameSeedRunsIdentical checks reproducibility: two runs of the same
// query with the same options produce byte-identical trees and identical
// counters, even with multiple threads and the parallel apply path. This
// pins the static emission schedule in runWorkers — dynamic scheduling
// would make the first-wins parent choice race-dependent.
func TestSameSeedRunsIdentical(t *testing.T) {
	g, err := rmat.Generate(rmat.Family1(10, 7))
	if err != nil {
		t.Fatal(err)
	}
	src := testRoot(g)
	old := parallelApplyThreshold
	parallelApplyThreshold = 1
	defer func() { parallelApplyThreshold = old }()
	for _, wf := range []WireFormat{WireV1, WireV2} {
		o := LBOptOptions(25)
		o.Threads = 3
		o.ParallelApply = true
		o.WireFormat = wf
		r1 := mustRun(t, g, 4, src, o)
		r2 := mustRun(t, g, 4, src, o)
		if !reflect.DeepEqual(r1.Dist, r2.Dist) {
			t.Errorf("%v: distances differ between identical runs", wf)
		}
		if !reflect.DeepEqual(r1.Parent, r2.Parent) {
			t.Errorf("%v: parents differ between identical runs", wf)
		}
		if k1, k2 := runKey(r1), runKey(r2); !reflect.DeepEqual(k1, k2) {
			t.Errorf("%v: counters differ between identical runs:\n%+v\n%+v", wf, k1, k2)
		}
		if b1, b2 := r1.Stats.Traffic.BytesSent, r2.Stats.Traffic.BytesSent; b1 != b2 {
			t.Errorf("%v: BytesSent differ between identical runs: %d vs %d", wf, b1, b2)
		}
	}
}
