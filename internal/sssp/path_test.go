package sssp

import (
	"testing"

	"parsssp/internal/gen"
	"parsssp/internal/graph"
)

func TestPathToOnPathGraph(t *testing.T) {
	g, err := gen.Path([]graph.Weight{3, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, g, 2, 0, OptOptions(5))
	path, err := PathTo(res.Parent, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Vertex{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	length, err := PathLength(g, path)
	if err != nil {
		t.Fatal(err)
	}
	if length != res.Dist[3] {
		t.Errorf("path length %d != dist %d", length, res.Dist[3])
	}
}

func TestPathToSource(t *testing.T) {
	g, err := gen.Path([]graph.Weight{1})
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, g, 1, 0, DelOptions(2))
	path, err := PathTo(res.Parent, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0] != 0 {
		t.Errorf("path to source = %v, want [0]", path)
	}
}

func TestPathToUnreachable(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 2}}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, g, 2, 0, OptOptions(5))
	path, err := PathTo(res.Parent, 2)
	if err != nil {
		t.Fatal(err)
	}
	if path != nil {
		t.Errorf("unreachable vertex produced path %v", path)
	}
}

func TestPathToCorruptParents(t *testing.T) {
	// Cycle: 1 -> 2 -> 1.
	parents := []graph.Vertex{0, 2, 1}
	if _, err := PathTo(parents, 1); err == nil {
		t.Error("parent cycle not detected")
	}
	if _, err := PathTo([]graph.Vertex{0}, 5); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestPathLengthMatchesDistEverywhere(t *testing.T) {
	g := rmatTestGraph
	src := testRoot(g)
	res := mustRun(t, g, 3, src, LBOptOptions(25))
	checked := 0
	for v := 0; v < g.NumVertices(); v += 37 {
		if res.Dist[v] >= graph.Inf {
			continue
		}
		path, err := PathTo(res.Parent, graph.Vertex(v))
		if err != nil {
			t.Fatalf("PathTo(%d): %v", v, err)
		}
		length, err := PathLength(g, path)
		if err != nil {
			t.Fatalf("PathLength(%d): %v", v, err)
		}
		if length != res.Dist[v] {
			t.Fatalf("vertex %d: path length %d != dist %d", v, length, res.Dist[v])
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no reachable vertices sampled")
	}
}

func TestPathLengthRejectsFakePath(t *testing.T) {
	g, err := gen.Path([]graph.Weight{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PathLength(g, []graph.Vertex{0, 2}); err == nil {
		t.Error("non-edge hop accepted")
	}
}
