package sssp

import (
	"errors"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"parsssp/internal/comm"
	"parsssp/internal/comm/memtransport"
	"parsssp/internal/comm/tcptransport"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
)

// checkAgainstFresh asserts a pooled query's result is byte-identical to
// a fresh sequential run from the same source — distances, parents and
// the algorithm counters. This is the pool's core promise: concurrency
// is invisible in the answers.
func checkAgainstFresh(t *testing.T, g *graph.Graph, ranks int, src graph.Vertex, opts Options, got *Result) {
	t.Helper()
	want := mustRun(t, g, ranks, src, opts)
	if !reflect.DeepEqual(got.Dist, want.Dist) {
		t.Errorf("pooled query from %d: distances differ from sequential run", src)
	}
	if !reflect.DeepEqual(got.Parent, want.Parent) {
		t.Errorf("pooled query from %d: parents differ from sequential run", src)
	}
	if got.Stats.Relax != want.Stats.Relax {
		t.Errorf("pooled query from %d: counters differ: %+v vs %+v", src, got.Stats.Relax, want.Stats.Relax)
	}
}

func TestQueryPoolConcurrentMatchesSequential(t *testing.T) {
	g := rmatTestGraph
	const ranks, slots = 3, 3
	opts := OptOptions(25)
	pool, err := NewQueryPool(g, ranks, slots, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.NumRanks() != ranks || pool.Slots() != slots {
		t.Fatalf("pool shape: %d ranks, %d slots", pool.NumRanks(), pool.Slots())
	}
	roots, err := PickRoots(g, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*Result, len(roots))
	errs := make([]error, len(roots))
	var wg sync.WaitGroup
	for i, root := range roots {
		wg.Add(1)
		go func(i int, root graph.Vertex) {
			defer wg.Done()
			results[i], errs[i] = pool.Query(root)
		}(i, root)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	for i, root := range roots {
		checkAgainstFresh(t, g, ranks, root, opts, results[i])
	}
}

// TestQueryPoolOverTCPChannels runs a pool whose slots are logical
// channels of one TCP socket mesh — the multi-process serving shape,
// with goroutines standing in for processes.
func TestQueryPoolOverTCPChannels(t *testing.T) {
	g := rmatTestGraph
	const ranks, slots = 2, 2
	opts := OptOptions(25)
	addrs := make([]string, ranks)
	lns := make([]net.Listener, ranks)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	trs := make([]*tcptransport.Transport, ranks)
	setupErrs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], setupErrs[r] = tcptransport.New(tcptransport.Config{
				Addrs: addrs, Rank: r, DialTimeout: 10 * time.Second,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range setupErrs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	// Slot s rides channel s+1 on every rank; channel 0 is the root.
	groups := make([][]comm.Transport, slots)
	for s := range groups {
		groups[s] = make([]comm.Transport, ranks)
		for r := range groups[s] {
			ch, err := trs[r].Channel(uint32(s + 1))
			if err != nil {
				t.Fatal(err)
			}
			groups[s][r] = ch
		}
	}
	pd := partition.MustNew(partition.Block, g.NumVertices(), ranks)
	pool, err := NewQueryPoolWithGroups(g, pd, opts, groups)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	roots, err := PickRoots(g, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*Result, len(roots))
	errs := make([]error, len(roots))
	for i, root := range roots {
		wg.Add(1)
		go func(i int, root graph.Vertex) {
			defer wg.Done()
			results[i], errs[i] = pool.Query(root)
		}(i, root)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	for i, root := range roots {
		checkAgainstFresh(t, g, ranks, root, opts, results[i])
	}
}

// faultyGroups builds slot communicators over fresh memtransport
// sub-groups, wrapping every rank of slot 0 with a comm.Faulty that
// errors on its first collective. Slots 1..n are clean.
func faultyGroups(t *testing.T, ranks, slots int) [][]comm.Transport {
	t.Helper()
	parent, err := memtransport.New(ranks)
	if err != nil {
		t.Fatal(err)
	}
	groups := make([][]comm.Transport, slots)
	for s := range groups {
		sub, err := parent.SubGroup()
		if err != nil {
			t.Fatal(err)
		}
		groups[s] = sub.Endpoints()
	}
	for r, tr := range groups[0] {
		f, err := comm.NewFaulty(tr, comm.Fault{Collective: 0, Kind: comm.FaultError})
		if err != nil {
			t.Fatal(err)
		}
		groups[0][r] = f
	}
	return groups
}

// TestQueryPoolSlotFaultIsolation is the chaos case: a fault injected
// into one slot's communicator fails that slot's query with the injected
// cause and leaves the other slots answering byte-identical results. The
// faulted slot is retired (these groups have no refresher), not revived.
func TestQueryPoolSlotFaultIsolation(t *testing.T) {
	g := rmatTestGraph
	const ranks, slots = 2, 2
	opts := OptOptions(25)
	pd := partition.MustNew(partition.Block, g.NumVertices(), ranks)
	pool, err := NewQueryPoolWithGroups(g, pd, opts, faultyGroups(t, ranks, slots))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	src := testRoot(g)
	// Slots check out in insertion order, so the first query lands on the
	// faulted slot 0 and must surface the injected error.
	if _, err := pool.Query(src); !errors.Is(err, comm.ErrInjected) {
		t.Fatalf("faulted slot: err = %v, want ErrInjected", err)
	}
	// The surviving slot keeps answering, repeatedly and correctly.
	for i := 0; i < 3; i++ {
		res, err := pool.Query(src)
		if err != nil {
			t.Fatalf("query %d after slot fault: %v", i, err)
		}
		checkAgainstFresh(t, g, ranks, src, opts, res)
	}
}

// TestQueryPoolFaultKillsLastSlot pins the end state: when the final
// slot dies, pending and future queries fail fast with the recorded
// cause instead of blocking on a slot that cannot come back.
func TestQueryPoolFaultKillsLastSlot(t *testing.T) {
	g := rmatTestGraph
	const ranks = 2
	opts := OptOptions(25)
	pd := partition.MustNew(partition.Block, g.NumVertices(), ranks)
	pool, err := NewQueryPoolWithGroups(g, pd, opts, faultyGroups(t, ranks, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	src := testRoot(g)
	if _, err := pool.Query(src); !errors.Is(err, comm.ErrInjected) {
		t.Fatalf("first query: err = %v, want ErrInjected", err)
	}
	_, err = pool.Query(src)
	if err == nil {
		t.Fatal("query on a dead pool succeeded")
	}
	if !errors.Is(err, comm.ErrInjected) {
		t.Errorf("dead pool should report the killing cause, got: %v", err)
	}
}

// TestQueryPoolRevivesFaultySlot checks the revival path NewQueryPool
// pools use: after a failed query the slot gets a fresh communicator and
// rejoins the free list, so a transient fault costs one query, not one
// slot.
func TestQueryPoolRevivesFaultySlot(t *testing.T) {
	g := rmatTestGraph
	const ranks, slots = 2, 2
	opts := OptOptions(25)
	pd := partition.MustNew(partition.Block, g.NumVertices(), ranks)
	pool, err := NewQueryPoolWithGroups(g, pd, opts, faultyGroups(t, ranks, slots))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	parent, err := memtransport.New(ranks)
	if err != nil {
		t.Fatal(err)
	}
	pool.refresh = func() ([]comm.Transport, error) {
		sub, err := parent.SubGroup()
		if err != nil {
			return nil, err
		}
		return sub.Endpoints(), nil
	}
	src := testRoot(g)
	if _, err := pool.Query(src); !errors.Is(err, comm.ErrInjected) {
		t.Fatalf("faulted slot: err = %v, want ErrInjected", err)
	}
	// Both slots must be live again: two concurrent queries proceed and
	// answer correctly.
	results := make([]*Result, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = pool.Query(src)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d after revival: %v", i, err)
		}
		checkAgainstFresh(t, g, ranks, src, opts, results[i])
	}
}

func TestQueryPoolValidationAndClose(t *testing.T) {
	g := rmatTestGraph
	if _, err := NewQueryPool(g, 2, 1, Options{}); err == nil {
		t.Error("invalid options accepted")
	}
	pd := partition.MustNew(partition.Block, g.NumVertices(), 2)
	if _, err := NewQueryPoolWithGroups(g, pd, OptOptions(25), nil); err == nil {
		t.Error("pool with zero slots accepted")
	}
	pool, err := NewQueryPool(g, 2, 2, OptOptions(25))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Query(graph.Vertex(g.NumVertices())); err == nil {
		t.Error("out-of-range source accepted")
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := pool.Query(0); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("query on closed pool: err = %v, want closed", err)
	}
}
