package sssp

import (
	"fmt"
	"math/rand"
	"testing"

	"parsssp/internal/graph"
	"parsssp/internal/partition"
	"parsssp/internal/rmat"
)

// applyBatchPair builds an invertible (forward, reverse) batch pair
// against g: deletions of existing edges paired with re-inserts at the
// original weight, and inserts of brand-new edges paired with deletes.
// Applying fwd then rev returns the graph to its starting adjacency, so
// a benchmark can apply pairs forever without drifting the workload.
func applyBatchPair(rng *rand.Rand, g *graph.Graph, dels, ins int) (fwd, rev UpdateBatch) {
	edges := g.Edges()
	picked := make(map[int]bool, dels)
	for len(picked) < dels {
		i := rng.Intn(len(edges))
		if picked[i] {
			continue
		}
		picked[i] = true
		e := edges[i]
		fwd = append(fwd, EdgeUpdate{Op: OpDelete, U: e.U, V: e.V})
		rev = append(rev, EdgeUpdate{Op: OpInsert, U: e.U, V: e.V, W: e.W})
	}
	n := g.NumVertices()
	for added := 0; added < ins; {
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex(rng.Intn(n))
		if u == v {
			continue
		}
		if _, ok := g.EdgeWeight(u, v); ok {
			continue
		}
		fwd = append(fwd, EdgeUpdate{Op: OpInsert, U: u, V: v, W: graph.Weight(1 + rng.Intn(255))})
		rev = append(rev, EdgeUpdate{Op: OpDelete, U: u, V: v})
		added++
	}
	return fwd, rev
}

// BenchmarkPlaneApply isolates the version-advance cost the update
// latency floor is made of: PlaneSet.Apply on the scale-13 / 4-rank
// plane set, patched path (row-granularity CSR overlay + touched-row
// plane refresh) against the legacy rebuild path (full WithUpdates CSR
// re-sort + every-row plane reclassification). No query or tree repair
// runs — this is purely what applying a batch costs before any repair
// work starts. make bench-dynamic-json archives the numbers as
// BENCH_dynamic.json; see EXPERIMENTS.md "Dynamic updates".
func BenchmarkPlaneApply(b *testing.B) {
	g, err := rmat.Generate(rmat.Family1(13, 7))
	if err != nil {
		b.Fatal(err)
	}
	const ranks = 4
	opts := OptOptions(25)
	opts.Estimator = EstimatorHistogram
	pd, err := partition.New(partition.Block, g.NumVertices(), ranks)
	if err != nil {
		b.Fatal(err)
	}
	hosted := []int{0, 1, 2, 3}
	const numPairs = 8
	pick := func(pairs [][2]UpdateBatch, i int) UpdateBatch {
		return pairs[(i/2)%len(pairs)][i%2]
	}
	for _, size := range []int{4, 32, 256} {
		pairs := make([][2]UpdateBatch, numPairs)
		for k := range pairs {
			rng := rand.New(rand.NewSource(int64(0xFA<<8|size<<4|k) ^ 0x9E3779B9))
			pairs[k][0], pairs[k][1] = applyBatchPair(rng, g, size/2, size-size/2)
		}
		for _, mode := range []struct {
			name    string
			rebuild bool
		}{{"patched", false}, {"rebuild", true}} {
			b.Run(fmt.Sprintf("%s/batch=%d", mode.name, size), func(b *testing.B) {
				set, err := NewPlaneSet(g, pd, &opts, hosted)
				if err != nil {
					b.Fatal(err)
				}
				set.rebuild = mode.rebuild
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pv, err := set.Apply(pick(pairs, i))
					if err != nil {
						b.Fatal(err)
					}
					set.Release(pv)
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "applies/sec")
			})
		}
	}
}
