package sssp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parsssp/internal/comm"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
)

// rankEngine is the per-rank state of a distributed run. One rankEngine
// executes on each rank (a goroutine over memtransport, or a process over
// tcptransport); they advance in lockstep through the bulk-synchronous
// collectives of their transports.
type rankEngine struct {
	g    *graph.Graph
	pd   partition.Dist
	opts *Options
	t    *comm.Counting
	rank int
	size int
	src  graph.Vertex

	nLocal int
	dd     graph.Dist // bucket width Δ
	maxW   graph.Weight

	dist     []graph.Dist   // tentative distances of local vertices
	parent   []graph.Vertex // tree predecessor of local vertices (NoParent = none)
	bucketOf []int64        // current bucket of local vertices (infBucket = unreached)
	shortEnd []int32        // per local vertex: first long-edge index in its adjacency
	store    bucketStore

	curK       int64
	hybridMode bool

	active     []uint32 // local indices active this phase
	nextActive []uint32
	mark       []int64 // stamp array deduplicating nextActive
	stamp      int64

	// Per-thread outgoing buffers and counters; index [thread][dest].
	tbufs      [][][]byte
	tcnt       []RelaxCounts
	out        [][]byte // merged per-dest buffers handed to Exchange
	items      []workItem
	scratch    []byte         // copy of self-delivered buffers when re-emitting (pull responses)
	hist       []int32        // per-vertex cumulative weight histograms (EstimatorHistogram)
	applyStage []applyStaging // per-thread staging for the parallel apply path

	settledTotal int64
	epochSeq     int // epoch ordinal (for DecisionSequence)

	stats     Stats
	bktTime   time.Duration
	otherTime time.Duration
}

type workItem struct {
	li     uint32
	lo, hi int32
}

// newRankEngine prepares rank-local state.
func newRankEngine(g *graph.Graph, pd partition.Dist, src graph.Vertex,
	opts *Options, t comm.Transport, maxW graph.Weight) (*rankEngine, error) {
	if pd.NumVertices() != g.NumVertices() {
		return nil, fmt.Errorf("sssp: distribution covers %d vertices, graph has %d",
			pd.NumVertices(), g.NumVertices())
	}
	if pd.NumRanks() != t.Size() {
		return nil, fmt.Errorf("sssp: distribution has %d ranks, transport %d",
			pd.NumRanks(), t.Size())
	}
	if int(src) >= g.NumVertices() {
		return nil, fmt.Errorf("sssp: source %d out of range", src)
	}
	r := &rankEngine{
		g:    g,
		pd:   pd,
		opts: opts,
		t:    comm.NewCounting(t),
		rank: t.Rank(),
		size: t.Size(),
		src:  src,
		dd:   graph.Dist(opts.Delta),
		maxW: maxW,
	}
	r.nLocal = pd.Count(r.rank)
	r.dist = newDistArray(r.nLocal)
	r.parent = newParentArray(r.nLocal)
	r.bucketOf = make([]int64, r.nLocal)
	for i := range r.bucketOf {
		r.bucketOf[i] = infBucket
	}
	r.mark = make([]int64, r.nLocal)
	for i := range r.mark {
		r.mark[i] = -1
	}
	r.store = newBucketStore()
	r.shortEnd = make([]int32, r.nLocal)
	for li := 0; li < r.nLocal; li++ {
		v := pd.Global(r.rank, li)
		if opts.EdgeClassification {
			r.shortEnd[li] = int32(g.ShortEdgeEnd(v, opts.Delta))
		} else {
			r.shortEnd[li] = int32(g.Degree(v))
		}
	}
	T := opts.threads()
	r.tbufs = make([][][]byte, T)
	for i := range r.tbufs {
		r.tbufs[i] = make([][]byte, r.size)
	}
	r.tcnt = make([]RelaxCounts, T)
	r.out = make([][]byte, r.size)
	if opts.Prune && opts.Estimator == EstimatorHistogram {
		r.buildHistograms()
	}
	return r, nil
}

// local returns the local index of global vertex v, which must be owned
// by this rank.
func (r *rankEngine) local(v graph.Vertex) int { return r.pd.LocalIndex(v) }

// global returns the global id of local index li.
func (r *rankEngine) global(li uint32) graph.Vertex {
	return r.pd.Global(r.rank, int(li))
}

// bucketEnd returns the largest distance in bucket k.
func (r *rankEngine) bucketEnd(k int64) graph.Dist { return (k+1)*r.dd - 1 }

// tracef writes an execution-trace line; only rank 0 emits, so the
// writer needs no synchronization.
func (r *rankEngine) tracef(format string, args ...interface{}) {
	if r.rank != 0 || r.opts.Trace == nil {
		return
	}
	fmt.Fprintf(r.opts.Trace, format+"\n", args...)
}

// ---- timed collectives ----------------------------------------------------

func (r *rankEngine) allreduce(vals []int64, op comm.ReduceOp, bucketOverhead bool) ([]int64, error) {
	start := now()
	res, err := r.t.AllreduceInt64(vals, op)
	r.charge(start, bucketOverhead)
	return res, err
}

func (r *rankEngine) exchange() ([][]byte, error) {
	start := now()
	in, err := r.t.Exchange(r.out)
	r.charge(start, false)
	return in, err
}

func (r *rankEngine) charge(start time.Time, bucketOverhead bool) {
	d := since(start)
	if bucketOverhead {
		r.bktTime += d
	} else {
		r.otherTime += d
	}
}

// ---- parallel scans --------------------------------------------------------

// buildItems converts a vertex list into work items, chunking the edge
// lists of heavy vertices when thread-level load balancing is enabled
// (the paper's intra-node strategy: the owner thread does not relax all
// edges of a heavy vertex by itself).
func (r *rankEngine) buildItems(verts []uint32) []workItem {
	items := r.items[:0]
	if r.opts.LoadBalance && r.opts.threads() > 1 {
		pi := int32(r.opts.heavyThreshold())
		for _, li := range verts {
			deg := int32(r.g.Degree(r.global(li)))
			if deg > pi {
				for lo := int32(0); lo < deg; lo += pi {
					hi := lo + pi
					if hi > deg {
						hi = deg
					}
					items = append(items, workItem{li, lo, hi})
				}
			} else {
				items = append(items, workItem{li, 0, deg})
			}
		}
	} else {
		for _, li := range verts {
			deg := int32(r.g.Degree(r.global(li)))
			items = append(items, workItem{li, 0, deg})
		}
	}
	r.items = items
	return items
}

// runWorkers executes fn over items with the rank's thread pool. Item
// order within a thread is arbitrary; fn must only touch thread-local
// buffers (tbufs[tid], tcnt[tid]).
func (r *rankEngine) runWorkers(items []workItem, fn func(tid int, it workItem)) {
	start := now()
	defer r.charge(start, false)
	T := r.opts.threads()
	for tid := 0; tid < T; tid++ {
		for dest := range r.tbufs[tid] {
			r.tbufs[tid][dest] = r.tbufs[tid][dest][:0]
		}
	}
	if T == 1 || len(items) == 0 {
		for _, it := range items {
			fn(0, it)
		}
		r.mergeBuffers()
		return
	}
	var next int64
	const batch = 16
	var wg sync.WaitGroup
	for tid := 0; tid < T; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, batch) - batch
				if i >= int64(len(items)) {
					return
				}
				end := i + batch
				if end > int64(len(items)) {
					end = int64(len(items))
				}
				for j := i; j < end; j++ {
					fn(tid, items[j])
				}
			}
		}(tid)
	}
	wg.Wait()
	r.mergeBuffers()
}

// mergeBuffers concatenates per-thread buffers into r.out.
func (r *rankEngine) mergeBuffers() {
	T := r.opts.threads()
	for dest := 0; dest < r.size; dest++ {
		if T == 1 {
			r.out[dest] = r.tbufs[0][dest]
			continue
		}
		total := 0
		for tid := 0; tid < T; tid++ {
			total += len(r.tbufs[tid][dest])
		}
		buf := r.out[dest][:0]
		if cap(buf) < total {
			buf = make([]byte, 0, total)
		}
		for tid := 0; tid < T; tid++ {
			buf = append(buf, r.tbufs[tid][dest]...)
		}
		r.out[dest] = buf
	}
}

// relaxTotals sums the per-thread relaxation counters.
func (r *rankEngine) relaxTotals() RelaxCounts {
	var sum RelaxCounts
	for i := range r.tcnt {
		sum.Add(r.tcnt[i])
	}
	return sum
}

// ---- record application ----------------------------------------------------

// applyRelaxIn applies every relax record in the received buffers.
// activate controls whether improved vertices landing in the current
// bucket join the next phase's active set (short phases) — long-phase
// results can never land in the current bucket and pass false. census, if
// non-nil, receives the self/backward/forward categorization of each
// record relative to bucket k.
//
// With ParallelApply enabled (and no census, which needs exact serial
// counting), application runs on the rank's thread pool using the
// paper's intra-node ownership model: local vertex li belongs to thread
// li mod T, every thread scans all records but applies only its own
// vertices, so per-vertex state is written without locks — the role the
// L2 atomics played on Blue Gene/Q.
func (r *rankEngine) applyRelaxIn(in [][]byte, activate bool, census *BucketStats) {
	start := now()
	defer r.charge(start, false)
	r.stamp++
	if T := r.opts.threads(); r.opts.ParallelApply && census == nil && T > 1 &&
		totalRelaxRecords(in) >= parallelApplyThreshold {
		r.applyRelaxParallel(in, activate, T)
		return
	}
	k := r.curK
	for _, buf := range in {
		n := numRelaxRecords(buf)
		for i := 0; i < n; i++ {
			v, par, nd := decodeRelax(buf, i)
			li := r.local(v)
			if census != nil {
				switch b := r.bucketOf[li]; {
				case b == k:
					census.SelfEdges++
				case b < k:
					census.BackwardEdges++
				default:
					census.ForwardEdges++
				}
			}
			if nd >= r.dist[li] {
				continue
			}
			r.dist[li] = nd
			r.parent[li] = par
			if r.hybridMode {
				if r.mark[li] != r.stamp {
					r.mark[li] = r.stamp
					r.nextActive = append(r.nextActive, uint32(li))
				}
				continue
			}
			nb := nd / r.dd
			if nb != r.bucketOf[li] {
				r.bucketOf[li] = nb
				r.store.add(nb, uint32(li))
			}
			if activate && nb == k && r.mark[li] != r.stamp {
				r.mark[li] = r.stamp
				r.nextActive = append(r.nextActive, uint32(li))
			}
		}
	}
}

// ---- main loop ---------------------------------------------------------

// run executes the full query on this rank and leaves per-rank results in
// r.dist / r.stats.
func (r *rankEngine) run() error {
	totalStart := now()
	localMin := int64(infBucket)
	if r.pd.Owner(r.src) == r.rank {
		li := uint32(r.local(r.src))
		r.dist[li] = 0
		r.parent[li] = r.src
		r.bucketOf[li] = 0
		r.store.add(0, li)
		localMin = 0
	}
	kv, err := r.allreduce([]int64{localMin}, comm.Min, true)
	if err != nil {
		return err
	}
	k := kv[0]
	n := int64(r.g.NumVertices())

	r.tracef("sssp: start source=%d ranks=%d delta=%d", r.src, r.size, r.opts.Delta)
	for k < infBucket {
		if r.opts.MaxEpochs > 0 && int(r.stats.Epochs) >= r.opts.MaxEpochs {
			return fmt.Errorf("sssp: exceeded MaxEpochs=%d at bucket %d", r.opts.MaxEpochs, k)
		}
		r.curK = k
		if err := r.processEpoch(k); err != nil {
			return err
		}
		r.stats.Epochs++
		r.epochSeq++

		// Account settled vertices (bucket k's final members) and drop the
		// bucket.
		bktStart := now()
		settledLocal := r.store.countValid(k, r.bucketOf)
		r.store.drop(k)
		r.charge(bktStart, true)
		sv, err := r.allreduce([]int64{settledLocal}, comm.Sum, true)
		if err != nil {
			return err
		}
		r.settledTotal += sv[0]
		if len(r.stats.Buckets) > 0 {
			bs := &r.stats.Buckets[len(r.stats.Buckets)-1]
			bs.Settled = r.settledTotal
			r.tracef("epoch bucket=%d mode=%s shortPhases=%d settled=%d",
				bs.Index, bs.Mode, bs.ShortPhases, bs.Settled)
		}

		if r.opts.Hybrid && float64(r.settledTotal) >= r.opts.tau()*float64(n) {
			r.stats.HybridSwitched = true
			r.tracef("hybrid switch after bucket %d: settled %d/%d", k, r.settledTotal, n)
			if err := r.runBellmanFord(k); err != nil {
				return err
			}
			break
		}

		bktStart = now()
		localNext := r.store.nextNonEmpty(k, r.bucketOf)
		r.charge(bktStart, true)
		nv, err := r.allreduce([]int64{localNext}, comm.Min, true)
		if err != nil {
			return err
		}
		k = nv[0]
	}

	r.finishStats(totalStart)
	r.tracef("done epochs=%d phases=%d bfPhases=%d reached=%d relax=%d",
		r.stats.Epochs, r.stats.Phases, r.stats.BFPhases, r.stats.Reached,
		r.stats.Relax.Total())
	return nil
}

// finishStats assembles this rank's Stats.
func (r *rankEngine) finishStats(totalStart time.Time) {
	r.stats.Relax = r.relaxTotals()
	r.stats.BktTime = r.bktTime
	r.stats.OtherTime = r.otherTime
	r.stats.Total = since(totalStart)
	for _, d := range r.dist {
		if d < graph.Inf {
			r.stats.Reached++
		}
	}
	r.stats.MaxRankRelax = r.stats.Relax.Total()
	r.stats.Traffic = r.t.Stats
}

// collectMembers returns the valid members of bucket k (charged to bucket
// overhead, per the paper's BktTime definition).
func (r *rankEngine) collectMembers(k int64) []uint32 {
	start := now()
	defer r.charge(start, true)
	var members []uint32
	for _, li := range r.store.list(k) {
		if r.bucketOf[li] == k {
			members = append(members, li)
		}
	}
	return members
}

// processEpoch settles bucket k: short-edge phases to a fixpoint, then
// the long-edge phase.
func (r *rankEngine) processEpoch(k int64) error {
	bs := BucketStats{Index: k, Mode: ModePush}
	r.active = r.collectMembers(k)

	before := r.relaxTotals()
	for {
		av, err := r.allreduce([]int64{int64(len(r.active))}, comm.Sum, true)
		if err != nil {
			return err
		}
		if av[0] == 0 {
			break
		}
		r.stats.Phases++
		bs.ShortPhases++
		phaseStart := now()
		beforePhase := r.relaxTotals()
		nActive := len(r.active)
		if err := r.shortPhase(k); err != nil {
			return err
		}
		r.logPhase(k, PhaseShort, nActive, beforePhase, phaseStart)
		r.active, r.nextActive = r.nextActive, r.active[:0]
	}
	afterShort := r.relaxTotals()
	bs.ShortRelax = afterShort.Total() - before.Total()

	if r.opts.EdgeClassification && r.opts.Delta != BellmanFordDelta {
		if err := r.longPhase(k, &bs); err != nil {
			return err
		}
	}
	afterLong := r.relaxTotals()
	bs.LongRelax = afterLong.Total() - afterShort.Total()
	r.stats.Buckets = append(r.stats.Buckets, bs)
	return nil
}

// shortPhase relaxes the (inner) short edges of the active vertices and
// applies the resulting updates.
func (r *rankEngine) shortPhase(k int64) error {
	ios := r.opts.IOS
	bEnd := r.bucketEnd(k)
	items := r.buildItems(r.active)
	r.runWorkers(items, func(tid int, it workItem) {
		v := r.global(it.li)
		du := r.dist[it.li]
		nbr, ws := r.g.Neighbors(v)
		end := it.hi
		if se := r.shortEnd[it.li]; end > se {
			end = se
		}
		cnt := &r.tcnt[tid]
		for i := it.lo; i < end; i++ {
			nd := du + graph.Dist(ws[i])
			if ios && nd > bEnd {
				cnt.Skipped++
				continue
			}
			cnt.ShortPush++
			dst := r.pd.Owner(nbr[i])
			r.tbufs[tid][dst] = appendRelax(r.tbufs[tid][dst], nbr[i], v, nd)
		}
	})
	in, err := r.exchange()
	if err != nil {
		return err
	}
	r.applyRelaxIn(in, true, nil)
	return nil
}
