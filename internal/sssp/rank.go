package sssp

import (
	"encoding/binary"
	"fmt"
	"time"

	"parsssp/internal/comm"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
)

// queryState is the query plane of one rank: all per-query mutable state
// of a distributed run, over an immutable shared rankGraph. One
// queryState executes on each rank (a goroutine over memtransport, or a
// process over tcptransport); they advance in lockstep through the
// bulk-synchronous collectives of their transports. Distinct queryStates
// over the same rankGraph are independent — a query pool keeps one per
// slot and runs them concurrently.
type queryState struct {
	*rankGraph // shared, read-only; see plane.go

	t   *comm.Counting
	src graph.Vertex

	dist     []graph.Dist   // tentative distances of local vertices
	parent   []graph.Vertex // tree predecessor of local vertices (NoParent = none)
	bucketOf []int64        // current bucket of local vertices (infBucket = unreached)
	store    bucketStore

	curK       int64
	hybridMode bool

	active     []uint32 // local indices active this phase
	nextActive []uint32
	mark       []int64 // stamp array deduplicating nextActive
	stamp      int64

	// Per-thread outgoing buffers and counters; index [thread][dest].
	// tbufs hold v1-staged records; exchangeRecords either ships them as
	// gathered segments (WireV1) or re-encodes them (WireV2).
	tbufs      [][][]byte
	tcnt       []RelaxCounts
	out        [][]byte   // per-dest encoded buffers of the WireV2 path
	outSegs    [][][]byte // per-dest segment lists of the WireV1 path
	relaxRecs  []relaxRec // decoded-batch scratch of the WireV2 encoder
	sorter     relaxSorter
	members    []uint32 // bucket-member scratch of collectMembers
	requesters []uint32 // requester scratch of the pull phase
	items      []workItem
	scratch    []byte         // copy of self-delivered buffers when re-emitting (pull responses)
	applyStage []applyStaging // per-thread staging for the parallel apply path
	reduceVal  [2]int64       // input scratch of small allreduces

	// Persistent worker pool. Phase scans dispatch to these long-lived
	// goroutines instead of spawning per phase: the per-phase goroutine
	// and closure spawns were the dominant steady-state allocation of the
	// phase loop. workFn/workItems are the current dispatch, published to
	// the workers by the workStart sends and read back at the workDone
	// receives. The worker bodies (shortFn, ...) are built once, lazily,
	// and read their per-phase parameters (phBEnd, phKBase) from the
	// engine instead of capturing them.
	workFn    func(tid int, it workItem)
	workItems []workItem
	workStart []chan struct{}
	workDone  chan struct{}

	phBEnd  graph.Dist // bucket end of the current short/outer-short phase
	phKBase graph.Dist // kΔ of the current pull phase
	phBound graph.Dist // settle threshold M of the current Radius epoch

	shortFn, outerFn, longFn, pullFn, bfFn, asyncShortFn, asyncLongFn,
	radiusFn, rhoFn func(tid int, it workItem)

	// Radius Stepping state (PolicyRadius; see radius.go). Allocated
	// lazily by the first radius run on this state.
	settled []bool // vertex is finalized (dist is its shortest distance)

	// Asynchronous execution scratch (ExecMode async; see async.go).
	// Allocated lazily by the first async run on this state.
	pending       []bool      // vertex is queued for an async short-edge round
	longPending   []bool      // vertex has a deferred async long-edge relax
	longStore     bucketStore // deferred long-edge queue, keyed like store
	asyncStage    [][]byte    // per-dest staged v1 records awaiting a watermark
	asyncStageAt  []time.Time // stage time of each dest's oldest staged record
	asyncFlushBuf []byte      // wire-encoding scratch of async flushes

	settledTotal int64
	epochSeq     int // epoch ordinal (for DecisionSequence)

	stats     Stats
	bktTime   time.Duration
	otherTime time.Duration
}

type workItem struct {
	li     uint32
	lo, hi int32
}

// newQueryState allocates the mutable query plane of one rank over the
// shared graph plane. The transport must belong to the same machine
// shape as the plane (same rank, same size); a query pool calls this
// once per slot, with one independent transport (a memtransport
// sub-group endpoint or a tcptransport channel) per slot.
func newQueryState(plane *rankGraph, t comm.Transport) (*queryState, error) {
	if t.Size() != plane.size {
		return nil, fmt.Errorf("sssp: plane has %d ranks, transport %d", plane.size, t.Size())
	}
	if t.Rank() != plane.rank {
		return nil, fmt.Errorf("sssp: plane is rank %d, transport reports rank %d",
			plane.rank, t.Rank())
	}
	r := &queryState{
		rankGraph: plane,
		t:         comm.NewCounting(t),
	}
	r.dist = newDistArray(r.nLocal)
	r.parent = newParentArray(r.nLocal)
	r.bucketOf = make([]int64, r.nLocal)
	for i := range r.bucketOf {
		r.bucketOf[i] = infBucket
	}
	r.mark = make([]int64, r.nLocal)
	for i := range r.mark {
		r.mark[i] = -1
	}
	r.store = newBucketStore()
	T := r.opts.threads()
	r.tbufs = make([][][]byte, T)
	for i := range r.tbufs {
		r.tbufs[i] = make([][]byte, r.size)
	}
	r.tcnt = make([]RelaxCounts, T)
	r.out = make([][]byte, r.size)
	return r, nil
}

// newRankEngine builds a plane+state pair in one step: the shape used by
// single-query runs (RunRank) and tests, where sharing the plane buys
// nothing.
func newRankEngine(g *graph.Graph, pd partition.Dist, src graph.Vertex,
	opts *Options, t comm.Transport, maxW graph.Weight) (*queryState, error) {
	if pd.NumRanks() != t.Size() {
		return nil, fmt.Errorf("sssp: distribution has %d ranks, transport %d",
			pd.NumRanks(), t.Size())
	}
	if int(src) >= g.NumVertices() {
		return nil, fmt.Errorf("sssp: source %d out of range", src)
	}
	plane, err := newRankGraph(g, pd, t.Rank(), opts, maxW)
	if err != nil {
		return nil, err
	}
	qs, err := newQueryState(plane, t)
	if err != nil {
		return nil, err
	}
	qs.src = src
	return qs, nil
}

// tracef writes an execution-trace line; only rank 0 emits, so the
// writer needs no synchronization.
func (r *queryState) tracef(format string, args ...interface{}) {
	if r.rank != 0 || r.opts.Trace == nil {
		return
	}
	fmt.Fprintf(r.opts.Trace, format+"\n", args...)
}

// ---- timed collectives ----------------------------------------------------

func (r *queryState) allreduce(vals []int64, op comm.ReduceOp, bucketOverhead bool) ([]int64, error) {
	start := now()
	res, err := r.t.AllreduceInt64(vals, op)
	r.charge(start, bucketOverhead)
	return res, err
}

// exchangeRecords runs the superstep's all-to-all over the per-thread
// staging buffers and maintains the record-level traffic counters (the
// transport wrapper cannot see record boundaries, so the engine counts).
//
// WireV1 ships the staging buffers as gathered segments — the transport
// consumes them directly, so the historical per-dest concatenation copy
// (the old mergeBuffers) is gone. WireV2 decodes the staged records,
// sorts relax batches by destination vertex, and re-encodes them
// compactly into pooled per-dest buffers; see msg.go for the codec.
func (r *queryState) exchangeRecords(kind recKind) ([][]byte, error) {
	start := now()
	defer r.charge(start, false)
	wf := r.opts.WireFormat
	var in [][]byte
	var err error
	if wf == WireV1 {
		in, err = r.t.ExchangeV(r.gatherSegs(kind))
	} else {
		r.encodeOut(kind)
		in, err = r.t.Exchange(r.out)
	}
	if err != nil {
		return nil, err
	}
	for src, buf := range in {
		if src == r.rank {
			continue
		}
		r.t.Stats.RecordsReceived += int64(wireRecordCount(buf, kind, wf))
	}
	return in, nil
}

// gatherSegs assembles the per-dest segment lists of the WireV1 path from
// the non-empty staging buffers (thread-major, matching the historical
// concatenation order) and counts the records sent to other ranks.
func (r *queryState) gatherSegs(kind recKind) [][][]byte {
	if r.outSegs == nil {
		r.outSegs = make([][][]byte, r.size)
	}
	recSize := relaxRecordSize
	if kind == requestKind {
		recSize = requestRecordSize
	}
	for dest := 0; dest < r.size; dest++ {
		segs := r.outSegs[dest][:0]
		total := 0
		for tid := range r.tbufs {
			if b := r.tbufs[tid][dest]; len(b) > 0 {
				segs = append(segs, b)
				total += len(b)
			}
		}
		r.outSegs[dest] = segs
		if dest != r.rank {
			r.t.Stats.RecordsSent += int64(total / recSize)
		}
	}
	return r.outSegs
}

// encodeOut re-encodes the staged records into r.out with the v2 codec
// and counts the records sent to other ranks. Relax batches are stably
// sorted by destination vertex for the delta encoding; request batches
// keep emission order (see encodeRequestBatch).
func (r *queryState) encodeOut(kind recKind) {
	for dest := 0; dest < r.size; dest++ {
		buf := r.out[dest][:0]
		var sent int64
		if kind == relaxKind {
			recs := r.relaxRecs[:0]
			for tid := range r.tbufs {
				src := r.tbufs[tid][dest]
				n := numRelaxRecords(src)
				for i := 0; i < n; i++ {
					v, par, d := decodeRelax(src, i)
					recs = append(recs, relaxRec{v, par, d})
				}
			}
			r.relaxRecs = recs
			sortRelaxBatch(&r.sorter, recs)
			buf = encodeRelaxBatch(buf, recs)
			sent = int64(len(recs))
		} else {
			// Requests: count first (the batch header), then encode the
			// staged buffers in thread-major order, unsorted.
			total := 0
			for tid := range r.tbufs {
				total += numRequestRecords(r.tbufs[tid][dest])
			}
			buf = binary.AppendUvarint(buf, uint64(total))
			for tid := range r.tbufs {
				src := r.tbufs[tid][dest]
				n := numRequestRecords(src)
				for i := 0; i < n; i++ {
					u, v, w := decodeRequest(src, i)
					buf = binary.AppendUvarint(buf, uint64(u))
					buf = binary.AppendUvarint(buf, uint64(v))
					buf = binary.AppendUvarint(buf, uint64(w))
				}
			}
			sent = int64(total)
		}
		r.out[dest] = buf
		if dest != r.rank {
			r.t.Stats.RecordsSent += sent
		}
	}
}

func (r *queryState) charge(start time.Time, bucketOverhead bool) {
	d := since(start)
	if bucketOverhead {
		r.bktTime += d
	} else {
		r.otherTime += d
	}
}

// ---- parallel scans --------------------------------------------------------

// buildItems converts a vertex list into work items, chunking the edge
// lists of heavy vertices when thread-level load balancing is enabled
// (the paper's intra-node strategy: the owner thread does not relax all
// edges of a heavy vertex by itself).
func (r *queryState) buildItems(verts []uint32) []workItem {
	items := r.items[:0]
	if r.opts.LoadBalance && r.opts.threads() > 1 {
		pi := int32(r.opts.heavyThreshold())
		for _, li := range verts {
			deg := int32(r.g.Degree(r.global(li)))
			if deg > pi {
				for lo := int32(0); lo < deg; lo += pi {
					hi := lo + pi
					if hi > deg {
						hi = deg
					}
					items = append(items, workItem{li, lo, hi})
				}
			} else {
				items = append(items, workItem{li, 0, deg})
			}
		}
	} else {
		for _, li := range verts {
			deg := int32(r.g.Degree(r.global(li)))
			items = append(items, workItem{li, 0, deg})
		}
	}
	r.items = items
	return items
}

// runWorkers executes fn over items with the rank's thread pool. fn must
// only touch thread-local buffers (tbufs[tid], tcnt[tid]).
//
// Batches are assigned statically and cyclically: batch b belongs to
// thread b mod T. The item→thread mapping is therefore a pure function
// of the item list, which makes the per-thread emission buffers — and
// with them the entire wire stream and the first-wins parent election —
// reproducible run to run. Cyclic interleaving keeps the load spread
// when cost varies smoothly along the item list; genuinely heavy
// vertices are split across batches by buildItems when LoadBalance is
// on.
func (r *queryState) runWorkers(items []workItem, fn func(tid int, it workItem)) {
	start := now()
	defer r.charge(start, false)
	T := r.opts.threads()
	for tid := 0; tid < T; tid++ {
		for dest := range r.tbufs[tid] {
			r.tbufs[tid][dest] = r.tbufs[tid][dest][:0]
		}
	}
	if T == 1 || len(items) == 0 {
		for _, it := range items {
			fn(0, it)
		}
		return
	}
	if r.workStart == nil {
		r.workStart = make([]chan struct{}, T)
		r.workDone = make(chan struct{}, T)
		for tid := 0; tid < T; tid++ {
			r.workStart[tid] = make(chan struct{}, 1)
			go r.poolWorker(tid, T)
		}
	}
	r.workFn, r.workItems = fn, items
	for tid := 0; tid < T; tid++ {
		r.workStart[tid] <- struct{}{}
	}
	for tid := 0; tid < T; tid++ {
		<-r.workDone
	}
	r.workFn, r.workItems = nil, nil
}

// poolWorker is the body of one pooled worker goroutine. Each workStart
// send publishes workFn/workItems (the channel handshake orders those
// writes before the reads here, and the workDone sends order the scan's
// results before the dispatcher continues). Workers exit when stopWorkers
// closes their start channel.
func (r *queryState) poolWorker(tid, T int) {
	const batch = 16
	for range r.workStart[tid] {
		items, fn := r.workItems, r.workFn
		for base := tid * batch; base < len(items); base += T * batch {
			end := base + batch
			if end > len(items) {
				end = len(items)
			}
			for j := base; j < end; j++ {
				fn(tid, items[j])
			}
		}
		r.workDone <- struct{}{}
	}
}

// stopWorkers shuts down the pooled worker goroutines (if any were ever
// started). The engine must be idle: no runWorkers dispatch in flight.
// Safe to call more than once; runWorkers would lazily restart the pool
// if the engine were used again.
func (r *queryState) stopWorkers() {
	for _, ch := range r.workStart {
		close(ch)
	}
	r.workStart = nil
	r.workDone = nil
}

// relaxTotals sums the per-thread relaxation counters.
func (r *queryState) relaxTotals() RelaxCounts {
	var sum RelaxCounts
	for i := range r.tcnt {
		sum.Add(r.tcnt[i])
	}
	return sum
}

// ---- record application ----------------------------------------------------

// applyRelaxIn applies every relax record in the received buffers.
// activate controls whether improved vertices landing in the current
// bucket join the next phase's active set (short phases) — long-phase
// results can never land in the current bucket and pass false. census, if
// non-nil, receives the self/backward/forward categorization of each
// record relative to bucket k.
//
// Parent election is canonical: a strict distance improvement takes the
// sender as parent, and a positive-weight record matching the current
// distance takes the sender if its id is smaller than the incumbent's.
// For graphs with strictly positive weights the final parent of v is
// therefore min{u : d(u)+w(u,v) = d(v), u offered} — a pure function of
// the final distances and the offered candidate set, independent of the
// schedule that delivered the offers. That is what lets an incremental
// repair (dynamic.go), which re-relaxes only the affected subgraph in a
// completely different phase order, reproduce a from-scratch run's
// parent tree byte for byte. Zero-weight offers are excluded from the
// equal-distance election (the wire tags them — see tagParent): inside a
// cluster of equal-distance vertices joined by zero-weight edges, a
// pointwise min-id election can elect parents that form a cycle. They
// still win on strict improvement, first-wins, so zero-weight-tie
// parents stay schedule-dependent — a valid tree always, byte-equal to
// a recompute only when no zero-weight tie is involved.
//
// The tree stays acyclic in all cases: an equality reassignment needs
// positive weight, so it points strictly downhill in distance, and a
// cycle would need every hop distance-flat — all zero-weight strict
// assignments, whose settle-time ordering already forbids a cycle. See
// DESIGN.md "Wire format v2" and "Dynamic updates & plane versioning".
//
// With ParallelApply enabled (and no census, which needs exact serial
// counting), application runs on the rank's thread pool using the
// paper's intra-node ownership model: local vertex li belongs to thread
// li mod T, every thread scans all records but applies only its own
// vertices, so per-vertex state is written without locks — the role the
// L2 atomics played on Blue Gene/Q.
//
// Damaged input is an error, not a panic and not data loss: a record
// addressing a vertex this rank does not own, or a buffer the readers
// flag as malformed, fails the query (the sender cannot have produced
// it, so the frame was damaged in flight). Distances already applied
// from the buffer's valid prefix are left in place — the query is failed
// wholesale, nothing reads them.
func (r *queryState) applyRelaxIn(in [][]byte, activate bool, census *BucketStats) error {
	start := now()
	defer r.charge(start, false)
	r.stamp++
	wf := r.opts.WireFormat
	if T := r.opts.threads(); r.opts.ParallelApply && census == nil && T > 1 &&
		totalWireRecords(in, relaxKind, wf) >= parallelApplyThreshold {
		return r.applyRelaxParallel(in, activate, T)
	}
	k := r.curK
	for src, buf := range in {
		rd := newRelaxReader(buf, wf)
		for {
			v, tpar, nd, ok := rd.next()
			if !ok {
				break
			}
			par, zw := untagParent(tpar)
			li := r.local(v)
			if uint(li) >= uint(r.nLocal) {
				return r.corruptErr(src, "relax", fmt.Errorf("vertex %d is not owned by this rank", v))
			}
			if census != nil {
				switch b := r.bucketOf[li]; {
				case b == k:
					census.SelfEdges++
				case b < k:
					census.BackwardEdges++
				default:
					census.ForwardEdges++
				}
			}
			if nd >= r.dist[li] {
				// Positive-weight equal-distance offers still compete for
				// the parent slot (canonical min-id election); they never
				// move the vertex.
				if nd == r.dist[li] && nd < graph.Inf && !zw && par < r.parent[li] && v != r.src {
					r.parent[li] = par
				}
				continue
			}
			r.dist[li] = nd
			r.parent[li] = par
			if r.hybridMode {
				if r.mark[li] != r.stamp {
					r.mark[li] = r.stamp
					r.nextActive = append(r.nextActive, uint32(li))
				}
				continue
			}
			// Policy bookkeeping: how an improved vertex re-enters the
			// frontier. Δ-stepping re-files by bucket and activates
			// current-bucket landings; Radius activates anything under the
			// epoch threshold (no store); ρ re-files by quantized key under
			// the async mode's re-entrant pending discipline.
			switch r.opts.Policy {
			case PolicyRadius:
				if activate && nd <= r.phBound && r.mark[li] != r.stamp {
					r.mark[li] = r.stamp
					r.nextActive = append(r.nextActive, uint32(li))
				}
			case PolicyRho:
				nb := r.step.key(nd)
				moved := nb != r.bucketOf[li]
				r.bucketOf[li] = nb
				if !r.pending[li] {
					r.pending[li] = true
					r.store.add(nb, uint32(li))
				} else if moved {
					r.store.add(nb, uint32(li))
				}
			default:
				nb := nd / r.dd
				if nb != r.bucketOf[li] {
					r.bucketOf[li] = nb
					r.store.add(nb, uint32(li))
				}
				if activate && nb == k && r.mark[li] != r.stamp {
					r.mark[li] = r.stamp
					r.nextActive = append(r.nextActive, uint32(li))
				}
			}
		}
		if err := rd.err(); err != nil {
			return r.corruptErr(src, "relax", err)
		}
	}
	return nil
}

// corruptErr builds the query-failing error for a damaged exchange
// payload from rank src.
func (r *queryState) corruptErr(src int, kind string, cause error) error {
	return fmt.Errorf("sssp: rank %d: corrupt %s payload from rank %d: %w", r.rank, kind, src, cause)
}

// ---- main loop ---------------------------------------------------------

// run executes the full query on this rank and leaves per-rank results in
// r.dist / r.stats.
func (r *queryState) run() error {
	if r.opts.ExecMode == ExecAsync {
		return r.runAsync()
	}
	switch r.opts.Policy {
	case PolicyRadius:
		return r.runRadius()
	case PolicyRho:
		return r.runRho()
	}
	totalStart := now()
	localMin := int64(infBucket)
	if r.pd.Owner(r.src) == r.rank {
		li := uint32(r.local(r.src))
		r.dist[li] = 0
		r.parent[li] = r.src
		r.bucketOf[li] = 0
		r.store.add(0, li)
		localMin = 0
	}
	r.reduceVal[0] = localMin
	kv, err := r.allreduce(r.reduceVal[:1], comm.Min, true)
	if err != nil {
		return err
	}
	k := kv[0]
	n := int64(r.g.NumVertices())

	r.tracef("sssp: start source=%d ranks=%d delta=%d", r.src, r.size, r.opts.Delta)
	for k < infBucket {
		if r.opts.MaxEpochs > 0 && int(r.stats.Epochs) >= r.opts.MaxEpochs {
			return fmt.Errorf("sssp: exceeded MaxEpochs=%d at bucket %d", r.opts.MaxEpochs, k)
		}
		r.curK = k
		if err := r.processEpoch(k); err != nil {
			return err
		}
		r.stats.Epochs++
		r.epochSeq++

		// Account settled vertices (bucket k's final members) and drop the
		// bucket.
		bktStart := now()
		settledLocal := r.store.countValid(k, r.bucketOf)
		r.store.drop(k)
		r.charge(bktStart, true)
		r.reduceVal[0] = settledLocal
		sv, err := r.allreduce(r.reduceVal[:1], comm.Sum, true)
		if err != nil {
			return err
		}
		r.settledTotal += sv[0]
		if len(r.stats.Buckets) > 0 {
			bs := &r.stats.Buckets[len(r.stats.Buckets)-1]
			bs.Settled = r.settledTotal
			r.tracef("epoch bucket=%d mode=%s shortPhases=%d settled=%d",
				bs.Index, bs.Mode, bs.ShortPhases, bs.Settled)
		}

		if r.opts.Hybrid && float64(r.settledTotal) >= r.opts.tau()*float64(n) {
			r.stats.HybridSwitched = true
			r.tracef("hybrid switch after bucket %d: settled %d/%d", k, r.settledTotal, n)
			if err := r.runBellmanFord(k); err != nil {
				return err
			}
			break
		}

		bktStart = now()
		localNext := r.store.nextNonEmpty(k, r.bucketOf)
		r.charge(bktStart, true)
		r.reduceVal[0] = localNext
		nv, err := r.allreduce(r.reduceVal[:1], comm.Min, true)
		if err != nil {
			return err
		}
		k = nv[0]
	}

	r.finishStats(totalStart)
	r.tracef("done epochs=%d phases=%d bfPhases=%d reached=%d relax=%d",
		r.stats.Epochs, r.stats.Phases, r.stats.BFPhases, r.stats.Reached,
		r.stats.Relax.Total())
	return nil
}

// finishStats assembles this rank's Stats.
func (r *queryState) finishStats(totalStart time.Time) {
	r.stats.Relax = r.relaxTotals()
	r.stats.BktTime = r.bktTime
	r.stats.OtherTime = r.otherTime
	r.stats.Total = since(totalStart)
	for _, d := range r.dist {
		if d < graph.Inf {
			r.stats.Reached++
		}
	}
	r.stats.MaxRankRelax = r.stats.Relax.Total()
	r.stats.Traffic = r.t.Stats
}

// collectMembers returns the valid members of bucket k (charged to bucket
// overhead, per the paper's BktTime definition). The result aliases a
// rank-owned scratch slice, invalidated by the next collectMembers call;
// callers that keep it across epochs must copy.
func (r *queryState) collectMembers(k int64) []uint32 {
	start := now()
	defer r.charge(start, true)
	members := r.members[:0]
	for _, li := range r.store.list(k) {
		if r.bucketOf[li] == k {
			members = append(members, li)
		}
	}
	r.members = members
	return members
}

// processEpoch settles bucket k: short-edge phases to a fixpoint, then
// the long-edge phase.
func (r *queryState) processEpoch(k int64) error {
	bs := BucketStats{Index: k, Mode: ModePush}
	// Copy out of the shared scratch: r.active survives into the phase
	// loop's swap chain, and longPhase calls collectMembers again.
	r.active = append(r.active[:0], r.collectMembers(k)...)

	before := r.relaxTotals()
	for {
		r.reduceVal[0] = int64(len(r.active))
		av, err := r.allreduce(r.reduceVal[:1], comm.Sum, true)
		if err != nil {
			return err
		}
		if av[0] == 0 {
			break
		}
		r.stats.Phases++
		bs.ShortPhases++
		phaseStart := now()
		beforePhase := r.relaxTotals()
		nActive := len(r.active)
		if err := r.shortPhase(k); err != nil {
			return err
		}
		r.logPhase(k, PhaseShort, nActive, beforePhase, phaseStart)
		r.active, r.nextActive = r.nextActive, r.active[:0]
	}
	afterShort := r.relaxTotals()
	bs.ShortRelax = afterShort.Total() - before.Total()

	if r.opts.EdgeClassification && !r.step.unbounded() {
		if err := r.longPhase(k, &bs); err != nil {
			return err
		}
	}
	afterLong := r.relaxTotals()
	bs.LongRelax = afterLong.Total() - afterShort.Total()
	r.stats.Buckets = append(r.stats.Buckets, bs)
	return nil
}

// shortPhase relaxes the (inner) short edges of the active vertices and
// applies the resulting updates.
func (r *queryState) shortPhase(k int64) error {
	r.phBEnd = r.bucketEnd(k)
	if r.shortFn == nil {
		// Built once per engine; reads the phase bound from r.phBEnd so the
		// same closure serves every phase without a per-phase allocation.
		ios := r.opts.IOS
		r.shortFn = func(tid int, it workItem) {
			v := r.global(it.li)
			du := r.dist[it.li]
			nbr, ws := r.g.Neighbors(v)
			end := it.hi
			if se := r.shortEnd[it.li]; end > se {
				end = se
			}
			cnt := &r.tcnt[tid]
			for i := it.lo; i < end; i++ {
				nd := du + graph.Dist(ws[i])
				if ios && nd > r.phBEnd {
					cnt.Skipped++
					continue
				}
				cnt.ShortPush++
				dst := r.pd.Owner(nbr[i])
				r.tbufs[tid][dst] = appendRelax(r.tbufs[tid][dst], nbr[i], tagParent(v, ws[i]), nd)
			}
		}
	}
	items := r.buildItems(r.active)
	r.runWorkers(items, r.shortFn)
	in, err := r.exchangeRecords(relaxKind)
	if err != nil {
		return err
	}
	return r.applyRelaxIn(in, true, nil)
}
