package sssp

import (
	"fmt"

	"parsssp/internal/graph"
)

// PathTo reconstructs the shortest path from the source to v by walking
// the parent pointers of a completed run. The returned slice starts at
// the source and ends at v. It returns nil (and no error) when v is
// unreachable, and an error when the parent structure is corrupt (a
// cycle or an out-of-range pointer).
func PathTo(parent []graph.Vertex, v graph.Vertex) ([]graph.Vertex, error) {
	n := len(parent)
	if int(v) >= n {
		return nil, fmt.Errorf("sssp: vertex %d out of range for %d parents", v, n)
	}
	if parent[v] == NoParent {
		return nil, nil
	}
	var rev []graph.Vertex
	cur := v
	for steps := 0; ; steps++ {
		if steps > n {
			return nil, fmt.Errorf("sssp: parent cycle while tracing path to %d", v)
		}
		rev = append(rev, cur)
		p := parent[cur]
		if p == NoParent || int(p) >= n {
			return nil, fmt.Errorf("sssp: broken parent chain at vertex %d", cur)
		}
		if p == cur {
			break // reached the source (its own parent)
		}
		cur = p
	}
	// Reverse into source-first order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// PathLength sums the weights along a path in g, verifying that each hop
// is a real edge. It is the cross-check companion of PathTo: for a
// correct run, PathLength(g, PathTo(parent, v)) == dist[v].
func PathLength(g *graph.Graph, path []graph.Vertex) (graph.Dist, error) {
	if len(path) == 0 {
		return 0, nil
	}
	var total graph.Dist
	for i := 1; i < len(path); i++ {
		u, v := path[i-1], path[i]
		w, ok := edgeWeight(g, u, v)
		if !ok {
			return 0, fmt.Errorf("sssp: path step (%d,%d) is not an edge", u, v)
		}
		total += graph.Dist(w)
	}
	return total, nil
}

// edgeWeight returns the minimum weight of an edge (u,v), if present.
// The adjacency is weight-sorted, so the first match is the minimum.
func edgeWeight(g *graph.Graph, u, v graph.Vertex) (graph.Weight, bool) {
	nbr, ws := g.Neighbors(u)
	for i, x := range nbr {
		if x == v {
			return ws[i], true
		}
	}
	return 0, false
}
