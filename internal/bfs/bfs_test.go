package bfs

import (
	"fmt"
	"testing"

	"parsssp/internal/gen"
	"parsssp/internal/graph"
	"parsssp/internal/rmat"
)

// checkAgainstSequential compares the distributed BFS with the
// sequential reference in package graph.
func checkAgainstSequential(t *testing.T, g *graph.Graph, src graph.Vertex,
	ranks int, opts Options) *Result {
	t.Helper()
	res, err := Run(g, ranks, src, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := g.BFS(src)
	for v := range want.Hops {
		if res.Hops[v] != want.Hops[v] {
			t.Fatalf("hops[%d] = %d, want %d (ranks=%d opts=%+v)",
				v, res.Hops[v], want.Hops[v], ranks, opts)
		}
	}
	if res.Reached != int64(want.Reached) {
		t.Fatalf("Reached = %d, want %d", res.Reached, want.Reached)
	}
	// Parent consistency: every reached non-source vertex has a parent
	// one level above connected by a real edge.
	for v := range res.Hops {
		if res.Hops[v] < 0 {
			if res.Parent[v] != NoParent {
				t.Fatalf("unreached vertex %d has parent %d", v, res.Parent[v])
			}
			continue
		}
		if graph.Vertex(v) == src {
			if res.Parent[v] != src {
				t.Fatalf("source parent = %d", res.Parent[v])
			}
			continue
		}
		p := res.Parent[v]
		if res.Hops[p] != res.Hops[v]-1 {
			t.Fatalf("parent of %d at level %d, vertex at %d", v, res.Hops[p], res.Hops[v])
		}
		nbr, _ := g.Neighbors(graph.Vertex(v))
		found := false
		for _, u := range nbr {
			if u == p {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("parent edge (%d,%d) does not exist", p, v)
		}
	}
	return res
}

func TestBFSPathGraph(t *testing.T) {
	g, err := gen.Path([]graph.Weight{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 4} {
		checkAgainstSequential(t, g, 0, ranks, Options{})
	}
}

func TestBFSGrid(t *testing.T) {
	g, err := gen.Grid(20, 20, 1, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstSequential(t, g, 0, 3, Options{})
	checkAgainstSequential(t, g, 0, 3, Options{ForceTopDown: true})
}

func TestBFSRMATWithDirectionSwitch(t *testing.T) {
	g, err := rmat.Generate(rmat.Family1(11, 9))
	if err != nil {
		t.Fatal(err)
	}
	var src graph.Vertex
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(graph.Vertex(v)) > 8 {
			src = graph.Vertex(v)
			break
		}
	}
	res := checkAgainstSequential(t, g, src, 4, Options{})
	if res.BottomUpLevels == 0 {
		t.Error("direction optimization never switched to bottom-up on a skewed graph")
	}
	topDown := checkAgainstSequential(t, g, src, 4, Options{ForceTopDown: true})
	if topDown.BottomUpLevels != 0 {
		t.Error("ForceTopDown executed bottom-up levels")
	}
	// Direction optimization must inspect fewer edges (that is its whole
	// point on skewed graphs).
	if res.EdgesInspected >= topDown.EdgesInspected {
		t.Errorf("direction-optimized BFS inspected %d edges, top-down %d",
			res.EdgesInspected, topDown.EdgesInspected)
	}
}

func TestBFSDisconnected(t *testing.T) {
	g, err := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 3, V: 4, W: 1},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := checkAgainstSequential(t, g, 0, 2, Options{})
	if res.Reached != 3 {
		t.Errorf("Reached = %d, want 3", res.Reached)
	}
}

func TestBFSSourceValidation(t *testing.T) {
	g, err := gen.Path([]graph.Weight{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, 1, 9, Options{}); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestBFSManyConfigs(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		g, err := gen.Random(300, 1800, 50, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, ranks := range []int{1, 3, 5} {
			t.Run(fmt.Sprintf("seed=%d/ranks=%d", seed, ranks), func(t *testing.T) {
				checkAgainstSequential(t, g, 0, ranks, Options{})
			})
		}
	}
}
