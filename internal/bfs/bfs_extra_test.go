package bfs

import (
	"net"
	"sync"
	"testing"
	"time"

	"parsssp/internal/comm/memtransport"
	"parsssp/internal/comm/tcptransport"
	"parsssp/internal/gen"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
	"parsssp/internal/rmat"
)

func TestBFSCyclicDistribution(t *testing.T) {
	g, err := gen.Random(300, 1500, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	pd := partition.MustNew(partition.Cyclic, g.NumVertices(), 4)
	group, err := memtransport.New(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWithTransports(g, pd, 0, Options{}, group.Endpoints())
	if err != nil {
		t.Fatal(err)
	}
	want := g.BFS(0)
	for v := range want.Hops {
		if res.Hops[v] != want.Hops[v] {
			t.Fatalf("cyclic: hops[%d] = %d, want %d", v, res.Hops[v], want.Hops[v])
		}
	}
}

func TestBFSOverTCP(t *testing.T) {
	const ranks = 2
	g, err := rmat.Generate(rmat.Family1(10, 3))
	if err != nil {
		t.Fatal(err)
	}
	var src graph.Vertex
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(graph.Vertex(v)) > 4 {
			src = graph.Vertex(v)
			break
		}
	}
	addrs := make([]string, ranks)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	pd := partition.MustNew(partition.Block, g.NumVertices(), ranks)

	engines := make([]*rankBFS, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := tcptransport.New(tcptransport.Config{
				Addrs: addrs, Rank: r, DialTimeout: 10 * time.Second,
			})
			if err != nil {
				errs[r] = err
				return
			}
			defer tr.Close()
			e := newRankBFS(g, pd, src, Options{}, tr)
			errs[r] = e.run()
			engines[r] = e
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	want := g.BFS(src)
	for r, e := range engines {
		for li := 0; li < e.nLocal; li++ {
			v := pd.Global(r, li)
			if e.hops[li] != want.Hops[v] {
				t.Fatalf("TCP BFS: hops[%d] = %d, want %d", v, e.hops[li], want.Hops[v])
			}
		}
	}
}

func TestBFSAlphaBetaExtremes(t *testing.T) {
	g, err := rmat.Generate(rmat.Family1(10, 7))
	if err != nil {
		t.Fatal(err)
	}
	// Alpha=1 forces bottom-up almost immediately; Beta=1 switches back
	// as soon as the frontier dips below n. Correctness must hold at the
	// extremes.
	for _, opts := range []Options{
		{Alpha: 1, Beta: 1},
		{Alpha: 1000000, Beta: 1000000},
	} {
		checkAgainstSequential(t, g, 0, 3, opts)
	}
}
