package bfs

import (
	"encoding/binary"

	"parsssp/internal/graph"
)

// Top-down records are (v, parent) pairs: "v is reachable at the current
// depth via parent".
const recordSize = 8

func appendVisit(buf []byte, v, parent graph.Vertex) []byte {
	var rec [recordSize]byte
	binary.LittleEndian.PutUint32(rec[0:4], v)
	binary.LittleEndian.PutUint32(rec[4:8], parent)
	return append(buf, rec[:]...)
}

func decodeVisit(buf []byte, i int) (v, parent graph.Vertex) {
	off := i * recordSize
	return binary.LittleEndian.Uint32(buf[off : off+4]),
		binary.LittleEndian.Uint32(buf[off+4 : off+8])
}

// topDownStep expands the frontier by pushing adjacency.
func (e *rankBFS) topDownStep(depth int32) error {
	for dst := range e.out {
		e.out[dst] = e.out[dst][:0]
	}
	for _, li := range e.frontier {
		v := e.global(li)
		nbr, _ := e.g.Neighbors(v)
		e.edgesInspected += int64(len(nbr))
		for _, u := range nbr {
			dst := e.pd.Owner(u)
			e.out[dst] = appendVisit(e.out[dst], u, v)
		}
	}
	in, err := e.t.Exchange(e.out)
	if err != nil {
		return err
	}
	for _, buf := range in {
		n := len(buf) / recordSize
		for i := 0; i < n; i++ {
			v, parent := decodeVisit(buf, i)
			li := e.pd.LocalIndex(v)
			if e.hops[li] >= 0 {
				continue
			}
			e.hops[li] = depth
			e.parent[li] = parent
			e.next = append(e.next, uint32(li))
			e.reached++
		}
	}
	return nil
}

// bottomUpStep has every unvisited vertex look for a parent in the
// frontier. The frontier and visited sets are shared as allgathered
// bitmaps.
func (e *rankBFS) bottomUpStep(depth int32) error {
	if err := e.gatherBitmaps(); err != nil {
		return err
	}
	for li := 0; li < e.nLocal; li++ {
		if e.hops[li] >= 0 {
			continue
		}
		v := e.global(uint32(li))
		nbr, _ := e.g.Neighbors(v)
		scanned := len(nbr)
		for i, u := range nbr {
			if testBit(e.frontierBits, u) {
				scanned = i + 1
				e.hops[li] = depth
				e.parent[li] = u
				e.next = append(e.next, uint32(li))
				e.reached++
				break
			}
		}
		e.edgesInspected += int64(scanned)
	}
	return nil
}

// gatherBitmaps builds the global frontier bitmap from every rank's
// local frontier via an allgather-style exchange of packed local bits.
func (e *rankBFS) gatherBitmaps() error {
	n := e.g.NumVertices()
	if e.frontierBits == nil {
		e.frontierBits = make([]byte, (n+7)/8)
	} else {
		for i := range e.frontierBits {
			e.frontierBits[i] = 0
		}
	}
	// Pack local frontier membership (one bit per local index). The
	// bitmap goes to every rank through a dedicated buffer slice: e.out
	// must never hold multiple aliases of one array, or a later top-down
	// step would interleave records from different destinations in the
	// shared backing storage.
	local := make([]byte, (e.nLocal+7)/8)
	for _, li := range e.frontier {
		local[li/8] |= 1 << (li % 8)
	}
	if e.bitOut == nil {
		e.bitOut = make([][]byte, e.size)
	}
	for dst := range e.bitOut {
		e.bitOut[dst] = local
	}
	in, err := e.t.Exchange(e.bitOut)
	if err != nil {
		return err
	}
	for r, buf := range in {
		count := e.pd.Count(r)
		for li := 0; li < count; li++ {
			if buf[li/8]&(1<<(li%8)) != 0 {
				setBit(e.frontierBits, e.pd.Global(r, li))
			}
		}
	}
	return nil
}

func setBit(bits []byte, v graph.Vertex)       { bits[v/8] |= 1 << (v % 8) }
func testBit(bits []byte, v graph.Vertex) bool { return bits[v/8]&(1<<(v%8)) != 0 }
