// Package bfs implements distributed breadth-first search with
// direction optimization (Beamer et al., the technique the paper's
// pruning heuristic generalizes to weighted graphs).
//
// The paper's Figure 1 positions its SSSP rates against Graph500 BFS
// rates and observes that "SSSP is only two to five times slower than
// BFS on the same machine configuration". This package provides the BFS
// side of that comparison over the same substrate — the same CSR graphs,
// vertex distributions and comm.Transport collectives as the SSSP
// engine — so the ratio can be measured like-for-like (experiment
// `bfscompare`).
//
// The traversal is level-synchronous with two interchangeable step
// kinds:
//
//   - top-down: frontier vertices push their adjacency; one relax-style
//     record per edge out of the frontier.
//   - bottom-up: every unvisited vertex scans its adjacency for a parent
//     in the current frontier and claims the first hit. The frontier
//     must be globally visible, so the step works on an allgathered
//     frontier bitmap (n/8 bytes broadcast per level while bottom-up is
//     active).
//
// The direction heuristic follows Beamer: switch to bottom-up when the
// frontier's outgoing edge count exceeds the unexplored edge count
// divided by Alpha, and back to top-down when the frontier shrinks below
// NumVertices/Beta.
package bfs

import (
	"fmt"
	"sync"

	"parsssp/internal/comm"
	"parsssp/internal/comm/memtransport"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
)

// Options tunes the direction-optimization heuristic.
type Options struct {
	// Alpha is the top-down→bottom-up switch ratio; zero means 14 (the
	// published default).
	Alpha int
	// Beta is the bottom-up→top-down switch divisor; zero means 24.
	Beta int
	// ForceTopDown disables bottom-up steps (classic BFS).
	ForceTopDown bool
}

func (o Options) alpha() int {
	if o.Alpha == 0 {
		return 14
	}
	return o.Alpha
}

func (o Options) beta() int {
	if o.Beta == 0 {
		return 24
	}
	return o.Beta
}

// Result is a completed distributed BFS.
type Result struct {
	// Hops[v] is the level of v, or -1 if unreachable.
	Hops []int32
	// Parent[v] is v's BFS-tree predecessor (source is its own parent,
	// unreachable vertices get NoParent).
	Parent []graph.Vertex
	// Levels is the number of frontier expansions.
	Levels int
	// BottomUpLevels counts levels executed in the bottom-up direction.
	BottomUpLevels int
	// EdgesInspected counts adjacency entries examined (the BFS analogue
	// of relaxations).
	EdgesInspected int64
	// Reached is the number of vertices with finite level.
	Reached int64
}

// NoParent marks vertices without a BFS-tree predecessor.
const NoParent = ^graph.Vertex(0)

// Run executes a distributed BFS from src on an in-process machine with
// numRanks ranks.
func Run(g *graph.Graph, numRanks int, src graph.Vertex, opts Options) (*Result, error) {
	pd, err := partition.New(partition.Block, g.NumVertices(), numRanks)
	if err != nil {
		return nil, err
	}
	group, err := memtransport.New(numRanks)
	if err != nil {
		return nil, err
	}
	return RunWithTransports(g, pd, src, opts, group.Endpoints())
}

// RunWithTransports executes a distributed BFS over caller-provided
// transports and assembles the global result.
func RunWithTransports(g *graph.Graph, pd partition.Dist, src graph.Vertex,
	opts Options, transports []comm.Transport) (*Result, error) {
	if int(src) >= g.NumVertices() {
		return nil, fmt.Errorf("bfs: source %d out of range", src)
	}
	if len(transports) != pd.NumRanks() {
		return nil, fmt.Errorf("bfs: %d transports for %d ranks", len(transports), pd.NumRanks())
	}
	engines := make([]*rankBFS, len(transports))
	errs := make([]error, len(transports))
	var wg sync.WaitGroup
	for i, t := range transports {
		wg.Add(1)
		go func(i int, t comm.Transport) {
			defer wg.Done()
			e := newRankBFS(g, pd, src, opts, t)
			errs[i] = e.run()
			engines[i] = e
		}(i, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Hops:   make([]int32, g.NumVertices()),
		Parent: make([]graph.Vertex, g.NumVertices()),
	}
	for _, e := range engines {
		for li := 0; li < e.nLocal; li++ {
			v := pd.Global(e.rank, li)
			res.Hops[v] = e.hops[li]
			res.Parent[v] = e.parent[li]
		}
		res.EdgesInspected += e.edgesInspected
		res.Reached += e.reached
	}
	res.Levels = engines[0].levels
	res.BottomUpLevels = engines[0].bottomUpLevels
	return res, nil
}

// rankBFS is the per-rank state.
type rankBFS struct {
	g    *graph.Graph
	pd   partition.Dist
	opts Options
	t    comm.Transport
	rank int
	size int
	src  graph.Vertex

	nLocal   int
	hops     []int32
	parent   []graph.Vertex
	frontier []uint32 // local indices in the current frontier
	next     []uint32

	// bitmap state for bottom-up steps: the global frontier, one bit per
	// vertex.
	frontierBits []byte

	out    [][]byte
	bitOut [][]byte // dedicated buffers for frontier-bitmap allgathers

	levels         int
	bottomUpLevels int
	edgesInspected int64
	reached        int64

	// unexploredEdges approximates the remaining work for the direction
	// heuristic (local count, allreduced on use).
	unexploredLocal int64
}

func newRankBFS(g *graph.Graph, pd partition.Dist, src graph.Vertex,
	opts Options, t comm.Transport) *rankBFS {
	e := &rankBFS{
		g: g, pd: pd, opts: opts, t: t,
		rank: t.Rank(), size: t.Size(), src: src,
	}
	e.nLocal = pd.Count(e.rank)
	e.hops = make([]int32, e.nLocal)
	e.parent = make([]graph.Vertex, e.nLocal)
	for i := range e.hops {
		e.hops[i] = -1
		e.parent[i] = NoParent
	}
	e.out = make([][]byte, e.size)
	for li := 0; li < e.nLocal; li++ {
		e.unexploredLocal += int64(g.Degree(pd.Global(e.rank, li)))
	}
	return e
}

func (e *rankBFS) global(li uint32) graph.Vertex {
	return e.pd.Global(e.rank, int(li))
}

// run executes the level loop.
func (e *rankBFS) run() error {
	if e.pd.Owner(e.src) == e.rank {
		li := uint32(e.pd.LocalIndex(e.src))
		e.hops[li] = 0
		e.parent[li] = e.src
		e.frontier = append(e.frontier, li)
		e.reached = 1
		e.unexploredLocal -= int64(e.g.Degree(e.src))
	}
	bottomUp := false
	for depth := int32(1); ; depth++ {
		// Direction decision needs the global frontier size and its
		// outgoing edge count.
		var frontEdges int64
		for _, li := range e.frontier {
			frontEdges += int64(e.g.Degree(e.global(li)))
		}
		sums, err := e.t.AllreduceInt64(
			[]int64{int64(len(e.frontier)), frontEdges, e.unexploredLocal}, comm.Sum)
		if err != nil {
			return err
		}
		frontSize, frontEdgeTotal, unexplored := sums[0], sums[1], sums[2]
		if frontSize == 0 {
			return nil
		}
		e.levels++
		if !e.opts.ForceTopDown {
			if !bottomUp && frontEdgeTotal > unexplored/int64(e.opts.alpha()) {
				bottomUp = true
			} else if bottomUp && frontSize < int64(e.g.NumVertices()/e.opts.beta()) {
				bottomUp = false
			}
		}
		var err2 error
		if bottomUp {
			e.bottomUpLevels++
			err2 = e.bottomUpStep(depth)
		} else {
			err2 = e.topDownStep(depth)
		}
		if err2 != nil {
			return err2
		}
		for _, li := range e.next {
			e.unexploredLocal -= int64(e.g.Degree(e.global(li)))
		}
		e.frontier, e.next = e.next, e.frontier[:0]
	}
}
