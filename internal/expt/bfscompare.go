package expt

import (
	"fmt"
	"time"

	"parsssp/internal/bfs"
	"parsssp/internal/graph"
	"parsssp/internal/sssp"
)

// BFSCompareResult reproduces the Figure 1 discussion: "SSSP is only two
// to five times slower than BFS on the same machine configuration, graph
// type and level of optimization".
type BFSCompareResult struct {
	Rows []BFSCompareRow
}

// BFSCompareRow is one family's measurement.
type BFSCompareRow struct {
	Family    Family
	Scale     int
	Ranks     int
	BFSGTEPS  float64
	SSSPGTEPS float64
	// Slowdown is BFSGTEPS / SSSPGTEPS; the paper observes 2–5.
	Slowdown float64
}

// BFSCompare measures direction-optimized BFS and the final SSSP
// algorithm on identical graphs, machines and roots.
func BFSCompare(cfg Config) (*BFSCompareResult, error) {
	ranks := cfg.Ranks[len(cfg.Ranks)-1]
	res := &BFSCompareResult{}
	for _, fam := range []Family{RMAT1, RMAT2} {
		g, err := cfg.generate(fam, ranks)
		if err != nil {
			return nil, err
		}
		roots := pickRoots(g, cfg.Roots, cfg.Seed+uint64(fam)*3)
		delta := uint32(25)
		if fam == RMAT2 {
			delta = 40
		}
		ssspOpts := sssp.LBOptOptions(delta)
		ssspOpts.Threads = cfg.Threads

		var bfsGTEPS, ssspGTEPS float64
		for _, root := range roots {
			bres, err := timeBFS(g, ranks, root)
			if err != nil {
				return nil, err
			}
			bfsGTEPS += bres
			srun, err := cfg.run(g, ranks, root, ssspOpts)
			if err != nil {
				return nil, err
			}
			ssspGTEPS += srun.Stats.GTEPS(g.NumEdges())
		}
		bfsGTEPS /= float64(len(roots))
		ssspGTEPS /= float64(len(roots))
		row := BFSCompareRow{
			Family: fam, Scale: cfg.scaleFor(ranks), Ranks: ranks,
			BFSGTEPS: bfsGTEPS, SSSPGTEPS: ssspGTEPS,
		}
		if ssspGTEPS > 0 {
			row.Slowdown = bfsGTEPS / ssspGTEPS
		}
		res.Rows = append(res.Rows, row)
	}
	tw := cfg.newTable("Figure 1 discussion — BFS vs SSSP on the same machine",
		"family", "scale", "ranks", "BFS GTEPS", "SSSP GTEPS", "SSSP slowdown")
	for _, r := range res.Rows {
		fmt.Fprintln(tw, row(r.Family, r.Scale, r.Ranks, r.BFSGTEPS, r.SSSPGTEPS, r.Slowdown))
	}
	return res, tw.Flush()
}

// timeBFS runs one direction-optimized BFS and returns its GTEPS.
func timeBFS(g *graph.Graph, ranks int, root graph.Vertex) (float64, error) {
	start := time.Now()
	if _, err := bfs.Run(g, ranks, root, bfs.Options{}); err != nil {
		return 0, err
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, fmt.Errorf("bfscompare: degenerate timing")
	}
	return float64(g.NumEdges()) / elapsed / 1e9, nil
}
