package expt

import (
	"fmt"

	"parsssp/internal/gen"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
	"parsssp/internal/sssp"
	"parsssp/internal/validate"
)

// runWithSplit runs the two-tier load-balanced algorithm: inter-node
// vertex splitting (proxies over a cyclic distribution) plus whatever
// opts enables (typically LB-Opt).
func runWithSplit(g *graph.Graph, ranks int, src graph.Vertex,
	opts sssp.Options, splitThreshold int) (*sssp.Result, error) {
	sr, err := partition.SplitHeavyVertices(g, partition.SplitOptions{
		DegreeThreshold: splitThreshold,
		MaxProxies:      ranks,
	})
	if err != nil {
		return nil, err
	}
	pd, err := partition.New(partition.Cyclic, sr.Graph.NumVertices(), ranks)
	if err != nil {
		return nil, err
	}
	res, err := sssp.RunDistributed(sr.Graph, pd, src, opts)
	if err != nil {
		return nil, err
	}
	res.Dist = sr.RestrictDistances(res.Dist)
	return res, nil
}

// PushPullResult reproduces §IV.G: the decision heuristic compared with
// the best of all 2^k push/pull sequences.
type PushPullResult struct {
	Cases []PushPullCase
	// OptimalCount is the number of cases where the heuristic matched the
	// best sequence.
	OptimalCount int
}

// PushPullCase is one (family, root) validation.
type PushPullCase struct {
	Family  Family
	Root    graph.Vertex
	Report  *validate.PushPullReport
	Optimal bool
}

// PushPull runs the exhaustive decision-sequence validation on both
// families with several roots. Hybridization keeps the epoch count (and
// hence 2^k) small, exactly as in the paper's validation setup.
func PushPull(cfg Config) (*PushPullResult, error) {
	ranks := cfg.Ranks[0]
	if len(cfg.Ranks) > 1 {
		ranks = cfg.Ranks[1]
	}
	res := &PushPullResult{}
	for _, fam := range []Family{RMAT1, RMAT2} {
		g, err := cfg.generate(fam, ranks)
		if err != nil {
			return nil, err
		}
		roots := pickRoots(g, cfg.Roots, cfg.Seed+uint64(fam)*97)
		for _, root := range roots {
			opts := sssp.OptOptions(25)
			opts.Threads = cfg.Threads
			report, err := validate.ExhaustivePushPull(g, ranks, root, opts, 14)
			if err != nil {
				return nil, fmt.Errorf("pushpull %s root %d: %w", fam, root, err)
			}
			c := PushPullCase{Family: fam, Root: root, Report: report, Optimal: report.HeuristicIsOptimal}
			if c.Optimal {
				res.OptimalCount++
			}
			res.Cases = append(res.Cases, c)
		}
	}
	tw := cfg.newTable("§IV.G — push/pull decision heuristic vs exhaustive search",
		"family", "root", "epochs", "sequences", "heuristic relax", "best relax", "optimal")
	for _, c := range res.Cases {
		fmt.Fprintln(tw, row(c.Family, c.Root, c.Report.Epochs, c.Report.Evaluated,
			c.Report.Heuristic.Relaxations, c.Report.Best.Relaxations, c.Optimal))
	}
	fmt.Fprintln(tw, row("optimal", "", "", "", "", "",
		fmt.Sprintf("%d/%d", res.OptimalCount, len(res.Cases))))
	return res, tw.Flush()
}

// RealWorldResult reproduces the §IV.H table: Del-40 vs Opt-40 on social
// graphs. The SNAP datasets are unavailable offline, so scaled-down
// synthetic stand-ins with matching shape are used (see DESIGN.md).
type RealWorldResult struct {
	Rows []RealWorldRow
}

// RealWorldRow is one graph's measurement.
type RealWorldRow struct {
	Name               string
	Vertices           int
	Edges              int64
	DelGTEPS, OptGTEPS float64
	// Speedup is OptGTEPS / DelGTEPS; the paper reports about 2×.
	Speedup float64
}

// realWorldGraphs builds the three stand-ins, scaled ~1000× down from
// the originals with matched average degree and heavy-tailed skew.
func realWorldGraphs(seed uint64) (map[string]*graph.Graph, []string, error) {
	order := []string{"Friendster", "Orkut", "LiveJournal"}
	specs := map[string]gen.SocialParams{
		// Friendster: 63M vertices / 1.8B edges → 63k / 1.8M, avg deg ~29.
		"Friendster": {N: 63000, AvgDegree: 29, Skew: 0.57, Seed: seed + 1, NumHubSeed: 4000},
		// Orkut: 3M / 117M → 30k / 1.17M, avg deg ~39.
		"Orkut": {N: 30000, AvgDegree: 39, Skew: 0.55, Seed: seed + 2, NumHubSeed: 2000},
		// LiveJournal: 4.8M / 68M → 48k / 680k, avg deg ~14.
		"LiveJournal": {N: 48000, AvgDegree: 14, Skew: 0.55, Seed: seed + 3, NumHubSeed: 1500},
	}
	graphs := make(map[string]*graph.Graph, len(specs))
	for name, sp := range specs {
		g, err := gen.Social(sp)
		if err != nil {
			return nil, nil, fmt.Errorf("realworld %s: %w", name, err)
		}
		graphs[name] = g
	}
	return graphs, order, nil
}

// RealWorld measures Del-40 and Opt-40 on the social stand-ins.
func RealWorld(cfg Config) (*RealWorldResult, error) {
	graphs, order, err := realWorldGraphs(cfg.Seed)
	if err != nil {
		return nil, err
	}
	ranks := cfg.Ranks[len(cfg.Ranks)-1]
	res := &RealWorldResult{}
	for _, name := range order {
		g := graphs[name]
		roots := pickRoots(g, cfg.Roots, cfg.Seed+uint64(len(name)))
		del := sssp.DelOptions(40)
		del.Threads = cfg.Threads
		pDel, err := cfg.measure(g, ranks, roots, del)
		if err != nil {
			return nil, err
		}
		opt := sssp.LBOptOptions(40)
		opt.Threads = cfg.Threads
		pOpt, err := cfg.measure(g, ranks, roots, opt)
		if err != nil {
			return nil, err
		}
		rw := RealWorldRow{
			Name:     name,
			Vertices: g.NumVertices(),
			Edges:    g.NumEdges(),
			DelGTEPS: pDel.GTEPS,
			OptGTEPS: pOpt.GTEPS,
		}
		if rw.DelGTEPS > 0 {
			rw.Speedup = rw.OptGTEPS / rw.DelGTEPS
		}
		res.Rows = append(res.Rows, rw)
	}
	tw := cfg.newTable("§IV.H — real-world graph stand-ins, Del-40 vs Opt-40",
		"graph", "vertices", "edges", "Del-40 GTEPS", "Opt-40 GTEPS", "speedup")
	for _, r := range res.Rows {
		fmt.Fprintln(tw, row(r.Name, r.Vertices, r.Edges, r.DelGTEPS, r.OptGTEPS, r.Speedup))
	}
	return res, tw.Flush()
}
