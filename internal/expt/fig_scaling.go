package expt

import (
	"fmt"

	"parsssp/internal/graph"
	"parsssp/internal/sssp"
)

// ScalingResult is a weak-scaling sweep: one Point per (algorithm, rank
// count).
type ScalingResult struct {
	Family Family
	// Series[name][i] is the measurement of algorithm name at
	// cfg.Ranks[i].
	Series map[string][]Point
	// Order lists series in presentation order.
	Order []string
}

// sweep measures every algorithm in algos across the weak-scaling rank
// list of cfg on graphs of fam.
func sweep(cfg Config, fam Family, order []string, algos map[string]sssp.Options) (*ScalingResult, error) {
	res := &ScalingResult{Family: fam, Series: map[string][]Point{}, Order: order}
	for _, ranks := range cfg.Ranks {
		g, err := cfg.generate(fam, ranks)
		if err != nil {
			return nil, err
		}
		roots := pickRoots(g, cfg.Roots, cfg.Seed+uint64(ranks))
		for _, name := range order {
			opts := algos[name]
			opts.Threads = cfg.Threads
			p, err := cfg.measure(g, ranks, roots, opts)
			if err != nil {
				return nil, fmt.Errorf("%s/%s/ranks=%d: %w", fam, name, ranks, err)
			}
			p.Scale = cfg.scaleFor(ranks)
			res.Series[name] = append(res.Series[name], p)
		}
	}
	return res, nil
}

// print renders the sweep as one table per metric selector.
func (r *ScalingResult) print(cfg Config, title string, metric string, sel func(Point) float64) error {
	cols := []interface{}{"ranks", "scale"}
	for _, name := range r.Order {
		cols = append(cols, name)
	}
	tw := cfg.newTable(fmt.Sprintf("%s — %s (%s)", title, metric, r.Family), cols...)
	for i, ranks := range cfg.Ranks {
		cells := []interface{}{ranks, cfg.scaleFor(ranks)}
		for _, name := range r.Order {
			cells = append(cells, sel(r.Series[name][i]))
		}
		fmt.Fprintln(tw, row(cells...))
	}
	return tw.Flush()
}

// Fig9 reproduces Figure 9: weak-scaling GTEPS of the Δ-stepping
// algorithm (with edge classification) for Δ from 1 (Dijkstra) to ∞
// (Bellman-Ford) on RMAT-1.
func Fig9(cfg Config) (*ScalingResult, error) {
	order := []string{"Del-1", "Del-5", "Del-10", "Del-25", "Del-50", "Del-100", "Del-inf"}
	algos := map[string]sssp.Options{
		"Del-1":   sssp.DelOptions(1),
		"Del-5":   sssp.DelOptions(5),
		"Del-10":  sssp.DelOptions(10),
		"Del-25":  sssp.DelOptions(25),
		"Del-50":  sssp.DelOptions(50),
		"Del-100": sssp.DelOptions(100),
		"Del-inf": sssp.BellmanFordOptions(),
	}
	res, err := sweep(cfg, RMAT1, order, algos)
	if err != nil {
		return nil, err
	}
	return res, res.print(cfg, "Figure 9", "GTEPS", func(p Point) float64 { return p.GTEPS })
}

// FigAnalysisResult bundles the Figure 10/11 panels for one family.
type FigAnalysisResult struct {
	// Main compares Del-25, Prune-25 and Opt-25 (panels a–d).
	Main *ScalingResult
	// DeltaSweep compares Opt-10/25/40 (panel e).
	DeltaSweep *ScalingResult
	// LB compares LB-Opt-10/25/40 (panel f; Figure 10 only).
	LB *ScalingResult
}

// figAnalysis runs the paper's per-family analysis (Figures 10 and 11):
// heuristic lineup, Δ sweep of OPT, and optionally the load-balanced
// variant.
func figAnalysis(cfg Config, fam Family, withLB bool) (*FigAnalysisResult, error) {
	mainOrder := []string{"Del-25", "Prune-25", "Opt-25"}
	main, err := sweep(cfg, fam, mainOrder, map[string]sssp.Options{
		"Del-25":   sssp.DelOptions(25),
		"Prune-25": sssp.PruneOptions(25),
		"Opt-25":   sssp.OptOptions(25),
	})
	if err != nil {
		return nil, err
	}
	title := "Figure 10"
	if fam == RMAT2 {
		title = "Figure 11"
	}
	if err := main.print(cfg, title+"a", "GTEPS", func(p Point) float64 { return p.GTEPS }); err != nil {
		return nil, err
	}
	if err := main.print(cfg, title+"b", "bucket-overhead fraction of time", func(p Point) float64 { return p.BktTimeFrac }); err != nil {
		return nil, err
	}
	if err := main.print(cfg, title+"c", "relaxations", func(p Point) float64 { return p.Relaxations }); err != nil {
		return nil, err
	}
	if err := main.print(cfg, title+"d", "buckets", func(p Point) float64 { return p.Buckets }); err != nil {
		return nil, err
	}

	deltaOrder := []string{"Opt-10", "Opt-25", "Opt-40"}
	deltaSweep, err := sweep(cfg, fam, deltaOrder, map[string]sssp.Options{
		"Opt-10": sssp.OptOptions(10),
		"Opt-25": sssp.OptOptions(25),
		"Opt-40": sssp.OptOptions(40),
	})
	if err != nil {
		return nil, err
	}
	if err := deltaSweep.print(cfg, title+"e", "GTEPS", func(p Point) float64 { return p.GTEPS }); err != nil {
		return nil, err
	}

	res := &FigAnalysisResult{Main: main, DeltaSweep: deltaSweep}
	if withLB {
		lbOrder := []string{"LBOpt-10", "LBOpt-25", "LBOpt-40"}
		lb, err := sweep(cfg, fam, lbOrder, map[string]sssp.Options{
			"LBOpt-10": sssp.LBOptOptions(10),
			"LBOpt-25": sssp.LBOptOptions(25),
			"LBOpt-40": sssp.LBOptOptions(40),
		})
		if err != nil {
			return nil, err
		}
		if err := lb.print(cfg, title+"f", "GTEPS with load balancing", func(p Point) float64 { return p.GTEPS }); err != nil {
			return nil, err
		}
		res.LB = lb
	}
	return res, nil
}

// Fig10 reproduces the Figure 10 analysis on RMAT-1 (including the
// load-balancing panel).
func Fig10(cfg Config) (*FigAnalysisResult, error) { return figAnalysis(cfg, RMAT1, true) }

// Fig11 reproduces the Figure 11 analysis on RMAT-2 (no load-balancing
// panel: the paper found it unnecessary for this family).
func Fig11(cfg Config) (*FigAnalysisResult, error) { return figAnalysis(cfg, RMAT2, false) }

// Fig12Result reproduces Figure 12: the large-system weak-scaling GTEPS
// table of the final algorithms (Δ=25 for RMAT-1 with two-tier load
// balancing, Δ=40 for RMAT-2).
type Fig12Result struct {
	Ranks []int
	// GTEPS[family][i] is the rate at Ranks[i].
	GTEPS map[Family][]float64
}

// Fig12 sweeps the largest configured systems with the final algorithm of
// each family.
func Fig12(cfg Config) (*Fig12Result, error) {
	res := &Fig12Result{Ranks: cfg.Ranks, GTEPS: map[Family][]float64{}}
	for _, fam := range []Family{RMAT1, RMAT2} {
		for _, ranks := range cfg.Ranks {
			g, err := cfg.generate(fam, ranks)
			if err != nil {
				return nil, err
			}
			roots := pickRoots(g, cfg.Roots, cfg.Seed+uint64(ranks))
			var gteps float64
			if fam == RMAT1 {
				// Final RMAT-1 algorithm: LB-Opt-25 plus inter-node vertex
				// splitting of extreme-degree vertices.
				opts := sssp.LBOptOptions(25)
				opts.Threads = cfg.Threads
				threshold := degreeThresholdFor(g)
				for _, root := range roots {
					run, err := runWithSplit(g, ranks, root, opts, threshold)
					if err != nil {
						return nil, err
					}
					gteps += run.Stats.GTEPS(g.NumEdges())
				}
				gteps /= float64(len(roots))
			} else {
				opts := sssp.OptOptions(40)
				opts.Threads = cfg.Threads
				p, err := cfg.measure(g, ranks, roots, opts)
				if err != nil {
					return nil, err
				}
				gteps = p.GTEPS
			}
			res.GTEPS[fam] = append(res.GTEPS[fam], gteps)
		}
	}
	tw := cfg.newTable("Figure 12 — final algorithms, weak scaling GTEPS",
		"ranks", "scale", "RMAT-1 (LB-Opt-25 + split)", "RMAT-2 (Opt-40)")
	for i, ranks := range cfg.Ranks {
		fmt.Fprintln(tw, row(ranks, cfg.scaleFor(ranks), res.GTEPS[RMAT1][i], res.GTEPS[RMAT2][i]))
	}
	return res, tw.Flush()
}

// Table1Result reproduces the paper's Figure 1 "this paper" rows: the
// headline configuration of both families at the largest system size.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one headline measurement.
type Table1Row struct {
	Family   Family
	Ranks    int
	Scale    int
	Vertices int
	Edges    int64
	GTEPS    float64
}

// Table1 measures the headline configurations.
func Table1(cfg Config) (*Table1Result, error) {
	ranks := cfg.Ranks[len(cfg.Ranks)-1]
	res := &Table1Result{}
	for _, fam := range []Family{RMAT1, RMAT2} {
		g, err := cfg.generate(fam, ranks)
		if err != nil {
			return nil, err
		}
		roots := pickRoots(g, cfg.Roots, cfg.Seed)
		delta := graph.Weight(25)
		if fam == RMAT2 {
			delta = 40
		}
		opts := sssp.LBOptOptions(delta)
		opts.Threads = cfg.Threads
		p, err := cfg.measure(g, ranks, roots, opts)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table1Row{
			Family:   fam,
			Ranks:    ranks,
			Scale:    cfg.scaleFor(ranks),
			Vertices: g.NumVertices(),
			Edges:    g.NumEdges(),
			GTEPS:    p.GTEPS,
		})
	}
	tw := cfg.newTable("Figure 1 — headline SSSP rates (this reproduction)",
		"family", "ranks", "scale", "vertices", "edges", "GTEPS")
	for _, r := range res.Rows {
		fmt.Fprintln(tw, row(r.Family, r.Ranks, r.Scale, r.Vertices, r.Edges, r.GTEPS))
	}
	return res, tw.Flush()
}
