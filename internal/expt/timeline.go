package expt

import (
	"fmt"

	"parsssp/internal/sssp"
)

// TimelineResult is the per-phase execution timeline of one Opt query —
// Figure 4 at phase (rather than bucket) granularity, including the
// Bellman-Ford tail that hybridization appends.
type TimelineResult struct {
	Phases []sssp.PhaseRecord
	// ByKind aggregates relaxations per phase kind.
	ByKind map[string]int64
}

// Timeline records and prints the phase timeline of an Opt-25 query on
// RMAT-1.
func Timeline(cfg Config) (*TimelineResult, error) {
	ranks := cfg.Ranks[len(cfg.Ranks)-1]
	g, err := cfg.generate(RMAT1, ranks)
	if err != nil {
		return nil, err
	}
	root := pickRoots(g, 1, cfg.Seed)[0]
	opts := sssp.OptOptions(25)
	opts.Threads = cfg.Threads
	opts.RecordPhases = true
	run, err := cfg.run(g, ranks, root, opts)
	if err != nil {
		return nil, err
	}
	res := &TimelineResult{Phases: run.Stats.PhaseLog, ByKind: map[string]int64{}}
	tw := cfg.newTable("Execution timeline — Opt-25 on RMAT-1, one query",
		"#", "bucket", "kind", "active", "relaxations", "duration")
	for i, p := range res.Phases {
		res.ByKind[p.Kind.String()] += p.Relax
		bucket := fmt.Sprint(p.Bucket)
		if p.Bucket < 0 {
			bucket = "-"
		}
		fmt.Fprintln(tw, row(i, bucket, p.Kind.String(), p.Active, p.Relax, p.Duration.String()))
	}
	fmt.Fprintln(tw, row("", "", "by kind", "", fmt.Sprint(res.ByKind), ""))
	return res, tw.Flush()
}
