package expt

import (
	"fmt"

	"parsssp/internal/gen"
	"parsssp/internal/graph"
	"parsssp/internal/rmat"
	"parsssp/internal/sssp"
)

// Fig3Result reproduces Figure 3: per-algorithm phase counts (a) and
// relaxation counts (b) on sample graphs of both families.
type Fig3Result struct {
	// Rows[family][algorithm] holds the averaged measurement.
	Rows map[Family]map[string]Point
	// Order lists the algorithms in presentation order.
	Order []string
}

// fig3Algorithms is the paper's Figure 3 lineup: the basic algorithms,
// three Δ-stepping settings, and the proposed Hybrid and Prune variants.
func fig3Algorithms() ([]string, map[string]sssp.Options) {
	order := []string{"BellmanFord", "Dijkstra", "Del-10", "Del-25", "Del-40", "Hybrid-25", "Prune-25"}
	hyb := sssp.DelOptions(25)
	hyb.Hybrid = true
	return order, map[string]sssp.Options{
		"BellmanFord": sssp.BellmanFordOptions(),
		"Dijkstra":    sssp.DijkstraOptions(),
		"Del-10":      sssp.DelOptions(10),
		"Del-25":      sssp.DelOptions(25),
		"Del-40":      sssp.DelOptions(40),
		"Hybrid-25":   hyb,
		"Prune-25":    sssp.PruneOptions(25),
	}
}

// Fig3 runs the Figure 3 comparison on single graphs of both families at
// the configured per-rank scale times the largest rank count.
func Fig3(cfg Config) (*Fig3Result, error) {
	order, algos := fig3Algorithms()
	res := &Fig3Result{Rows: map[Family]map[string]Point{}, Order: order}
	ranks := cfg.Ranks[len(cfg.Ranks)-1]
	for _, fam := range []Family{RMAT1, RMAT2} {
		g, err := cfg.generate(fam, ranks)
		if err != nil {
			return nil, err
		}
		roots := pickRoots(g, cfg.Roots, cfg.Seed+uint64(fam))
		res.Rows[fam] = map[string]Point{}
		for _, name := range order {
			opts := algos[name]
			opts.Threads = cfg.Threads
			p, err := cfg.measure(g, ranks, roots, opts)
			if err != nil {
				return nil, fmt.Errorf("fig3 %s/%s: %w", fam, name, err)
			}
			p.Scale = cfg.scaleFor(ranks)
			res.Rows[fam][name] = p
		}
	}
	tw := cfg.newTable("Figure 3 — phases and relaxations by algorithm",
		"family", "algorithm", "phases", "buckets", "relaxations")
	for _, fam := range []Family{RMAT1, RMAT2} {
		for _, name := range order {
			p := res.Rows[fam][name]
			fmt.Fprintln(tw, row(fam, name, p.Phases, p.Buckets, p.Relaxations))
		}
	}
	return res, tw.Flush()
}

// Fig4Result reproduces Figure 4: the phase-wise distribution of
// relaxations for Del-25, demonstrating the dominance of long-edge
// phases.
type Fig4Result struct {
	// Buckets holds per-epoch short- and long-phase relaxation counts.
	Buckets []sssp.BucketStats
	// ShortTotal and LongTotal aggregate the two phase kinds.
	ShortTotal, LongTotal int64
}

// Fig4 runs Del-25 on an RMAT-1 graph and reports the per-bucket
// relaxation split.
func Fig4(cfg Config) (*Fig4Result, error) {
	ranks := cfg.Ranks[len(cfg.Ranks)-1]
	g, err := cfg.generate(RMAT1, ranks)
	if err != nil {
		return nil, err
	}
	root := pickRoots(g, 1, cfg.Seed)[0]
	opts := sssp.DelOptions(25)
	opts.Threads = cfg.Threads
	run, err := sssp.Run(g, ranks, root, opts)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{Buckets: run.Stats.Buckets}
	tw := cfg.newTable("Figure 4 — phase-wise relaxations (Del-25, RMAT-1)",
		"bucket", "short phases", "short relax", "long relax")
	for _, b := range res.Buckets {
		res.ShortTotal += b.ShortRelax
		res.LongTotal += b.LongRelax
		fmt.Fprintln(tw, row(b.Index, b.ShortPhases, b.ShortRelax, b.LongRelax))
	}
	fmt.Fprintln(tw, row("total", "", res.ShortTotal, res.LongTotal))
	return res, tw.Flush()
}

// Fig6Result reproduces the Figure 6 illustration: on the root–clique–
// pendant construction, the pull mechanism beats push on the clique
// bucket.
type Fig6Result struct {
	// PushRelax and PullRelax are the total relaxation counts (requests
	// and responses counted separately) under all-push and under the
	// heuristic (which picks pull for the clique bucket).
	PushRelax, PullRelax int64
	// HeuristicDecisions is the per-epoch decision sequence chosen.
	HeuristicDecisions []sssp.Mode
}

// Fig6 builds the clique illustration graph and compares forced-push with
// the decision heuristic.
func Fig6(cfg Config) (*Fig6Result, error) {
	// Δ=5; root→clique weight 10 puts the clique in bucket 2; clique→
	// pendant weight 10 puts the pendants in bucket 4, as in the paper.
	g, err := gen.CliqueChain(5, 5, 10, 10, 10)
	if err != nil {
		return nil, err
	}
	push := sssp.ModePush
	optsPush := sssp.PruneOptions(5)
	optsPush.ForceMode = &push
	runPush, err := sssp.Run(g, 2, 0, optsPush)
	if err != nil {
		return nil, err
	}
	optsHeur := sssp.PruneOptions(5)
	runHeur, err := sssp.Run(g, 2, 0, optsHeur)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{
		PushRelax:          runPush.Stats.Relax.Total(),
		PullRelax:          runHeur.Stats.Relax.Total(),
		HeuristicDecisions: runHeur.Stats.Decisions,
	}
	tw := cfg.newTable("Figure 6 — pull benefit on the clique example",
		"strategy", "relaxations", "decisions")
	fmt.Fprintln(tw, row("all-push", res.PushRelax, "push,push,push"))
	fmt.Fprintln(tw, row("heuristic", res.PullRelax, fmt.Sprint(res.HeuristicDecisions)))
	return res, tw.Flush()
}

// Fig7Result reproduces Figure 7: the per-bucket long-edge category
// census (self/backward/forward) and pull-request counts that motivate
// per-bucket push/pull decisions.
type Fig7Result struct {
	Buckets []sssp.BucketStats
}

// Fig7 runs Prune-25 in census mode on an RMAT-1 graph.
func Fig7(cfg Config) (*Fig7Result, error) {
	ranks := cfg.Ranks[len(cfg.Ranks)-1]
	g, err := cfg.generate(RMAT1, ranks)
	if err != nil {
		return nil, err
	}
	root := pickRoots(g, 1, cfg.Seed)[0]
	opts := sssp.PruneOptions(25)
	opts.Census = true
	opts.Threads = cfg.Threads
	run, err := sssp.Run(g, ranks, root, opts)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Buckets: run.Stats.Buckets}
	tw := cfg.newTable("Figure 7 — long-edge census per bucket (Prune-25 census mode, RMAT-1)",
		"bucket", "self", "backward", "forward", "push total", "pull requests")
	for _, b := range res.Buckets {
		pushTotal := b.SelfEdges + b.BackwardEdges + b.ForwardEdges
		fmt.Fprintln(tw, row(b.Index, b.SelfEdges, b.BackwardEdges, b.ForwardEdges,
			pushTotal, b.Requests))
	}
	return res, tw.Flush()
}

// Fig8Result reproduces Figure 8: maximum degree by scale for both
// families, the skew indicator motivating load balancing.
type Fig8Result struct {
	Scales []int
	// MaxDegree[family][i] is the maximum degree at Scales[i].
	MaxDegree map[Family][]int
}

// Fig8 sweeps graph scales and reports the maximum degree of each family.
func Fig8(cfg Config) (*Fig8Result, error) {
	res := &Fig8Result{MaxDegree: map[Family][]int{}}
	base := cfg.ScalePerRank
	for s := base; s < base+5; s++ {
		res.Scales = append(res.Scales, s)
	}
	for _, fam := range []Family{RMAT1, RMAT2} {
		for _, s := range res.Scales {
			g, err := rmat.Generate(fam.Params(s, cfg.Seed))
			if err != nil {
				return nil, err
			}
			res.MaxDegree[fam] = append(res.MaxDegree[fam], g.MaxDegree())
		}
	}
	tw := cfg.newTable("Figure 8 — maximum degree by scale", "scale", "RMAT-1", "RMAT-2")
	for i, s := range res.Scales {
		fmt.Fprintln(tw, row(s, res.MaxDegree[RMAT1][i], res.MaxDegree[RMAT2][i]))
	}
	return res, tw.Flush()
}

// degreeThresholdFor picks a vertex-splitting threshold from the graph's
// degree distribution: comfortably above the mean, far below the maximum.
func degreeThresholdFor(g *graph.Graph) int {
	st := g.Stats()
	t := int(st.Mean * 8)
	if t < 16 {
		t = 16
	}
	return t
}
