// Package expt is the benchmark harness that regenerates every table and
// figure of the paper's experimental section (§IV) at laptop scale.
//
// Each experiment is a function taking a Config and returning a
// structured result that it also pretty-prints. The paper ran weak
// scaling with 2^23 vertices per Blue Gene/Q node on 32–32,768 nodes;
// here the same sweeps run with a configurable vertices-per-rank budget
// over in-process ranks. Absolute GTEPS numbers differ from the paper's
// hardware by construction — the comparisons that must (and do) hold are
// the shapes: which algorithm wins, by what factor, and where behaviour
// crosses over. See EXPERIMENTS.md for the recorded outcomes.
package expt

import (
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"parsssp/internal/comm"
	"parsssp/internal/comm/memtransport"
	"parsssp/internal/graph"
	"parsssp/internal/partition"
	"parsssp/internal/rmat"
	"parsssp/internal/rng"
	"parsssp/internal/sssp"
)

// Family identifies one of the paper's two R-MAT parameter families.
type Family int

const (
	// RMAT1 is the Graph500 BFS spec (A=0.57, B=C=0.19).
	RMAT1 Family = 1
	// RMAT2 is the proposed Graph500 SSSP spec (A=0.50, B=C=0.10).
	RMAT2 Family = 2
)

// String returns "RMAT-1" or "RMAT-2".
func (f Family) String() string { return fmt.Sprintf("RMAT-%d", int(f)) }

// Params returns the rmat parameters of the family at a scale.
func (f Family) Params(scale int, seed uint64) rmat.Params {
	if f == RMAT2 {
		return rmat.Family2(scale, seed)
	}
	return rmat.Family1(scale, seed)
}

// Config controls experiment sizing. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// ScalePerRank is log2 of the vertices owned by each rank under weak
	// scaling (the paper used 23).
	ScalePerRank int
	// Ranks is the list of rank counts for scaling sweeps; each must be a
	// power of two.
	Ranks []int
	// Threads is the worker-goroutine count per rank.
	Threads int
	// Roots is the number of random source vertices each data point is
	// averaged over.
	Roots int
	// Seed selects all random streams.
	Seed uint64
	// CollectiveLatency, when nonzero, adds a synthetic delay to every
	// collective (comm.Latent), emulating network round trips on the
	// in-process machine. Phase-count effects (Figure 9's Dijkstra
	// penalty, Figure 10b's bucket overheads) only appear in wall-clock
	// terms with realistic latency.
	CollectiveLatency time.Duration
	// Out receives the printed tables; nil means os.Stdout.
	Out io.Writer
}

// DefaultConfig returns a configuration sized for a laptop: scale 13 per
// rank (8k vertices/rank, 128k edges/rank) over 1–8 ranks.
func DefaultConfig() Config {
	return Config{
		ScalePerRank: 13,
		Ranks:        []int{1, 2, 4, 8},
		Threads:      2,
		Roots:        4,
		Seed:         0xC0FFEE,
	}
}

func (c *Config) out() io.Writer {
	if c.Out == nil {
		return os.Stdout
	}
	return c.Out
}

// scaleFor returns the weak-scaling graph scale for a rank count.
func (c *Config) scaleFor(ranks int) int {
	s := c.ScalePerRank
	for r := ranks; r > 1; r >>= 1 {
		s++
	}
	return s
}

// generate builds the weak-scaling graph of a family for a rank count.
func (c *Config) generate(f Family, ranks int) (*graph.Graph, error) {
	return rmat.Generate(f.Params(c.scaleFor(ranks), c.Seed))
}

// pickRoots selects n deterministic non-isolated source vertices.
func pickRoots(g *graph.Graph, n int, seed uint64) []graph.Vertex {
	gen := rng.NewXoshiro256(seed)
	roots := make([]graph.Vertex, 0, n)
	nv := g.NumVertices()
	for len(roots) < n {
		v := graph.Vertex(gen.IntN(nv))
		if g.Degree(v) > 0 {
			roots = append(roots, v)
		}
	}
	return roots
}

// Point is one averaged measurement of an algorithm on a graph.
type Point struct {
	// Ranks and Scale identify the weak-scaling configuration.
	Ranks, Scale int
	// GTEPS is the mean traversal rate over the roots.
	GTEPS float64
	// Relaxations is the mean total relaxation count.
	Relaxations float64
	// Phases and Buckets are the mean phase and epoch counts.
	Phases, Buckets float64
	// BktTimeFrac is mean BktTime / (BktTime + OtherTime).
	BktTimeFrac float64
	// TimeMS is the mean query wall-clock in milliseconds.
	TimeMS float64
}

// run executes one query, inserting the configured collective latency.
func (c *Config) run(g *graph.Graph, ranks int, root graph.Vertex, opts sssp.Options) (*sssp.Result, error) {
	pd, err := partition.New(partition.Block, g.NumVertices(), ranks)
	if err != nil {
		return nil, err
	}
	group, err := memtransport.New(ranks)
	if err != nil {
		return nil, err
	}
	transports := group.Endpoints()
	if c.CollectiveLatency > 0 {
		for i, t := range transports {
			transports[i] = comm.NewLatent(t, c.CollectiveLatency)
		}
	}
	return sssp.RunWithTransports(g, pd, root, opts, transports)
}

// measure runs opts on g for each root and averages.
func (c *Config) measure(g *graph.Graph, ranks int, roots []graph.Vertex, opts sssp.Options) (Point, error) {
	var p Point
	for _, root := range roots {
		res, err := c.run(g, ranks, root, opts)
		if err != nil {
			return p, err
		}
		p.GTEPS += res.Stats.GTEPS(g.NumEdges())
		p.Relaxations += float64(res.Stats.Relax.Total())
		p.Phases += float64(res.Stats.Phases)
		p.Buckets += float64(res.Stats.Epochs)
		p.TimeMS += float64(res.Stats.Total.Milliseconds())
		tot := res.Stats.BktTime + res.Stats.OtherTime
		if tot > 0 {
			p.BktTimeFrac += res.Stats.BktTime.Seconds() / tot.Seconds()
		}
	}
	n := float64(len(roots))
	p.GTEPS /= n
	p.Relaxations /= n
	p.Phases /= n
	p.Buckets /= n
	p.TimeMS /= n
	p.BktTimeFrac /= n
	p.Ranks = ranks
	return p, nil
}

// newTable returns a tabwriter on the config output with a header line.
func (c *Config) newTable(title string, columns ...interface{}) *tabwriter.Writer {
	fmt.Fprintf(c.out(), "\n== %s ==\n", title)
	tw := tabwriter.NewWriter(c.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, row(columns...))
	return tw
}

// row formats a tab-separated table row.
func row(cells ...interface{}) string {
	s := ""
	for i, cell := range cells {
		if i > 0 {
			s += "\t"
		}
		switch v := cell.(type) {
		case float64:
			s += fmt.Sprintf("%.3g", v)
		default:
			s += fmt.Sprint(v)
		}
	}
	return s
}
