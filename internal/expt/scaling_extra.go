package expt

import (
	"fmt"

	"parsssp/internal/partition"
	"parsssp/internal/sssp"
	"parsssp/internal/validate"
)

// StrongScalingResult fixes the graph and varies the machine size — the
// complement of the paper's weak-scaling sweeps (its title promises
// strong scaling; weak scaling is what §IV reports, so both are
// provided).
type StrongScalingResult struct {
	Family Family
	Scale  int
	// Points[i] measures cfg.Ranks[i] ranks on the same graph.
	Points []Point
	// Efficiency[i] is GTEPS(i) / (GTEPS(0) · Ranks[i]/Ranks[0]).
	Efficiency []float64
}

// StrongScaling measures the final RMAT-1 algorithm on a fixed graph
// across the configured rank counts.
func StrongScaling(cfg Config) (*StrongScalingResult, error) {
	scale := cfg.scaleFor(cfg.Ranks[len(cfg.Ranks)-1])
	g, err := cfg.generate(RMAT1, cfg.Ranks[len(cfg.Ranks)-1])
	if err != nil {
		return nil, err
	}
	roots := pickRoots(g, cfg.Roots, cfg.Seed+77)
	res := &StrongScalingResult{Family: RMAT1, Scale: scale}
	for _, ranks := range cfg.Ranks {
		opts := sssp.LBOptOptions(25)
		opts.Threads = cfg.Threads
		p, err := cfg.measure(g, ranks, roots, opts)
		if err != nil {
			return nil, err
		}
		p.Scale = scale
		res.Points = append(res.Points, p)
	}
	base := res.Points[0]
	for i, p := range res.Points {
		ideal := base.GTEPS * float64(cfg.Ranks[i]) / float64(cfg.Ranks[0])
		if ideal > 0 {
			res.Efficiency = append(res.Efficiency, p.GTEPS/ideal)
		} else {
			res.Efficiency = append(res.Efficiency, 0)
		}
	}
	tw := cfg.newTable(fmt.Sprintf("Strong scaling — LB-Opt-25 on a fixed scale-%d RMAT-1 graph", scale),
		"ranks", "GTEPS", "time (ms)", "parallel efficiency")
	for i, p := range res.Points {
		fmt.Fprintln(tw, row(cfg.Ranks[i], p.GTEPS, p.TimeMS, res.Efficiency[i]))
	}
	return res, tw.Flush()
}

// Graph500Result is the Graph500-style submission row: harmonic mean
// TEPS over many random search keys, with tree validation.
type Graph500Result struct {
	Rows []Graph500Row
}

// Graph500Row is one family's measurement.
type Graph500Row struct {
	Family           Family
	Scale            int
	Ranks            int
	Keys             int
	HarmonicMeanTEPS float64
	Validated        bool
}

// Graph500 runs the benchmark procedure: generate, pick search keys,
// query each, validate trees structurally, report harmonic mean TEPS.
func Graph500(cfg Config) (*Graph500Result, error) {
	ranks := cfg.Ranks[len(cfg.Ranks)-1]
	res := &Graph500Result{}
	for _, fam := range []Family{RMAT1, RMAT2} {
		g, err := cfg.generate(fam, ranks)
		if err != nil {
			return nil, err
		}
		roots, err := sssp.PickRoots(g, cfg.Roots, cfg.Seed+uint64(fam))
		if err != nil {
			return nil, err
		}
		delta := uint32(25)
		if fam == RMAT2 {
			delta = 40
		}
		opts := sssp.LBOptOptions(delta)
		opts.Threads = cfg.Threads
		batch, err := sssp.RunBatch(g, ranks, roots, opts)
		if err != nil {
			return nil, err
		}
		// Tree validation for the first key (validating all keys is
		// O(keys·m); one structural check per family demonstrates the
		// procedure).
		run, err := sssp.Run(g, ranks, roots[0], opts)
		if err != nil {
			return nil, err
		}
		validated := validate.CheckTree(g, roots[0], run.Dist, run.Parent) == nil
		res.Rows = append(res.Rows, Graph500Row{
			Family:           fam,
			Scale:            cfg.scaleFor(ranks),
			Ranks:            ranks,
			Keys:             len(roots),
			HarmonicMeanTEPS: batch.HarmonicMeanTEPS,
			Validated:        validated,
		})
	}
	tw := cfg.newTable("Graph500-style submission rows (harmonic mean TEPS)",
		"family", "scale", "ranks", "keys", "hmean TEPS", "tree valid")
	for _, r := range res.Rows {
		fmt.Fprintln(tw, row(r.Family, r.Scale, r.Ranks, r.Keys, r.HarmonicMeanTEPS, r.Validated))
	}
	return res, tw.Flush()
}

// SplitScalingResult compares LB-Opt with and without inter-node vertex
// splitting on the most skewed family — the paper's §III-E two-tier
// claim.
type SplitScalingResult struct {
	Ranks   []int
	NoSplit []Point
	Split   []Point
	// Imbalance holds the per-rank load-imbalance factor (max/mean
	// relaxations) without and with splitting.
	ImbalanceNoSplit []float64
	ImbalanceSplit   []float64
}

// SplitScaling measures the effect of auto-configured vertex splitting.
func SplitScaling(cfg Config) (*SplitScalingResult, error) {
	res := &SplitScalingResult{Ranks: cfg.Ranks}
	for _, ranks := range cfg.Ranks {
		g, err := cfg.generate(RMAT1, ranks)
		if err != nil {
			return nil, err
		}
		roots := pickRoots(g, cfg.Roots, cfg.Seed+uint64(ranks)*13)
		opts := sssp.LBOptOptions(25)
		opts.Threads = cfg.Threads
		plain, err := cfg.measure(g, ranks, roots, opts)
		if err != nil {
			return nil, err
		}
		res.NoSplit = append(res.NoSplit, plain)

		var split Point
		var imbPlain, imbSplit float64
		auto := partition.AutoSplitOptions(g, ranks)
		for _, root := range roots {
			base, err := cfg.run(g, ranks, root, opts)
			if err != nil {
				return nil, err
			}
			imbPlain += base.Stats.Imbalance()
			run, err := runWithSplit(g, ranks, root, opts, auto.DegreeThreshold)
			if err != nil {
				return nil, err
			}
			imbSplit += run.Stats.Imbalance()
			split.GTEPS += run.Stats.GTEPS(g.NumEdges())
			split.Relaxations += float64(run.Stats.Relax.Total())
		}
		n := float64(len(roots))
		split.GTEPS /= n
		split.Relaxations /= n
		split.Ranks = ranks
		res.Split = append(res.Split, split)
		res.ImbalanceNoSplit = append(res.ImbalanceNoSplit, imbPlain/n)
		res.ImbalanceSplit = append(res.ImbalanceSplit, imbSplit/n)
	}
	tw := cfg.newTable("Vertex splitting — LB-Opt-25 on RMAT-1 with and without proxies",
		"ranks", "GTEPS no-split", "GTEPS split", "ratio", "imbalance no-split", "imbalance split")
	for i, ranks := range cfg.Ranks {
		ratio := 0.0
		if res.NoSplit[i].GTEPS > 0 {
			ratio = res.Split[i].GTEPS / res.NoSplit[i].GTEPS
		}
		fmt.Fprintln(tw, row(ranks, res.NoSplit[i].GTEPS, res.Split[i].GTEPS, ratio,
			res.ImbalanceNoSplit[i], res.ImbalanceSplit[i]))
	}
	return res, tw.Flush()
}
