package expt

import (
	"fmt"

	"parsssp/internal/sssp"
)

// AblationResult isolates the contribution of each design choice called
// out in DESIGN.md: the IOS refinement, the pull-request estimator, the
// load-imbalance weight λ in the push/pull cost model, the hybridization
// threshold τ, and the heavy-vertex chunking threshold π.
type AblationResult struct {
	// Rows[group][variant] is the averaged measurement.
	Rows map[string]map[string]Point
	// Groups and Variants preserve presentation order.
	Groups   []string
	Variants map[string][]string
}

// ablationVariants enumerates the configurations, all derived from the
// Opt-25 preset so each group varies exactly one knob.
func ablationVariants(threads int) (groups []string, variants map[string][]string, opts map[string]map[string]sssp.Options) {
	mk := func(mutate func(*sssp.Options)) sssp.Options {
		o := sssp.LBOptOptions(25)
		o.Threads = threads
		mutate(&o)
		return o
	}
	groups = []string{"ios", "estimator", "lambda", "tau", "pi", "apply"}
	variants = map[string][]string{
		"ios":       {"with-ios", "without-ios"},
		"estimator": {"exact", "expectation", "histogram"},
		"lambda":    {"0.00", "0.25", "0.50", "1.00"},
		"tau":       {"0.2", "0.4", "0.6", "0.8"},
		"pi":        {"16", "64", "256"},
		"apply":     {"serial", "parallel"},
	}
	opts = map[string]map[string]sssp.Options{
		"ios": {
			"with-ios":    mk(func(o *sssp.Options) {}),
			"without-ios": mk(func(o *sssp.Options) { o.IOS = false }),
		},
		"estimator": {
			"exact":       mk(func(o *sssp.Options) { o.Estimator = sssp.EstimatorExact }),
			"expectation": mk(func(o *sssp.Options) { o.Estimator = sssp.EstimatorExpectation }),
			"histogram":   mk(func(o *sssp.Options) { o.Estimator = sssp.EstimatorHistogram }),
		},
		"lambda": {
			"0.00": mk(func(o *sssp.Options) { o.ImbalanceWeight = 0 }),
			"0.25": mk(func(o *sssp.Options) { o.ImbalanceWeight = 0.25 }),
			"0.50": mk(func(o *sssp.Options) { o.ImbalanceWeight = 0.5 }),
			"1.00": mk(func(o *sssp.Options) { o.ImbalanceWeight = 1 }),
		},
		"tau": {
			"0.2": mk(func(o *sssp.Options) { o.Tau = 0.2 }),
			"0.4": mk(func(o *sssp.Options) { o.Tau = 0.4 }),
			"0.6": mk(func(o *sssp.Options) { o.Tau = 0.6 }),
			"0.8": mk(func(o *sssp.Options) { o.Tau = 0.8 }),
		},
		"pi": {
			"16":  mk(func(o *sssp.Options) { o.HeavyThreshold = 16 }),
			"64":  mk(func(o *sssp.Options) { o.HeavyThreshold = 64 }),
			"256": mk(func(o *sssp.Options) { o.HeavyThreshold = 256 }),
		},
		"apply": {
			"serial":   mk(func(o *sssp.Options) {}),
			"parallel": mk(func(o *sssp.Options) { o.ParallelApply = true }),
		},
	}
	return groups, variants, opts
}

// Ablation measures each variant on an RMAT-1 graph at the largest
// configured rank count.
func Ablation(cfg Config) (*AblationResult, error) {
	ranks := cfg.Ranks[len(cfg.Ranks)-1]
	g, err := cfg.generate(RMAT1, ranks)
	if err != nil {
		return nil, err
	}
	roots := pickRoots(g, cfg.Roots, cfg.Seed+31)
	groups, variants, optTable := ablationVariants(cfg.Threads)
	res := &AblationResult{
		Rows:     map[string]map[string]Point{},
		Groups:   groups,
		Variants: variants,
	}
	tw := cfg.newTable("Ablation — design-choice sweeps (LB-Opt-25 base, RMAT-1)",
		"group", "variant", "GTEPS", "relaxations", "phases", "buckets")
	for _, group := range groups {
		res.Rows[group] = map[string]Point{}
		for _, variant := range variants[group] {
			p, err := cfg.measure(g, ranks, roots, optTable[group][variant])
			if err != nil {
				return nil, fmt.Errorf("ablation %s/%s: %w", group, variant, err)
			}
			res.Rows[group][variant] = p
			fmt.Fprintln(tw, row(group, variant, p.GTEPS, p.Relaxations, p.Phases, p.Buckets))
		}
	}
	return res, tw.Flush()
}
