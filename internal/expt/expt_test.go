package expt

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"parsssp/internal/sssp"
)

// ssspOptsForLatencyTest returns a deterministic multi-phase option set.
func ssspOptsForLatencyTest() sssp.Options {
	o := sssp.DelOptions(25)
	o.Threads = 1
	return o
}

// tinyConfig keeps experiment tests fast while preserving R-MAT skew.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.ScalePerRank = 9
	cfg.Ranks = []int{1, 2}
	cfg.Roots = 2
	cfg.Threads = 2
	cfg.Out = &bytes.Buffer{}
	return cfg
}

func TestConfigHelpers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ScalePerRank = 10
	cases := map[int]int{1: 10, 2: 11, 4: 12, 8: 13}
	for ranks, want := range cases {
		if got := cfg.scaleFor(ranks); got != want {
			t.Errorf("scaleFor(%d) = %d, want %d", ranks, got, want)
		}
	}
	if RMAT1.String() != "RMAT-1" || RMAT2.String() != "RMAT-2" {
		t.Error("family names wrong")
	}
}

func TestFig3Shapes(t *testing.T) {
	res, err := Fig3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []Family{RMAT1, RMAT2} {
		rows := res.Rows[fam]
		// Work-done ordering (paper §II-B): Dijkstra ≤ Del ≤ Bellman-Ford.
		if rows["BellmanFord"].Relaxations < rows["Del-25"].Relaxations {
			t.Errorf("%s: BF relaxations %v below Del-25 %v",
				fam, rows["BellmanFord"].Relaxations, rows["Del-25"].Relaxations)
		}
		// Phase ordering: Bellman-Ford ≤ Del ≤ Dijkstra.
		if rows["Dijkstra"].Phases < rows["Del-25"].Phases {
			t.Errorf("%s: Dijkstra phases %v below Del-25 %v",
				fam, rows["Dijkstra"].Phases, rows["Del-25"].Phases)
		}
		if rows["BellmanFord"].Phases > rows["Del-25"].Phases {
			t.Errorf("%s: BF phases %v above Del-25 %v",
				fam, rows["BellmanFord"].Phases, rows["Del-25"].Phases)
		}
		// Pruning cuts work below the baseline.
		if rows["Prune-25"].Relaxations >= rows["Del-25"].Relaxations {
			t.Errorf("%s: Prune-25 relaxations %v not below Del-25 %v",
				fam, rows["Prune-25"].Relaxations, rows["Del-25"].Relaxations)
		}
		// Hybrid cuts buckets.
		if rows["Hybrid-25"].Buckets >= rows["Del-25"].Buckets {
			t.Errorf("%s: Hybrid-25 buckets %v not below Del-25 %v",
				fam, rows["Hybrid-25"].Buckets, rows["Del-25"].Buckets)
		}
	}
}

func TestFig4LongPhaseDominance(t *testing.T) {
	res, err := Fig4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ShortTotal+res.LongTotal == 0 {
		t.Fatal("no relaxations recorded")
	}
	// Paper Figure 4: long-edge phases dominate on RMAT-1.
	if res.LongTotal < res.ShortTotal {
		t.Errorf("long relaxations %d below short %d; dominance inverted",
			res.LongTotal, res.ShortTotal)
	}
}

func TestFig6PullBeatsPush(t *testing.T) {
	res, err := Fig6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.PullRelax >= res.PushRelax {
		t.Errorf("heuristic run (%d relax) not below all-push (%d)",
			res.PullRelax, res.PushRelax)
	}
	pulls := 0
	for _, m := range res.HeuristicDecisions {
		if m.String() == "pull" {
			pulls++
		}
	}
	if pulls == 0 {
		t.Error("heuristic never chose pull on the clique example")
	}
}

func TestFig7CensusConsistency(t *testing.T) {
	res, err := Fig7(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Buckets) == 0 {
		t.Fatal("no buckets")
	}
	var forward, backSelf int64
	for _, b := range res.Buckets {
		forward += b.ForwardEdges
		backSelf += b.SelfEdges + b.BackwardEdges
	}
	if forward == 0 {
		t.Error("census found no forward edges")
	}
	// Self+backward relaxations are the redundant ones pruning targets;
	// on a skewed graph they must exist.
	if backSelf == 0 {
		t.Error("census found no redundant (self/backward) edges")
	}
}

func TestFig8SkewGrowth(t *testing.T) {
	cfg := tinyConfig()
	res, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.Scales) - 1
	if res.MaxDegree[RMAT1][last] <= res.MaxDegree[RMAT2][last] {
		t.Errorf("RMAT-1 max degree %d not above RMAT-2 %d at top scale",
			res.MaxDegree[RMAT1][last], res.MaxDegree[RMAT2][last])
	}
	if res.MaxDegree[RMAT1][last] <= res.MaxDegree[RMAT1][0] {
		t.Errorf("RMAT-1 max degree does not grow with scale: %v", res.MaxDegree[RMAT1])
	}
}

func TestFig9DeltaTradeoffs(t *testing.T) {
	cfg := tinyConfig()
	res, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := len(cfg.Ranks) - 1
	// Relaxations grow with Δ; buckets shrink with Δ.
	if res.Series["Del-1"][last].Relaxations > res.Series["Del-inf"][last].Relaxations {
		t.Errorf("Del-1 relaxations above Del-inf")
	}
	if res.Series["Del-1"][last].Buckets < res.Series["Del-inf"][last].Buckets {
		t.Errorf("Del-1 buckets below Del-inf")
	}
}

func TestGraph500Procedure(t *testing.T) {
	res, err := Graph500(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.HarmonicMeanTEPS <= 0 {
			t.Errorf("%s: degenerate harmonic mean", r.Family)
		}
		if !r.Validated {
			t.Errorf("%s: tree validation failed", r.Family)
		}
	}
}

func TestStrongScalingRuns(t *testing.T) {
	res, err := StrongScaling(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[0].GTEPS <= 0 {
		t.Errorf("degenerate strong-scaling points: %+v", res.Points)
	}
	if res.Efficiency[0] != 1 {
		t.Errorf("base efficiency %v, want 1", res.Efficiency[0])
	}
}

func TestPushPullMostlyOptimal(t *testing.T) {
	cfg := tinyConfig()
	cfg.Roots = 2
	res, err := PushPull(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalCount*2 < len(res.Cases) {
		t.Errorf("heuristic optimal on only %d/%d cases", res.OptimalCount, len(res.Cases))
	}
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != len(Registry) {
		t.Error("Names() inconsistent with Registry")
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Error("Names() not sorted")
		}
	}
	for _, want := range []string{"fig3", "fig10", "fig12", "pushpull", "realworld", "ablation", "graph500"} {
		if _, ok := Registry[want]; !ok {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
}

func TestTableOutputFormat(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig()
	cfg.Out = &buf
	if _, err := Fig8(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "RMAT-1") {
		t.Errorf("table output malformed:\n%s", out)
	}
}

func TestBFSComparePaperRange(t *testing.T) {
	res, err := BFSCompare(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.BFSGTEPS <= 0 || r.SSSPGTEPS <= 0 {
			t.Errorf("%s: degenerate rates %+v", r.Family, r)
		}
		// BFS must be faster (it is the computationally simpler problem);
		// the paper observes a 2–5× gap at scale, looser here.
		if r.Slowdown < 1 {
			t.Errorf("%s: SSSP faster than BFS (%v)", r.Family, r.Slowdown)
		}
	}
}

func TestExportJSON(t *testing.T) {
	cfg := tinyConfig()
	res, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/out.json"
	if err := ExportJSON(path, cfg, map[string]interface{}{"fig8": res}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Config  Config
		Results map[string]json.RawMessage
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Config.ScalePerRank != cfg.ScalePerRank {
		t.Errorf("config round trip: %+v", doc.Config)
	}
	if _, ok := doc.Results["fig8"]; !ok {
		t.Error("fig8 result missing from export")
	}
}

func TestFig10Analysis(t *testing.T) {
	cfg := tinyConfig()
	cfg.ScalePerRank = 8
	res, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Main == nil || res.DeltaSweep == nil || res.LB == nil {
		t.Fatal("missing panels")
	}
	last := len(cfg.Ranks) - 1
	// Pruning cuts relaxations at every point.
	if res.Main.Series["Prune-25"][last].Relaxations >= res.Main.Series["Del-25"][last].Relaxations {
		t.Error("Prune-25 did not cut relaxations vs Del-25")
	}
	// Hybridization collapses buckets.
	if res.Main.Series["Opt-25"][last].Buckets >= res.Main.Series["Del-25"][last].Buckets {
		t.Error("Opt-25 did not cut buckets vs Del-25")
	}
}

func TestFig11Analysis(t *testing.T) {
	cfg := tinyConfig()
	cfg.ScalePerRank = 8
	res, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LB != nil {
		t.Error("Figure 11 must not include the LB panel")
	}
	if len(res.Main.Series["Opt-25"]) != len(cfg.Ranks) {
		t.Error("missing data points")
	}
}

func TestFig12AndTable1(t *testing.T) {
	cfg := tinyConfig()
	cfg.ScalePerRank = 8
	f, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []Family{RMAT1, RMAT2} {
		for i, g := range f.GTEPS[fam] {
			if g <= 0 {
				t.Errorf("%s point %d: GTEPS %v", fam, i, g)
			}
		}
	}
	tbl, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || tbl.Rows[0].GTEPS <= 0 {
		t.Errorf("table1 rows: %+v", tbl.Rows)
	}
}

func TestRealWorldSpeedup(t *testing.T) {
	cfg := tinyConfig()
	res, err := RealWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Speedup <= 0.5 {
			t.Errorf("%s: Opt catastrophically slower than Del (%v)", r.Name, r.Speedup)
		}
	}
}

func TestAblationSweeps(t *testing.T) {
	cfg := tinyConfig()
	cfg.ScalePerRank = 8
	res, err := Ablation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, group := range res.Groups {
		for _, variant := range res.Variants[group] {
			p, ok := res.Rows[group][variant]
			if !ok || p.GTEPS <= 0 {
				t.Errorf("%s/%s: missing or degenerate point", group, variant)
			}
		}
	}
	// IOS removal must raise relaxations.
	if res.Rows["ios"]["without-ios"].Relaxations <= res.Rows["ios"]["with-ios"].Relaxations {
		t.Error("IOS ablation did not raise relaxations")
	}
}

func TestSplitScalingImbalance(t *testing.T) {
	cfg := tinyConfig()
	cfg.ScalePerRank = 8
	res, err := SplitScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Ranks {
		if res.ImbalanceNoSplit[i] < 1 || res.ImbalanceSplit[i] < 1 {
			t.Errorf("imbalance below 1 at point %d", i)
		}
		if res.Split[i].GTEPS <= 0 {
			t.Errorf("degenerate split GTEPS at point %d", i)
		}
	}
}

func TestTimelineExperiment(t *testing.T) {
	cfg := tinyConfig()
	res, err := Timeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) == 0 {
		t.Fatal("empty timeline")
	}
	var total int64
	for _, v := range res.ByKind {
		total += v
	}
	if total == 0 {
		t.Error("timeline recorded no relaxations")
	}
}

func TestRunAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	cfg := tinyConfig()
	cfg.ScalePerRank = 8
	cfg.Roots = 1
	results, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Registry) {
		t.Errorf("RunAll returned %d results for %d experiments", len(results), len(Registry))
	}
}

func TestCollectiveLatencyConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.ScalePerRank = 8
	cfg.CollectiveLatency = 200 * time.Microsecond
	g, err := cfg.generate(RMAT1, 2)
	if err != nil {
		t.Fatal(err)
	}
	roots := pickRoots(g, 1, 1)
	slow, err := cfg.measure(g, 2, roots, ssspOptsForLatencyTest())
	if err != nil {
		t.Fatal(err)
	}
	cfg.CollectiveLatency = 0
	fast, err := cfg.measure(g, 2, roots, ssspOptsForLatencyTest())
	if err != nil {
		t.Fatal(err)
	}
	if slow.TimeMS <= fast.TimeMS {
		t.Errorf("latency injection had no effect: %v <= %v", slow.TimeMS, fast.TimeMS)
	}
}
