package expt

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Runner executes one experiment, printing its tables to cfg.Out and
// returning its structured result (for JSON export and tests).
type Runner func(cfg Config) (interface{}, error)

// Registry maps experiment names (as used by cmd/bench -experiment) to
// runners.
var Registry = map[string]Runner{
	"table1":        func(c Config) (interface{}, error) { return Table1(c) },
	"fig3":          func(c Config) (interface{}, error) { return Fig3(c) },
	"fig4":          func(c Config) (interface{}, error) { return Fig4(c) },
	"fig6":          func(c Config) (interface{}, error) { return Fig6(c) },
	"fig7":          func(c Config) (interface{}, error) { return Fig7(c) },
	"fig8":          func(c Config) (interface{}, error) { return Fig8(c) },
	"fig9":          func(c Config) (interface{}, error) { return Fig9(c) },
	"fig10":         func(c Config) (interface{}, error) { return Fig10(c) },
	"fig11":         func(c Config) (interface{}, error) { return Fig11(c) },
	"fig12":         func(c Config) (interface{}, error) { return Fig12(c) },
	"pushpull":      func(c Config) (interface{}, error) { return PushPull(c) },
	"realworld":     func(c Config) (interface{}, error) { return RealWorld(c) },
	"ablation":      func(c Config) (interface{}, error) { return Ablation(c) },
	"strongscaling": func(c Config) (interface{}, error) { return StrongScaling(c) },
	"graph500":      func(c Config) (interface{}, error) { return Graph500(c) },
	"splitscaling":  func(c Config) (interface{}, error) { return SplitScaling(c) },
	"bfscompare":    func(c Config) (interface{}, error) { return BFSCompare(c) },
	"timeline":      func(c Config) (interface{}, error) { return Timeline(c) },
}

// Names returns the registered experiment names, sorted.
func Names() []string {
	names := make([]string, 0, len(Registry))
	for name := range Registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RunAll executes every experiment in name order and returns the
// structured results keyed by experiment name.
func RunAll(cfg Config) (map[string]interface{}, error) {
	results := make(map[string]interface{}, len(Registry))
	for _, name := range Names() {
		fmt.Fprintf(cfg.out(), "\n###### experiment %s ######\n", name)
		res, err := Registry[name](cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", name, err)
		}
		results[name] = res
	}
	return results, nil
}

// ExportJSON writes experiment results (as returned by RunAll or a
// single Runner) to path as indented JSON, together with the
// configuration that produced them.
func ExportJSON(path string, cfg Config, results map[string]interface{}) error {
	doc := struct {
		Config  Config                 `json:"config"`
		Results map[string]interface{} `json:"results"`
	}{cfg, results}
	// The config's writer is not serializable.
	doc.Config.Out = nil
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("expt: encoding results: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
