// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout parsssp for reproducible graph generation and
// workload construction.
//
// Two generators are provided:
//
//   - SplitMix64: a tiny stateless-feeling generator, primarily used for
//     seeding and for hash-style scrambling of vertex identifiers.
//   - Xoshiro256: xoshiro256**, a high-quality generator with an O(1)
//     Jump operation that advances the stream by 2^128 steps. Jump makes
//     it possible to carve one logical random stream into many
//     non-overlapping substreams, one per worker, so parallel graph
//     generation is deterministic regardless of the number of workers.
//
// None of the generators here are cryptographically secure; they are
// simulation-grade, matching the random processes used by the Graph500
// reference implementations.
package rng

import "math/bits"

// SplitMix64 is the SplitMix64 generator of Steele, Lea and Flood. Its
// zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the SplitMix64 finalizer to x. It is a strong 64-bit
// mixing function (a bijection) useful for scrambling vertex identifiers.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 implements the xoshiro256** 1.0 generator of Blackman and
// Vigna. It must be created with NewXoshiro256; the zero value is invalid
// (an all-zero state is a fixed point).
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a xoshiro256** generator seeded from seed via
// SplitMix64, per the authors' recommendation.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Next returns the next 64-bit value in the sequence.
func (x *Xoshiro256) Next() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (x *Xoshiro256) Float64() float64 {
	// Use the top 53 bits for a uniform double in [0,1).
	return float64(x.Next()>>11) / (1 << 53)
}

// Uint32 returns a uniformly distributed uint32.
func (x *Xoshiro256) Uint32() uint32 {
	return uint32(x.Next() >> 32)
}

// IntN returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (x *Xoshiro256) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN with non-positive n")
	}
	// Lemire's multiply-shift rejection method over 64 bits.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(x.Next(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// jumpPoly is the characteristic polynomial used by Jump; it advances the
// generator by 2^128 calls to Next.
var jumpPoly = [4]uint64{
	0x180ec6d33cfd0aba, 0xd5a61266f0c9392c,
	0xa9582618e03fc9aa, 0x39abdc4529b1661c,
}

// Jump advances the generator by 2^128 steps, equivalent to 2^128 calls
// to Next. Repeated Jump calls produce non-overlapping substreams.
func (x *Xoshiro256) Jump() {
	var s0, s1, s2, s3 uint64
	for _, jp := range jumpPoly {
		for b := uint(0); b < 64; b++ {
			if jp&(1<<b) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Next()
		}
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}

// Substream returns a new generator positioned i jumps (i.e. i*2^128
// steps) ahead of a fresh generator with the given seed. Substreams with
// distinct i never overlap for any realistic sequence length.
func Substream(seed uint64, i int) *Xoshiro256 {
	x := NewXoshiro256(seed)
	for k := 0; k < i; k++ {
		x.Jump()
	}
	return x
}
