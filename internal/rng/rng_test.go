package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(12345)
	b := NewSplitMix64(12345)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("sequences diverged at step %d", i)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the canonical SplitMix64 implementation with
	// seed 0.
	s := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSplitMix64SeedsDiffer(t *testing.T) {
	a := NewSplitMix64(1)
	b := NewSplitMix64(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestMix64Injective(t *testing.T) {
	// Mix64 is a bijection on 64 bits; on a sample domain there must be
	// no collisions.
	seen := make(map[uint64]uint64)
	for x := uint64(0); x < 1<<16; x++ {
		y := Mix64(x)
		if prev, dup := seen[y]; dup {
			t.Fatalf("Mix64 collision: %d and %d both map to %#x", prev, x, y)
		}
		seen[y] = x
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a := NewXoshiro256(99)
	b := NewXoshiro256(99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("sequences diverged at step %d", i)
		}
	}
}

func TestXoshiroFloat64Range(t *testing.T) {
	g := NewXoshiro256(7)
	for i := 0; i < 100000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 || math.IsNaN(f) {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestXoshiroFloat64Mean(t *testing.T) {
	g := NewXoshiro256(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("mean of %d uniform draws = %v, want ≈0.5", n, mean)
	}
}

func TestIntNBounds(t *testing.T) {
	g := NewXoshiro256(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := g.IntN(n)
			if v < 0 || v >= n {
				t.Fatalf("IntN(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntNUniform(t *testing.T) {
	g := NewXoshiro256(5)
	const buckets = 10
	const draws = 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[g.IntN(buckets)]++
	}
	want := draws / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d has %d draws, want ≈%d", b, c, want)
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	g := NewXoshiro256(1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("IntN(%d) did not panic", n)
				}
			}()
			g.IntN(n)
		}()
	}
}

func TestJumpDisjointStreams(t *testing.T) {
	// Substreams must not share any values over a modest horizon — a
	// overlap would mean Jump is broken.
	const per = 20000
	seen := make(map[uint64]int)
	for s := 0; s < 4; s++ {
		g := Substream(42, s)
		for i := 0; i < per; i++ {
			v := g.Next()
			if prev, dup := seen[v]; dup && prev != s {
				t.Fatalf("streams %d and %d share value %#x", prev, s, v)
			}
			seen[v] = s
		}
	}
}

func TestJumpEquivalentSeedsMatch(t *testing.T) {
	// Substream(seed, i) is pure: two computations agree.
	a := Substream(123, 3)
	b := Substream(123, 3)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("substream not reproducible at step %d", i)
		}
	}
}

func TestUint32Property(t *testing.T) {
	// Any seed yields a generator whose Uint32 stream matches the top
	// halves of its Next stream.
	f := func(seed uint64) bool {
		a := NewXoshiro256(seed)
		b := NewXoshiro256(seed)
		for i := 0; i < 50; i++ {
			if a.Uint32() != uint32(b.Next()>>32) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMix64QuickDistinct(t *testing.T) {
	// Property: distinct inputs give distinct outputs (bijectivity
	// sampled by quick).
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return Mix64(a) != Mix64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}
