package comm

import "time"

// Latent wraps a Transport and adds a fixed delay to every collective,
// emulating the network latency of a real distributed machine on an
// in-process one. The paper's bulk-synchronous overheads (each phase and
// bucket costs at least one network round trip, ~microseconds on Blue
// Gene/Q at half a microsecond base latency plus software) vanish when
// ranks are goroutines; Latent restores them so phase-count effects —
// like Dijkstra's many-buckets penalty in Figure 9 — show up in
// wall-clock measurements.
type Latent struct {
	T Transport
	// Delay is added to every Exchange, AllreduceInt64 and Barrier.
	Delay time.Duration
	// BytesPerSecond, when nonzero, adds a serialization term to
	// Exchange: payloadBytes / BytesPerSecond, modelling link bandwidth
	// on top of base latency.
	BytesPerSecond float64
}

// NewLatent wraps t with a per-collective delay.
func NewLatent(t Transport, delay time.Duration) *Latent {
	return &Latent{T: t, Delay: delay}
}

// Rank implements Transport.
func (l *Latent) Rank() int { return l.T.Rank() }

// Size implements Transport.
func (l *Latent) Size() int { return l.T.Size() }

// Exchange implements Transport with the configured delay plus the
// bandwidth serialization term for this rank's outgoing payload.
func (l *Latent) Exchange(out [][]byte) ([][]byte, error) {
	delay := l.Delay
	if l.BytesPerSecond > 0 {
		var bytes int
		for i, b := range out {
			if i != l.T.Rank() {
				bytes += len(b)
			}
		}
		delay += time.Duration(float64(bytes) / l.BytesPerSecond * float64(time.Second))
	}
	time.Sleep(delay)
	return l.T.Exchange(out)
}

// AllreduceInt64 implements Transport with the configured delay.
func (l *Latent) AllreduceInt64(vals []int64, op ReduceOp) ([]int64, error) {
	time.Sleep(l.Delay)
	return l.T.AllreduceInt64(vals, op)
}

// Barrier implements Transport with the configured delay.
func (l *Latent) Barrier() error {
	time.Sleep(l.Delay)
	return l.T.Barrier()
}

// Close implements Transport.
func (l *Latent) Close() error { return l.T.Close() }

// Abort implements Aborter, delegating to the wrapped transport.
func (l *Latent) Abort(err error) { Abort(l.T, err) }
