package comm

import "time"

// Latent wraps a Transport and adds a fixed delay to every collective,
// emulating the network latency of a real distributed machine on an
// in-process one. The paper's bulk-synchronous overheads (each phase and
// bucket costs at least one network round trip, ~microseconds on Blue
// Gene/Q at half a microsecond base latency plus software) vanish when
// ranks are goroutines; Latent restores them so phase-count effects —
// like Dijkstra's many-buckets penalty in Figure 9 — show up in
// wall-clock measurements.
type Latent struct {
	T Transport
	// Delay is added to every Exchange, AllreduceInt64 and Barrier.
	Delay time.Duration
	// BytesPerSecond, when nonzero, adds a serialization term to
	// Exchange: payloadBytes / BytesPerSecond, modelling link bandwidth
	// on top of base latency.
	BytesPerSecond float64

	// held delays received async batches: each sits here until Delay has
	// elapsed since its arrival. The latency of a one-way batch is charged
	// at the receiver — sleeping in SendBatch would block the sender,
	// which is exactly the coupling asynchronous execution removes.
	held []latentBatch
}

// latentBatch is one received async batch awaiting its release time.
type latentBatch struct {
	src     int
	payload []byte
	due     time.Time
}

// latNow is the emulator's sole wall-clock entry point. Latency
// emulation is wall-clock by definition; its readings gate only the
// moment a batch becomes visible, never what the batch contains, so
// algorithmic output stays a pure function of the inputs.
//
//parssspvet:allow nodeterminism -- latency emulation reads the clock to time delivery only; payloads are untouched
var latNow = time.Now

// NewLatent wraps t with a per-collective delay.
func NewLatent(t Transport, delay time.Duration) *Latent {
	return &Latent{T: t, Delay: delay}
}

// Rank implements Transport.
func (l *Latent) Rank() int { return l.T.Rank() }

// Size implements Transport.
func (l *Latent) Size() int { return l.T.Size() }

// Exchange implements Transport with the configured delay plus the
// bandwidth serialization term for this rank's outgoing payload.
func (l *Latent) Exchange(out [][]byte) ([][]byte, error) {
	delay := l.Delay
	if l.BytesPerSecond > 0 {
		var bytes int
		for i, b := range out {
			if i != l.T.Rank() {
				bytes += len(b)
			}
		}
		delay += time.Duration(float64(bytes) / l.BytesPerSecond * float64(time.Second))
	}
	time.Sleep(delay)
	return l.T.Exchange(out)
}

// AllreduceInt64 implements Transport with the configured delay.
func (l *Latent) AllreduceInt64(vals []int64, op ReduceOp) ([]int64, error) {
	time.Sleep(l.Delay)
	return l.T.AllreduceInt64(vals, op)
}

// Barrier implements Transport with the configured delay.
func (l *Latent) Barrier() error {
	time.Sleep(l.Delay)
	return l.T.Barrier()
}

// SendBatch implements BatchSender without delay: a one-way send costs
// the sender nothing, the latency is observed by the receiver (see held).
func (l *Latent) SendBatch(dest int, payload []byte) error {
	bs, ok := l.T.(BatchSender)
	if !ok {
		return ErrBatchUnsupported
	}
	return bs.SendBatch(dest, payload)
}

// RecvBatch implements BatchSender: batches become visible Delay after
// they arrive on the wrapped transport. A poll (wait=0) never sleeps — a
// batch still "in flight" is simply not there yet; a bounded wait sleeps
// until the first held batch is due, within the deadline.
func (l *Latent) RecvBatch(wait time.Duration) (int, []byte, bool, error) {
	bs, ok := l.T.(BatchSender)
	if !ok {
		return 0, nil, false, ErrBatchUnsupported
	}
	var deadline time.Time
	if wait > 0 {
		deadline = latNow().Add(wait)
	}
	for {
		// Drain everything already arrived, stamping each batch with its
		// release time. Constant Delay keeps the held queue due-ordered.
		for {
			src, payload, got, err := bs.RecvBatch(0)
			if err != nil {
				return 0, nil, false, err
			}
			if !got {
				break
			}
			l.held = append(l.held, latentBatch{src: src, payload: payload, due: latNow().Add(l.Delay)})
		}
		if len(l.held) > 0 {
			head := l.held[0]
			now := latNow()
			visibleInTime := !head.due.After(now) || (wait > 0 && !head.due.After(deadline))
			if !visibleInTime {
				return 0, nil, false, nil
			}
			if d := head.due.Sub(now); d > 0 {
				time.Sleep(d)
			}
			l.held[0] = latentBatch{}
			l.held = l.held[1:]
			if len(l.held) == 0 {
				l.held = nil // let the drained backing array go
			}
			return head.src, head.payload, true, nil
		}
		if wait <= 0 {
			return 0, nil, false, nil
		}
		remaining := deadline.Sub(latNow())
		if remaining <= 0 {
			return 0, nil, false, nil
		}
		src, payload, got, err := bs.RecvBatch(remaining)
		if err != nil {
			return 0, nil, false, err
		}
		if !got {
			return 0, nil, false, nil
		}
		l.held = append(l.held, latentBatch{src: src, payload: payload, due: latNow().Add(l.Delay)})
	}
}

// SupportsBatch forwards the async-batch capability probe to the wrapped
// transport.
func (l *Latent) SupportsBatch() bool { return SupportsBatch(l.T) }

// Close implements Transport.
func (l *Latent) Close() error { return l.T.Close() }

// Abort implements Aborter, delegating to the wrapped transport.
func (l *Latent) Abort(err error) { Abort(l.T, err) }
