package comm

import (
	"testing"
	"time"
)

func TestLatentForwards(t *testing.T) {
	fake := &fakeTransport{rank: 1, size: 2, inject: [][]byte{nil, []byte("x")}}
	l := NewLatent(fake, time.Millisecond)
	if l.Rank() != 1 || l.Size() != 2 {
		t.Error("Rank/Size not forwarded")
	}
	in, err := l.Exchange(make([][]byte, 2))
	if err != nil {
		t.Fatal(err)
	}
	if string(in[1]) != "x" {
		t.Errorf("payload not forwarded: %q", in[1])
	}
	res, err := l.AllreduceInt64([]int64{7}, Sum)
	if err != nil || res[0] != 7 {
		t.Errorf("allreduce not forwarded: %v %v", res, err)
	}
	if err := l.Barrier(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLatentDelays(t *testing.T) {
	fake := &fakeTransport{rank: 0, size: 1, inject: [][]byte{nil}}
	const delay = 20 * time.Millisecond
	l := NewLatent(fake, delay)
	start := time.Now()
	if _, err := l.Exchange(make([][]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("Exchange returned after %v, want >= %v", elapsed, delay)
	}
}

func TestLatentBandwidthTerm(t *testing.T) {
	fake := &fakeTransport{rank: 0, size: 2, inject: [][]byte{nil, nil}}
	l := &Latent{T: fake, BytesPerSecond: 1e6} // 1 MB/s
	out := make([][]byte, 2)
	out[1] = make([]byte, 50_000) // 50 ms at 1 MB/s
	start := time.Now()
	if _, err := l.Exchange(out); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("bandwidth term not applied: %v", elapsed)
	}
	// Self-delivery must be free.
	out = make([][]byte, 2)
	out[0] = make([]byte, 1_000_000)
	start = time.Now()
	if _, err := l.Exchange(out); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("self-delivery charged bandwidth: %v", elapsed)
	}
}
