package comm

import (
	"reflect"
	"testing"
)

func TestReduceOpApply(t *testing.T) {
	cases := []struct {
		op   ReduceOp
		a, b []int64
		want []int64
	}{
		{Sum, []int64{1, 2, 3}, []int64{4, 5, 6}, []int64{5, 7, 9}},
		{Min, []int64{1, 9, -3}, []int64{4, 5, -6}, []int64{1, 5, -6}},
		{Max, []int64{1, 9, -3}, []int64{4, 5, -6}, []int64{4, 9, -3}},
		{Sum, nil, nil, nil},
	}
	for _, c := range cases {
		a := append([]int64(nil), c.a...)
		got := c.op.Apply(a, c.b)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%v.Apply(%v, %v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestReduceOpString(t *testing.T) {
	if Sum.String() != "sum" || Min.String() != "min" || Max.String() != "max" {
		t.Error("ReduceOp names wrong")
	}
	if ReduceOp(9).String() == "" {
		t.Error("unknown op stringer empty")
	}
}

// fakeTransport counts nothing itself; used to test the Counting wrapper.
type fakeTransport struct {
	rank, size int
	lastOut    [][]byte
	inject     [][]byte
}

func (f *fakeTransport) Rank() int { return f.rank }
func (f *fakeTransport) Size() int { return f.size }
func (f *fakeTransport) Exchange(out [][]byte) ([][]byte, error) {
	f.lastOut = out
	return f.inject, nil
}
func (f *fakeTransport) AllreduceInt64(vals []int64, op ReduceOp) ([]int64, error) {
	return vals, nil
}
func (f *fakeTransport) Barrier() error { return nil }
func (f *fakeTransport) Close() error   { return nil }

func TestCountingExchange(t *testing.T) {
	fake := &fakeTransport{rank: 1, size: 3,
		inject: [][]byte{make([]byte, 10), nil, make([]byte, 4)}}
	c := NewCounting(fake)
	out := [][]byte{make([]byte, 7), make([]byte, 100), make([]byte, 0)}
	if _, err := c.Exchange(out); err != nil {
		t.Fatal(err)
	}
	// Rank 1's own 100-byte buffer is local delivery, not traffic.
	if c.Stats.BytesSent != 7 {
		t.Errorf("BytesSent = %d, want 7", c.Stats.BytesSent)
	}
	if c.Stats.MessagesSent != 1 {
		t.Errorf("MessagesSent = %d, want 1", c.Stats.MessagesSent)
	}
	if c.Stats.BytesReceived != 14 {
		t.Errorf("BytesReceived = %d, want 14", c.Stats.BytesReceived)
	}
	if c.Stats.ExchangeCalls != 1 {
		t.Errorf("ExchangeCalls = %d, want 1", c.Stats.ExchangeCalls)
	}
}

func TestCountingCollectives(t *testing.T) {
	c := NewCounting(&fakeTransport{rank: 0, size: 1, inject: [][]byte{nil}})
	if _, err := c.AllreduceInt64([]int64{1}, Sum); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if c.Stats.AllreduceCalls != 1 || c.Stats.BarrierCalls != 1 {
		t.Errorf("collective counters %+v", c.Stats)
	}
	if c.Rank() != 0 || c.Size() != 1 {
		t.Error("Rank/Size not forwarded")
	}
	if err := c.Close(); err != nil {
		t.Error(err)
	}
}
