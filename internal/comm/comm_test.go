package comm

import (
	"reflect"
	"testing"
)

func TestReduceOpApply(t *testing.T) {
	cases := []struct {
		op   ReduceOp
		a, b []int64
		want []int64
	}{
		{Sum, []int64{1, 2, 3}, []int64{4, 5, 6}, []int64{5, 7, 9}},
		{Min, []int64{1, 9, -3}, []int64{4, 5, -6}, []int64{1, 5, -6}},
		{Max, []int64{1, 9, -3}, []int64{4, 5, -6}, []int64{4, 9, -3}},
		{Sum, nil, nil, nil},
	}
	for _, c := range cases {
		a := append([]int64(nil), c.a...)
		got := c.op.Apply(a, c.b)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%v.Apply(%v, %v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestReduceOpString(t *testing.T) {
	if Sum.String() != "sum" || Min.String() != "min" || Max.String() != "max" {
		t.Error("ReduceOp names wrong")
	}
	if ReduceOp(9).String() == "" {
		t.Error("unknown op stringer empty")
	}
}

// fakeTransport counts nothing itself; used to test the Counting wrapper.
type fakeTransport struct {
	rank, size int
	lastOut    [][]byte
	inject     [][]byte
}

func (f *fakeTransport) Rank() int { return f.rank }
func (f *fakeTransport) Size() int { return f.size }
func (f *fakeTransport) Exchange(out [][]byte) ([][]byte, error) {
	f.lastOut = out
	return f.inject, nil
}
func (f *fakeTransport) AllreduceInt64(vals []int64, op ReduceOp) ([]int64, error) {
	return vals, nil
}
func (f *fakeTransport) Barrier() error { return nil }
func (f *fakeTransport) Close() error   { return nil }

func TestCountingExchange(t *testing.T) {
	fake := &fakeTransport{rank: 1, size: 3,
		inject: [][]byte{make([]byte, 10), nil, make([]byte, 4)}}
	c := NewCounting(fake)
	out := [][]byte{make([]byte, 7), make([]byte, 100), make([]byte, 0)}
	if _, err := c.Exchange(out); err != nil {
		t.Fatal(err)
	}
	// Rank 1's own 100-byte buffer is local delivery, not traffic.
	if c.Stats.BytesSent != 7 {
		t.Errorf("BytesSent = %d, want 7", c.Stats.BytesSent)
	}
	if c.Stats.MessagesSent != 1 {
		t.Errorf("MessagesSent = %d, want 1", c.Stats.MessagesSent)
	}
	if c.Stats.BytesReceived != 14 {
		t.Errorf("BytesReceived = %d, want 14", c.Stats.BytesReceived)
	}
	if c.Stats.ExchangeCalls != 1 {
		t.Errorf("ExchangeCalls = %d, want 1", c.Stats.ExchangeCalls)
	}
}

func TestCountingCollectives(t *testing.T) {
	c := NewCounting(&fakeTransport{rank: 0, size: 1, inject: [][]byte{nil}})
	if _, err := c.AllreduceInt64([]int64{1}, Sum); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if c.Stats.AllreduceCalls != 1 || c.Stats.BarrierCalls != 1 {
		t.Errorf("collective counters %+v", c.Stats)
	}
	if c.Rank() != 0 || c.Size() != 1 {
		t.Error("Rank/Size not forwarded")
	}
	if err := c.Close(); err != nil {
		t.Error(err)
	}
}

// fakeGatherTransport adds ExchangeV so the Counting wrapper's
// passthrough path can be observed.
type fakeGatherTransport struct {
	fakeTransport
	lastSegs [][][]byte
}

func (f *fakeGatherTransport) ExchangeV(out [][][]byte) ([][]byte, error) {
	f.lastSegs = out
	return f.inject, nil
}

func TestCountingExchangeVFallback(t *testing.T) {
	// The wrapped transport has no ExchangeV: the wrapper must
	// concatenate the segments into pooled buffers and use Exchange,
	// counting traffic on the segment totals.
	fake := &fakeTransport{rank: 0, size: 2,
		inject: [][]byte{nil, make([]byte, 5)}}
	c := NewCounting(fake)
	out := [][][]byte{
		{{1, 2}, nil, {3}},    // self: not traffic
		{{4}, {5, 6, 7}, nil}, // peer: 4 bytes
	}
	in, err := c.ExchangeV(out)
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte{1, 2, 3}; !reflect.DeepEqual(fake.lastOut[0], want) {
		t.Errorf("merged self row = %v, want %v", fake.lastOut[0], want)
	}
	if want := []byte{4, 5, 6, 7}; !reflect.DeepEqual(fake.lastOut[1], want) {
		t.Errorf("merged peer row = %v, want %v", fake.lastOut[1], want)
	}
	if c.Stats.BytesSent != 4 || c.Stats.MessagesSent != 1 {
		t.Errorf("sent counters = %d bytes / %d messages, want 4 / 1",
			c.Stats.BytesSent, c.Stats.MessagesSent)
	}
	if c.Stats.BytesReceived != 5 || c.Stats.ExchangeCalls != 1 {
		t.Errorf("recv counters = %d bytes / %d calls, want 5 / 1",
			c.Stats.BytesReceived, c.Stats.ExchangeCalls)
	}
	if len(in) != 2 {
		t.Errorf("delivered %d rows, want 2", len(in))
	}
	// The merge buffers are pooled: a second call must reuse them.
	first := &c.merged[0][:1][0]
	if _, err := c.ExchangeV(out); err != nil {
		t.Fatal(err)
	}
	if &c.merged[0][:1][0] != first {
		t.Error("fallback merge buffer reallocated on second call")
	}
}

func TestCountingExchangeVPassthrough(t *testing.T) {
	fake := &fakeGatherTransport{fakeTransport: fakeTransport{rank: 1, size: 2,
		inject: [][]byte{make([]byte, 9), nil}}}
	c := NewCounting(fake)
	out := [][][]byte{{{1, 2, 3}}, {{4, 5}}}
	if _, err := c.ExchangeV(out); err != nil {
		t.Fatal(err)
	}
	if fake.lastOut != nil {
		t.Error("fallback Exchange used despite GatherExchanger support")
	}
	if len(fake.lastSegs) != 2 || &fake.lastSegs[0][0][0] != &out[0][0][0] {
		t.Error("segments not passed through unmodified")
	}
	if c.Stats.BytesSent != 3 || c.Stats.BytesReceived != 9 {
		t.Errorf("counters = %d sent / %d received, want 3 / 9",
			c.Stats.BytesSent, c.Stats.BytesReceived)
	}
}
