package comm

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"
)

// closableFake extends fakeTransport with Close tracking, so crash
// injection can be observed.
type closableFake struct {
	fakeTransport
	closed bool
}

func (c *closableFake) Close() error {
	c.closed = true
	return nil
}

func TestNewFaultyValidation(t *testing.T) {
	fake := &fakeTransport{rank: 0, size: 1}
	if _, err := NewFaulty(fake, Fault{Collective: -1}); err == nil {
		t.Error("negative collective index accepted")
	}
	if _, err := NewFaulty(fake, Fault{Collective: 3}, Fault{Collective: 3}); err == nil {
		t.Error("duplicate collective index accepted")
	}
	f, err := NewFaulty(fake, Fault{Collective: 0}, Fault{Collective: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f.Rank() != 0 || f.Size() != 1 {
		t.Error("Rank/Size not forwarded")
	}
}

func TestFaultErrorFiresAtIndex(t *testing.T) {
	fake := &fakeTransport{rank: 0, size: 1, inject: [][]byte{nil}}
	f, err := NewFaulty(fake, Fault{Collective: 1, Kind: FaultError})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Exchange(make([][]byte, 1)); err != nil {
		t.Fatalf("collective 0 faulted: %v", err)
	}
	_, err = f.Exchange(make([][]byte, 1))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("collective 1 error = %v, want ErrInjected", err)
	}
	if _, err := f.Exchange(make([][]byte, 1)); err != nil {
		t.Fatalf("collective 2 faulted: %v", err)
	}
	if f.Collectives() != 3 {
		t.Errorf("Collectives() = %d, want 3", f.Collectives())
	}
}

func TestFaultCrashClosesTransport(t *testing.T) {
	fake := &closableFake{fakeTransport: fakeTransport{rank: 0, size: 1}}
	f, err := NewFaulty(fake, Fault{Collective: 0, Kind: FaultCrash})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Barrier(); !errors.Is(err, ErrInjected) {
		t.Fatalf("crash error = %v, want ErrInjected", err)
	}
	if !fake.closed {
		t.Error("FaultCrash did not close the wrapped transport")
	}
}

func TestFaultStallDelays(t *testing.T) {
	fake := &fakeTransport{rank: 0, size: 1}
	const stall = 30 * time.Millisecond
	f, err := NewFaulty(fake, Fault{Collective: 0, Kind: FaultStall, Stall: stall})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := f.Barrier(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Errorf("stalled barrier returned after %v, want >= %v", elapsed, stall)
	}
}

func TestFaultTruncateExchange(t *testing.T) {
	fake := &fakeTransport{rank: 0, size: 2, inject: make([][]byte, 2)}
	f, err := NewFaulty(fake, Fault{Collective: 0, Kind: FaultTruncate})
	if err != nil {
		t.Fatal(err)
	}
	orig := []byte{1, 2, 3, 4}
	if _, err := f.Exchange([][]byte{append([]byte(nil), orig...), orig}); err != nil {
		t.Fatal(err)
	}
	if got := fake.lastOut[1]; !bytes.Equal(got, orig[:3]) {
		t.Errorf("truncated payload = %v, want %v", got, orig[:3])
	}
	if !bytes.Equal(orig, []byte{1, 2, 3, 4}) {
		t.Error("caller's buffer was mutated in place")
	}
}

func TestFaultCorruptExchange(t *testing.T) {
	fake := &fakeTransport{rank: 0, size: 2, inject: make([][]byte, 2)}
	f, err := NewFaulty(fake, Fault{Collective: 0, Kind: FaultCorrupt})
	if err != nil {
		t.Fatal(err)
	}
	orig := []byte{1, 2, 3}
	if _, err := f.Exchange([][]byte{nil, orig}); err != nil {
		t.Fatal(err)
	}
	want := []byte{1 ^ 0xA5, 2 ^ 0xA5, 3 ^ 0xA5}
	if got := fake.lastOut[1]; !bytes.Equal(got, want) {
		t.Errorf("corrupted payload = %v, want %v", got, want)
	}
	if !bytes.Equal(orig, []byte{1, 2, 3}) {
		t.Error("caller's buffer was mutated in place")
	}
}

func TestFaultTruncateAllreduce(t *testing.T) {
	fake := &fakeTransport{rank: 0, size: 2}
	f, err := NewFaulty(fake, Fault{Collective: 0, Kind: FaultTruncate},
		Fault{Collective: 1, Kind: FaultTruncate})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.AllreduceInt64([]int64{7, 8}, Sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("truncated allreduce kept %d elements, want 1", len(res))
	}
	// An empty vector has nothing to truncate; the fault degrades to an
	// error rather than silently passing.
	if _, err := f.AllreduceInt64(nil, Sum); !errors.Is(err, ErrInjected) {
		t.Errorf("empty-vector truncate = %v, want ErrInjected", err)
	}
}

func TestFaultCorruptDegradesOnAllreduceAndBarrier(t *testing.T) {
	fake := &fakeTransport{rank: 0, size: 1}
	f, err := NewFaulty(fake,
		Fault{Collective: 0, Kind: FaultCorrupt},
		Fault{Collective: 1, Kind: FaultTruncate})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AllreduceInt64([]int64{1}, Sum); !errors.Is(err, ErrInjected) {
		t.Errorf("corrupt allreduce = %v, want ErrInjected", err)
	}
	if err := f.Barrier(); !errors.Is(err, ErrInjected) {
		t.Errorf("truncate barrier = %v, want ErrInjected", err)
	}
}

func TestFaultyExchangeVFlattens(t *testing.T) {
	// fakeTransport is not a GatherExchanger, so ExchangeV must flatten;
	// a payload fault must damage the flattened logical payload.
	fake := &fakeTransport{rank: 0, size: 1, inject: make([][]byte, 1)}
	f, err := NewFaulty(fake, Fault{Collective: 1, Kind: FaultTruncate})
	if err != nil {
		t.Fatal(err)
	}
	segs := [][][]byte{{{1, 2}, {3}}}
	if _, err := f.ExchangeV(segs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fake.lastOut[0], []byte{1, 2, 3}) {
		t.Errorf("clean ExchangeV sent %v", fake.lastOut[0])
	}
	if _, err := f.ExchangeV(segs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fake.lastOut[0], []byte{1, 2}) {
		t.Errorf("faulted ExchangeV sent %v, want truncated {1 2}", fake.lastOut[0])
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	const seed, n, span = 42, 4, 50
	a := FaultPlan(seed, n, span, time.Second)
	b := FaultPlan(seed, n, span, time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed gave different plans:\n%v\n%v", a, b)
	}
	if len(a) != n {
		t.Fatalf("plan has %d faults, want %d", len(a), n)
	}
	seen := make(map[int]bool)
	for i, flt := range a {
		if flt.Collective < 0 || flt.Collective >= span {
			t.Errorf("fault %d at %d outside [0,%d)", i, flt.Collective, span)
		}
		if seen[flt.Collective] {
			t.Errorf("duplicate fault index %d", flt.Collective)
		}
		seen[flt.Collective] = true
		if i > 0 && a[i-1].Collective > flt.Collective {
			t.Error("plan not sorted by collective index")
		}
		if flt.Stall != time.Second {
			t.Errorf("fault %d stall = %v", i, flt.Stall)
		}
	}
	// Restricted kinds are honored, and n is clamped to the span.
	only := FaultPlan(7, 10, 5, 0, FaultCrash)
	if len(only) != 5 {
		t.Errorf("clamped plan has %d faults, want 5", len(only))
	}
	for _, flt := range only {
		if flt.Kind != FaultCrash {
			t.Errorf("restricted plan drew kind %v", flt.Kind)
		}
	}
}

func TestFaultKindString(t *testing.T) {
	kinds := map[FaultKind]string{
		FaultError:    "error",
		FaultCrash:    "crash",
		FaultStall:    "stall",
		FaultTruncate: "truncate",
		FaultCorrupt:  "corrupt",
		FaultKind(99): "FaultKind(99)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
