package tcptransport

import (
	"bytes"
	"fmt"

	"testing"

	"parsssp/internal/comm"
)

// stressPattern fills a deterministic payload so receivers can verify
// sender, round and byte-level integrity of every frame.
func stressPattern(buf []byte, src, dst, round int) []byte {
	seed := byte(src*31 + dst*7 + round)
	for i := range buf {
		buf[i] = seed + byte(i)
	}
	return buf
}

// TestStressOverlappedCollectives hammers the overlapped data path: 4
// ranks interleave Exchange, gathered ExchangeV, Allreduce and Barrier
// collectives for many rounds, with per-destination payloads alternating
// between empty, small, and >1MiB frames. Combined with the recycled
// read buffers and persistent writer goroutines this is the test that
// must stay clean under -race (see `make race`).
func TestStressOverlappedCollectives(t *testing.T) {
	const (
		size   = 4
		rounds = 12
		big    = 1<<20 + 12345 // >1MiB, not a round number
	)
	runMachine(t, size, func(tr comm.Transport) error {
		me := tr.Rank()
		ge := tr.(comm.GatherExchanger)
		out := make([][]byte, size)
		// One buffer per destination: the writer goroutines read from
		// every destination's payload concurrently, so they must not
		// share storage.
		bufs := make([][]byte, size)
		for dst := range bufs {
			bufs[dst] = make([]byte, big)
		}
		for round := 0; round < rounds; round++ {
			// Vary the shape per (sender, dest, round): empty, small, or
			// large, so writers see zero-length frames between huge ones.
			for dst := 0; dst < size; dst++ {
				switch (me + dst + round) % 3 {
				case 0:
					out[dst] = nil
				case 1:
					out[dst] = stressPattern(bufs[dst][:128], me, dst, round)
				default:
					out[dst] = stressPattern(bufs[dst][:big], me, dst, round)
				}
			}
			var in [][]byte
			var err error
			if round%2 == 0 {
				in, err = tr.Exchange(out)
			} else {
				// Odd rounds go through the gathered path, splitting each
				// payload into two segments (empty payloads send no
				// segments at all).
				vout := make([][][]byte, size)
				for dst := 0; dst < size; dst++ {
					p := out[dst]
					if len(p) == 0 {
						continue
					}
					h := (len(p) + 1) / 2
					vout[dst] = [][]byte{p[:h], p[h:]}
				}
				in, err = ge.ExchangeV(vout)
			}
			if err != nil {
				return err
			}
			for src := 0; src < size; src++ {
				var wantLen int
				switch (src + me + round) % 3 {
				case 0:
					wantLen = 0
				case 1:
					wantLen = 128
				default:
					wantLen = big
				}
				if len(in[src]) != wantLen {
					return fmt.Errorf("round %d: frame from %d has %d bytes, want %d",
						round, src, len(in[src]), wantLen)
				}
				if wantLen > 0 {
					want := stressPattern(make([]byte, wantLen), src, me, round)
					if !bytes.Equal(in[src], want) {
						return fmt.Errorf("round %d: frame from %d corrupted", round, src)
					}
				}
			}
			// Interleave the other collectives so frame matching has to
			// survive mixed traffic on the same connections.
			sum, err := tr.AllreduceInt64([]int64{int64(me), 1}, comm.Sum)
			if err != nil {
				return err
			}
			if sum[0] != 0+1+2+3 || sum[1] != size {
				return fmt.Errorf("round %d: allreduce = %v", round, sum)
			}
			if err := tr.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

// TestExchangeVMatchesExchange checks that the gathered path delivers the
// concatenation of its segments, including the zero-copy self row.
func TestExchangeVMatchesExchange(t *testing.T) {
	const size = 3
	runMachine(t, size, func(tr comm.Transport) error {
		me := tr.Rank()
		ge := tr.(comm.GatherExchanger)
		vout := make([][][]byte, size)
		for dst := 0; dst < size; dst++ {
			vout[dst] = [][]byte{
				{byte(me), byte(dst)},
				nil,
				{0xEE, byte(me + dst)},
			}
		}
		in, err := ge.ExchangeV(vout)
		if err != nil {
			return err
		}
		for src := 0; src < size; src++ {
			want := []byte{byte(src), byte(me), 0xEE, byte(src + me)}
			if !bytes.Equal(in[src], want) {
				return fmt.Errorf("from %d: got %v want %v", src, in[src], want)
			}
		}
		return nil
	})
}
