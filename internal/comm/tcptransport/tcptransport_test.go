package tcptransport

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"parsssp/internal/comm"
)

// freeAddrs reserves n distinct loopback ports and returns them as
// host:port strings. The listeners are closed, so a tiny race window
// exists; tests retry the machine once if setup fails.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// runMachine starts a full mesh of size ranks in-process and runs fn on
// each.
func runMachine(t *testing.T, size int, fn func(tr comm.Transport) error) {
	t.Helper()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		addrs := freeAddrs(t, size)
		trs := make([]*Transport, size)
		setupErrs := make([]error, size)
		var wg sync.WaitGroup
		for r := 0; r < size; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				trs[r], setupErrs[r] = New(Config{
					Addrs: addrs, Rank: r,
					DialTimeout: 5 * time.Second,
				})
			}(r)
		}
		wg.Wait()
		lastErr = nil
		for _, err := range setupErrs {
			if err != nil {
				lastErr = err
			}
		}
		if lastErr != nil {
			for _, tr := range trs {
				if tr != nil {
					tr.Close()
				}
			}
			continue // port-reuse race; retry with fresh ports
		}
		errs := make([]error, size)
		for r := 0; r < size; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if err := fn(trs[r]); err != nil {
					errs[r] = err
					// This rank abandons the lockstep collective
					// sequence; close its transport so peers blocked in
					// a collective fail fast instead of hanging the
					// test until the -timeout goroutine dump.
					trs[r].Close()
				}
			}(r)
		}
		wg.Wait()
		for _, tr := range trs {
			tr.Close()
		}
		var failures []string
		for r, err := range errs {
			if err != nil {
				failures = append(failures, fmt.Sprintf("rank %d: %v", r, err))
			}
		}
		if len(failures) > 0 {
			t.Fatalf("%s", strings.Join(failures, "\n"))
		}
		return
	}
	t.Fatalf("machine setup failed twice: %v", lastErr)
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Addrs: []string{"a", "b"}, Rank: 5}); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestSingleRankNoSockets(t *testing.T) {
	tr, err := New(Config{Addrs: []string{"127.0.0.1:1"}, Rank: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	in, err := tr.Exchange([][]byte{[]byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	if string(in[0]) != "hi" {
		t.Errorf("self delivery %q", in[0])
	}
}

func TestExchangeTwoRanks(t *testing.T) {
	runMachine(t, 2, func(tr comm.Transport) error {
		me := tr.Rank()
		out := make([][]byte, 2)
		out[1-me] = []byte(fmt.Sprintf("payload-from-%d", me))
		in, err := tr.Exchange(out)
		if err != nil {
			return err
		}
		want := fmt.Sprintf("payload-from-%d", 1-me)
		if string(in[1-me]) != want {
			return fmt.Errorf("got %q, want %q", in[1-me], want)
		}
		return nil
	})
}

func TestExchangeFourRanksManyRounds(t *testing.T) {
	const size = 4
	runMachine(t, size, func(tr comm.Transport) error {
		me := tr.Rank()
		for round := 0; round < 50; round++ {
			out := make([][]byte, size)
			for dst := range out {
				out[dst] = []byte{byte(me), byte(dst), byte(round)}
			}
			in, err := tr.Exchange(out)
			if err != nil {
				return err
			}
			for src := range in {
				if in[src][0] != byte(src) || in[src][1] != byte(me) || in[src][2] != byte(round) {
					return fmt.Errorf("round %d: bad frame from %d: %v", round, src, in[src])
				}
			}
		}
		return nil
	})
}

func TestLargeFrames(t *testing.T) {
	runMachine(t, 2, func(tr comm.Transport) error {
		me := tr.Rank()
		big := make([]byte, 1<<20)
		for i := range big {
			big[i] = byte(me + i)
		}
		out := make([][]byte, 2)
		out[1-me] = big
		in, err := tr.Exchange(out)
		if err != nil {
			return err
		}
		peer := 1 - me
		if len(in[peer]) != len(big) {
			return fmt.Errorf("got %d bytes", len(in[peer]))
		}
		for i := 0; i < len(big); i += 99991 {
			if in[peer][i] != byte(peer+i) {
				return fmt.Errorf("corruption at %d", i)
			}
		}
		return nil
	})
}

func TestAllreduceAndBarrier(t *testing.T) {
	const size = 3
	runMachine(t, size, func(tr comm.Transport) error {
		me := int64(tr.Rank())
		sum, err := tr.AllreduceInt64([]int64{me, -me}, comm.Sum)
		if err != nil {
			return err
		}
		if sum[0] != 3 || sum[1] != -3 {
			return fmt.Errorf("sum = %v", sum)
		}
		min, err := tr.AllreduceInt64([]int64{me}, comm.Min)
		if err != nil {
			return err
		}
		if min[0] != 0 {
			return fmt.Errorf("min = %v", min)
		}
		return tr.Barrier()
	})
}

func TestCloseIdempotent(t *testing.T) {
	tr, err := New(Config{Addrs: []string{"127.0.0.1:1"}, Rank: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDialTimeout(t *testing.T) {
	// Rank 1 never starts; rank 0 must give up within the dial timeout.
	addrs := freeAddrs(t, 2)
	start := time.Now()
	_, err := New(Config{
		Addrs: addrs, Rank: 0,
		DialTimeout: 300 * time.Millisecond,
		DialRetry:   50 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("connected to a non-existent peer")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial timeout took %v", elapsed)
	}
}

func TestExchangeAfterPeerClose(t *testing.T) {
	// When a peer dies, collectives must fail with an error rather than
	// hang forever or panic.
	addrs := freeAddrs(t, 2)
	trs := make([]*Transport, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = New(Config{Addrs: addrs, Rank: r, DialTimeout: 5 * time.Second})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Skipf("setup race on rank %d: %v", r, err) // port reuse; covered elsewhere
		}
	}
	trs[1].Close()
	out := make([][]byte, 2)
	out[1] = []byte("hello")
	if _, err := trs[0].Exchange(out); err == nil {
		t.Error("Exchange against a closed peer succeeded")
	}
	trs[0].Close()
}

func TestExchangeWrongBufferCount(t *testing.T) {
	tr, err := New(Config{Addrs: []string{"127.0.0.1:1"}, Rank: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Exchange(make([][]byte, 3)); err == nil {
		t.Error("wrong buffer count accepted")
	}
}
