package tcptransport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"parsssp/internal/comm"
)

func TestBatchOverSockets(t *testing.T) {
	runMachine(t, 3, func(tr comm.Transport) error {
		bs := tr.(comm.BatchSender)
		// Every rank sends one tagged batch to every peer (and itself).
		for dest := 0; dest < tr.Size(); dest++ {
			payload := []byte(fmt.Sprintf("from=%d to=%d", tr.Rank(), dest))
			if err := bs.SendBatch(dest, payload); err != nil {
				return err
			}
		}
		seen := make(map[int]bool)
		for len(seen) < tr.Size() {
			src, payload, ok, err := bs.RecvBatch(5 * time.Second)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("rank %d: starved with %d/%d batches", tr.Rank(), len(seen), tr.Size())
			}
			want := []byte(fmt.Sprintf("from=%d to=%d", src, tr.Rank()))
			if !bytes.Equal(payload, want) {
				return fmt.Errorf("rank %d: got %q from %d, want %q", tr.Rank(), payload, src, want)
			}
			if seen[src] {
				return fmt.Errorf("rank %d: duplicate batch from %d", tr.Rank(), src)
			}
			seen[src] = true
		}
		return tr.Barrier()
	})
}

func TestBatchInterleavedWithCollectives(t *testing.T) {
	// Async frames and lockstep collective frames share each socket; the
	// ctrlAsync routing must keep them apart under sustained interleaving.
	const rounds = 20
	runMachine(t, 3, func(tr comm.Transport) error {
		bs := tr.(comm.BatchSender)
		next := (tr.Rank() + 1) % tr.Size()
		got := 0
		for i := 0; i < rounds; i++ {
			if err := bs.SendBatch(next, []byte{byte(i)}); err != nil {
				return err
			}
			sums, err := tr.AllreduceInt64([]int64{int64(i)}, comm.Sum)
			if err != nil {
				return err
			}
			if sums[0] != int64(i*tr.Size()) {
				return fmt.Errorf("allreduce polluted: got %d at round %d", sums[0], i)
			}
			for {
				_, _, ok, err := bs.RecvBatch(0)
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				got++
			}
		}
		// Ring topology: exactly one predecessor sends rounds batches.
		for got < rounds {
			_, _, ok, err := bs.RecvBatch(5 * time.Second)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("rank %d: starved at %d/%d", tr.Rank(), got, rounds)
			}
			got++
		}
		return tr.Barrier()
	})
}

func TestBatchLargePayload(t *testing.T) {
	runMachine(t, 2, func(tr comm.Transport) error {
		bs := tr.(comm.BatchSender)
		const n = 1 << 20
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		other := 1 - tr.Rank()
		if err := bs.SendBatch(other, payload); err != nil {
			return err
		}
		src, got, ok, err := bs.RecvBatch(10 * time.Second)
		if err != nil || !ok {
			return fmt.Errorf("recv: ok=%v err=%v", ok, err)
		}
		if src != other || !bytes.Equal(got, payload) {
			return fmt.Errorf("large payload damaged in flight (src=%d len=%d)", src, len(got))
		}
		return tr.Barrier()
	})
}

func TestBatchCloseWakesReceiver(t *testing.T) {
	pair := newPair(t, 0)
	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _, err := pair[1].RecvBatch(time.Minute)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	pair[1].Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("RecvBatch returned clean after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the blocked batch receiver")
	}
	wg.Wait()
	pair[0].Close()
}
