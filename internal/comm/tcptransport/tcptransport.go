// Package tcptransport implements comm.Transport over TCP sockets,
// forming a real multi-process message-passing machine on commodity
// networks. It is the stand-in for the MPI/SPI layer of the paper's Blue
// Gene/Q implementation (no MPI ecosystem exists for Go, so the RPC layer
// is rolled by hand).
//
// Topology is a full mesh: every pair of ranks shares one TCP connection.
// Rank identities are established by a fixed-size handshake; afterwards
// all traffic is length-prefixed binary frames. The collectives are
// implemented directly on the mesh:
//
//   - Exchange / ExchangeV: write one frame to every peer, read one frame
//     from every peer. TCP ordering plus the lockstep collective
//     discipline make frame matching trivial — the k-th frame on a
//     connection belongs to the k-th collective.
//   - AllreduceInt64: an allgather of the encoded vectors (an Exchange of
//     the same payload to all peers) followed by a local reduction.
//   - Barrier: a zero-length Allreduce.
//
// The data path is built for overlap and reuse:
//
//   - One persistent writer goroutine per peer. A collective enqueues all
//     outgoing frames and immediately starts draining its inboxes, so the
//     P−1 sends proceed concurrently with each other and with the
//     receives — the all-to-all is never serialized on a single socket's
//     flow control.
//   - Frames are written with net.Buffers (writev): the length prefix and
//     the payload segments of a gathered exchange go out in one vectored
//     syscall, with no sender-side concatenation copy.
//   - Frame read buffers are recycled per peer. The Transport contract
//     gives a received buffer to the caller only until its next
//     collective call, at which point the buffer returns to the peer's
//     free list and the read loop reuses it. Steady-state exchanges
//     allocate nothing.
//
// Frame format (little-endian): u32 payload length, then payload. The
// handshake frame is: u32 magic, u32 rank.
package tcptransport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"parsssp/internal/comm"
)

const handshakeMagic = 0x50415253 // "PARS"

// maxFrame bounds a single frame payload; larger Exchange buffers are an
// error (they indicate a runaway workload rather than a legitimate need).
const maxFrame = 1 << 30

// Config describes the machine: one address per rank. Rank i listens on
// Addrs[i]; all ranks must share an identical Addrs slice.
type Config struct {
	// Addrs[i] is the host:port endpoint of rank i.
	Addrs []string
	// Rank is this process's rank.
	Rank int
	// DialTimeout bounds connection establishment to each peer; zero
	// means 10 seconds.
	DialTimeout time.Duration
	// DialRetry is the interval between connection attempts while peers
	// start up; zero means 50ms.
	DialRetry time.Duration
}

// Transport is a TCP-backed comm.Transport endpoint. It also implements
// comm.GatherExchanger. After any collective returns an error the
// transport is dead and must be Closed; the lockstep frame matching
// cannot be resynchronized.
type Transport struct {
	rank  int
	size  int
	ln    net.Listener
	conns []net.Conn // conns[p] is the connection to rank p; nil for self
	inbox []chan frame

	// Per-peer writer machinery: sendq carries one prepared frame per
	// collective to the peer's writer goroutine, sendDone returns its
	// write error. Both are capacity-1; the collective discipline admits
	// at most one outstanding frame per peer.
	sendq    []chan net.Buffers
	sendDone []chan error
	// hdrs[p] is the reusable length-prefix storage of the in-flight
	// frame to p; sendBufs[p] the reusable vectored-write segment list.
	hdrs     [][4]byte
	sendBufs []net.Buffers

	// recvFree[p] recycles frame payload buffers of peer p back to its
	// read loop; prevIn[p] is the payload handed to the caller by the
	// previous collective, reclaimable at the next one.
	recvFree []chan []byte
	prevIn   [][]byte

	in      [][]byte   // reused result slice of exchanges
	selfBuf []byte     // reused concatenation of multi-segment self-delivery
	wrap    [][][]byte // reused single-segment wrapping of an Exchange row
	wrapSeg [][1][]byte

	// Pooled Allreduce scratch: the encoded local vector, the shared out
	// row pointing at it, and the decode buffer for each peer's vector.
	reducePayload []byte
	reduceOut     [][][]byte
	reduceTmp     []int64

	closeOnce sync.Once
	closeErr  error
}

type frame struct {
	payload []byte
	err     error
}

// New establishes the mesh and returns this rank's endpoint. It blocks
// until connections to all peers are up. Ranks may start in any order
// within the dial timeout.
func New(cfg Config) (*Transport, error) {
	size := len(cfg.Addrs)
	if size < 1 {
		return nil, errors.New("tcptransport: empty address list")
	}
	if cfg.Rank < 0 || cfg.Rank >= size {
		return nil, fmt.Errorf("tcptransport: rank %d out of range [0,%d)", cfg.Rank, size)
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.DialRetry == 0 {
		cfg.DialRetry = 50 * time.Millisecond
	}
	t := &Transport{
		rank:     cfg.Rank,
		size:     size,
		conns:    make([]net.Conn, size),
		inbox:    make([]chan frame, size),
		sendq:    make([]chan net.Buffers, size),
		sendDone: make([]chan error, size),
		hdrs:     make([][4]byte, size),
		sendBufs: make([]net.Buffers, size),
		recvFree: make([]chan []byte, size),
		prevIn:   make([][]byte, size),
		in:       make([][]byte, size),
		wrap:     make([][][]byte, size),
		wrapSeg:  make([][1][]byte, size),
	}
	for p := range t.inbox {
		t.inbox[p] = make(chan frame, 1)
		t.sendq[p] = make(chan net.Buffers, 1)
		t.sendDone[p] = make(chan error, 1)
		t.recvFree[p] = make(chan []byte, 2)
	}
	if size == 1 {
		return t, nil
	}

	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, fmt.Errorf("tcptransport: listen %s: %w", cfg.Addrs[cfg.Rank], err)
	}
	t.ln = ln

	// Lower ranks dial higher ranks; higher ranks accept from lower ones.
	// That fixes one connection per unordered pair with no tie-breaking.
	type dialResult struct {
		peer int
		conn net.Conn
		err  error
	}
	results := make(chan dialResult, size)
	for p := cfg.Rank + 1; p < size; p++ {
		go func(p int) {
			conn, err := dialWithRetry(cfg.Addrs[p], cfg.DialTimeout, cfg.DialRetry)
			if err == nil {
				err = writeHandshake(conn, cfg.Rank)
			}
			results <- dialResult{p, conn, err}
		}(p)
	}
	go func() {
		for i := 0; i < cfg.Rank; i++ {
			conn, err := ln.Accept()
			if err != nil {
				results <- dialResult{-1, nil, err}
				return
			}
			peer, err := readHandshake(conn)
			if err != nil || peer < 0 || peer >= size {
				err = fmt.Errorf("tcptransport: bad handshake: %v", err)
				results <- dialResult{-1, nil, errors.Join(err, conn.Close())}
				return
			}
			results <- dialResult{peer, conn, nil}
		}
	}()

	needed := size - 1
	for i := 0; i < needed; i++ {
		r := <-results
		if r.err != nil {
			return nil, errors.Join(r.err, t.Close())
		}
		if t.conns[r.peer] != nil {
			err := fmt.Errorf("tcptransport: duplicate connection from rank %d", r.peer)
			return nil, errors.Join(err, r.conn.Close(), t.Close())
		}
		t.conns[r.peer] = r.conn
	}
	// One reader and one writer goroutine per peer: readers keep frames
	// ordered per connection, writers let a collective's sends to all
	// peers proceed concurrently with its receives.
	for p, conn := range t.conns {
		if conn == nil {
			continue
		}
		go t.readLoop(p, conn)
		go t.writeLoop(p, conn)
	}
	return t, nil
}

func dialWithRetry(addr string, timeout, retry time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, retry)
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				if err := tc.SetNoDelay(true); err != nil {
					// A socket that cannot take options is not usable as a
					// mesh link; surface it like any other dial failure.
					return nil, errors.Join(fmt.Errorf("tcptransport: set nodelay on %s: %w", addr, err), conn.Close())
				}
			}
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("tcptransport: dial %s: %w", addr, err)
		}
		time.Sleep(retry)
	}
}

func writeHandshake(conn net.Conn, rank int) error {
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[0:4], handshakeMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(rank))
	_, err := conn.Write(buf[:])
	return err
}

func readHandshake(conn net.Conn) (int, error) {
	var buf [8]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		return -1, err
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != handshakeMagic {
		return -1, errors.New("tcptransport: bad magic")
	}
	return int(binary.LittleEndian.Uint32(buf[4:8])), nil
}

// readLoop reads frames from peer p and delivers them to the inbox.
// Payload buffers come from the peer's free list when one is large
// enough, so steady-state traffic reads into recycled memory.
func (t *Transport) readLoop(p int, conn net.Conn) {
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			t.inbox[p] <- frame{err: err}
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > maxFrame {
			t.inbox[p] <- frame{err: fmt.Errorf("tcptransport: oversized frame %d from rank %d", n, p)}
			return
		}
		payload := t.recvBuf(p, int(n))
		if _, err := io.ReadFull(conn, payload); err != nil {
			t.inbox[p] <- frame{err: err}
			return
		}
		t.inbox[p] <- frame{payload: payload}
	}
}

// recvBuf returns a payload buffer of length n, recycling the peer's free
// list when possible.
func (t *Transport) recvBuf(p, n int) []byte {
	select {
	case b := <-t.recvFree[p]:
		if cap(b) >= n {
			return b[:n]
		}
	default:
	}
	return make([]byte, n)
}

// recycleRecv returns a payload buffer to peer p's free list once its
// owner (the caller of the previous collective) has relinquished it.
func (t *Transport) recycleRecv(p int, b []byte) {
	if cap(b) == 0 {
		return
	}
	select {
	case t.recvFree[p] <- b[:0]:
	default:
	}
}

// writeLoop writes the frames enqueued for peer p. Each queued value is a
// fully prepared vectored frame (length prefix first); the write error is
// reported back through sendDone so the enqueuing collective can
// propagate it.
func (t *Transport) writeLoop(p int, conn net.Conn) {
	for bufs := range t.sendq[p] {
		_, err := bufs.WriteTo(conn)
		t.sendDone[p] <- err
	}
}

// Rank implements comm.Transport.
func (t *Transport) Rank() int { return t.rank }

// Size implements comm.Transport.
func (t *Transport) Size() int { return t.size }

// Exchange implements comm.Transport.
func (t *Transport) Exchange(out [][]byte) ([][]byte, error) {
	if len(out) != t.size {
		return nil, errors.New("tcptransport: Exchange buffer count != size")
	}
	for p, b := range out {
		t.wrapSeg[p][0] = b
		t.wrap[p] = t.wrapSeg[p][:]
	}
	return t.exchangeSegs(t.wrap)
}

// ExchangeV implements comm.GatherExchanger.
func (t *Transport) ExchangeV(out [][][]byte) ([][]byte, error) {
	if len(out) != t.size {
		return nil, errors.New("tcptransport: ExchangeV buffer count != size")
	}
	return t.exchangeSegs(out)
}

// exchangeSegs runs the all-to-all: enqueue one frame per peer on the
// writer goroutines, then drain every peer's inbox while the writes
// proceed in the background, then collect the write errors.
func (t *Transport) exchangeSegs(out [][][]byte) ([][]byte, error) {
	for p, segs := range out {
		if p == t.rank {
			continue
		}
		total := 0
		for _, s := range segs {
			total += len(s)
		}
		if total > maxFrame {
			return nil, fmt.Errorf("tcptransport: buffer for rank %d exceeds frame limit", p)
		}
	}
	// Enqueue all sends. The header and segment list storage is per-peer
	// and reused; at most one frame per peer is in flight per collective,
	// and the writer completion is collected below before returning, so
	// the storage (and the caller's segments) are never touched by a
	// writer after this collective ends.
	for p := range out {
		if p == t.rank || t.conns[p] == nil {
			continue
		}
		total := 0
		for _, s := range out[p] {
			total += len(s)
		}
		binary.LittleEndian.PutUint32(t.hdrs[p][:], uint32(total))
		bufs := t.sendBufs[p][:0]
		bufs = append(bufs, t.hdrs[p][:])
		for _, s := range out[p] {
			if len(s) > 0 {
				bufs = append(bufs, s)
			}
		}
		t.sendBufs[p] = bufs
		t.sendq[p] <- bufs
	}

	// Local delivery: zero-copy for a single segment, pooled
	// concatenation otherwise.
	self := out[t.rank]
	if len(self) == 1 {
		t.in[t.rank] = self[0]
	} else {
		buf := t.selfBuf[:0]
		for _, s := range self {
			buf = append(buf, s...)
		}
		t.selfBuf = buf
		t.in[t.rank] = buf
	}

	// Drain the inboxes. The previous collective's payloads are recycled
	// here: by calling into this collective the caller has relinquished
	// them, per the Transport ownership contract.
	var recvErr error
	for p := range t.conns {
		if t.conns[p] == nil {
			continue
		}
		f := <-t.inbox[p]
		if f.err != nil {
			recvErr = errors.Join(recvErr, fmt.Errorf("tcptransport: receive from rank %d: %w", p, f.err))
			continue
		}
		t.recycleRecv(p, t.prevIn[p])
		t.prevIn[p] = f.payload
		t.in[p] = f.payload
	}

	// Collect the write completions; after this no writer references the
	// caller's segments.
	var sendErr error
	for p := range t.conns {
		if p == t.rank || t.conns[p] == nil {
			continue
		}
		if err := <-t.sendDone[p]; err != nil {
			sendErr = errors.Join(sendErr, fmt.Errorf("tcptransport: send to rank %d: %w", p, err))
		}
	}
	if err := errors.Join(recvErr, sendErr); err != nil {
		return nil, err
	}
	return t.in, nil
}

// AllreduceInt64 implements comm.Transport as allgather + local reduce.
// All scratch (the encoded vector, the shared out row, the per-peer
// decode buffer) is pooled on the transport; only the result is freshly
// allocated, because callers may hold results of several collectives at
// once (see memtransport for the rationale).
func (t *Transport) AllreduceInt64(vals []int64, op comm.ReduceOp) ([]int64, error) {
	payload := t.reducePayload[:0]
	for _, v := range vals {
		payload = binary.LittleEndian.AppendUint64(payload, uint64(v))
	}
	t.reducePayload = payload
	if t.reduceOut == nil {
		t.reduceOut = make([][][]byte, t.size)
	}
	for p := range t.reduceOut {
		t.reduceOut[p] = t.reduceOut[p][:0]
		t.reduceOut[p] = append(t.reduceOut[p], payload)
	}
	in, err := t.exchangeSegs(t.reduceOut)
	if err != nil {
		return nil, err
	}
	res := make([]int64, len(vals))
	copy(res, vals)
	if cap(t.reduceTmp) < len(vals) {
		t.reduceTmp = make([]int64, len(vals))
	}
	other := t.reduceTmp[:len(vals)]
	for p, buf := range in {
		if p == t.rank {
			continue
		}
		if len(buf) != 8*len(vals) {
			return nil, fmt.Errorf("tcptransport: Allreduce length mismatch from rank %d", p)
		}
		for i := range other {
			other[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		op.Apply(res, other)
	}
	return res, nil
}

// Barrier implements comm.Transport.
func (t *Transport) Barrier() error {
	_, err := t.AllreduceInt64(nil, comm.Sum)
	return err
}

// Close implements comm.Transport. Closing shuts the writer goroutines
// down and closes every connection, which also unblocks the read loops.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		for p, conn := range t.conns {
			if conn != nil {
				close(t.sendq[p])
			}
		}
		if t.ln != nil {
			t.closeErr = t.ln.Close()
		}
		for _, conn := range t.conns {
			if conn != nil {
				t.closeErr = errors.Join(t.closeErr, conn.Close())
			}
		}
	})
	return t.closeErr
}
