// Package tcptransport implements comm.Transport over TCP sockets,
// forming a real multi-process message-passing machine on commodity
// networks. It is the stand-in for the MPI/SPI layer of the paper's Blue
// Gene/Q implementation (no MPI ecosystem exists for Go, so the RPC layer
// is rolled by hand).
//
// Topology is a full mesh: every pair of ranks shares one TCP connection.
// Rank identities are established by a fixed-size handshake; afterwards
// all traffic is length-prefixed binary frames. The mesh is multiplexed:
// every frame names a logical channel, and each channel is an independent
// comm.Transport with its own lockstep collective sequence. One socket
// mesh therefore carries many in-flight queries between the same process
// pair — the deployment shape of a query-serving pool, where each pool
// slot owns one channel. The Transport returned by New is channel 0;
// Channel opens the others. The collectives are implemented directly on
// the mesh:
//
//   - Exchange / ExchangeV: write one frame to every peer, read one frame
//     from every peer. TCP ordering plus the per-channel demultiplexer
//     plus the lockstep collective discipline make frame matching trivial
//     — the k-th frame of a channel on a connection belongs to that
//     channel's k-th collective.
//   - AllreduceInt64: an allgather of the encoded vectors (an Exchange of
//     the same payload to all peers) followed by a local reduction.
//   - Barrier: a zero-length Allreduce.
//
// The data path is built for overlap and reuse:
//
//   - One persistent writer goroutine per peer, shared by all channels. A
//     collective enqueues all outgoing frames and immediately starts
//     draining its inboxes, so the P−1 sends proceed concurrently with
//     each other and with the receives — the all-to-all is never
//     serialized on a single socket's flow control.
//   - Frames are written with net.Buffers (writev): the length prefix and
//     the payload segments of a gathered exchange go out in one vectored
//     syscall, with no sender-side concatenation copy.
//   - Frame read buffers are recycled per channel per peer. The Transport
//     contract gives a received buffer to the caller only until its next
//     collective call, at which point the buffer returns to the free list
//     and the read loop reuses it. Steady-state exchanges allocate
//     nothing.
//
// Failure semantics are two-tier (see DESIGN.md "Query planes and
// serving"):
//
//   - Channel-level: Abort or Close on a non-root channel poisons only
//     that channel, locally and — via a control frame — on every peer.
//     Collectives blocked on the channel wake with an error wrapping
//     comm.ErrAborted; other channels on the same mesh keep working. This
//     is how one failed query in a pool is kept from killing its
//     neighbours.
//   - Mesh-level: socket errors, collective timeouts and Close on the
//     root Transport are unrecoverable — the frame streams cannot be
//     resynchronized — and poison every channel.
//
// Startup (accept + handshake) is bounded by DialTimeout, so a rogue or
// stalled connection cannot block New past it; Config.CollectiveTimeout
// bounds each collective's peer I/O, so a dead or hung peer turns into an
// error instead of a blocked read; TCP keepalive reaps silently-dead
// links the timeout would otherwise be the only guard against.
//
// Frame format (little-endian): u32 payload length, u32 channel word
// (low 30 bits: channel id; bit 31: abort control frame, payload is the
// cause; bit 30: asynchronous batch frame, routed to the channel's
// point-to-point queue instead of the lockstep inbox), then payload. The
// handshake frame is: u32 magic, u32 rank.
package tcptransport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"parsssp/internal/comm"
)

const handshakeMagic = 0x50415253 // "PARS"

// maxFrame bounds a single frame payload; larger Exchange buffers are an
// error (they indicate a runaway workload rather than a legitimate need).
const maxFrame = 1 << 30

// frameHeaderSize is the byte size of the per-frame header: u32 payload
// length, u32 channel word.
const frameHeaderSize = 8

// ctrlAbort marks a control frame in the channel word: the named channel
// was aborted by the sender and the payload carries the cause.
const ctrlAbort = 1 << 31

// ctrlAsync marks an asynchronous batch frame (comm.BatchSender): the
// payload bypasses the named channel's lockstep inbox and lands in its
// point-to-point batch queue, so async traffic never perturbs the
// positional frame matching the collectives rely on.
const ctrlAsync = 1 << 30

// maxChannelID bounds channel ids to the low 30 bits of the channel word.
const maxChannelID = ctrlAsync - 1

// Config describes the machine: one address per rank. Rank i listens on
// Addrs[i]; all ranks must share an identical Addrs slice.
type Config struct {
	// Addrs[i] is the host:port endpoint of rank i.
	Addrs []string
	// Rank is this process's rank.
	Rank int
	// DialTimeout bounds connection establishment to each peer — dialing
	// out, accepting in, and the handshake on an accepted connection;
	// zero means 10 seconds.
	DialTimeout time.Duration
	// DialRetry is the interval between connection attempts while peers
	// start up; zero means 50ms.
	DialRetry time.Duration
	// CollectiveTimeout bounds the peer I/O of one collective: how long
	// Exchange/AllreduceInt64/Barrier may block waiting for a peer's
	// frame, and how long a single frame write may take. When it expires
	// the collective returns an error and the mesh is dead. Zero
	// means no timeout — correct peers may legitimately be slow (a
	// load-imbalanced superstep), so only deployments that prefer failing
	// a query to waiting (cmd/ssspd defaults to 30s) should set it.
	CollectiveTimeout time.Duration
	// KeepAlivePeriod is the TCP keepalive probe interval, catching peers
	// that vanished without a FIN/RST (power loss, network partition);
	// zero means 15 seconds, negative disables keepalive.
	KeepAlivePeriod time.Duration
}

// Transport is a TCP-backed comm.Transport endpoint: the owner of the
// socket mesh, and channel 0 of it. It also implements
// comm.GatherExchanger. Channel opens further independent logical
// channels over the same mesh. After any collective returns a mesh-level
// error the transport is dead and must be Closed; the lockstep frame
// matching cannot be resynchronized.
type Transport struct {
	rank    int
	size    int
	timeout time.Duration // CollectiveTimeout; zero = none
	ln      net.Listener
	conns   []net.Conn // conns[p] is the connection to rank p; nil for self

	// Per-peer writer machinery, shared by all channels: sendq carries
	// prepared frames to the peer's writer goroutine; each frame names
	// the completion channel its write error is reported to. quit is
	// closed on Close, releasing writers and any sender blocked on a
	// full queue.
	sendq []chan outFrame
	quit  chan struct{}

	// chans is the channel registry, shared by Channel and the read
	// loops (which create channels lazily when a peer's frame arrives
	// first). peerErr records each peer's first read-loop failure so
	// channels created after it inherit the failure; both under chanMu.
	chanMu  sync.Mutex
	chans   map[uint32]*Channel
	peerErr []error

	root *Channel // channel 0: the Transport's own collectives

	closeOnce sync.Once
	closeErr  error
}

// outFrame is one prepared frame queued to a peer's writer goroutine.
type outFrame struct {
	bufs net.Buffers
	// done receives the write error; nil for fire-and-forget control
	// frames, whose failure modes (dead socket) already poison the mesh
	// through the read loops.
	done chan error
}

type frame struct {
	payload []byte
}

// New establishes the mesh and returns this rank's endpoint (channel 0).
// It blocks until connections to all peers are up. Ranks may start in any
// order within the dial timeout.
func New(cfg Config) (*Transport, error) {
	size := len(cfg.Addrs)
	if size < 1 {
		return nil, errors.New("tcptransport: empty address list")
	}
	if cfg.Rank < 0 || cfg.Rank >= size {
		return nil, fmt.Errorf("tcptransport: rank %d out of range [0,%d)", cfg.Rank, size)
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.DialRetry == 0 {
		cfg.DialRetry = 50 * time.Millisecond
	}
	if cfg.KeepAlivePeriod == 0 {
		cfg.KeepAlivePeriod = 15 * time.Second
	}
	t := &Transport{
		rank:    cfg.Rank,
		size:    size,
		timeout: cfg.CollectiveTimeout,
		conns:   make([]net.Conn, size),
		sendq:   make([]chan outFrame, size),
		quit:    make(chan struct{}),
		chans:   make(map[uint32]*Channel),
		peerErr: make([]error, size),
	}
	for p := range t.sendq {
		// Buffered so several channels' collectives can enqueue to the
		// same peer without rendezvousing with the writer; a full queue
		// blocks the sender until the writer drains, which is safe (the
		// writer never waits on senders).
		t.sendq[p] = make(chan outFrame, 8)
	}
	t.root = t.newChannel(0)
	if size == 1 {
		return t, nil
	}

	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, fmt.Errorf("tcptransport: listen %s: %w", cfg.Addrs[cfg.Rank], err)
	}
	t.ln = ln

	// Lower ranks dial higher ranks; higher ranks accept from lower ones.
	// That fixes one connection per unordered pair with no tie-breaking.
	type dialResult struct {
		peer int
		conn net.Conn
		err  error
	}
	results := make(chan dialResult, size)
	for p := cfg.Rank + 1; p < size; p++ {
		go func(p int) {
			conn, err := dialWithRetry(cfg.Addrs[p], cfg.DialTimeout, cfg.DialRetry, cfg.KeepAlivePeriod)
			if err == nil {
				err = writeHandshake(conn, cfg.Rank)
			}
			results <- dialResult{p, conn, err}
		}(p)
	}
	go func() {
		// The whole accept phase is bounded by DialTimeout: Accept itself
		// via the listener deadline, and each accepted connection's
		// handshake via a read deadline. Without these, one rogue client
		// that connects and sends nothing stalls startup forever.
		deadline := time.Now().Add(cfg.DialTimeout)
		if tl, ok := ln.(*net.TCPListener); ok {
			if err := tl.SetDeadline(deadline); err != nil {
				results <- dialResult{-1, nil, fmt.Errorf("tcptransport: set accept deadline: %w", err)}
				return
			}
		}
		for i := 0; i < cfg.Rank; i++ {
			conn, err := ln.Accept()
			if err != nil {
				results <- dialResult{-1, nil, fmt.Errorf("tcptransport: accept: %w", err)}
				return
			}
			peer, herr := acceptHandshake(conn, deadline, cfg.Rank, cfg.KeepAlivePeriod)
			if herr != nil {
				err := fmt.Errorf("tcptransport: bad handshake: %w", herr)
				results <- dialResult{-1, nil, errors.Join(err, conn.Close())}
				return
			}
			results <- dialResult{peer, conn, nil}
		}
	}()

	needed := size - 1
	for i := 0; i < needed; i++ {
		r := <-results
		if r.err != nil {
			return nil, errors.Join(r.err, t.Close())
		}
		if t.conns[r.peer] != nil {
			err := fmt.Errorf("tcptransport: duplicate connection from rank %d", r.peer)
			return nil, errors.Join(err, r.conn.Close(), t.Close())
		}
		t.conns[r.peer] = r.conn
	}
	// One reader and one writer goroutine per peer: readers keep frames
	// ordered per connection and demultiplex them to channels, writers
	// let a collective's sends to all peers proceed concurrently with its
	// receives.
	for p, conn := range t.conns {
		if conn == nil {
			continue
		}
		go t.readLoop(p, conn)
		go t.writeLoop(p, conn)
	}
	return t, nil
}

func dialWithRetry(addr string, timeout, retry, keepAlive time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, retry)
		if err == nil {
			if err := tuneConn(conn, keepAlive); err != nil {
				// A socket that cannot take options is not usable as a
				// mesh link; surface it like any other dial failure.
				return nil, errors.Join(fmt.Errorf("tcptransport: tune %s: %w", addr, err), conn.Close())
			}
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("tcptransport: dial %s: %w", addr, err)
		}
		time.Sleep(retry)
	}
}

// tuneConn applies the mesh socket options: NoDelay (the collectives
// write exactly one frame and then wait, the worst case for Nagle) and
// keepalive (a vanished peer must eventually break the connection even
// if no deadline is armed).
func tuneConn(conn net.Conn, keepAlive time.Duration) error {
	tc, ok := conn.(*net.TCPConn)
	if !ok {
		return nil
	}
	if err := tc.SetNoDelay(true); err != nil {
		return err
	}
	if keepAlive > 0 {
		if err := tc.SetKeepAlive(true); err != nil {
			return err
		}
		if err := tc.SetKeepAlivePeriod(keepAlive); err != nil {
			return err
		}
	}
	return nil
}

// acceptHandshake reads and validates the handshake of an accepted
// connection, bounded by deadline. Only ranks below rank dial this rank
// (higher ranks are dialed by us), so a peer claiming an equal or higher
// rank — which would clobber a dialed connection's slot — is rejected.
func acceptHandshake(conn net.Conn, deadline time.Time, rank int, keepAlive time.Duration) (int, error) {
	if err := conn.SetReadDeadline(deadline); err != nil {
		return -1, err
	}
	peer, err := readHandshake(conn)
	if err != nil {
		return -1, err
	}
	if peer < 0 || peer >= rank {
		return -1, fmt.Errorf("peer claims rank %d; only ranks below %d may dial this rank", peer, rank)
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		return -1, err
	}
	if err := tuneConn(conn, keepAlive); err != nil {
		return -1, err
	}
	return peer, nil
}

func writeHandshake(conn net.Conn, rank int) error {
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[0:4], handshakeMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(rank))
	_, err := conn.Write(buf[:])
	return err
}

func readHandshake(conn net.Conn) (int, error) {
	var buf [8]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		return -1, err
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != handshakeMagic {
		return -1, errors.New("tcptransport: bad magic")
	}
	return int(binary.LittleEndian.Uint32(buf[4:8])), nil
}

// ---- channel registry ------------------------------------------------------

// Channel returns the logical channel with the given id (creating it if
// this endpoint has not used it yet), an independent comm.Transport over
// the shared mesh. Channel 0 is the Transport itself. All ranks must use
// the same channel ids; within one channel the usual collective-ordering
// discipline applies, while distinct channels are fully concurrent.
func (t *Transport) Channel(id uint32) (*Channel, error) {
	if id > maxChannelID {
		return nil, fmt.Errorf("tcptransport: channel id %d out of range", id)
	}
	select {
	case <-t.quit:
		return nil, errors.New("tcptransport: transport closed")
	default:
	}
	return t.channel(id), nil
}

// channel returns (or lazily creates) channel id. The lazy creation
// makes frame arrival order irrelevant: a peer's first frame on a
// channel may land before the local Channel call.
func (t *Transport) channel(id uint32) *Channel {
	t.chanMu.Lock()
	defer t.chanMu.Unlock()
	if ch, ok := t.chans[id]; ok {
		return ch
	}
	ch := t.newChannelLocked(id)
	return ch
}

func (t *Transport) newChannel(id uint32) *Channel {
	t.chanMu.Lock()
	defer t.chanMu.Unlock()
	return t.newChannelLocked(id)
}

func (t *Transport) newChannelLocked(id uint32) *Channel {
	ch := &Channel{
		t:         t,
		id:        id,
		inbox:     make([]chan frame, t.size),
		recvFree:  make([]chan []byte, t.size),
		prevIn:    make([][]byte, t.size),
		hdrs:      make([][frameHeaderSize]byte, t.size),
		sendBufs:  make([]net.Buffers, t.size),
		sendDone:  make([]chan error, t.size),
		in:        make([][]byte, t.size),
		wrap:      make([][][]byte, t.size),
		wrapSeg:   make([][1][]byte, t.size),
		abortCh:   make(chan struct{}),
		peerErrs:  make([]error, t.size),
		peerFailC: make([]chan struct{}, t.size),
		batchC:    make(chan struct{}, 1),
	}
	for p := 0; p < t.size; p++ {
		ch.inbox[p] = make(chan frame, 1)
		ch.recvFree[p] = make(chan []byte, 2)
		ch.sendDone[p] = make(chan error, 1)
		ch.peerFailC[p] = make(chan struct{})
	}
	t.chans[id] = ch
	// A channel opened after a peer's read loop already died inherits
	// that failure; without this, its collectives would block on a frame
	// the dead reader can never deliver.
	for p, err := range t.peerErr {
		if err != nil {
			ch.failPeer(p, err)
		}
	}
	return ch
}

// poisonAll fails every existing channel and arranges for future ones to
// fail too (mesh-level death: socket errors, timeouts, Close).
func (t *Transport) poisonAll(err error) {
	t.chanMu.Lock()
	chans := make([]*Channel, 0, len(t.chans))
	for _, ch := range t.chans {
		chans = append(chans, ch)
	}
	t.chanMu.Unlock()
	for _, ch := range chans {
		ch.poison(err)
	}
}

// ---- read/write loops ------------------------------------------------------

// failPeer records peer p's read-loop death and propagates it to every
// channel, present and future. The failure is delivered in-band per
// channel — it surfaces only once a collective actually needs a frame
// from p that was never delivered — so an EOF from a peer that closed
// after completing its final collective does not fail collectives its
// already-delivered frames satisfy.
func (t *Transport) failPeer(p int, err error) {
	t.chanMu.Lock()
	if t.peerErr[p] == nil {
		t.peerErr[p] = err
	}
	chans := make([]*Channel, 0, len(t.chans))
	for _, ch := range t.chans {
		chans = append(chans, ch)
	}
	t.chanMu.Unlock()
	for _, ch := range chans {
		ch.failPeer(p, err)
	}
}

// readLoop reads frames from peer p, demultiplexes them by channel id
// and delivers them to the owning channel's inbox. Abort control frames
// poison their channel instead. A socket-level read error kills this
// connection's frame stream for good (it cannot be resynchronized):
// every channel's link to p is marked failed, in-band behind any frames
// already delivered.
func (t *Transport) readLoop(p int, conn net.Conn) {
	fail := func(err error) {
		t.failPeer(p, fmt.Errorf("tcptransport: receive from rank %d: %w", p, err))
	}
	for {
		var hdr [frameHeaderSize]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			fail(err)
			return
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		cw := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxFrame {
			fail(fmt.Errorf("oversized frame %d", n))
			return
		}
		id := cw &^ (ctrlAbort | ctrlAsync)
		ch := t.channel(id)
		if cw&ctrlAbort != 0 {
			// Channel-level abort: the payload is the remote cause. Only
			// this channel is poisoned; the mesh stays up.
			msg := make([]byte, n)
			if _, err := io.ReadFull(conn, msg); err != nil {
				fail(err)
				return
			}
			ch.poison(fmt.Errorf("%w: channel %d aborted by rank %d: %s", comm.ErrAborted, id, p, msg))
			continue
		}
		if cw&ctrlAsync != 0 {
			// Asynchronous batch: freshly allocated payload (its ownership
			// transfers to the RecvBatch caller for good, so the pooled
			// collective buffers cannot back it), queued out of band.
			payload := make([]byte, n)
			if _, err := io.ReadFull(conn, payload); err != nil {
				fail(err)
				return
			}
			ch.pushBatch(p, payload)
			continue
		}
		payload := ch.recvBuf(p, int(n))
		if _, err := io.ReadFull(conn, payload); err != nil {
			fail(err)
			return
		}
		// The lockstep discipline admits at most one undelivered frame
		// per (channel, peer), so the send blocks only transiently —
		// unless the channel was aborted and nobody will drain it, in
		// which case the frame is dropped.
		select {
		case ch.inbox[p] <- frame{payload: payload}:
		case <-ch.abortCh:
		}
	}
}

// writeLoop writes the frames enqueued for peer p, from every channel.
// Each queued value is a fully prepared vectored frame (header first);
// the write error is reported back through the frame's done channel so
// the enqueuing collective can propagate it.
func (t *Transport) writeLoop(p int, conn net.Conn) {
	for {
		var f outFrame
		select {
		case f = <-t.sendq[p]:
		case <-t.quit:
			return
		}
		var err error
		if t.timeout > 0 {
			err = conn.SetWriteDeadline(time.Now().Add(t.timeout))
		}
		if err == nil {
			_, err = f.bufs.WriteTo(conn)
		}
		if f.done != nil {
			f.done <- err
		}
	}
}

// enqueue hands a frame to peer p's writer, failing instead of blocking
// forever if the transport closes underneath.
func (t *Transport) enqueue(p int, f outFrame) error {
	select {
	case t.sendq[p] <- f:
		return nil
	case <-t.quit:
		return errors.New("tcptransport: transport closed")
	}
}

// Rank implements comm.Transport.
func (t *Transport) Rank() int { return t.rank }

// Size implements comm.Transport.
func (t *Transport) Size() int { return t.size }

// Exchange implements comm.Transport on channel 0.
func (t *Transport) Exchange(out [][]byte) ([][]byte, error) { return t.root.Exchange(out) }

// ExchangeV implements comm.GatherExchanger on channel 0.
func (t *Transport) ExchangeV(out [][][]byte) ([][]byte, error) { return t.root.ExchangeV(out) }

// AllreduceInt64 implements comm.Transport on channel 0.
func (t *Transport) AllreduceInt64(vals []int64, op comm.ReduceOp) ([]int64, error) {
	return t.root.AllreduceInt64(vals, op)
}

// Barrier implements comm.Transport on channel 0.
func (t *Transport) Barrier() error { return t.root.Barrier() }

// SendBatch implements comm.BatchSender on channel 0.
func (t *Transport) SendBatch(dest int, payload []byte) error {
	return t.root.SendBatch(dest, payload)
}

// RecvBatch implements comm.BatchSender on channel 0.
func (t *Transport) RecvBatch(wait time.Duration) (int, []byte, bool, error) {
	return t.root.RecvBatch(wait)
}

// failConns moves every connection's deadline into the past, forcing all
// in-flight reads and writes to fail promptly. Called when a collective
// times out: the mesh is dead at that point, and its reader/writer
// goroutines must not stay blocked on peers that will never deliver.
func (t *Transport) failConns() error {
	var err error
	past := time.Unix(1, 0)
	for _, conn := range t.conns {
		if conn != nil {
			err = errors.Join(err, conn.SetDeadline(past))
		}
	}
	return err
}

// Close implements comm.Transport: mesh-level shutdown. Closing releases
// the writer goroutines, closes every connection (which also unblocks
// the read loops) and poisons every channel.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		close(t.quit)
		if t.ln != nil {
			t.closeErr = t.ln.Close()
		}
		for _, conn := range t.conns {
			if conn != nil {
				t.closeErr = errors.Join(t.closeErr, conn.Close())
			}
		}
		t.poisonAll(errors.New("tcptransport: transport closed"))
	})
	return t.closeErr
}

// ---- channels --------------------------------------------------------------

// Channel is one logical channel of a mesh: an independent comm.Transport
// (and comm.GatherExchanger, comm.Aborter) whose collectives interleave
// freely with other channels' over the same sockets. Like the transports
// themselves, a Channel is not safe for concurrent use — one goroutine
// per channel, many channels per mesh.
type Channel struct {
	t  *Transport
	id uint32

	inbox []chan frame // per-peer demultiplexed frames

	// recvFree[p] recycles frame payload buffers of peer p back to the
	// read loop; prevIn[p] is the payload handed to the caller by the
	// previous collective, reclaimable at the next one.
	recvFree []chan []byte
	prevIn   [][]byte

	// hdrs[p] is the reusable header storage of the in-flight frame to
	// p; sendBufs[p] the reusable vectored-write segment list; sendDone[p]
	// the completion channel carried by this channel's frames to p.
	hdrs     [][frameHeaderSize]byte
	sendBufs []net.Buffers
	sendDone []chan error

	in      [][]byte   // reused result slice of exchanges
	selfBuf []byte     // reused concatenation of multi-segment self-delivery
	wrap    [][][]byte // reused single-segment wrapping of an Exchange row
	wrapSeg [][1][]byte

	// Pooled Allreduce scratch: the encoded local vector, the shared out
	// row pointing at it, and the decode buffer for each peer's vector.
	reducePayload []byte
	reduceOut     [][][]byte
	reduceTmp     []int64

	// abortErr is set once (first cause wins) under abortMu; abortCh is
	// closed alongside it, waking blocked collectives and the read
	// loops' deliveries.
	abortMu  sync.Mutex
	abortErr error
	abortCh  chan struct{}

	// peerErrs[p] is peer p's read-loop failure, delivered in-band:
	// peerFailC[p] is closed when it is set, and the drain reports it
	// only once inbox[p] is empty, so frames that arrived before the
	// failure still satisfy the collectives that expect them.
	peerErrMu sync.Mutex
	peerErrs  []error
	peerFailC []chan struct{}

	// batchMu guards batchQ, the FIFO of received async batches
	// (comm.BatchSender); batchC carries a single wake-up token to the
	// channel's (single) RecvBatch caller.
	batchMu sync.Mutex
	batchQ  []asyncBatch
	batchC  chan struct{}
}

// asyncBatch is one received point-to-point batch awaiting RecvBatch.
type asyncBatch struct {
	src     int
	payload []byte
}

// failPeer marks peer p's link to this channel failed (first cause
// wins).
func (c *Channel) failPeer(p int, err error) {
	c.peerErrMu.Lock()
	if c.peerErrs[p] == nil {
		c.peerErrs[p] = err
		close(c.peerFailC[p])
	}
	c.peerErrMu.Unlock()
}

// peerError returns peer p's recorded read failure, if any.
func (c *Channel) peerError(p int) error {
	c.peerErrMu.Lock()
	defer c.peerErrMu.Unlock()
	return c.peerErrs[p]
}

// ID returns the channel id.
func (c *Channel) ID() uint32 { return c.id }

// Rank implements comm.Transport.
func (c *Channel) Rank() int { return c.t.rank }

// Size implements comm.Transport.
func (c *Channel) Size() int { return c.t.size }

// poison marks the channel failed with err (first cause wins) and wakes
// every collective blocked on it.
func (c *Channel) poison(err error) {
	c.abortMu.Lock()
	if c.abortErr == nil {
		c.abortErr = err
		close(c.abortCh)
	}
	c.abortMu.Unlock()
}

// err returns the poison cause, if any.
func (c *Channel) err() error {
	c.abortMu.Lock()
	defer c.abortMu.Unlock()
	return c.abortErr
}

// Abort implements comm.Aborter with channel-level scope: the channel is
// poisoned locally with err, and a control frame carries the cause to
// every peer so their endpoints of this channel fail too — without
// touching any other channel on the mesh. Safe to call concurrently with
// the channel's collectives and more than once.
func (c *Channel) Abort(err error) {
	if err == nil {
		err = errors.New("tcptransport: channel aborted")
	}
	c.poison(fmt.Errorf("%w: %w", comm.ErrAborted, err))
	c.notifyAbort(err)
}

// Close implements comm.Transport with channel-level scope: the channel
// is poisoned (locally and on every peer) and must not be used again.
// The mesh and its other channels are unaffected; closing the root
// channel's Transport is the mesh-wide shutdown.
func (c *Channel) Close() error {
	c.poison(fmt.Errorf("%w: channel %d closed", comm.ErrAborted, c.id))
	c.notifyAbort(fmt.Errorf("channel %d closed by rank %d", c.id, c.t.rank))
	return nil
}

// notifyAbort sends the abort control frame to every peer, best-effort:
// on a closed or dying mesh the peers learn of the failure through the
// mesh's own death instead.
func (c *Channel) notifyAbort(cause error) {
	msg := []byte(cause.Error())
	if len(msg) > 1024 {
		msg = msg[:1024]
	}
	for p := range c.t.conns {
		if p == c.t.rank || c.t.conns[p] == nil {
			continue
		}
		var hdr [frameHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(msg)))
		binary.LittleEndian.PutUint32(hdr[4:8], c.id|ctrlAbort)
		f := outFrame{bufs: net.Buffers{hdr[:], msg}}
		if err := c.t.enqueue(p, f); err != nil {
			return // mesh closed: nothing left to notify
		}
	}
}

// Exchange implements comm.Transport.
func (c *Channel) Exchange(out [][]byte) ([][]byte, error) {
	if len(out) != c.t.size {
		return nil, errors.New("tcptransport: Exchange buffer count != size")
	}
	for p, b := range out {
		c.wrapSeg[p][0] = b
		c.wrap[p] = c.wrapSeg[p][:]
	}
	return c.exchangeSegs(c.wrap)
}

// ExchangeV implements comm.GatherExchanger.
func (c *Channel) ExchangeV(out [][][]byte) ([][]byte, error) {
	if len(out) != c.t.size {
		return nil, errors.New("tcptransport: ExchangeV buffer count != size")
	}
	return c.exchangeSegs(out)
}

// recvBuf returns a payload buffer of length n, recycling the channel's
// per-peer free list when possible. An undersized pooled buffer goes
// back on the free list instead of being dropped: under mixed frame
// sizes (a big relax superstep followed by small allreduces) dropping it
// would bleed the pool down to nothing and put every later frame on the
// allocator.
func (c *Channel) recvBuf(p, n int) []byte {
	select {
	case b := <-c.recvFree[p]:
		if cap(b) >= n {
			return b[:n]
		}
		c.recycleRecv(p, b)
	default:
	}
	return make([]byte, n)
}

// recycleRecv returns a payload buffer to peer p's free list once its
// owner (the caller of the previous collective) has relinquished it.
func (c *Channel) recycleRecv(p int, b []byte) {
	if cap(b) == 0 {
		return
	}
	select {
	case c.recvFree[p] <- b[:0]:
	default:
	}
}

// exchangeSegs runs the all-to-all: enqueue one frame per peer on the
// shared writer goroutines, then drain this channel's inboxes while the
// writes proceed in the background, then collect the write errors (which
// also guarantees no writer still references the caller's segments when
// the collective returns — on every path, including aborts).
func (c *Channel) exchangeSegs(out [][][]byte) ([][]byte, error) {
	if err := c.err(); err != nil {
		return nil, err
	}
	for p, segs := range out {
		if p == c.t.rank {
			continue
		}
		total := 0
		for _, s := range segs {
			total += len(s)
		}
		if total > maxFrame {
			return nil, fmt.Errorf("tcptransport: buffer for rank %d exceeds frame limit", p)
		}
	}
	// Enqueue all sends. The header and segment list storage is per-peer
	// and reused; at most one frame per peer is in flight per collective
	// on this channel, and the writer completion is collected below
	// before returning, so the storage (and the caller's segments) are
	// never touched by a writer after this collective ends.
	sent := 0
	for p := range out {
		if p == c.t.rank || c.t.conns[p] == nil {
			continue
		}
		total := 0
		for _, s := range out[p] {
			total += len(s)
		}
		binary.LittleEndian.PutUint32(c.hdrs[p][0:4], uint32(total))
		binary.LittleEndian.PutUint32(c.hdrs[p][4:8], c.id)
		bufs := c.sendBufs[p][:0]
		bufs = append(bufs, c.hdrs[p][:])
		for _, s := range out[p] {
			if len(s) > 0 {
				bufs = append(bufs, s)
			}
		}
		c.sendBufs[p] = bufs
		if err := c.t.enqueue(p, outFrame{bufs: bufs, done: c.sendDone[p]}); err != nil {
			return nil, errors.Join(err, c.collectSends(p))
		}
		sent = p + 1
	}

	// Local delivery: zero-copy for a single segment, pooled
	// concatenation otherwise.
	self := out[c.t.rank]
	if len(self) == 1 {
		c.in[c.t.rank] = self[0]
	} else {
		buf := c.selfBuf[:0]
		for _, s := range self {
			buf = append(buf, s...)
		}
		c.selfBuf = buf
		c.in[c.t.rank] = buf
	}

	// Drain the inboxes. The previous collective's payloads are recycled
	// here: by calling into this collective the caller has relinquished
	// them, per the Transport ownership contract. The timer bounds the
	// whole drain — CollectiveTimeout is a budget for the collective, not
	// per peer.
	var timeoutC <-chan time.Time
	if c.t.timeout > 0 {
		timer := time.NewTimer(c.t.timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	for p := range c.t.conns {
		if c.t.conns[p] == nil {
			continue
		}
		var f frame
		select {
		case f = <-c.inbox[p]:
		case <-c.peerFailC[p]:
			// Peer p's read loop died. Its frame for this collective may
			// still be sitting in the inbox (delivered before the
			// failure); only an empty inbox means the frame was lost.
			select {
			case f = <-c.inbox[p]:
			default:
				return nil, errors.Join(c.peerError(p), c.collectSends(sent))
			}
		case <-c.abortCh:
			// Channel-level failure (local or remote abort, mesh close).
			// The writers still hold this collective's frames; wait for
			// them so the caller regains ownership of its buffers.
			return nil, errors.Join(c.err(), c.collectSends(sent))
		case <-timeoutC:
			// A collective timeout is mesh death: the peer's frame for
			// this channel may be half-written on a socket shared by
			// every other channel, so nothing can resynchronize.
			recvErr := errors.Join(
				fmt.Errorf("tcptransport: collective timed out after %v waiting for rank %d", c.t.timeout, p),
				c.t.failConns())
			c.t.poisonAll(recvErr)
			return nil, errors.Join(recvErr, c.collectSends(sent))
		}
		c.recycleRecv(p, c.prevIn[p])
		c.prevIn[p] = f.payload
		c.in[p] = f.payload
	}

	// Collect the write completions; after this no writer references the
	// caller's segments.
	if err := c.collectSends(sent); err != nil {
		return nil, err
	}
	return c.in, nil
}

// collectSends waits for the write completions of this collective's
// frames to peers < limit, returning their joined errors. It must run on
// every exit path of exchangeSegs that enqueued frames: until the writer
// reports completion it may still reference the caller's segments, and
// returning early would let the caller (or a pooled successor reusing
// the same buffers) race it.
func (c *Channel) collectSends(limit int) error {
	var err error
	for p := 0; p < limit; p++ {
		if p == c.t.rank || c.t.conns[p] == nil {
			continue
		}
		select {
		case e := <-c.sendDone[p]:
			if e != nil {
				err = errors.Join(err, fmt.Errorf("tcptransport: send to rank %d: %w", p, e))
			}
		case <-c.t.quit:
			// Mesh closed under us: the writer goroutines are gone; no
			// write (and no late buffer access) can happen anymore.
			return errors.Join(err, errors.New("tcptransport: transport closed"))
		}
	}
	return err
}

// AllreduceInt64 implements comm.Transport as allgather + local reduce.
// All scratch (the encoded vector, the shared out row, the per-peer
// decode buffer) is pooled on the channel; only the result is freshly
// allocated, because callers may hold results of several collectives at
// once (see memtransport for the rationale).
func (c *Channel) AllreduceInt64(vals []int64, op comm.ReduceOp) ([]int64, error) {
	payload := c.reducePayload[:0]
	for _, v := range vals {
		payload = binary.LittleEndian.AppendUint64(payload, uint64(v))
	}
	c.reducePayload = payload
	if c.reduceOut == nil {
		c.reduceOut = make([][][]byte, c.t.size)
	}
	for p := range c.reduceOut {
		c.reduceOut[p] = c.reduceOut[p][:0]
		c.reduceOut[p] = append(c.reduceOut[p], payload)
	}
	in, err := c.exchangeSegs(c.reduceOut)
	if err != nil {
		return nil, err
	}
	res := make([]int64, len(vals))
	copy(res, vals)
	if cap(c.reduceTmp) < len(vals) {
		c.reduceTmp = make([]int64, len(vals))
	}
	other := c.reduceTmp[:len(vals)]
	for p, buf := range in {
		if p == c.t.rank {
			continue
		}
		if len(buf) != 8*len(vals) {
			return nil, fmt.Errorf("tcptransport: Allreduce length mismatch from rank %d", p)
		}
		for i := range other {
			other[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		op.Apply(res, other)
	}
	return res, nil
}

// Barrier implements comm.Transport.
func (c *Channel) Barrier() error {
	_, err := c.AllreduceInt64(nil, comm.Sum)
	return err
}

// ---- asynchronous batches ---------------------------------------------------

// pushBatch queues a received async batch for RecvBatch and wakes a
// blocked receiver. Called by the read loops.
func (c *Channel) pushBatch(src int, payload []byte) {
	c.batchMu.Lock()
	c.batchQ = append(c.batchQ, asyncBatch{src: src, payload: payload})
	c.batchMu.Unlock()
	select {
	case c.batchC <- struct{}{}:
	default:
	}
}

// popBatch removes the oldest queued batch, if any.
func (c *Channel) popBatch() (asyncBatch, bool) {
	c.batchMu.Lock()
	defer c.batchMu.Unlock()
	if len(c.batchQ) == 0 {
		return asyncBatch{}, false
	}
	m := c.batchQ[0]
	c.batchQ[0] = asyncBatch{}
	c.batchQ = c.batchQ[1:]
	if len(c.batchQ) == 0 {
		c.batchQ = nil // let the drained backing array go
	}
	return m, true
}

// SendBatch implements comm.BatchSender: the payload is copied into one
// freshly framed buffer and handed to the destination's writer goroutine
// fire-and-forget (async frame loss modes — a dead socket — already
// poison the mesh through the read loops, exactly as for abort control
// frames). Self-sends bypass the wire and land directly in the local
// queue.
func (c *Channel) SendBatch(dest int, payload []byte) error {
	if dest < 0 || dest >= c.t.size {
		return errors.New("tcptransport: SendBatch destination out of range")
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("tcptransport: batch for rank %d exceeds frame limit", dest)
	}
	if err := c.err(); err != nil {
		return err
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	if dest == c.t.rank {
		c.pushBatch(dest, cp)
		return nil
	}
	if c.t.conns[dest] == nil {
		return fmt.Errorf("tcptransport: no connection to rank %d", dest)
	}
	buf := make([]byte, frameHeaderSize, frameHeaderSize+len(cp))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(cp)))
	binary.LittleEndian.PutUint32(buf[4:8], c.id|ctrlAsync)
	buf = append(buf, cp...)
	return c.t.enqueue(dest, outFrame{bufs: net.Buffers{buf}})
}

// RecvBatch implements comm.BatchSender: it pops the oldest pending
// batch, waiting up to wait for one to arrive (wait=0 polls). Batches
// that arrived before a channel failure are still delivered; once the
// queue is empty a poisoned channel reports its abort cause.
func (c *Channel) RecvBatch(wait time.Duration) (int, []byte, bool, error) {
	var timeoutC <-chan time.Time
	for {
		if m, ok := c.popBatch(); ok {
			return m.src, m.payload, true, nil
		}
		if err := c.err(); err != nil {
			return 0, nil, false, err
		}
		if wait <= 0 {
			return 0, nil, false, nil
		}
		if timeoutC == nil {
			timer := time.NewTimer(wait)
			defer timer.Stop()
			timeoutC = timer.C
		}
		select {
		case <-c.batchC:
			// Recheck the queue; the token may be stale.
		case <-c.abortCh:
			// Poisoned; the next iteration drains any batch that raced
			// ahead of the abort, then reports the cause.
		case <-timeoutC:
			return 0, nil, false, nil
		}
	}
}
