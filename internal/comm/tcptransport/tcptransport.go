// Package tcptransport implements comm.Transport over TCP sockets,
// forming a real multi-process message-passing machine on commodity
// networks. It is the stand-in for the MPI/SPI layer of the paper's Blue
// Gene/Q implementation (no MPI ecosystem exists for Go, so the RPC layer
// is rolled by hand).
//
// Topology is a full mesh: every pair of ranks shares one TCP connection.
// Rank identities are established by a fixed-size handshake; afterwards
// all traffic is length-prefixed binary frames. The collectives are
// implemented directly on the mesh:
//
//   - Exchange: write one frame to every peer, read one frame from every
//     peer. TCP ordering plus the lockstep collective discipline make
//     frame matching trivial — the k-th frame on a connection belongs to
//     the k-th collective.
//   - AllreduceInt64: an allgather of the encoded vectors (an Exchange of
//     the same payload to all peers) followed by a local reduction.
//   - Barrier: a zero-length Allreduce.
//
// Frame format (little-endian): u32 payload length, then payload. The
// handshake frame is: u32 magic, u32 rank.
package tcptransport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"parsssp/internal/comm"
)

const handshakeMagic = 0x50415253 // "PARS"

// maxFrame bounds a single frame payload; larger Exchange buffers are an
// error (they indicate a runaway workload rather than a legitimate need).
const maxFrame = 1 << 30

// Config describes the machine: one address per rank. Rank i listens on
// Addrs[i]; all ranks must share an identical Addrs slice.
type Config struct {
	// Addrs[i] is the host:port endpoint of rank i.
	Addrs []string
	// Rank is this process's rank.
	Rank int
	// DialTimeout bounds connection establishment to each peer; zero
	// means 10 seconds.
	DialTimeout time.Duration
	// DialRetry is the interval between connection attempts while peers
	// start up; zero means 50ms.
	DialRetry time.Duration
}

// Transport is a TCP-backed comm.Transport endpoint.
type Transport struct {
	rank  int
	size  int
	ln    net.Listener
	conns []net.Conn // conns[p] is the connection to rank p; nil for self
	inbox []chan frame
	errs  chan error

	closeOnce sync.Once
	closeErr  error
}

type frame struct {
	payload []byte
	err     error
}

// New establishes the mesh and returns this rank's endpoint. It blocks
// until connections to all peers are up. Ranks may start in any order
// within the dial timeout.
func New(cfg Config) (*Transport, error) {
	size := len(cfg.Addrs)
	if size < 1 {
		return nil, errors.New("tcptransport: empty address list")
	}
	if cfg.Rank < 0 || cfg.Rank >= size {
		return nil, fmt.Errorf("tcptransport: rank %d out of range [0,%d)", cfg.Rank, size)
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.DialRetry == 0 {
		cfg.DialRetry = 50 * time.Millisecond
	}
	t := &Transport{
		rank:  cfg.Rank,
		size:  size,
		conns: make([]net.Conn, size),
		inbox: make([]chan frame, size),
		errs:  make(chan error, size),
	}
	for p := range t.inbox {
		t.inbox[p] = make(chan frame, 1)
	}
	if size == 1 {
		return t, nil
	}

	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, fmt.Errorf("tcptransport: listen %s: %w", cfg.Addrs[cfg.Rank], err)
	}
	t.ln = ln

	// Lower ranks dial higher ranks; higher ranks accept from lower ones.
	// That fixes one connection per unordered pair with no tie-breaking.
	type dialResult struct {
		peer int
		conn net.Conn
		err  error
	}
	results := make(chan dialResult, size)
	for p := cfg.Rank + 1; p < size; p++ {
		go func(p int) {
			conn, err := dialWithRetry(cfg.Addrs[p], cfg.DialTimeout, cfg.DialRetry)
			if err == nil {
				err = writeHandshake(conn, cfg.Rank)
			}
			results <- dialResult{p, conn, err}
		}(p)
	}
	go func() {
		for i := 0; i < cfg.Rank; i++ {
			conn, err := ln.Accept()
			if err != nil {
				results <- dialResult{-1, nil, err}
				return
			}
			peer, err := readHandshake(conn)
			if err != nil || peer < 0 || peer >= size {
				err = fmt.Errorf("tcptransport: bad handshake: %v", err)
				results <- dialResult{-1, nil, errors.Join(err, conn.Close())}
				return
			}
			results <- dialResult{peer, conn, nil}
		}
	}()

	needed := size - 1
	for i := 0; i < needed; i++ {
		r := <-results
		if r.err != nil {
			return nil, errors.Join(r.err, t.Close())
		}
		if t.conns[r.peer] != nil {
			err := fmt.Errorf("tcptransport: duplicate connection from rank %d", r.peer)
			return nil, errors.Join(err, r.conn.Close(), t.Close())
		}
		t.conns[r.peer] = r.conn
	}
	// One reader goroutine per peer keeps frames ordered per connection.
	for p, conn := range t.conns {
		if conn == nil {
			continue
		}
		go t.readLoop(p, conn)
	}
	return t, nil
}

func dialWithRetry(addr string, timeout, retry time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, retry)
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				if err := tc.SetNoDelay(true); err != nil {
					// A socket that cannot take options is not usable as a
					// mesh link; surface it like any other dial failure.
					return nil, errors.Join(fmt.Errorf("tcptransport: set nodelay on %s: %w", addr, err), conn.Close())
				}
			}
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("tcptransport: dial %s: %w", addr, err)
		}
		time.Sleep(retry)
	}
}

func writeHandshake(conn net.Conn, rank int) error {
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[0:4], handshakeMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(rank))
	_, err := conn.Write(buf[:])
	return err
}

func readHandshake(conn net.Conn) (int, error) {
	var buf [8]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		return -1, err
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != handshakeMagic {
		return -1, errors.New("tcptransport: bad magic")
	}
	return int(binary.LittleEndian.Uint32(buf[4:8])), nil
}

// readLoop reads frames from peer p and delivers them to the inbox.
func (t *Transport) readLoop(p int, conn net.Conn) {
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			t.inbox[p] <- frame{err: err}
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > maxFrame {
			t.inbox[p] <- frame{err: fmt.Errorf("tcptransport: oversized frame %d from rank %d", n, p)}
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			t.inbox[p] <- frame{err: err}
			return
		}
		t.inbox[p] <- frame{payload: payload}
	}
}

func writeFrame(conn net.Conn, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := conn.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// Rank implements comm.Transport.
func (t *Transport) Rank() int { return t.rank }

// Size implements comm.Transport.
func (t *Transport) Size() int { return t.size }

// Exchange implements comm.Transport.
func (t *Transport) Exchange(out [][]byte) ([][]byte, error) {
	if len(out) != t.size {
		return nil, errors.New("tcptransport: Exchange buffer count != size")
	}
	for p, b := range out {
		if p != t.rank && len(b) > maxFrame {
			return nil, fmt.Errorf("tcptransport: buffer for rank %d exceeds frame limit", p)
		}
	}
	// Write concurrently to avoid head-of-line blocking across peers.
	var wg sync.WaitGroup
	writeErr := make(chan error, t.size)
	for p, conn := range t.conns {
		if conn == nil {
			continue
		}
		wg.Add(1)
		go func(conn net.Conn, payload []byte) {
			defer wg.Done()
			if err := writeFrame(conn, payload); err != nil {
				writeErr <- err
			}
		}(conn, out[p])
	}
	in := make([][]byte, t.size)
	in[t.rank] = out[t.rank]
	for p := range t.conns {
		if t.conns[p] == nil {
			continue
		}
		f := <-t.inbox[p]
		if f.err != nil {
			return nil, fmt.Errorf("tcptransport: receive from rank %d: %w", p, f.err)
		}
		in[p] = f.payload
	}
	wg.Wait()
	select {
	case err := <-writeErr:
		return nil, err
	default:
	}
	return in, nil
}

// AllreduceInt64 implements comm.Transport as allgather + local reduce.
func (t *Transport) AllreduceInt64(vals []int64, op comm.ReduceOp) ([]int64, error) {
	payload := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(payload[8*i:], uint64(v))
	}
	out := make([][]byte, t.size)
	for p := range out {
		out[p] = payload
	}
	in, err := t.Exchange(out)
	if err != nil {
		return nil, err
	}
	// Freshly allocated: callers may hold results of several collectives
	// at once (see memtransport for the rationale).
	res := make([]int64, len(vals))
	copy(res, vals)
	other := make([]int64, len(vals))
	for p, buf := range in {
		if p == t.rank {
			continue
		}
		if len(buf) != 8*len(vals) {
			return nil, fmt.Errorf("tcptransport: Allreduce length mismatch from rank %d", p)
		}
		for i := range other {
			other[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		op.Apply(res, other)
	}
	return res, nil
}

// Barrier implements comm.Transport.
func (t *Transport) Barrier() error {
	_, err := t.AllreduceInt64(nil, comm.Sum)
	return err
}

// Close implements comm.Transport.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		if t.ln != nil {
			t.closeErr = t.ln.Close()
		}
		for _, conn := range t.conns {
			if conn != nil {
				t.closeErr = errors.Join(t.closeErr, conn.Close())
			}
		}
	})
	return t.closeErr
}
