// Package tcptransport implements comm.Transport over TCP sockets,
// forming a real multi-process message-passing machine on commodity
// networks. It is the stand-in for the MPI/SPI layer of the paper's Blue
// Gene/Q implementation (no MPI ecosystem exists for Go, so the RPC layer
// is rolled by hand).
//
// Topology is a full mesh: every pair of ranks shares one TCP connection.
// Rank identities are established by a fixed-size handshake; afterwards
// all traffic is length-prefixed binary frames. The collectives are
// implemented directly on the mesh:
//
//   - Exchange / ExchangeV: write one frame to every peer, read one frame
//     from every peer. TCP ordering plus the lockstep collective
//     discipline make frame matching trivial — the k-th frame on a
//     connection belongs to the k-th collective.
//   - AllreduceInt64: an allgather of the encoded vectors (an Exchange of
//     the same payload to all peers) followed by a local reduction.
//   - Barrier: a zero-length Allreduce.
//
// The data path is built for overlap and reuse:
//
//   - One persistent writer goroutine per peer. A collective enqueues all
//     outgoing frames and immediately starts draining its inboxes, so the
//     P−1 sends proceed concurrently with each other and with the
//     receives — the all-to-all is never serialized on a single socket's
//     flow control.
//   - Frames are written with net.Buffers (writev): the length prefix and
//     the payload segments of a gathered exchange go out in one vectored
//     syscall, with no sender-side concatenation copy.
//   - Frame read buffers are recycled per peer. The Transport contract
//     gives a received buffer to the caller only until its next
//     collective call, at which point the buffer returns to the peer's
//     free list and the read loop reuses it. Steady-state exchanges
//     allocate nothing.
//
// Failure is first-class: startup (accept + handshake) is bounded by
// DialTimeout, so a rogue or stalled connection cannot block New past
// it; Config.CollectiveTimeout bounds each collective's peer I/O, so a
// dead or hung peer turns into an error instead of a blocked read; TCP
// keepalive reaps silently-dead links the timeout would otherwise be the
// only guard against. After any collective returns an error the
// transport is dead (the lockstep frame matching cannot resynchronize)
// and must be Closed. See DESIGN.md "Failure semantics".
//
// Frame format (little-endian): u32 payload length, then payload. The
// handshake frame is: u32 magic, u32 rank.
package tcptransport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"parsssp/internal/comm"
)

const handshakeMagic = 0x50415253 // "PARS"

// maxFrame bounds a single frame payload; larger Exchange buffers are an
// error (they indicate a runaway workload rather than a legitimate need).
const maxFrame = 1 << 30

// Config describes the machine: one address per rank. Rank i listens on
// Addrs[i]; all ranks must share an identical Addrs slice.
type Config struct {
	// Addrs[i] is the host:port endpoint of rank i.
	Addrs []string
	// Rank is this process's rank.
	Rank int
	// DialTimeout bounds connection establishment to each peer — dialing
	// out, accepting in, and the handshake on an accepted connection;
	// zero means 10 seconds.
	DialTimeout time.Duration
	// DialRetry is the interval between connection attempts while peers
	// start up; zero means 50ms.
	DialRetry time.Duration
	// CollectiveTimeout bounds the peer I/O of one collective: how long
	// Exchange/AllreduceInt64/Barrier may block waiting for a peer's
	// frame, and how long a single frame write may take. When it expires
	// the collective returns an error and the transport is dead. Zero
	// means no timeout — correct peers may legitimately be slow (a
	// load-imbalanced superstep), so only deployments that prefer failing
	// a query to waiting (cmd/ssspd defaults to 30s) should set it.
	CollectiveTimeout time.Duration
	// KeepAlivePeriod is the TCP keepalive probe interval, catching peers
	// that vanished without a FIN/RST (power loss, network partition);
	// zero means 15 seconds, negative disables keepalive.
	KeepAlivePeriod time.Duration
}

// Transport is a TCP-backed comm.Transport endpoint. It also implements
// comm.GatherExchanger. After any collective returns an error the
// transport is dead and must be Closed; the lockstep frame matching
// cannot be resynchronized.
type Transport struct {
	rank    int
	size    int
	timeout time.Duration // CollectiveTimeout; zero = none
	ln      net.Listener
	conns   []net.Conn // conns[p] is the connection to rank p; nil for self
	inbox   []chan frame

	// Per-peer writer machinery: sendq carries one prepared frame per
	// collective to the peer's writer goroutine, sendDone returns its
	// write error. Both are capacity-1; the collective discipline admits
	// at most one outstanding frame per peer.
	sendq    []chan net.Buffers
	sendDone []chan error
	// hdrs[p] is the reusable length-prefix storage of the in-flight
	// frame to p; sendBufs[p] the reusable vectored-write segment list.
	hdrs     [][4]byte
	sendBufs []net.Buffers

	// recvFree[p] recycles frame payload buffers of peer p back to its
	// read loop; prevIn[p] is the payload handed to the caller by the
	// previous collective, reclaimable at the next one.
	recvFree []chan []byte
	prevIn   [][]byte

	in      [][]byte   // reused result slice of exchanges
	selfBuf []byte     // reused concatenation of multi-segment self-delivery
	wrap    [][][]byte // reused single-segment wrapping of an Exchange row
	wrapSeg [][1][]byte

	// Pooled Allreduce scratch: the encoded local vector, the shared out
	// row pointing at it, and the decode buffer for each peer's vector.
	reducePayload []byte
	reduceOut     [][][]byte
	reduceTmp     []int64

	closeOnce sync.Once
	closeErr  error
}

type frame struct {
	payload []byte
	err     error
}

// New establishes the mesh and returns this rank's endpoint. It blocks
// until connections to all peers are up. Ranks may start in any order
// within the dial timeout.
func New(cfg Config) (*Transport, error) {
	size := len(cfg.Addrs)
	if size < 1 {
		return nil, errors.New("tcptransport: empty address list")
	}
	if cfg.Rank < 0 || cfg.Rank >= size {
		return nil, fmt.Errorf("tcptransport: rank %d out of range [0,%d)", cfg.Rank, size)
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.DialRetry == 0 {
		cfg.DialRetry = 50 * time.Millisecond
	}
	if cfg.KeepAlivePeriod == 0 {
		cfg.KeepAlivePeriod = 15 * time.Second
	}
	t := &Transport{
		rank:     cfg.Rank,
		size:     size,
		timeout:  cfg.CollectiveTimeout,
		conns:    make([]net.Conn, size),
		inbox:    make([]chan frame, size),
		sendq:    make([]chan net.Buffers, size),
		sendDone: make([]chan error, size),
		hdrs:     make([][4]byte, size),
		sendBufs: make([]net.Buffers, size),
		recvFree: make([]chan []byte, size),
		prevIn:   make([][]byte, size),
		in:       make([][]byte, size),
		wrap:     make([][][]byte, size),
		wrapSeg:  make([][1][]byte, size),
	}
	for p := range t.inbox {
		t.inbox[p] = make(chan frame, 1)
		t.sendq[p] = make(chan net.Buffers, 1)
		t.sendDone[p] = make(chan error, 1)
		t.recvFree[p] = make(chan []byte, 2)
	}
	if size == 1 {
		return t, nil
	}

	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, fmt.Errorf("tcptransport: listen %s: %w", cfg.Addrs[cfg.Rank], err)
	}
	t.ln = ln

	// Lower ranks dial higher ranks; higher ranks accept from lower ones.
	// That fixes one connection per unordered pair with no tie-breaking.
	type dialResult struct {
		peer int
		conn net.Conn
		err  error
	}
	results := make(chan dialResult, size)
	for p := cfg.Rank + 1; p < size; p++ {
		go func(p int) {
			conn, err := dialWithRetry(cfg.Addrs[p], cfg.DialTimeout, cfg.DialRetry, cfg.KeepAlivePeriod)
			if err == nil {
				err = writeHandshake(conn, cfg.Rank)
			}
			results <- dialResult{p, conn, err}
		}(p)
	}
	go func() {
		// The whole accept phase is bounded by DialTimeout: Accept itself
		// via the listener deadline, and each accepted connection's
		// handshake via a read deadline. Without these, one rogue client
		// that connects and sends nothing stalls startup forever.
		deadline := time.Now().Add(cfg.DialTimeout)
		if tl, ok := ln.(*net.TCPListener); ok {
			if err := tl.SetDeadline(deadline); err != nil {
				results <- dialResult{-1, nil, fmt.Errorf("tcptransport: set accept deadline: %w", err)}
				return
			}
		}
		for i := 0; i < cfg.Rank; i++ {
			conn, err := ln.Accept()
			if err != nil {
				results <- dialResult{-1, nil, fmt.Errorf("tcptransport: accept: %w", err)}
				return
			}
			peer, herr := acceptHandshake(conn, deadline, cfg.Rank, cfg.KeepAlivePeriod)
			if herr != nil {
				err := fmt.Errorf("tcptransport: bad handshake: %w", herr)
				results <- dialResult{-1, nil, errors.Join(err, conn.Close())}
				return
			}
			results <- dialResult{peer, conn, nil}
		}
	}()

	needed := size - 1
	for i := 0; i < needed; i++ {
		r := <-results
		if r.err != nil {
			return nil, errors.Join(r.err, t.Close())
		}
		if t.conns[r.peer] != nil {
			err := fmt.Errorf("tcptransport: duplicate connection from rank %d", r.peer)
			return nil, errors.Join(err, r.conn.Close(), t.Close())
		}
		t.conns[r.peer] = r.conn
	}
	// One reader and one writer goroutine per peer: readers keep frames
	// ordered per connection, writers let a collective's sends to all
	// peers proceed concurrently with its receives.
	for p, conn := range t.conns {
		if conn == nil {
			continue
		}
		go t.readLoop(p, conn)
		go t.writeLoop(p, conn)
	}
	return t, nil
}

func dialWithRetry(addr string, timeout, retry, keepAlive time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, retry)
		if err == nil {
			if err := tuneConn(conn, keepAlive); err != nil {
				// A socket that cannot take options is not usable as a
				// mesh link; surface it like any other dial failure.
				return nil, errors.Join(fmt.Errorf("tcptransport: tune %s: %w", addr, err), conn.Close())
			}
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("tcptransport: dial %s: %w", addr, err)
		}
		time.Sleep(retry)
	}
}

// tuneConn applies the mesh socket options: NoDelay (the collectives
// write exactly one frame and then wait, the worst case for Nagle) and
// keepalive (a vanished peer must eventually break the connection even
// if no deadline is armed).
func tuneConn(conn net.Conn, keepAlive time.Duration) error {
	tc, ok := conn.(*net.TCPConn)
	if !ok {
		return nil
	}
	if err := tc.SetNoDelay(true); err != nil {
		return err
	}
	if keepAlive > 0 {
		if err := tc.SetKeepAlive(true); err != nil {
			return err
		}
		if err := tc.SetKeepAlivePeriod(keepAlive); err != nil {
			return err
		}
	}
	return nil
}

// acceptHandshake reads and validates the handshake of an accepted
// connection, bounded by deadline. Only ranks below rank dial this rank
// (higher ranks are dialed by us), so a peer claiming an equal or higher
// rank — which would clobber a dialed connection's slot — is rejected.
func acceptHandshake(conn net.Conn, deadline time.Time, rank int, keepAlive time.Duration) (int, error) {
	if err := conn.SetReadDeadline(deadline); err != nil {
		return -1, err
	}
	peer, err := readHandshake(conn)
	if err != nil {
		return -1, err
	}
	if peer < 0 || peer >= rank {
		return -1, fmt.Errorf("peer claims rank %d; only ranks below %d may dial this rank", peer, rank)
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		return -1, err
	}
	if err := tuneConn(conn, keepAlive); err != nil {
		return -1, err
	}
	return peer, nil
}

func writeHandshake(conn net.Conn, rank int) error {
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[0:4], handshakeMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(rank))
	_, err := conn.Write(buf[:])
	return err
}

func readHandshake(conn net.Conn) (int, error) {
	var buf [8]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		return -1, err
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != handshakeMagic {
		return -1, errors.New("tcptransport: bad magic")
	}
	return int(binary.LittleEndian.Uint32(buf[4:8])), nil
}

// readLoop reads frames from peer p and delivers them to the inbox.
// Payload buffers come from the peer's free list when one is large
// enough, so steady-state traffic reads into recycled memory.
func (t *Transport) readLoop(p int, conn net.Conn) {
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			t.inbox[p] <- frame{err: err}
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > maxFrame {
			t.inbox[p] <- frame{err: fmt.Errorf("tcptransport: oversized frame %d from rank %d", n, p)}
			return
		}
		payload := t.recvBuf(p, int(n))
		if _, err := io.ReadFull(conn, payload); err != nil {
			t.inbox[p] <- frame{err: err}
			return
		}
		t.inbox[p] <- frame{payload: payload}
	}
}

// recvBuf returns a payload buffer of length n, recycling the peer's free
// list when possible. An undersized pooled buffer goes back on the free
// list instead of being dropped: under mixed frame sizes (a big relax
// superstep followed by small allreduces) dropping it would bleed the
// pool down to nothing and put every later frame on the allocator.
func (t *Transport) recvBuf(p, n int) []byte {
	select {
	case b := <-t.recvFree[p]:
		if cap(b) >= n {
			return b[:n]
		}
		t.recycleRecv(p, b)
	default:
	}
	return make([]byte, n)
}

// recycleRecv returns a payload buffer to peer p's free list once its
// owner (the caller of the previous collective) has relinquished it.
func (t *Transport) recycleRecv(p int, b []byte) {
	if cap(b) == 0 {
		return
	}
	select {
	case t.recvFree[p] <- b[:0]:
	default:
	}
}

// writeLoop writes the frames enqueued for peer p. Each queued value is a
// fully prepared vectored frame (length prefix first); the write error is
// reported back through sendDone so the enqueuing collective can
// propagate it.
func (t *Transport) writeLoop(p int, conn net.Conn) {
	for bufs := range t.sendq[p] {
		if t.timeout > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(t.timeout)); err != nil {
				t.sendDone[p] <- err
				continue
			}
		}
		_, err := bufs.WriteTo(conn)
		t.sendDone[p] <- err
	}
}

// Rank implements comm.Transport.
func (t *Transport) Rank() int { return t.rank }

// Size implements comm.Transport.
func (t *Transport) Size() int { return t.size }

// Exchange implements comm.Transport.
func (t *Transport) Exchange(out [][]byte) ([][]byte, error) {
	if len(out) != t.size {
		return nil, errors.New("tcptransport: Exchange buffer count != size")
	}
	for p, b := range out {
		t.wrapSeg[p][0] = b
		t.wrap[p] = t.wrapSeg[p][:]
	}
	return t.exchangeSegs(t.wrap)
}

// ExchangeV implements comm.GatherExchanger.
func (t *Transport) ExchangeV(out [][][]byte) ([][]byte, error) {
	if len(out) != t.size {
		return nil, errors.New("tcptransport: ExchangeV buffer count != size")
	}
	return t.exchangeSegs(out)
}

// exchangeSegs runs the all-to-all: enqueue one frame per peer on the
// writer goroutines, then drain every peer's inbox while the writes
// proceed in the background, then collect the write errors.
func (t *Transport) exchangeSegs(out [][][]byte) ([][]byte, error) {
	for p, segs := range out {
		if p == t.rank {
			continue
		}
		total := 0
		for _, s := range segs {
			total += len(s)
		}
		if total > maxFrame {
			return nil, fmt.Errorf("tcptransport: buffer for rank %d exceeds frame limit", p)
		}
	}
	// Enqueue all sends. The header and segment list storage is per-peer
	// and reused; at most one frame per peer is in flight per collective,
	// and the writer completion is collected below before returning, so
	// the storage (and the caller's segments) are never touched by a
	// writer after this collective ends.
	for p := range out {
		if p == t.rank || t.conns[p] == nil {
			continue
		}
		total := 0
		for _, s := range out[p] {
			total += len(s)
		}
		binary.LittleEndian.PutUint32(t.hdrs[p][:], uint32(total))
		bufs := t.sendBufs[p][:0]
		bufs = append(bufs, t.hdrs[p][:])
		for _, s := range out[p] {
			if len(s) > 0 {
				bufs = append(bufs, s)
			}
		}
		t.sendBufs[p] = bufs
		t.sendq[p] <- bufs
	}

	// Local delivery: zero-copy for a single segment, pooled
	// concatenation otherwise.
	self := out[t.rank]
	if len(self) == 1 {
		t.in[t.rank] = self[0]
	} else {
		buf := t.selfBuf[:0]
		for _, s := range self {
			buf = append(buf, s...)
		}
		t.selfBuf = buf
		t.in[t.rank] = buf
	}

	// Drain the inboxes. The previous collective's payloads are recycled
	// here: by calling into this collective the caller has relinquished
	// them, per the Transport ownership contract. The timer bounds the
	// whole drain — CollectiveTimeout is a budget for the collective, not
	// per peer.
	var timeoutC <-chan time.Time
	if t.timeout > 0 {
		timer := time.NewTimer(t.timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	var recvErr error
	for p := range t.conns {
		if t.conns[p] == nil {
			continue
		}
		var f frame
		select {
		case f = <-t.inbox[p]:
		case <-timeoutC:
			recvErr = errors.Join(recvErr,
				fmt.Errorf("tcptransport: collective timed out after %v waiting for rank %d", t.timeout, p),
				t.failConns())
			// The transport is dead; don't wait on the remaining peers or
			// the writers — failConns makes their in-flight I/O error out,
			// and Close (which the caller owes us after an error) shuts
			// the goroutines down.
			return nil, recvErr
		}
		if f.err != nil {
			recvErr = errors.Join(recvErr, fmt.Errorf("tcptransport: receive from rank %d: %w", p, f.err))
			continue
		}
		t.recycleRecv(p, t.prevIn[p])
		t.prevIn[p] = f.payload
		t.in[p] = f.payload
	}

	// Collect the write completions; after this no writer references the
	// caller's segments.
	var sendErr error
	for p := range t.conns {
		if p == t.rank || t.conns[p] == nil {
			continue
		}
		if err := <-t.sendDone[p]; err != nil {
			sendErr = errors.Join(sendErr, fmt.Errorf("tcptransport: send to rank %d: %w", p, err))
		}
	}
	if err := errors.Join(recvErr, sendErr); err != nil {
		return nil, err
	}
	return t.in, nil
}

// failConns moves every connection's deadline into the past, forcing all
// in-flight reads and writes to fail promptly. Called when a collective
// times out: the transport is dead at that point, and its reader/writer
// goroutines must not stay blocked on peers that will never deliver.
func (t *Transport) failConns() error {
	var err error
	past := time.Unix(1, 0)
	for _, conn := range t.conns {
		if conn != nil {
			err = errors.Join(err, conn.SetDeadline(past))
		}
	}
	return err
}

// AllreduceInt64 implements comm.Transport as allgather + local reduce.
// All scratch (the encoded vector, the shared out row, the per-peer
// decode buffer) is pooled on the transport; only the result is freshly
// allocated, because callers may hold results of several collectives at
// once (see memtransport for the rationale).
func (t *Transport) AllreduceInt64(vals []int64, op comm.ReduceOp) ([]int64, error) {
	payload := t.reducePayload[:0]
	for _, v := range vals {
		payload = binary.LittleEndian.AppendUint64(payload, uint64(v))
	}
	t.reducePayload = payload
	if t.reduceOut == nil {
		t.reduceOut = make([][][]byte, t.size)
	}
	for p := range t.reduceOut {
		t.reduceOut[p] = t.reduceOut[p][:0]
		t.reduceOut[p] = append(t.reduceOut[p], payload)
	}
	in, err := t.exchangeSegs(t.reduceOut)
	if err != nil {
		return nil, err
	}
	res := make([]int64, len(vals))
	copy(res, vals)
	if cap(t.reduceTmp) < len(vals) {
		t.reduceTmp = make([]int64, len(vals))
	}
	other := t.reduceTmp[:len(vals)]
	for p, buf := range in {
		if p == t.rank {
			continue
		}
		if len(buf) != 8*len(vals) {
			return nil, fmt.Errorf("tcptransport: Allreduce length mismatch from rank %d", p)
		}
		for i := range other {
			other[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		op.Apply(res, other)
	}
	return res, nil
}

// Barrier implements comm.Transport.
func (t *Transport) Barrier() error {
	_, err := t.AllreduceInt64(nil, comm.Sum)
	return err
}

// Close implements comm.Transport. Closing shuts the writer goroutines
// down and closes every connection, which also unblocks the read loops.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		for p, conn := range t.conns {
			if conn != nil {
				close(t.sendq[p])
			}
		}
		if t.ln != nil {
			t.closeErr = t.ln.Close()
		}
		for _, conn := range t.conns {
			if conn != nil {
				t.closeErr = errors.Join(t.closeErr, conn.Close())
			}
		}
	})
	return t.closeErr
}
