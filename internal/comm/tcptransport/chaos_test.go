package tcptransport

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// These tests pin down the transport's fail-fast behavior: a dead,
// stalled, or hostile peer must turn into a prompt error on every
// surviving rank, never a hang.

// newPair builds a 2-rank TCP machine, retrying once on a port-reuse
// race, and returns the two transports.
func newPair(t *testing.T, timeout time.Duration) [2]*Transport {
	t.Helper()
	for attempt := 0; attempt < 2; attempt++ {
		addrs := freeAddrs(t, 2)
		var trs [2]*Transport
		var errs [2]error
		var wg sync.WaitGroup
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				trs[r], errs[r] = New(Config{
					Addrs: addrs, Rank: r,
					DialTimeout:       5 * time.Second,
					CollectiveTimeout: timeout,
				})
			}(r)
		}
		wg.Wait()
		if errs[0] == nil && errs[1] == nil {
			return trs
		}
		for _, tr := range trs {
			if tr != nil {
				tr.Close()
			}
		}
	}
	t.Fatal("machine setup failed twice")
	return [2]*Transport{}
}

func TestCollectiveTimeoutOnSilentPeer(t *testing.T) {
	// Rank 1 never enters the collective; rank 0 must fail within the
	// collective timeout instead of blocking on the read forever.
	trs := newPair(t, 300*time.Millisecond)
	defer trs[0].Close()
	defer trs[1].Close()

	start := time.Now()
	out := make([][]byte, 2)
	out[1] = []byte("stranded")
	_, err := trs[0].Exchange(out)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Exchange against a silent peer succeeded")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Errorf("error does not name the timeout: %v", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("timeout took %v with a 300ms collective timeout", elapsed)
	}
	// The transport is dead after the failure; later collectives must
	// error, not hang.
	if _, err := trs[0].Exchange(make([][]byte, 2)); err == nil {
		t.Error("Exchange on a timed-out transport succeeded")
	}
}

func TestCollectiveTimeoutBothSidesRecover(t *testing.T) {
	// A stall shorter than the timeout is invisible: the collective
	// completes once the laggard arrives.
	trs := newPair(t, 2*time.Second)
	defer trs[0].Close()
	defer trs[1].Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if r == 1 {
				time.Sleep(200 * time.Millisecond)
			}
			out := make([][]byte, 2)
			out[1-r] = []byte{byte(r)}
			in, err := trs[r].Exchange(out)
			if err == nil && in[1-r][0] != byte(1-r) {
				t.Errorf("rank %d: bad payload", r)
			}
			errs[r] = err
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

func TestPeerKillMidCollectives(t *testing.T) {
	// Rank 1 completes one round then dies (Close). Rank 0's next
	// collective must error promptly via connection death — no collective
	// timeout is configured, so only the closed socket reports it.
	trs := newPair(t, 0)
	defer trs[0].Close()

	var wg sync.WaitGroup
	var rank0Err error
	wg.Add(2)
	go func() {
		defer wg.Done()
		out := make([][]byte, 2)
		out[1] = []byte("round0")
		if _, err := trs[0].Exchange(out); err != nil {
			rank0Err = err
			return
		}
		_, rank0Err = trs[0].Exchange(out)
	}()
	go func() {
		defer wg.Done()
		out := make([][]byte, 2)
		out[0] = []byte("round0")
		if _, err := trs[1].Exchange(out); err != nil {
			return
		}
		trs[1].Close() // dies before round 1
	}()
	wg.Wait()
	if rank0Err == nil {
		t.Error("rank 0 survived its peer's death without an error")
	}
}

func TestAcceptBoundedWithStalledConnection(t *testing.T) {
	// A rogue client connects to rank 1's listener and sends nothing.
	// Startup must give up within the dial timeout — the stalled
	// handshake read must not block New forever.
	addrs := freeAddrs(t, 2)
	ln, err := net.Listen("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	ln.Close()

	done := make(chan error, 1)
	go func() {
		tr, err := New(Config{
			Addrs: addrs, Rank: 1,
			DialTimeout: 500 * time.Millisecond,
		})
		if tr != nil {
			tr.Close()
		}
		done <- err
	}()
	// Connect without handshaking once the listener is up.
	var rogue net.Conn
	for i := 0; i < 100; i++ {
		rogue, err = net.Dial("tcp", addrs[1])
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rogue != nil {
		defer rogue.Close()
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("New succeeded without a real peer")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("New hung on a stalled handshake")
	}
}

func TestHandshakeRankRejected(t *testing.T) {
	// Only ranks below this one may dial in; a peer claiming an equal or
	// higher rank must be rejected (it would clobber a dialed slot).
	addrs := freeAddrs(t, 2)
	done := make(chan error, 1)
	go func() {
		tr, err := New(Config{
			Addrs: addrs, Rank: 1,
			DialTimeout: 5 * time.Second,
		})
		if tr != nil {
			tr.Close()
		}
		done <- err
	}()
	var conn net.Conn
	var err error
	for i := 0; i < 100; i++ {
		conn, err = net.Dial("tcp", addrs[1])
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := writeHandshake(conn, 1); err != nil { // claims rank 1 == our rank
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("handshake claiming an out-of-range rank accepted")
		} else if !strings.Contains(err.Error(), "claims rank") {
			t.Errorf("unexpected error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("New hung on a bad handshake")
	}
}

func TestZeroTimeoutMeansNone(t *testing.T) {
	// With CollectiveTimeout zero, a short stall must never produce a
	// timeout error.
	trs := newPair(t, 0)
	defer trs[0].Close()
	defer trs[1].Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if r == 1 {
				time.Sleep(300 * time.Millisecond)
			}
			out := make([][]byte, 2)
			out[1-r] = []byte{7}
			_, errs[r] = trs[r].Exchange(out)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}
