package tcptransport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"parsssp/internal/comm"
)

// runMesh starts a full mesh and hands each rank's *Transport to fn —
// like runMachine, but with access to the channel API.
func runMesh(t *testing.T, size int, fn func(tr *Transport) error) {
	t.Helper()
	runMachine(t, size, func(tr comm.Transport) error {
		return fn(tr.(*Transport))
	})
}

// TestChannelsInterleaveCollectives drives several channels of one
// socket mesh concurrently, each running its own lockstep collective
// sequence at its own pace, and checks that frames never cross between
// channels. This is the multiplexing property concurrent query slots
// rely on.
func TestChannelsInterleaveCollectives(t *testing.T) {
	const (
		size     = 3
		channels = 3 // ids 1..3; 0 is the root transport
		rounds   = 25
	)
	runMesh(t, size, func(tr *Transport) error {
		me := tr.Rank()
		errs := make([]error, channels)
		var wg sync.WaitGroup
		for ci := 0; ci < channels; ci++ {
			ch, err := tr.Channel(uint32(ci + 1))
			if err != nil {
				return err
			}
			wg.Add(1)
			go func(ci int, ch *Channel) {
				defer wg.Done()
				for round := 0; round < rounds; round++ {
					out := make([][]byte, size)
					for dst := range out {
						out[dst] = []byte{byte(ci), byte(me), byte(dst), byte(round)}
					}
					in, err := ch.Exchange(out)
					if err != nil {
						errs[ci] = err
						return
					}
					for src := range in {
						got := in[src]
						if len(got) != 4 || got[0] != byte(ci) || got[1] != byte(src) || got[2] != byte(me) || got[3] != byte(round) {
							errs[ci] = fmt.Errorf("channel %d round %d: bad frame from %d: %v", ci+1, round, src, got)
							return
						}
					}
					// Odd channels also reduce, skewing the collective
					// sequences so channels genuinely interleave on the
					// sockets rather than marching in phase.
					if ci%2 == 1 {
						sum, err := ch.AllreduceInt64([]int64{int64(me)}, comm.Sum)
						if err != nil {
							errs[ci] = err
							return
						}
						if want := int64(size * (size - 1) / 2); sum[0] != want {
							errs[ci] = fmt.Errorf("channel %d: sum = %d, want %d", ci+1, sum[0], want)
							return
						}
					}
				}
			}(ci, ch)
		}
		// The root transport keeps its own collective cadence meanwhile.
		var rootErr error
		for round := 0; round < rounds; round++ {
			if err := tr.Barrier(); err != nil {
				rootErr = err
				break
			}
		}
		wg.Wait()
		errs = append(errs, rootErr)
		return errors.Join(errs...)
	})
}

// TestChannelAbortIsolation proves the two-tier failure contract: a
// channel Abort poisons that channel on every rank (so no peer hangs in
// one of its collectives) and nothing else on the mesh.
func TestChannelAbortIsolation(t *testing.T) {
	const size = 2
	cause := errors.New("slot query failed")
	runMesh(t, size, func(tr *Transport) error {
		doomed, err := tr.Channel(1)
		if err != nil {
			return err
		}
		healthy, err := tr.Channel(2)
		if err != nil {
			return err
		}
		// Both channels work before the fault.
		if err := doomed.Barrier(); err != nil {
			return fmt.Errorf("channel 1 before abort: %w", err)
		}
		if err := healthy.Barrier(); err != nil {
			return fmt.Errorf("channel 2 before abort: %w", err)
		}
		if tr.Rank() == 0 {
			doomed.Abort(cause)
			if err := doomed.Barrier(); !errors.Is(err, comm.ErrAborted) || !errors.Is(err, cause) {
				return fmt.Errorf("aborting rank: channel 1 err = %v, want ErrAborted wrapping the cause", err)
			}
		} else {
			// The peer learns of the abort from the control frame; its
			// next channel-1 collective must fail rather than hang. The
			// error carries the aborting rank's cause text.
			err := doomed.Barrier()
			if !errors.Is(err, comm.ErrAborted) {
				return fmt.Errorf("peer: channel 1 err = %v, want ErrAborted", err)
			}
		}
		// The sibling channel and the root transport are untouched, in
		// both directions, after the abort.
		for round := 0; round < 5; round++ {
			out := make([][]byte, size)
			for dst := range out {
				out[dst] = []byte{byte(tr.Rank()), byte(round)}
			}
			in, err := healthy.Exchange(out)
			if err != nil {
				return fmt.Errorf("channel 2 after abort: %w", err)
			}
			for src := range in {
				if in[src][0] != byte(src) || in[src][1] != byte(round) {
					return fmt.Errorf("channel 2 after abort: bad frame from %d: %v", src, in[src])
				}
			}
			if err := tr.Barrier(); err != nil {
				return fmt.Errorf("root after abort: %w", err)
			}
		}
		return nil
	})
}

// TestChannelCloseIsChannelScoped checks that Close on a channel behaves
// like an abort for that channel only.
func TestChannelCloseIsChannelScoped(t *testing.T) {
	const size = 2
	runMesh(t, size, func(tr *Transport) error {
		c1, err := tr.Channel(1)
		if err != nil {
			return err
		}
		c2, err := tr.Channel(2)
		if err != nil {
			return err
		}
		if err := c1.Barrier(); err != nil {
			return err
		}
		if err := c1.Close(); err != nil {
			return err
		}
		if err := c1.Barrier(); !errors.Is(err, comm.ErrAborted) {
			return fmt.Errorf("closed channel err = %v, want ErrAborted", err)
		}
		return c2.Barrier()
	})
}

func TestChannelValidation(t *testing.T) {
	tr, err := New(Config{Addrs: []string{"127.0.0.1:1"}, Rank: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Channel(1 << 31); err == nil {
		t.Error("channel id with the control bit set accepted")
	}
	a, err := tr.Channel(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Channel(7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Channel(7) is not idempotent")
	}
	// Single-rank channels still self-deliver.
	in, err := a.Exchange([][]byte{[]byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	if string(in[0]) != "hi" {
		t.Errorf("self delivery %q", in[0])
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Channel(3); err == nil {
		t.Error("Channel on a closed transport accepted")
	}
}

// TestChannelMeshCloseFailsAllChannels pins the other tier: killing the
// whole transport (socket death) must poison every channel, not just the
// root, so no slot hangs on a dead mesh.
func TestChannelMeshCloseFailsAllChannels(t *testing.T) {
	addrs := freeAddrs(t, 2)
	trs := make([]*Transport, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = New(Config{Addrs: addrs, Rank: r, DialTimeout: 5 * time.Second})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Skipf("setup race on rank %d: %v", r, err) // port reuse; covered elsewhere
		}
	}
	ch, err := trs[0].Channel(4)
	if err != nil {
		t.Fatal(err)
	}
	trs[1].Close()
	out := make([][]byte, 2)
	out[1] = []byte("hello")
	if _, err := ch.Exchange(out); err == nil {
		t.Error("channel Exchange against a dead mesh succeeded")
	}
	trs[0].Close()
	if err := ch.Barrier(); err == nil {
		t.Error("channel collective after mesh close succeeded")
	}
}
