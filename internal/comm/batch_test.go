package comm

import (
	"bytes"
	"testing"
	"time"
)

// fakeBatchTransport extends fakeTransport with an in-memory batch queue
// so the wrapper behavior (Counting, Latent, Faulty, SupportsBatch) can
// be observed without a real group.
type fakeBatchTransport struct {
	fakeTransport
	sent  []fakeBatch
	queue []fakeBatch
}

type fakeBatch struct {
	src, dest int
	payload   []byte
}

func (f *fakeBatchTransport) SendBatch(dest int, payload []byte) error {
	f.sent = append(f.sent, fakeBatch{src: f.rank, dest: dest, payload: append([]byte(nil), payload...)})
	return nil
}

func (f *fakeBatchTransport) RecvBatch(wait time.Duration) (int, []byte, bool, error) {
	if len(f.queue) == 0 {
		return 0, nil, false, nil
	}
	b := f.queue[0]
	f.queue = f.queue[1:]
	return b.src, b.payload, true, nil
}

func (f *fakeBatchTransport) SupportsBatch() bool { return true }

func TestSupportsBatchProbe(t *testing.T) {
	plain := &fakeTransport{rank: 0, size: 2}
	if SupportsBatch(plain) {
		t.Error("plain transport reported batch support")
	}
	fb := &fakeBatchTransport{fakeTransport: fakeTransport{rank: 0, size: 2}}
	if !SupportsBatch(fb) {
		t.Error("batch transport not detected")
	}
	// The probe must see through every interposer in a wrapper chain.
	if !SupportsBatch(NewCounting(fb)) {
		t.Error("Counting hid batch support")
	}
	if !SupportsBatch(NewLatent(fb, time.Millisecond)) {
		t.Error("Latent hid batch support")
	}
	f, err := NewFaulty(fb, Fault{Collective: 99, Kind: FaultError})
	if err != nil {
		t.Fatal(err)
	}
	if !SupportsBatch(f) {
		t.Error("Faulty hid batch support")
	}
	if SupportsBatch(NewCounting(plain)) {
		t.Error("Counting invented batch support")
	}
}

func TestCountingBatchTraffic(t *testing.T) {
	fb := &fakeBatchTransport{fakeTransport: fakeTransport{rank: 1, size: 3}}
	c := NewCounting(fb)
	if err := c.SendBatch(0, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(1, make([]byte, 100)); err != nil { // self: local delivery
		t.Fatal(err)
	}
	if c.Stats.BytesSent != 32 || c.Stats.MessagesSent != 1 {
		t.Errorf("after sends: BytesSent=%d MessagesSent=%d, want 32/1",
			c.Stats.BytesSent, c.Stats.MessagesSent)
	}
	fb.queue = append(fb.queue, fakeBatch{src: 2, payload: make([]byte, 16)})
	if _, _, ok, err := c.RecvBatch(0); err != nil || !ok {
		t.Fatalf("RecvBatch: ok=%v err=%v", ok, err)
	}
	if c.Stats.BytesReceived != 16 {
		t.Errorf("BytesReceived = %d, want 16", c.Stats.BytesReceived)
	}
}

func TestLatentBatchDelay(t *testing.T) {
	const delay = 30 * time.Millisecond
	fb := &fakeBatchTransport{fakeTransport: fakeTransport{rank: 0, size: 2}}
	l := NewLatent(fb, delay)

	// SendBatch is free for the sender.
	start := time.Now()
	if err := l.SendBatch(1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > delay {
		t.Errorf("SendBatch slept %v; one-way latency must be charged at the receiver", d)
	}

	// A freshly arrived batch is invisible to a poll until Delay passes.
	fb.queue = append(fb.queue, fakeBatch{src: 1, payload: []byte("msg")})
	if _, _, ok, _ := l.RecvBatch(0); ok {
		t.Fatal("batch visible to a poll before its latency elapsed")
	}
	// A bounded wait spanning the remaining latency delivers it.
	src, payload, ok, err := l.RecvBatch(2 * delay)
	if err != nil || !ok {
		t.Fatalf("bounded wait: ok=%v err=%v", ok, err)
	}
	if src != 1 || !bytes.Equal(payload, []byte("msg")) {
		t.Errorf("got src=%d payload=%q", src, payload)
	}
	// Drained queue: a poll stays empty and a short wait times out clean.
	if _, _, ok, _ := l.RecvBatch(0); ok {
		t.Error("empty queue returned a batch")
	}
}

func TestFaultyBatchPassthrough(t *testing.T) {
	// Batches pass through Faulty untouched and do not advance the
	// collective fault schedule: a fault aimed at collective 1 must fire
	// on the second collective no matter how many batches flow between.
	fb := &fakeBatchTransport{fakeTransport: fakeTransport{rank: 0, size: 2}}
	f, err := NewFaulty(fb, Fault{Collective: 1, Kind: FaultError})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Barrier(); err != nil { // collective 0: clean
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := f.SendBatch(1, []byte("x")); err != nil {
			t.Fatal(err)
		}
		fb.queue = append(fb.queue, fakeBatch{src: 1, payload: []byte("y")})
		if _, _, ok, err := f.RecvBatch(0); err != nil || !ok {
			t.Fatalf("RecvBatch through Faulty: ok=%v err=%v", ok, err)
		}
	}
	if err := f.Barrier(); err == nil { // collective 1: fault fires here
		t.Fatal("fault did not fire on the scheduled collective")
	}
	if len(fb.sent) != 5 {
		t.Errorf("%d batches reached the wrapped transport, want 5", len(fb.sent))
	}
}

func TestBatchUnsupportedErrors(t *testing.T) {
	plain := &fakeTransport{rank: 0, size: 2}
	l := NewLatent(plain, time.Millisecond)
	if err := l.SendBatch(1, []byte("x")); err != ErrBatchUnsupported {
		t.Errorf("Latent.SendBatch over plain transport: %v", err)
	}
	if _, _, _, err := l.RecvBatch(0); err != ErrBatchUnsupported {
		t.Errorf("Latent.RecvBatch over plain transport: %v", err)
	}
}
