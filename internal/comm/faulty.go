package comm

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"parsssp/internal/rng"
)

// This file implements Faulty, the deterministic fault-injection wrapper
// used by the chaos tests. The paper's BSP structure assumes every rank
// reaches every collective — a guarantee Blue Gene/Q's MPI runtime gave
// and our stand-in transports do not. Faulty manufactures exactly the
// violations of that assumption a deployment sees (rank death, hangs,
// damaged payloads) at chosen collective indices, so tests can prove the
// stack fails fast — every surviving rank gets an error, nothing hangs,
// nothing panics — instead of verifying it by outage.

// ErrInjected marks every error Faulty manufactures, for errors.Is.
var ErrInjected = errors.New("comm: injected fault")

// FaultKind enumerates the failure modes Faulty injects.
type FaultKind int

const (
	// FaultError makes the collective return an error without touching
	// the wrapped transport: the model of a rank-local failure (a bug, an
	// OOM kill caught by a recover layer) between collectives. Peers are
	// NOT notified — propagating the failure is the caller's job (see
	// comm.Abort), which is exactly what the tests using FaultError prove.
	FaultError FaultKind = iota
	// FaultCrash closes the wrapped transport and returns an error: the
	// rank dies abruptly mid-collective. Peers observe transport death
	// (connection reset over TCP, group abort over memtransport).
	FaultCrash
	// FaultStall sleeps for Fault.Stall before running the collective,
	// modelling a hung rank. With a collective timeout configured, peers
	// time out and error; the stalled rank then finds its transport dead
	// when it resumes.
	FaultStall
	// FaultTruncate drops the final byte of every outgoing Exchange
	// payload (and the final element of an Allreduce vector), modelling a
	// frame cut short on the wire. Receivers must detect the damage and
	// error, not mis-decode.
	FaultTruncate
	// FaultCorrupt XORs every outgoing Exchange payload byte with 0xA5,
	// modelling in-flight corruption. On an Allreduce or Barrier, where
	// the int64 lanes carry no structure whose violation is detectable,
	// it degrades to FaultError.
	FaultCorrupt
)

// String returns the kind name.
func (k FaultKind) String() string {
	switch k {
	case FaultError:
		return "error"
	case FaultCrash:
		return "crash"
	case FaultStall:
		return "stall"
	case FaultTruncate:
		return "truncate"
	case FaultCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault schedules one injection.
type Fault struct {
	// Collective is the 0-based index, counted across Exchange,
	// ExchangeV, AllreduceInt64 and Barrier calls on this endpoint, at
	// which the fault fires.
	Collective int
	// Kind is the failure mode.
	Kind FaultKind
	// Stall is the hang duration of a FaultStall.
	Stall time.Duration
}

// Faulty wraps a Transport and injects the scheduled faults. It is
// deterministic: the same schedule against the same collective sequence
// fires the same faults, so a chaos test that passes once passes always.
// Faulty implements GatherExchanger regardless of the wrapped transport
// and, like the transports themselves, is not safe for concurrent use.
type Faulty struct {
	T      Transport
	faults map[int]Fault
	calls  int
	// mangle scratch: damaged payloads are copied here, never mutated in
	// place — callers own their out buffers.
	scratch [][]byte
	merged  [][]byte // ExchangeV fallback concatenation buffers
}

// NewFaulty wraps t with a fault schedule. Duplicate collective indices
// are rejected rather than silently last-wins.
func NewFaulty(t Transport, faults ...Fault) (*Faulty, error) {
	m := make(map[int]Fault, len(faults))
	for _, f := range faults {
		if f.Collective < 0 {
			return nil, fmt.Errorf("comm: fault at negative collective %d", f.Collective)
		}
		if _, dup := m[f.Collective]; dup {
			return nil, fmt.Errorf("comm: duplicate fault at collective %d", f.Collective)
		}
		m[f.Collective] = f
	}
	return &Faulty{T: t, faults: m}, nil
}

// FaultPlan derives a deterministic fault schedule from seed: n faults
// at distinct collective indices in [0, span), with kinds drawn from
// kinds (all kinds when empty) and the given stall duration. The same
// seed always yields the same plan, so a failing chaos seed is a
// reproducer, not a flake.
func FaultPlan(seed uint64, n, span int, stall time.Duration, kinds ...FaultKind) []Fault {
	if n > span {
		n = span
	}
	if len(kinds) == 0 {
		kinds = []FaultKind{FaultError, FaultCrash, FaultStall, FaultTruncate, FaultCorrupt}
	}
	r := rng.NewSplitMix64(seed)
	used := make(map[int]bool, n)
	plan := make([]Fault, 0, n)
	for len(plan) < n {
		at := int(r.Next() % uint64(span))
		if used[at] {
			continue
		}
		used[at] = true
		plan = append(plan, Fault{
			Collective: at,
			Kind:       kinds[int(r.Next()%uint64(len(kinds)))],
			Stall:      stall,
		})
	}
	sort.Slice(plan, func(i, j int) bool { return plan[i].Collective < plan[j].Collective })
	return plan
}

// Collectives returns the number of collectives issued so far, i.e. the
// index the next collective will have. Tests use it to size fault spans.
func (f *Faulty) Collectives() int { return f.calls }

// step consumes one collective index and returns its scheduled fault.
func (f *Faulty) step() (Fault, bool) {
	idx := f.calls
	f.calls++
	flt, ok := f.faults[idx]
	return flt, ok
}

// errAt builds the injected error for flt.
func (f *Faulty) errAt(flt Fault) error {
	return fmt.Errorf("%w: rank %d: %v at collective %d", ErrInjected, f.T.Rank(), flt.Kind, flt.Collective)
}

// mangleOut returns a damaged copy of out per kind (FaultTruncate or
// FaultCorrupt). Self-delivery is damaged too: a frame mangled on the
// wire is mangled for every consumer the test cares about, and keeping
// the self copy intact would let a single-rank machine dodge the fault.
func (f *Faulty) mangleOut(out [][]byte, kind FaultKind) [][]byte {
	if len(f.scratch) < len(out) {
		f.scratch = make([][]byte, len(out))
	}
	for i, b := range out {
		buf := append(f.scratch[i][:0], b...)
		switch kind {
		case FaultTruncate:
			if len(buf) > 0 {
				buf = buf[:len(buf)-1]
			}
		case FaultCorrupt:
			for j := range buf {
				buf[j] ^= 0xA5
			}
		}
		f.scratch[i] = buf
	}
	return f.scratch[:len(out)]
}

// Rank implements Transport.
func (f *Faulty) Rank() int { return f.T.Rank() }

// Size implements Transport.
func (f *Faulty) Size() int { return f.T.Size() }

// Exchange implements Transport, injecting any fault scheduled for this
// collective index.
func (f *Faulty) Exchange(out [][]byte) ([][]byte, error) {
	if flt, ok := f.step(); ok {
		switch flt.Kind {
		case FaultError:
			return nil, f.errAt(flt)
		case FaultCrash:
			return nil, errors.Join(f.errAt(flt), f.T.Close())
		case FaultStall:
			time.Sleep(flt.Stall)
		case FaultTruncate, FaultCorrupt:
			out = f.mangleOut(out, flt.Kind)
		}
	}
	return f.T.Exchange(out)
}

// ExchangeV implements GatherExchanger. A faulted ExchangeV flattens the
// segment lists so the damage applies to the logical payload; the clean
// path passes segments through to the wrapped transport's gathered
// exchange when it has one.
func (f *Faulty) ExchangeV(out [][][]byte) ([][]byte, error) {
	if flt, ok := f.step(); ok {
		switch flt.Kind {
		case FaultError:
			return nil, f.errAt(flt)
		case FaultCrash:
			return nil, errors.Join(f.errAt(flt), f.T.Close())
		case FaultStall:
			time.Sleep(flt.Stall)
		case FaultTruncate, FaultCorrupt:
			flat := f.flatten(out)
			flat = f.mangleOut(flat, flt.Kind)
			// step was already consumed; send the damaged buffers plainly.
			return f.T.Exchange(flat)
		}
	}
	if ge, ok := f.T.(GatherExchanger); ok {
		return ge.ExchangeV(out)
	}
	return f.T.Exchange(f.flatten(out))
}

// flatten concatenates each destination's segments into pooled buffers
// (the plain-Exchange fallback, as in Counting).
func (f *Faulty) flatten(out [][][]byte) [][]byte {
	if len(f.merged) != len(out) {
		f.merged = make([][]byte, len(out))
	}
	for i, segs := range out {
		buf := f.merged[i][:0]
		for _, s := range segs {
			buf = append(buf, s...)
		}
		f.merged[i] = buf
	}
	return f.merged
}

// AllreduceInt64 implements Transport. FaultTruncate drops the final
// vector element, which peers must reject as a length mismatch;
// FaultCorrupt degrades to FaultError (see its doc).
func (f *Faulty) AllreduceInt64(vals []int64, op ReduceOp) ([]int64, error) {
	if flt, ok := f.step(); ok {
		switch flt.Kind {
		case FaultError, FaultCorrupt:
			return nil, f.errAt(flt)
		case FaultCrash:
			return nil, errors.Join(f.errAt(flt), f.T.Close())
		case FaultStall:
			time.Sleep(flt.Stall)
		case FaultTruncate:
			if len(vals) > 0 {
				vals = append([]int64(nil), vals[:len(vals)-1]...)
			} else {
				return nil, f.errAt(flt)
			}
		}
	}
	return f.T.AllreduceInt64(vals, op)
}

// Barrier implements Transport. Payload faults degrade to FaultError: a
// barrier carries nothing to damage.
func (f *Faulty) Barrier() error {
	if flt, ok := f.step(); ok {
		switch flt.Kind {
		case FaultError, FaultTruncate, FaultCorrupt:
			return f.errAt(flt)
		case FaultCrash:
			return errors.Join(f.errAt(flt), f.T.Close())
		case FaultStall:
			time.Sleep(flt.Stall)
		}
	}
	return f.T.Barrier()
}

// SendBatch implements BatchSender, delegating without consuming a
// collective index: the fault schedule counts collectives only, so the
// same plan stays meaningful whether a run is BSP or async (async data
// batches vary in count run to run; the collectives do not).
func (f *Faulty) SendBatch(dest int, payload []byte) error {
	bs, ok := f.T.(BatchSender)
	if !ok {
		return ErrBatchUnsupported
	}
	return bs.SendBatch(dest, payload)
}

// RecvBatch implements BatchSender, delegating without consuming a
// collective index (see SendBatch).
func (f *Faulty) RecvBatch(wait time.Duration) (int, []byte, bool, error) {
	bs, ok := f.T.(BatchSender)
	if !ok {
		return 0, nil, false, ErrBatchUnsupported
	}
	return bs.RecvBatch(wait)
}

// SupportsBatch forwards the async-batch capability probe to the wrapped
// transport.
func (f *Faulty) SupportsBatch() bool { return SupportsBatch(f.T) }

// Close implements Transport.
func (f *Faulty) Close() error { return f.T.Close() }

// Abort implements Aborter, delegating to the wrapped transport.
func (f *Faulty) Abort(err error) { Abort(f.T, err) }
