// Package comm defines the message-passing substrate that stands in for
// the MPI/SPI communication layer of the paper's Blue Gene/Q
// implementation.
//
// The SSSP engine is written against the Transport interface, which
// provides exactly the collectives the paper's algorithm needs:
//
//   - Exchange — the per-superstep all-to-all personalized exchange
//     (MPI_Alltoallv): relaxations, pull requests and pull responses all
//     travel through it.
//   - AllreduceInt64 — the termination checks, next-bucket computation and
//     the push/pull cost aggregation.
//   - Barrier — bulk-synchronous phase boundaries.
//
// Two implementations exist: memtransport (logical ranks inside one
// process, used for all benchmarks) and tcptransport (a hand-rolled
// length-prefixed RPC over TCP, letting separate OS processes form a real
// distributed machine). Both are deterministic given deterministic inputs.
package comm

import "fmt"

// ReduceOp selects the elementwise reduction applied by AllreduceInt64.
type ReduceOp int

const (
	// Sum adds the contributions of all ranks.
	Sum ReduceOp = iota
	// Min takes the elementwise minimum.
	Min
	// Max takes the elementwise maximum.
	Max
)

// String returns the op name.
func (op ReduceOp) String() string {
	switch op {
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("ReduceOp(%d)", int(op))
	}
}

// Apply reduces b into a elementwise and returns a.
func (op ReduceOp) Apply(a, b []int64) []int64 {
	for i := range a {
		switch op {
		case Sum:
			a[i] += b[i]
		case Min:
			if b[i] < a[i] {
				a[i] = b[i]
			}
		case Max:
			if b[i] > a[i] {
				a[i] = b[i]
			}
		}
	}
	return a
}

// Transport is one rank's endpoint of a P-rank message-passing machine.
// All methods with collective semantics (Exchange, AllreduceInt64,
// Barrier) must be called by every rank in the same order; mixing orders
// deadlocks, exactly as in MPI.
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Exchange sends out[i] to rank i (out[Rank()] is delivered locally)
	// and returns in, where in[i] is the buffer sent by rank i to this
	// rank in the same collective call. nil and empty buffers are allowed.
	// The returned buffers are owned by the caller until the next call.
	Exchange(out [][]byte) (in [][]byte, err error)
	// AllreduceInt64 reduces vals elementwise across all ranks with op and
	// returns the result (same on every rank).
	AllreduceInt64(vals []int64, op ReduceOp) ([]int64, error)
	// Barrier blocks until every rank has entered it.
	Barrier() error
	// Close releases resources. The transport must not be used afterwards.
	Close() error
}

// TrafficStats accumulates wire-level counters for a transport.
type TrafficStats struct {
	// ExchangeCalls is the number of Exchange collectives.
	ExchangeCalls int64
	// BytesSent counts payload bytes this rank sent to other ranks
	// (excluding the local self-delivery).
	BytesSent int64
	// BytesReceived counts payload bytes received from other ranks.
	BytesReceived int64
	// MessagesSent counts non-empty buffers sent to other ranks.
	MessagesSent int64
	// AllreduceCalls counts AllreduceInt64 collectives.
	AllreduceCalls int64
	// BarrierCalls counts Barrier collectives.
	BarrierCalls int64
}

// Counting wraps a Transport and accumulates TrafficStats. It is not safe
// for concurrent use by multiple goroutines, matching the underlying
// collectives' calling discipline (one caller per rank).
type Counting struct {
	T     Transport
	Stats TrafficStats
}

// NewCounting returns a counting wrapper around t.
func NewCounting(t Transport) *Counting { return &Counting{T: t} }

// Rank implements Transport.
func (c *Counting) Rank() int { return c.T.Rank() }

// Size implements Transport.
func (c *Counting) Size() int { return c.T.Size() }

// Exchange implements Transport, counting payload traffic.
func (c *Counting) Exchange(out [][]byte) ([][]byte, error) {
	c.Stats.ExchangeCalls++
	me := c.T.Rank()
	for i, b := range out {
		if i == me || len(b) == 0 {
			continue
		}
		c.Stats.BytesSent += int64(len(b))
		c.Stats.MessagesSent++
	}
	in, err := c.T.Exchange(out)
	if err != nil {
		return nil, err
	}
	for i, b := range in {
		if i == me {
			continue
		}
		c.Stats.BytesReceived += int64(len(b))
	}
	return in, nil
}

// AllreduceInt64 implements Transport.
func (c *Counting) AllreduceInt64(vals []int64, op ReduceOp) ([]int64, error) {
	c.Stats.AllreduceCalls++
	return c.T.AllreduceInt64(vals, op)
}

// Barrier implements Transport.
func (c *Counting) Barrier() error {
	c.Stats.BarrierCalls++
	return c.T.Barrier()
}

// Close implements Transport.
func (c *Counting) Close() error { return c.T.Close() }
