// Package comm defines the message-passing substrate that stands in for
// the MPI/SPI communication layer of the paper's Blue Gene/Q
// implementation.
//
// The SSSP engine is written against the Transport interface, which
// provides exactly the collectives the paper's algorithm needs:
//
//   - Exchange — the per-superstep all-to-all personalized exchange
//     (MPI_Alltoallv): relaxations, pull requests and pull responses all
//     travel through it.
//   - AllreduceInt64 — the termination checks, next-bucket computation and
//     the push/pull cost aggregation.
//   - Barrier — bulk-synchronous phase boundaries.
//
// Two implementations exist: memtransport (logical ranks inside one
// process, used for all benchmarks) and tcptransport (a hand-rolled
// length-prefixed RPC over TCP, letting separate OS processes form a real
// distributed machine). Both are deterministic given deterministic inputs.
package comm

import (
	"errors"
	"fmt"
	"time"
)

// ReduceOp selects the elementwise reduction applied by AllreduceInt64.
type ReduceOp int

const (
	// Sum adds the contributions of all ranks.
	Sum ReduceOp = iota
	// Min takes the elementwise minimum.
	Min
	// Max takes the elementwise maximum.
	Max
)

// String returns the op name.
func (op ReduceOp) String() string {
	switch op {
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("ReduceOp(%d)", int(op))
	}
}

// Apply reduces b into a elementwise and returns a. The op dispatch is
// hoisted out of the element loop: Apply sits on the allreduce path of
// every bulk-synchronous phase, and a per-element branch there is pure
// overhead.
func (op ReduceOp) Apply(a, b []int64) []int64 {
	switch op {
	case Sum:
		for i := range a {
			a[i] += b[i]
		}
	case Min:
		for i := range a {
			if b[i] < a[i] {
				a[i] = b[i]
			}
		}
	case Max:
		for i := range a {
			if b[i] > a[i] {
				a[i] = b[i]
			}
		}
	}
	return a
}

// Transport is one rank's endpoint of a P-rank message-passing machine.
// All methods with collective semantics (Exchange, AllreduceInt64,
// Barrier) must be called by every rank in the same order; mixing orders
// deadlocks, exactly as in MPI.
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Exchange sends out[i] to rank i (out[Rank()] is delivered locally)
	// and returns in, where in[i] is the buffer sent by rank i to this
	// rank in the same collective call. nil and empty buffers are allowed.
	// The returned buffers are owned by the caller until the next call.
	Exchange(out [][]byte) (in [][]byte, err error)
	// AllreduceInt64 reduces vals elementwise across all ranks with op and
	// returns the result (same on every rank).
	AllreduceInt64(vals []int64, op ReduceOp) ([]int64, error)
	// Barrier blocks until every rank has entered it.
	Barrier() error
	// Close releases resources. The transport must not be used afterwards.
	Close() error
}

// ErrAborted marks errors produced by collectives that failed because
// the transport was aborted (by Abort, or by a peer's endpoint closing)
// rather than by this rank's own fault. Error-collection code uses it to
// tell the root cause of a machine-wide failure from its propagation:
// the rank that failed returns its own error, its peers return
// ErrAborted-wrapped ones.
var ErrAborted = errors.New("comm: transport aborted")

// Aborter is an optional Transport extension for transports that can
// fail fast: Abort(err) poisons the transport so that every collective
// blocked on it — on any rank it can reach — and every subsequent
// collective returns an error wrapping ErrAborted and err, without
// waiting for peers that will never arrive. Abort is safe to call
// concurrently with collectives and more than once (the first cause
// wins). Unlike Close, Abort carries the cause to the ranks it unblocks.
type Aborter interface {
	Abort(err error)
}

// Abort fail-fasts t with cause err: transports (or wrappers) that
// implement Aborter propagate the cause; for the rest Close is the only
// available abort signal — it unblocks local collectives and makes
// remote peers observe connection death. Callers whose rank abandons the
// lockstep collective sequence mid-run (an engine error between
// collectives) must call Abort, or peers deadlock waiting at a
// collective this rank will never reach.
func Abort(t Transport, err error) {
	if a, ok := t.(Aborter); ok {
		a.Abort(err)
		return
	}
	// Close here is a best-effort unblock on an already-failing path; its
	// error has nowhere useful to go — the abort cause err is what callers
	// report.
	_ = t.Close() //parssspvet:allow transporterr -- abort fallback: the abort cause, not the close error, is reported
}

// ErrBatchUnsupported is returned by BatchSender wrappers whose wrapped
// transport does not implement asynchronous batches. Engines select the
// async execution path only after SupportsBatch says the whole wrapper
// chain can carry it, so hitting this error indicates a wiring bug.
var ErrBatchUnsupported = errors.New("comm: transport does not support async batches")

// BatchSender is an optional Transport extension for the asynchronous
// execution mode: point-to-point, non-collective batch delivery. Unlike
// the collectives, SendBatch and RecvBatch impose no ordering discipline
// across ranks — any rank may send to any rank at any time, and batches
// from one sender arrive in send order but interleave arbitrarily with
// other senders'.
//
// SendBatch must not block on the receiver (fire-and-forget; the payload
// is copied before the call returns, so the caller may reuse it
// immediately). RecvBatch returns one pending batch if any: with wait=0
// it polls and returns ok=false when the queue is empty; with wait>0 it
// blocks up to wait for a batch to arrive. A transport abort (Abort, a
// peer's death, Close) fails both with an error wrapping ErrAborted, so
// an async receive loop can never outlive the machine it is part of.
// The returned payload is owned by the receiver.
//
// The same endpoint may be used for collectives and batches concurrently:
// the asynchronous termination-detection protocol settles over
// AllreduceInt64 while data batches are still in flight.
type BatchSender interface {
	SendBatch(dest int, payload []byte) error
	RecvBatch(wait time.Duration) (src int, payload []byte, ok bool, err error)
}

// batchProber lets wrappers report whether their wrapped chain supports
// asynchronous batches (the wrapper itself always implements BatchSender,
// delegating or failing with ErrBatchUnsupported at call time).
type batchProber interface {
	SupportsBatch() bool
}

// SupportsBatch reports whether t can carry asynchronous batches:
// wrappers forward the probe to the transport they wrap, bare transports
// answer for themselves.
func SupportsBatch(t Transport) bool {
	if p, ok := t.(batchProber); ok {
		return p.SupportsBatch()
	}
	_, ok := t.(BatchSender)
	return ok
}

// GatherExchanger is an optional Transport extension: a gathered
// (vectored) Exchange that takes each destination's payload as a list of
// segments instead of one contiguous buffer. out[i] is the segment list
// for rank i; the logical payload is the segments' concatenation, and
// in[i] is delivered contiguous exactly as with Exchange. Transports that
// implement it consume per-thread staging buffers directly, eliminating
// the sender-side concatenation copy. Segment slices are owned by the
// caller again as soon as the call returns; the same collective-ordering
// discipline as Exchange applies.
type GatherExchanger interface {
	ExchangeV(out [][][]byte) (in [][]byte, err error)
}

// TrafficStats accumulates wire-level counters for a transport.
type TrafficStats struct {
	// ExchangeCalls is the number of Exchange collectives.
	ExchangeCalls int64
	// BytesSent counts payload bytes this rank sent to other ranks
	// (excluding the local self-delivery).
	BytesSent int64
	// BytesReceived counts payload bytes received from other ranks.
	BytesReceived int64
	// MessagesSent counts non-empty buffers sent to other ranks.
	MessagesSent int64
	// RecordsSent counts application-level records sent to other ranks.
	// The byte counters depend on the wire encoding; the record counters
	// do not, so the paper's communication-volume metric stays defined in
	// records whatever codec is on the wire. They are maintained by the
	// record layer (the engine), not by the transport wrapper, which
	// cannot see record boundaries.
	RecordsSent int64
	// RecordsReceived counts application-level records received from
	// other ranks.
	RecordsReceived int64
	// AllreduceCalls counts AllreduceInt64 collectives.
	AllreduceCalls int64
	// BarrierCalls counts Barrier collectives.
	BarrierCalls int64
}

// Counting wraps a Transport and accumulates TrafficStats. It is not safe
// for concurrent use by multiple goroutines, matching the underlying
// collectives' calling discipline (one caller per rank).
//
// Counting always offers ExchangeV: when the wrapped transport is a
// GatherExchanger the segments pass straight through; otherwise they are
// concatenated into buffers pooled on the wrapper and sent with plain
// Exchange, so callers can stage per-thread segments unconditionally.
type Counting struct {
	T     Transport
	Stats TrafficStats

	// merged holds the pooled concatenation buffers of the ExchangeV
	// fallback; reused across calls.
	merged [][]byte
}

// NewCounting returns a counting wrapper around t.
func NewCounting(t Transport) *Counting { return &Counting{T: t} }

// Rank implements Transport.
func (c *Counting) Rank() int { return c.T.Rank() }

// Size implements Transport.
func (c *Counting) Size() int { return c.T.Size() }

// Exchange implements Transport, counting payload traffic.
func (c *Counting) Exchange(out [][]byte) ([][]byte, error) {
	c.Stats.ExchangeCalls++
	me := c.T.Rank()
	for i, b := range out {
		if i == me || len(b) == 0 {
			continue
		}
		c.Stats.BytesSent += int64(len(b))
		c.Stats.MessagesSent++
	}
	in, err := c.T.Exchange(out)
	if err != nil {
		return nil, err
	}
	for i, b := range in {
		if i == me {
			continue
		}
		c.Stats.BytesReceived += int64(len(b))
	}
	return in, nil
}

// ExchangeV implements GatherExchanger, counting payload traffic. The
// wrapped transport's own ExchangeV is used when available; otherwise the
// segments are concatenated into pooled buffers and sent with Exchange.
func (c *Counting) ExchangeV(out [][][]byte) ([][]byte, error) {
	c.Stats.ExchangeCalls++
	me := c.T.Rank()
	for i, segs := range out {
		total := 0
		for _, s := range segs {
			total += len(s)
		}
		if i == me || total == 0 {
			continue
		}
		c.Stats.BytesSent += int64(total)
		c.Stats.MessagesSent++
	}
	var in [][]byte
	var err error
	if ge, ok := c.T.(GatherExchanger); ok {
		in, err = ge.ExchangeV(out)
	} else {
		if len(c.merged) != len(out) {
			c.merged = make([][]byte, len(out))
		}
		for i, segs := range out {
			buf := c.merged[i][:0]
			for _, s := range segs {
				buf = append(buf, s...)
			}
			c.merged[i] = buf
		}
		in, err = c.T.Exchange(c.merged)
	}
	if err != nil {
		return nil, err
	}
	for i, b := range in {
		if i == me {
			continue
		}
		c.Stats.BytesReceived += int64(len(b))
	}
	return in, nil
}

// SendBatch implements BatchSender, counting payload traffic.
func (c *Counting) SendBatch(dest int, payload []byte) error {
	bs, ok := c.T.(BatchSender)
	if !ok {
		return ErrBatchUnsupported
	}
	if dest != c.T.Rank() && len(payload) > 0 {
		c.Stats.BytesSent += int64(len(payload))
		c.Stats.MessagesSent++
	}
	return bs.SendBatch(dest, payload)
}

// RecvBatch implements BatchSender, counting payload traffic.
func (c *Counting) RecvBatch(wait time.Duration) (int, []byte, bool, error) {
	bs, ok := c.T.(BatchSender)
	if !ok {
		return 0, nil, false, ErrBatchUnsupported
	}
	src, payload, ok, err := bs.RecvBatch(wait)
	if ok && src != c.T.Rank() {
		c.Stats.BytesReceived += int64(len(payload))
	}
	return src, payload, ok, err
}

// SupportsBatch forwards the async-batch capability probe to the wrapped
// transport.
func (c *Counting) SupportsBatch() bool { return SupportsBatch(c.T) }

// AllreduceInt64 implements Transport.
func (c *Counting) AllreduceInt64(vals []int64, op ReduceOp) ([]int64, error) {
	c.Stats.AllreduceCalls++
	return c.T.AllreduceInt64(vals, op)
}

// Barrier implements Transport.
func (c *Counting) Barrier() error {
	c.Stats.BarrierCalls++
	return c.T.Barrier()
}

// Close implements Transport.
func (c *Counting) Close() error { return c.T.Close() }

// Abort implements Aborter, delegating to the wrapped transport.
func (c *Counting) Abort(err error) { Abort(c.T, err) }
