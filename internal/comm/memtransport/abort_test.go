package memtransport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"parsssp/internal/comm"
)

// These tests pin down the fail-fast contract: a rank that dies or
// aborts must wake every peer blocked in a collective with an error,
// never leave them waiting for an arrival that cannot happen.

func TestAbortWakesBlockedRanks(t *testing.T) {
	const size = 3
	g, err := New(size)
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("rank 2 exploded")
	errs := make([]error, size-1)
	var wg sync.WaitGroup
	for r := 0; r < size-1; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Blocks: rank 2 never arrives.
			errs[r] = g.Rank(r).Barrier()
		}(r)
	}
	time.Sleep(10 * time.Millisecond) // let the waiters block
	g.Abort(cause)
	wg.Wait()
	for r, err := range errs {
		if !errors.Is(err, comm.ErrAborted) {
			t.Errorf("rank %d: err = %v, want ErrAborted", r, err)
		}
		if !errors.Is(err, cause) {
			t.Errorf("rank %d: abort cause lost: %v", r, err)
		}
	}
}

func TestCloseUnblocksPeersInExchange(t *testing.T) {
	const size = 2
	g, err := New(size)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := g.Rank(0).Exchange(make([][]byte, size))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := g.Rank(1).Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, comm.ErrAborted) {
			t.Errorf("Exchange after peer close = %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Exchange still blocked after peer Close")
	}
}

func TestCollectivesAfterAbortFail(t *testing.T) {
	g, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	g.Abort(errors.New("poisoned"))
	for r := 0; r < 2; r++ {
		tr := g.Rank(r)
		if _, err := tr.Exchange(make([][]byte, 2)); !errors.Is(err, comm.ErrAborted) {
			t.Errorf("rank %d Exchange = %v, want ErrAborted", r, err)
		}
		if _, err := tr.AllreduceInt64([]int64{1}, comm.Sum); !errors.Is(err, comm.ErrAborted) {
			t.Errorf("rank %d Allreduce = %v, want ErrAborted", r, err)
		}
		if err := tr.Barrier(); !errors.Is(err, comm.ErrAborted) {
			t.Errorf("rank %d Barrier = %v, want ErrAborted", r, err)
		}
	}
}

func TestAbortFirstCauseWins(t *testing.T) {
	g, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	first := errors.New("first cause")
	late := errors.New("latecomer")
	g.Abort(first)
	g.Abort(late)
	err = g.Rank(0).Barrier()
	if !errors.Is(err, first) {
		t.Errorf("err = %v, want the first abort cause", err)
	}
	if errors.Is(err, late) {
		t.Error("second abort overwrote the first")
	}
}

func TestAbortNilCause(t *testing.T) {
	g, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	g.Abort(nil)
	if err := g.Rank(0).Barrier(); !errors.Is(err, comm.ErrAborted) {
		t.Errorf("nil-cause abort: Barrier = %v, want ErrAborted", err)
	}
}

func TestCompletedCollectivesUnaffectedByLaterAbort(t *testing.T) {
	const size = 4
	g, err := New(size)
	if err != nil {
		t.Fatal(err)
	}
	// A full round of collectives completes cleanly; only collectives
	// after the abort fail.
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr := g.Rank(r)
			for round := 0; round < 20; round++ {
				if _, err := tr.AllreduceInt64([]int64{int64(r)}, comm.Sum); err != nil {
					errs[r] = fmt.Errorf("round %d: %w", round, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d failed before abort: %v", r, err)
		}
	}
	g.Abort(errors.New("now"))
	if err := g.Rank(0).Barrier(); !errors.Is(err, comm.ErrAborted) {
		t.Errorf("post-abort Barrier = %v, want ErrAborted", err)
	}
}

func TestEndpointAbortImplementsAborter(t *testing.T) {
	g, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	var tr comm.Transport = g.Rank(0)
	a, ok := tr.(comm.Aborter)
	if !ok {
		t.Fatal("endpoint does not implement comm.Aborter")
	}
	cause := errors.New("engine error")
	a.Abort(cause)
	err = g.Rank(1).Barrier()
	if !errors.Is(err, comm.ErrAborted) || !errors.Is(err, cause) {
		t.Errorf("peer error = %v, want ErrAborted wrapping the cause", err)
	}
}

func TestConcurrentAbortAndCollectives(t *testing.T) {
	// Racing aborts against in-flight collectives must be safe (run under
	// -race) and leave every rank with either a clean round or an abort
	// error — never a hang.
	const size = 4
	g, err := New(size)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr := g.Rank(r)
			for round := 0; ; round++ {
				if r == 2 && round == 10 {
					tr.(comm.Aborter).Abort(errors.New("chaos"))
					return
				}
				if _, err := tr.AllreduceInt64([]int64{1}, comm.Sum); err != nil {
					return
				}
			}
		}(r)
	}
	wg.Wait() // reaching here is the assertion: nobody deadlocked
}
