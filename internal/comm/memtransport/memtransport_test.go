package memtransport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"parsssp/internal/comm"
)

// runRanks executes fn on every rank concurrently and fails the test on
// any returned error.
func runRanks(t *testing.T, size int, fn func(t comm.Transport) error) {
	t.Helper()
	g, err := New(size)
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(g.Rank(r))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) accepted")
	}
	g, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Rank out of range did not panic")
		}
	}()
	g.Rank(2)
}

func TestExchangeDelivery(t *testing.T) {
	const size = 4
	runRanks(t, size, func(tr comm.Transport) error {
		me := tr.Rank()
		out := make([][]byte, size)
		for dst := range out {
			out[dst] = []byte(fmt.Sprintf("from %d to %d", me, dst))
		}
		in, err := tr.Exchange(out)
		if err != nil {
			return err
		}
		for src := range in {
			want := fmt.Sprintf("from %d to %d", src, me)
			if string(in[src]) != want {
				return fmt.Errorf("in[%d] = %q, want %q", src, in[src], want)
			}
		}
		return nil
	})
}

func TestExchangeEmptyAndNil(t *testing.T) {
	const size = 3
	runRanks(t, size, func(tr comm.Transport) error {
		out := make([][]byte, size)
		out[0] = []byte{}
		in, err := tr.Exchange(out)
		if err != nil {
			return err
		}
		for src := range in {
			if len(in[src]) != 0 {
				return fmt.Errorf("expected empty delivery, got %d bytes", len(in[src]))
			}
		}
		return nil
	})
}

func TestExchangeBufferOwnership(t *testing.T) {
	// A sender reusing its out buffer after Exchange must not corrupt
	// what receivers already collected.
	const size = 2
	runRanks(t, size, func(tr comm.Transport) error {
		me := tr.Rank()
		out := make([][]byte, size)
		buf := []byte{byte(me), byte(me)}
		out[1-me] = buf
		in, err := tr.Exchange(out)
		if err != nil {
			return err
		}
		got := append([]byte(nil), in[1-me]...)
		// Trash the send buffer and run another collective round.
		buf[0], buf[1] = 0xFF, 0xFF
		if _, err := tr.AllreduceInt64([]int64{1}, comm.Sum); err != nil {
			return err
		}
		if !bytes.Equal(got, in[1-me]) {
			return fmt.Errorf("received buffer changed after sender reuse")
		}
		if in[1-me][0] != byte(1-me) {
			return fmt.Errorf("received %v, want sender id %d", in[1-me], 1-me)
		}
		return nil
	})
}

func TestExchangeWrongLength(t *testing.T) {
	g, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Rank(0).Exchange(make([][]byte, 2)); err == nil {
		t.Error("wrong buffer count accepted")
	}
}

func TestAllreduceOps(t *testing.T) {
	const size = 4
	runRanks(t, size, func(tr comm.Transport) error {
		me := int64(tr.Rank())
		sum, err := tr.AllreduceInt64([]int64{me, 1}, comm.Sum)
		if err != nil {
			return err
		}
		if sum[0] != 0+1+2+3 || sum[1] != size {
			return fmt.Errorf("sum = %v", sum)
		}
		min, err := tr.AllreduceInt64([]int64{me * 10}, comm.Min)
		if err != nil {
			return err
		}
		if min[0] != 0 {
			return fmt.Errorf("min = %v", min)
		}
		max, err := tr.AllreduceInt64([]int64{me * 10}, comm.Max)
		if err != nil {
			return err
		}
		if max[0] != 30 {
			return fmt.Errorf("max = %v", max)
		}
		return nil
	})
}

func TestAllreduceEmpty(t *testing.T) {
	runRanks(t, 2, func(tr comm.Transport) error {
		res, err := tr.AllreduceInt64(nil, comm.Sum)
		if err != nil {
			return err
		}
		if len(res) != 0 {
			return fmt.Errorf("empty allreduce returned %v", res)
		}
		return nil
	})
}

func TestManyRounds(t *testing.T) {
	// Stress the barrier reuse across mixed collectives.
	const size = 5
	runRanks(t, size, func(tr comm.Transport) error {
		for round := 0; round < 200; round++ {
			me := tr.Rank()
			out := make([][]byte, size)
			for dst := range out {
				out[dst] = []byte{byte(me), byte(dst), byte(round)}
			}
			in, err := tr.Exchange(out)
			if err != nil {
				return err
			}
			for src := range in {
				if in[src][0] != byte(src) || in[src][2] != byte(round) {
					return fmt.Errorf("round %d: bad delivery from %d", round, src)
				}
			}
			if err := tr.Barrier(); err != nil {
				return err
			}
			v, err := tr.AllreduceInt64([]int64{int64(round)}, comm.Max)
			if err != nil {
				return err
			}
			if v[0] != int64(round) {
				return fmt.Errorf("allreduce round tag %d != %d", v[0], round)
			}
		}
		return nil
	})
}

func TestSingleRank(t *testing.T) {
	runRanks(t, 1, func(tr comm.Transport) error {
		in, err := tr.Exchange([][]byte{[]byte("self")})
		if err != nil {
			return err
		}
		if string(in[0]) != "self" {
			return fmt.Errorf("self delivery = %q", in[0])
		}
		v, err := tr.AllreduceInt64([]int64{7}, comm.Sum)
		if err != nil {
			return err
		}
		if v[0] != 7 {
			return fmt.Errorf("allreduce = %v", v)
		}
		return tr.Close()
	})
}

func TestEndpoints(t *testing.T) {
	g, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	eps := g.Endpoints()
	if len(eps) != 3 {
		t.Fatalf("Endpoints returned %d", len(eps))
	}
	for i, ep := range eps {
		if ep.Rank() != i || ep.Size() != 3 {
			t.Errorf("endpoint %d reports rank %d size %d", i, ep.Rank(), ep.Size())
		}
	}
}

func TestAllreduceResultsIndependent(t *testing.T) {
	// Regression for the decision-heuristic aliasing bug: results of two
	// consecutive reductions must not share storage.
	runRanks(t, 2, func(tr comm.Transport) error {
		me := int64(tr.Rank())
		sums, err := tr.AllreduceInt64([]int64{me + 1}, comm.Sum)
		if err != nil {
			return err
		}
		sumBefore := sums[0]
		if _, err := tr.AllreduceInt64([]int64{me * 100}, comm.Max); err != nil {
			return err
		}
		if sums[0] != sumBefore {
			return fmt.Errorf("earlier Allreduce result mutated: %d -> %d", sumBefore, sums[0])
		}
		return nil
	})
}

func TestExchangeVDelivery(t *testing.T) {
	// The gathered path must deliver the concatenation of each segment
	// list, treating empty lists and nil segments as zero-length payloads.
	const size = 3
	runRanks(t, size, func(tr comm.Transport) error {
		me := tr.Rank()
		ge, ok := tr.(comm.GatherExchanger)
		if !ok {
			return fmt.Errorf("endpoint does not implement GatherExchanger")
		}
		vout := make([][][]byte, size)
		for dst := 0; dst < size; dst++ {
			switch dst % 3 {
			case 0:
				vout[dst] = nil
			case 1:
				vout[dst] = [][]byte{{byte(me)}, nil, {byte(dst), 0xAB}}
			default:
				vout[dst] = [][]byte{{byte(me), byte(dst), 0xCD}}
			}
		}
		in, err := ge.ExchangeV(vout)
		if err != nil {
			return err
		}
		for src := 0; src < size; src++ {
			var want []byte
			switch me % 3 {
			case 0:
				want = nil
			case 1:
				want = []byte{byte(src), byte(me), 0xAB}
			default:
				want = []byte{byte(src), byte(me), 0xCD}
			}
			if !bytes.Equal(in[src], want) {
				return fmt.Errorf("in[%d] = %v, want %v", src, in[src], want)
			}
		}
		return nil
	})
}

func TestExchangeVSelfZeroCopy(t *testing.T) {
	// A single-segment self row is delivered without copying: sender and
	// receiver are the same goroutine, so there is no reuse hazard and
	// the copy would be pure overhead on the engine's hottest path.
	runRanks(t, 2, func(tr comm.Transport) error {
		me := tr.Rank()
		ge := tr.(comm.GatherExchanger)
		self := []byte{1, 2, 3}
		vout := make([][][]byte, 2)
		vout[me] = [][]byte{self}
		in, err := ge.ExchangeV(vout)
		if err != nil {
			return err
		}
		if len(in[me]) != 3 || &in[me][0] != &self[0] {
			return fmt.Errorf("single-segment self delivery was copied")
		}
		return nil
	})
}

func TestExchangeVWrongLength(t *testing.T) {
	g, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	ge := g.Rank(0).(comm.GatherExchanger)
	if _, err := ge.ExchangeV(make([][][]byte, 2)); err == nil {
		t.Error("wrong buffer count accepted")
	}
}
