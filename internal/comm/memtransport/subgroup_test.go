package memtransport

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"parsssp/internal/comm"
)

// groupBarrier runs a Barrier on every rank of g concurrently and
// returns the per-rank errors.
func groupBarrier(g *Group) []error {
	errs := make([]error, g.size)
	var wg sync.WaitGroup
	for r := 0; r < g.size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = g.Rank(r).Barrier()
		}(r)
	}
	wg.Wait()
	return errs
}

func TestSubGroupIndependentCollectives(t *testing.T) {
	const size = 3
	parent, err := New(size)
	if err != nil {
		t.Fatal(err)
	}
	sub1, err := parent.SubGroup()
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := parent.SubGroup()
	if err != nil {
		t.Fatal(err)
	}
	// Collectives on the parent and both sub-groups interleave freely:
	// each group has its own barrier, so a rank can be deep in sub1's
	// exchange while another is in sub2's without coordination.
	groups := []*Group{parent, sub1, sub2}
	var wg sync.WaitGroup
	errs := make([]error, len(groups)*size)
	for gi, g := range groups {
		for r := 0; r < size; r++ {
			wg.Add(1)
			go func(gi int, g *Group, r int) {
				defer wg.Done()
				tr := g.Rank(r)
				for round := 0; round < 20; round++ {
					out := make([][]byte, size)
					for dst := range out {
						out[dst] = []byte{byte(gi), byte(r), byte(round)}
					}
					in, err := tr.Exchange(out)
					if err != nil {
						errs[gi*size+r] = err
						return
					}
					for src := range in {
						if in[src][0] != byte(gi) || in[src][1] != byte(src) || in[src][2] != byte(round) {
							errs[gi*size+r] = fmt.Errorf("group %d round %d: bad frame from %d: %v", gi, round, src, in[src])
							return
						}
					}
				}
			}(gi, g, r)
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("group %d rank %d: %v", i/size, i%size, err)
		}
	}
}

// TestSubGroupAbortIsolation is the property query pools stand on: a
// poisoned sub-group (one slot's failed query) must not touch its
// siblings or the parent.
func TestSubGroupAbortIsolation(t *testing.T) {
	const size = 2
	parent, err := New(size)
	if err != nil {
		t.Fatal(err)
	}
	sub1, err := parent.SubGroup()
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := parent.SubGroup()
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("slot 0 query failed")
	sub1.Abort(cause)
	for r, err := range groupBarrier(sub1) {
		if !errors.Is(err, comm.ErrAborted) || !errors.Is(err, cause) {
			t.Errorf("sub1 rank %d: err = %v, want ErrAborted wrapping the cause", r, err)
		}
	}
	for r, err := range groupBarrier(sub2) {
		if err != nil {
			t.Errorf("sub2 rank %d poisoned by sibling abort: %v", r, err)
		}
	}
	for r, err := range groupBarrier(parent) {
		if err != nil {
			t.Errorf("parent rank %d poisoned by sub-group abort: %v", r, err)
		}
	}
	// And the parent can still mint working sub-groups afterwards.
	sub3, err := parent.SubGroup()
	if err != nil {
		t.Fatal(err)
	}
	for r, err := range groupBarrier(sub3) {
		if err != nil {
			t.Errorf("fresh sub-group rank %d: %v", r, err)
		}
	}
}
