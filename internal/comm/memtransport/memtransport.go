// Package memtransport implements comm.Transport for P logical ranks
// running as goroutines inside one process.
//
// It is the transport used by all in-process experiments: delivery is a
// shared P×P buffer matrix guarded by a reusable barrier, so an Exchange
// costs two barrier waits and zero copies (buffers are handed over by
// reference). Results are deterministic: in[i] on every rank is exactly
// what rank i passed as out, with no reordering.
//
// The mailbox cells hold segment lists rather than single buffers, which
// makes the gathered collective (comm.GatherExchanger) native: senders
// deposit their per-thread staging buffers unmerged and receivers
// assemble them during the copy they already pay for, so the gathered
// path costs no extra copy at all.
//
// Failure is first-class: the barrier is abortable. Group.Abort (or any
// endpoint's Close) wakes every rank blocked in a collective and poisons
// the group, so every subsequent collective returns an error wrapping
// comm.ErrAborted — one failed rank can no longer hang its peers at a
// barrier it will never reach. See DESIGN.md "Failure semantics".
package memtransport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"parsssp/internal/comm"
)

// Group is a P-rank in-process communicator. Create one with New and hand
// Rank(i) to each of the P goroutines.
type Group struct {
	size int
	// mailbox[src][dst] is the segment list in flight from src to dst;
	// the logical payload is the segments' concatenation.
	mailbox [][][][]byte
	// reduce[rank] holds each rank's Allreduce contribution.
	reduce [][]int64
	bar    *barrier
	// async[dst] queues point-to-point batches for rank dst
	// (comm.BatchSender); unlike the collective mailbox it is not
	// barrier-synchronized.
	async []asyncBox
}

// New creates a communicator with size ranks.
func New(size int) (*Group, error) {
	if size < 1 {
		return nil, errors.New("memtransport: size must be >= 1")
	}
	g := &Group{
		size:    size,
		mailbox: make([][][][]byte, size),
		reduce:  make([][]int64, size),
		bar:     newBarrier(size),
		async:   make([]asyncBox, size),
	}
	for i := range g.mailbox {
		g.mailbox[i] = make([][][]byte, size)
		g.async[i].init()
	}
	return g, nil
}

// Rank returns the transport endpoint for rank r.
func (g *Group) Rank(r int) comm.Transport {
	if r < 0 || r >= g.size {
		panic("memtransport: rank out of range")
	}
	return &endpoint{g: g, rank: r}
}

// Abort implements comm.Aborter group-wide: it wakes every rank blocked
// in a collective and makes this and every subsequent collective on any
// endpoint return an error wrapping comm.ErrAborted and err. The first
// cause wins; later aborts are no-ops. A nil err stands for an
// unexplained abort.
func (g *Group) Abort(err error) {
	if err == nil {
		err = errors.New("memtransport: aborted")
	}
	wrapped := fmt.Errorf("%w: %w", comm.ErrAborted, err)
	g.bar.abort(wrapped)
	for i := range g.async {
		g.async[i].abort(wrapped)
	}
}

// SubGroup derives a fresh communicator of the same size, the in-process
// analogue of a tcptransport channel: a query-pool slot checks out one
// sub-group per slot so concurrent queries never share a barrier. The
// sub-group is fully independent — its own mailbox matrix, reduce slots
// and (crucially) its own abort state, so poisoning one sub-group
// (Group.Abort, an endpoint Close, a failed query) leaves its siblings
// and the parent untouched. Sub-groups are cheap: a few slice headers
// per rank, no goroutines.
func (g *Group) SubGroup() (*Group, error) {
	return New(g.size)
}

// Endpoints returns all size endpoints, index == rank.
func (g *Group) Endpoints() []comm.Transport {
	eps := make([]comm.Transport, g.size)
	for i := range eps {
		eps[i] = g.Rank(i)
	}
	return eps
}

type endpoint struct {
	g       *Group
	rank    int
	in      [][]byte   // reused result slice
	arena   [][]byte   // reused copies of received buffers
	wrap    [][][]byte // reused single-segment wrapping of an Exchange row
	wrapSeg [][1][]byte
}

func (e *endpoint) Rank() int { return e.rank }
func (e *endpoint) Size() int { return e.g.size }

func (e *endpoint) Exchange(out [][]byte) ([][]byte, error) {
	if len(out) != e.g.size {
		return nil, errors.New("memtransport: Exchange buffer count != size")
	}
	// Wrap each buffer as a single segment (headers only, no data copy)
	// and run the common segment path.
	if e.wrap == nil {
		e.wrap = make([][][]byte, e.g.size)
		e.wrapSeg = make([][1][]byte, e.g.size)
	}
	for dst, b := range out {
		e.wrapSeg[dst][0] = b
		e.wrap[dst] = e.wrapSeg[dst][:]
	}
	return e.exchange(e.wrap)
}

// ExchangeV implements comm.GatherExchanger.
func (e *endpoint) ExchangeV(out [][][]byte) ([][]byte, error) {
	if len(out) != e.g.size {
		return nil, errors.New("memtransport: ExchangeV buffer count != size")
	}
	return e.exchange(out)
}

func (e *endpoint) exchange(out [][][]byte) ([][]byte, error) {
	g := e.g
	// Deposit this rank's outgoing row.
	copy(g.mailbox[e.rank], out)
	if err := g.bar.wait(); err != nil {
		return nil, err
	}
	// Collect this rank's incoming column. Segments are copied
	// contiguously into a per-endpoint arena: the Transport contract
	// gives received buffers to the receiver, while senders are free to
	// reuse their out buffers as soon as the collective returns.
	if e.in == nil {
		e.in = make([][]byte, g.size)
		e.arena = make([][]byte, g.size)
	}
	for src := 0; src < g.size; src++ {
		segs := g.mailbox[src][e.rank]
		if src == e.rank && len(segs) == 1 {
			e.in[src] = segs[0] // local delivery: same goroutine, no reuse hazard
			continue
		}
		buf := e.arena[src][:0]
		for _, s := range segs {
			buf = append(buf, s...)
		}
		e.arena[src] = buf
		e.in[src] = buf
	}
	// Second barrier: nobody may start the next deposit before everyone
	// has collected this round.
	if err := g.bar.wait(); err != nil {
		return nil, err
	}
	return e.in, nil
}

func (e *endpoint) AllreduceInt64(vals []int64, op comm.ReduceOp) ([]int64, error) {
	g := e.g
	g.reduce[e.rank] = vals
	if err := g.bar.wait(); err != nil {
		return nil, err
	}
	// The result is freshly allocated: callers may hold results from
	// several collectives at once (e.g. a Sum and a Max side by side), so
	// a reused buffer would silently alias them.
	res := make([]int64, len(vals))
	copy(res, g.reduce[0])
	for r := 1; r < g.size; r++ {
		other := g.reduce[r]
		if len(other) != len(vals) {
			return nil, errors.New("memtransport: Allreduce length mismatch across ranks")
		}
		op.Apply(res, other)
	}
	if err := g.bar.wait(); err != nil {
		return nil, err
	}
	return res, nil
}

func (e *endpoint) Barrier() error {
	return e.g.bar.wait()
}

// SendBatch implements comm.BatchSender: the payload is copied and
// appended to the destination's async queue without any synchronization
// with the collective schedule.
func (e *endpoint) SendBatch(dest int, payload []byte) error {
	if dest < 0 || dest >= e.g.size {
		return errors.New("memtransport: SendBatch destination out of range")
	}
	return e.g.async[dest].push(e.rank, payload)
}

// RecvBatch implements comm.BatchSender: it pops the oldest pending batch
// for this rank, waiting up to wait for one to arrive (wait=0 polls).
func (e *endpoint) RecvBatch(wait time.Duration) (int, []byte, bool, error) {
	return e.g.async[e.rank].pop(wait)
}

// Close aborts the whole group: a closed endpoint can never reach
// another collective, so peers blocked on it must fail rather than wait
// forever. This mirrors process death over tcptransport, where closing
// one rank's sockets breaks every peer's reads. Close itself never
// fails.
func (e *endpoint) Close() error {
	e.g.Abort(fmt.Errorf("memtransport: rank %d closed", e.rank))
	return nil
}

// Abort implements comm.Aborter (see Group.Abort).
func (e *endpoint) Abort(err error) { e.g.Abort(err) }

// barrier is a reusable counting barrier with an abort state: once
// aborted, every waiter wakes and every wait — current and future —
// returns the abort error.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   uint64
	err   error // set once by abort; poisons all waits
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	for gen == b.gen && b.err == nil {
		b.cond.Wait()
	}
	// A wait overtaken by an abort after its generation completed still
	// succeeded: everyone arrived. Only report the abort to waits it
	// actually interrupted (or that started after it).
	if gen == b.gen && b.err != nil {
		return b.err
	}
	return nil
}

// abort poisons the barrier with err (first cause wins) and wakes every
// waiter. The stranded waiters' arrival counts are deliberately left in
// place: the error state is terminal, no generation ever completes
// again.
func (b *barrier) abort(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

// asyncBox is one rank's FIFO queue of point-to-point async batches.
// Senders push copies concurrently; the owning rank pops, optionally
// blocking with a bounded wait. A group abort poisons the box so blocked
// (and future) pops fail instead of waiting for batches that will never
// come.
type asyncBox struct {
	mu   sync.Mutex
	q    []asyncMsg
	err  error
	done chan struct{} // closed on abort, wakes bounded waits
	// notify carries a single wake-up token to the (single) receiving
	// rank; pushes refill it non-blockingly.
	notify chan struct{}
}

type asyncMsg struct {
	src     int
	payload []byte
}

func (b *asyncBox) init() {
	b.done = make(chan struct{})
	b.notify = make(chan struct{}, 1)
}

func (b *asyncBox) push(src int, payload []byte) error {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	b.mu.Lock()
	if b.err != nil {
		err := b.err
		b.mu.Unlock()
		return err
	}
	b.q = append(b.q, asyncMsg{src: src, payload: cp})
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
	return nil
}

func (b *asyncBox) pop(wait time.Duration) (int, []byte, bool, error) {
	var timeout <-chan time.Time
	for {
		b.mu.Lock()
		if len(b.q) > 0 {
			m := b.q[0]
			b.q[0] = asyncMsg{}
			b.q = b.q[1:]
			if len(b.q) == 0 {
				b.q = nil // let the drained backing array go
			}
			b.mu.Unlock()
			return m.src, m.payload, true, nil
		}
		err := b.err
		b.mu.Unlock()
		if err != nil {
			return 0, nil, false, err
		}
		if wait <= 0 {
			return 0, nil, false, nil
		}
		if timeout == nil {
			t := time.NewTimer(wait)
			defer t.Stop()
			timeout = t.C
		}
		select {
		case <-b.notify:
			// Recheck the queue; the token may be stale (an earlier poll
			// already consumed the batch), in which case we loop and wait
			// again within the same deadline.
		case <-b.done:
			// Poisoned; loop reports the error after draining any batch
			// that raced ahead of the abort.
		case <-timeout:
			return 0, nil, false, nil
		}
	}
}

func (b *asyncBox) abort(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
		close(b.done)
	}
	b.mu.Unlock()
}
