// Package memtransport implements comm.Transport for P logical ranks
// running as goroutines inside one process.
//
// It is the transport used by all in-process experiments: delivery is a
// shared P×P buffer matrix guarded by a reusable barrier, so an Exchange
// costs two barrier waits and zero copies (buffers are handed over by
// reference). Results are deterministic: in[i] on every rank is exactly
// what rank i passed as out, with no reordering.
package memtransport

import (
	"errors"
	"sync"

	"parsssp/internal/comm"
)

// Group is a P-rank in-process communicator. Create one with New and hand
// Rank(i) to each of the P goroutines.
type Group struct {
	size int
	// mailbox[src][dst] is the buffer in flight from src to dst.
	mailbox [][][]byte
	// reduce[rank] holds each rank's Allreduce contribution.
	reduce [][]int64
	bar    *barrier
}

// New creates a communicator with size ranks.
func New(size int) (*Group, error) {
	if size < 1 {
		return nil, errors.New("memtransport: size must be >= 1")
	}
	g := &Group{
		size:    size,
		mailbox: make([][][]byte, size),
		reduce:  make([][]int64, size),
		bar:     newBarrier(size),
	}
	for i := range g.mailbox {
		g.mailbox[i] = make([][]byte, size)
	}
	return g, nil
}

// Rank returns the transport endpoint for rank r.
func (g *Group) Rank(r int) comm.Transport {
	if r < 0 || r >= g.size {
		panic("memtransport: rank out of range")
	}
	return &endpoint{g: g, rank: r}
}

// Endpoints returns all size endpoints, index == rank.
func (g *Group) Endpoints() []comm.Transport {
	eps := make([]comm.Transport, g.size)
	for i := range eps {
		eps[i] = g.Rank(i)
	}
	return eps
}

type endpoint struct {
	g     *Group
	rank  int
	in    [][]byte // reused result slice
	arena [][]byte // reused copies of received buffers
}

func (e *endpoint) Rank() int { return e.rank }
func (e *endpoint) Size() int { return e.g.size }

func (e *endpoint) Exchange(out [][]byte) ([][]byte, error) {
	g := e.g
	if len(out) != g.size {
		return nil, errors.New("memtransport: Exchange buffer count != size")
	}
	// Deposit this rank's outgoing row.
	copy(g.mailbox[e.rank], out)
	g.bar.wait()
	// Collect this rank's incoming column. Buffers are copied into a
	// per-endpoint arena: the Transport contract gives received buffers
	// to the receiver, while senders are free to reuse their out buffers
	// as soon as Exchange returns.
	if e.in == nil {
		e.in = make([][]byte, g.size)
		e.arena = make([][]byte, g.size)
	}
	for src := 0; src < g.size; src++ {
		buf := g.mailbox[src][e.rank]
		if src == e.rank {
			e.in[src] = buf // local delivery: same goroutine, no reuse hazard
			continue
		}
		e.arena[src] = append(e.arena[src][:0], buf...)
		e.in[src] = e.arena[src]
	}
	// Second barrier: nobody may start the next deposit before everyone
	// has collected this round.
	g.bar.wait()
	return e.in, nil
}

func (e *endpoint) AllreduceInt64(vals []int64, op comm.ReduceOp) ([]int64, error) {
	g := e.g
	g.reduce[e.rank] = vals
	g.bar.wait()
	// The result is freshly allocated: callers may hold results from
	// several collectives at once (e.g. a Sum and a Max side by side), so
	// a reused buffer would silently alias them.
	res := make([]int64, len(vals))
	copy(res, g.reduce[0])
	for r := 1; r < g.size; r++ {
		other := g.reduce[r]
		if len(other) != len(vals) {
			return nil, errors.New("memtransport: Allreduce length mismatch across ranks")
		}
		op.Apply(res, other)
	}
	g.bar.wait()
	return res, nil
}

func (e *endpoint) Barrier() error {
	e.g.bar.wait()
	return nil
}

func (e *endpoint) Close() error { return nil }

// barrier is a reusable counting barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   uint64
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}
