package memtransport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"parsssp/internal/comm"
)

func TestBatchFIFOPerSender(t *testing.T) {
	g, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	sender := g.Rank(0).(comm.BatchSender)
	receiver := g.Rank(1).(comm.BatchSender)
	for i := 0; i < 10; i++ {
		if err := sender.SendBatch(1, []byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		src, payload, ok, err := receiver.RecvBatch(0)
		if err != nil || !ok {
			t.Fatalf("batch %d: ok=%v err=%v", i, ok, err)
		}
		if src != 0 || string(payload) != fmt.Sprintf("b%d", i) {
			t.Fatalf("batch %d: src=%d payload=%q", i, src, payload)
		}
	}
	if _, _, ok, _ := receiver.RecvBatch(0); ok {
		t.Fatal("drained queue returned a batch")
	}
}

func TestBatchCopyOnSend(t *testing.T) {
	g, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("original")
	if err := g.Rank(0).(comm.BatchSender).SendBatch(1, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "CLOBBER!") // sender reuses its buffer immediately
	_, payload, ok, err := g.Rank(1).(comm.BatchSender).RecvBatch(0)
	if err != nil || !ok {
		t.Fatalf("RecvBatch: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(payload, []byte("original")) {
		t.Fatalf("receiver saw %q; SendBatch must copy", payload)
	}
}

func TestBatchBoundedWait(t *testing.T) {
	g, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		src, payload, ok, err := g.Rank(1).(comm.BatchSender).RecvBatch(5 * time.Second)
		if err != nil || !ok || src != 0 || string(payload) != "late" {
			t.Errorf("blocked recv: src=%d payload=%q ok=%v err=%v", src, payload, ok, err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	if err := g.Rank(0).(comm.BatchSender).SendBatch(1, []byte("late")); err != nil {
		t.Fatal(err)
	}
	<-done

	// A bounded wait on a quiet queue returns !ok, not an error.
	start := time.Now()
	_, _, ok, err := g.Rank(1).(comm.BatchSender).RecvBatch(20 * time.Millisecond)
	if err != nil || ok {
		t.Fatalf("timeout recv: ok=%v err=%v", ok, err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("bounded wait returned early")
	}
}

func TestBatchAbortWakesReceiver(t *testing.T) {
	g, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("chaos")
	done := make(chan error, 1)
	go func() {
		_, _, _, err := g.Rank(1).(comm.BatchSender).RecvBatch(time.Minute)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	g.Abort(cause)
	select {
	case err := <-done:
		if !errors.Is(err, cause) || !errors.Is(err, comm.ErrAborted) {
			t.Errorf("aborted recv error %v lost the cause or the abort marker", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abort did not wake the blocked receiver")
	}
	// Post-abort operations fail fast.
	if err := g.Rank(0).(comm.BatchSender).SendBatch(1, []byte("x")); err == nil {
		t.Error("SendBatch succeeded after abort")
	}
}

func TestBatchConcurrentWithCollectives(t *testing.T) {
	// Batches and lockstep collectives share the group; interleaving them
	// from every rank concurrently must neither deadlock nor cross wires.
	const size, batches = 4, 50
	runRanks(t, size, func(tr comm.Transport) error {
		bs := tr.(comm.BatchSender)
		var wg sync.WaitGroup
		wg.Add(1)
		recvErr := make(chan error, 1)
		got := 0
		go func() {
			defer wg.Done()
			for got < batches*(size-1) {
				_, payload, ok, err := bs.RecvBatch(5 * time.Second)
				if err != nil {
					recvErr <- err
					return
				}
				if !ok {
					recvErr <- fmt.Errorf("receiver starved at %d batches", got)
					return
				}
				if len(payload) != 8 {
					recvErr <- fmt.Errorf("payload len %d", len(payload))
					return
				}
				got++
			}
			recvErr <- nil
		}()
		payload := make([]byte, 8)
		for i := 0; i < batches; i++ {
			for dest := 0; dest < size; dest++ {
				if dest == tr.Rank() {
					continue
				}
				if err := bs.SendBatch(dest, payload); err != nil {
					return err
				}
			}
			if i%10 == 0 {
				if _, err := tr.AllreduceInt64([]int64{1}, comm.Sum); err != nil {
					return err
				}
			}
		}
		wg.Wait()
		if err := <-recvErr; err != nil {
			return err
		}
		return tr.Barrier()
	})
}
