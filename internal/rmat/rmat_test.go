package rmat

import (
	"testing"
	"testing/quick"
)

func TestEdgeCountAndRange(t *testing.T) {
	p := Family1(10, 1)
	edges, err := Edges(p)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(edges)) != p.NumEdges() {
		t.Fatalf("generated %d edges, want %d", len(edges), p.NumEdges())
	}
	n := uint32(p.NumVertices())
	for i, e := range edges {
		if e.U >= n || e.V >= n {
			t.Fatalf("edge %d endpoints (%d,%d) out of range %d", i, e.U, e.V, n)
		}
		if e.W > MaxWeight {
			t.Fatalf("edge %d weight %d > %d", i, e.W, MaxWeight)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	p := Family2(9, 77)
	a, err := Edges(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Edges(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSeedsProduceDifferentGraphs(t *testing.T) {
	a, err := Edges(Family1(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Edges(Family1(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/100 {
		t.Errorf("%d/%d identical edges across different seeds", same, len(a))
	}
}

func TestScramblePermutation(t *testing.T) {
	// scramble must be a bijection on [0, 2^scale) for both parities of
	// scale.
	for _, scale := range []int{5, 6, 11, 12} {
		p := Params{Scale: scale, A: 0.25, B: 0.25, C: 0.25, Seed: 5}
		seen := make([]bool, 1<<scale)
		for v := 0; v < 1<<scale; v++ {
			s := p.scramble(uint32(v))
			if int(s) >= len(seen) {
				t.Fatalf("scale %d: scramble(%d) = %d out of range", scale, v, s)
			}
			if seen[s] {
				t.Fatalf("scale %d: scramble collision at %d", scale, s)
			}
			seen[s] = true
		}
	}
}

func TestSkewFamilyContrast(t *testing.T) {
	// RMAT-1 must be markedly more skewed than RMAT-2 (paper Figure 8).
	g1, err := Generate(Family1(12, 3))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(Family2(12, 3))
	if err != nil {
		t.Fatal(err)
	}
	if g1.MaxDegree() <= g2.MaxDegree() {
		t.Errorf("RMAT-1 max degree %d not above RMAT-2 %d", g1.MaxDegree(), g2.MaxDegree())
	}
	if g1.MaxDegree() < 8*DefaultEdgeFactor {
		t.Errorf("RMAT-1 max degree %d lacks heavy tail", g1.MaxDegree())
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{Scale: 0, A: 0.25, B: 0.25, C: 0.25},
		{Scale: 40, A: 0.25, B: 0.25, C: 0.25},
		{Scale: 5, A: 0.8, B: 0.2, C: 0.2},  // sums > 1
		{Scale: 5, A: -0.1, B: 0.5, C: 0.5}, // negative
		{Scale: 5, A: 0.25, B: 0.25, C: 0.25, EdgeFactor: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params %+v accepted", i, p)
		}
	}
	if err := Family1(5, 0).Validate(); err != nil {
		t.Errorf("Family1 params rejected: %v", err)
	}
}

func TestGenerateBuildsValidGraph(t *testing.T) {
	g, err := Generate(Family1(9, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 512 {
		t.Errorf("vertices = %d, want 512", g.NumVertices())
	}
	// Dedup and self-loop removal shrink the edge count but not below a
	// sane fraction for this density.
	if g.NumEdges() < 512*4 || g.NumEdges() > 512*16 {
		t.Errorf("edge count %d outside plausible range", g.NumEdges())
	}
}

func TestCustomEdgeFactorAndWeight(t *testing.T) {
	p := Family1(8, 5)
	p.EdgeFactor = 4
	p.MaxWeight = 7
	edges, err := Edges(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 256*4 {
		t.Fatalf("edge count %d, want %d", len(edges), 256*4)
	}
	for _, e := range edges {
		if e.W > 7 {
			t.Fatalf("weight %d > 7", e.W)
		}
	}
}

func TestNoScrambleLocality(t *testing.T) {
	// Without scrambling, skewed R-MAT concentrates endpoints on low ids:
	// vertex 0 must be the (or nearly the) highest-degree vertex.
	p := Family1(10, 6)
	p.NoScramble = true
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) < g.MaxDegree()/2 {
		t.Errorf("vertex 0 degree %d, max %d: expected hub at id 0 without scrambling",
			g.Degree(0), g.MaxDegree())
	}
}

func TestQuickEndpointsInRange(t *testing.T) {
	f := func(seedRaw uint16, scaleRaw uint8) bool {
		scale := 2 + int(scaleRaw)%8
		p := Family2(scale, uint64(seedRaw))
		p.EdgeFactor = 2
		edges, err := Edges(p)
		if err != nil {
			return false
		}
		n := uint32(1) << scale
		for _, e := range edges {
			if e.U >= n || e.V >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWeightsRoughlyUniform(t *testing.T) {
	p := Family1(12, 8)
	edges, err := Edges(p)
	if err != nil {
		t.Fatal(err)
	}
	var counts [4]int
	for _, e := range edges {
		counts[e.W/64]++
	}
	want := len(edges) / 4
	for q, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("weight quartile %d has %d edges, want ≈%d", q, c, want)
		}
	}
}
