// Package rmat generates R-MAT (Recursive MATrix) scale-free random graphs
// following the Graph500 specifications used in the paper's evaluation.
//
// An R-MAT edge is drawn by recursively descending a 2^scale × 2^scale
// adjacency matrix: at each of the scale levels one of the four quadrants
// is selected with probabilities (A, B, C, D), fixing one bit of each
// endpoint. Skewed parameters concentrate edges on low-numbered rows,
// producing the heavy-tailed degree distributions that drive every effect
// studied in the paper (long-phase dominance, pull benefit, load
// imbalance). Vertex ids are scrambled with a mixing permutation so vertex
// number carries no degree information, as in the Graph500 reference code.
//
// Two parameter families from the paper:
//
//	Family1 (Graph500 BFS spec):   A=0.57, B=C=0.19, D=0.05
//	Family2 (Graph500 SSSP spec):  A=0.50, B=C=0.10, D=0.30
//
// Both use edge factor 16 (M = 16·N undirected edges) and integer weights
// drawn uniformly from [0, MaxWeight] = [0, 255].
package rmat

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"parsssp/internal/graph"
	"parsssp/internal/rng"
)

// MaxWeight is the inclusive upper bound of generated edge weights, per
// the Graph500 SSSP benchmark proposal.
const MaxWeight = 255

// DefaultEdgeFactor is the Graph500 edge factor: undirected edges per
// vertex.
const DefaultEdgeFactor = 16

// Params configures an R-MAT generator.
type Params struct {
	// Scale is log2 of the number of vertices.
	Scale int
	// EdgeFactor is the number of undirected edges per vertex; 0 means
	// DefaultEdgeFactor.
	EdgeFactor int
	// A, B, C are the R-MAT quadrant probabilities; D = 1-A-B-C.
	A, B, C float64
	// MaxWeight is the inclusive maximum edge weight; 0 means the package
	// default (255).
	MaxWeight uint32
	// Seed selects the random stream. The same (Params, Seed) always
	// produces the same graph, independent of worker count.
	Seed uint64
	// NoScramble disables the vertex permutation (useful in tests, where
	// the raw R-MAT locality is asserted directly).
	NoScramble bool
}

// Family1 returns the RMAT-1 parameters (Graph500 BFS spec) at the given
// scale and seed.
func Family1(scale int, seed uint64) Params {
	return Params{Scale: scale, A: 0.57, B: 0.19, C: 0.19, Seed: seed}
}

// Family2 returns the RMAT-2 parameters (proposed Graph500 SSSP spec) at
// the given scale and seed.
func Family2(scale int, seed uint64) Params {
	return Params{Scale: scale, A: 0.50, B: 0.10, C: 0.10, Seed: seed}
}

func (p Params) edgeFactor() int {
	if p.EdgeFactor == 0 {
		return DefaultEdgeFactor
	}
	return p.EdgeFactor
}

func (p Params) maxWeight() uint32 {
	if p.MaxWeight == 0 {
		return MaxWeight
	}
	return p.MaxWeight
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Scale < 1 || p.Scale > 31 {
		return fmt.Errorf("rmat: scale %d out of range [1,31]", p.Scale)
	}
	if p.edgeFactor() < 1 {
		return fmt.Errorf("rmat: edge factor %d < 1", p.EdgeFactor)
	}
	d := 1 - p.A - p.B - p.C
	if p.A < 0 || p.B < 0 || p.C < 0 || d < 0 {
		return fmt.Errorf("rmat: invalid quadrant probabilities A=%v B=%v C=%v D=%v",
			p.A, p.B, p.C, d)
	}
	return nil
}

// NumVertices returns 2^Scale.
func (p Params) NumVertices() int { return 1 << p.Scale }

// NumEdges returns the number of undirected edges that will be generated.
func (p Params) NumEdges() int64 {
	return int64(p.NumVertices()) * int64(p.edgeFactor())
}

// genChunks is the fixed number of logical generation substreams. Chunk c
// always draws from substream c regardless of how many workers execute,
// so the generated graph depends only on (Params, Seed) — never on the
// machine's CPU count.
const genChunks = 64

// Edges generates the edge list. Generation is parallel and
// deterministic: the edge range is divided into genChunks fixed chunks,
// chunk c is always produced from substream c of the seed, and workers
// claim chunks dynamically.
func Edges(p Params) ([]graph.Edge, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := p.NumEdges()
	edges := make([]graph.Edge, m)
	if m == 0 {
		return edges, nil
	}
	chunkSize := (m + genChunks - 1) / genChunks
	workers := runtime.NumCPU()
	if workers > genChunks {
		workers = genChunks
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := atomic.AddInt64(&next, 1) - 1
				if c >= genChunks {
					return
				}
				lo := c * chunkSize
				hi := lo + chunkSize
				if hi > m {
					hi = m
				}
				if lo >= hi {
					continue
				}
				gen := rng.Substream(p.Seed, int(c))
				for i := lo; i < hi; i++ {
					edges[i] = p.drawEdge(gen)
				}
			}
		}()
	}
	wg.Wait()
	return edges, nil
}

// drawEdge draws one undirected weighted edge.
func (p Params) drawEdge(gen *rng.Xoshiro256) graph.Edge {
	var u, v uint32
	a, b, c := p.A, p.B, p.C
	for level := 0; level < p.Scale; level++ {
		r := gen.Float64()
		var bu, bv uint32
		switch {
		case r < a:
			// top-left: no bits set
		case r < a+b:
			bv = 1
		case r < a+b+c:
			bu = 1
		default:
			bu, bv = 1, 1
		}
		u = u<<1 | bu
		v = v<<1 | bv
	}
	if !p.NoScramble {
		u = p.scramble(u)
		v = p.scramble(v)
	}
	w := uint32(gen.IntN(int(p.maxWeight()) + 1))
	return graph.Edge{U: u, V: v, W: w}
}

// scramble applies a seed-dependent pseudo-random permutation of vertex
// ids within [0, 2^Scale). Each round composes two bijections on the
// Scale-bit domain: multiplication by an odd constant modulo 2^Scale and a
// right xorshift (both are invertible), so the whole map is a permutation.
func (p Params) scramble(v uint32) uint32 {
	if p.Scale < 2 {
		return v
	}
	mask := uint64(1)<<p.Scale - 1
	x := uint64(v)
	shift := uint(p.Scale) / 2
	for round := 0; round < 3; round++ {
		mult := rng.Mix64(p.Seed+uint64(round)) | 1 // odd => bijective mod 2^Scale
		add := rng.Mix64(p.Seed ^ uint64(round+7))
		x = (x*mult + add) & mask
		x ^= x >> shift
	}
	return uint32(x)
}

// Generate produces the final CSR graph: edges are generated, self-loops
// dropped and parallel edges collapsed to their minimum weight (the
// standard Graph500 preprocessing for SSSP).
func Generate(p Params) (*graph.Graph, error) {
	edges, err := Edges(p)
	if err != nil {
		return nil, err
	}
	return graph.FromEdges(p.NumVertices(), edges, graph.BuildOptions{})
}
