// Package clitest builds the repository's command binaries and exercises
// them end-to-end: graph generation to file, queries over generated and
// saved graphs, verification flags, the benchmark harness, and the
// multi-process TCP runner.
package clitest

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// binaries builds all cmd/... tools once per test run and returns the
// directory holding them.
func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "parsssp-bin")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"sssp", "rmatgen", "bench", "ssspd", "analyze"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "parsssp/cmd/"+tool)
			cmd.Dir = repoRoot()
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = fmt.Errorf("building %s: %v\n%s", tool, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binDir
}

// repoRoot locates the module root (two levels above this package).
func repoRoot() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return filepath.Dir(filepath.Dir(wd))
}

func run(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", name, strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestSSSPVerify(t *testing.T) {
	out := run(t, "sssp", "-scale", "11", "-ranks", "3", "-algo", "opt", "-verify", "-tree", "-root", "-1")
	if !strings.Contains(out, "verify: distances match") {
		t.Errorf("missing verification line:\n%s", out)
	}
	if !strings.Contains(out, "tree: SSSP tree is structurally valid") {
		t.Errorf("missing tree line:\n%s", out)
	}
	if !strings.Contains(out, "GTEPS:") {
		t.Errorf("missing GTEPS line:\n%s", out)
	}
}

func TestSSSPAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"plain", "del", "prune", "opt", "lbopt", "dijkstra", "bellmanford"} {
		out := run(t, "sssp", "-scale", "10", "-ranks", "2", "-algo", algo, "-verify", "-root", "-1")
		if !strings.Contains(out, "verify: distances match") {
			t.Errorf("%s failed verification:\n%s", algo, out)
		}
	}
}

func TestSSSPBatchMode(t *testing.T) {
	out := run(t, "sssp", "-scale", "10", "-ranks", "2", "-batch", "3")
	if !strings.Contains(out, "harmonic mean TEPS") {
		t.Errorf("missing batch output:\n%s", out)
	}
}

func TestRmatgenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	out := run(t, "rmatgen", "-scale", "10", "-family", "2", "-o", path)
	if !strings.Contains(out, "wrote") {
		t.Errorf("rmatgen output: %s", out)
	}
	out = run(t, "sssp", "-input", path, "-ranks", "2", "-verify", "-root", "-1")
	if !strings.Contains(out, "verify: distances match") {
		t.Errorf("saved-graph query failed:\n%s", out)
	}
}

func TestBenchExperiment(t *testing.T) {
	out := run(t, "bench", "-experiment", "fig8", "-scale", "8", "-ranks", "1,2", "-roots", "1")
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "RMAT-1") {
		t.Errorf("bench fig8 output:\n%s", out)
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	cmd := exec.Command(filepath.Join(binaries(t), "bench"), "-experiment", "nope")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("unknown experiment accepted:\n%s", out)
	}
}

func TestAnalyze(t *testing.T) {
	out := run(t, "analyze", "-scale", "11", "-ranks", "2", "-candidates", "3", "-sweeps", "3")
	for _, want := range []string{"connectivity:", "closeness centrality", "weighted diameter"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in analyze output:\n%s", want, out)
		}
	}
}

func TestSSSPAutoTuneAndJSON(t *testing.T) {
	out := run(t, "sssp", "-scale", "10", "-ranks", "2", "-delta", "0", "-root", "-1")
	if !strings.Contains(out, "auto-tune:") {
		t.Errorf("missing auto-tune output:\n%s", out)
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "r.json")
	out = run(t, "bench", "-experiment", "fig8", "-scale", "8", "-ranks", "1", "-roots", "1", "-json", jsonPath)
	if !strings.Contains(out, "wrote "+jsonPath) {
		t.Errorf("missing JSON confirmation:\n%s", out)
	}
	if _, err := os.Stat(jsonPath); err != nil {
		t.Errorf("JSON file not written: %v", err)
	}
}

func TestSSSPDTwoProcesses(t *testing.T) {
	addrs := "127.0.0.1:9733,127.0.0.1:9734"
	bin := filepath.Join(binaries(t), "ssspd")
	c1 := exec.Command(bin, "-rank", "1", "-addrs", addrs, "-scale", "10")
	if err := c1.Start(); err != nil {
		t.Fatal(err)
	}
	c0 := exec.Command(bin, "-rank", "0", "-addrs", addrs, "-scale", "10", "-verify")
	out0, err0 := c0.CombinedOutput()
	err1 := c1.Wait()
	if err0 != nil {
		t.Fatalf("rank 0: %v\n%s", err0, out0)
	}
	if err1 != nil {
		t.Fatalf("rank 1: %v", err1)
	}
	if !strings.Contains(string(out0), "verify: distances match") {
		t.Errorf("ssspd rank 0 output:\n%s", out0)
	}
}

// TestSSSPDServeUpdates interleaves edge updates with queries on a
// two-process serve-mode machine: update lines advance the graph
// version on every rank (batches broadcast over the slot channels,
// finished trees repaired incrementally), bad update lines are refused
// at the front door, and stats lines report the active stepping policy
// and the admission counters. The machine runs under -policy rho, so
// the test also covers a non-Δ policy across the TCP transport.
func TestSSSPDServeUpdates(t *testing.T) {
	addrs := "127.0.0.1:9737,127.0.0.1:9738"
	bin := filepath.Join(binaries(t), "ssspd")
	common := []string{"-addrs", addrs, "-scale", "10", "-serve", "-slots", "2", "-policy", "rho"}
	c1 := exec.Command(bin, append([]string{"-rank", "1"}, common...)...)
	if err := c1.Start(); err != nil {
		t.Fatal(err)
	}
	c0 := exec.Command(bin, append([]string{"-rank", "0"}, common...)...)
	c0.Stdin = strings.NewReader(strings.Join([]string{
		"5",
		"U add 5 9 1",
		"5",
		"U bogus 1 2",
		"U add 5 5 3", // self-loop: refused before dispatch
		"U del 5 9",
		"5",
		"stats",
	}, "\n") + "\n")
	out0, err0 := c0.CombinedOutput()
	err1 := c1.Wait()
	if err0 != nil {
		t.Fatalf("rank 0: %v\n%s", err0, out0)
	}
	if err1 != nil {
		t.Fatalf("rank 1: %v", err1)
	}
	var answers, updated, badUpdates, stats int
	for _, line := range strings.Split(strings.TrimSpace(string(out0)), "\n") {
		switch {
		case strings.HasPrefix(line, "answer src=5"):
			answers++
		case strings.HasPrefix(line, "updated version="):
			updated++
		case strings.HasPrefix(line, "error: bad update"):
			badUpdates++
		case strings.HasPrefix(line, "stats version="):
			stats++
			if !strings.Contains(line, "queued=") || !strings.Contains(line, "shed=") {
				t.Errorf("stats line missing counters: %q", line)
			}
			if !strings.Contains(line, "policy=rho(4096)") {
				t.Errorf("stats line missing resolved policy: %q", line)
			}
		}
	}
	if answers != 3 {
		t.Errorf("got %d answers, want 3:\n%s", answers, out0)
	}
	if updated != 2 {
		t.Errorf("got %d updated lines, want 2:\n%s", updated, out0)
	}
	if badUpdates != 2 {
		t.Errorf("got %d bad-update lines, want 2:\n%s", badUpdates, out0)
	}
	if stats != 1 {
		t.Errorf("got %d stats lines, want 1:\n%s", stats, out0)
	}
	if !strings.Contains(string(out0), "updated version=2 ops=1 slots=2") {
		t.Errorf("missing second update confirmation:\n%s", out0)
	}
}

func TestDIMACSWorkflow(t *testing.T) {
	dir := t.TempDir()
	grPath := filepath.Join(dir, "g.gr")
	out := run(t, "rmatgen", "-scale", "10", "-o", grPath)
	if !strings.Contains(out, "wrote") {
		t.Errorf("rmatgen output: %s", out)
	}
	out = run(t, "sssp", "-input", grPath, "-ranks", "2", "-verify", "-root", "-1")
	if !strings.Contains(out, "verify: distances match") {
		t.Errorf("DIMACS query failed:\n%s", out)
	}
}

func TestSSSPDServeMode(t *testing.T) {
	addrs := "127.0.0.1:9735,127.0.0.1:9736"
	bin := filepath.Join(binaries(t), "ssspd")
	common := []string{"-addrs", addrs, "-scale", "10", "-serve", "-slots", "2"}
	c1 := exec.Command(bin, append([]string{"-rank", "1"}, common...)...)
	if err := c1.Start(); err != nil {
		t.Fatal(err)
	}
	c0 := exec.Command(bin, append([]string{"-rank", "0"}, common...)...)
	// Three queries and one malformed line; closing stdin shuts the
	// server down cleanly on every rank.
	c0.Stdin = strings.NewReader("5\n17\nbogus\n5\n")
	out0, err0 := c0.CombinedOutput()
	err1 := c1.Wait()
	if err0 != nil {
		t.Fatalf("rank 0: %v\n%s", err0, out0)
	}
	if err1 != nil {
		t.Fatalf("rank 1: %v", err1)
	}
	lines := strings.Split(strings.TrimSpace(string(out0)), "\n")
	var answers, bad int
	bySrc := map[string][]string{}
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "answer src="):
			answers++
			fields := strings.Fields(line)
			var src, checksum string
			for _, f := range fields {
				if v, ok := strings.CutPrefix(f, "src="); ok {
					src = v
				}
				if v, ok := strings.CutPrefix(f, "checksum="); ok {
					checksum = v
				}
			}
			if src == "" || checksum == "" {
				t.Errorf("malformed answer line: %q", line)
			}
			bySrc[src] = append(bySrc[src], checksum)
		case strings.Contains(line, "bad source"):
			bad++
		}
	}
	if answers != 3 {
		t.Errorf("got %d answer lines, want 3:\n%s", answers, out0)
	}
	if bad != 1 {
		t.Errorf("got %d bad-source lines, want 1:\n%s", bad, out0)
	}
	// The repeated source must produce an identical checksum: answers are
	// deterministic regardless of which slot served them.
	if sums := bySrc["5"]; len(sums) == 2 && sums[0] != sums[1] {
		t.Errorf("source 5 answered with different checksums: %v", sums)
	}
}
