package lint

// The findings baseline: the ratchet that lets a new analyzer land
// before the tree is perfectly clean. Pre-existing findings are recorded
// in a committed JSON file keyed by (analyzer, file, message) with a
// count — deliberately no line numbers, so unrelated edits that shift
// code do not invalidate the baseline. The gate then enforces one-way
// motion: findings not covered by the baseline fail the run, and
// baseline entries that no longer match anything are reported as stale
// so the file can only shrink.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineEntry records pre-existing findings of one (analyzer, file,
// message) group.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	// File is the finding's path relative to the module root, with
	// forward slashes.
	File    string `json:"file"`
	Message string `json:"message"`
	// Count is how many findings of this group are tolerated.
	Count int `json:"count"`
	// Reason documents why the findings are tolerated rather than fixed.
	Reason string `json:"reason,omitempty"`
}

func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, not an error: the ratchet starts engaged.
func LoadBaseline(path string) ([]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	return entries, nil
}

// SaveBaseline writes entries, sorted for stable diffs.
func SaveBaseline(path string, entries []BaselineEntry) error {
	sort.Slice(entries, func(i, j int) bool { return entries[i].key() < entries[j].key() })
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BaselineFromFindings builds the baseline that exactly covers the given
// findings (used by -update-baseline). rel maps absolute filenames to
// module-relative paths.
func BaselineFromFindings(findings []Finding, rel func(string) string) []BaselineEntry {
	byKey := make(map[string]*BaselineEntry)
	var order []string
	for _, f := range findings {
		e := BaselineEntry{Analyzer: f.Analyzer, File: rel(f.Pos.Filename), Message: f.Message}
		k := e.key()
		if prev, ok := byKey[k]; ok {
			prev.Count++
			continue
		}
		e.Count = 1
		e.Reason = "baselined pre-existing finding; fix or justify before growing"
		byKey[k] = &e
		order = append(order, k)
	}
	sort.Strings(order)
	out := make([]BaselineEntry, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}

// ApplyBaseline splits findings into the ones the baseline covers and
// the new ones that must fail the run, and reports stale entries
// (groups whose actual count fell below the recorded count — including
// to zero) so the baseline can be ratcheted down.
func ApplyBaseline(entries []BaselineEntry, findings []Finding, rel func(string) string) (fresh []Finding, stale []BaselineEntry) {
	budget := make(map[string]int, len(entries))
	matched := make(map[string]int, len(entries))
	for _, e := range entries {
		budget[e.key()] += e.Count
	}
	for _, f := range findings {
		k := (BaselineEntry{Analyzer: f.Analyzer, File: rel(f.Pos.Filename), Message: f.Message}).key()
		if budget[k] > 0 {
			budget[k]--
			matched[k]++
			continue
		}
		fresh = append(fresh, f)
	}
	for _, e := range entries {
		if matched[e.key()] < e.Count {
			e.Count = matched[e.key()] // the count it should ratchet down to
			stale = append(stale, e)
		}
	}
	return fresh, stale
}
