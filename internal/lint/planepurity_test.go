package lint_test

import (
	"strings"
	"testing"

	"parsssp/internal/lint"
)

// badPlane exercises the planepurity rules: the constructor and a
// rankGraph method may write plane fields, everything else may not —
// including writes through the fields an embedding queryState promotes,
// and element writes into plane slices.
const badPlane = `package sssp

type rankGraph struct {
	nLocal   int
	shortEnd []int32
}

type queryState struct {
	*rankGraph
	dist []int64
}

func newRankGraph(n int) *rankGraph {
	p := &rankGraph{nLocal: n}
	p.shortEnd = make([]int32, n)
	p.shortEnd[0] = 1
	return p
}

func (p *rankGraph) rebuild(n int) {
	p.nLocal = n
}

func (q *queryState) relax() {
	q.dist[0] = 1
	q.nLocal++
	q.shortEnd[0] = 2
}

func tamper(p *rankGraph, q *queryState) {
	p.nLocal = 3
	q.rankGraph.shortEnd[1] = 4
	local := p.shortEnd
	local[0] = 9
}

func newRankGraphPatched(prev *rankGraph, n int) *rankGraph {
	p := &rankGraph{nLocal: prev.nLocal}
	p.shortEnd = append([]int32(nil), prev.shortEnd...)
	p.shortEnd[0] = 5
	return p
}
`

func TestPlanePurityFlagsWritesOutsideConstructor(t *testing.T) {
	got := runFixture(t, map[string]string{"internal/sssp/bad.go": badPlane}, lint.PlanePurity)
	wantFindings(t, got, []string{
		"bad.go:26:2 planepurity", // q.nLocal++ (promoted through queryState)
		"bad.go:27:2 planepurity", // q.shortEnd[0] = 2 (element write)
		"bad.go:31:2 planepurity", // p.nLocal = 3
		"bad.go:32:2 planepurity", // q.rankGraph.shortEnd[1] = 4 (explicit embed)
	})
	// q.dist (line 25) is queryState's own field; the alias write on
	// line 34 is a documented blind spot; newRankGraphPatched is the
	// second sanctioned constructor (the incremental update path). None
	// may be flagged — the exact-match list above already proves that.
}

// badVersion exercises the planeVersion rules: NewPlaneSet, PlaneSet
// methods and planeVersion's own methods may write snapshot fields,
// everything else may not. Repointing a slot's pv pointer or an
// embedding engine's rankGraph is not a snapshot write and must pass.
const badVersion = `package sssp

type rankGraph struct {
	nLocal int
}

func newRankGraph(n int) *rankGraph {
	return &rankGraph{nLocal: n}
}

type queryState struct {
	*rankGraph
}

type planeVersion struct {
	version uint64
	planes  map[int]*rankGraph
	refs    int
}

func (pv *planeVersion) retain() {
	pv.refs++
}

type PlaneSet struct {
	cur *planeVersion
}

func NewPlaneSet() *PlaneSet {
	pv := &planeVersion{planes: map[int]*rankGraph{}}
	pv.version = 0
	return &PlaneSet{cur: pv}
}

func (s *PlaneSet) apply() *planeVersion {
	pv := &planeVersion{version: s.cur.version + 1}
	pv.refs = 1
	s.cur = pv
	return pv
}

type slot struct {
	pv  *planeVersion
	eng *queryState
}

func (sl *slot) migrate(s *PlaneSet) {
	pv := s.apply()
	sl.pv = pv
	sl.eng.rankGraph = pv.planes[0]
}

func tamperVersion(pv *planeVersion) {
	pv.refs--
	pv.version = 9
	pv.planes[0] = nil
}
`

func TestPlanePurityFlagsSnapshotWritesOutsidePlaneSet(t *testing.T) {
	got := runFixture(t, map[string]string{"internal/sssp/bad.go": badVersion}, lint.PlanePurity)
	wantFindings(t, got, []string{
		"bad.go:54:2 planepurity", // pv.refs--
		"bad.go:55:2 planepurity", // pv.version = 9
		"bad.go:56:2 planepurity", // pv.planes[0] = nil (element write)
	})
	// The pin swap sl.pv = pv (line 49) and the engine repoint
	// sl.eng.rankGraph = ... (line 50) assign the referring structs' own
	// pointer fields — the exact-match list above proves neither is
	// flagged, nor are the writes inside NewPlaneSet, apply and retain.
}

func TestPlanePurityIgnoresPackagesWithoutRankGraph(t *testing.T) {
	// The identical shape under a different type name is not a plane;
	// the analyzer must key off the rankGraph declaration, not field
	// names.
	src := strings.ReplaceAll(badPlane, "rankGraph", "scratchpad")
	got := runFixture(t, map[string]string{"internal/sssp/bad.go": src}, lint.PlanePurity)
	wantFindings(t, got, nil)
}

func TestPlanePuritySuppressedByDirective(t *testing.T) {
	src := `package sssp

type rankGraph struct {
	nLocal int
}

func grow(p *rankGraph) {
	//parssspvet:allow planepurity -- single-threaded re-planning path, no queries in flight
	p.nLocal++
}
`
	got := runFixture(t, map[string]string{"internal/sssp/bad.go": src}, lint.PlanePurity)
	wantFindings(t, got, nil)
}

func TestPlanePurityMessageExplainsSharing(t *testing.T) {
	pkgs := loadFixture(t, map[string]string{"internal/sssp/bad.go": badPlane})
	for _, f := range lint.RunAnalyzers(pkgs, []*lint.Analyzer{lint.PlanePurity}) {
		if !strings.Contains(f.Message, "shared read-only") {
			t.Errorf("finding should explain why the write is unsafe: %q", f.Message)
		}
	}
}
